package lopacity

import (
	"repro/internal/kdegree"
)

// KDegreeResult reports a k-degree anonymization run (see
// AnonymizeKDegree).
type KDegreeResult struct {
	// Graph is the anonymized supergraph (edges are only added).
	Graph *Graph
	// Inserted lists the added edges.
	Inserted [][2]int
	// Realized reports whether every vertex reached its k-anonymous
	// target degree; when false the greedy construction stranded a
	// deficit and the result may fall short of k-degree anonymity.
	Realized bool
}

// AnonymizeKDegree renders g k-degree anonymous by edge insertion (Liu
// & Terzi, SIGMOD 2008): afterwards every degree value is shared by at
// least k vertices, so degree knowledge never pins an identity to fewer
// than k candidates.
//
// This is the identity-protection technique the paper's introduction
// argues is NOT sufficient: a k-degree anonymous graph can still leak a
// linkage with certainty (use NewAdversary to check). It is included as
// the comparator for that claim — for linkage protection use Anonymize.
func AnonymizeKDegree(g *Graph, k int) (*KDegreeResult, error) {
	res, err := kdegree.Anonymize(g.g, k)
	if err != nil {
		return nil, err
	}
	return &KDegreeResult{
		Graph:    &Graph{g: res.Graph},
		Inserted: toPairs(res.Inserted),
		Realized: res.Realized,
	}, nil
}

// IsKDegreeAnonymous reports whether every occupied degree value in g
// is shared by at least k vertices.
func IsKDegreeAnonymous(g *Graph, k int) bool {
	return kdegree.IsKAnonymous(g.g.Degrees(), k)
}
