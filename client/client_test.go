package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/api"
	"repro/client"
	"repro/internal/server"
)

// figure1 is the paper's running-example graph (vertices renumbered
// 0-6).
func figure1() api.Graph {
	return api.Graph{N: 7, Edges: [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {1, 4}, {2, 4}, {2, 5}, {3, 4}, {4, 5}, {5, 6},
	}}
}

// newClient boots an in-process server and a client against it.
func newClient(t *testing.T, cfg server.Config) *client.Client {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close(context.Background())
	})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRoundTripEveryEndpoint exercises each typed method against an
// in-process server — the acceptance criterion that the client and
// server agree on the whole wire contract.
func TestRoundTripEveryEndpoint(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()
	fig := figure1()

	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("Healthz: %v", err)
	}

	keys, err := c.Datasets(ctx)
	if err != nil || len(keys) == 0 {
		t.Fatalf("Datasets: %v (%d keys)", err, len(keys))
	}

	ds, err := c.Dataset(ctx, "gnutella100", 1)
	if err != nil || ds.Properties.Nodes != 100 {
		t.Fatalf("Dataset: %v (%+v)", err, ds)
	}

	props, err := c.Properties(ctx, api.PropertiesRequest{Graph: fig})
	if err != nil || props.Nodes != 7 || props.Links != 10 {
		t.Fatalf("Properties: %v (%+v)", err, props)
	}

	rep, err := c.Opacity(ctx, api.OpacityRequest{Graph: fig, L: 1})
	if err != nil || rep.MaxOpacity != 1 {
		t.Fatalf("Opacity: %v (%+v)", err, rep)
	}

	anon, err := c.Anonymize(ctx, api.AnonymizeRequest{Graph: fig, L: 1, Theta: 0.5, Method: "rem", Seed: 1})
	if err != nil || !anon.Satisfied {
		t.Fatalf("Anonymize: %v (%+v)", err, anon)
	}

	kiso, err := c.KIso(ctx, api.KIsoRequest{Graph: fig, K: 2, Seed: 1})
	if err != nil || len(kiso.Blocks) != 2 {
		t.Fatalf("KIso: %v (%+v)", err, kiso)
	}

	audit, err := c.Audit(ctx, api.AuditRequest{Published: anon.Graph, Original: fig, L: 1, Theta: 0.5})
	if err != nil || !audit.Passed {
		t.Fatalf("Audit: %v (%+v)", err, audit)
	}

	replay, err := c.Replay(ctx, api.ReplayRequest{Original: fig, L: 1, Theta: 1, Fast: true})
	if err != nil || !replay.Verified {
		t.Fatalf("Replay: %v (%+v)", err, replay)
	}

	reg, err := c.Graphs.Register(ctx, api.GraphRegisterRequest{Graph: &fig})
	if err != nil || !reg.Created {
		t.Fatalf("Graphs.Register: %v (%+v)", err, reg)
	}
	list, err := c.Graphs.List(ctx)
	if err != nil || len(list.Graphs) != 1 {
		t.Fatalf("Graphs.List: %v (%+v)", err, list)
	}
	info, err := c.Graphs.Get(ctx, reg.ID)
	if err != nil || info.N != 7 {
		t.Fatalf("Graphs.Get: %v (%+v)", err, info)
	}

	job, err := c.Jobs.Submit(ctx, "opacity", api.OpacityRequest{GraphRef: reg.ID, L: 2})
	if err != nil {
		t.Fatalf("Jobs.Submit: %v", err)
	}
	final, err := c.Jobs.Wait(ctx, job.ID)
	if err != nil || final.State != api.JobDone {
		t.Fatalf("Jobs.Wait: %v (%+v)", err, final)
	}
	if len(final.Result) == 0 {
		t.Fatal("Jobs.Wait: done job has no result")
	}

	batch, err := c.Batch(ctx, api.BatchRequest{GraphRef: reg.ID, Items: []api.BatchItem{
		mustItem(t, "opacity", api.OpacityRequest{L: 1}),
		mustItem(t, "properties", api.PropertiesRequest{}),
	}})
	if err != nil || batch.Succeeded != 2 {
		t.Fatalf("Batch: %v (%+v)", err, batch)
	}

	stats, err := c.Stats(ctx)
	if err != nil || stats.Registry.Graphs != 1 {
		t.Fatalf("Stats: %v (%+v)", err, stats)
	}

	if err := c.Graphs.Delete(ctx, reg.ID); err != nil {
		t.Fatalf("Graphs.Delete: %v", err)
	}
	if _, err := c.Graphs.Get(ctx, reg.ID); !api.IsCode(err, api.CodeGraphNotFound) {
		t.Fatalf("Graphs.Get after delete: %v, want graph_not_found", err)
	}
}

func mustItem(t *testing.T, op string, req any) api.BatchItem {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return api.BatchItem{Op: op, Request: b}
}

// TestErrorsCarryCodeAndStatus: non-2xx responses surface as *api.Error
// with the machine-readable code and HTTP status.
func TestErrorsCarryCodeAndStatus(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()

	_, err := c.Opacity(ctx, api.OpacityRequest{Graph: figure1(), L: 0})
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %T, want *api.Error", err)
	}
	if ae.Code != api.CodeInvalidRequest || ae.HTTPStatus != http.StatusBadRequest {
		t.Fatalf("error %+v, want invalid_request/400", ae)
	}

	_, err = c.Opacity(ctx, api.OpacityRequest{GraphRef: "no-such", L: 1})
	if !api.IsCode(err, api.CodeGraphNotFound) {
		t.Fatalf("error %v, want graph_not_found", err)
	}
	if errors.As(err, &ae); ae.HTTPStatus != http.StatusNotFound {
		t.Fatalf("status %d, want 404", ae.HTTPStatus)
	}
	if ae.Details["graph_ref"] != "no-such" {
		t.Fatalf("details %+v, want graph_ref", ae.Details)
	}
}

// TestGraphHandleUploadOnce: the Graph handle registers exactly once
// across many operations, then queries by reference.
func TestGraphHandleUploadOnce(t *testing.T) {
	srv := server.New(server.Config{})
	var registers atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/graphs" {
			registers.Add(1)
		}
		srv.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		ts.Close()
		srv.Close(context.Background())
	})
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	fig := figure1()
	g := c.NewGraph(fig.N, fig.Edges)

	if _, err := g.Properties(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Opacity(ctx, api.OpacityRequest{L: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Anonymize(ctx, api.AnonymizeRequest{L: 1, Theta: 0.5, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Batch(ctx, []api.BatchItem{mustItem(t, "opacity", api.OpacityRequest{L: 1})}); err != nil {
		t.Fatal(err)
	}
	if got := registers.Load(); got != 1 {
		t.Fatalf("graph registered %d times across 4 operations, want exactly once", got)
	}
}

// TestStreamedJobReportsProgress is the client side of the acceptance
// criterion: a streamed anonymize job delivers at least one progress
// event before its terminal state event.
func TestStreamedJobReportsProgress(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()
	fig := figure1()
	g := c.NewGraph(fig.N, fig.Edges)

	job, err := g.SubmitAnonymize(ctx, api.AnonymizeRequest{L: 1, Theta: 0.5, Method: "rem", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	progress := 0
	sawTerminal := false
	err = c.Jobs.Events(ctx, job.ID, func(ev api.JobEvent) error {
		switch ev.Type {
		case api.JobEventProgress:
			if sawTerminal {
				t.Error("progress event after terminal state")
			}
			if ev.Progress == nil || ev.Progress.Steps < 1 {
				t.Errorf("bad progress payload %+v", ev.Progress)
			}
			progress++
		case api.JobEventState:
			if api.JobFinished(ev.State) {
				sawTerminal = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if progress < 1 {
		t.Fatal("streamed job reported no progress events before completion")
	}
	if !sawTerminal {
		t.Fatal("stream ended without a terminal state event")
	}

	final, err := c.Jobs.Wait(ctx, job.ID)
	if err != nil || final.State != api.JobDone {
		t.Fatalf("Wait: %v (%+v)", err, final)
	}
}

// TestGraphHandleRecoversFromStaleRef: a reference the server stopped
// recognizing (deletion, LRU eviction, restart) is transparently
// re-registered and the operation retried, instead of failing forever.
func TestGraphHandleRecoversFromStaleRef(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()
	fig := figure1()
	g := c.NewGraph(fig.N, fig.Edges)

	ref, err := g.Ref(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate eviction: the server forgets the graph behind the
	// handle's back.
	if err := c.Graphs.Delete(ctx, ref); err != nil {
		t.Fatal(err)
	}
	rep, err := g.Opacity(ctx, api.OpacityRequest{L: 1})
	if err != nil {
		t.Fatalf("Opacity after server-side deletion: %v", err)
	}
	if rep.MaxOpacity != 1 {
		t.Fatalf("recovered call returned %+v", rep)
	}
}

// TestEventsStreamTruncated: a stream that ends without a terminal
// state event (job evicted mid-watch) is distinguishable from clean
// completion.
func TestEventsStreamTruncated(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		json.NewEncoder(w).Encode(api.JobEvent{Seq: 0, Type: api.JobEventState, State: api.JobQueued})
		json.NewEncoder(w).Encode(api.JobEvent{Seq: 1, Type: api.JobEventState, State: api.JobRunning})
		// ...and the server drops the stream with the job unfinished.
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Jobs.Events(context.Background(), "x", func(api.JobEvent) error { return nil })
	if !errors.Is(err, client.ErrStreamTruncated) {
		t.Fatalf("Events returned %v, want ErrStreamTruncated", err)
	}
}

// TestEventsCallbackAbort: fn returning an error stops the stream and
// surfaces that error.
func TestEventsCallbackAbort(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()
	job, err := c.Jobs.Submit(ctx, "properties", api.PropertiesRequest{Graph: figure1()})
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	err = c.Jobs.Events(ctx, job.ID, func(ev api.JobEvent) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Events returned %v, want the callback's error", err)
	}
}

// TestGraphHandlePatch: Patch mints a child handle that queries by its
// own reference, echoes lineage, and — like any handle — re-derives
// itself (re-patching the parent, which re-registers in turn) after
// the server forgets both graphs.
func TestGraphHandlePatch(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()
	fig := figure1()
	parent := c.NewGraph(fig.N, fig.Edges)

	child, err := parent.Patch(ctx, [][2]int{{0, 6}}, [][2]int{{3, 4}})
	if err != nil {
		t.Fatalf("Patch: %v", err)
	}
	childRef, err := child.Ref(ctx)
	if err != nil {
		t.Fatal(err)
	}
	parentRef, _ := parent.Ref(ctx)
	if childRef == parentRef {
		t.Fatal("child ref equals parent ref")
	}
	info, err := c.Graphs.Get(ctx, childRef)
	if err != nil {
		t.Fatal(err)
	}
	if info.Lineage == nil || info.Lineage.Parent != parentRef {
		t.Fatalf("child lineage: %+v", info.Lineage)
	}

	// The child's opacity differs from a fresh compute only in transport.
	rep, err := child.Opacity(ctx, api.OpacityRequest{L: 2})
	if err != nil {
		t.Fatalf("child Opacity: %v", err)
	}
	if rep.L != 2 {
		t.Fatalf("child opacity: %+v", rep)
	}

	// An invalid diff is an *api.Error with the edge code.
	if _, err := parent.Patch(ctx, [][2]int{{0, 1}}, nil); !api.IsCode(err, api.CodeInvalidEdge) {
		t.Fatalf("conflicting patch error: %v", err)
	}

	// Forget BOTH graphs server-side: the child re-derives through the
	// parent chain transparently.
	if err := c.Graphs.Delete(ctx, childRef); err != nil {
		t.Fatal(err)
	}
	if err := c.Graphs.Delete(ctx, parentRef); err != nil {
		t.Fatal(err)
	}
	rep2, err := child.Opacity(ctx, api.OpacityRequest{L: 2})
	if err != nil {
		t.Fatalf("child Opacity after double deletion: %v", err)
	}
	if rep2.MaxOpacity != rep.MaxOpacity {
		t.Fatalf("re-derived child answered %v, want %v", rep2.MaxOpacity, rep.MaxOpacity)
	}
}

// TestContinuousAuditClient: the typed method and the by-ref handle
// method agree with each other.
func TestContinuousAuditClient(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()
	fig := figure1()
	steps := []api.MutationStep{
		{Add: [][2]int{{0, 6}}},
		{Remove: [][2]int{{0, 6}}},
	}
	inline, err := c.ContinuousAudit(ctx, api.ContinuousAuditRequest{Graph: fig, L: 2, Steps: steps})
	if err != nil {
		t.Fatalf("ContinuousAudit: %v", err)
	}
	if len(inline.Steps) != 2 || inline.Repairs+inline.Rebuilds != 2 {
		t.Fatalf("inline response: %+v", inline)
	}
	g := c.NewGraph(fig.N, fig.Edges)
	viaRef, err := g.ContinuousAudit(ctx, api.ContinuousAuditRequest{L: 2, Steps: steps})
	if err != nil {
		t.Fatalf("handle ContinuousAudit: %v", err)
	}
	if len(viaRef.Steps) != 2 || viaRef.Steps[0].MaxOpacity != inline.Steps[0].MaxOpacity {
		t.Fatalf("ref response %+v differs from inline %+v", viaRef, inline)
	}
}
