package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"

	"repro/api"
)

// JobsService groups the /v1/jobs async endpoints.
type JobsService struct {
	c *Client
}

// Submit enqueues one operation for asynchronous execution
// (POST /v1/jobs). Op names the operation ("opacity", "anonymize",
// ...) and request is the operation's api request value, exactly as
// the synchronous method would take it. The returned job is usually in
// state "queued" — poll with Get, block with Wait, or stream with
// Events; a submit-time cache hit comes back already "done".
func (s *JobsService) Submit(ctx context.Context, op string, request any) (*api.JobResponse, error) {
	raw, err := json.Marshal(request)
	if err != nil {
		return nil, fmt.Errorf("client: encoding job request: %w", err)
	}
	var out api.JobResponse
	if err := s.c.do(ctx, http.MethodPost, "/v1/jobs", api.JobSubmitRequest{Op: op, Request: raw}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Get polls a job's snapshot (GET /v1/jobs/{id}).
func (s *JobsService) Get(ctx context.Context, id string) (*api.JobResponse, error) {
	var out api.JobResponse
	if err := s.c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Cancel stops a queued or running job (DELETE /v1/jobs/{id}).
// Cancelling an already-finished job fails with api.CodeJobFinished.
func (s *JobsService) Cancel(ctx context.Context, id string) (*api.JobResponse, error) {
	var out api.JobResponse
	if err := s.c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Wait blocks until the job reaches a terminal state (done, failed, or
// cancelled) and returns its final snapshot; inspect State and Error
// to distinguish the outcomes. It polls GET /v1/jobs/{id} at the
// client's wait interval (WithWaitInterval) and returns early with the
// context's error when ctx is done.
func (s *JobsService) Wait(ctx context.Context, id string) (*api.JobResponse, error) {
	for {
		j, err := s.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		if api.JobFinished(j.State) {
			return j, nil
		}
		if err := sleep(ctx, s.c.waitInterval); err != nil {
			return nil, err
		}
	}
}

// ErrStreamTruncated reports an event stream that ended without a
// terminal state event — the server drops a stream this way when the
// job is evicted mid-watch (TTL or retention pressure). The job's
// outcome is unknown; Jobs.Get may still answer if the eviction was
// only of the stream's view.
var ErrStreamTruncated = errors.New("client: event stream ended without a terminal state event")

// Events streams a job's lifecycle and progress events
// (GET /v1/jobs/{id}/events), invoking fn for each NDJSON line in
// order. The stream replays the job's history from the beginning and
// follows the live job; Events returns nil when the stream ends after
// the terminal state event, fn's error if fn aborts the stream,
// ErrStreamTruncated if the stream ended with the job's outcome
// unknown, or the transport/context error otherwise.
func (s *JobsService) Events(ctx context.Context, id string, fn func(api.JobEvent) error) error {
	resp, err := s.c.send(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	terminal := false
	for sc.Scan() {
		var ev api.JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("client: decoding event: %w", err)
		}
		if ev.Type == api.JobEventState && api.JobFinished(ev.State) {
			terminal = true
		}
		if err := fn(ev); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		// Prefer the context's error: a cancelled watch is the caller's
		// decision, not a transport failure.
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	if !terminal {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return ErrStreamTruncated
	}
	return nil
}
