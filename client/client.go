// Package client is the official Go SDK for the lopserve REST service.
// It compiles against the same wire contract (package api) the server
// marshals through, so requests and responses can never drift from the
// service's types.
//
// Construct a client with New and call the typed method for each
// endpoint; every method takes a context and returns the api response
// type. Non-2xx responses come back as *api.Error with the stable
// machine-readable code and the HTTP status filled in:
//
//	c, _ := client.New("http://127.0.0.1:8080")
//	rep, err := c.Opacity(ctx, api.OpacityRequest{Graph: g, L: 2})
//	if api.IsCode(err, api.CodeGraphNotFound) { ... }
//
// The Graph handle implements upload-once semantics for the
// register-once-query-many pattern: construct one with NewGraph (or
// DatasetGraph), and every operation through it registers the graph on
// first use and sends only the content-address reference afterwards.
//
// Requests that fail with 429 (rate limited or queue full) or 503
// (shutting down) are retried with capped exponential backoff; when
// the response carries a Retry-After header — the server's rate
// limiter always sets one — that wait is used instead of the backoff
// step. Transient transport failures (connection refused or reset —
// a backend restarting behind a router, a router failing over) are
// retried under the same attempt budget. See Retry. Backoff waits
// respect context cancellation.
//
// Against a server started with -auth-token, construct the client with
// WithAuthToken; every request then carries the bearer token. Errors
// carry the response's X-Request-ID (api.Error.RequestID) so a failure
// can be quoted to an operator and joined against the server's request
// log.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/api"
)

// Retry configures the automatic retry policy for 429 and 503
// responses — the two statuses the service documents as transient —
// and for connection-refused / connection-reset transport errors,
// where no response was received and a restarting or failed-over
// backend is the likely cause. Other failures are never retried: a
// 4xx will not get better, and re-sending after a mid-response
// transport error could double-execute work.
//
// A retryable response with a Retry-After header (seconds or an HTTP
// date) overrides the exponential step: the server knows when the next
// token arrives, so its wait is authoritative. The header wait is
// capped at MaxRetryAfter to keep a misconfigured server from parking
// the client for minutes.
type Retry struct {
	// MaxAttempts is the total number of tries including the first;
	// values below 1 select 3. Set 1 to disable retries.
	MaxAttempts int
	// BaseDelay is the wait before the first retry, doubling each
	// attempt; zero selects 100 ms.
	BaseDelay time.Duration
	// MaxDelay caps the per-attempt wait; zero selects 2 s.
	MaxDelay time.Duration
	// MaxRetryAfter caps a server-sent Retry-After wait; zero selects
	// 30 s. Waits beyond the cap are clamped, not ignored.
	MaxRetryAfter time.Duration
}

func (r *Retry) setDefaults() {
	if r.MaxAttempts < 1 {
		r.MaxAttempts = 3
	}
	if r.BaseDelay <= 0 {
		r.BaseDelay = 100 * time.Millisecond
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = 2 * time.Second
	}
	if r.MaxRetryAfter <= 0 {
		r.MaxRetryAfter = 30 * time.Second
	}
}

// backoff returns the wait before retrying after the given 0-based
// attempt: BaseDelay doubled per attempt, capped at MaxDelay.
func (r Retry) backoff(attempt int) time.Duration {
	d := r.BaseDelay
	for i := 0; i < attempt && d < r.MaxDelay; i++ {
		d *= 2
	}
	if d > r.MaxDelay {
		d = r.MaxDelay
	}
	return d
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default is a dedicated client with
// no global timeout — per-call contexts bound each request.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.httpc = hc }
}

// WithRetry replaces the default retry policy.
func WithRetry(r Retry) Option {
	return func(c *Client) { c.retry = r }
}

// WithAuthToken sets the bearer token sent as Authorization on every
// request, for servers started with -auth-token. An empty token sends
// no header.
func WithAuthToken(token string) Option {
	return func(c *Client) { c.authToken = token }
}

// WithWaitInterval sets the poll interval used by Jobs.Wait; zero
// keeps the default 100 ms.
func WithWaitInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.waitInterval = d
		}
	}
}

// Client is a lopserve API client. It is safe for concurrent use.
type Client struct {
	base         string
	httpc        *http.Client
	retry        Retry
	authToken    string
	waitInterval time.Duration

	// Graphs and Jobs group the registry and async-job endpoints.
	Graphs *GraphsService
	Jobs   *JobsService
}

// New returns a client for the service at baseURL (scheme and host,
// e.g. "http://127.0.0.1:8080"; any trailing slash is ignored).
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: invalid base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q must include scheme and host", baseURL)
	}
	c := &Client{
		base:         strings.TrimRight(baseURL, "/"),
		httpc:        &http.Client{},
		waitInterval: 100 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	c.retry.setDefaults()
	c.Graphs = &GraphsService{c: c}
	c.Jobs = &JobsService{c: c}
	return c, nil
}

// retryable reports whether a status is worth another attempt.
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// send issues one request with the retry policy and returns the
// response on 2xx. Non-2xx responses are decoded into *api.Error; 429
// and 503 are retried with capped exponential backoff, and a context
// cancelled mid-backoff aborts immediately with the context's error.
func (c *Client) send(ctx context.Context, method, path string, in any) (*http.Response, error) {
	var body []byte
	contentType := ""
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return nil, fmt.Errorf("client: encoding request: %w", err)
		}
		contentType = "application/json"
	}
	return c.sendBytes(ctx, method, path, body, contentType)
}

// transientNetError reports a transport failure worth retrying:
// connection refused (nothing was listening — a restart in progress)
// or connection reset before any response. Context cancellation is
// never transient.
func transientNetError(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET)
}

// sendBytes is send with a pre-encoded body (nil means no body). It
// owns the whole retry loop: retryable statuses back off per policy,
// and transient transport errors re-dial under the same attempt
// budget.
func (c *Client) sendBytes(ctx context.Context, method, path string, body []byte, contentType string) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.authToken != "" {
			req.Header.Set("Authorization", "Bearer "+c.authToken)
		}
		resp, err := c.httpc.Do(req)
		if err != nil {
			if transientNetError(err) && attempt+1 < c.retry.MaxAttempts {
				if serr := sleep(ctx, c.retry.backoff(attempt)); serr != nil {
					return nil, serr
				}
				continue
			}
			return nil, err
		}
		if resp.StatusCode/100 == 2 {
			return resp, nil
		}
		// The Retry-After header must be read before decodeError drains
		// and closes the response.
		wait, hasRetryAfter := retryAfter(resp)
		apiErr := decodeError(resp)
		if !retryable(resp.StatusCode) || attempt+1 >= c.retry.MaxAttempts {
			return nil, apiErr
		}
		if !hasRetryAfter {
			wait = c.retry.backoff(attempt)
		} else if wait > c.retry.MaxRetryAfter {
			wait = c.retry.MaxRetryAfter
		}
		if err := sleep(ctx, wait); err != nil {
			return nil, err
		}
	}
}

// retryAfter parses the response's Retry-After header: delay-seconds
// or an HTTP date, per RFC 9110 §10.2.3. The bool reports whether a
// usable wait was found; a date in the past yields zero (retry now).
func retryAfter(resp *http.Response) (time.Duration, bool) {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0, false
	}
	if secs, err := strconv.ParseInt(h, 10, 64); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(h); err == nil {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

// sleep waits for d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// decodeError turns a non-2xx response into an *api.Error, consuming
// and closing the body. Bodies that are not the documented envelope
// (a proxy's HTML error page, say) still yield a usable error carrying
// the status. The response's X-Request-ID, when present, is stamped
// onto the error so callers can quote it against the server's request
// log.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	rid := resp.Header.Get("X-Request-ID")
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env api.ErrorResponse
	if err := json.Unmarshal(b, &env); err == nil {
		if e := env.AsError(resp.StatusCode); e != nil {
			e.RequestID = rid
			return e
		}
	}
	return &api.Error{
		Message:    fmt.Sprintf("http %d: %s", resp.StatusCode, strings.TrimSpace(string(b))),
		HTTPStatus: resp.StatusCode,
		RequestID:  rid,
	}
}

// do issues a request and decodes the JSON response into out (skipped
// when out is nil).
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	resp, err := c.send(ctx, method, path, in)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding response: %w", err)
	}
	return nil
}

// Healthz checks service liveness (GET /v1/healthz).
func (c *Client) Healthz(ctx context.Context) error {
	var h api.HealthResponse
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h)
}

// Datasets lists the built-in calibrated dataset keys
// (GET /v1/datasets).
func (c *Client) Datasets(ctx context.Context) ([]string, error) {
	var out api.DatasetsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, &out); err != nil {
		return nil, err
	}
	return out.Datasets, nil
}

// Dataset generates a built-in dataset deterministically
// (POST /v1/dataset).
func (c *Client) Dataset(ctx context.Context, key string, seed int64) (*api.DatasetResponse, error) {
	var out api.DatasetResponse
	if err := c.do(ctx, http.MethodPost, "/v1/dataset", api.DatasetRequest{Key: key, Seed: seed}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Properties reports a graph's structural properties
// (POST /v1/properties).
func (c *Client) Properties(ctx context.Context, req api.PropertiesRequest) (*api.PropertiesResponse, error) {
	var out api.PropertiesResponse
	if err := c.do(ctx, http.MethodPost, "/v1/properties", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Opacity computes a graph's L-opacity report (POST /v1/opacity).
func (c *Client) Opacity(ctx context.Context, req api.OpacityRequest) (*api.OpacityResponse, error) {
	var out api.OpacityResponse
	if err := c.do(ctx, http.MethodPost, "/v1/opacity", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Anonymize runs an anonymization method synchronously
// (POST /v1/anonymize). For long runs prefer Jobs.Submit plus
// Jobs.Wait or Jobs.Events.
func (c *Client) Anonymize(ctx context.Context, req api.AnonymizeRequest) (*api.AnonymizeResponse, error) {
	var out api.AnonymizeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/anonymize", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// KIso runs k-isomorphism anonymization (POST /v1/kiso).
func (c *Client) KIso(ctx context.Context, req api.KIsoRequest) (*api.KIsoResponse, error) {
	var out api.KIsoResponse
	if err := c.do(ctx, http.MethodPost, "/v1/kiso", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Audit runs the degree-knowledge adversary audit (POST /v1/audit).
func (c *Client) Audit(ctx context.Context, req api.AuditRequest) (*api.AuditResponse, error) {
	var out api.AuditResponse
	if err := c.do(ctx, http.MethodPost, "/v1/audit", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Replay verifies an anonymization audit trail (POST /v1/replay).
func (c *Client) Replay(ctx context.Context, req api.ReplayRequest) (*api.ReplayResponse, error) {
	var out api.ReplayResponse
	if err := c.do(ctx, http.MethodPost, "/v1/replay", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ContinuousAudit replays a stream of graph mutations and reports the
// L-opacity after every step (POST /v1/continuous_audit). For long
// streams prefer Jobs.Submit with op "continuous_audit" and watch the
// per-step progress with Jobs.Events.
func (c *Client) ContinuousAudit(ctx context.Context, req api.ContinuousAuditRequest) (*api.ContinuousAuditResponse, error) {
	var out api.ContinuousAuditResponse
	if err := c.do(ctx, http.MethodPost, "/v1/continuous_audit", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch executes heterogeneous operations in one request
// (POST /v1/batch). Item failures are reported per item in the
// response, not as a call error.
func (c *Client) Batch(ctx context.Context, req api.BatchRequest) (*api.BatchResponse, error) {
	var out api.BatchResponse
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats reads the service counters (GET /v1/stats).
func (c *Client) Stats(ctx context.Context) (*api.StatsResponse, error) {
	var out api.StatsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GraphsService groups the /v1/graphs registry endpoints.
type GraphsService struct {
	c *Client
}

// Register adds a graph to the content-addressed registry
// (POST /v1/graphs). Registering an already-known graph is not an
// error; the response's Created field distinguishes the two.
func (s *GraphsService) Register(ctx context.Context, req api.GraphRegisterRequest) (*api.GraphRegisterResponse, error) {
	var out api.GraphRegisterResponse
	if err := s.c.do(ctx, http.MethodPost, "/v1/graphs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// List returns the registered graphs, most recently used first
// (GET /v1/graphs).
func (s *GraphsService) List(ctx context.Context) (*api.GraphListResponse, error) {
	var out api.GraphListResponse
	if err := s.c.do(ctx, http.MethodGet, "/v1/graphs", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Get returns one registered graph's metadata (GET /v1/graphs/{id}).
func (s *GraphsService) Get(ctx context.Context, id string) (*api.GraphInfo, error) {
	var out api.GraphInfo
	if err := s.c.do(ctx, http.MethodGet, "/v1/graphs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Patch derives a new registered graph from an existing one by an
// edge diff (PATCH /v1/graphs/{id}). The parent is never modified;
// the response names the child's content address and echoes its
// lineage. Patching the same diff twice is not an error; the
// response's Created field distinguishes the two.
func (s *GraphsService) Patch(ctx context.Context, id string, req api.GraphPatchRequest) (*api.GraphPatchResponse, error) {
	var out api.GraphPatchResponse
	if err := s.c.do(ctx, http.MethodPatch, "/v1/graphs/"+url.PathEscape(id), req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Delete unregisters a graph (DELETE /v1/graphs/{id}).
func (s *GraphsService) Delete(ctx context.Context, id string) error {
	return s.c.do(ctx, http.MethodDelete, "/v1/graphs/"+url.PathEscape(id), nil, nil)
}

// Snapshot fetches a graph's binary snapshot envelope — the canonical
// edge set plus every cached distance store — for installation on a
// peer (GET /v1/graphs/{id}/snapshot). The bytes are opaque to the
// client; pass them to InstallSnapshot on another server.
func (s *GraphsService) Snapshot(ctx context.Context, id string) ([]byte, error) {
	resp, err := s.c.sendBytes(ctx, http.MethodGet, "/v1/graphs/"+url.PathEscape(id)+"/snapshot", nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: reading snapshot: %w", err)
	}
	return data, nil
}

// InstallSnapshot installs a snapshot envelope fetched from a peer as
// graph id (PUT /v1/graphs/{id}/snapshot). The server verifies the
// envelope hashes to id before installing anything; a mismatch comes
// back as *api.Error with code api.CodeSnapshotMismatch.
func (s *GraphsService) InstallSnapshot(ctx context.Context, id string, data []byte) (*api.SnapshotInstallResponse, error) {
	resp, err := s.c.sendBytes(ctx, http.MethodPut, "/v1/graphs/"+url.PathEscape(id)+"/snapshot",
		data, "application/octet-stream")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out api.SnapshotInstallResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return &out, nil
}
