package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/api"
	"repro/client"
)

// refuseNTransport fails the first n round trips with a wrapped
// ECONNREFUSED — the shape net/http surfaces while a backend restarts —
// then delegates to the real transport. Deterministic: no listener is
// actually torn down.
type refuseNTransport struct {
	n        int64
	attempts atomic.Int64
	err      error
}

func (tr *refuseNTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if tr.attempts.Add(1) <= tr.n {
		return nil, &url2Error{op: "Post", url: r.URL.String(), err: tr.err}
	}
	return http.DefaultTransport.RoundTrip(r)
}

// url2Error mirrors *url.Error's wrapping without importing net/url
// under a clashing name.
type url2Error struct {
	op, url string
	err     error
}

func (e *url2Error) Error() string { return e.op + " " + e.url + ": " + e.err.Error() }
func (e *url2Error) Unwrap() error { return e.err }

func okServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok"})
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestRetryTransientConnRefused: connection-refused is retried within
// the Retry budget and the call succeeds once the backend is back.
func TestRetryTransientConnRefused(t *testing.T) {
	ts := okServer(t)
	tr := &refuseNTransport{n: 2, err: syscall.ECONNREFUSED}
	c, err := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithRetry(client.Retry{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz after two refused connections: %v", err)
	}
	if got := tr.attempts.Load(); got != 3 {
		t.Fatalf("attempts=%d, want 3 (two refusals + success)", got)
	}
}

// TestRetryTransientConnReset: connection-reset gets the same
// treatment.
func TestRetryTransientConnReset(t *testing.T) {
	ts := okServer(t)
	tr := &refuseNTransport{n: 1, err: syscall.ECONNRESET}
	c, err := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithRetry(client.Retry{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz after one reset: %v", err)
	}
	if got := tr.attempts.Load(); got != 2 {
		t.Fatalf("attempts=%d, want 2", got)
	}
}

// TestRetryTransientBounded: the budget still caps transport retries —
// a backend that never comes back fails after MaxAttempts with the
// underlying error intact.
func TestRetryTransientBounded(t *testing.T) {
	ts := okServer(t)
	tr := &refuseNTransport{n: 1 << 30, err: syscall.ECONNREFUSED}
	c, err := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithRetry(client.Retry{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Healthz(context.Background())
	if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Fatalf("err = %v, want wrapped ECONNREFUSED", err)
	}
	if got := tr.attempts.Load(); got != 3 {
		t.Fatalf("attempts=%d, want exactly MaxAttempts=3", got)
	}
}

// TestNoRetryOnNonTransientTransportError: other transport failures
// (here, a canceled context) are not retried.
func TestNoRetryOnNonTransientTransportError(t *testing.T) {
	ts := okServer(t)
	tr := &refuseNTransport{n: 1 << 30, err: context.Canceled}
	c, err := client.New(ts.URL,
		client.WithHTTPClient(&http.Client{Transport: tr}),
		client.WithRetry(client.Retry{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(context.Background()); err == nil {
		t.Fatal("expected an error")
	}
	if got := tr.attempts.Load(); got != 1 {
		t.Fatalf("attempts=%d, want 1 (no retry on non-transient error)", got)
	}
}
