package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
	"repro/client"
)

// flakyServer answers fail429 requests with a queue_full envelope
// before succeeding, counting every attempt.
func flakyServer(t *testing.T, fail429 int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		if n <= fail429 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.ErrorResponse{
				Message: "jobs: queue full",
				Err:     &api.Error{Code: api.CodeQueueFull, Message: "jobs: queue full"},
			})
			return
		}
		json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok"})
	}))
	t.Cleanup(ts.Close)
	return ts, &attempts
}

// TestRetry429ThenSuccess is the satellite test: a 429-then-200 server
// succeeds transparently, with exactly one retry per 429.
func TestRetry429ThenSuccess(t *testing.T) {
	ts, attempts := flakyServer(t, 2)
	c, err := client.New(ts.URL, client.WithRetry(client.Retry{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz after two 429s: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts=%d, want 3 (two 429s + success)", got)
	}
}

// TestRetryAttemptsBounded: a persistently overloaded server fails
// after exactly MaxAttempts tries, surfacing the envelope's code.
func TestRetryAttemptsBounded(t *testing.T) {
	ts, attempts := flakyServer(t, 1<<30)
	c, err := client.New(ts.URL, client.WithRetry(client.Retry{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Healthz(context.Background())
	if !api.IsCode(err, api.CodeQueueFull) {
		t.Fatalf("error %v, want queue_full", err)
	}
	var ae *api.Error
	if errors.As(err, &ae); ae.HTTPStatus != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", ae.HTTPStatus)
	}
	if got := attempts.Load(); got != 4 {
		t.Fatalf("attempts=%d, want exactly MaxAttempts=4", got)
	}
}

// TestRetryContextCancelledMidBackoff is the satellite test's second
// half: cancelling the context while the client sleeps between
// attempts aborts immediately with the context's error instead of
// finishing the backoff.
func TestRetryContextCancelledMidBackoff(t *testing.T) {
	ts, attempts := flakyServer(t, 1<<30)
	c, err := client.New(ts.URL, client.WithRetry(client.Retry{
		MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour,
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond) // land inside the hour-long backoff
		cancel()
	}()
	start := time.Now()
	err = c.Healthz(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, backoff was not interrupted", elapsed)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts=%d, want 1 (cancelled before the retry fired)", got)
	}
}

// retryAfterServer 429s every request but the last with the given
// Retry-After header value ("" sends no header), counting attempts and
// recording the arrival time of each.
func retryAfterServer(t *testing.T, fail429 int64, header string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := attempts.Add(1)
		if n <= fail429 {
			if header != "" {
				w.Header().Set("Retry-After", header)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.ErrorResponse{
				Message: "rate limit exceeded",
				Err:     &api.Error{Code: api.CodeRateLimited, Message: "rate limit exceeded"},
			})
			return
		}
		json.NewEncoder(w).Encode(api.HealthResponse{Status: "ok"})
	}))
	t.Cleanup(ts.Close)
	return ts, &attempts
}

// TestRetryAfterPreferredOverBackoff: a server-sent Retry-After: 0
// must override an enormous exponential backoff — the request
// completes immediately, proving the header (not BaseDelay) set the
// wait.
func TestRetryAfterPreferredOverBackoff(t *testing.T) {
	ts, attempts := retryAfterServer(t, 1, "0")
	c, err := client.New(ts.URL, client.WithRetry(client.Retry{
		MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour,
	}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("took %v — exponential backoff won over Retry-After: 0", elapsed)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts=%d, want 2", got)
	}
}

// TestRetryAfterDelaySecondsHonored: the wait actually lasts the
// advertised delay-seconds, not the (shorter) backoff.
func TestRetryAfterDelaySecondsHonored(t *testing.T) {
	ts, _ := retryAfterServer(t, 1, "1")
	c, err := client.New(ts.URL, client.WithRetry(client.Retry{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry fired after %v, want ~1s per Retry-After", elapsed)
	}
}

// TestRetryAfterHTTPDate: the HTTP-date form is parsed; a date in the
// past means retry now.
func TestRetryAfterHTTPDate(t *testing.T) {
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	ts, attempts := retryAfterServer(t, 1, past)
	c, err := client.New(ts.URL, client.WithRetry(client.Retry{
		MaxAttempts: 3, BaseDelay: time.Hour, MaxDelay: time.Hour,
	}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("past HTTP-date waited %v, want immediate retry", elapsed)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts=%d, want 2", got)
	}
}

// TestRetryAfterMalformedFallsBackToBackoff: an unparseable header is
// ignored and the normal exponential backoff applies.
func TestRetryAfterMalformedFallsBackToBackoff(t *testing.T) {
	ts, attempts := retryAfterServer(t, 1, "soon-ish")
	c, err := client.New(ts.URL, client.WithRetry(client.Retry{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("malformed header stalled the retry for %v", elapsed)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts=%d, want 2", got)
	}
}

// TestRetryAfterClampedByMaxRetryAfter: a hostile or misconfigured
// server advertising an hours-long wait is clamped to MaxRetryAfter.
func TestRetryAfterClampedByMaxRetryAfter(t *testing.T) {
	ts, _ := retryAfterServer(t, 1, "7200") // two hours
	c, err := client.New(ts.URL, client.WithRetry(client.Retry{
		MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond,
		MaxRetryAfter: 50 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("Healthz: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Retry-After: 7200 was not clamped (waited %v)", elapsed)
	}
}

// TestErrorCarriesRequestID: the SDK stamps the response's
// X-Request-ID onto the decoded error so callers can quote it against
// the server's request log.
func TestErrorCarriesRequestID(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", "rid-for-the-logs")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.ErrorResponse{
			Message: "bad",
			Err:     &api.Error{Code: api.CodeInvalidRequest, Message: "bad"},
		})
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Healthz(context.Background())
	var ae *api.Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not *api.Error", err)
	}
	if ae.RequestID != "rid-for-the-logs" {
		t.Fatalf("RequestID = %q, want rid-for-the-logs", ae.RequestID)
	}
}

// TestNon2xxNotRetried: a 400 is the caller's bug, not backpressure —
// one attempt only.
func TestNon2xxNotRetried(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.ErrorResponse{
			Message: "bad",
			Err:     &api.Error{Code: api.CodeInvalidRequest, Message: "bad"},
		})
	}))
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithRetry(client.Retry{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(context.Background()); !api.IsCode(err, api.CodeInvalidRequest) {
		t.Fatalf("error %v, want invalid_request", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts=%d, want 1", got)
	}
}
