package client

import (
	"context"
	"sync"

	"repro/api"
)

// Graph is an upload-once handle implementing the service's
// register-once-query-many pattern. The first operation through the
// handle registers the graph (POST /v1/graphs) and caches its content
// address; every subsequent operation sends only the reference, so the
// server skips re-parsing the edge list and reuses its cached distance
// stores. Handles are safe for concurrent use; a failed registration
// is retried by the next call, and a reference the server stopped
// recognizing (LRU eviction, deletion, restart without persistence) is
// transparently re-registered and the operation retried once.
type Graph struct {
	c *Client

	// exactly one source: an inline edge list, a dataset key, or a
	// (parent handle, diff) pair minted by Patch.
	inline  *api.Graph
	dataset string
	seed    int64
	parent  *Graph
	diff    api.GraphPatchRequest

	mu  sync.Mutex
	ref string
}

// NewGraph returns an upload-once handle for an inline graph. Nothing
// is sent until the first operation through the handle.
func (c *Client) NewGraph(n int, edges [][2]int) *Graph {
	return &Graph{c: c, inline: &api.Graph{N: n, Edges: edges}}
}

// DatasetGraph returns an upload-once handle for a built-in calibrated
// dataset, generated server-side deterministically from the seed.
func (c *Client) DatasetGraph(key string, seed int64) *Graph {
	return &Graph{c: c, dataset: key, seed: seed}
}

// Ref returns the graph's content address, registering the graph on
// first use. Concurrent callers register at most once; on failure the
// next caller retries.
func (g *Graph) Ref(ctx context.Context) (string, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ref != "" {
		return g.ref, nil
	}
	if g.parent != nil {
		// Patch-derived handle: re-derive the child through the parent,
		// which transparently re-registers ITS source first if the
		// server forgot it — the whole ancestry is recoverable from the
		// chain of handles.
		var resp *api.GraphPatchResponse
		err := g.parent.withRef(ctx, func(ref string) (err error) {
			resp, err = g.c.Graphs.Patch(ctx, ref, g.diff)
			return err
		})
		if err != nil {
			return "", err
		}
		g.ref = resp.ID
		return g.ref, nil
	}
	req := api.GraphRegisterRequest{Dataset: g.dataset, Seed: g.seed}
	if g.inline != nil {
		req = api.GraphRegisterRequest{Graph: g.inline}
	}
	resp, err := g.c.Graphs.Register(ctx, req)
	if err != nil {
		return "", err
	}
	g.ref = resp.ID
	return g.ref, nil
}

// Patch derives a new handle whose graph is this one with the diff
// applied, registering the child server-side immediately (so diff
// validation errors surface here, not on the first query). The parent
// handle is unchanged and stays usable. The child handle remembers
// (parent, diff) as its source: if the server later forgets the child
// — eviction, restart — any operation re-derives it by re-patching
// the parent, which in turn re-registers from ITS source if needed.
func (g *Graph) Patch(ctx context.Context, add, remove [][2]int) (*Graph, error) {
	child := &Graph{c: g.c, parent: g, diff: api.GraphPatchRequest{Add: add, Remove: remove}}
	if _, err := child.Ref(ctx); err != nil {
		return nil, err
	}
	return child, nil
}

// invalidate drops a cached reference the server no longer recognizes,
// so the next Ref re-registers.
func (g *Graph) invalidate(ref string) {
	g.mu.Lock()
	if g.ref == ref {
		g.ref = ""
	}
	g.mu.Unlock()
}

// withRef runs op with the graph's reference, transparently
// re-registering and retrying ONCE when the server answers
// graph_not_found — the cached reference can go stale when the
// server's LRU registry evicts the graph, someone deletes it, or the
// server restarts without persistence. The handle still holds the
// graph's source, so staleness is recoverable, not fatal.
func (g *Graph) withRef(ctx context.Context, op func(ref string) error) error {
	ref, err := g.Ref(ctx)
	if err != nil {
		return err
	}
	err = op(ref)
	if !api.IsCode(err, api.CodeGraphNotFound) {
		return err
	}
	g.invalidate(ref)
	ref, err = g.Ref(ctx)
	if err != nil {
		return err
	}
	return op(ref)
}

// Properties reports the graph's structural properties by reference.
func (g *Graph) Properties(ctx context.Context) (*api.PropertiesResponse, error) {
	var out *api.PropertiesResponse
	err := g.withRef(ctx, func(ref string) (err error) {
		out, err = g.c.Properties(ctx, api.PropertiesRequest{GraphRef: ref})
		return err
	})
	return out, err
}

// Opacity computes the graph's L-opacity report by reference; the
// request's Graph and GraphRef fields are overwritten by the handle's
// reference.
func (g *Graph) Opacity(ctx context.Context, req api.OpacityRequest) (*api.OpacityResponse, error) {
	var out *api.OpacityResponse
	err := g.withRef(ctx, func(ref string) (err error) {
		req.Graph = api.Graph{}
		req.GraphRef = ref
		out, err = g.c.Opacity(ctx, req)
		return err
	})
	return out, err
}

// Anonymize runs an anonymization method on the graph by reference;
// the request's Graph and GraphRef fields are overwritten by the
// handle's reference.
func (g *Graph) Anonymize(ctx context.Context, req api.AnonymizeRequest) (*api.AnonymizeResponse, error) {
	var out *api.AnonymizeResponse
	err := g.withRef(ctx, func(ref string) (err error) {
		req.Graph = api.Graph{}
		req.GraphRef = ref
		out, err = g.c.Anonymize(ctx, req)
		return err
	})
	return out, err
}

// KIso runs k-isomorphism anonymization on the graph by reference.
func (g *Graph) KIso(ctx context.Context, req api.KIsoRequest) (*api.KIsoResponse, error) {
	var out *api.KIsoResponse
	err := g.withRef(ctx, func(ref string) (err error) {
		req.Graph = api.Graph{}
		req.GraphRef = ref
		out, err = g.c.KIso(ctx, req)
		return err
	})
	return out, err
}

// ContinuousAudit replays a mutation stream against the graph by
// reference; with the handle's distance store warm the replay starts
// with zero APSP builds. The request's Graph and GraphRef fields are
// overwritten by the handle's reference.
func (g *Graph) ContinuousAudit(ctx context.Context, req api.ContinuousAuditRequest) (*api.ContinuousAuditResponse, error) {
	var out *api.ContinuousAuditResponse
	err := g.withRef(ctx, func(ref string) (err error) {
		req.Graph = api.Graph{}
		req.GraphRef = ref
		out, err = g.c.ContinuousAudit(ctx, req)
		return err
	})
	return out, err
}

// SubmitAnonymize submits an anonymization of the graph as an async
// job by reference; watch it with Jobs.Events or block with Jobs.Wait.
func (g *Graph) SubmitAnonymize(ctx context.Context, req api.AnonymizeRequest) (*api.JobResponse, error) {
	var out *api.JobResponse
	err := g.withRef(ctx, func(ref string) (err error) {
		req.Graph = api.Graph{}
		req.GraphRef = ref
		out, err = g.c.Jobs.Submit(ctx, "anonymize", req)
		return err
	})
	return out, err
}

// Batch executes items in one request with the graph as the shared
// reference: single-graph items that name no graph of their own
// inherit it.
func (g *Graph) Batch(ctx context.Context, items []api.BatchItem) (*api.BatchResponse, error) {
	var out *api.BatchResponse
	err := g.withRef(ctx, func(ref string) (err error) {
		out, err = g.c.Batch(ctx, api.BatchRequest{GraphRef: ref, Items: items})
		return err
	})
	return out, err
}
