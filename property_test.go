package lopacity

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomFacadeGraph builds a seeded G(n, m)-style graph via the public
// API only.
func randomFacadeGraph(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Cross-method contract: for every anonymization method, (1) the
// reported MaxOpacity equals an independent recomputation on the
// returned graph against the ORIGINAL degrees, (2) Satisfied agrees
// with MaxOpacity <= theta, and (3) replaying the edit ledger onto the
// original reproduces the returned graph.
func TestQuickMethodContract(t *testing.T) {
	methods := []Method{EdgeRemoval, EdgeRemovalInsertion, SimulatedAnnealing}
	f := func(seed int64, mRaw, thetaRaw uint8) bool {
		n := 14
		m := 10 + int(mRaw%25)
		theta := 0.2 + float64(thetaRaw%70)/100
		g := randomFacadeGraph(n, m, seed)
		for _, method := range methods {
			res, err := Anonymize(g, Options{L: 1, Theta: theta, Method: method, Seed: seed})
			if err != nil {
				t.Logf("method %v: %v", method, err)
				return false
			}
			rep := res.Graph.OpacityAgainst(1, g)
			if rep.MaxOpacity != res.MaxOpacity {
				t.Logf("method %v: reported %v, recomputed %v", method, res.MaxOpacity, rep.MaxOpacity)
				return false
			}
			if res.Satisfied != (res.MaxOpacity <= theta) {
				t.Logf("method %v: Satisfied=%v but maxLO=%v theta=%v", method, res.Satisfied, res.MaxOpacity, theta)
				return false
			}
			rebuilt := g.Clone()
			for _, e := range res.Removed {
				if !rebuilt.RemoveEdge(e[0], e[1]) {
					t.Logf("method %v: removal of absent edge %v", method, e)
					return false
				}
			}
			for _, e := range res.Inserted {
				if !rebuilt.AddEdge(e[0], e[1]) {
					t.Logf("method %v: insertion of present edge %v", method, e)
					return false
				}
			}
			if rebuilt.M() != res.Graph.M() {
				t.Logf("method %v: ledger replay edge count %d != %d", method, rebuilt.M(), res.Graph.M())
				return false
			}
			re, ge := rebuilt.Edges(), res.Graph.Edges()
			for i := range re {
				if re[i] != ge[i] {
					t.Logf("method %v: ledger replay mismatch at %d", method, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Monotonicity: a looser theta can never force more distortion than a
// stricter one under EdgeRemoval (the greedy stops at the first
// satisfying prefix of the same deterministic edit sequence).
func TestQuickRemovalThetaMonotone(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		g := randomFacadeGraph(12, 10+int(mRaw%20), seed)
		prev := -1
		for _, theta := range []float64{0.9, 0.6, 0.3} {
			res, err := Anonymize(g, Options{L: 1, Theta: theta, Method: EdgeRemoval, Seed: seed})
			if err != nil || !res.Satisfied {
				return true // infeasible cells void the comparison
			}
			edits := len(res.Removed) + len(res.Inserted)
			if prev >= 0 && edits < prev {
				// Stricter theta needed FEWER edits than looser theta:
				// possible only through tie-break randomness, which the
				// fixed seed rules out for the shared prefix.
				t.Logf("seed %d: theta=%v needed %d edits, looser run needed %d", seed, theta, edits, prev)
				return false
			}
			prev = edits
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// k-isomorphism facade contract: blocks partition the padded vertex
// set and the distortion field equals the ledger-derived value.
func TestQuickKIsoContract(t *testing.T) {
	f := func(seed int64, kRaw, mRaw uint8) bool {
		k := 2 + int(kRaw%3)
		g := randomFacadeGraph(4+k, 8+int(mRaw%20), seed)
		res, err := AnonymizeKIso(g, k, seed)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, block := range res.Blocks {
			for _, v := range block {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		if len(seen) != res.Graph.N() {
			return false
		}
		wantDist := float64(len(res.Removed)+len(res.Inserted)) / float64(g.M())
		return res.Distortion == wantDist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
