package lopacity_test

import (
	"bytes"
	"fmt"
	"log"

	lopacity "repro"
)

// The paper's Figure 1 graph, used by all examples.
func figure1Graph() *lopacity.Graph {
	return lopacity.FromEdges(7, [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {1, 4},
		{2, 4}, {2, 5}, {3, 4}, {4, 5}, {5, 6},
	})
}

func ExampleAnonymize() {
	g := figure1Graph()
	res, err := lopacity.Anonymize(g, lopacity.Options{L: 1, Theta: 0.5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Satisfied, res.MaxOpacity <= 0.5)
	// Output:
	// true true
}

func ExampleGraph_Opacity() {
	g := figure1Graph()
	rep := g.Opacity(1)
	// The three degree-4 vertices form a triangle, so the {4,4} type
	// discloses adjacency with certainty.
	fmt.Printf("max 1-opacity: %.2f\n", rep.MaxOpacity)
	for _, ty := range rep.Types {
		if ty.Label == "P{4,4}" {
			fmt.Printf("%s: %d/%d\n", ty.Label, ty.Within, ty.Total)
		}
	}
	// Output:
	// max 1-opacity: 1.00
	// P{4,4}: 3/3
}

func ExampleNewAdversary() {
	g := figure1Graph()
	adv, err := lopacity.NewAdversary(g, g)
	if err != nil {
		log.Fatal(err)
	}
	// Charles and Agatha both have four friends; how confident is the
	// adversary that they are friends with each other?
	inf := adv.LinkageConfidence(4, 4, 1)
	fmt.Printf("%.0f%%\n", 100*inf.Confidence)
	// Output:
	// 100%
}

func ExampleGraph_OpacityBy() {
	g := figure1Graph()
	// Only pairs involving the lone degree-1 vertex are of interest.
	rep, err := g.OpacityBy(1, func(u, v int) string {
		if g.Degree(u) == 1 || g.Degree(v) == 1 {
			return "leaf"
		}
		return ""
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d/%d\n", rep.Types[0].Label, rep.Types[0].Within, rep.Types[0].Total)
	// Output:
	// leaf: 1/6
}

func ExampleCompare() {
	g := figure1Graph()
	h := g.Clone()
	h.RemoveEdge(0, 1)
	util := lopacity.Compare(g, h)
	fmt.Printf("distortion %.0f%%\n", 100*util.Distortion)
	// Output:
	// distortion 10%
}

func ExampleAnonymizeKIso() {
	g := figure1Graph()
	res, err := lopacity.AnonymizeKIso(g, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	// The published graph consists of 2 pairwise isomorphic blocks with
	// no edges between them; the adversary's confidence in ANY linkage
	// is at most 1/2, at a steep utility price.
	fmt.Println(len(res.Blocks), res.Distortion > 0.3)
	// Output:
	// 2 true
}

func ExampleAnonymizeBy() {
	g := figure1Graph()
	// Classify pairs by community instead of by degree: vertices 0-3
	// are department A, the rest department B.
	community := func(v int) string {
		if v <= 3 {
			return "A"
		}
		return "B"
	}
	classifier := func(u, v int) string {
		a, b := community(u), community(v)
		if a > b {
			a, b = b, a
		}
		return a + "-" + b
	}
	res, err := lopacity.AnonymizeBy(g, lopacity.Options{L: 1, Theta: 0.5, Seed: 1}, classifier)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := res.Graph.OpacityBy(1, classifier)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Satisfied, rep.MaxOpacity <= 0.5)
	// Output:
	// true true
}

func ExampleReplayTrace() {
	g := figure1Graph()
	// Anonymize with an audit trace, then verify the trace replays to
	// the published graph and really reaches the privacy target.
	var trace bytes.Buffer
	res, err := lopacity.Anonymize(g, lopacity.Options{L: 1, Theta: 0.5, Seed: 1, TraceWriter: &trace})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := lopacity.ReplayTrace(g, &trace, lopacity.ReplayOptions{
		L: 1, Theta: 0.5, Published: res.Graph,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Steps == res.Steps, rep.FinalOpacity <= 0.5)
	// Output:
	// true true
}

func ExampleCompareCentrality() {
	g := figure1Graph()
	res, err := lopacity.Anonymize(g, lopacity.Options{L: 1, Theta: 0.5, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	cent, err := lopacity.CompareCentrality(g, res.Graph)
	if err != nil {
		log.Fatal(err)
	}
	// Rank correlation is in [-1, 1]; 1 means the importance ordering
	// of vertices survived anonymization intact.
	fmt.Println(cent.BetweennessSpearman <= 1)
	// Output:
	// true
}
