package lopacity_test

// TestDocLinks is the CI "docs" gate: every relative link and anchor in
// README.md and docs/*.md must resolve, so the reference documentation
// cannot rot silently as files and headings move. External (http, https,
// mailto) links are out of scope — checking them would make CI flaky on
// network weather.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var (
	// [text](target) — target captured up to the closing parenthesis.
	mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	// ATX headings; the anchor is derived GitHub-style from the text.
	mdHeading = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)
	fencedRE  = regexp.MustCompile("(?s)```.*?```")
	inlineRE  = regexp.MustCompile("`[^`\n]*`")
	anchorREs = []*regexp.Regexp{
		regexp.MustCompile(`[^\w\- ]`), // drop punctuation
		regexp.MustCompile(` `),        // then spaces become hyphens
	}
)

// githubAnchor mirrors GitHub's heading-to-fragment slugification
// closely enough for the headings this repo uses: lowercase, strip
// punctuation, hyphenate spaces.
func githubAnchor(heading string) string {
	s := strings.ToLower(strings.TrimSpace(heading))
	// Inline code and emphasis markers contribute their text only.
	s = strings.NewReplacer("`", "", "*", "", "_", "").Replace(s)
	s = anchorREs[0].ReplaceAllString(s, "")
	s = anchorREs[1].ReplaceAllString(s, "-")
	return s
}

// docFiles returns README.md plus every docs/*.md file.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	more, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, more...)
}

// stripCode removes fenced and inline code so markdown-looking text in
// examples is not mistaken for links or headings.
func stripCode(src string) string {
	return inlineRE.ReplaceAllString(fencedRE.ReplaceAllString(src, ""), "")
}

func TestDocLinks(t *testing.T) {
	files := docFiles(t)
	if len(files) < 3 {
		t.Fatalf("expected README.md and at least docs/API.md + docs/ARCHITECTURE.md, found %v", files)
	}

	// Pass 1: collect the anchor set of every doc file.
	anchors := make(map[string]map[string]bool, len(files))
	bodies := make(map[string]string, len(files))
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		bodies[f] = string(b)
		set := make(map[string]bool)
		for _, m := range mdHeading.FindAllStringSubmatch(stripCode(string(b)), -1) {
			set[githubAnchor(m[1])] = true
		}
		anchors[f] = set
	}

	// Pass 2: verify every relative link and fragment.
	for _, f := range files {
		for _, m := range mdLink.FindAllStringSubmatch(stripCode(bodies[f]), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			resolved := f // self-reference for pure fragments
			if path != "" {
				resolved = filepath.Join(filepath.Dir(f), path)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", f, target, err)
					continue
				}
			}
			if frag == "" {
				continue
			}
			set, ok := anchors[resolved]
			if !ok {
				// Fragment into a non-doc file (source code etc.) —
				// nothing to verify.
				continue
			}
			if !set[frag] {
				t.Errorf("%s: link %q: no heading anchors to #%s in %s (have %s)",
					f, target, frag, resolved, anchorList(set))
			}
		}
	}
}

func anchorList(set map[string]bool) string {
	var out []string
	for a := range set {
		out = append(out, "#"+a)
	}
	return fmt.Sprint(out)
}

// The README must link the doc set it advertises.
func TestReadmeLinksDocSet(t *testing.T) {
	b, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"docs/API.md", "docs/ARCHITECTURE.md"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("README.md does not link %s", want)
		}
	}
}
