package main

import (
	"bytes"
	"strings"
	"testing"

	lopacity "repro"
)

func TestRunDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "enron100", 0, 1, "edgelist"); err != nil {
		t.Fatal(err)
	}
	g, err := lopacity.ReadEdgeList(&out)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("n = %d, want 100", g.N())
	}
}

func TestRunACM(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", 120, 9, "edgelist"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "# Nodes: 120") {
		t.Fatalf("header = %q", strings.SplitN(out.String(), "\n", 2)[0])
	}
}

func TestRunDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := run(&a, "gnutella100", 0, 5, "edgelist"); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, "gnutella100", 0, 5, "edgelist"); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same key+seed produced different edge lists")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "x", 100, 1, "edgelist"); err == nil {
		t.Fatal("mutually exclusive flags accepted")
	}
	if err := run(&out, "", 5, 1, "edgelist"); err == nil {
		t.Fatal("tiny -acm accepted")
	}
	if err := run(&out, "", 0, 1, "edgelist"); err == nil {
		t.Fatal("no source flags accepted")
	}
	if err := run(&out, "no-such-key", 0, 1, "edgelist"); err == nil {
		t.Fatal("unknown key accepted")
	}
}
