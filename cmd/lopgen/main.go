// Command lopgen emits a calibrated synthetic dataset stand-in (one of
// the paper's Table 3 samples, or an ACM-style coauthorship graph at a
// chosen size) as an edge list on standard output.
//
// Usage:
//
//	lopgen -dataset google100 -seed 7 > google100.txt
//	lopgen -acm 2000 > acm2000.txt
//	lopgen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	lopacity "repro"
	"repro/internal/dataset"
	"repro/internal/graph"
)

func main() {
	var (
		ds     = flag.String("dataset", "", "dataset key (see -list)")
		acm    = flag.Int("acm", 0, "generate an ACM coauthorship stand-in with this many vertices")
		seed   = flag.Int64("seed", 1, "generation seed")
		list   = flag.Bool("list", false, "list dataset keys and exit")
		format = flag.String("format", "edgelist", "output format: edgelist | graphml | dot | adj")
	)
	flag.Parse()

	if *list {
		keys := lopacity.Datasets()
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Println(k)
		}
		return
	}

	if err := run(os.Stdout, *ds, *acm, *seed, *format); err != nil {
		fmt.Fprintln(os.Stderr, "lopgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, key string, acm int, seed int64, format string) error {
	var g *graph.Graph
	switch {
	case key != "" && acm != 0:
		return fmt.Errorf("-dataset and -acm are mutually exclusive")
	case acm != 0:
		if acm < 10 {
			return fmt.Errorf("-acm %d too small (want >= 10)", acm)
		}
		g = dataset.Generate(dataset.ACM(acm), seed)
	case key != "":
		gg, err := dataset.GenerateByKey(key, seed)
		if err != nil {
			return err
		}
		g = gg
	default:
		return fmt.Errorf("one of -dataset or -acm is required (or -list)")
	}
	switch format {
	case "edgelist":
		return graph.WriteEdgeList(w, g)
	case "graphml":
		return graph.WriteGraphML(w, g)
	case "dot":
		return graph.WriteDOT(w, g)
	case "adj":
		return graph.WriteAdjacency(w, g)
	}
	return fmt.Errorf("unknown format %q (want edgelist, graphml, dot, or adj)", format)
}
