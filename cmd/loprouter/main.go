// Command loprouter is the sharded serving tier's front door: a thin
// HTTP proxy that consistent-hashes graph content addresses onto a
// ring of lopserve backends. Clients speak the same v1 wire contract
// to the router they would speak to a single lopserve; the router
// decides which backend owns each graph, fans batches out per owner,
// follows async jobs to the peer that accepted them, and heals cold
// backends by copying graph snapshots from peers that still hold them
// (GET/PUT /v1/graphs/{id}/snapshot).
//
// Usage:
//
//	loprouter -addr :8090 \
//	          -peer 127.0.0.1:8081 -peer 127.0.0.1:8082 \
//	          -vnodes 64 -health-interval 2s -fail-after 2 \
//	          -request-log stderr
//
// -peer is repeatable, one per backend; a bare host:port gets the
// http:// scheme. Placement depends only on the peer set, not its
// order, and is deterministic across router restarts and replicas.
//
// Per-peer health: each backend's /healthz is probed every
// -health-interval; -fail-after consecutive failures eject a peer
// from preferred routing (first success re-admits it). Requests to an
// ejected or unreachable owner fail over along the ring's candidate
// order; when every candidate is down the router answers 502 with
// code "unavailable". GET /v1/stats aggregates the tier and adds a
// "router" section (ring membership, per-peer health and traffic,
// hydration counters); GET /metrics exposes the same as
// loprouter_peer_* / loprouter_ring_* / loprouter_hydrations_total.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

// stringList collects a repeatable string flag (-peer).
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	var peers stringList
	flag.Var(&peers, "peer", "lopserve backend base URL (repeatable; host:port implies http://)")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per peer on the hash ring")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "peer health probe period (also each probe's timeout)")
	failAfter := flag.Int("fail-after", 2, "consecutive failures before a peer is ejected from preferred routing")
	maxBody := flag.Int64("max-body", 32<<20, "maximum buffered request body in bytes")
	requestLog := flag.String("request-log", "stderr", "request log destination: stderr, stdout, or off")
	flag.Parse()

	var logOut io.Writer
	switch *requestLog {
	case "stderr":
		logOut = os.Stderr
	case "stdout":
		logOut = os.Stdout
	case "off":
		logOut = nil
	default:
		log.Fatalf("loprouter: -request-log must be stderr, stdout, or off, got %q", *requestLog)
	}

	rt, err := router.New(router.Config{
		Peers:          peers,
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		FailAfter:      *failAfter,
		MaxBodyBytes:   *maxBody,
		RequestLog:     logOut,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		// No WriteTimeout: the router relays job event streams that stay
		// open as long as the job runs; the backends own their own
		// response deadlines.
		IdleTimeout: 60 * time.Second,
	}
	serve(srv, rt)
}

// serve runs until failure or SIGINT/SIGTERM, then drains in-flight
// requests and stops the health prober.
func serve(srv *http.Server, rt *router.Router) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("loprouter listening on %s (%d peers)", srv.Addr, len(rt.Ring().Members()))
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("loprouter: %v", err)
		}
	case <-ctx.Done():
		log.Print("loprouter: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("loprouter: shutdown: %v", err)
		}
		rt.Close()
	}
}
