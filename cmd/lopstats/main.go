// Command lopstats prints the structural property columns of the
// paper's Tables 2 and 3 (nodes, links, diameter, average degree,
// degree standard deviation, average clustering coefficient) and the
// L-opacity report for a graph.
//
// The graph is either an edge-list file (-in) or a built-in calibrated
// dataset stand-in (-dataset; see -list for keys).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	lopacity "repro"
)

func main() {
	var (
		in      = flag.String("in", "", "input edge list file (default: stdin unless -dataset)")
		ds      = flag.String("dataset", "", "built-in dataset key (see -list)")
		seed    = flag.Int64("seed", 1, "seed for -dataset generation")
		l       = flag.Int("L", 1, "path-length threshold for the opacity report")
		list    = flag.Bool("list", false, "list built-in dataset keys and exit")
		opacity = flag.Bool("opacity", false, "include the per-type opacity matrix")
		engine  = flag.String("engine", "auto", "APSP engine: auto, bfs, fw, pointer, or bitbfs")
		store   = flag.String("store", "compact", "distance-store backing: compact (uint8) or packed (int32)")
	)
	flag.Parse()

	if *list {
		keys := lopacity.Datasets()
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Println(k)
		}
		return
	}

	if err := run(os.Stdout, *in, *ds, *seed, *l, *opacity, *engine, *store); err != nil {
		fmt.Fprintln(os.Stderr, "lopstats:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, in, ds string, seed int64, l int, showOpacity bool, engine, store string) error {
	g, err := load(in, ds, seed)
	if err != nil {
		return err
	}
	p := g.Properties()
	fmt.Fprintf(w, "nodes      %d\n", p.Nodes)
	fmt.Fprintf(w, "links      %d\n", p.Links)
	fmt.Fprintf(w, "diameter   %d\n", p.Diameter)
	fmt.Fprintf(w, "av. deg.   %.2f\n", p.AvgDegree)
	fmt.Fprintf(w, "STDD       %.2f\n", p.DegreeStdDev)
	fmt.Fprintf(w, "ACC        %.4f\n", p.AvgClustering)
	fmt.Fprintf(w, "assort.    %+.4f\n", p.Assortativity)
	fmt.Fprintf(w, "avg path   %.2f\n", p.AvgPathLength)

	rep, err := g.OpacityWith(l, nil, lopacity.ReportOptions{Engine: engine, Store: store})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "max %d-opacity  %.4f\n", rep.L, rep.MaxOpacity)
	if showOpacity {
		fmt.Fprintf(w, "%-12s %8s %8s %10s\n", "type", "|T|", "<=L", "opacity")
		for _, ty := range rep.Types {
			fmt.Fprintf(w, "%-12s %8d %8d %10.4f\n", ty.Label, ty.Total, ty.Within, ty.Opacity)
		}
	}
	return nil
}

func load(in, ds string, seed int64) (*lopacity.Graph, error) {
	if ds != "" {
		return lopacity.Dataset(ds, seed)
	}
	if in == "" {
		return lopacity.ReadEdgeList(os.Stdin)
	}
	f, err := os.Open(in)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lopacity.ReadEdgeList(f)
}
