package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunOnDataset(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "", "gnutella100", 1, 1, false, "auto", "compact"); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"nodes      100", "links      116", "max 1-opacity"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunOnFileWithOpacityMatrix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	content := "# Nodes: 7 Edges: 10\n0 1\n0 2\n1 2\n1 3\n1 4\n2 4\n2 5\n3 4\n4 5\n5 6\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run(&out, path, "", 1, 1, true, "bitbfs", "packed"); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "max 1-opacity  1.0000") {
		t.Fatalf("expected max opacity 1.0 for Figure 1:\n%s", s)
	}
	if !strings.Contains(s, "P{4,4}") {
		t.Fatalf("opacity matrix missing P{4,4} row:\n%s", s)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "/does/not/exist", "", 1, 1, false, "auto", "compact"); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := run(&out, "", "no-such-key", 1, 1, false, "auto", "compact"); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}
