// Command lopreplay verifies an anonymization audit trail: it replays a
// JSONL trace (as written by `lopacify -trace` or
// lopacity.Options.TraceWriter) against the original edge list and
// checks, step by step, that the log is internally consistent and that
// it reproduces the published graph.
//
// Usage:
//
//	lopreplay -in original.txt -trace run.jsonl -published anon.txt -L 1 -theta 0.5
//
// Checks performed:
//
//  1. Every removal removes an edge that is present; every insertion
//     inserts an edge that is absent (no contradictory or duplicate
//     operations).
//  2. The per-step maxOpacity recorded in the trace matches an
//     independent recomputation against the original degrees (skipped
//     with -fast on large inputs).
//  3. The replayed final graph is exactly the published edge list
//     (when -published is given).
//  4. The final graph satisfies L-opacity at the stated theta.
//
// Exit status is non-zero on any violation, so the command can gate a
// release pipeline the same way cmd/lopattack does — but against the
// anonymizer's own log rather than the adversary model.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	lopacity "repro"
)

func main() {
	var (
		in        = flag.String("in", "", "original edge list (required)")
		trace     = flag.String("trace", "", "JSONL trace file (required)")
		published = flag.String("published", "", "published edge list to compare the replay against (optional)")
		l         = flag.Int("L", 1, "path-length threshold the run targeted")
		theta     = flag.Float64("theta", 1, "confidence threshold the run targeted")
		fast      = flag.Bool("fast", false, "skip per-step opacity recomputation (structure checks only)")
	)
	flag.Parse()

	if err := run(os.Stdout, *in, *trace, *published, *l, *theta, *fast); err != nil {
		fmt.Fprintln(os.Stderr, "lopreplay:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, inPath, tracePath, publishedPath string, L int, theta float64, fast bool) error {
	if inPath == "" || tracePath == "" {
		return fmt.Errorf("-in and -trace are required")
	}
	g, err := readGraph(inPath)
	if err != nil {
		return fmt.Errorf("reading original: %w", err)
	}
	opts := lopacity.ReplayOptions{L: L, Theta: theta, SkipOpacityCheck: fast}
	if publishedPath != "" {
		pub, err := readGraph(publishedPath)
		if err != nil {
			return fmt.Errorf("reading published: %w", err)
		}
		opts.Published = pub
	}

	tf, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	defer tf.Close()

	rep, err := lopacity.ReplayTrace(g, tf, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %d steps (%d removals, %d insertions)\n", rep.Steps, rep.Removals, rep.Insertions)
	fmt.Fprintf(out, "final max %d-opacity: %.4f (target theta %.4f)\n", L, rep.FinalOpacity, theta)
	fmt.Fprintln(out, "audit trail verified")
	return nil
}

func readGraph(path string) (*lopacity.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lopacity.ReadEdgeList(f)
}
