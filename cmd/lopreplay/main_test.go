package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	lopacity "repro"
)

// writeFixture anonymizes the Figure 1 graph with a trace and returns
// the original, trace, and published file paths.
func writeFixture(t *testing.T, theta float64) (in, trace, published string) {
	t.Helper()
	dir := t.TempDir()
	in = filepath.Join(dir, "orig.txt")
	trace = filepath.Join(dir, "trace.jsonl")
	published = filepath.Join(dir, "anon.txt")

	g := lopacity.FromEdges(7, [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {1, 4}, {2, 4}, {2, 5}, {3, 4}, {4, 5}, {5, 6},
	})
	var origBuf bytes.Buffer
	if err := g.WriteEdgeList(&origBuf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(in, origBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	traceFile, err := os.Create(trace)
	if err != nil {
		t.Fatal(err)
	}
	res, err := lopacity.Anonymize(g, lopacity.Options{
		L: 1, Theta: theta, Seed: 1, TraceWriter: traceFile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := traceFile.Close(); err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("fixture run unsatisfied at theta=%v", theta)
	}

	var pubBuf bytes.Buffer
	if err := res.Graph.WriteEdgeList(&pubBuf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(published, pubBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return in, trace, published
}

func TestReplayVerifiesHonestTrace(t *testing.T) {
	in, trace, published := writeFixture(t, 0.5)
	var out bytes.Buffer
	if err := run(&out, in, trace, published, 1, 0.5, false); err != nil {
		t.Fatalf("honest trace rejected: %v", err)
	}
	if !strings.Contains(out.String(), "audit trail verified") {
		t.Fatalf("missing verdict:\n%s", out.String())
	}
}

func TestReplayFastMode(t *testing.T) {
	in, trace, published := writeFixture(t, 0.5)
	var out bytes.Buffer
	if err := run(&out, in, trace, published, 1, 0.5, true); err != nil {
		t.Fatalf("fast mode rejected honest trace: %v", err)
	}
}

func TestReplayDetectsTamperedTrace(t *testing.T) {
	in, trace, published := writeFixture(t, 0.5)
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the recorded opacity of the first step.
	tampered := strings.Replace(string(data), `"maxOpacity":`, `"maxOpacity":0.123456,"x":`, 1)
	if tampered == string(data) {
		t.Fatal("tamper substitution failed")
	}
	if err := os.WriteFile(trace, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&bytes.Buffer{}, in, trace, published, 1, 0.5, false); err == nil {
		t.Fatal("tampered opacity accepted")
	}
}

func TestReplayDetectsWrongPublishedGraph(t *testing.T) {
	in, trace, _ := writeFixture(t, 0.5)
	// Publish the ORIGINAL instead of the anonymized graph.
	if err := run(&bytes.Buffer{}, in, trace, in, 1, 0.5, true); err == nil {
		t.Fatal("mismatched published graph accepted")
	}
}

func TestReplayDetectsContradictoryOps(t *testing.T) {
	in, trace, published := writeFixture(t, 0.5)
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate the first line: the second replay of the same removal
	// must fail (edge already absent).
	lines := strings.SplitN(string(data), "\n", 2)
	dup := lines[0] + "\n" + lines[0] + "\n"
	if len(lines) > 1 {
		dup += lines[1]
	}
	if err := os.WriteFile(trace, []byte(dup), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&bytes.Buffer{}, in, trace, published, 1, 0.5, true); err == nil {
		t.Fatal("duplicate removal accepted")
	}
}

func TestReplayFailsWhenTargetNotMet(t *testing.T) {
	// Replay an honest trace but demand a stricter theta than the run
	// achieved: the final check must fail.
	in, trace, published := writeFixture(t, 0.8)
	err := run(&bytes.Buffer{}, in, trace, published, 1, 0.05, true)
	if err == nil {
		t.Fatal("final opacity above theta accepted")
	}
	if !strings.Contains(err.Error(), "violates L-opacity") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReplayRequiredFlags(t *testing.T) {
	if err := run(&bytes.Buffer{}, "", "", "", 1, 0.5, false); err == nil {
		t.Fatal("missing flags accepted")
	}
}

func TestReplayRejectsGarbageTrace(t *testing.T) {
	in, _, _ := writeFixture(t, 0.5)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&bytes.Buffer{}, in, bad, "", 1, 0.5, false); err == nil {
		t.Fatal("garbage trace accepted")
	}
}
