// Command lopexperiments regenerates the tables and figures of the
// paper's evaluation (Section 6). Each experiment prints an aligned
// text table whose rows match the paper's plotted series; EXPERIMENTS.md
// records the paper-versus-measured comparison.
//
// Usage:
//
//	lopexperiments -list
//	lopexperiments -run fig6a
//	lopexperiments -run all -full -csv out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	var (
		run  = flag.String("run", "", "experiment id, or 'all'")
		list = flag.Bool("list", false, "list experiment ids and exit")
		full = flag.Bool("full", false, "run the paper-scale sweep (slow) instead of the quick regime")
		reps = flag.Int("reps", 3, "repetitions per cell (paper uses 10)")
		seed = flag.Int64("seed", 1, "experiment seed")
		csv  = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "lopexperiments: -run <id>|all is required (use -list for ids)")
		os.Exit(2)
	}

	cfg := experiments.Config{Seed: *seed, Repetitions: *reps, Full: *full, Out: os.Stderr}
	if err := execute(*run, cfg, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "lopexperiments:", err)
		os.Exit(1)
	}
}

func execute(id string, cfg experiments.Config, csvDir string) error {
	var tables []experiments.Table
	if id == "all" {
		ts, err := experiments.RunAll(cfg)
		if err != nil {
			return err
		}
		tables = ts
	} else {
		t, err := experiments.Run(id, cfg)
		if err != nil {
			return err
		}
		tables = []experiments.Table{t}
	}
	for _, t := range tables {
		fmt.Println(t.String())
		if csvDir != "" {
			if err := os.MkdirAll(csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(csvDir, t.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
