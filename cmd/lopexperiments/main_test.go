package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func TestExecuteSingleWithCSV(t *testing.T) {
	dir := t.TempDir()
	cfg := experiments.Config{Seed: 1, Repetitions: 1}
	if err := execute("table1", cfg, dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "Data Set,") {
		t.Fatalf("csv header = %q", strings.SplitN(string(data), "\n", 2)[0])
	}
	lines := strings.Count(string(data), "\n")
	if lines != 8 { // header + 7 datasets
		t.Fatalf("csv has %d lines, want 8", lines)
	}
}

func TestExecuteUnknownID(t *testing.T) {
	cfg := experiments.Config{Seed: 1, Repetitions: 1}
	if err := execute("nope", cfg, ""); err == nil {
		t.Fatal("unknown id accepted")
	}
}
