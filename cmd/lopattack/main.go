// Command lopattack audits a published graph against the paper's
// adversary: an attacker who knows original degrees and probes for
// short linkages. It reports the strongest available inference, every
// degree pair whose linkage confidence exceeds the threshold, and the
// identity-protection level, so a data vendor can check a release
// before publishing it.
//
// Usage:
//
//	lopattack -in anonymized.txt -orig original.txt -L 2 -theta 0.5
//	lopattack -in graph.txt -L 1 -theta 0.5          # audit a raw release
//
// The exit status is 0 when the published graph is L-opaque with
// respect to theta and 1 otherwise, so the tool slots into release
// pipelines as a gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	lopacity "repro"
)

func main() {
	var (
		in    = flag.String("in", "", "published graph edge list (default: stdin)")
		orig  = flag.String("orig", "", "original graph edge list for degree knowledge (default: same as -in)")
		l     = flag.Int("L", 1, "path-length bound of the linkage inference")
		theta = flag.Float64("theta", 0.5, "confidence threshold to audit against")
		top   = flag.Int("top", 10, "maximum vulnerable pairs to print")
	)
	flag.Parse()

	vulnerable, err := run(os.Stdout, *in, *orig, *l, *theta, *top)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lopattack:", err)
		os.Exit(2)
	}
	if vulnerable {
		os.Exit(1)
	}
}

// run performs the audit and reports whether any inference exceeded
// theta.
func run(w io.Writer, in, orig string, l int, theta float64, top int) (bool, error) {
	published, err := load(in)
	if err != nil {
		return false, fmt.Errorf("published graph: %w", err)
	}
	original := published
	if orig != "" {
		if original, err = load(orig); err != nil {
			return false, fmt.Errorf("original graph: %w", err)
		}
	}
	adv, err := lopacity.NewAdversary(published, original)
	if err != nil {
		return false, err
	}

	ids := adv.IdentityCandidates()
	minC := 0
	if len(ids) > 0 {
		minC = ids[0]
	}
	fmt.Fprintf(w, "published graph    n=%d m=%d\n", published.N(), published.M())
	fmt.Fprintf(w, "identity floor     %d candidate(s) for the most exposed degree\n", minC)

	max := adv.MaxConfidence(l)
	fmt.Fprintf(w, "strongest linkage  degrees {%d,%d}: %d/%d pairs within %d hops = %.1f%%\n",
		max.DegreeA, max.DegreeB, max.Within, max.Total, l, 100*max.Confidence)

	vuln := adv.VulnerablePairs(l, theta)
	if len(vuln) == 0 {
		fmt.Fprintf(w, "verdict            %d-opaque w.r.t. theta=%.0f%%: safe to publish under this model\n", l, 100*theta)
		return false, nil
	}
	fmt.Fprintf(w, "verdict            NOT %d-opaque w.r.t. theta=%.0f%%: %d vulnerable degree pair(s)\n", l, 100*theta, len(vuln))
	for i, inf := range vuln {
		if i >= top {
			fmt.Fprintf(w, "  ... and %d more\n", len(vuln)-top)
			break
		}
		fmt.Fprintf(w, "  {%d,%d}: %d/%d = %.1f%%\n", inf.DegreeA, inf.DegreeB, inf.Within, inf.Total, 100*inf.Confidence)
	}
	return true, nil
}

func load(path string) (*lopacity.Graph, error) {
	if path == "" {
		return lopacity.ReadEdgeList(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lopacity.ReadEdgeList(f)
}
