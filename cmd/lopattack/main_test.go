package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeGraph(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const figure1 = "# Nodes: 7 Edges: 10\n0 1\n0 2\n1 2\n1 3\n1 4\n2 4\n2 5\n3 4\n4 5\n5 6\n"

func TestAuditRawGraphIsVulnerable(t *testing.T) {
	in := writeGraph(t, "g.txt", figure1)
	var out bytes.Buffer
	vulnerable, err := run(&out, in, "", 1, 0.5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !vulnerable {
		t.Fatal("Figure 1 audited as safe at theta=0.5")
	}
	s := out.String()
	if !strings.Contains(s, "NOT 1-opaque") {
		t.Fatalf("verdict missing: %s", s)
	}
	if !strings.Contains(s, "100.0%") {
		t.Fatalf("expected a certain inference: %s", s)
	}
}

func TestAuditSafeAtThetaOne(t *testing.T) {
	in := writeGraph(t, "g.txt", figure1)
	var out bytes.Buffer
	vulnerable, err := run(&out, in, "", 1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if vulnerable {
		t.Fatalf("theta=1 can never be exceeded: %s", out.String())
	}
	if !strings.Contains(out.String(), "safe to publish") {
		t.Fatalf("verdict missing: %s", out.String())
	}
}

func TestAuditWithSeparateOriginal(t *testing.T) {
	// Published graph: Figure 1 with the {1,2} edge removed; knowledge
	// still comes from the original.
	published := strings.Replace(figure1, "1 2\n", "", 1)
	published = strings.Replace(published, "Edges: 10", "Edges: 9", 1)
	in := writeGraph(t, "anon.txt", published)
	orig := writeGraph(t, "orig.txt", figure1)
	var out bytes.Buffer
	if _, err := run(&out, in, orig, 1, 0.5, 10); err != nil {
		t.Fatal(err)
	}
	// The degree-4 candidate set comes from the ORIGINAL graph (3
	// vertices), even though published degrees changed.
	if !strings.Contains(out.String(), "n=7 m=9") {
		t.Fatalf("published stats wrong: %s", out.String())
	}
}

func TestAuditTopTruncation(t *testing.T) {
	in := writeGraph(t, "g.txt", figure1)
	var out bytes.Buffer
	if _, err := run(&out, in, "", 1, 0.0, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "... and") {
		t.Fatalf("expected truncation marker: %s", out.String())
	}
}

func TestAuditErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(&out, "/does/not/exist", "", 1, 0.5, 10); err == nil {
		t.Fatal("missing published file accepted")
	}
	in := writeGraph(t, "g.txt", figure1)
	if _, err := run(&out, in, "/does/not/exist", 1, 0.5, 10); err == nil {
		t.Fatal("missing original file accepted")
	}
}
