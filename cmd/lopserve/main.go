// Command lopserve exposes the L-opacity toolkit as an HTTP service:
// anonymization, privacy auditing, k-isomorphism, opacity reports, and
// structural property reports, all with JSON bodies.
//
// Usage:
//
//	lopserve -addr :8080 -max-body 8388608 -max-budget 30s -engine auto -store compact
//
// Endpoints (see internal/server for request/response schemas):
//
//	GET  /healthz
//	POST /v1/properties
//	POST /v1/opacity
//	POST /v1/anonymize
//	POST /v1/kiso
//	POST /v1/audit
//
// The process shuts down cleanly on SIGINT/SIGTERM, draining in-flight
// requests for up to 10 seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		maxBody   = flag.Int64("max-body", 8<<20, "maximum request body bytes")
		maxVerts  = flag.Int("max-vertices", 20000, "maximum graph size accepted")
		maxBudget = flag.Duration("max-budget", 30*time.Second, "per-request anonymization wall-clock cap")
		engine    = flag.String("engine", "auto", "default APSP engine: auto, bfs, fw, pointer, or bitbfs")
		store     = flag.String("store", "compact", "default distance-store backing: compact (uint8) or packed (int32)")
	)
	flag.Parse()

	cfg := server.Config{
		MaxBodyBytes: *maxBody,
		MaxVertices:  *maxVerts,
		MaxBudget:    *maxBudget,
		Engine:       *engine,
		Store:        *store,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("lopserve: %v", err)
	}

	serve(buildServer(*addr, cfg))
}

// buildServer assembles the http.Server with production timeouts.
func buildServer(addr string, cfg server.Config) *http.Server {
	// Mirror server.Config's zero-value default so the write deadline
	// always exceeds the budget the handler will actually grant.
	maxBudget := cfg.MaxBudget
	if maxBudget <= 0 {
		maxBudget = 30 * time.Second
	}
	handler := server.New(cfg)
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		// Anonymization runs can legitimately take the whole budget;
		// give responses headroom beyond it.
		WriteTimeout: maxBudget + 15*time.Second,
		IdleTimeout:  60 * time.Second,
	}
}

// serve runs the server until it fails or the process receives
// SIGINT/SIGTERM, then drains in-flight requests.
func serve(srv *http.Server) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("lopserve listening on %s", srv.Addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("lopserve: %v", err)
		}
	case <-ctx.Done():
		log.Print("lopserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("lopserve: shutdown: %v", err)
		}
	}
}
