// Command lopserve exposes the L-opacity toolkit as an HTTP service:
// anonymization, privacy auditing, k-isomorphism, opacity reports,
// structural property reports, async job submission, and a
// content-addressed result cache, all with JSON bodies.
//
// Usage:
//
//	lopserve -addr :8080 -max-body 8388608 -max-budget 30s \
//	         -engine auto -store compact \
//	         -workers 4 -queue 64 -cache-entries 256 -job-ttl 15m \
//	         -graphs 64 -stores-per-graph 4 -preload gnutella500=1 \
//	         -data-dir /var/lib/lopserve \
//	         -auth-token s3cret -rate-limit 50 -rate-burst 100
//
// With -auth-token set (repeatable for several clients), every request
// must carry "Authorization: Bearer <token>" or it answers 401;
// -rate-limit adds a per-client token bucket (keyed by token, or by
// remote host without auth) answering 429 with Retry-After beyond the
// budget, and -rate-quota caps a client's lifetime requests. The
// liveness probes and GET /metrics are exempt from both, so load
// balancers and Prometheus scrapers need no credentials. Every request
// is logged as one structured JSON line (-request-log stderr|stdout|
// off) carrying the X-Request-ID also echoed to the client and stamped
// on async job events.
//
// With -data-dir set, registered graphs and their built distance
// stores are snapshotted write-through into the directory and
// recovered at startup, so a restarted server answers its first
// graph_ref queries with zero APSP builds (see the "persistence"
// section of GET /v1/stats). Adding -mmap-stores makes that recovery
// zero-copy: store snapshots are memory-mapped read-only instead of
// decoded into the heap, so warm-restart time is independent of how
// many gigabytes of distance triangles are on disk.
//
// Adding -paged-stores instead (mutually exclusive with -mmap-stores)
// serves every distance store as a paged view over its snapshot file,
// windowed through one process-wide LRU page cache capped by
// -store-budget-bytes: total resident triangle bytes stay under the
// budget no matter how many graphs are registered, and fresh builds
// stream straight into their snapshot file without ever materializing
// the triangle in the heap — the out-of-core mode for distance data
// larger than RAM. The cache's occupancy and fault traffic appear
// under "registry.page_cache" in GET /v1/stats and as
// lopserve_store_page_cache_* gauges on /metrics, next to the
// per-backing lopserve_store_bytes / lopserve_store_file_bytes
// footprint gauges.
//
// PATCH /v1/graphs/{id} derives new registered graphs by edge diffs:
// the child is content-addressed like any registration, carries a
// lineage record (parent id + diff), and hydrates its distance stores
// by incrementally repairing the parent's warm store instead of
// rebuilding APSP from scratch (counters: registry.mutations,
// registry.repairs, registry.repair_fallbacks on /v1/stats).
// -disable-store-repair forces the rebuild path for debugging.
//
// The wire contract lives in the exported api package; the official Go
// client (package client) and examples/client consume it. Endpoints
// (see docs/API.md for the full reference):
//
//	GET  /v1/healthz      liveness probe (also at legacy /healthz)
//	POST /v1/graphs       register a graph (content-addressed; see -preload)
//	GET  /v1/graphs       list registered graphs
//	GET/PATCH/DELETE /v1/graphs/{id}  (PATCH derives a lineage-tracked child)
//	GET/PUT /v1/graphs/{id}/snapshot  export/install a graph + its warm
//	                      distance stores (peer hydration; see loprouter)
//	POST /v1/properties
//	POST /v1/opacity
//	POST /v1/anonymize
//	POST /v1/kiso
//	POST /v1/audit
//	POST /v1/continuous_audit  per-step opacity over a mutation stream
//	POST /v1/replay
//	POST /v1/batch        heterogeneous operations, one shared graph ref
//	POST /v1/jobs         submit any POST operation async
//	GET  /v1/jobs/{id}    poll status/result
//	DELETE /v1/jobs/{id}  cancel
//	GET  /v1/jobs/{id}/events  NDJSON stream of lifecycle + progress
//	GET  /v1/stats        cache, registry, and queue counters
//
// The process shuts down cleanly on SIGINT/SIGTERM: in-flight HTTP
// requests drain for up to 10 seconds, then the async job pool is
// closed — queued jobs are cancelled, running jobs have their contexts
// cancelled, and the workers are awaited within the same deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

// stringList collects a repeatable string flag (-auth-token).
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }

func (s *stringList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("auth token must be non-empty")
	}
	*s = append(*s, v)
	return nil
}

// preload is one -preload directive: a built-in dataset key and the
// generation seed, written on the command line as "key=seed" (a bare
// "key" selects seed 1).
type preload struct {
	key  string
	seed int64
}

// preloadList collects repeated -preload flags.
type preloadList []preload

func (p *preloadList) String() string {
	parts := make([]string, len(*p))
	for i, pl := range *p {
		parts[i] = fmt.Sprintf("%s=%d", pl.key, pl.seed)
	}
	return strings.Join(parts, ",")
}

func (p *preloadList) Set(v string) error {
	key, seedStr, hasSeed := strings.Cut(v, "=")
	if key == "" {
		return fmt.Errorf("preload %q: want key=seed", v)
	}
	seed := int64(1)
	if hasSeed {
		var err error
		seed, err = strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return fmt.Errorf("preload %q: bad seed: %w", v, err)
		}
	}
	*p = append(*p, preload{key: key, seed: seed})
	return nil
}

func main() {
	var preloads preloadList
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxBody      = flag.Int64("max-body", 8<<20, "maximum request body bytes")
		maxVerts     = flag.Int("max-vertices", 20000, "maximum graph size accepted")
		maxBudget    = flag.Duration("max-budget", 30*time.Second, "per-request anonymization wall-clock cap")
		engine       = flag.String("engine", "auto", "default APSP engine: auto, bfs, fw, pointer, or bitbfs")
		store        = flag.String("store", "compact", "default distance-store backing: compact (uint8), packed (int32), mapped, or paged (read-only snapshot views; builds fall back to compact)")
		workers      = flag.Int("workers", 0, "async job worker goroutines (0 selects 4)")
		queue        = flag.Int("queue", 0, "async job queue depth before 429s (0 selects 64)")
		cacheEntries = flag.Int("cache-entries", 0, "content-addressed result cache capacity (0 selects 256)")
		jobTTL       = flag.Duration("job-ttl", 0, "retention of finished async jobs (0 selects 15m)")
		graphs       = flag.Int("graphs", 0, "graph registry capacity (0 selects 64)")
		storesPer    = flag.Int("stores-per-graph", 0, "cached distance stores per registered graph (0 selects 4)")
		maxBatch     = flag.Int("max-batch", 0, "operations accepted per POST /v1/batch request (0 selects 64)")
		dataDir      = flag.String("data-dir", "", "snapshot directory for registry persistence (empty disables)")
		mmapStores   = flag.Bool("mmap-stores", false, "hydrate persisted distance stores at boot as read-only memory-mapped views (requires -data-dir)")
		pagedStores  = flag.Bool("paged-stores", false, "serve distance stores as paged views over their snapshot files, capped by -store-budget-bytes (requires -data-dir; excludes -mmap-stores)")
		storeBudget  = flag.Int64("store-budget-bytes", 0, "resident byte ceiling for the paged-store page cache (0 selects 256 MiB; used with -paged-stores)")
		noRepair     = flag.Bool("disable-store-repair", false, "hydrate PATCH-derived graphs' distance stores by full rebuild instead of incremental repair (debugging escape hatch)")
		rateLimit    = flag.Float64("rate-limit", 0, "per-client request rate in req/s; 0 disables rate limiting")
		rateBurst    = flag.Int("rate-burst", 0, "token-bucket burst capacity (0 selects 2x rate-limit)")
		rateQuota    = flag.Int64("rate-quota", 0, "lifetime request quota per client; 0 means unlimited")
		requestLog   = flag.String("request-log", "stderr", "structured JSON request log destination: stderr, stdout, or off")
	)
	var authTokens stringList
	flag.Var(&authTokens, "auth-token", "bearer token required on every request (repeatable; empty disables auth)")
	flag.Var(&preloads, "preload", "register a built-in dataset at boot as key=seed (repeatable)")
	flag.Parse()

	var logDest io.Writer
	switch *requestLog {
	case "stderr":
		logDest = os.Stderr
	case "stdout":
		logDest = os.Stdout
	case "off":
		logDest = nil
	default:
		log.Fatalf("lopserve: -request-log must be stderr, stdout, or off, got %q", *requestLog)
	}

	cfg := server.Config{
		MaxBodyBytes:       *maxBody,
		MaxVertices:        *maxVerts,
		MaxBudget:          *maxBudget,
		Engine:             *engine,
		Store:              *store,
		Workers:            *workers,
		QueueDepth:         *queue,
		CacheEntries:       *cacheEntries,
		JobTTL:             *jobTTL,
		GraphCapacity:      *graphs,
		StoresPerGraph:     *storesPer,
		MaxBatchItems:      *maxBatch,
		DataDir:            *dataDir,
		MappedStores:       *mmapStores,
		PagedStores:        *pagedStores,
		StoreBudgetBytes:   *storeBudget,
		DisableStoreRepair: *noRepair,
		AuthTokens:         authTokens,
		RateLimit:          *rateLimit,
		RateBurst:          *rateBurst,
		RateQuota:          *rateQuota,
		RequestLog:         logDest,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("lopserve: %v", err)
	}

	api := server.New(cfg)
	for _, pl := range preloads {
		id, err := api.RegisterDataset(pl.key, pl.seed)
		if err != nil {
			log.Fatalf("lopserve: preload %s: %v", pl.key, err)
		}
		log.Printf("lopserve: preloaded %s (seed %d) as graph %s", pl.key, pl.seed, id)
	}
	serve(buildServer(*addr, cfg, api), api)
}

// buildServer assembles the http.Server with production timeouts around
// the given handler.
func buildServer(addr string, cfg server.Config, handler http.Handler) *http.Server {
	// Mirror server.Config's zero-value default so the write deadline
	// always exceeds the budget the handler will actually grant.
	maxBudget := cfg.MaxBudget
	if maxBudget <= 0 {
		maxBudget = 30 * time.Second
	}
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		// Anonymization runs can legitimately take the whole budget;
		// give responses headroom beyond it.
		WriteTimeout: maxBudget + 15*time.Second,
		IdleTimeout:  60 * time.Second,
	}
}

// serve runs the server until it fails or the process receives
// SIGINT/SIGTERM, then drains in-flight requests and the async job
// pool.
func serve(srv *http.Server, api *server.Server) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("lopserve listening on %s", srv.Addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("lopserve: %v", err)
		}
	case <-ctx.Done():
		log.Print("lopserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("lopserve: shutdown: %v", err)
		}
		// Drain the async subsystem second, inside whatever remains of
		// the deadline: a poller that got its response during Shutdown
		// has already seen the job state it is owed.
		if err := api.Close(shutdownCtx); err != nil {
			log.Printf("lopserve: job drain: %v", err)
		}
	}
}
