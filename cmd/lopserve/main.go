// Command lopserve exposes the L-opacity toolkit as an HTTP service:
// anonymization, privacy auditing, k-isomorphism, opacity reports,
// structural property reports, async job submission, and a
// content-addressed result cache, all with JSON bodies.
//
// Usage:
//
//	lopserve -addr :8080 -max-body 8388608 -max-budget 30s \
//	         -engine auto -store compact \
//	         -workers 4 -queue 64 -cache-entries 256 -job-ttl 15m
//
// Endpoints (see docs/API.md for the full reference):
//
//	GET  /healthz
//	POST /v1/properties
//	POST /v1/opacity
//	POST /v1/anonymize
//	POST /v1/kiso
//	POST /v1/audit
//	POST /v1/jobs         submit any POST operation async
//	GET  /v1/jobs/{id}    poll status/result
//	DELETE /v1/jobs/{id}  cancel
//	GET  /v1/stats        cache and queue counters
//
// The process shuts down cleanly on SIGINT/SIGTERM: in-flight HTTP
// requests drain for up to 10 seconds, then the async job pool is
// closed — queued jobs are cancelled, running jobs have their contexts
// cancelled, and the workers are awaited within the same deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxBody      = flag.Int64("max-body", 8<<20, "maximum request body bytes")
		maxVerts     = flag.Int("max-vertices", 20000, "maximum graph size accepted")
		maxBudget    = flag.Duration("max-budget", 30*time.Second, "per-request anonymization wall-clock cap")
		engine       = flag.String("engine", "auto", "default APSP engine: auto, bfs, fw, pointer, or bitbfs")
		store        = flag.String("store", "compact", "default distance-store backing: compact (uint8) or packed (int32)")
		workers      = flag.Int("workers", 0, "async job worker goroutines (0 selects 4)")
		queue        = flag.Int("queue", 0, "async job queue depth before 429s (0 selects 64)")
		cacheEntries = flag.Int("cache-entries", 0, "content-addressed result cache capacity (0 selects 256)")
		jobTTL       = flag.Duration("job-ttl", 0, "retention of finished async jobs (0 selects 15m)")
	)
	flag.Parse()

	cfg := server.Config{
		MaxBodyBytes: *maxBody,
		MaxVertices:  *maxVerts,
		MaxBudget:    *maxBudget,
		Engine:       *engine,
		Store:        *store,
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheEntries,
		JobTTL:       *jobTTL,
	}
	if err := cfg.Validate(); err != nil {
		log.Fatalf("lopserve: %v", err)
	}

	api := server.New(cfg)
	serve(buildServer(*addr, cfg, api), api)
}

// buildServer assembles the http.Server with production timeouts around
// the given handler.
func buildServer(addr string, cfg server.Config, handler http.Handler) *http.Server {
	// Mirror server.Config's zero-value default so the write deadline
	// always exceeds the budget the handler will actually grant.
	maxBudget := cfg.MaxBudget
	if maxBudget <= 0 {
		maxBudget = 30 * time.Second
	}
	return &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		// Anonymization runs can legitimately take the whole budget;
		// give responses headroom beyond it.
		WriteTimeout: maxBudget + 15*time.Second,
		IdleTimeout:  60 * time.Second,
	}
}

// serve runs the server until it fails or the process receives
// SIGINT/SIGTERM, then drains in-flight requests and the async job
// pool.
func serve(srv *http.Server, api *server.Server) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("lopserve listening on %s", srv.Addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("lopserve: %v", err)
		}
	case <-ctx.Done():
		log.Print("lopserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("lopserve: shutdown: %v", err)
		}
		// Drain the async subsystem second, inside whatever remains of
		// the deadline: a poller that got its response during Shutdown
		// has already seen the job state it is owed.
		if err := api.Close(shutdownCtx); err != nil {
			log.Printf("lopserve: job drain: %v", err)
		}
	}
}
