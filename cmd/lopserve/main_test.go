package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

func TestBuildServerTimeouts(t *testing.T) {
	srv := buildServer(":0", server.Config{MaxBodyBytes: 1 << 20, MaxVertices: 500, MaxBudget: 10 * time.Second})
	if srv.ReadHeaderTimeout != 5*time.Second {
		t.Fatalf("ReadHeaderTimeout=%v", srv.ReadHeaderTimeout)
	}
	if srv.WriteTimeout != 25*time.Second {
		t.Fatalf("WriteTimeout=%v, want budget+15s", srv.WriteTimeout)
	}
	if srv.Handler == nil {
		t.Fatal("nil handler")
	}
}

// End-to-end smoke test: the assembled handler serves an anonymize
// round-trip over a real listener.
func TestServerEndToEnd(t *testing.T) {
	srv := buildServer(":0", server.Config{MaxBodyBytes: 1 << 20, MaxVertices: 500, MaxBudget: 5 * time.Second})
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := `{"graph":{"n":4,"edges":[[0,1],[1,2],[2,3],[0,3],[0,2]]},"l":1,"theta":0.6,"method":"rem","seed":1}`
	anon, err := http.Post(ts.URL+"/v1/anonymize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Body.Close()
	if anon.StatusCode != http.StatusOK {
		t.Fatalf("anonymize status %d", anon.StatusCode)
	}
	var out struct {
		Satisfied  bool    `json:"satisfied"`
		MaxOpacity float64 `json:"max_opacity"`
	}
	if err := json.NewDecoder(anon.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Satisfied || out.MaxOpacity > 0.6 {
		t.Fatalf("unexpected result: %+v", out)
	}
}
