package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

func TestBuildServerTimeouts(t *testing.T) {
	cfg := server.Config{MaxBodyBytes: 1 << 20, MaxVertices: 500, MaxBudget: 10 * time.Second}
	api := server.New(cfg)
	defer api.Close(context.Background())
	srv := buildServer(":0", cfg, api)
	if srv.ReadHeaderTimeout != 5*time.Second {
		t.Fatalf("ReadHeaderTimeout=%v", srv.ReadHeaderTimeout)
	}
	if srv.WriteTimeout != 25*time.Second {
		t.Fatalf("WriteTimeout=%v, want budget+15s", srv.WriteTimeout)
	}
	if srv.Handler == nil {
		t.Fatal("nil handler")
	}
}

// End-to-end smoke test: the assembled handler serves an anonymize
// round-trip over a real listener.
func TestServerEndToEnd(t *testing.T) {
	cfg := server.Config{MaxBodyBytes: 1 << 20, MaxVertices: 500, MaxBudget: 5 * time.Second}
	api := server.New(cfg)
	defer api.Close(context.Background())
	srv := buildServer(":0", cfg, api)
	ts := httptest.NewServer(srv.Handler)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body := `{"graph":{"n":4,"edges":[[0,1],[1,2],[2,3],[0,3],[0,2]]},"l":1,"theta":0.6,"method":"rem","seed":1}`
	anon, err := http.Post(ts.URL+"/v1/anonymize", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer anon.Body.Close()
	if anon.StatusCode != http.StatusOK {
		t.Fatalf("anonymize status %d", anon.StatusCode)
	}
	var out struct {
		Satisfied  bool    `json:"satisfied"`
		MaxOpacity float64 `json:"max_opacity"`
	}
	if err := json.NewDecoder(anon.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Satisfied || out.MaxOpacity > 0.6 {
		t.Fatalf("unexpected result: %+v", out)
	}
}

func TestPreloadFlagParsing(t *testing.T) {
	var p preloadList
	for _, c := range []struct {
		in   string
		key  string
		seed int64
	}{
		{"gnutella500=7", "gnutella500", 7},
		{"enron100=-3", "enron100", -3},
		{"google100", "google100", 1}, // bare key selects seed 1
	} {
		p = nil
		if err := p.Set(c.in); err != nil {
			t.Fatalf("Set(%q): %v", c.in, err)
		}
		if len(p) != 1 || p[0].key != c.key || p[0].seed != c.seed {
			t.Fatalf("Set(%q) parsed as %+v", c.in, p)
		}
	}
	for _, bad := range []string{"", "=3", "key=notanumber"} {
		p = nil
		if err := p.Set(bad); err == nil {
			t.Errorf("Set(%q): no error", bad)
		}
	}
	p = preloadList{{key: "a", seed: 1}, {key: "b", seed: 2}}
	if got := p.String(); got != "a=1,b=2" {
		t.Fatalf("String()=%q", got)
	}
}

// TestPreloadRegistersAtBoot drives the same path main takes for each
// -preload directive and confirms the graph is queryable by reference.
func TestPreloadRegistersAtBoot(t *testing.T) {
	cfg := server.Config{MaxBodyBytes: 1 << 20, MaxVertices: 500, MaxBudget: time.Second}
	api := server.New(cfg)
	defer api.Close(context.Background())
	id, err := api.RegisterDataset("gnutella100", 1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(api)
	defer ts.Close()

	body := `{"graph_ref":"` + id + `","l":2}`
	resp, err := http.Post(ts.URL+"/v1/opacity", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("opacity via preloaded ref: status %d", resp.StatusCode)
	}
	var out struct {
		MaxOpacity float64 `json:"max_opacity"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.MaxOpacity <= 0 {
		t.Fatalf("max_opacity=%v, want > 0", out.MaxOpacity)
	}
}

// The standalone signal path: serve() must return after SIGINT, having
// drained in-flight requests via http.Server.Shutdown and closed the
// job pool, instead of exiting abruptly.
func TestServeShutsDownOnSignal(t *testing.T) {
	cfg := server.Config{MaxBodyBytes: 1 << 20, MaxVertices: 500, MaxBudget: time.Second}
	api := server.New(cfg)
	srv := buildServer("127.0.0.1:0", cfg, api)

	done := make(chan struct{})
	go func() {
		serve(srv, api)
		close(done)
	}()

	// Give ListenAndServe a moment to start, then deliver SIGINT to
	// ourselves — the same path a Ctrl-C takes. The ordering is safe
	// either way: serve installs its signal context before the
	// listener, so an early signal still routes to the drain path.
	time.Sleep(200 * time.Millisecond)
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("serve did not return after SIGINT")
	}
}
