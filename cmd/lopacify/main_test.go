package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	lopacity "repro"
)

func TestParseMethod(t *testing.T) {
	cases := []struct {
		in   string
		want lopacity.Method
		ok   bool
	}{
		{"rem", lopacity.EdgeRemoval, true},
		{"Removal", lopacity.EdgeRemoval, true},
		{"rem-ins", lopacity.EdgeRemovalInsertion, true},
		{"REMINS", lopacity.EdgeRemovalInsertion, true},
		{"gaded-rand", lopacity.GADEDRand, true},
		{"gaded-max", lopacity.GADEDMax, true},
		{"gades", lopacity.GADES, true},
		{"swap", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseMethod(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseMethod(%q) err = %v, ok = %v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parseMethod(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func writeFixture(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "in.txt")
	// The paper's Figure 1 graph.
	content := "# Nodes: 7 Edges: 10\n0 1\n0 2\n1 2\n1 3\n1 4\n2 4\n2 5\n3 4\n4 5\n5 6\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := writeFixture(t, dir)
	out := filepath.Join(dir, "out.txt")
	var report bytes.Buffer
	err := run(nil, &report, 1, 0.5, "rem", 1, 1, in, out, false, 2, filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "satisfied     true") {
		t.Fatalf("report = %q", report.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	g, err := lopacity.ReadEdgeList(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 7 {
		t.Fatalf("output n = %d, want 7", g.N())
	}
	// The guarantee is measured against the ORIGINAL degrees (the
	// adversary's background knowledge), per the publication model.
	orig, err := os.Open(in)
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	og, err := lopacity.ReadEdgeList(orig)
	if err != nil {
		t.Fatal(err)
	}
	if rep := g.OpacityAgainst(1, og); rep.MaxOpacity > 0.5 {
		t.Fatalf("output max opacity vs original degrees = %v > 0.5", rep.MaxOpacity)
	}
	trace, err := os.ReadFile(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"op":"remove"`) {
		t.Fatalf("trace missing removal records: %s", trace)
	}
}

func TestRunToStdoutQuiet(t *testing.T) {
	dir := t.TempDir()
	in := writeFixture(t, dir)
	var stdout, report bytes.Buffer
	if err := run(&stdout, &report, 1, 1, "rem", 1, 1, in, "", true, 1, ""); err != nil {
		t.Fatal(err)
	}
	if report.Len() != 0 {
		t.Fatalf("quiet mode wrote a report: %q", report.String())
	}
	if !strings.HasPrefix(stdout.String(), "# Nodes: 7") {
		t.Fatalf("stdout = %q", stdout.String())
	}
}

func TestRunInfeasibleReturnsError(t *testing.T) {
	dir := t.TempDir()
	in := writeFixture(t, dir)
	var stdout, report bytes.Buffer
	// Rem-Ins cannot reach theta = 0.5 on Figure 1 while keeping all
	// ten edges; the run must write best-effort output AND fail.
	err := run(&stdout, &report, 1, 0.5, "rem-ins", 1, 1, in, "", true, 1, "")
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
	if stdout.Len() == 0 {
		t.Fatal("no best-effort output written")
	}
}

func TestRunBadInputs(t *testing.T) {
	var stdout, report bytes.Buffer
	if err := run(&stdout, &report, 1, 0.5, "nope", 1, 1, "", "", true, 1, ""); err == nil {
		t.Fatal("bad heuristic accepted")
	}
	if err := run(&stdout, &report, 1, 0.5, "rem", 1, 1, "/does/not/exist", "", true, 1, ""); err == nil {
		t.Fatal("missing input file accepted")
	}
	dir := t.TempDir()
	in := writeFixture(t, dir)
	if err := run(&stdout, &report, 1, 7.5, "rem", 1, 1, in, "", true, 1, ""); err == nil {
		t.Fatal("theta out of range accepted")
	}
}
