// Command lopacify anonymizes a graph to L-opacity: it reads an
// edge list, runs one of the paper's heuristics (or a Zhang & Zhang
// baseline), writes the anonymized edge list, and prints a privacy and
// utility report.
//
// Usage:
//
//	lopacify -L 2 -theta 0.5 -heuristic rem-ins -la 2 -in g.txt -out anon.txt
//
// With -in omitted the edge list is read from standard input; with
// -out omitted the anonymized edge list is written to standard output
// and the report goes to standard error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	lopacity "repro"
)

func main() {
	var (
		l         = flag.Int("L", 1, "path-length threshold L (>= 1)")
		theta     = flag.Float64("theta", 0.5, "confidence threshold in [0, 1]")
		heuristic = flag.String("heuristic", "rem", "rem | rem-ins | gaded-rand | gaded-max | gades | anneal")
		la        = flag.Int("la", 1, "look-ahead depth (>= 1; ignored by baselines)")
		seed      = flag.Int64("seed", 1, "random seed for tie-breaking")
		in        = flag.String("in", "", "input edge list (default: stdin)")
		out       = flag.String("out", "", "output edge list (default: stdout)")
		quiet     = flag.Bool("q", false, "suppress the report")
		workers   = flag.Int("workers", 1, "goroutines for candidate evaluation (same result at any setting)")
		trace     = flag.String("trace", "", "write a JSONL audit log of every edit to this file")
	)
	flag.Parse()

	if err := run(os.Stdout, os.Stderr, *l, *theta, *heuristic, *la, *seed, *in, *out, *quiet, *workers, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "lopacify:", err)
		os.Exit(1)
	}
}

func run(stdout, report io.Writer, l int, theta float64, heuristic string, la int, seed int64, in, out string, quiet bool, workers int, tracePath string) error {
	method, err := parseMethod(heuristic)
	if err != nil {
		return err
	}

	var traceW io.Writer
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		defer f.Close()
		traceW = f
	}

	var r io.Reader = os.Stdin
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := lopacity.ReadEdgeList(r)
	if err != nil {
		return fmt.Errorf("reading edge list: %w", err)
	}

	res, err := lopacity.Anonymize(g, lopacity.Options{
		L: l, Theta: theta, Method: method, LookAhead: la, Seed: seed,
		Workers: workers, TraceWriter: traceW,
	})
	if err != nil {
		return err
	}

	w := stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := res.Graph.WriteEdgeList(w); err != nil {
		return fmt.Errorf("writing edge list: %w", err)
	}

	if !quiet {
		util := lopacity.Compare(g, res.Graph)
		fmt.Fprintf(report, "method        %s (L=%d, theta=%.0f%%, la=%d)\n", method, l, 100*theta, la)
		fmt.Fprintf(report, "input         n=%d m=%d\n", g.N(), g.M())
		fmt.Fprintf(report, "satisfied     %v (max opacity %.4f)\n", res.Satisfied, res.MaxOpacity)
		fmt.Fprintf(report, "edits         %d removed, %d inserted over %d steps\n", len(res.Removed), len(res.Inserted), res.Steps)
		fmt.Fprintf(report, "distortion    %.2f%%\n", 100*util.Distortion)
		fmt.Fprintf(report, "degree EMD    %.4f\n", util.DegreeEMD)
		fmt.Fprintf(report, "geodesic EMD  %.4f\n", util.GeodesicEMD)
		fmt.Fprintf(report, "mean |dCC|    %.4f\n", util.MeanClusteringDelta)
	}
	if !res.Satisfied {
		return fmt.Errorf("no %d-opaque graph found at theta=%.0f%%; try a larger -la or the rem heuristic", l, 100*theta)
	}
	return nil
}

func parseMethod(s string) (lopacity.Method, error) {
	return lopacity.ParseMethod(s)
}
