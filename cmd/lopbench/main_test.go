package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, rep Report) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareWithinRatio(t *testing.T) {
	base := Report{Results: []Result{{Name: "build_csr_bfs", Scale: "ci", NsOp: 1000}}}
	cur := Report{Results: []Result{{Name: "build_csr_bfs", Scale: "ci", NsOp: 1900}}}
	if err := compare(cur, writeReport(t, base), 2.0); err != nil {
		t.Fatalf("1.9x should pass a 2.0x gate: %v", err)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	base := Report{Results: []Result{{Name: "build_csr_bfs", Scale: "ci", NsOp: 1000}}}
	cur := Report{Results: []Result{{Name: "build_csr_bfs", Scale: "ci", NsOp: 2500}}}
	err := compare(cur, writeReport(t, base), 2.0)
	if err == nil {
		t.Fatal("2.5x regression passed a 2.0x gate")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCompareSkipsUnmatchedSuites(t *testing.T) {
	// New suites (no baseline row) and retired ones (no current row)
	// must not fail the gate, and scales are matched independently.
	base := Report{Results: []Result{
		{Name: "retired_suite", Scale: "ci", NsOp: 1},
		{Name: "build_csr_bfs", Scale: "full", NsOp: 1},
	}}
	cur := Report{Results: []Result{
		{Name: "brand_new_suite", Scale: "ci", NsOp: 999_999},
		{Name: "build_csr_bfs", Scale: "ci", NsOp: 999_999},
	}}
	if err := compare(cur, writeReport(t, base), 2.0); err != nil {
		t.Fatalf("unmatched suites must be skipped: %v", err)
	}
}

func TestCompareMissingBaselineFile(t *testing.T) {
	if err := compare(Report{}, filepath.Join(t.TempDir(), "nope.json"), 2.0); err == nil {
		t.Fatal("missing baseline file must error")
	}
}

func TestScaleSizes(t *testing.T) {
	if n, m := scaleSize("ci"); n != 5_000 || m != 50_000 {
		t.Fatalf("ci scale = (%d, %d)", n, m)
	}
	if n, m := scaleSize("full"); n != 100_000 || m != 1_000_000 {
		t.Fatalf("full scale = (%d, %d)", n, m)
	}
}
