// Command lopbench is the perf-trajectory runner: it benchmarks the
// distance-engine hot paths in-process (via testing.Benchmark — no
// go-test subprocess, so it runs anywhere the binary does) and emits a
// machine-readable JSON report. Committed reports (BENCH_<n>.json at
// the repository root) form the project's performance trajectory, and
// CI re-runs the ci-scale suite against the last committed report,
// failing on large regressions.
//
// Usage:
//
//	lopbench -scale ci   -out /tmp/bench.json -baseline BENCH_1.json
//	lopbench -scale full -out BENCH_2.json        # paper-scale, minutes
//
// Suites (each row records ns/op, B/op, allocs/op, and the graph):
//
//	build_csr_bfs       sequential CSR bounded-BFS APSP build
//	build_csr_auto      the server's default engine selection
//	build_map_baseline  the retained pre-CSR map-adjacency engine
//	build_bitbfs        bit-parallel BFS engine
//	csr_frozen          Graph -> CSR snapshot cost
//	bfs_inner           one bounded BFS + touched-only reset (0 allocs)
//	anonymize_greedy    capped greedy removal run (ci scale only)
//	warm_restart_mapped registry reboot with -mmap-stores hydration
//	stream_build_file   streaming APSP build straight into a snapshot file
//	mutate_clone        seed-store mutation via full deep clone (the old path)
//	mutate_overlay      the same mutations via copy-on-write overlay
//	mutate_rebuild      distances after a small edge diff via full APSP rebuild
//	mutate_repair       the same diff via incremental store repair (must stay
//	                    byte-identical to the rebuild and >=10x faster at ci)
//	paged_under_budget  full EachPair sweep of a paged store under a
//	                    page budget far smaller than the triangle
//
// The tool exits non-zero when an invariant breaks (bfs_inner
// allocating, warm restart missing the mapped store, an overlay
// diverging from the clone it replaces, a paged sweep exceeding its
// budget) or when a baseline comparison exceeds -max-ratio.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/anonymize"
	"repro/internal/apsp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/registry"
)

// Result is one benchmark row of the report.
type Result struct {
	Name  string `json:"name"`
	Scale string `json:"scale"`
	N     int    `json:"n"`
	M     int    `json:"m"`
	L     int    `json:"l"`
	NsOp  int64  `json:"ns_per_op"`
	BOp   int64  `json:"b_per_op"`
	AOp   int64  `json:"allocs_per_op"`
}

// Report is the full JSON document.
type Report struct {
	Version int      `json:"version"`
	Go      string   `json:"go"`
	CPUs    int      `json:"cpus"`
	Results []Result `json:"results"`
}

// scaleSize maps a scale name to the RMAT grid point it benchmarks.
func scaleSize(scale string) (n, m int) {
	if scale == "full" {
		return 100_000, 1_000_000
	}
	return 5_000, 50_000
}

const benchL = 3

func main() {
	var (
		out      = flag.String("out", "", "write the JSON report here (default stdout)")
		scale    = flag.String("scale", "ci", "benchmark scale: ci, full, or both")
		baseline = flag.String("baseline", "", "compare against this committed report; regressions beyond -max-ratio fail")
		maxRatio = flag.Float64("max-ratio", 2.0, "maximum allowed ns/op ratio vs the baseline")
	)
	flag.Parse()

	var scales []string
	switch *scale {
	case "ci", "full":
		scales = []string{*scale}
	case "both":
		scales = []string{"ci", "full"}
	default:
		fatalf("unknown -scale %q (want ci, full, or both)", *scale)
	}

	report := Report{Version: 1, Go: runtime.Version(), CPUs: runtime.NumCPU()}
	for _, sc := range scales {
		rows, err := runScale(sc)
		if err != nil {
			fatalf("%v", err)
		}
		report.Results = append(report.Results, rows...)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("encoding report: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatalf("writing %s: %v", *out, err)
	}

	if *baseline != "" {
		if err := compare(report, *baseline, *maxRatio); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "lopbench: within %.1fx of %s\n", *maxRatio, *baseline)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lopbench: "+format+"\n", args...)
	os.Exit(1)
}

// runScale benchmarks every suite at one scale and returns the rows.
func runScale(scale string) ([]Result, error) {
	n, m := scaleSize(scale)
	fmt.Fprintf(os.Stderr, "lopbench: generating RMAT n=%d m=%d (scale %s)\n", n, m, scale)
	g, err := gen.RMAT(n, m, gen.WebRMAT(), rand.New(rand.NewSource(42)))
	if err != nil {
		return nil, err
	}
	row := func(name string, res testing.BenchmarkResult) Result {
		r := Result{
			Name: name, Scale: scale,
			N: g.N(), M: g.M(), L: benchL,
			NsOp: res.NsPerOp(), BOp: res.AllocedBytesPerOp(), AOp: res.AllocsPerOp(),
		}
		fmt.Fprintf(os.Stderr, "lopbench: %-20s %12d ns/op %10d B/op %6d allocs/op\n", name, r.NsOp, r.BOp, r.AOp)
		return r
	}
	var rows []Result

	rows = append(rows, row("build_csr_bfs", bench(func() {
		apsp.BoundedAPSPKind(g, benchL, apsp.KindCompact)
	})))
	rows = append(rows, row("build_csr_auto", bench(func() {
		apsp.Build(g, benchL, apsp.BuildOptions{})
	})))
	rows = append(rows, row("build_map_baseline", bench(func() {
		apsp.BoundedAPSPMapBaseline(g, benchL, apsp.KindCompact)
	})))
	rows = append(rows, row("build_bitbfs", bench(func() {
		apsp.BitBFSKind(g, benchL, apsp.KindCompact)
	})))
	rows = append(rows, row("csr_frozen", bench(func() {
		g.Frozen()
	})))

	inner, err := benchBFSInner(g)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row("bfs_inner", inner))

	if scale == "ci" {
		ag, err := gen.RMAT(150, 450, gen.WebRMAT(), rand.New(rand.NewSource(7)))
		if err != nil {
			return nil, err
		}
		res := bench(func() {
			if _, err := anonymize.Run(ag, anonymize.Options{L: benchL, MaxSteps: 2, Seed: 1}); err != nil {
				panic(err)
			}
		})
		r := row("anonymize_greedy", res)
		r.N, r.M = ag.N(), ag.M() // row() records the big graph's dims; fix them
		rows = append(rows, r)
	}

	warm, err := benchWarmRestart(g)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row("warm_restart_mapped", warm))

	stream, err := benchStreamBuild(g)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row("stream_build_file", stream))

	cloneRes, overlayRes, err := benchOverlayVsClone(g)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row("mutate_clone", cloneRes))
	rows = append(rows, row("mutate_overlay", overlayRes))

	rebuildRes, repairRes, err := benchMutateRepair(g, scale)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row("mutate_rebuild", rebuildRes))
	rows = append(rows, row("mutate_repair", repairRes))

	paged, err := benchPagedUnderBudget(g, scale)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row("paged_under_budget", paged))
	return rows, nil
}

// bench runs fn under testing.Benchmark with allocation reporting.
func bench(fn func()) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
}

// benchBFSInner measures the engine inner loop — one bounded BFS plus
// its touched-only reset — and enforces the zero-allocation invariant.
func benchBFSInner(g *graph.Graph) (testing.BenchmarkResult, error) {
	c := g.Frozen()
	n := c.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	src := 0
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			visited := c.BoundedBFSInto(src, benchL, dist, queue)
			for _, v := range visited {
				dist[v] = -1
			}
			queue = visited[:0]
			src++
			if src == n {
				src = 0
			}
		}
	})
	if res.AllocsPerOp() != 0 {
		return res, fmt.Errorf("bfs_inner allocates %d objects/op, want 0", res.AllocsPerOp())
	}
	return res, nil
}

// benchWarmRestart measures a full registry reboot with mapped-store
// hydration: build + persist once, then time New(MappedStores) plus
// the first Distances call, asserting it never rebuilds.
func benchWarmRestart(g *graph.Graph) (testing.BenchmarkResult, error) {
	dir, err := os.MkdirTemp("", "lopbench-*")
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer os.RemoveAll(dir)

	edges := make([][2]int, 0, g.M())
	for _, e := range g.Edges() {
		edges = append(edges, [2]int{e.U, e.V})
	}
	seedReg := registry.New(registry.Config{Dir: dir})
	sg, _, err := seedReg.Put(g.N(), edges)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	sg.Distances(benchL, apsp.EngineAuto, apsp.KindCompact)
	id := sg.ID()

	var misses int64
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := registry.New(registry.Config{Dir: dir, MappedStores: true})
			wg, ok := r.Get(id)
			if !ok {
				panic("warm registry lost the graph")
			}
			wg.Distances(benchL, apsp.EngineAuto, apsp.KindCompact)
			misses = r.Stats().StoreMisses
		}
	})
	if misses != 0 {
		return res, fmt.Errorf("warm_restart_mapped rebuilt: store_misses=%d, want 0", misses)
	}
	return res, nil
}

// benchStreamBuild measures the streaming APSP build writing straight
// into a snapshot file — the out-of-core build path, whose working set
// is O(n) no matter how large the triangle on disk grows.
func benchStreamBuild(g *graph.Graph) (testing.BenchmarkResult, error) {
	dir, err := os.MkdirTemp("", "lopbench-stream-*")
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.store")
	return bench(func() {
		if err := apsp.BuildToFile(path, g, benchL, apsp.BuildOptions{}); err != nil {
			panic(err)
		}
	}), nil
}

// benchOverlayVsClone pits the two seed-run mutation strategies against
// each other on one store and one fixed dirty-cell set: a full deep
// clone (cost proportional to the n(n-1)/2 triangle) versus a
// copy-on-write overlay (cost proportional to the cells written).
// Before timing anything it asserts the two strategies agree cell for
// cell, and afterwards that the overlay kept its asymptotic edge in
// allocated bytes.
func benchOverlayVsClone(g *graph.Graph) (clone, overlay testing.BenchmarkResult, err error) {
	st := apsp.Build(g, benchL, apsp.BuildOptions{})
	n := st.N()
	type cell struct{ i, j, d int }
	rng := rand.New(rand.NewSource(99))
	cells := make([]cell, 64)
	for k := range cells {
		i := rng.Intn(n - 1)
		j := i + 1 + rng.Intn(n-1-i)
		cells[k] = cell{i, j, 1 + rng.Intn(st.Far())}
	}

	m := st.Clone().(apsp.MutableStore)
	o := apsp.NewOverlay(st)
	for _, c := range cells {
		m.Set(c.i, c.j, c.d)
		o.Set(c.i, c.j, c.d)
	}
	if !apsp.Equal(m, o) {
		return clone, overlay, fmt.Errorf("mutate_overlay diverged from mutate_clone on the same writes")
	}

	clone = bench(func() {
		mc := st.Clone().(apsp.MutableStore)
		for _, c := range cells {
			mc.Set(c.i, c.j, c.d)
		}
	})
	overlay = bench(func() {
		ov := apsp.NewOverlay(st)
		for _, c := range cells {
			ov.Set(c.i, c.j, c.d)
		}
	})
	if clone.AllocedBytesPerOp() > 0 && overlay.AllocedBytesPerOp()*4 > clone.AllocedBytesPerOp() {
		return clone, overlay, fmt.Errorf("mutate_overlay allocates %d B/op vs the clone's %d — the overlay lost its asymptotic edge",
			overlay.AllocedBytesPerOp(), clone.AllocedBytesPerOp())
	}
	return clone, overlay, nil
}

// benchMutateRepair pits the two ways of answering distance queries
// after a small edge diff against each other: a full APSP rebuild of
// the child graph versus an incremental repair of the parent's store
// through the diff (the path PATCH /v1/graphs hydration takes). Before
// timing anything it asserts the repaired store serializes
// byte-identically to the from-scratch build, and afterwards (at ci
// scale, where timer noise is small relative to the gap) that repair
// kept at least a 10x latency edge over rebuild.
func benchMutateRepair(g *graph.Graph, scale string) (rebuild, repair testing.BenchmarkResult, err error) {
	st := apsp.Build(g, benchL, apsp.BuildOptions{})

	// A churn-sized diff: three fresh edges plus one removal. The
	// removed edge is the one with the lowest-degree endpoints —
	// detaching a peripheral vertex, the shape of typical churn. A
	// removal's repair cost is the size of the edge's crossing set (the
	// vertices whose shortest paths ran through it), so deleting from
	// the RMAT core would re-row a large fraction of the graph and
	// measure the repair worst case rather than the steady state.
	n := g.N()
	var adds [][2]int
	for u := 0; len(adds) < 3 && u < n; u++ {
		v := n - 1 - u
		if u != v && !g.HasEdge(u, v) {
			adds = append(adds, [2]int{u, v})
		}
	}
	deg := g.Degrees()
	rm := g.Edges()[0]
	best := deg[rm.U] + deg[rm.V]
	for _, e := range g.Edges() {
		if s := deg[e.U] + deg[e.V]; s < best {
			rm, best = e, s
		}
	}
	d, err := graph.NewDiff(n, adds, [][2]int{{rm.U, rm.V}})
	if err != nil {
		return rebuild, repair, fmt.Errorf("mutate_repair: %w", err)
	}
	child := g.Clone()
	if err := d.Apply(child); err != nil {
		return rebuild, repair, fmt.Errorf("mutate_repair: %w", err)
	}

	repaired, ok := apsp.RepairStore(st, child, d, apsp.RepairOptions{})
	if !ok {
		return rebuild, repair, fmt.Errorf("mutate_repair: repair bailed on a %d-edit diff at n=%d", d.Size(), n)
	}
	rebuilt := apsp.Build(child, benchL, apsp.BuildOptions{})
	wantBytes, err := apsp.MarshalStore(rebuilt)
	if err != nil {
		return rebuild, repair, err
	}
	gotBytes, err := apsp.MarshalStore(repaired)
	if err != nil {
		return rebuild, repair, err
	}
	if string(wantBytes) != string(gotBytes) {
		return rebuild, repair, fmt.Errorf("mutate_repair: repaired store is not byte-identical to the rebuild")
	}

	rebuild = bench(func() {
		apsp.Build(child, benchL, apsp.BuildOptions{})
	})
	repair = bench(func() {
		if _, ok := apsp.RepairStore(st, child, d, apsp.RepairOptions{}); !ok {
			panic("repair bailed mid-benchmark")
		}
	})
	if scale == "ci" && repair.NsPerOp()*10 > rebuild.NsPerOp() {
		return rebuild, repair, fmt.Errorf("mutate_repair: %d ns/op is not 10x under mutate_rebuild's %d — repair lost its edge",
			repair.NsPerOp(), rebuild.NsPerOp())
	}
	return rebuild, repair, nil
}

// pagedBenchBudget caps the paged_under_budget page cache at 1 MiB —
// 16 pages, far below the triangle at either scale (~12 MiB at ci,
// ~4.7 GiB at full), so the sweep must fault and evict throughout.
const pagedBenchBudget = 1 << 20

// benchPagedUnderBudget sweeps the full triangle through a paged store
// whose page cache is much smaller than the snapshot file, then asserts
// residency never exceeded the budget, that eviction actually happened,
// and (at ci scale, where an in-heap oracle is cheap) that the paged
// view is byte-identical to a direct build.
func benchPagedUnderBudget(g *graph.Graph, scale string) (testing.BenchmarkResult, error) {
	var zero testing.BenchmarkResult
	dir, err := os.MkdirTemp("", "lopbench-paged-*")
	if err != nil {
		return zero, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bench.store")
	if err := apsp.BuildToFile(path, g, benchL, apsp.BuildOptions{}); err != nil {
		return zero, err
	}
	cache := apsp.NewPageCache(pagedBenchBudget)
	ps, err := apsp.OpenPagedStore(path, cache)
	if err != nil {
		return zero, err
	}
	defer ps.Close()
	if scale == "ci" {
		if !apsp.Equal(apsp.Build(g, benchL, apsp.BuildOptions{}), ps) {
			return zero, fmt.Errorf("paged_under_budget: paged view diverges from the in-heap build")
		}
	}
	var sink int64
	res := bench(func() {
		ps.EachPair(func(_, _, d int) { sink += int64(d) })
	})
	_ = sink
	st := cache.Stats()
	if st.ResidentBytes > st.BudgetBytes {
		return zero, fmt.Errorf("paged_under_budget: resident %d bytes exceeds the %d budget", st.ResidentBytes, st.BudgetBytes)
	}
	if st.Evictions == 0 {
		return zero, fmt.Errorf("paged_under_budget: no evictions — the triangle fit the budget and the suite exercised nothing")
	}
	return res, nil
}

// compare fails when any suite present in both reports regressed in
// ns/op beyond maxRatio. Suites missing on either side are skipped —
// the trajectory may grow or retire suites between points.
func compare(cur Report, baselinePath string, maxRatio float64) error {
	data, err := os.ReadFile(filepath.Clean(baselinePath))
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	baseRows := make(map[string]Result)
	for _, r := range base.Results {
		baseRows[r.Name+"/"+r.Scale] = r
	}
	var failures []string
	for _, r := range cur.Results {
		b, ok := baseRows[r.Name+"/"+r.Scale]
		if !ok || b.NsOp <= 0 {
			continue
		}
		ratio := float64(r.NsOp) / float64(b.NsOp)
		if ratio > maxRatio {
			failures = append(failures, fmt.Sprintf("%s/%s: %d ns/op vs baseline %d (%.2fx > %.1fx)",
				r.Name, r.Scale, r.NsOp, b.NsOp, ratio, maxRatio))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "lopbench: REGRESSION "+f)
		}
		return fmt.Errorf("%d suite(s) regressed beyond %.1fx", len(failures), maxRatio)
	}
	return nil
}
