package metrics

import (
	"math"
	"sort"

	"repro/internal/graph"
)

// BetweennessCentrality returns the (unnormalized) shortest-path
// betweenness of every vertex, computed with Brandes' algorithm
// (J. Math. Sociol. 2001) in O(nm) for unweighted graphs. Each
// unordered pair contributes once (the directed double-count is
// halved), so values are comparable across graphs of equal size.
//
// Centrality is one of the "structural graph properties" the paper's
// abstract promises to track: anonymization that preserves who the
// broker vertices are preserves far more analytic value than one that
// merely preserves degree counts.
func BetweennessCentrality(g *graph.Graph) []float64 {
	n := g.N()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	// Per-source scratch, reused across sources.
	var (
		stack []int
		preds = make([][]int, n)
		sigma = make([]float64, n) // # shortest paths from s
		dist  = make([]int, n)
		delta = make([]float64, n)
		queue = make([]int, 0, n)
	)
	for s := 0; s < n; s++ {
		stack = stack[:0]
		for v := 0; v < n; v++ {
			preds[v] = preds[v][:0]
			sigma[v] = 0
			dist[v] = -1
			delta[v] = 0
		}
		sigma[s] = 1
		dist[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 { // first visit
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 { // shortest path via v
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(stack) - 1; i >= 0; i-- {
			w := stack[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w]
			}
		}
	}
	for v := range bc {
		bc[v] /= 2 // undirected: each pair counted from both endpoints
	}
	return bc
}

// HarmonicCloseness returns each vertex's harmonic closeness centrality
// sum over reachable u != v of 1/d(v, u), normalized by n-1. Harmonic
// (rather than classic) closeness stays well-defined on the
// disconnected graphs that edge-removal anonymization produces.
func HarmonicCloseness(g *graph.Graph) []float64 {
	n := g.N()
	hc := make([]float64, n)
	if n <= 1 {
		return hc
	}
	for v := 0; v < n; v++ {
		dist := g.BFSDistances(v)
		sum := 0.0
		for u, d := range dist {
			if u != v && d > 0 {
				sum += 1 / float64(d)
			}
		}
		hc[v] = sum / float64(n-1)
	}
	return hc
}

// SpearmanRank returns the Spearman rank-correlation coefficient of two
// equal-length score vectors, in [-1, 1]. Ties receive fractional
// (average) ranks. It reports how well an anonymized graph preserves
// the ORDERING of per-vertex statistics — for centrality, whether the
// important vertices stay important. NaN is returned when either vector
// is constant (rank variance zero).
func SpearmanRank(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: SpearmanRank length mismatch")
	}
	n := len(a)
	if n == 0 {
		return math.NaN()
	}
	ra := fractionalRanks(a)
	rb := fractionalRanks(b)
	return pearsonCorr(ra, rb)
}

// fractionalRanks assigns 1-based ranks with ties averaged.
func fractionalRanks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

func pearsonCorr(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(vx*vy)
}

// CentralityPreservation summarizes how an anonymized graph preserves
// vertex-importance structure relative to the original.
type CentralityPreservation struct {
	// BetweennessSpearman and ClosenessSpearman are the rank
	// correlations of the respective centrality vectors (1 = perfect
	// order preservation).
	BetweennessSpearman float64
	ClosenessSpearman   float64
	// TopTenOverlap is |top-10% by betweenness in both| / top-10% size:
	// the fraction of the original's most central vertices that remain
	// most central after anonymization.
	TopTenOverlap float64
}

// Centralities computes the preservation summary for a pair of graphs
// over the same vertex set.
func Centralities(original, anonymized *graph.Graph) CentralityPreservation {
	if original.N() != anonymized.N() {
		panic("metrics: Centralities vertex-set mismatch")
	}
	b0 := BetweennessCentrality(original)
	b1 := BetweennessCentrality(anonymized)
	c0 := HarmonicCloseness(original)
	c1 := HarmonicCloseness(anonymized)
	return CentralityPreservation{
		BetweennessSpearman: SpearmanRank(b0, b1),
		ClosenessSpearman:   SpearmanRank(c0, c1),
		TopTenOverlap:       topShareOverlap(b0, b1, 0.10),
	}
}

// topShareOverlap returns the overlap fraction of the top `share` of
// vertices under the two score vectors.
func topShareOverlap(a, b []float64, share float64) float64 {
	n := len(a)
	k := int(math.Ceil(share * float64(n)))
	if k == 0 {
		return 1
	}
	top := func(x []float64) map[int]bool {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool {
			if x[idx[i]] != x[idx[j]] {
				return x[idx[i]] > x[idx[j]]
			}
			return idx[i] < idx[j] // deterministic tie order
		})
		set := make(map[int]bool, k)
		for _, v := range idx[:k] {
			set[v] = true
		}
		return set
	}
	ta, tb := top(a), top(b)
	common := 0
	for v := range ta {
		if tb[v] {
			common++
		}
	}
	return float64(common) / float64(k)
}
