// Package metrics implements the alteration and utility measures of the
// paper's experimental evaluation (Section 6.2): the graph edit-distance
// ratio (distortion, Equation 1), the Earth Mover's Distance between
// degree and geodesic-distance distributions, and clustering-coefficient
// differences — plus the dataset-property statistics of Tables 2 and 3
// and the spectral quantities referenced by the abstract.
package metrics

import (
	"math"

	"repro/internal/graph"
)

// Distortion is the paper's Equation 1: the symmetric difference of the
// edge sets of the original and anonymized graphs, normalized by the
// original edge count. Both graphs must share a vertex set.
func Distortion(original, anonymized *graph.Graph) float64 {
	if original.M() == 0 {
		return 0
	}
	return float64(graph.SymmetricDifferenceSize(original, anonymized)) / float64(original.M())
}

// DegreeStats summarizes a degree sequence as reported in the paper's
// Tables 2 and 3.
type DegreeStats struct {
	Average float64 // Av. Deg.
	StdDev  float64 // STDD
	Max     int
	Min     int
}

// Degrees computes degree statistics for g.
func Degrees(g *graph.Graph) DegreeStats {
	n := g.N()
	if n == 0 {
		return DegreeStats{}
	}
	sum := 0
	min, max := g.Degree(0), g.Degree(0)
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		sum += d
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	avg := float64(sum) / float64(n)
	varSum := 0.0
	for v := 0; v < n; v++ {
		diff := float64(g.Degree(v)) - avg
		varSum += diff * diff
	}
	return DegreeStats{
		Average: avg,
		StdDev:  math.Sqrt(varSum / float64(n)),
		Max:     max,
		Min:     min,
	}
}

// GraphProperties aggregates the property columns of Tables 2 and 3.
type GraphProperties struct {
	Nodes    int
	Links    int
	Diameter int
	Degree   DegreeStats
	ACC      float64 // average clustering coefficient
}

// Properties computes the Table 2/3 property row for g. Diameter is the
// longest shortest path over reachable pairs (per component).
func Properties(g *graph.Graph) GraphProperties {
	return GraphProperties{
		Nodes:    g.N(),
		Links:    g.M(),
		Diameter: g.Diameter(),
		Degree:   Degrees(g),
		ACC:      AverageClustering(g),
	}
}
