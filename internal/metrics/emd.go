package metrics

import "repro/internal/graph"

// EMD computes the Earth Mover's Distance between two discrete
// distributions over the integer line with unit ground distance. The
// inputs are histograms (not necessarily normalized, not necessarily the
// same length); each is normalized to a probability distribution first,
// and the distance is the L1 distance between the CDFs — the closed form
// of 1-D EMD used to compare degree and geodesic distributions in the
// paper's Figure 7.
func EMD(histA, histB []float64) float64 {
	n := len(histA)
	if len(histB) > n {
		n = len(histB)
	}
	if n == 0 {
		return 0
	}
	sumA, sumB := 0.0, 0.0
	for _, v := range histA {
		sumA += v
	}
	for _, v := range histB {
		sumB += v
	}
	at := func(h []float64, i int, sum float64) float64 {
		if i >= len(h) || sum == 0 {
			return 0
		}
		return h[i] / sum
	}
	emd := 0.0
	cdfDiff := 0.0
	for i := 0; i < n; i++ {
		cdfDiff += at(histA, i, sumA) - at(histB, i, sumB)
		if cdfDiff >= 0 {
			emd += cdfDiff
		} else {
			emd -= cdfDiff
		}
	}
	return emd
}

// EMDInt is EMD over integer histograms.
func EMDInt(histA, histB []int) float64 {
	a := make([]float64, len(histA))
	for i, v := range histA {
		a[i] = float64(v)
	}
	b := make([]float64, len(histB))
	for i, v := range histB {
		b[i] = float64(v)
	}
	return EMD(a, b)
}

// DegreeEMD returns the EMD between the degree distributions of two
// graphs (Figure 7a's measure).
func DegreeEMD(a, b *graph.Graph) float64 {
	return EMDInt(a.DegreeHistogram(), b.DegreeHistogram())
}

// GeodesicHistogram returns counts of geodesic distances over all
// reachable unordered vertex pairs: hist[d] = number of pairs at
// distance d (hist[0] unused). The second return value is the number of
// unreachable pairs.
func GeodesicHistogram(g *graph.Graph) (hist []int, unreachable int) {
	n := g.N()
	hist = []int{0}
	for src := 0; src < n; src++ {
		dist := g.BFSDistances(src)
		for j := src + 1; j < n; j++ {
			d := dist[j]
			if d < 0 {
				unreachable++
				continue
			}
			for len(hist) <= d {
				hist = append(hist, 0)
			}
			hist[d]++
		}
	}
	return hist, unreachable
}

// GeodesicEMD returns the EMD between the geodesic-distance
// distributions of two graphs over their reachable pairs (Figure 7b's
// measure).
func GeodesicEMD(a, b *graph.Graph) float64 {
	ha, _ := GeodesicHistogram(a)
	hb, _ := GeodesicHistogram(b)
	return EMDInt(ha, hb)
}
