package metrics

import "repro/internal/graph"

// LocalClustering returns the local clustering coefficient of every
// vertex: C_i = 2 * |{edges among neighbors of i}| / (k_i * (k_i - 1)),
// with C_i = 0 for degree < 2. (The paper's Section 6.2 formula omits
// the factor 2 because it counts ordered neighbor pairs; this is the
// same quantity in the standard unordered form, and matches the ACC
// values the paper reports for the SNAP datasets.)
func LocalClustering(g *graph.Graph) []float64 {
	out := make([]float64, g.N())
	for v := 0; v < g.N(); v++ {
		k := g.Degree(v)
		if k < 2 {
			continue
		}
		t := g.CountTrianglesAt(v)
		out[v] = 2 * float64(t) / float64(k*(k-1))
	}
	return out
}

// AverageClustering returns the mean local clustering coefficient over
// all vertices (the ACC column of Tables 2 and 3).
func AverageClustering(g *graph.Graph) float64 {
	if g.N() == 0 {
		return 0
	}
	cs := LocalClustering(g)
	sum := 0.0
	for _, c := range cs {
		sum += c
	}
	return sum / float64(len(cs))
}

// MeanClusteringDelta returns the mean over vertices of |C_i - C'_i|
// between an original graph and its anonymized form (the measure of the
// paper's Figure 8). The graphs must share a vertex set.
func MeanClusteringDelta(original, anonymized *graph.Graph) float64 {
	if original.N() != anonymized.N() {
		panic("metrics: vertex sets differ")
	}
	if original.N() == 0 {
		return 0
	}
	a := LocalClustering(original)
	b := LocalClustering(anonymized)
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(a))
}
