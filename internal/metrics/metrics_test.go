package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/graph"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistortionIdentityAndRemoval(t *testing.T) {
	g := fixture.Figure1()
	if d := Distortion(g, g); d != 0 {
		t.Fatalf("self distortion = %v", d)
	}
	h := g.Clone()
	h.RemoveEdge(0, 1)
	h.RemoveEdge(1, 2)
	if d := Distortion(g, h); !close(d, 0.2) {
		t.Fatalf("distortion after 2/10 removals = %v, want 0.2", d)
	}
	// Removal + insertion both count (Equation 1 is symmetric difference).
	h.AddEdge(0, 6)
	if d := Distortion(g, h); !close(d, 0.3) {
		t.Fatalf("distortion after 2 removals + 1 insertion = %v, want 0.3", d)
	}
}

func TestDistortionEmptyOriginal(t *testing.T) {
	if d := Distortion(graph.New(3), graph.New(3)); d != 0 {
		t.Fatalf("empty distortion = %v", d)
	}
}

func TestDegreeStatsFigure1(t *testing.T) {
	s := Degrees(fixture.Figure1())
	// Degrees 2,4,4,2,4,3,1: mean 20/7.
	if !close(s.Average, 20.0/7.0) {
		t.Fatalf("average = %v, want %v", s.Average, 20.0/7.0)
	}
	if s.Max != 4 || s.Min != 1 {
		t.Fatalf("max/min = %d/%d, want 4/1", s.Max, s.Min)
	}
	if s.StdDev <= 0 {
		t.Fatal("stddev must be positive for non-regular graph")
	}
}

func TestDegreesEmpty(t *testing.T) {
	if s := Degrees(graph.New(0)); s.Average != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestLocalClusteringTriangleAndStar(t *testing.T) {
	tri := graph.New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	for v, c := range LocalClustering(tri) {
		if !close(c, 1) {
			t.Fatalf("triangle vertex %d clustering = %v, want 1", v, c)
		}
	}
	star := graph.New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	cs := LocalClustering(star)
	for v, c := range cs {
		if c != 0 {
			t.Fatalf("star vertex %d clustering = %v, want 0", v, c)
		}
	}
	if acc := AverageClustering(star); acc != 0 {
		t.Fatalf("star ACC = %v", acc)
	}
	if acc := AverageClustering(tri); !close(acc, 1) {
		t.Fatalf("triangle ACC = %v", acc)
	}
}

func TestMeanClusteringDelta(t *testing.T) {
	tri := graph.New(3)
	tri.AddEdge(0, 1)
	tri.AddEdge(1, 2)
	tri.AddEdge(0, 2)
	path := tri.Clone()
	path.RemoveEdge(0, 2)
	// Clustering drops from 1 to 0 for all three vertices.
	if d := MeanClusteringDelta(tri, path); !close(d, 1) {
		t.Fatalf("mean delta = %v, want 1", d)
	}
	if d := MeanClusteringDelta(tri, tri); d != 0 {
		t.Fatalf("self delta = %v", d)
	}
}

func TestMeanClusteringDeltaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("vertex-set mismatch did not panic")
		}
	}()
	MeanClusteringDelta(graph.New(3), graph.New(4))
}

func TestEMDBasics(t *testing.T) {
	// Identical distributions.
	if d := EMD([]float64{1, 2, 3}, []float64{2, 4, 6}); !close(d, 0) {
		t.Fatalf("EMD of proportional histograms = %v, want 0", d)
	}
	// All mass shifted by one position: EMD = 1.
	if d := EMD([]float64{1, 0}, []float64{0, 1}); !close(d, 1) {
		t.Fatalf("unit shift EMD = %v, want 1", d)
	}
	// Shift by two positions: EMD = 2.
	if d := EMD([]float64{1, 0, 0}, []float64{0, 0, 1}); !close(d, 2) {
		t.Fatalf("two-step shift EMD = %v, want 2", d)
	}
	// Different lengths are padded with zeros.
	if d := EMD([]float64{1}, []float64{0, 1}); !close(d, 1) {
		t.Fatalf("padded EMD = %v, want 1", d)
	}
	if d := EMD(nil, nil); d != 0 {
		t.Fatalf("nil EMD = %v", d)
	}
}

func TestPropertyEMDIsMetric(t *testing.T) {
	f := func(rawA, rawB, rawC [6]uint8) bool {
		toHist := func(raw [6]uint8) []float64 {
			h := make([]float64, 6)
			total := 0.0
			for i, v := range raw {
				h[i] = float64(v)
				total += float64(v)
			}
			if total == 0 {
				h[0] = 1
			}
			return h
		}
		a, b, c := toHist(rawA), toHist(rawB), toHist(rawC)
		dab := EMD(a, b)
		if dab < 0 || !close(dab, EMD(b, a)) {
			return false
		}
		if !close(EMD(a, a), 0) {
			return false
		}
		return EMD(a, c) <= dab+EMD(b, c)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeEMDDetectsChange(t *testing.T) {
	g := fixture.Figure1()
	if d := DegreeEMD(g, g); !close(d, 0) {
		t.Fatalf("self degree EMD = %v", d)
	}
	h := g.Clone()
	h.RemoveEdge(1, 2) // removes an edge between the two degree-4 hubs
	if d := DegreeEMD(g, h); d <= 0 {
		t.Fatalf("degree EMD after removal = %v, want > 0", d)
	}
}

func TestGeodesicHistogramPath(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	hist, unreach := GeodesicHistogram(g)
	// Path 0-1-2-3: distances 1 (x3), 2 (x2), 3 (x1).
	if unreach != 0 {
		t.Fatalf("unreachable = %d", unreach)
	}
	want := []int{0, 3, 2, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v, want %v", hist, want)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("hist = %v, want %v", hist, want)
		}
	}
}

func TestGeodesicHistogramUnreachable(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	_, unreach := GeodesicHistogram(g)
	// Pairs (0,2),(0,3),(1,2),(1,3),(2,3) unreachable.
	if unreach != 5 {
		t.Fatalf("unreachable = %d, want 5", unreach)
	}
}

func TestGeodesicEMD(t *testing.T) {
	g := fixture.Figure1()
	if d := GeodesicEMD(g, g); !close(d, 0) {
		t.Fatalf("self geodesic EMD = %v", d)
	}
	h := g.Clone()
	h.RemoveEdge(5, 6)
	if d := GeodesicEMD(g, h); d <= 0 {
		t.Fatalf("geodesic EMD after cut = %v, want > 0", d)
	}
}

func TestPropertiesFigure1(t *testing.T) {
	p := Properties(fixture.Figure1())
	if p.Nodes != 7 || p.Links != 10 || p.Diameter != 3 {
		t.Fatalf("properties = %+v", p)
	}
	if p.ACC <= 0 || p.ACC > 1 {
		t.Fatalf("ACC = %v out of range", p.ACC)
	}
}

func TestLargestAdjacencyEigenvalue(t *testing.T) {
	// Complete graph K4: largest eigenvalue = n-1 = 3.
	k4 := graph.New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			k4.AddEdge(u, v)
		}
	}
	if l := LargestAdjacencyEigenvalue(k4); math.Abs(l-3) > 1e-6 {
		t.Fatalf("K4 lambda_max = %v, want 3", l)
	}
	// Star K_{1,3}: lambda_max = sqrt(3).
	star := graph.New(4)
	star.AddEdge(0, 1)
	star.AddEdge(0, 2)
	star.AddEdge(0, 3)
	if l := LargestAdjacencyEigenvalue(star); math.Abs(l-math.Sqrt(3)) > 1e-6 {
		t.Fatalf("star lambda_max = %v, want sqrt(3)", l)
	}
	if l := LargestAdjacencyEigenvalue(graph.New(3)); l != 0 {
		t.Fatalf("edgeless lambda_max = %v", l)
	}
}

func TestAlgebraicConnectivity(t *testing.T) {
	// Complete graph K4: lambda_2(L) = n = 4.
	k4 := graph.New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			k4.AddEdge(u, v)
		}
	}
	if l := AlgebraicConnectivity(k4); math.Abs(l-4) > 1e-5 {
		t.Fatalf("K4 lambda_2 = %v, want 4", l)
	}
	// Disconnected graph: lambda_2 = 0.
	disc := graph.New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if l := AlgebraicConnectivity(disc); l > 1e-6 {
		t.Fatalf("disconnected lambda_2 = %v, want ~0", l)
	}
	// Path P3: lambda_2(L) = 1.
	p3 := graph.New(3)
	p3.AddEdge(0, 1)
	p3.AddEdge(1, 2)
	if l := AlgebraicConnectivity(p3); math.Abs(l-1) > 1e-5 {
		t.Fatalf("P3 lambda_2 = %v, want 1", l)
	}
}

func TestPropertySpectralBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(12, 0.3, seed)
		lmax := LargestAdjacencyEigenvalue(g)
		// Spectral radius is between average degree and max degree.
		stats := Degrees(g)
		if g.M() > 0 && (lmax < stats.Average-1e-6 || lmax > float64(stats.Max)+1e-6) {
			return false
		}
		l2 := AlgebraicConnectivity(g)
		return l2 >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
