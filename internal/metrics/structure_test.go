package metrics

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestDegreeAssortativityStar(t *testing.T) {
	// A star is maximally disassortative: every edge joins degree n-1
	// with degree 1.
	g := graph.New(6)
	for v := 1; v < 6; v++ {
		g.AddEdge(0, v)
	}
	r := DegreeAssortativity(g)
	if math.Abs(r-(-1)) > 1e-9 {
		t.Fatalf("star assortativity = %v, want -1", r)
	}
}

func TestDegreeAssortativityRegular(t *testing.T) {
	// A cycle is degree-regular: correlation undefined, reported as 0.
	g := graph.New(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	if r := DegreeAssortativity(g); r != 0 {
		t.Fatalf("cycle assortativity = %v, want 0", r)
	}
	if r := DegreeAssortativity(graph.New(4)); r != 0 {
		t.Fatalf("empty graph assortativity = %v, want 0", r)
	}
}

func TestDegreeAssortativityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 10 + rng.Intn(40)
		g := graph.New(n)
		for i := 0; i < 3*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		r := DegreeAssortativity(g)
		if r < -1-1e-9 || r > 1+1e-9 {
			t.Fatalf("assortativity %v outside [-1, 1]", r)
		}
	}
}

func TestDegreeAssortativityMatchesBruteForce(t *testing.T) {
	// Cross-check the single-pass formula against a direct Pearson
	// computation over the 2m endpoint pairs.
	rng := rand.New(rand.NewSource(2))
	g := graph.New(20)
	for i := 0; i < 50; i++ {
		g.AddEdge(rng.Intn(20), rng.Intn(20))
	}
	var xs, ys []float64
	g.EachEdge(func(u, v int) {
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		xs = append(xs, du, dv)
		ys = append(ys, dv, du)
	})
	want := pearson(xs, ys)
	got := DegreeAssortativity(g)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("assortativity = %v, brute force = %v", got, want)
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if vx <= 0 || vy <= 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

func TestPathLengthsPath(t *testing.T) {
	// Path on 4 vertices: distances 1x3, 2x2, 3x1 -> mean 10/6.
	stats := PathLengths(path(4))
	if stats.Reachable != 6 || stats.Unreachable != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if math.Abs(stats.Average-10.0/6) > 1e-12 {
		t.Fatalf("Average = %v, want %v", stats.Average, 10.0/6)
	}
	if stats.Effective90 != 3 {
		t.Fatalf("Effective90 = %d, want 3", stats.Effective90)
	}
}

func TestPathLengthsDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	stats := PathLengths(g)
	if stats.Reachable != 1 || stats.Unreachable != 5 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Average != 1 {
		t.Fatalf("Average = %v, want 1", stats.Average)
	}
	empty := PathLengths(graph.New(3))
	if empty.Average != 0 || empty.Reachable != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestAveragePathLengthSmallWorld(t *testing.T) {
	// The small-world property the paper leans on: a random graph's
	// average distance grows like log n, so even at n = 200 it stays
	// in single digits.
	rng := rand.New(rand.NewSource(3))
	g := graph.New(200)
	for i := 0; i < 800; i++ {
		g.AddEdge(rng.Intn(200), rng.Intn(200))
	}
	apl := AveragePathLength(g)
	if apl <= 1 || apl > 10 {
		t.Fatalf("average path length = %v, want small-world single digits", apl)
	}
}
