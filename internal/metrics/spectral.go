package metrics

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Spectral quantities quantify the "spectral graph properties" utility
// the paper's abstract refers to. Both are computed by power iteration
// with deterministic seeding, so results are reproducible.

// spectralIters bounds power-iteration rounds; convergence on the graphs
// of this reproduction is far faster.
const spectralIters = 2000

const spectralTol = 1e-10

// LargestAdjacencyEigenvalue estimates the spectral radius of the
// adjacency matrix of g by power iteration. It returns 0 for an
// edgeless graph.
func LargestAdjacencyEigenvalue(g *graph.Graph) float64 {
	n := g.N()
	if n == 0 || g.M() == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() + 0.1
	}
	y := make([]float64, n)
	lambda := 0.0
	// Iterate on A + I rather than A: for bipartite graphs the extreme
	// eigenvalues of A are +/-lambda_max and plain power iteration
	// oscillates; the shift makes lambda_max + 1 strictly dominant
	// (A is nonnegative, so its spectral radius is its largest
	// eigenvalue by Perron-Frobenius).
	const shift = 1.0
	for iter := 0; iter < spectralIters; iter++ {
		for i := range y {
			y[i] = shift * x[i]
		}
		g.EachEdge(func(u, v int) {
			y[u] += x[v]
			y[v] += x[u]
		})
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		next := 0.0
		for i := range y {
			next += y[i] * x[i]
		}
		next -= shift
		for i := range x {
			x[i] = y[i] / norm
		}
		if math.Abs(next-lambda) < spectralTol {
			return next
		}
		lambda = next
	}
	return lambda
}

// AlgebraicConnectivity estimates the second-smallest eigenvalue of the
// graph Laplacian L = D - A (Fiedler value): 0 iff the graph is
// disconnected, and larger values indicate better-connected graphs. It
// power-iterates on cI - L (c = 2*maxDegree + 1 >= lambda_max(L))
// restricted to the orthogonal complement of the all-ones eigenvector.
func AlgebraicConnectivity(g *graph.Graph) float64 {
	n := g.N()
	if n < 2 {
		return 0
	}
	c := float64(2*g.MaxDegree() + 1)
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	project := func(v []float64) {
		mean := 0.0
		for _, val := range v {
			mean += val
		}
		mean /= float64(n)
		for i := range v {
			v[i] -= mean
		}
	}
	project(x)
	y := make([]float64, n)
	mu := 0.0
	for iter := 0; iter < spectralIters; iter++ {
		// y = (cI - L) x = c*x - D*x + A*x
		for i := range y {
			y[i] = (c - float64(g.Degree(i))) * x[i]
		}
		g.EachEdge(func(u, v int) {
			y[u] += x[v]
			y[v] += x[u]
		})
		project(y)
		norm := 0.0
		for _, v := range y {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return 0
		}
		next := 0.0
		for i := range y {
			next += y[i] * x[i]
		}
		for i := range x {
			x[i] = y[i] / norm
		}
		if math.Abs(next-mu) < spectralTol {
			mu = next
			break
		}
		mu = next
	}
	lambda2 := c - mu
	if lambda2 < 0 {
		return 0
	}
	return lambda2
}
