package metrics

import (
	"math"

	"repro/internal/graph"
)

// DegreeAssortativity returns the Pearson correlation of the degrees at
// the two endpoints of each edge (Newman's assortativity coefficient):
// positive when high-degree vertices attach to high-degree vertices
// (social networks), negative for hub-and-spoke topologies
// (technological networks). It returns 0 for graphs with no edges or
// with constant endpoint degrees.
//
// Anonymization shifts this coefficient when it preferentially removes
// edges inside or across degree classes — exactly what degree-pair-type
// opacification does — so it complements the paper's Section 6.2
// measures when judging structural damage.
func DegreeAssortativity(g *graph.Graph) float64 {
	m := g.M()
	if m == 0 {
		return 0
	}
	// Each undirected edge contributes both (du, dv) and (dv, du), so
	// the two marginals coincide and a single pass suffices.
	var sumXY, sumX, sumX2 float64
	g.EachEdge(func(u, v int) {
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		sumXY += 2 * du * dv
		sumX += du + dv
		sumX2 += du*du + dv*dv
	})
	n := float64(2 * m)
	mean := sumX / n
	cov := sumXY/n - mean*mean
	varX := sumX2/n - mean*mean
	if varX <= 0 {
		return 0 // regular endpoints: correlation undefined, report 0
	}
	return cov / varX
}

// PathLengthStats summarizes the geodesic-distance distribution of a
// graph over its reachable vertex pairs.
type PathLengthStats struct {
	// Average is the mean geodesic distance over reachable pairs (the
	// small-world statistic the paper's introduction surveys: ~4.74 on
	// Facebook, ~6.6 on Messenger). Zero when no pair is reachable.
	Average float64
	// Effective90 is the 90th-percentile distance ("effective
	// diameter"), a robust alternative to the exact diameter.
	Effective90 int
	// Reachable counts reachable ordered-as-unordered pairs;
	// Unreachable counts the rest.
	Reachable, Unreachable int
}

// PathLengths computes the distribution summary with one BFS per
// vertex (O(n(n+m))).
func PathLengths(g *graph.Graph) PathLengthStats {
	hist, unreachable := GeodesicHistogram(g)
	var stats PathLengthStats
	stats.Unreachable = unreachable
	var sum float64
	for d, c := range hist {
		if d == 0 {
			continue
		}
		stats.Reachable += c
		sum += float64(d) * float64(c)
	}
	if stats.Reachable > 0 {
		stats.Average = sum / float64(stats.Reachable)
	}
	// 90th percentile over reachable pairs.
	threshold := int(math.Ceil(0.9 * float64(stats.Reachable)))
	acc := 0
	for d := 1; d < len(hist); d++ {
		acc += hist[d]
		if acc >= threshold && threshold > 0 {
			stats.Effective90 = d
			break
		}
	}
	return stats
}

// AveragePathLength returns the mean geodesic distance over reachable
// pairs; see PathLengths.
func AveragePathLength(g *graph.Graph) float64 {
	return PathLengths(g).Average
}
