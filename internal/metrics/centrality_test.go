package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// A path 0-1-2-3-4: betweenness is highest at the middle vertex and
// zero at the endpoints; exact values are known in closed form.
func TestBetweennessOnPath(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{
		graph.E(0, 1), graph.E(1, 2), graph.E(2, 3), graph.E(3, 4),
	})
	bc := BetweennessCentrality(g)
	// Vertex 2 lies on the shortest paths of pairs {0,3},{0,4},{1,3},{1,4}.
	want := []float64{0, 3, 4, 3, 0}
	for v, w := range want {
		if math.Abs(bc[v]-w) > 1e-12 {
			t.Errorf("bc[%d]=%v, want %v", v, bc[v], w)
		}
	}
}

// A star: the hub carries every pair, the leaves none.
func TestBetweennessOnStar(t *testing.T) {
	n := 7
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	bc := BetweennessCentrality(g)
	leaves := float64((n - 1) * (n - 2) / 2) // pairs routed via the hub
	if math.Abs(bc[0]-leaves) > 1e-12 {
		t.Fatalf("hub bc=%v, want %v", bc[0], leaves)
	}
	for v := 1; v < n; v++ {
		if bc[v] != 0 {
			t.Fatalf("leaf %d bc=%v, want 0", v, bc[v])
		}
	}
}

// On a cycle every vertex is symmetric: betweenness must be uniform.
func TestBetweennessCycleUniform(t *testing.T) {
	n := 9
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n)
	}
	bc := BetweennessCentrality(g)
	for v := 1; v < n; v++ {
		if math.Abs(bc[v]-bc[0]) > 1e-9 {
			t.Fatalf("cycle not uniform: bc[0]=%v bc[%d]=%v", bc[0], v, bc[v])
		}
	}
}

// Brandes on a graph with equal-length parallel shortest paths must
// split credit: in a 4-cycle 0-1-3, 0-2-3, vertices 1 and 2 each carry
// half of the pair {0,3}.
func TestBetweennessSplitsParallelPaths(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{
		graph.E(0, 1), graph.E(0, 2), graph.E(1, 3), graph.E(2, 3),
	})
	bc := BetweennessCentrality(g)
	if math.Abs(bc[1]-0.5) > 1e-12 || math.Abs(bc[2]-0.5) > 1e-12 {
		t.Fatalf("bc=%v, want 0.5 at vertices 1 and 2", bc)
	}
}

func TestHarmonicClosenessPath(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{graph.E(0, 1), graph.E(1, 2)})
	hc := HarmonicCloseness(g)
	// Middle: (1 + 1)/2 = 1; ends: (1 + 1/2)/2 = 0.75.
	if math.Abs(hc[1]-1) > 1e-12 || math.Abs(hc[0]-0.75) > 1e-12 {
		t.Fatalf("hc=%v", hc)
	}
}

func TestHarmonicClosenessDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	hc := HarmonicCloseness(g)
	if math.Abs(hc[0]-1.0/3) > 1e-12 {
		t.Fatalf("hc[0]=%v, want 1/3", hc[0])
	}
	if hc[3] != 0 {
		t.Fatalf("isolated vertex closeness=%v, want 0", hc[3])
	}
}

func TestSpearmanRank(t *testing.T) {
	perfect := SpearmanRank([]float64{1, 2, 3, 4}, []float64{10, 20, 30, 40})
	if math.Abs(perfect-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", perfect)
	}
	inverted := SpearmanRank([]float64{1, 2, 3, 4}, []float64{4, 3, 2, 1})
	if math.Abs(inverted+1) > 1e-12 {
		t.Fatalf("inverted correlation = %v", inverted)
	}
	if !math.IsNaN(SpearmanRank([]float64{1, 1, 1}, []float64{1, 2, 3})) {
		t.Fatal("constant vector should give NaN")
	}
}

func TestSpearmanRankTies(t *testing.T) {
	// With averaged tie ranks, these two orderings still correlate
	// positively but not perfectly.
	r := SpearmanRank([]float64{1, 2, 2, 3}, []float64{1, 2, 3, 4})
	if r <= 0.9 || r >= 1 {
		t.Fatalf("tied correlation = %v, want in (0.9, 1)", r)
	}
}

// Property: Spearman is invariant under strictly monotone transforms.
func TestSpearmanMonotoneInvariantQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		r1 := SpearmanRank(a, b)
		cubed := make([]float64, n)
		for i, v := range a {
			cubed[i] = v * v * v // strictly increasing
		}
		r2 := SpearmanRank(cubed, b)
		return math.Abs(r1-r2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCentralitiesIdentity(t *testing.T) {
	g := prefGraph(60, 2, 1)
	cp := Centralities(g, g)
	if math.Abs(cp.BetweennessSpearman-1) > 1e-9 ||
		math.Abs(cp.ClosenessSpearman-1) > 1e-9 ||
		cp.TopTenOverlap != 1 {
		t.Fatalf("self-comparison not perfect: %+v", cp)
	}
}

func TestCentralitiesDegradeUnderRewiring(t *testing.T) {
	g := prefGraph(80, 2, 2)
	shuffled := randomGNM(80, g.M(), 3)
	cp := Centralities(g, shuffled)
	if !(cp.BetweennessSpearman < 0.9) {
		t.Fatalf("random rewiring kept betweenness order (r=%v)?", cp.BetweennessSpearman)
	}
}

// Property: betweenness credit is conserved — the sum over vertices of
// betweenness equals the sum over reachable pairs of (internal path
// vertices), which for unweighted graphs is sum of (d(u,v) - 1) over
// reachable pairs u < v.
func TestBetweennessConservationQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(25)
		g := gnmFrom(n, n+rng.Intn(2*n), rng)
		bc := BetweennessCentrality(g)
		var sumBC float64
		for _, v := range bc {
			sumBC += v
		}
		var sumPath float64
		for u := 0; u < n; u++ {
			dist := g.BFSDistances(u)
			for v := u + 1; v < n; v++ {
				if dist[v] > 0 {
					sumPath += float64(dist[v] - 1)
				}
			}
		}
		return math.Abs(sumBC-sumPath) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBetweenness(b *testing.B) {
	g := prefGraph(200, 3, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BetweennessCentrality(g)
	}
}

// prefGraph builds a small preferential-attachment graph without
// importing internal/gen (which would create an import cycle: gen's
// calibration depends on this package).
func prefGraph(n, k int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	var targets []int
	for v := 0; v < n; v++ {
		for i := 0; i < k && v > 0; i++ {
			var w int
			if len(targets) == 0 || rng.Intn(2) == 0 {
				w = rng.Intn(v)
			} else {
				w = targets[rng.Intn(len(targets))]
			}
			if g.AddEdge(v, w) {
				targets = append(targets, v, w)
			}
		}
	}
	return g
}

// randomGNM builds a uniform graph with exactly m edges.
func randomGNM(n, m int, seed int64) *graph.Graph {
	return gnmFrom(n, m, rand.New(rand.NewSource(seed)))
}

func gnmFrom(n, m int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	maxM := n * (n - 1) / 2
	if m > maxM {
		m = maxM
	}
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}
