package apsp

import "fmt"

// MaxCompactL is the largest threshold a CompactMatrix can represent:
// cells hold the capped distance or the sentinel L+1 in one byte, so
// L+1 must fit in a uint8. Every experiment in the paper uses L <= 6.
const MaxCompactL = 254

// CompactMatrix is the default Store implementation: a packed
// upper-triangular matrix of L-capped geodesic distances with one byte
// per pair. Because the privacy model caps every stored distance at
// Far() = L+1, a uint8 cell is lossless whenever L <= MaxCompactL — at
// a quarter of the memory traffic of the int32 layout, which is what
// the candidate scans of the anonymization heuristics are bound by.
type CompactMatrix struct {
	n    int
	l    int
	data []uint8
}

// NewCompactMatrix returns a compact store for n vertices and threshold
// L with every pair initialized to Far (no edges). It panics on invalid
// sizes and on L > MaxCompactL.
func NewCompactMatrix(n, L int) *CompactMatrix {
	if n < 0 || L < 0 {
		panic(fmt.Sprintf("apsp: invalid matrix dimensions n=%d L=%d", n, L))
	}
	if L > MaxCompactL {
		panic(fmt.Sprintf("apsp: L=%d exceeds MaxCompactL=%d for the compact store (use KindPacked)", L, MaxCompactL))
	}
	m := &CompactMatrix{n: n, l: L, data: make([]uint8, n*(n-1)/2)}
	far := uint8(L + 1)
	for i := range m.data {
		m.data[i] = far
	}
	return m
}

// N returns the number of vertices.
func (m *CompactMatrix) N() int { return m.n }

// L returns the distance threshold the matrix is capped at.
func (m *CompactMatrix) L() int { return m.l }

// Far returns the sentinel value L+1 stored for pairs with geodesic
// distance exceeding L (including unreachable pairs).
func (m *CompactMatrix) Far() int { return m.l + 1 }

func (m *CompactMatrix) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	if i == j || i < 0 || j >= m.n {
		panic(fmt.Sprintf("apsp: invalid pair (%d, %d) for n=%d", i, j, m.n))
	}
	return i*(2*m.n-i-1)/2 + (j - i - 1)
}

// Get returns the capped distance for the unordered pair {i, j}, i != j.
func (m *CompactMatrix) Get(i, j int) int { return int(m.data[m.index(i, j)]) }

// Set stores the capped distance d for the unordered pair {i, j}. Values
// above Far() are clamped to Far().
func (m *CompactMatrix) Set(i, j, d int) {
	if d > m.Far() {
		d = m.Far()
	}
	if d < 1 {
		panic(fmt.Sprintf("apsp: distance %d < 1 for distinct pair (%d, %d)", d, i, j))
	}
	m.data[m.index(i, j)] = uint8(d)
}

// Clone returns an independent deep copy (satisfying the Store
// contract): mutations of the clone never reach m.
func (m *CompactMatrix) Clone() Store {
	c := &CompactMatrix{n: m.n, l: m.l, data: make([]uint8, len(m.data))}
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m with the contents of src, which must have the
// same dimensions.
func (m *CompactMatrix) CopyFrom(src *CompactMatrix) {
	if m.n != src.n || m.l != src.l {
		panic("apsp: CopyFrom dimension mismatch")
	}
	copy(m.data, src.data)
}

// EachPair calls fn for every unordered pair i < j with the stored
// capped distance.
func (m *CompactMatrix) EachPair(fn func(i, j, d int)) {
	idx := 0
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			fn(i, j, int(m.data[idx]))
			idx++
		}
	}
}
