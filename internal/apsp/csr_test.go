package apsp

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// rmatGraph generates a deterministic heavy-tailed test graph — the
// degree regime the CSR hot path is built for.
func rmatGraph(t testing.TB, n, m int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.RMAT(n, m, gen.WebRMAT(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestCSRSweepZeroAllocs is the tentpole's steady-state guarantee: once
// the store and scratch exist, sweeping bounded BFS over every source —
// including the touched-only resets and the direct cell writes —
// performs zero allocations, on both backings.
func TestCSRSweepZeroAllocs(t *testing.T) {
	g := rmatGraph(t, 400, 1200, 1)
	c := g.Frozen()
	n := c.N()
	for _, kind := range []Kind{KindCompact, KindPacked} {
		m := NewStore(n, 3, kind)
		sc := newCSRScratch(n)
		allocs := testing.AllocsPerRun(5, func() {
			boundedCSRRange(c, 3, m, 0, n, sc)
		})
		if allocs != 0 {
			t.Errorf("%v: full CSR sweep allocates %.1f objects per run, want 0", kind, allocs)
		}
	}
}

// TestBoundedCSRMatchesBaseline: the CSR engine and the retained
// map-adjacency baseline produce bit-identical stores.
func TestBoundedCSRMatchesBaseline(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g := rmatGraph(t, 150, 450, seed)
		for L := 1; L <= 4; L++ {
			want := BoundedAPSPMapBaseline(g, L, KindCompact)
			if !Equal(BoundedAPSPKind(g, L, KindCompact), want) {
				t.Fatalf("seed %d L=%d: CSR engine disagrees with map baseline", seed, L)
			}
		}
	}
}

// TestRMATEnginesAgreeAcrossKinds is the cross-engine equivalence
// matrix on RMAT graphs: every engine, at both in-memory backings,
// plus the mapped view of the snapshot, describes the same capped
// distances.
func TestRMATEnginesAgreeAcrossKinds(t *testing.T) {
	dir := t.TempDir()
	for _, L := range []int{2, 3} {
		g := rmatGraph(t, 120, 360, int64(L))
		ref := BoundedAPSPMapBaseline(g, L, KindCompact)
		engines := map[string]func(k Kind) Store{
			"bfs":      func(k Kind) Store { return BoundedAPSPKind(g, L, k) },
			"parallel": func(k Kind) Store { return BoundedAPSPParallelKind(g, L, 4, k) },
			"fw":       func(k Kind) Store { return LPrunedFWKind(g, L, k) },
			"pointer":  func(k Kind) Store { return PointerFWKind(g, L, k) },
			"bitbfs":   func(k Kind) Store { return BitBFSKind(g, L, k) },
		}
		for name, build := range engines {
			for _, kind := range []Kind{KindCompact, KindPacked} {
				if m := build(kind); !Equal(m, ref) {
					t.Errorf("L=%d: engine %s kind %v disagrees with baseline", L, name, kind)
				}
			}
		}
		// Mapped view of the persisted snapshot, pairwise against the
		// same reference.
		data, err := MarshalStore(ref)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "ref.store")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mapped, err := OpenMappedStore(path)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(mapped, ref) {
			t.Errorf("L=%d: mapped view disagrees with its source store", L)
		}
		if !Equal(mapped.Clone(), ref) {
			t.Errorf("L=%d: mapped Clone disagrees with its source store", L)
		}
		if err := mapped.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelCSRSharedSnapshotRace exercises, under -race, the
// concurrency the tentpole relies on: many goroutines reading one
// frozen CSR (striped builds) while each owns private scratch, plus
// concurrent whole builds of the same graph.
func TestParallelCSRSharedSnapshotRace(t *testing.T) {
	g := rmatGraph(t, 300, 900, 9)
	want := BoundedAPSPKind(g, 3, KindCompact)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			if m := BoundedAPSPParallelKind(g, 3, workers, KindCompact); !Equal(m, want) {
				t.Errorf("workers=%d: parallel build diverged", workers)
			}
		}(2 + i)
	}
	wg.Wait()
}

// TestAutoEngineSelectsParallelResult: EngineAuto with unset Workers is
// still bit-identical to the sequential build on either side of the
// auto-parallel threshold.
func TestAutoEngineSelectsParallelResult(t *testing.T) {
	small := rmatGraph(t, 200, 600, 4)
	if !Equal(Build(small, 3, BuildOptions{}), BoundedAPSPKind(small, 3, KindCompact)) {
		t.Error("auto engine diverged below the parallel threshold")
	}
	big := rmatGraph(t, autoParallelMinN+100, 3*(autoParallelMinN+100), 5)
	if !Equal(Build(big, 2, BuildOptions{}), BoundedAPSPKind(big, 2, KindCompact)) {
		t.Error("auto engine diverged above the parallel threshold")
	}
}
