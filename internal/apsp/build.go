package apsp

import (
	"fmt"
	"runtime"

	"repro/internal/graph"
)

// Engine selects which APSP algorithm builds the initial distance
// store. The zero value, EngineAuto, picks the bounded-BFS engine,
// parallelized over the configured workers — the right default on the
// sparse graphs the privacy model targets.
type Engine int

const (
	// EngineAuto is bounded BFS, striped over BuildOptions.Workers
	// goroutines when more than one is configured.
	EngineAuto Engine = iota
	// EngineBFS forces the sequential bounded-BFS engine.
	EngineBFS
	// EngineFW is the paper's Algorithm 2 (L-pruned Floyd-Warshall).
	EngineFW
	// EnginePointer is the paper's Algorithm 3 (pointer-based FW).
	EnginePointer
	// EngineBit is the bit-parallel BFS (64 sources per word).
	EngineBit
)

// String names the engine as accepted by ParseEngine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineBFS:
		return "bfs"
	case EngineFW:
		return "fw"
	case EnginePointer:
		return "pointer"
	case EngineBit:
		return "bitbfs"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine resolves an engine name ("auto", "bfs", "fw", "pointer",
// "bitbfs"; "" selects auto). CLI tools and the HTTP service share this
// mapping.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "bfs", "bounded":
		return EngineBFS, nil
	case "fw", "lpruned":
		return EngineFW, nil
	case "pointer":
		return EnginePointer, nil
	case "bitbfs", "bit":
		return EngineBit, nil
	}
	return 0, fmt.Errorf("apsp: unknown engine %q (want auto, bfs, fw, pointer, or bitbfs)", s)
}

// BuildOptions selects the engine, store backing, and parallelism of a
// full distance-store build. The zero value is the package default:
// bounded CSR BFS into a compact store, parallel when the graph is
// large enough to repay the goroutine setup (see autoParallelMinN).
type BuildOptions struct {
	Engine Engine
	Kind   Kind
	// Workers is the goroutine count for EngineAuto; values below 2 run
	// sequentially, except that the zero value on graphs with at least
	// autoParallelMinN vertices auto-selects one worker per CPU. All
	// engines return bit-for-bit identical stores at every worker count.
	Workers int
}

// autoParallelMinN is the vertex count from which EngineAuto with
// unset Workers stripes the CSR sweep over all CPUs. Below it the
// sequential sweep finishes before the goroutines would be scheduled;
// above it the build is the dominant cost of a request and should use
// the machine.
const autoParallelMinN = 4096

// Build computes the L-capped distance store of g with the configured
// engine and backing. Every engine produces an identical store (the
// cross-validation tests assert this), so the choice only affects build
// time and memory.
func Build(g *graph.Graph, L int, o BuildOptions) MutableStore {
	switch o.Engine {
	case EngineBFS:
		return BoundedAPSPKind(g, L, o.Kind)
	case EngineFW:
		return LPrunedFWKind(g, L, o.Kind)
	case EnginePointer:
		return PointerFWKind(g, L, o.Kind)
	case EngineBit:
		return BitBFSKind(g, L, o.Kind)
	default:
		workers := o.Workers
		if workers == 0 && g.N() >= autoParallelMinN {
			workers = runtime.NumCPU()
		}
		return BoundedAPSPParallelKind(g, L, workers, o.Kind)
	}
}
