package apsp

import (
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/graph"
)

func TestParallelAgreesOnFigure1(t *testing.T) {
	g := fixture.Figure1()
	for L := 1; L <= 4; L++ {
		ref := BoundedAPSP(g, L)
		for _, workers := range []int{0, 1, 2, 3, 8} {
			if m := BoundedAPSPParallel(g, L, workers); !Equal(m, ref) {
				t.Errorf("L=%d workers=%d: parallel disagrees with sequential", L, workers)
			}
		}
	}
}

func TestParallelTrivialGraphs(t *testing.T) {
	if m := BoundedAPSPParallel(graph.New(0), 2, 4); m.N() != 0 {
		t.Fatal("empty graph mishandled")
	}
	if m := BoundedAPSPParallel(graph.New(1), 2, 4); m.N() != 1 {
		t.Fatal("single vertex mishandled")
	}
	g := graph.New(5)
	m := BoundedAPSPParallel(g, 3, 4)
	if CountWithin(m) != 0 {
		t.Fatal("edgeless graph has pairs within L")
	}
}

func TestParallelQuickMatchesSequential(t *testing.T) {
	f := func(seed int64, nRaw, pRaw, wRaw uint8) bool {
		n := 2 + int(nRaw%80)
		p := 0.02 + float64(pRaw%30)/100
		workers := 2 + int(wRaw%6)
		g := randomGraph(n, p, seed)
		for _, L := range []int{1, 3} {
			if !Equal(BoundedAPSPParallel(g, L, workers), BoundedAPSP(g, L)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineParallel4(b *testing.B) {
	g := randomGraph(500, 0.02, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BoundedAPSPParallel(g, 2, 4)
	}
}
