package apsp

import "fmt"

// Overlay is the copy-on-write MutableStore: a read-only base plus a
// sparse map of dirty cells. It is what lets a writable anonymization
// run seed from a cached (possibly file-backed) store without the full
// O(n²/2) heap Clone the serving layer used to pay up front — creating
// an overlay is O(1), each write costs one map entry, and memory grows
// with the number of *mutated* cells, which for the paper's greedy and
// annealing heuristics is proportional to edits × ball volume, not to
// the triangle.
//
// The base is never written; any Store works, including the read-only
// MappedStore and PagedStore views, which is the composition that keeps
// a writable run's peak heap at page-cache budget + O(dirty cells)
// even when the triangle itself exceeds RAM.
type Overlay struct {
	base Store
	n    int
	far  int
	// dirty maps packed triangle index -> overridden cell value. Indexes
	// reach n(n-1)/2 ≈ 5e9 at n = 100k, so the key is int64 by contract
	// even though int is 64-bit on every supported platform.
	dirty map[int64]int32
	// dirtyRows[min(i,j)] is true when any cell of that row was ever
	// written. Reads of clean rows — the overwhelming majority during
	// candidate scans — skip the map lookup entirely.
	dirtyRows []bool
}

// Compile-time interface checks: the overlay is the mutable view; its
// base stays behind the read-only contract.
var (
	_ MutableStore = (*Overlay)(nil)
	_ MutableStore = (*CompactMatrix)(nil)
	_ MutableStore = (*Matrix)(nil)
)

// NewOverlay returns an empty copy-on-write view over base. It is O(1):
// no cell is copied until written.
func NewOverlay(base Store) *Overlay {
	return &Overlay{
		base:      base,
		n:         base.N(),
		far:       base.Far(),
		dirty:     make(map[int64]int32),
		dirtyRows: make([]bool, base.N()),
	}
}

// Base returns the read-only store the overlay shadows.
func (o *Overlay) Base() Store { return o.base }

// N returns the number of vertices.
func (o *Overlay) N() int { return o.n }

// L returns the distance threshold the store is capped at.
func (o *Overlay) L() int { return o.base.L() }

// Far returns the sentinel L+1.
func (o *Overlay) Far() int { return o.far }

// Dirty returns the number of cells currently overridden — the
// overlay's memory footprint is proportional to this, not to n².
func (o *Overlay) Dirty() int { return len(o.dirty) }

// Depth returns the number of overlay layers stacked on the first
// non-overlay base: 1 for an overlay directly over a heap or
// file-backed store, 2 for an overlay over that, and so on. Repair
// chains (each graph mutation layering one more overlay) use it to
// decide when to Compact instead of growing the read path another
// indirection.
func (o *Overlay) Depth() int {
	d := 1
	for b, ok := o.base.(*Overlay); ok; b, ok = b.base.(*Overlay) {
		d++
	}
	return d
}

// dirtyBytes estimates the heap pinned by the dirty set for the
// Footprint gauges: map overhead per entry plus the row bitmap.
func (o *Overlay) dirtyBytes() int64 {
	// ~48 bytes/entry covers the int64 key, int32 value, and Go map
	// bucket overhead; precise enough for an operator gauge.
	return 48*int64(len(o.dirty)) + int64(len(o.dirtyRows))
}

// index packs the unordered pair {i, j} into its row-major triangle
// offset, validating bounds exactly like the heap backings.
func (o *Overlay) index(i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	if i == j || i < 0 || j >= o.n {
		panic(fmt.Sprintf("apsp: invalid pair (%d, %d) for n=%d", i, j, o.n))
	}
	return int64(i)*(2*int64(o.n)-int64(i)-1)/2 + int64(j-i-1)
}

// Get returns the capped distance for the unordered pair {i, j}: the
// overridden value when the cell is dirty, the base's otherwise.
func (o *Overlay) Get(i, j int) int {
	if i > j {
		i, j = j, i
	}
	if i >= 0 && i < o.n && o.dirtyRows[i] {
		if d, ok := o.dirty[o.index(i, j)]; ok {
			return int(d)
		}
	}
	return o.base.Get(i, j)
}

// Set stores the capped distance d for the unordered pair {i, j} in the
// dirty set. Values above Far() are clamped to Far(); d < 1 panics.
// Writing a cell back to its base value removes the override, so a
// mutate-then-undo cycle (the annealer's rejected moves, the greedy
// scorer's probe/revert) leaves the overlay as sparse as it started.
func (o *Overlay) Set(i, j, d int) {
	if d > o.far {
		d = o.far
	}
	if d < 1 {
		panic(fmt.Sprintf("apsp: distance %d < 1 for distinct pair (%d, %d)", d, i, j))
	}
	idx := o.index(i, j)
	if o.base.Get(i, j) == d {
		delete(o.dirty, idx)
		return
	}
	o.dirty[idx] = int32(d)
	if i > j {
		i = j
	}
	o.dirtyRows[i] = true
}

// EachPair calls fn for every unordered pair i < j in row-major order,
// serving dirty cells from the overlay and everything else from the
// base. With an empty dirty set it delegates to the base outright, so
// a never-written overlay scans at full base speed.
func (o *Overlay) EachPair(fn func(i, j, d int)) {
	if len(o.dirty) == 0 {
		o.base.EachPair(fn)
		return
	}
	var idx int64
	o.base.EachPair(func(i, j, d int) {
		if o.dirtyRows[i] {
			if v, ok := o.dirty[idx]; ok {
				d = int(v)
			}
		}
		fn(i, j, d)
		idx++
	})
}

// Clone returns an independent overlay over the same (shared, read-only)
// base: the dirty set is copied, so mutations of the clone and the
// original never observe each other. Cost is O(dirty), not O(n²) —
// which restores the cheap many-runs-from-one-cached-store pattern
// without the full-triangle copies it used to imply.
func (o *Overlay) Clone() Store {
	c := &Overlay{
		base:      o.base,
		n:         o.n,
		far:       o.far,
		dirty:     make(map[int64]int32, len(o.dirty)),
		dirtyRows: make([]bool, len(o.dirtyRows)),
	}
	for k, v := range o.dirty {
		c.dirty[k] = v
	}
	copy(c.dirtyRows, o.dirtyRows)
	return c
}

// Compact materializes the overlay into a heap store of the base's
// kind — the escape hatch for callers that need a standalone artifact
// (serialization, long-lived caching) rather than a view.
func (o *Overlay) Compact() MutableStore {
	m := NewStore(o.n, o.L(), EffectiveKind(KindOf(o.base), o.L()))
	Copy(m, o)
	return m
}
