package apsp

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// applyDiff clones g, applies d, and fails the test on any error — the
// repair tests always construct diffs that are valid for their graph.
func applyDiff(t testing.TB, g *graph.Graph, d graph.Diff) *graph.Graph {
	t.Helper()
	child := g.Clone()
	if err := d.Apply(child); err != nil {
		t.Fatal(err)
	}
	return child
}

// validDiff draws up to maxAdd absent edges and maxDel present edges
// from g, deterministic in rng.
func validDiff(t testing.TB, rng *rand.Rand, g *graph.Graph, maxAdd, maxDel int) graph.Diff {
	t.Helper()
	n := g.N()
	var adds, removes [][2]int
	seen := graph.NewEdgeSet()
	for tries := 0; len(adds) < maxAdd && tries < 50*maxAdd; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) || !seen.Add(graph.E(u, v)) {
			continue
		}
		adds = append(adds, [2]int{u, v})
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for i := 0; i < maxDel && i < len(edges); i++ {
		removes = append(removes, [2]int{edges[i].U, edges[i].V})
	}
	d, err := graph.NewDiff(n, adds, removes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRepairStoreMatchesRebuild: across random graphs, random mixed
// diffs, and several L values, the repaired store is cell-for-cell
// identical to a from-scratch build of the child — including pairs
// that become disconnected (Far) and pairs newly pulled under the cap.
func TestRepairStoreMatchesRebuild(t *testing.T) {
	for _, L := range []int{1, 2, 3, 5} {
		for seed := int64(1); seed <= 8; seed++ {
			rng := rand.New(rand.NewSource(100*int64(L) + seed))
			g := randomGraph(60, 0.06, seed)
			base := Build(g, L, BuildOptions{})
			d := validDiff(t, rng, g, 4, 3)
			child := applyDiff(t, g, d)

			// These small sparse graphs blow the default edit and
			// blast-radius budgets (an L=3 ball covers much of a
			// 60-vertex graph); open the knobs — this test is about
			// correctness, not the cost heuristic.
			repaired, ok := RepairStore(base, child, d, RepairOptions{MaxEditFraction: 0.5, MaxRowFraction: 1})
			if !ok {
				t.Fatalf("L=%d seed=%d: repair of %v bailed", L, seed, d)
			}
			want := eachPairStream(Build(child, L, BuildOptions{}))
			got := eachPairStream(repaired)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("L=%d seed=%d diff=%v: repaired store diverges from rebuild at flat index %d", L, seed, d, k)
				}
			}
			// The parent store must not have been written through.
			if ov, isOv := repaired.(*Overlay); isOv && ov.Base() != base {
				t.Fatalf("L=%d seed=%d: overlay does not share the parent store", L, seed)
			}
			fresh := eachPairStream(Build(g, L, BuildOptions{}))
			if parentNow := eachPairStream(base); len(parentNow) != len(fresh) {
				t.Fatalf("parent store resized")
			} else {
				for k := range fresh {
					if parentNow[k] != fresh[k] {
						t.Fatalf("L=%d seed=%d: repair mutated the parent store", L, seed)
					}
				}
			}
		}
	}
}

// TestRepairStoreAddsOnlyAndRemovesOnly: the two phases are exercised
// in isolation, including an edge removal that disconnects a vertex.
func TestRepairStoreAddsOnlyAndRemovesOnly(t *testing.T) {
	const L = 3
	// Path 0-1-2-3-4 plus a pendant 5 off vertex 0.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 5}} {
		g.AddEdge(e[0], e[1])
	}
	base := Build(g, L, BuildOptions{})

	// Adds only: shortcut 0-4 pulls far pairs under the cap.
	d, err := graph.NewDiff(6, [][2]int{{0, 4}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	child := applyDiff(t, g, d)
	repaired, ok := RepairStore(base, child, d, RepairOptions{})
	if !ok {
		t.Fatal("adds-only repair bailed")
	}
	if got, want := eachPairStream(repaired), eachPairStream(Build(child, L, BuildOptions{})); !equalInts(got, want) {
		t.Fatal("adds-only repair diverges from rebuild")
	}

	// Removes only: cutting 0-5 disconnects 5 entirely (all Far).
	d, err = graph.NewDiff(6, nil, [][2]int{{0, 5}})
	if err != nil {
		t.Fatal(err)
	}
	child = applyDiff(t, g, d)
	repaired, ok = RepairStore(base, child, d, RepairOptions{})
	if !ok {
		t.Fatal("removes-only repair bailed")
	}
	if got, want := eachPairStream(repaired), eachPairStream(Build(child, L, BuildOptions{})); !equalInts(got, want) {
		t.Fatal("removes-only repair diverges from rebuild")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRepairStoreBailsAndRejects: oversized diffs and dimensionally
// inconsistent inputs return ok=false, never a wrong store or a panic.
func TestRepairStoreBailsAndRejects(t *testing.T) {
	const L = 2
	g := randomGraph(40, 0.1, 7)
	base := Build(g, L, BuildOptions{})

	// Oversized: more edits than MaxEditFraction*n allows.
	rng := rand.New(rand.NewSource(7))
	big := validDiff(t, rng, g, 12, 0)
	child := applyDiff(t, g, big)
	if _, ok := RepairStore(base, child, big, RepairOptions{MaxEditFraction: 0.1}); ok {
		t.Fatalf("repair accepted a %d-edit diff with a %d-edit budget", big.Size(), 4)
	}

	// Wrong child dimensions.
	small := graph.New(10)
	d, _ := graph.NewDiff(40, [][2]int{{0, 1}}, nil)
	if _, ok := RepairStore(base, small, d, RepairOptions{}); ok {
		t.Fatal("repair accepted a child with the wrong vertex count")
	}
	dBad, _ := graph.NewDiff(39, [][2]int{{0, 1}}, nil)
	if _, ok := RepairStore(base, g, dBad, RepairOptions{}); ok {
		t.Fatal("repair accepted a diff with the wrong vertex count")
	}
	if _, ok := RepairStore(base, nil, d, RepairOptions{}); ok {
		t.Fatal("repair accepted a nil child")
	}

	// Empty diff: a trivially valid overlay over base.
	empty, err := graph.NewDiff(40, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := RepairStore(base, g, empty, RepairOptions{})
	if !ok {
		t.Fatal("empty diff bailed")
	}
	if !equalInts(eachPairStream(s), eachPairStream(base)) {
		t.Fatal("empty-diff repair changed the store")
	}
}

// TestRepairStoreCompactThresholds: a depth-1 chain with CompactDepth=1
// hands back a heap store rather than another overlay layer, and the
// dirty-fraction trigger does the same on a write-heavy diff.
func TestRepairStoreCompactThresholds(t *testing.T) {
	const L = 3
	g := randomGraph(50, 0.08, 3)
	base := Build(g, L, BuildOptions{})
	rng := rand.New(rand.NewSource(3))
	d := validDiff(t, rng, g, 2, 2)
	child := applyDiff(t, g, d)

	// Depth over threshold: CompactDepth=1 means the depth-1 result
	// itself is over the line only once stacked — repair a second diff
	// on top of the first overlay and require a heap store back.
	first, ok := RepairStore(base, child, d, RepairOptions{CompactDepth: 2, MaxEditFraction: 0.5, MaxRowFraction: 1})
	if !ok {
		t.Fatal("first repair bailed")
	}
	if _, isOv := first.(*Overlay); !isOv {
		t.Fatalf("first repair compacted below threshold: %T", first)
	}
	rng2 := rand.New(rand.NewSource(4))
	d2 := validDiff(t, rng2, child, 2, 2)
	grand := applyDiff(t, child, d2)
	second, ok := RepairStore(first, grand, d2, RepairOptions{CompactDepth: 1, MaxEditFraction: 0.5, MaxRowFraction: 1})
	if !ok {
		t.Fatal("second repair bailed")
	}
	if _, isOv := second.(*Overlay); isOv {
		t.Fatal("depth threshold did not compact the chain")
	}
	if got, want := eachPairStream(second), eachPairStream(Build(grand, L, BuildOptions{})); !equalInts(got, want) {
		t.Fatal("compacted chain diverges from rebuild of the grandchild")
	}

	// Dirty-fraction trigger: an absurdly low threshold compacts even a
	// small diff's writes.
	tiny, ok := RepairStore(base, child, d, RepairOptions{CompactDirtyFraction: 1e-9, MaxEditFraction: 0.5, MaxRowFraction: 1})
	if !ok {
		t.Fatal("repair bailed")
	}
	if _, isOv := tiny.(*Overlay); isOv {
		t.Fatal("dirty threshold did not compact")
	}
}

// TestOverlayDepth pins the chain-depth accounting Compact thresholds
// key off.
func TestOverlayDepth(t *testing.T) {
	g := randomGraph(20, 0.2, 1)
	base := Build(g, 2, BuildOptions{})
	o1 := NewOverlay(base)
	o2 := NewOverlay(o1)
	o3 := NewOverlay(o2)
	for want, o := range map[int]*Overlay{1: o1, 2: o2, 3: o3} {
		if got := o.Depth(); got != want {
			t.Fatalf("Depth = %d, want %d", got, want)
		}
	}
}

// TestRepairBackingsEquivalenceMatrix is the dynamic-graph row of the
// backings matrix: for every engine and every base backing — compact
// and packed heap stores, their mapped and paged file views, and an
// overlay chain — the store repaired from the parent serializes
// byte-identically to a from-scratch build of the child. Byte identity
// of MarshalStore is stronger than cell equality: it also pins the
// kind folding (a repaired view of a compact snapshot snapshots as
// compact again).
func TestRepairBackingsEquivalenceMatrix(t *testing.T) {
	const L = 3
	dir := t.TempDir()
	g := rmatGraph(t, 150, 450, 99)
	rng := rand.New(rand.NewSource(99))
	d := validDiff(t, rng, g, 3, 2)
	child := applyDiff(t, g, d)

	check := func(name string, baseStore Store, want []byte) {
		t.Helper()
		repaired, ok := RepairStore(baseStore, child, d, RepairOptions{})
		if !ok {
			t.Errorf("%s: repair bailed", name)
			return
		}
		got, err := MarshalStore(repaired)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: repaired snapshot differs from rebuilt child snapshot", name)
		}
	}

	for _, eng := range []Engine{EngineAuto, EngineBFS, EngineFW, EnginePointer, EngineBit} {
		for _, kind := range []Kind{KindCompact, KindPacked} {
			want, err := MarshalStore(Build(child, L, BuildOptions{Engine: eng, Kind: kind}))
			if err != nil {
				t.Fatal(err)
			}
			tag := eng.String() + "/" + kind.String()

			heap := Build(g, L, BuildOptions{Engine: eng, Kind: kind})
			check(tag+"/heap", heap, want)
			check(tag+"/overlay", NewOverlay(heap), want)

			path := filepath.Join(dir, tag[:1]+kind.String()+".store")
			if err := BuildToFile(path, g, L, BuildOptions{Engine: eng, Kind: kind}); err != nil {
				t.Fatal(err)
			}
			mapped, err := OpenMappedStore(path)
			if err != nil {
				t.Fatal(err)
			}
			check(tag+"/mapped", mapped, want)
			paged, err := OpenPagedStore(path, NewPageCache(pageSize))
			if err != nil {
				t.Fatal(err)
			}
			check(tag+"/paged", paged, want)
			mapped.Close()
			paged.Close()
		}
	}
}

// TestRepairChainOnRepairedOverlay: two successive diffs repaired one
// on top of the other (parent → child → grandchild) serialize exactly
// like a from-scratch build of the grandchild, for both a heap and a
// mapped base at the bottom of the chain.
func TestRepairChainOnRepairedOverlay(t *testing.T) {
	const L = 3
	dir := t.TempDir()
	g := rmatGraph(t, 150, 450, 17)
	rng := rand.New(rand.NewSource(17))
	d1 := validDiff(t, rng, g, 3, 2)
	child := applyDiff(t, g, d1)
	d2 := validDiff(t, rng, child, 3, 2)
	grand := applyDiff(t, child, d2)

	want, err := MarshalStore(Build(grand, L, BuildOptions{}))
	if err != nil {
		t.Fatal(err)
	}

	bases := map[string]Store{"heap": Build(g, L, BuildOptions{})}
	path := filepath.Join(dir, "chain.store")
	if err := BuildToFile(path, g, L, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMappedStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	bases["mapped"] = mapped

	for name, base := range bases {
		mid, ok := RepairStore(base, child, d1, RepairOptions{})
		if !ok {
			t.Fatalf("%s: first repair bailed", name)
		}
		top, ok := RepairStore(mid, grand, d2, RepairOptions{})
		if !ok {
			t.Fatalf("%s: second repair bailed", name)
		}
		got, err := MarshalStore(top)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: repaired chain snapshot differs from grandchild rebuild", name)
		}
	}
}
