package apsp

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// pagedFixture builds a snapshot file for a random graph and opens it
// as a paged view over a fresh cache with the given budget.
func pagedFixture(t *testing.T, n int, p float64, seed int64, L int, kind Kind, budget int64) (Store, *PagedStore, *PageCache) {
	t.Helper()
	g := randomGraph(n, p, seed)
	oracle := Build(g, L, BuildOptions{Kind: kind})
	path := filepath.Join(t.TempDir(), "s.store")
	if err := BuildToFile(path, g, L, BuildOptions{Kind: kind}); err != nil {
		t.Fatal(err)
	}
	cache := NewPageCache(budget)
	ps, err := OpenPagedStore(path, cache)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ps.Close() })
	return oracle, ps, cache
}

// TestPagedStoreMatchesOracle: every Get and the full ordered EachPair
// stream agree with the heap oracle, for both payload kinds, even with
// a budget far below the file size.
func TestPagedStoreMatchesOracle(t *testing.T) {
	for _, kind := range []Kind{KindCompact, KindPacked} {
		oracle, ps, _ := pagedFixture(t, 60, 0.1, 21, 3, kind, pageSize)
		if ps.N() != oracle.N() || ps.L() != oracle.L() || ps.Far() != oracle.Far() {
			t.Fatalf("%v: dimensions diverge", kind)
		}
		n := oracle.N()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if ps.Get(i, j) != oracle.Get(i, j) {
					t.Fatalf("%v: Get(%d,%d) = %d, oracle %d", kind, i, j, ps.Get(i, j), oracle.Get(i, j))
				}
			}
		}
		type cell struct{ i, j, d int }
		var want []cell
		oracle.EachPair(func(i, j, d int) { want = append(want, cell{i, j, d}) })
		k := 0
		ps.EachPair(func(i, j, d int) {
			if k >= len(want) || want[k] != (cell{i, j, d}) {
				t.Fatalf("%v: EachPair[%d] = %v", kind, k, cell{i, j, d})
			}
			k++
		})
		if k != len(want) {
			t.Fatalf("%v: EachPair emitted %d cells, want %d", kind, k, len(want))
		}
	}
}

// TestPagedStoreBudget: the cache never holds more than its budget (the
// one-page floor aside), and a scan bigger than the budget evicts.
func TestPagedStoreBudget(t *testing.T) {
	// n=600 compact cells ≈ 180k bytes ≈ 3 pages; budget of 1 page
	// forces eviction traffic.
	oracle, ps, cache := pagedFixture(t, 600, 0.02, 33, 2, KindCompact, pageSize)
	rng := rand.New(rand.NewSource(1))
	n := oracle.N()
	for k := 0; k < 5000; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		if ps.Get(i, j) != oracle.Get(i, j) {
			t.Fatalf("Get(%d,%d) diverged under eviction pressure", i, j)
		}
		if st := cache.Stats(); st.ResidentBytes > st.BudgetBytes {
			t.Fatalf("resident %d bytes exceeds budget %d", st.ResidentBytes, st.BudgetBytes)
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite budget < file size")
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("implausible traffic: hits=%d misses=%d", st.Hits, st.Misses)
	}
	if got := ps.ResidentBytes(); got > st.BudgetBytes {
		t.Fatalf("store resident %d exceeds budget", got)
	}
	ps.DropPages()
	if got := ps.ResidentBytes(); got != 0 {
		t.Fatalf("DropPages left %d resident bytes", got)
	}
	// Dropped pages re-fault on demand: reads still serve.
	if ps.Get(0, 1) != oracle.Get(0, 1) {
		t.Fatal("read after DropPages diverged")
	}
}

// TestPageCacheSharedBudget: two stores on one cache share its budget —
// total residency stays capped while both keep serving correct cells.
func TestPageCacheSharedBudget(t *testing.T) {
	dir := t.TempDir()
	cache := NewPageCache(2 * pageSize)
	var oracles []Store
	var stores []*PagedStore
	for s := 0; s < 2; s++ {
		g := randomGraph(500, 0.02, int64(50+s))
		oracles = append(oracles, Build(g, 2, BuildOptions{}))
		path := filepath.Join(dir, string(rune('a'+s))+".store")
		if err := BuildToFile(path, g, 2, BuildOptions{}); err != nil {
			t.Fatal(err)
		}
		ps, err := OpenPagedStore(path, cache)
		if err != nil {
			t.Fatal(err)
		}
		defer ps.Close()
		stores = append(stores, ps)
	}
	rng := rand.New(rand.NewSource(9))
	for k := 0; k < 3000; k++ {
		s := k % 2
		i, j := rng.Intn(500), rng.Intn(500)
		if i == j {
			continue
		}
		if stores[s].Get(i, j) != oracles[s].Get(i, j) {
			t.Fatalf("store %d diverged", s)
		}
	}
	if st := cache.Stats(); st.ResidentBytes > st.BudgetBytes {
		t.Fatalf("shared residency %d exceeds budget %d", st.ResidentBytes, st.BudgetBytes)
	}
	// Closing one store reclaims its pages without touching the other.
	stores[0].Close()
	if got := stores[0].ResidentBytes(); got != 0 {
		t.Fatalf("closed store still resident: %d bytes", got)
	}
	if stores[1].Get(1, 2) != oracles[1].Get(1, 2) {
		t.Fatal("surviving store diverged after sibling Close")
	}
}

// TestPagedStoreCloneAndReadOnly: Clone materializes an equal, mutable,
// independent heap store; the paged view itself never satisfies
// MutableStore.
func TestPagedStoreCloneAndReadOnly(t *testing.T) {
	oracle, ps, _ := pagedFixture(t, 40, 0.2, 77, 3, KindCompact, 1<<20)
	if _, ok := Store(ps).(MutableStore); ok {
		t.Fatal("PagedStore must not implement MutableStore")
	}
	c := ps.Clone().(MutableStore)
	if !Equal(c, oracle) {
		t.Fatal("clone differs from oracle")
	}
	i, j := -1, -1
	oracle.EachPair(func(x, y, d int) {
		if i < 0 && d > 1 {
			i, j = x, y
		}
	})
	if i < 0 {
		t.Skip("no mutable pair in fixture")
	}
	c.Set(i, j, 1)
	if ps.Get(i, j) == 1 {
		t.Fatal("mutating a clone changed the paged view")
	}
}

// TestOpenPagedStoreRejectsCorrupt: bad magic, impossible dimensions,
// and truncated payloads fail at open with an error, never a panic,
// and a nil cache is rejected.
func TestOpenPagedStoreRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(12, 0.3, 3)
	good := filepath.Join(dir, "good.store")
	if err := BuildToFile(good, g, 2, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	cache := NewPageCache(1 << 20)
	if _, err := OpenPagedStore(good, nil); err == nil {
		t.Fatal("nil cache accepted")
	}

	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		b := mutate(append([]byte(nil), raw...))
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenPagedStore(p, cache); err == nil {
			t.Fatalf("%s: corrupt snapshot accepted", name)
		}
	}
	corrupt("magic.store", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("version.store", func(b []byte) []byte { b[4] = 99; return b })
	corrupt("short.store", func(b []byte) []byte { return b[:len(b)-1] })
	corrupt("long.store", func(b []byte) []byte { return append(b, 0) })
	corrupt("header.store", func(b []byte) []byte { return b[:storeHeaderLen-2] })
}

// TestPagedStoreFootprint: the byte gauges see through the view — file
// bytes equal the snapshot size, heap bytes equal current residency.
func TestPagedStoreFootprint(t *testing.T) {
	_, ps, _ := pagedFixture(t, 200, 0.05, 13, 2, KindCompact, pageSize)
	heap0, file := Footprint(ps)
	if heap0 != 0 {
		t.Fatalf("untouched paged store reports %d heap bytes", heap0)
	}
	want := int64(storeHeaderLen + 200*199/2)
	if file != want {
		t.Fatalf("file bytes %d, want %d", file, want)
	}
	ps.Get(0, 1)
	heap1, _ := Footprint(ps)
	if heap1 <= 0 {
		t.Fatal("touched paged store reports no resident bytes")
	}
	if name := BackingName(ps); name != "paged" {
		t.Fatalf("BackingName = %q", name)
	}
}
