package apsp

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
)

// PagedStore windows a snapshot file through a bounded LRU page cache,
// the backing for triangles larger than RAM. Where MappedStore leaves
// residency decisions to the kernel (and so can still balloon RSS on a
// hot full scan), a PagedStore pins at most its PageCache's budget:
// Get faults the 64 KiB page holding the cell into the cache, evicting
// the least-recently-used pages of ALL stores sharing the cache until
// the budget holds again. The cache is deliberately process-shared —
// the registry owns one sized by -store-budget-bytes, so the operator
// caps total resident triangle bytes with one number no matter how
// many graphs are registered.
//
// Validation depth matches MappedStore: header, dimensions, and file
// length are checked on open; cells are range-checked only when a full
// decode (Clone) runs. Like MappedStore it implements only the read
// view — mutation goes through an Overlay.

// pageSize is the cache granule: big enough that a sequential EachPair
// amortizes one read syscall over 64k cells, small enough that random
// candidate-scan access doesn't thrash whole rows in and out.
const pageSize = 1 << 16

// PageCacheStats is a point-in-time snapshot of a PageCache's
// occupancy and traffic, surfaced through /v1/stats and /metrics.
type PageCacheStats struct {
	BudgetBytes   int64 // configured ceiling
	ResidentBytes int64 // bytes currently cached
	Pages         int   // resident page count
	Hits          int64 // page lookups served from cache
	Misses        int64 // page lookups that read the file
	Evictions     int64 // pages dropped to respect the budget
}

// pageKey identifies one page of one store; store IDs are unique per
// cache so two stores over the same file never alias.
type pageKey struct {
	store uint64
	page  int64
}

// cachePage is one resident page plus its LRU bookkeeping.
type cachePage struct {
	key pageKey
	buf []byte
}

// PageCache is a shared, thread-safe LRU of snapshot-file pages with a
// hard byte budget. All PagedStores opened against it draw from the
// same budget; evicting a page never touches the file, so a dropped
// page is simply re-read on the next miss.
type PageCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	nextID uint64
	lru    *list.List // front = most recently used; values are *cachePage
	pages  map[pageKey]*list.Element

	hits, misses, evictions int64
}

// NewPageCache returns a cache with the given byte budget. Budgets
// below one page are raised to one page — a cache that cannot hold the
// page it is currently serving would livelock.
func NewPageCache(budgetBytes int64) *PageCache {
	if budgetBytes < pageSize {
		budgetBytes = pageSize
	}
	return &PageCache{
		budget: budgetBytes,
		lru:    list.New(),
		pages:  make(map[pageKey]*list.Element),
	}
}

// Stats snapshots the cache counters.
func (c *PageCache) Stats() PageCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PageCacheStats{
		BudgetBytes:   c.budget,
		ResidentBytes: c.used,
		Pages:         c.lru.Len(),
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
	}
}

// load returns the page'th payload page of the store, reading it from
// r on a miss and evicting LRU pages (never the one just loaded) until
// the budget holds. size is the byte length of the page, which is
// pageSize except for the file's tail.
func (c *PageCache) load(store uint64, page int64, size int, r io.ReaderAt) ([]byte, error) {
	key := pageKey{store: store, page: page}
	c.mu.Lock()
	if el, ok := c.pages[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		buf := el.Value.(*cachePage).buf
		c.mu.Unlock()
		return buf, nil
	}
	c.misses++
	c.mu.Unlock()

	// Read outside the lock: a page fault is a syscall, and serializing
	// all stores' IO behind one mutex would make the shared cache a
	// shared bottleneck. Two goroutines may race to read the same page;
	// the second insert finds the first's entry and drops its copy.
	buf := make([]byte, size)
	if _, err := r.ReadAt(buf, storeHeaderLen+page*pageSize); err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.pages[key]; ok {
		return el.Value.(*cachePage).buf, nil
	}
	el := c.lru.PushFront(&cachePage{key: key, buf: buf})
	c.pages[key] = el
	c.used += int64(size)
	for c.used > c.budget {
		back := c.lru.Back()
		if back == nil || back == el {
			break // never evict the page being served
		}
		victim := back.Value.(*cachePage)
		c.lru.Remove(back)
		delete(c.pages, victim.key)
		c.used -= int64(len(victim.buf))
		c.evictions++
	}
	return buf, nil
}

// dropStore evicts every resident page of one store — what registry
// eviction of a paged store does: the memory goes, the file stays.
func (c *PageCache) dropStore(store uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.lru.Front(); el != nil; el = next {
		next = el.Next()
		p := el.Value.(*cachePage)
		if p.key.store == store {
			c.lru.Remove(el)
			delete(c.pages, p.key)
			c.used -= int64(len(p.buf))
		}
	}
}

// residentBytes reports the bytes currently cached for one store.
func (c *PageCache) residentBytes(store uint64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		p := el.Value.(*cachePage)
		if p.key.store == store {
			total += int64(len(p.buf))
		}
	}
	return total
}

// PagedStore is the read-only Store view over a snapshot file windowed
// through a shared PageCache. See the package comment above for the
// contract; construction is OpenPagedStore.
type PagedStore struct {
	n, l    int
	kind    Kind
	id      uint64
	cache   *PageCache
	f       *os.File
	payload int64 // payload byte length (file size minus header)

	closeOnce sync.Once
}

// OpenPagedStore opens the snapshot file at path as a paged view drawing
// from cache. The header and file length are validated up front; cell
// bytes are paged in lazily on first touch.
func OpenPagedStore(path string, cache *PageCache) (*PagedStore, error) {
	if cache == nil {
		return nil, fmt.Errorf("apsp: OpenPagedStore requires a PageCache")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("apsp: opening store snapshot: %w", err)
	}
	header := make([]byte, storeHeaderLen)
	if _, err := io.ReadFull(f, header); err != nil {
		f.Close()
		return nil, fmt.Errorf("apsp: %s: reading snapshot header: %w", path, err)
	}
	k, n, l, err := decodeStoreHeader(header)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("apsp: %s: %w", path, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("apsp: %s: %w", path, err)
	}
	cells := cellCount(uint64(n))
	want := cells
	if k == KindPacked {
		want = 4 * cells
	}
	if got := uint64(fi.Size() - storeHeaderLen); got != want {
		f.Close()
		return nil, fmt.Errorf("apsp: %s: snapshot payload is %d bytes, want %d for n=%d %v cells", path, got, want, n, k)
	}
	s := &PagedStore{
		n: n, l: l, kind: k,
		cache:   cache,
		f:       f,
		payload: int64(want),
	}
	cache.mu.Lock()
	cache.nextID++
	s.id = cache.nextID
	cache.mu.Unlock()
	// Close the file when the store becomes unreachable without an
	// explicit Close — the same safety net MappedStore uses, and the
	// reason registry eviction can just drop pages and let go.
	runtime.SetFinalizer(s, func(p *PagedStore) { p.Close() })
	return s, nil
}

// Close drops the store's cached pages and closes the file. Idempotent;
// reads after Close panic.
func (s *PagedStore) Close() error {
	var err error
	s.closeOnce.Do(func() {
		runtime.SetFinalizer(s, nil)
		s.cache.dropStore(s.id)
		err = s.f.Close()
	})
	return err
}

// DropPages evicts the store's resident pages without closing it: the
// next read pages them back in. This is what cache-pressure eviction
// calls — memory is reclaimed, the artifact survives.
func (s *PagedStore) DropPages() { s.cache.dropStore(s.id) }

// N returns the number of vertices.
func (s *PagedStore) N() int { return s.n }

// L returns the distance threshold the store is capped at.
func (s *PagedStore) L() int { return s.l }

// Far returns the sentinel stored for pairs beyond the cap.
func (s *PagedStore) Far() int { return s.l + 1 }

// Kind reports the payload backing recorded in the snapshot header
// (compact or packed) — the kind a Clone decodes into.
func (s *PagedStore) Kind() Kind { return s.kind }

// ResidentBytes reports the bytes this store currently pins in the
// shared cache.
func (s *PagedStore) ResidentBytes() int64 { return s.cache.residentBytes(s.id) }

// FileBytes reports the on-disk size of the snapshot payload plus
// header.
func (s *PagedStore) FileBytes() int64 { return s.payload + storeHeaderLen }

// index returns the packed upper-triangle offset of the unordered pair
// {i, j}; the layout is identical to the other backings. int64 because
// a paged store exists precisely for triangles whose cell count
// justifies it.
func (s *PagedStore) index(i, j int) int64 {
	if i > j {
		i, j = j, i
	}
	if i == j || i < 0 || j >= s.n {
		panic(fmt.Sprintf("apsp: pair (%d, %d) out of range for n=%d", i, j, s.n))
	}
	return int64(i)*(2*int64(s.n)-int64(i)-1)/2 + int64(j-i-1)
}

// pageOf maps a payload byte offset to its page index, intra-page
// offset, and the page's byte length (short only at the tail).
func (s *PagedStore) pageOf(off int64) (page int64, rel int, size int) {
	page = off / pageSize
	rel = int(off % pageSize)
	size = pageSize
	if remain := s.payload - page*pageSize; remain < pageSize {
		size = int(remain)
	}
	return page, rel, size
}

// cellAt reads the cell at the given payload cell index through the
// cache. Pages are aligned to the payload start and pageSize is a
// multiple of the cell width, so a cell never straddles two pages.
func (s *PagedStore) cellAt(idx int64) int {
	off := idx
	if s.kind == KindPacked {
		off = 4 * idx
	}
	page, rel, size := s.pageOf(off)
	buf, err := s.cache.load(s.id, page, size, s.f)
	if err != nil {
		panic(fmt.Sprintf("apsp: paged store read (page %d): %v", page, err))
	}
	if s.kind == KindCompact {
		return int(buf[rel])
	}
	return int(int32(binary.LittleEndian.Uint32(buf[rel:])))
}

// Get returns the capped distance for the unordered pair {i, j}.
func (s *PagedStore) Get(i, j int) int { return s.cellAt(s.index(i, j)) }

// EachPair calls fn for every unordered pair i < j in row-major order.
// The walk is page-sequential: each 64 KiB page is faulted once and
// fully consumed before moving on, so a complete scan costs one pass
// over the file regardless of the cache budget — this is what keeps
// opacity-tracker construction over an out-of-core triangle at disk
// bandwidth instead of one cache probe per pair.
func (s *PagedStore) EachPair(fn func(i, j, d int)) {
	cell := int64(1)
	if s.kind == KindPacked {
		cell = 4
	}
	i, j := 0, 1
	for pageStart := int64(0); pageStart < s.payload; pageStart += pageSize {
		page, _, size := s.pageOf(pageStart)
		buf, err := s.cache.load(s.id, page, size, s.f)
		if err != nil {
			panic(fmt.Sprintf("apsp: paged store read (page %d): %v", page, err))
		}
		for rel := 0; rel+int(cell) <= len(buf); rel += int(cell) {
			var d int
			if s.kind == KindCompact {
				d = int(buf[rel])
			} else {
				d = int(int32(binary.LittleEndian.Uint32(buf[rel:])))
			}
			fn(i, j, d)
			j++
			if j == s.n {
				i++
				j = i + 1
			}
		}
	}
}

// Clone decodes the whole snapshot into an independent, mutable heap
// store of the payload's kind, validating every cell on the way — the
// same full-fidelity escape hatch MappedStore.Clone is. It necessarily
// materializes the triangle; runs that only need mutability over a big
// store should wrap the PagedStore in an Overlay instead.
func (s *PagedStore) Clone() Store {
	raw := make([]byte, storeHeaderLen+s.payload)
	if _, err := s.f.ReadAt(raw, 0); err != nil {
		panic(fmt.Sprintf("apsp: cloning paged store: %v", err))
	}
	m, err := UnmarshalStore(raw)
	if err != nil {
		panic(fmt.Sprintf("apsp: cloning paged store: %v", err))
	}
	return m
}
