package apsp

import (
	"bytes"
	"fmt"
	"slices"
)

// Store is the abstraction every layer above this package programs
// against: an L-capped geodesic distance store over a fixed vertex set.
// Entry (i, j), i != j, is the exact distance d(i, j) when d(i, j) <= L
// and the sentinel Far() = L+1 otherwise. The diagonal is implicit
// (distance 0) and never stored.
//
// Two implementations exist: CompactMatrix (uint8 cells, the default —
// a capped distance never exceeds L+1, so one byte suffices whenever
// L <= MaxCompactL) and Matrix (int32 cells, the original packed
// layout, needed only for thresholds beyond MaxCompactL).
type Store interface {
	// N returns the number of vertices.
	N() int
	// L returns the distance threshold the store is capped at.
	L() int
	// Far returns the sentinel L+1 stored for pairs whose geodesic
	// distance exceeds L (including unreachable pairs).
	Far() int
	// Get returns the capped distance for the unordered pair {i, j},
	// i != j.
	Get(i, j int) int
	// Set stores the capped distance d for the unordered pair {i, j}.
	// Values above Far() are clamped to Far(); d < 1 panics.
	Set(i, j, d int)
	// EachPair calls fn for every unordered pair i < j in row-major
	// order with the stored capped distance.
	EachPair(fn func(i, j, d int))
	// Clone returns an independent deep copy with the same backing:
	// mutating the clone never affects the original, which is what lets
	// the serving layer hand one cached read-only store to many
	// anonymization runs, each mutating its own copy.
	Clone() Store
}

// Kind selects a Store implementation. The zero value is the compact
// uint8 backing, which is the package default everywhere.
type Kind int

const (
	// KindCompact stores one byte per pair: 4x smaller than the packed
	// int32 layout and cache-friendlier on every scan. Valid for
	// L <= MaxCompactL, which covers every threshold the privacy model
	// uses in practice.
	KindCompact Kind = iota
	// KindPacked is the original int32 layout; it has no threshold
	// ceiling and exists as the fallback for L > MaxCompactL and as the
	// cross-validation twin for the compact store.
	KindPacked
	// KindMapped is the read-only MappedStore view over a persisted
	// snapshot file. It is a hydration/request alias, not a buildable
	// backing: NewStore panics on it, and EffectiveKind folds it to the
	// heap kind its payload decodes into, so cache keys and build paths
	// treat a mapped store and its heap twin as the same artifact.
	KindMapped
)

// String names the kind as accepted by ParseKind.
func (k Kind) String() string {
	switch k {
	case KindCompact:
		return "compact"
	case KindPacked:
		return "packed"
	case KindMapped:
		return "mapped"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a case-sensitive store name ("compact", "packed";
// "" selects the compact default). CLI tools and the HTTP service share
// this mapping.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "compact", "uint8":
		return KindCompact, nil
	case "packed", "int32":
		return KindPacked, nil
	case "mapped", "mmap":
		return KindMapped, nil
	}
	return 0, fmt.Errorf("apsp: unknown store %q (want compact, packed, or mapped)", s)
}

// EffectiveKind returns the kind actually usable for threshold L: the
// requested kind, except that compact silently falls back to packed
// when L exceeds MaxCompactL, so callers resolving user input never
// trip the constructor bound. KindMapped folds the same way — a mapped
// snapshot's payload is compact whenever compact is legal for L — so
// requests for store=mapped resolve to the cache slot the snapshot
// hydrates.
func EffectiveKind(k Kind, L int) Kind {
	if (k == KindCompact || k == KindMapped) && L > MaxCompactL {
		return KindPacked
	}
	if k == KindMapped {
		return KindCompact
	}
	return k
}

// NewStore returns an all-Far store for n vertices and threshold L with
// the given backing. It panics on invalid dimensions and on
// KindCompact with L > MaxCompactL; use EffectiveKind to resolve
// untrusted thresholds first.
func NewStore(n, L int, k Kind) Store {
	switch k {
	case KindPacked:
		return NewMatrix(n, L)
	case KindCompact:
		return NewCompactMatrix(n, L)
	case KindMapped:
		panic("apsp: mapped stores are opened from snapshot files (OpenMappedStore), not built")
	}
	panic(fmt.Sprintf("apsp: unknown store kind %d", int(k)))
}

// newStoreAuto builds the engine-default store: the requested kind,
// degraded to packed when the compact cells cannot hold L+1.
func newStoreAuto(n, L int, k Kind) Store {
	return NewStore(n, L, EffectiveKind(k, L))
}

// KindOf reports the backing of a store, defaulting to KindCompact for
// foreign implementations. A mapped store reports its payload kind
// (what Clone decodes into), not KindMapped, so serialization and
// cache-key logic built on KindOf keeps treating it as its heap twin.
func KindOf(s Store) Kind {
	switch t := s.(type) {
	case *Matrix:
		return KindPacked
	case *MappedStore:
		return t.Kind()
	}
	return KindCompact
}

// Within reports whether the pair {i, j} is at geodesic distance <= L.
func Within(s Store, i, j int) bool { return s.Get(i, j) <= s.L() }

// Clone returns a deep copy of s with the same backing.
func Clone(s Store) Store { return s.Clone() }

// Copy overwrites dst with the contents of src, which must have the
// same dimensions; the backings may differ.
func Copy(dst, src Store) {
	if dst.N() != src.N() || dst.L() != src.L() {
		panic("apsp: Copy dimension mismatch")
	}
	if d, ok := dst.(*Matrix); ok {
		if s, ok := src.(*Matrix); ok {
			d.CopyFrom(s)
			return
		}
	}
	if d, ok := dst.(*CompactMatrix); ok {
		if s, ok := src.(*CompactMatrix); ok {
			d.CopyFrom(s)
			return
		}
	}
	src.EachPair(func(i, j, d int) { dst.Set(i, j, d) })
}

// Equal reports whether two stores describe identical capped-distance
// matrices: same vertex count, same threshold, same entries. The
// backing kinds need not match — a compact store equals its packed
// twin, which is what the cross-store validation tests assert.
// Same-backing comparisons run as flat slice compares; mixed backings
// fall back to a pairwise walk that stops at the first mismatch.
func Equal(a, b Store) bool {
	if a.N() != b.N() || a.L() != b.L() {
		return false
	}
	if x, ok := a.(*Matrix); ok {
		if y, ok := b.(*Matrix); ok {
			return slices.Equal(x.data, y.data)
		}
	}
	if x, ok := a.(*CompactMatrix); ok {
		if y, ok := b.(*CompactMatrix); ok {
			return bytes.Equal(x.data, y.data)
		}
	}
	n := a.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if a.Get(i, j) != b.Get(i, j) {
				return false
			}
		}
	}
	return true
}

// CountWithin returns the number of unordered pairs at distance <= L.
func CountWithin(s Store) int {
	count := 0
	l := s.L()
	s.EachPair(func(_, _, d int) {
		if d <= l {
			count++
		}
	})
	return count
}

// Histogram returns counts of stored distances: hist[d] for d in
// [1, L] and hist[L+1] aggregating Far pairs. Index 0 is unused.
func Histogram(s Store) []int {
	hist := make([]int, s.L()+2)
	s.EachPair(func(_, _, d int) { hist[d]++ })
	return hist
}
