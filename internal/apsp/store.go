package apsp

import (
	"bytes"
	"fmt"
	"slices"
)

// Store is the read view every layer above this package programs
// against: an L-capped geodesic distance store over a fixed vertex set.
// Entry (i, j), i != j, is the exact distance d(i, j) when d(i, j) <= L
// and the sentinel Far() = L+1 otherwise. The diagonal is implicit
// (distance 0) and never stored.
//
// Four backings implement it: CompactMatrix (uint8 cells, the default —
// a capped distance never exceeds L+1, so one byte suffices whenever
// L <= MaxCompactL), Matrix (int32 cells, the original packed layout,
// needed only for thresholds beyond MaxCompactL), MappedStore (a
// read-only memory-mapped view of a persisted snapshot), and PagedStore
// (a read-only window over a snapshot file through a bounded page
// cache, for triangles larger than RAM). Mutation is a separate
// contract: see MutableStore and Overlay.
type Store interface {
	// N returns the number of vertices.
	N() int
	// L returns the distance threshold the store is capped at.
	L() int
	// Far returns the sentinel L+1 stored for pairs whose geodesic
	// distance exceeds L (including unreachable pairs).
	Far() int
	// Get returns the capped distance for the unordered pair {i, j},
	// i != j.
	Get(i, j int) int
	// EachPair calls fn for every unordered pair i < j in row-major
	// order with the stored capped distance.
	EachPair(fn func(i, j, d int))
	// Clone returns an independent deep, heap-resident copy: mutating
	// the clone never affects the original. File-backed stores (mapped,
	// paged) materialize the full triangle; prefer NewOverlay when the
	// goal is a mutable view rather than an independent heap copy.
	Clone() Store
}

// MutableStore is the write view: everything a Store offers plus cell
// writes. The heap backings (CompactMatrix, Matrix) and the sparse
// Overlay implement it; the file-backed read views (MappedStore,
// PagedStore) deliberately do not — wrapping one in an Overlay is the
// only mutation path, which is what keeps writable runs from ever
// needing the full triangle in heap.
type MutableStore interface {
	Store
	// Set stores the capped distance d for the unordered pair {i, j}.
	// Values above Far() are clamped to Far(); d < 1 panics.
	Set(i, j, d int)
}

// Kind selects a Store implementation. The zero value is the compact
// uint8 backing, which is the package default everywhere.
type Kind int

const (
	// KindCompact stores one byte per pair: 4x smaller than the packed
	// int32 layout and cache-friendlier on every scan. Valid for
	// L <= MaxCompactL, which covers every threshold the privacy model
	// uses in practice.
	KindCompact Kind = iota
	// KindPacked is the original int32 layout; it has no threshold
	// ceiling and exists as the fallback for L > MaxCompactL and as the
	// cross-validation twin for the compact store.
	KindPacked
	// KindMapped is the read-only MappedStore view over a persisted
	// snapshot file. It is a hydration/request alias, not a buildable
	// backing: NewStore panics on it, and EffectiveKind folds it to the
	// heap kind its payload decodes into, so cache keys and build paths
	// treat a mapped store and its heap twin as the same artifact.
	KindMapped
	// KindPaged is the read-only PagedStore view: a snapshot file
	// windowed through a bounded LRU page cache. Like KindMapped it is a
	// hydration/request alias — NewStore panics on it and EffectiveKind
	// folds it to the payload's heap kind — but unlike mmap its resident
	// memory is explicitly capped, so it serves triangles larger than
	// RAM.
	KindPaged
)

// String names the kind as accepted by ParseKind.
func (k Kind) String() string {
	switch k {
	case KindCompact:
		return "compact"
	case KindPacked:
		return "packed"
	case KindMapped:
		return "mapped"
	case KindPaged:
		return "paged"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind resolves a case-sensitive store name ("compact", "packed";
// "" selects the compact default). CLI tools and the HTTP service share
// this mapping.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "compact", "uint8":
		return KindCompact, nil
	case "packed", "int32":
		return KindPacked, nil
	case "mapped", "mmap":
		return KindMapped, nil
	case "paged":
		return KindPaged, nil
	}
	return 0, fmt.Errorf("apsp: unknown store %q (want compact, packed, mapped, or paged)", s)
}

// EffectiveKind returns the kind actually usable for threshold L: the
// requested kind, except that compact silently falls back to packed
// when L exceeds MaxCompactL, so callers resolving user input never
// trip the constructor bound. KindMapped and KindPaged fold the same
// way — a snapshot's payload is compact whenever compact is legal for
// L — so requests for store=mapped or store=paged resolve to the cache
// slot the snapshot hydrates.
func EffectiveKind(k Kind, L int) Kind {
	if (k == KindCompact || k == KindMapped || k == KindPaged) && L > MaxCompactL {
		return KindPacked
	}
	if k == KindMapped || k == KindPaged {
		return KindCompact
	}
	return k
}

// NewStore returns an all-Far store for n vertices and threshold L with
// the given backing. It panics on invalid dimensions and on
// KindCompact with L > MaxCompactL; use EffectiveKind to resolve
// untrusted thresholds first.
func NewStore(n, L int, k Kind) MutableStore {
	switch k {
	case KindPacked:
		return NewMatrix(n, L)
	case KindCompact:
		return NewCompactMatrix(n, L)
	case KindMapped:
		panic("apsp: mapped stores are opened from snapshot files (OpenMappedStore), not built")
	case KindPaged:
		panic("apsp: paged stores are opened from snapshot files (OpenPagedStore), not built")
	}
	panic(fmt.Sprintf("apsp: unknown store kind %d", int(k)))
}

// newStoreAuto builds the engine-default store: the requested kind,
// degraded to packed when the compact cells cannot hold L+1.
func newStoreAuto(n, L int, k Kind) MutableStore {
	return NewStore(n, L, EffectiveKind(k, L))
}

// KindOf reports the backing of a store, defaulting to KindCompact for
// foreign implementations. A mapped or paged store reports its payload
// kind (what Clone decodes into), not KindMapped/KindPaged, and an
// overlay reports its base's kind, so serialization and cache-key
// logic built on KindOf keeps treating every view as its heap twin.
func KindOf(s Store) Kind {
	switch t := s.(type) {
	case *Matrix:
		return KindPacked
	case *MappedStore:
		return t.Kind()
	case *PagedStore:
		return t.Kind()
	case *Overlay:
		return KindOf(t.Base())
	}
	return KindCompact
}

// BackingName names the concrete representation of a store for
// operator-facing accounting ("compact", "packed", "mapped", "paged",
// "overlay") — unlike KindOf it does NOT fold views to their heap
// twins, because resident-bytes gauges exist precisely to distinguish
// a mapped or paged view from a heap copy of the same snapshot.
func BackingName(s Store) string {
	switch s.(type) {
	case *Matrix:
		return "packed"
	case *CompactMatrix:
		return "compact"
	case *MappedStore:
		return "mapped"
	case *PagedStore:
		return "paged"
	case *Overlay:
		return "overlay"
	}
	return "foreign"
}

// Footprint reports how many bytes a store pins in heap and how many
// live in its backing file. Heap backings are all heap and no file; a
// mapped store is all file (the mapping is page-cache memory the OS
// can reclaim, not Go heap); a paged store pins exactly its resident
// pages; an overlay adds its dirty set on top of its base. Foreign
// implementations report zero, not an estimate.
func Footprint(s Store) (heapBytes, fileBytes int64) {
	switch t := s.(type) {
	case *CompactMatrix:
		return int64(len(t.data)), 0
	case *Matrix:
		return 4 * int64(len(t.data)), 0
	case *MappedStore:
		return 0, int64(len(t.raw))
	case *PagedStore:
		return t.ResidentBytes(), t.FileBytes()
	case *Overlay:
		h, f := Footprint(t.Base())
		return h + t.dirtyBytes(), f
	}
	return 0, 0
}

// Within reports whether the pair {i, j} is at geodesic distance <= L.
func Within(s Store, i, j int) bool { return s.Get(i, j) <= s.L() }

// Clone returns a deep copy of s with the same backing.
func Clone(s Store) Store { return s.Clone() }

// Copy overwrites dst with the contents of src, which must have the
// same dimensions; the backings may differ.
func Copy(dst MutableStore, src Store) {
	if dst.N() != src.N() || dst.L() != src.L() {
		panic("apsp: Copy dimension mismatch")
	}
	if d, ok := dst.(*Matrix); ok {
		if s, ok := src.(*Matrix); ok {
			d.CopyFrom(s)
			return
		}
	}
	if d, ok := dst.(*CompactMatrix); ok {
		if s, ok := src.(*CompactMatrix); ok {
			d.CopyFrom(s)
			return
		}
	}
	src.EachPair(func(i, j, d int) { dst.Set(i, j, d) })
}

// Equal reports whether two stores describe identical capped-distance
// matrices: same vertex count, same threshold, same entries. The
// backing kinds need not match — a compact store equals its packed
// twin, which is what the cross-store validation tests assert.
// Same-backing comparisons run as flat slice compares; mixed backings
// fall back to a pairwise walk that stops at the first mismatch.
func Equal(a, b Store) bool {
	if a.N() != b.N() || a.L() != b.L() {
		return false
	}
	if x, ok := a.(*Matrix); ok {
		if y, ok := b.(*Matrix); ok {
			return slices.Equal(x.data, y.data)
		}
	}
	if x, ok := a.(*CompactMatrix); ok {
		if y, ok := b.(*CompactMatrix); ok {
			return bytes.Equal(x.data, y.data)
		}
	}
	n := a.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if a.Get(i, j) != b.Get(i, j) {
				return false
			}
		}
	}
	return true
}

// CountWithin returns the number of unordered pairs at distance <= L.
func CountWithin(s Store) int {
	count := 0
	l := s.L()
	s.EachPair(func(_, _, d int) {
		if d <= l {
			count++
		}
	})
	return count
}

// Histogram returns counts of stored distances: hist[d] for d in
// [1, L] and hist[L+1] aggregating Far pairs. Index 0 is unused.
func Histogram(s Store) []int {
	hist := make([]int, s.L()+2)
	s.EachPair(func(_, _, d int) { hist[d]++ })
	return hist
}
