//go:build !unix

package apsp

import "os"

// mapFile on platforms without mmap support reads the whole file into
// memory. MappedStore semantics are unchanged — the store is still a
// validated read-only view — only the zero-copy paging win is lost.
func mapFile(path string) ([]byte, func() error, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return raw, nil, nil
}
