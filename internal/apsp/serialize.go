package apsp

import (
	"encoding/binary"
	"fmt"
)

// Binary snapshot format for distance stores, shared by both backings.
// A store is the expensive artifact of the serving workload — an
// L-capped APSP build — so the registry persists built stores and
// reloads them on boot, and this file defines the wire form:
//
//	offset  size  field
//	0       4     magic "LOPS"
//	4       1     format version (currently 1)
//	5       1     kind (0 = compact/uint8, 1 = packed/int32)
//	6       8     n, uint64 little-endian
//	14      8     L, uint64 little-endian
//	22      -     payload: n*(n-1)/2 cells in row-major pair order
//	              (compact: one byte per cell; packed: int32 LE)
//
// Decoding is strict: a wrong magic, unknown version or kind, a
// truncated or oversized payload, or any cell outside [1, L+1] is an
// error — never a panic and never a silently misloaded store. The
// sizes decoded from the header are validated against the actual
// payload length BEFORE any allocation, so a corrupt header cannot
// force a huge allocation.

const (
	storeMagic   = "LOPS"
	storeVersion = 1
	// storeHeaderLen is magic + version + kind + n + L.
	storeHeaderLen = 4 + 1 + 1 + 8 + 8
)

// cellCount returns n*(n-1)/2 without intermediate overflow for any n
// that can head a credible snapshot.
func cellCount(n uint64) uint64 {
	if n%2 == 0 {
		return n / 2 * (n - 1)
	}
	return (n - 1) / 2 * n
}

// appendStoreHeader writes the common header for a store of the given
// kind and dimensions.
func appendStoreHeader(buf []byte, k Kind, n, l int) []byte {
	buf = append(buf, storeMagic...)
	buf = append(buf, storeVersion, byte(k))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l))
	return buf
}

// decodeStoreHeader validates the fixed header and returns the kind and
// dimensions. n is bounded so the caller's payload-length check cannot
// overflow.
func decodeStoreHeader(data []byte) (k Kind, n, l int, err error) {
	if len(data) < storeHeaderLen {
		return 0, 0, 0, fmt.Errorf("apsp: store snapshot truncated: %d bytes < %d-byte header", len(data), storeHeaderLen)
	}
	if string(data[:4]) != storeMagic {
		return 0, 0, 0, fmt.Errorf("apsp: store snapshot has bad magic %q", data[:4])
	}
	if data[4] != storeVersion {
		return 0, 0, 0, fmt.Errorf("apsp: unsupported store snapshot version %d (want %d)", data[4], storeVersion)
	}
	switch Kind(data[5]) {
	case KindCompact, KindPacked:
		k = Kind(data[5])
	default:
		return 0, 0, 0, fmt.Errorf("apsp: unknown store kind %d in snapshot", data[5])
	}
	un := binary.LittleEndian.Uint64(data[6:14])
	ul := binary.LittleEndian.Uint64(data[14:22])
	const maxDim = 1 << 31
	if un > maxDim || ul > maxDim {
		return 0, 0, 0, fmt.Errorf("apsp: store snapshot dimensions n=%d L=%d out of range", un, ul)
	}
	return k, int(un), int(ul), nil
}

// MarshalBinary encodes the compact store in the versioned snapshot
// format. It implements encoding.BinaryMarshaler.
func (m *CompactMatrix) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, storeHeaderLen+len(m.data))
	buf = appendStoreHeader(buf, KindCompact, m.n, m.l)
	return append(buf, m.data...), nil
}

// UnmarshalBinary overwrites m with a compact-store snapshot. It
// implements encoding.BinaryUnmarshaler and rejects snapshots of the
// packed kind; use UnmarshalStore when the kind is not known up front.
func (m *CompactMatrix) UnmarshalBinary(data []byte) error {
	k, n, l, err := decodeStoreHeader(data)
	if err != nil {
		return err
	}
	if k != KindCompact {
		return fmt.Errorf("apsp: snapshot holds a %v store, not compact", k)
	}
	if l > MaxCompactL {
		return fmt.Errorf("apsp: compact snapshot claims L=%d > MaxCompactL=%d", l, MaxCompactL)
	}
	payload := data[storeHeaderLen:]
	if want := cellCount(uint64(n)); uint64(len(payload)) != want {
		return fmt.Errorf("apsp: compact snapshot payload is %d bytes, want %d for n=%d", len(payload), want, n)
	}
	far := uint8(l + 1)
	for i, c := range payload {
		if c < 1 || c > far {
			return fmt.Errorf("apsp: compact snapshot cell %d holds %d outside [1, %d]", i, c, far)
		}
	}
	m.n, m.l = n, l
	m.data = append([]uint8(nil), payload...)
	return nil
}

// MarshalBinary encodes the packed store in the versioned snapshot
// format. It implements encoding.BinaryMarshaler.
func (m *Matrix) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, storeHeaderLen+4*len(m.data))
	buf = appendStoreHeader(buf, KindPacked, m.n, m.l)
	for _, c := range m.data {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	return buf, nil
}

// UnmarshalBinary overwrites m with a packed-store snapshot. It
// implements encoding.BinaryUnmarshaler and rejects snapshots of the
// compact kind; use UnmarshalStore when the kind is not known up front.
func (m *Matrix) UnmarshalBinary(data []byte) error {
	k, n, l, err := decodeStoreHeader(data)
	if err != nil {
		return err
	}
	if k != KindPacked {
		return fmt.Errorf("apsp: snapshot holds a %v store, not packed", k)
	}
	payload := data[storeHeaderLen:]
	cells := cellCount(uint64(n))
	if uint64(len(payload)) != 4*cells {
		return fmt.Errorf("apsp: packed snapshot payload is %d bytes, want %d for n=%d", len(payload), 4*cells, n)
	}
	far := uint32(l + 1)
	out := make([]int32, cells)
	for i := range out {
		c := binary.LittleEndian.Uint32(payload[4*i:])
		if c < 1 || c > far {
			return fmt.Errorf("apsp: packed snapshot cell %d holds %d outside [1, %d]", i, c, far)
		}
		out[i] = int32(c)
	}
	m.n, m.l = n, l
	m.data = out
	return nil
}

// MarshalStore encodes any Store in the versioned snapshot format.
// Foreign Store implementations are copied into the equivalent built-in
// backing first.
func MarshalStore(s Store) ([]byte, error) {
	switch t := s.(type) {
	case *CompactMatrix:
		return t.MarshalBinary()
	case *Matrix:
		return t.MarshalBinary()
	case *MappedStore:
		// The mapping already holds the snapshot bytes; copy them out so
		// the result outlives a Close of the store.
		return append([]byte(nil), t.raw...), nil
	}
	c := NewStore(s.N(), s.L(), EffectiveKind(KindOf(s), s.L()))
	Copy(c, s)
	return MarshalStore(c)
}

// UnmarshalStore decodes a snapshot produced by MarshalStore (or either
// MarshalBinary), selecting the backing recorded in the header. Corrupt
// or truncated input returns an error, never a panic.
func UnmarshalStore(data []byte) (Store, error) {
	k, _, _, err := decodeStoreHeader(data)
	if err != nil {
		return nil, err
	}
	switch k {
	case KindCompact:
		m := &CompactMatrix{}
		if err := m.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return m, nil
	default:
		m := &Matrix{}
		if err := m.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return m, nil
	}
}
