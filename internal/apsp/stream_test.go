package apsp

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestStreamBuildMatchesMarshal: the streaming builder's output is
// byte-for-byte the snapshot MarshalStore produces from a heap build —
// for both payload kinds, at every worker count, so the registry can
// switch lifecycles without any reader noticing.
func TestStreamBuildMatchesMarshal(t *testing.T) {
	graphs := []struct {
		name string
		n    int
		p    float64
		seed int64
	}{
		{"sparse", 40, 0.08, 1},
		{"dense", 25, 0.4, 2},
		{"tiny", 3, 0.5, 3},
		{"singleton", 1, 0, 4},
		{"empty", 0, 0, 5},
	}
	for _, gc := range graphs {
		g := randomGraph(gc.n, gc.p, gc.seed)
		for _, kind := range []Kind{KindCompact, KindPacked} {
			want, err := MarshalStore(Build(g, 3, BuildOptions{Kind: kind}))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{0, 1, 3} {
				var buf bytes.Buffer
				if err := StreamBuild(&buf, g, 3, BuildOptions{Kind: kind, Workers: workers}); err != nil {
					t.Fatalf("%s/%v/w=%d: %v", gc.name, kind, workers, err)
				}
				if !bytes.Equal(buf.Bytes(), want) {
					t.Fatalf("%s/%v/w=%d: streamed snapshot differs from marshalled build", gc.name, kind, workers)
				}
			}
		}
	}
}

// TestStreamBuildFoldsKinds: mapped and paged requests stream the
// payload of their heap twin, and compact degrades to packed past
// MaxCompactL — the same folds Build applies.
func TestStreamBuildFoldsKinds(t *testing.T) {
	g := randomGraph(20, 0.2, 9)
	want, err := MarshalStore(Build(g, 2, BuildOptions{Kind: KindCompact}))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{KindMapped, KindPaged} {
		var buf bytes.Buffer
		if err := StreamBuild(&buf, g, 2, BuildOptions{Kind: kind}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("%v: streamed snapshot differs from compact twin", kind)
		}
	}
	var buf bytes.Buffer
	if err := StreamBuild(&buf, g, MaxCompactL+1, BuildOptions{Kind: KindCompact}); err != nil {
		t.Fatal(err)
	}
	k, _, _, err := decodeStoreHeader(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if k != KindPacked {
		t.Fatalf("L>MaxCompactL streamed kind %v, want packed", k)
	}
}

// TestBuildToFileRoundTrip: a file built by the streaming path decodes,
// maps, and pages back into stores equal to a heap build.
func TestBuildToFileRoundTrip(t *testing.T) {
	g := randomGraph(35, 0.15, 6)
	want := Build(g, 3, BuildOptions{})
	path := filepath.Join(t.TempDir(), "s.store")
	if err := BuildToFile(path, g, 3, BuildOptions{Workers: 2}); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalStore(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(decoded, want) {
		t.Fatal("decoded streamed file differs from heap build")
	}

	mapped, err := OpenMappedStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if !Equal(mapped, want) {
		t.Fatal("mapped streamed file differs from heap build")
	}

	paged, err := OpenPagedStore(path, NewPageCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()
	if !Equal(paged, want) {
		t.Fatal("paged streamed file differs from heap build")
	}
}

// TestStreamBlocks: the block partition covers [0, n) exactly once, in
// order, with every block non-empty.
func TestStreamBlocks(t *testing.T) {
	for _, n := range []int{1, 2, 17, 1000, 5000} {
		blocks := streamBlocks(n)
		next := 0
		for _, b := range blocks {
			if b[0] != next || b[1] <= b[0] {
				t.Fatalf("n=%d: bad block %v after %d", n, b, next)
			}
			next = b[1]
		}
		if next != n {
			t.Fatalf("n=%d: blocks end at %d", n, next)
		}
	}
}
