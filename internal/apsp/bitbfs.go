package apsp

import (
	"math/bits"

	"repro/internal/graph"
)

// BitBFS computes the L-capped distance matrix with a bit-parallel
// breadth-first search: sources are processed in batches of 64, and each
// vertex carries one machine word whose bit i records whether source
// base+i has reached it. One level expansion then costs O(m) word
// operations for 64 simultaneous BFS trees, for a total of
// O(n/64 * m * L) word operations — a factor-64 improvement over
// BoundedAPSP's one-BFS-per-source on graphs dense enough for the word
// packing to pay for itself.
//
// BitBFS is an engine-level ablation subject (see BenchmarkAblationEngine):
// it returns exactly the same matrix as BoundedAPSP, LPrunedFW, and
// PointerFW, which the cross-validation tests assert.
func BitBFS(g *graph.Graph, L int) MutableStore { return BitBFSKind(g, L, KindCompact) }

// BitBFSKind runs the bit-parallel engine into a store of the given
// kind.
func BitBFSKind(g *graph.Graph, L int, k Kind) MutableStore {
	n := g.N()
	m := newStoreAuto(n, L, k)
	if n == 0 || L == 0 {
		return m
	}
	c := g.Frozen()
	seen := make([]uint64, n)
	frontier := make([]uint64, n)
	next := make([]uint64, n)

	for base := 0; base < n; base += 64 {
		k := 64
		if n-base < k {
			k = n - base
		}
		for v := range seen {
			seen[v] = 0
			frontier[v] = 0
		}
		for i := 0; i < k; i++ {
			seen[base+i] = 1 << uint(i)
			frontier[base+i] = 1 << uint(i)
		}
		for d := 1; d <= L; d++ {
			for v := range next {
				next[v] = 0
			}
			// Expand every vertex with an active frontier word into its
			// neighbours; bits already seen at the neighbour are masked
			// out so each (source, vertex) pair is discovered exactly
			// once, at its true BFS level.
			for v := 0; v < n; v++ {
				fv := frontier[v]
				if fv == 0 {
					continue
				}
				// CSR window scan: contiguous int32 reads, no per-vertex
				// allocation (the map-walking Neighbors helper allocated
				// and sorted a slice per visited vertex here).
				for _, w := range c.Neighbors(v) {
					if nb := fv &^ seen[w]; nb != 0 {
						next[w] |= nb
					}
				}
			}
			any := false
			for v := 0; v < n; v++ {
				nb := next[v] &^ seen[v]
				next[v] = nb
				if nb == 0 {
					continue
				}
				seen[v] |= nb
				any = true
				for word := nb; word != 0; word &= word - 1 {
					s := base + bits.TrailingZeros64(word)
					if s != v {
						m.Set(s, v, d)
					}
				}
			}
			if !any {
				break
			}
			frontier, next = next, frontier
		}
	}
	return m
}
