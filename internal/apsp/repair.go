// Incremental store repair: replay a graph diff onto an existing
// distance store instead of rebuilding APSP from scratch.
//
// RepairStore is the engine behind PATCH /v1/graphs/{id} and the
// continuous-audit job: a k-edge diff touches O(balls around the
// edited edges) of the triangle, so repairing a warm parent store
// costs orders of magnitude less than the O(n·m) rebuild — and the
// result is cell-for-cell identical to Build on the child graph (the
// backings equivalence tests assert byte identity of the serialized
// stores).
//
// The algorithm runs in two exact phases over a copy-on-write Overlay:
//
//   - Insertions first, store-only: a new shortest path created by an
//     added edge {u, v} must cross it, so the improved distance for a
//     pair (x, y) is d(x,u) + 1 + d(v,y) (or the mirror). Bucketing
//     vertices by their capped distance to u and to v turns the naive
//     O(n²) scan into an enumeration of only the bucket pairs whose
//     sum fits under L — for a local edit, far fewer pairs than cells.
//   - Removals second, batched: a pair whose distance grows lost its
//     last shortest path through some removed edge {u, v}, which
//     forces d(x,v) == d(x,u)+1 with d(x,u) <= L-1 on one side (and
//     the mirror on the other). Those "crossing" vertex sets are
//     computed per removed edge against the store after insertions;
//     the smaller side of each edge is re-rowed by bounded BFS on the
//     child graph, which yields the exact final row regardless of how
//     many removed edges interact.
//
// A cost heuristic bails out (returning ok=false) when the diff or
// its projected blast radius is too large for repair to win; the
// caller falls back to Build/BuildToFile. Compact() thresholds keep
// long repair chains from accumulating unbounded overlay indirection.
package apsp

import "repro/internal/graph"

// RepairOptions tunes the repair heuristics. The zero value selects
// the defaults; fields are fractions of n (rows, edits) or of the
// triangle cell count (dirty cells).
type RepairOptions struct {
	// MaxEditFraction bails when diff.Size() > MaxEditFraction * n —
	// a diff rewriting a sizable share of the graph repairs slower
	// than a rebuild. Zero selects 1/16. At least minEditFloor edits
	// are always allowed: on graphs small enough that the fraction
	// rounds toward zero, repair and rebuild are both trivial, so
	// bailing would only cost correctness-path coverage.
	MaxEditFraction float64
	// MaxRowFraction bails when the removal phase would re-row more
	// than MaxRowFraction * n sources (at least minRowFloor are always
	// allowed), or the insertion phase would examine more than
	// MaxRowFraction * n² candidate pairs (at least minPairFloor).
	// Zero selects 1/4.
	MaxRowFraction float64
	// CompactDepth compacts the result when the overlay chain under it
	// is deeper than this many layers. Zero selects 4.
	CompactDepth int
	// CompactDirtyFraction compacts when overridden cells exceed this
	// fraction of the triangle. Zero selects 1/8.
	CompactDirtyFraction float64
	// Scratch, when non-nil, amortizes the O(n) work buffers across
	// calls (the continuous-audit loop repairs once per step).
	Scratch *Scratch
}

// Absolute floors under the fraction-of-n heuristics: below these the
// work is negligible at any n, so the fractions only start to bite on
// graphs where a bail genuinely saves time.
const (
	minEditFloor = 8
	minRowFloor  = 8
	minPairFloor = 4096
)

func (o RepairOptions) normalized() RepairOptions {
	if o.MaxEditFraction <= 0 {
		o.MaxEditFraction = 1.0 / 16
	}
	if o.MaxRowFraction <= 0 {
		o.MaxRowFraction = 1.0 / 4
	}
	if o.CompactDepth <= 0 {
		o.CompactDepth = 4
	}
	if o.CompactDirtyFraction <= 0 {
		o.CompactDirtyFraction = 1.0 / 8
	}
	return o
}

// RepairStore replays diff onto base, returning a store identical to
// Build(child, base.L()) without rebuilding APSP. base must be the
// exact L-capped store of the PARENT graph; child must be the CHILD
// graph, i.e. the parent with diff already applied (the registry keeps
// both, so no graph is cloned here). The returned store is usually an
// Overlay sharing base — base must stay alive and read-only — but may
// be a compacted heap store when the chain-depth or dirty-fraction
// thresholds trip.
//
// ok=false means the heuristics judged the diff too large for repair
// to beat a rebuild (or the inputs are dimensionally inconsistent);
// nothing is returned and the caller should Build/BuildToFile instead.
func RepairStore(base Store, child *graph.Graph, diff graph.Diff, opts RepairOptions) (Store, bool) {
	n := base.N()
	L := base.L()
	if child == nil || child.N() != n || diff.N != n || L < 1 {
		return nil, false
	}
	opts = opts.normalized()
	maxEdits := int(opts.MaxEditFraction * float64(n))
	if maxEdits < minEditFloor {
		maxEdits = minEditFloor
	}
	if diff.Size() > maxEdits {
		return nil, false
	}
	sc := opts.Scratch
	if sc == nil {
		sc = NewScratch(n)
	}

	o := NewOverlay(base)
	// Phase 1 — insertions, in diff order. Each replay reads the
	// distances the previous one wrote, so the overlay stays exact for
	// "parent plus the adds replayed so far".
	budget := int64(opts.MaxRowFraction * float64(n) * float64(n))
	if budget < minPairFloor {
		budget = minPairFloor
	}
	for _, e := range diff.Adds {
		if !repairInsertion(o, e.U, e.V, sc, budget) {
			return nil, false
		}
	}

	// Phase 2 — removals, batched. Collect every row that can change:
	// for each removed edge, the crossing condition against the
	// post-insertion store, keeping the smaller endpoint side (every
	// changed pair has one endpoint on each side, so one side's rows
	// cover all changed cells). Then re-row the union by bounded BFS on
	// the child graph — exact final values even when removed edges'
	// neighborhoods overlap.
	if len(diff.Removes) > 0 {
		rows := removalRows(o, diff.Removes, sc)
		maxRows := int(opts.MaxRowFraction * float64(n))
		if maxRows < minRowFloor {
			maxRows = minRowFloor
		}
		if len(rows) > maxRows {
			return nil, false
		}
		rerow(o, child, rows)
	}

	cells := int64(n) * int64(n-1) / 2
	if o.Depth() > opts.CompactDepth ||
		(cells > 0 && float64(o.Dirty()) > opts.CompactDirtyFraction*float64(cells)) {
		return o.Compact(), true
	}
	return o, true
}

// repairInsertion replays one edge insertion {u, v} onto o, exactly as
// ApplyInsertion would but in output-sensitive time: vertices are
// bucketed by capped distance to u and to v, and only bucket pairs
// (a, b) with a + 1 + b <= L are enumerated — those are the only pairs
// an x->u->v->y (or mirror) path can improve. It reports false when
// the enumeration would exceed budget pair checks, signaling the
// caller to fall back to a rebuild.
func repairInsertion(o *Overlay, u, v int, sc *Scratch, budget int64) bool {
	n, L := o.N(), o.L()
	du := sc.du[:n]
	dv := sc.dv[:n]
	for x := 0; x < n; x++ {
		switch x {
		case u:
			du[x] = 0
			dv[x] = o.Get(x, v)
		case v:
			du[x] = o.Get(x, u)
			dv[x] = 0
		default:
			du[x] = o.Get(x, u)
			dv[x] = o.Get(x, v)
		}
	}
	// Buckets over distances 0..L-1: a leg of length L cannot be part
	// of a within-cap path that still crosses the new edge.
	uBuckets := make([][]int, L)
	vBuckets := make([][]int, L)
	for x := 0; x < n; x++ {
		if du[x] < L {
			uBuckets[du[x]] = append(uBuckets[du[x]], x)
		}
		if dv[x] < L {
			vBuckets[dv[x]] = append(vBuckets[dv[x]], x)
		}
	}
	var work int64
	for a := 0; a < L; a++ {
		for b := 0; a+1+b <= L && b < L; b++ {
			work += int64(len(uBuckets[a])) * int64(len(vBuckets[b]))
			if work > budget {
				return false
			}
			cand := a + 1 + b
			for _, x := range uBuckets[a] {
				for _, y := range vBuckets[b] {
					if x == y {
						continue
					}
					if cand < o.Get(x, y) {
						o.Set(x, y, cand)
					}
				}
			}
		}
	}
	return true
}

// removalRows returns the union of rows the removal batch can change,
// deduplicated. For each removed edge {u, v} it computes the two
// crossing sets against the current (post-insertion) store —
// S_u = {x : d(x,u) <= L-1 and d(x,v) == d(x,u)+1} and the mirror
// S_v — and keeps the smaller: a pair (x, y) whose distance grows had
// a shortest path crossing the edge, which places x in S_u and y in
// S_v (or vice versa), so one side's rows witness every changed cell.
func removalRows(o *Overlay, removes []graph.Edge, sc *Scratch) []int {
	n, L := o.N(), o.L()
	seen := sc.affected // reused bitmap; reset before return
	var rows []int
	var sU, sV []int
	for _, e := range removes {
		u, v := e.U, e.V
		sU, sV = sU[:0], sV[:0]
		for x := 0; x < n; x++ {
			du, dv := 0, 0
			if x != u {
				du = o.Get(x, u)
			}
			if x != v {
				dv = o.Get(x, v)
			}
			if du <= L-1 && dv == du+1 {
				sU = append(sU, x)
			}
			if dv <= L-1 && du == dv+1 {
				sV = append(sV, x)
			}
		}
		side := sU
		if len(sV) < len(sU) {
			side = sV
		}
		for _, x := range side {
			if !seen[x] {
				seen[x] = true
				rows = append(rows, x)
			}
		}
	}
	for _, x := range rows {
		seen[x] = false
	}
	return rows
}

// rerow recomputes each listed row exactly by bounded BFS on the child
// graph (via a frozen CSR snapshot — one freeze for the whole batch)
// and writes only the cells that differ, keeping the overlay sparse.
func rerow(o *Overlay, child *graph.Graph, rows []int) {
	if len(rows) == 0 {
		return
	}
	n, L, far := o.N(), o.L(), o.Far()
	csr := child.Frozen()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	for _, x := range rows {
		visited := csr.BoundedBFSInto(x, L, dist, queue)
		for y := 0; y < n; y++ {
			if y == x {
				continue
			}
			d := int(dist[y])
			if d < 0 {
				d = far
			}
			if d != o.Get(x, y) {
				o.Set(x, y, d)
			}
		}
		for _, v := range visited {
			dist[v] = -1
		}
		queue = visited[:0]
	}
}
