package apsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/graph"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestClassicFWOnFigure1(t *testing.T) {
	g := fixture.Figure1()
	want := fixture.Figure4aDistances()
	got := ClassicFW(g)
	for i := 0; i < 7; i++ {
		for j := 0; j < 7; j++ {
			if got[i][j] != want[i][j] {
				t.Errorf("d(%d,%d) = %d, want %d (paper Figure 4a)", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestClassicFWUnreachable(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	d := ClassicFW(g)
	if d[0][2] != -1 || d[2][3] != -1 {
		t.Fatalf("unreachable pairs: d(0,2)=%d d(2,3)=%d, want -1", d[0][2], d[2][3])
	}
	if d[0][0] != 0 {
		t.Fatalf("diagonal = %d, want 0", d[0][0])
	}
}

func TestEnginesAgreeOnFigure1(t *testing.T) {
	g := fixture.Figure1()
	for L := 1; L <= 4; L++ {
		ref := FromClassic(ClassicFW(g), L)
		for name, m := range map[string]Store{
			"BoundedAPSP": BoundedAPSP(g, L),
			"LPrunedFW":   LPrunedFW(g, L),
			"PointerFW":   PointerFW(g, L),
		} {
			if !Equal(m, ref) {
				t.Errorf("L=%d: %s disagrees with classic FW", L, name)
			}
		}
	}
}

func TestPropertyEnginesAgreeOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(16)
		p := 0.05 + rng.Float64()*0.3
		L := 1 + rng.Intn(4)
		g := randomGraph(n, p, seed)
		ref := FromClassic(ClassicFW(g), L)
		return Equal(BoundedAPSP(g, L), ref) &&
			Equal(LPrunedFW(g, L), ref) &&
			Equal(PointerFW(g, L), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedAPSPDisconnected(t *testing.T) {
	g := graph.New(5)
	g.AddEdge(0, 1)
	g.AddEdge(3, 4)
	m := BoundedAPSP(g, 2)
	if m.Get(0, 1) != 1 || m.Get(3, 4) != 1 {
		t.Fatal("edges not at distance 1")
	}
	if m.Get(0, 3) != m.Far() || m.Get(1, 4) != m.Far() {
		t.Fatal("cross-component pairs not Far")
	}
}

func TestLPrunedFWLeavesBeyondLFar(t *testing.T) {
	// Path 0-1-2-3-4: distances up to 4; with L=2 only <=2 are recorded.
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1)
	}
	m := LPrunedFW(g, 2)
	if m.Get(0, 1) != 1 || m.Get(0, 2) != 2 {
		t.Fatal("short distances wrong")
	}
	if m.Get(0, 3) != m.Far() || m.Get(0, 4) != m.Far() {
		t.Fatal("distances beyond L not Far")
	}
}

func TestEnginesL1IsAdjacency(t *testing.T) {
	g := randomGraph(12, 0.3, 5)
	for name, m := range map[string]Store{
		"BoundedAPSP": BoundedAPSP(g, 1),
		"LPrunedFW":   LPrunedFW(g, 1),
		"PointerFW":   PointerFW(g, 1),
	} {
		ok := true
		m.EachPair(func(i, j, d int) {
			if g.HasEdge(i, j) != (d == 1) {
				ok = false
			}
		})
		if !ok {
			t.Errorf("%s at L=1 is not the adjacency matrix", name)
		}
	}
}
