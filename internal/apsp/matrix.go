// Package apsp computes and maintains the L-capped all-pairs geodesic
// distance stores at the heart of L-opacity evaluation.
//
// The privacy model (paper Section 4) only ever asks whether the geodesic
// distance between two vertices is at most L, so every engine in this
// package stores distances capped at L+1: a store entry holds the exact
// distance when it is <= L, and the sentinel Far() = L+1 otherwise
// (covering both "longer than L" and "unreachable"). This is precisely the
// pruning insight behind the paper's Algorithms 2 and 3 — and it also
// means a capped entry never exceeds L+1, so the Store abstraction ships
// two interchangeable backings:
//
//   - CompactMatrix (KindCompact, the default): one uint8 per pair,
//     valid for L <= MaxCompactL. A quarter of the memory and cache
//     traffic of the int32 layout on every scan.
//   - Matrix (KindPacked): the original packed int32 layout, kept for
//     thresholds beyond MaxCompactL and as the cross-validation twin.
//
// All code above this package programs against the Store interface;
// NewStore, ParseKind, and EffectiveKind select the backing, and the
// package-level Equal/Clone/Copy/CountWithin/Histogram helpers work on
// any Store regardless of backing.
//
// Four engines produce the same store and are cross-validated in tests
// on both backings:
//
//   - BoundedAPSP: one depth-L-truncated BFS per source; the default,
//     asymptotically cheapest on the sparse graphs of the evaluation.
//     BoundedAPSPParallel stripes the sources over goroutines.
//   - LPrunedFW: the paper's Algorithm 2, an L-pruned Floyd-Warshall.
//   - PointerFW: the paper's Algorithm 3, a pointer-based variant that
//     rides linked lists of sub-L cells instead of scanning full rows.
//   - BitBFS: a bit-parallel BFS processing 64 sources per word.
//
// Each engine comes in two forms: Engine(g, L), which builds into the
// compact default, and EngineKind(g, L, kind), which selects the
// backing. Build dispatches on an Engine value for callers that take
// the choice from configuration. The package also provides the exact
// O(n^2) insertion delta and the affected-region removal recomputation
// used for incremental candidate evaluation by the anonymization
// heuristics; both operate on any Store.
package apsp

import "fmt"

// Matrix is the packed int32 Store implementation: an upper-triangular
// matrix of L-capped geodesic distances over a fixed vertex set. Entry
// (i, j), i != j, is the exact geodesic distance d(i, j) when
// d(i, j) <= L, and Far() = L+1 otherwise. The diagonal is implicit
// (distance 0) and not stored. Unless L exceeds MaxCompactL, prefer the
// 4x smaller CompactMatrix (the package default).
type Matrix struct {
	n    int
	l    int
	data []int32
}

// NewMatrix returns a matrix for n vertices and threshold L with every
// pair initialized to Far (no edges). It panics on invalid sizes.
func NewMatrix(n, L int) *Matrix {
	if n < 0 || L < 0 {
		panic(fmt.Sprintf("apsp: invalid matrix dimensions n=%d L=%d", n, L))
	}
	m := &Matrix{n: n, l: L, data: make([]int32, n*(n-1)/2)}
	far := int32(L + 1)
	for i := range m.data {
		m.data[i] = far
	}
	return m
}

// N returns the number of vertices.
func (m *Matrix) N() int { return m.n }

// L returns the distance threshold the matrix is capped at.
func (m *Matrix) L() int { return m.l }

// Far returns the sentinel value L+1 stored for pairs with geodesic
// distance exceeding L (including unreachable pairs).
func (m *Matrix) Far() int { return m.l + 1 }

func (m *Matrix) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	if i == j || i < 0 || j >= m.n {
		panic(fmt.Sprintf("apsp: invalid pair (%d, %d) for n=%d", i, j, m.n))
	}
	return i*(2*m.n-i-1)/2 + (j - i - 1)
}

// Get returns the capped distance for the unordered pair {i, j}, i != j.
func (m *Matrix) Get(i, j int) int { return int(m.data[m.index(i, j)]) }

// Set stores the capped distance d for the unordered pair {i, j}. Values
// above Far() are clamped to Far().
func (m *Matrix) Set(i, j, d int) {
	if d > m.Far() {
		d = m.Far()
	}
	if d < 1 {
		panic(fmt.Sprintf("apsp: distance %d < 1 for distinct pair (%d, %d)", d, i, j))
	}
	m.data[m.index(i, j)] = int32(d)
}

// Clone returns an independent deep copy (satisfying the Store
// contract): mutations of the clone never reach m.
func (m *Matrix) Clone() Store {
	c := &Matrix{n: m.n, l: m.l, data: make([]int32, len(m.data))}
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m with the contents of src, which must have the
// same dimensions.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.n != src.n || m.l != src.l {
		panic("apsp: CopyFrom dimension mismatch")
	}
	copy(m.data, src.data)
}

// EachPair calls fn for every unordered pair i < j with the stored capped
// distance.
func (m *Matrix) EachPair(fn func(i, j, d int)) {
	idx := 0
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			fn(i, j, int(m.data[idx]))
			idx++
		}
	}
}
