package apsp

import "repro/internal/graph"

// unreachable marks pairs with no connecting path in the uncapped
// reference computation.
const unreachable = int(^uint(0) >> 2) // large, addition-safe

// ClassicFW runs the textbook O(n^3) Floyd-Warshall algorithm on g with
// unit edge weights and returns the full (uncapped) distance matrix, with
// -1 for unreachable pairs and 0 on the diagonal. It exists as the
// reference implementation against which the pruned engines are
// cross-validated, mirroring the paper's derivation of Algorithms 2 and 3
// from the classic algorithm.
func ClassicFW(g *graph.Graph) [][]int {
	n := g.N()
	d := make([][]int, n)
	for i := range d {
		d[i] = make([]int, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = unreachable
			}
		}
	}
	g.EachEdge(func(u, v int) {
		d[u][v] = 1
		d[v][u] = 1
	})
	for k := 0; k < n; k++ {
		dk := d[k]
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if dik >= unreachable {
				continue
			}
			di := d[i]
			for j := 0; j < n; j++ {
				if s := dik + dk[j]; s < di[j] {
					di[j] = s
				}
			}
		}
	}
	for i := range d {
		for j := range d[i] {
			if d[i][j] >= unreachable {
				d[i][j] = -1
			}
		}
	}
	return d
}

// LPrunedFW is the paper's Algorithm 2: Floyd-Warshall restricted to the
// distances the privacy model needs. A relaxation through intermediate k
// is attempted only when both legs are shorter than L and their sum does
// not exceed L; everything longer is provably irrelevant to the question
// "is d(i, j) <= L?". The result is an L-capped Store with the default
// compact backing; LPrunedFWKind selects the backing explicitly.
func LPrunedFW(g *graph.Graph, L int) MutableStore { return LPrunedFWKind(g, L, KindCompact) }

// LPrunedFWKind runs Algorithm 2 into a store of the given kind.
func LPrunedFWKind(g *graph.Graph, L int, k Kind) MutableStore {
	n := g.N()
	m := newStoreAuto(n, L, k)
	if L >= 1 {
		seedEdges(g.Frozen(), m)
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n-1; i++ {
			if i == k {
				continue
			}
			dik := m.Get(i, k)
			if dik >= L { // paper line 4: require A[i][k] < L
				continue
			}
			for j := i + 1; j < n; j++ {
				if j == k {
					continue
				}
				dkj := m.Get(k, j)
				if dkj >= L { // paper line 6: require A[k][j] < L
					continue
				}
				if s := dik + dkj; s <= L && s < m.Get(i, j) {
					m.Set(i, j, s)
				}
			}
		}
	}
	return m
}

// seedEdges writes distance 1 for every edge of the snapshot — the
// initialization step shared by the Floyd-Warshall style engines.
func seedEdges(c *graph.CSR, m MutableStore) {
	n := c.N()
	for u := 0; u < n; u++ {
		for _, w := range c.Neighbors(u) {
			if int(w) > u {
				m.Set(u, int(w), 1)
			}
		}
	}
}

// BoundedAPSP computes the L-capped distance store by running one
// depth-L bounded BFS per source vertex over a CSR snapshot of the
// graph. On the sparse graphs of the paper's evaluation this is far
// cheaper than any Floyd-Warshall variant (O(sum of L-ball volumes)
// instead of O(n^3)) and is therefore the default engine for the
// anonymization heuristics. The result uses the default compact
// backing; BoundedAPSPKind selects it explicitly.
func BoundedAPSP(g *graph.Graph, L int) MutableStore { return BoundedAPSPKind(g, L, KindCompact) }

// BoundedAPSPKind runs the bounded-BFS engine into a store of the given
// kind.
func BoundedAPSPKind(g *graph.Graph, L int, k Kind) MutableStore {
	return BoundedCSRKind(g.Frozen(), L, k)
}

// BoundedCSRKind runs the sequential bounded-BFS engine over an
// already-frozen CSR snapshot. Callers that hold a snapshot (the
// parallel engine, benchmarks) use this form to freeze exactly once.
func BoundedCSRKind(c *graph.CSR, L int, k Kind) MutableStore {
	n := c.N()
	m := newStoreAuto(n, L, k)
	boundedCSRRange(c, L, m, 0, n, newCSRScratch(n))
	return m
}

// FromClassic converts a full reference distance matrix into an L-capped
// Store (compact backing); used by tests to compare engines.
func FromClassic(full [][]int, L int) MutableStore {
	n := len(full)
	m := newStoreAuto(n, L, KindCompact)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := full[i][j]; d >= 1 && d <= L {
				m.Set(i, j, d)
			}
		}
	}
	return m
}
