package apsp

import (
	"runtime"
	"sync"

	"repro/internal/graph"
)

// BoundedAPSPParallel computes the same matrix as BoundedAPSP using
// `workers` goroutines, one depth-L-truncated BFS per source over one
// shared CSR snapshot. Sources are dealt in contiguous stripes; from
// source s a worker records only the pairs {s, v} with v > s, so every
// matrix cell has exactly one writer and the run is race-free without
// locks. Distances are symmetric, so the half each source records
// covers the matrix.
//
// The result is bit-for-bit identical to BoundedAPSP at every worker
// count (and to the other engines — see the cross-validation tests).
// workers < 2 falls back to the sequential engine. This is the engine
// of choice for one-shot opacity reports on large graphs; the greedy
// loops keep using incremental deltas, which beat any full rebuild.
//
// Each worker owns a reusable frontier/distance scratch (csrScratch)
// for its whole stripe, so the steady-state sweep performs no
// allocations. Striped single-writer cells make the run race-free on
// either store backing: on the compact store each cell is its own
// byte, and distinct bytes are distinct memory locations under the Go
// memory model. The CSR snapshot is shared read-only.
func BoundedAPSPParallel(g *graph.Graph, L, workers int) MutableStore {
	return BoundedAPSPParallelKind(g, L, workers, KindCompact)
}

// BoundedAPSPParallelKind runs the striped parallel engine into a store
// of the given kind.
func BoundedAPSPParallelKind(g *graph.Graph, L, workers int, k Kind) MutableStore {
	return boundedCSRParallel(g.Frozen(), L, workers, k)
}

// boundedCSRParallel stripes the CSR sweep over workers goroutines.
func boundedCSRParallel(c *graph.CSR, L, workers int, k Kind) MutableStore {
	n := c.N()
	if workers < 2 || n < 2 {
		return BoundedCSRKind(c, L, k)
	}
	if cpus := runtime.NumCPU(); workers > cpus {
		workers = cpus
	}
	if workers > n {
		workers = n
	}
	m := newStoreAuto(n, L, k)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			boundedCSRRange(c, L, m, lo, hi, newCSRScratch(n))
		}(lo, hi)
	}
	wg.Wait()
	return m
}
