package apsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
)

// TestCompactRejectsOversizedL is the constructor bound: one byte must
// hold L+1, so NewCompactMatrix and NewStore(KindCompact) reject
// L > MaxCompactL.
func TestCompactRejectsOversizedL(t *testing.T) {
	if m := NewCompactMatrix(4, MaxCompactL); m.Far() != MaxCompactL+1 {
		t.Fatalf("L=MaxCompactL must be accepted, Far=%d", m.Far())
	}
	for _, build := range map[string]func(){
		"NewCompactMatrix": func() { NewCompactMatrix(4, MaxCompactL+1) },
		"NewStore":         func() { NewStore(4, MaxCompactL+1, KindCompact) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("compact constructor accepted L=%d", MaxCompactL+1)
				}
			}()
			build()
		}()
	}
}

// TestPackedAcceptsOversizedL: the int32 layout has no threshold
// ceiling and is what EffectiveKind degrades to.
func TestPackedAcceptsOversizedL(t *testing.T) {
	L := MaxCompactL + 10
	if m := NewStore(4, L, KindPacked); m.Far() != L+1 {
		t.Fatalf("packed store mangled Far: %d", m.Far())
	}
	if got := EffectiveKind(KindCompact, L); got != KindPacked {
		t.Fatalf("EffectiveKind(compact, %d) = %v, want packed", L, got)
	}
	if got := EffectiveKind(KindCompact, MaxCompactL); got != KindCompact {
		t.Fatalf("EffectiveKind(compact, %d) = %v, want compact", MaxCompactL, got)
	}
	// Engine builders resolve the fallback rather than panicking.
	g := fixture.Figure1()
	if m := BoundedAPSPKind(g, L, KindCompact); KindOf(m) != KindPacked {
		t.Fatal("engine did not degrade compact to packed beyond MaxCompactL")
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{
		"": KindCompact, "compact": KindCompact, "uint8": KindCompact,
		"packed": KindPacked, "int32": KindPacked,
	} {
		got, err := ParseKind(s)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseKind("sparse"); err == nil {
		t.Error("ParseKind accepted unknown name")
	}
}

func TestParseEngine(t *testing.T) {
	for s, want := range map[string]Engine{
		"": EngineAuto, "auto": EngineAuto, "bfs": EngineBFS,
		"fw": EngineFW, "pointer": EnginePointer, "bitbfs": EngineBit,
	} {
		got, err := ParseEngine(s)
		if err != nil || got != want {
			t.Errorf("ParseEngine(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseEngine("dijkstra"); err == nil {
		t.Error("ParseEngine accepted unknown name")
	}
}

// TestEnginesAgreeAcrossStores is the tentpole cross-validation: every
// engine on every backing produces the identical matrix.
func TestEnginesAgreeAcrossStores(t *testing.T) {
	g := fixture.Figure1()
	for L := 1; L <= 4; L++ {
		ref := FromClassic(ClassicFW(g), L)
		for _, k := range kinds {
			for name, m := range map[string]Store{
				"BoundedAPSP": BoundedAPSPKind(g, L, k),
				"LPrunedFW":   LPrunedFWKind(g, L, k),
				"PointerFW":   PointerFWKind(g, L, k),
				"BitBFS":      BitBFSKind(g, L, k),
				"Parallel4":   BoundedAPSPParallelKind(g, L, 4, k),
			} {
				if KindOf(m) != k {
					t.Errorf("L=%d %s/%v: wrong backing %v", L, name, k, KindOf(m))
				}
				if !Equal(m, ref) {
					t.Errorf("L=%d: %s on %v store disagrees with classic FW", L, name, k)
				}
			}
		}
	}
}

// TestPropertyStoresAgreeOnRandomGraphs: compact and packed runs of the
// same engine are entry-for-entry identical on random graphs.
func TestPropertyStoresAgreeOnRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(16)
		p := 0.05 + rng.Float64()*0.3
		L := 1 + rng.Intn(4)
		g := randomGraph(n, p, seed)
		return Equal(BoundedAPSPKind(g, L, KindCompact), BoundedAPSPKind(g, L, KindPacked)) &&
			Equal(LPrunedFWKind(g, L, KindCompact), LPrunedFWKind(g, L, KindPacked)) &&
			Equal(PointerFWKind(g, L, KindCompact), PointerFWKind(g, L, KindPacked))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeltasAgreeAcrossStores: the insertion delta and the
// removal recomputation report identical change sets on both backings,
// keeping the incremental paths bit-for-bit cross-validated.
func TestPropertyDeltasAgreeAcrossStores(t *testing.T) {
	type change struct{ x, y, oldD, newD int }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(12)
		L := 1 + rng.Intn(3)
		g := randomGraph(n, 0.25, seed)
		mc := BoundedAPSPKind(g, L, KindCompact)
		mp := BoundedAPSPKind(g, L, KindPacked)

		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			var cc, cp []change
			InsertionDelta(mc, u, v, func(x, y, oldD, newD int) {
				cc = append(cc, change{x, y, oldD, newD})
			})
			InsertionDelta(mp, u, v, func(x, y, oldD, newD int) {
				cp = append(cp, change{x, y, oldD, newD})
			})
			if len(cc) != len(cp) {
				return false
			}
			for i := range cc {
				if cc[i] != cp[i] {
					return false
				}
			}
		}
		if g.M() == 0 {
			return true
		}
		e := g.Edges()[rng.Intn(g.M())]
		var rc, rp []change
		RemovalDelta(g, mc, e.U, e.V, nil, func(x, y, oldD, newD int) {
			rc = append(rc, change{x, y, oldD, newD})
		})
		RemovalDelta(g, mp, e.U, e.V, nil, func(x, y, oldD, newD int) {
			rp = append(rp, change{x, y, oldD, newD})
		})
		if len(rc) != len(rp) {
			return false
		}
		for i := range rc {
			if rc[i] != rp[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestBuildDispatch: the configuration-driven builder reaches every
// engine and backing and always produces the reference matrix.
func TestBuildDispatch(t *testing.T) {
	g := fixture.Figure1()
	L := 2
	ref := FromClassic(ClassicFW(g), L)
	for _, e := range []Engine{EngineAuto, EngineBFS, EngineFW, EnginePointer, EngineBit} {
		for _, k := range kinds {
			for _, w := range []int{0, 4} {
				m := Build(g, L, BuildOptions{Engine: e, Kind: k, Workers: w})
				if KindOf(m) != k {
					t.Errorf("Build(%v, %v): wrong backing %v", e, k, KindOf(m))
				}
				if !Equal(m, ref) {
					t.Errorf("Build(%v, %v, workers=%d) disagrees with reference", e, k, w)
				}
			}
		}
	}
}
