package apsp

import (
	"os"
	"path/filepath"
	"testing"
)

// writeStoreFile marshals s into dir and returns the file path.
func writeStoreFile(t *testing.T, dir string, s Store) string {
	t.Helper()
	data, err := MarshalStore(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "test.store")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestMappedStoreRoundTrip: both payload kinds open as mapped views
// that agree cell-for-cell with the source store.
func TestMappedStoreRoundTrip(t *testing.T) {
	for _, kind := range []Kind{KindCompact, KindPacked} {
		g := randomGraph(40, 0.15, int64(kind)+1)
		src := BoundedAPSPKind(g, 3, kind)
		path := writeStoreFile(t, t.TempDir(), src)
		m, err := OpenMappedStore(path)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if m.N() != src.N() || m.L() != src.L() || m.Far() != src.Far() {
			t.Fatalf("%v: mapped dims (%d, %d), want (%d, %d)", kind, m.N(), m.L(), src.N(), src.L())
		}
		if m.Kind() != kind || KindOf(m) != kind {
			t.Fatalf("%v: mapped reports payload kind %v", kind, m.Kind())
		}
		if !Equal(m, src) {
			t.Fatalf("%v: mapped view disagrees with source", kind)
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if err := m.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
}

// TestMappedStoreIsReadOnly: the mapped view stays behind the read-side
// Store contract — it must never satisfy MutableStore, so a write to a
// shared persistent artifact is a compile error, not a runtime panic.
func TestMappedStoreIsReadOnly(t *testing.T) {
	g := randomGraph(10, 0.3, 1)
	path := writeStoreFile(t, t.TempDir(), BoundedAPSP(g, 2))
	m, err := OpenMappedStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, ok := Store(m).(MutableStore); ok {
		t.Fatal("MappedStore must not implement MutableStore")
	}
}

// TestMappedStoreCloneIndependence: a Clone is mutable and detached —
// writes to it never show through the mapping or the file.
func TestMappedStoreCloneIndependence(t *testing.T) {
	g := randomGraph(20, 0.2, 2)
	src := BoundedAPSP(g, 3)
	path := writeStoreFile(t, t.TempDir(), src)
	m, err := OpenMappedStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	c := m.Clone().(MutableStore)
	var i, j int
	found := false
	src.EachPair(func(x, y, d int) {
		if !found && d > 1 {
			i, j, found = x, y, true
		}
	})
	if !found {
		t.Skip("no mutable pair in fixture")
	}
	c.Set(i, j, 1)
	if m.Get(i, j) == 1 {
		t.Fatal("mutating a Clone changed the mapped view")
	}
	if !Equal(m, src) {
		t.Fatal("mapped view drifted from source after Clone mutation")
	}
}

// TestOpenMappedStoreRejectsCorrupt: bad magic, truncated payloads, and
// short files fail at open with an error, never a panic.
func TestOpenMappedStoreRejectsCorrupt(t *testing.T) {
	dir := t.TempDir()
	g := randomGraph(12, 0.3, 3)
	data, err := MarshalStore(BoundedAPSP(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"badmagic":  append([]byte("XXXX"), data[4:]...),
		"truncated": data[:len(data)-3],
		"short":     {1, 2, 3},
		"extra":     append(append([]byte(nil), data...), 0xFF),
	}
	for name, payload := range cases {
		path := filepath.Join(dir, name+".store")
		if err := os.WriteFile(path, payload, 0o644); err != nil {
			t.Fatal(err)
		}
		if m, err := OpenMappedStore(path); err == nil {
			m.Close()
			t.Errorf("%s: corrupt snapshot opened without error", name)
		}
	}
	if _, err := OpenMappedStore(filepath.Join(dir, "missing.store")); err == nil {
		t.Error("missing file opened without error")
	}
}

// TestMappedStoreCorruptCellCaughtByClone documents the validation
// tradeoff: a cell outside [1, Far] passes open (no full-file scan)
// but cannot leak into a mutable store — Clone's decode rejects it.
func TestMappedStoreCorruptCellCaughtByClone(t *testing.T) {
	g := randomGraph(10, 0.4, 4)
	data, err := MarshalStore(BoundedAPSP(g, 2))
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] = 250 // far beyond Far = 3
	path := filepath.Join(t.TempDir(), "cell.store")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMappedStore(path)
	if err != nil {
		t.Fatalf("open rejected a corrupt cell it should defer: %v", err)
	}
	defer m.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Clone of a corrupt-cell snapshot did not panic")
		}
	}()
	m.Clone()
}

// TestMarshalMappedStore: re-marshaling a mapped view reproduces the
// snapshot bytes, and they outlive Close.
func TestMarshalMappedStore(t *testing.T) {
	g := randomGraph(15, 0.25, 5)
	src := BoundedAPSP(g, 3)
	want, err := MarshalStore(src)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.store")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMappedStore(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MarshalStore(m)
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if len(got) != len(want) {
		t.Fatalf("re-marshal is %d bytes, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("re-marshal differs at byte %d", i)
		}
	}
}

// TestParseKindMapped: the request-level spelling resolves, and
// EffectiveKind folds it onto the heap kind its payload uses.
func TestParseKindMapped(t *testing.T) {
	for _, spelling := range []string{"mapped", "mmap"} {
		k, err := ParseKind(spelling)
		if err != nil || k != KindMapped {
			t.Fatalf("ParseKind(%q) = %v, %v", spelling, k, err)
		}
	}
	if KindMapped.String() != "mapped" {
		t.Fatalf("KindMapped.String() = %q", KindMapped.String())
	}
	if got := EffectiveKind(KindMapped, 3); got != KindCompact {
		t.Fatalf("EffectiveKind(mapped, 3) = %v, want compact", got)
	}
	if got := EffectiveKind(KindMapped, MaxCompactL+1); got != KindPacked {
		t.Fatalf("EffectiveKind(mapped, %d) = %v, want packed", MaxCompactL+1, got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore(KindMapped) did not panic")
		}
	}()
	NewStore(4, 2, KindMapped)
}
