package apsp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// Streaming snapshot builder: "build" and "persist" as one pass.
//
// The registry used to build the full triangle in heap, marshal it,
// and only then write the snapshot — which means a store could never
// be persisted without first fitting in RAM. StreamBuild inverts the
// lifecycle: it runs the same bounded CSR BFS sweep the heap engines
// use, but flushes each source's half-row to the writer the moment its
// BFS completes and never retains the triangle. Peak memory is O(n)
// per worker (one BFS scratch plus one row buffer), independent of the
// O(n²/2) payload, so a snapshot larger than RAM can be built on its
// way to disk and then served back through MappedStore or PagedStore.
//
// The output is byte-for-byte the LOPS snapshot MarshalStore produces
// for the same graph, threshold, and kind — the serialization tests
// assert this — so everything that reads snapshots (boot hydration,
// mmap, paging, quarantine) is oblivious to which path wrote them.

// streamMaxBlockCells bounds the payload bytes buffered per in-flight
// block in the parallel pipeline: blocks are sized to at most this
// many cells, so memory stays bounded no matter how large n grows.
const streamMaxBlockCells = 1 << 20

// StreamBuild writes the L-capped distance snapshot of g to w in one
// pass. o.Kind selects the payload layout (mapped/paged fold to their
// heap twin, compact degrades to packed past MaxCompactL, exactly like
// Build); o.Workers parallelizes the sweep with per-source rows still
// written in order. o.Engine is ignored: every engine produces an
// identical store (an invariant the cross-validation tests enforce),
// and only the BFS sweep can emit finished rows incrementally.
func StreamBuild(w io.Writer, g *graph.Graph, L int, o BuildOptions) error {
	if L < 0 {
		return fmt.Errorf("apsp: invalid threshold L=%d", L)
	}
	kind := EffectiveKind(o.Kind, L)
	c := g.Frozen()
	n := c.N()

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(appendStoreHeader(nil, kind, n, L)); err != nil {
		return err
	}

	workers := o.Workers
	if workers == 0 && n >= autoParallelMinN {
		workers = runtime.NumCPU()
	}
	if cpus := runtime.NumCPU(); workers > cpus {
		workers = cpus
	}
	var err error
	if workers < 2 || n < 2 {
		err = streamSequential(bw, c, L, kind)
	} else {
		err = streamParallel(bw, c, L, kind, workers)
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// BuildToFile streams the snapshot of g into path (truncating any
// existing file) and syncs it to stable storage. Callers wanting
// crash-safe visibility should pass a temp path and rename afterwards,
// which is exactly what the registry's build-through-to-file does.
func BuildToFile(path string, g *graph.Graph, L int, o BuildOptions) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := StreamBuild(f, g, L, o); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// fillRow initializes one half-row buffer to all-Far and returns it
// sliced to the row's byte width.
func fillRow(row []byte, width int, kind Kind, far int) []byte {
	if kind == KindCompact {
		row = row[:width]
		for i := range row {
			row[i] = byte(far)
		}
		return row
	}
	row = row[:4*width]
	for i := 0; i < width; i++ {
		binary.LittleEndian.PutUint32(row[4*i:], uint32(far))
	}
	return row
}

// emitRows runs the bounded BFS for each source in [lo, hi), rendering
// each half-row into row (reused across sources) and handing the
// finished slice to sink. It is the streaming twin of boundedCSRCells:
// same sweep, same touched-only resets, but rows leave through an
// io sink instead of landing in a retained triangle.
func emitRows(c *graph.CSR, L int, kind Kind, lo, hi int, sc *csrScratch, row []byte, sink func([]byte) error) error {
	n := c.N()
	far := L + 1
	for s := lo; s < hi; s++ {
		width := n - 1 - s
		out := fillRow(row, width, kind, far)
		visited := c.BoundedBFSInto(s, L, sc.dist, sc.queue)
		for _, v := range visited {
			if int(v) > s {
				// Cell (s, v) sits at offset v-s-1 within row s.
				if kind == KindCompact {
					out[int(v)-s-1] = byte(sc.dist[v])
				} else {
					binary.LittleEndian.PutUint32(out[4*(int(v)-s-1):], uint32(sc.dist[v]))
				}
			}
			sc.dist[v] = -1
		}
		sc.queue = visited[:0]
		if width > 0 {
			if err := sink(out); err != nil {
				return err
			}
		}
	}
	return nil
}

// streamSequential is the single-goroutine sweep: one scratch, one row
// buffer, rows written as produced.
func streamSequential(w io.Writer, c *graph.CSR, L int, kind Kind) error {
	n := c.N()
	cell := 1
	if kind == KindPacked {
		cell = 4
	}
	row := make([]byte, cell*maxInt(n-1, 0))
	sc := newCSRScratch(n)
	return emitRows(c, L, kind, 0, n, sc, row, func(b []byte) error {
		_, err := w.Write(b)
		return err
	})
}

// streamBlock is one contiguous source range rendered into a buffer by
// a worker, awaiting its in-order turn at the writer.
type streamBlock struct {
	idx int
	buf []byte
}

// streamBlocks partitions [0, n) into contiguous source ranges of at
// most streamMaxBlockCells triangle cells each (a range is always at
// least one source, so a single huge row still forms a block).
func streamBlocks(n int) [][2]int {
	var blocks [][2]int
	lo, cells := 0, 0
	for s := 0; s < n; s++ {
		cells += n - 1 - s
		if cells >= streamMaxBlockCells || s == n-1 {
			blocks = append(blocks, [2]int{lo, s + 1})
			lo, cells = s+1, 0
		}
	}
	return blocks
}

// streamParallel pipelines the sweep: workers render blocks of rows
// into buffers, a collector writes them strictly in order. In-flight
// buffers are bounded by a semaphore sized workers+2, so peak memory
// is O(workers × blockBytes) regardless of n. Handing blocks out in
// ascending order guarantees the collector's next-needed block always
// already holds a semaphore slot, so the pipeline cannot deadlock.
func streamParallel(w io.Writer, c *graph.CSR, L int, kind Kind, workers int) error {
	n := c.N()
	blocks := streamBlocks(n)
	if workers > len(blocks) {
		workers = len(blocks)
	}
	cell := 1
	if kind == KindPacked {
		cell = 4
	}

	jobs := make(chan int)
	results := make(chan streamBlock, workers)
	sem := make(chan struct{}, workers+2)
	done := make(chan error, 1)

	// Collector: write blocks in index order, buffering out-of-order
	// arrivals. Each written block frees one semaphore slot.
	go func() {
		pending := make(map[int][]byte)
		next := 0
		var werr error
		for blk := range results {
			pending[blk.idx] = blk.buf
			for buf, ok := pending[next]; ok; buf, ok = pending[next] {
				if werr == nil {
					_, werr = w.Write(buf)
				}
				delete(pending, next)
				next++
				<-sem
			}
		}
		done <- werr
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newCSRScratch(n)
			for idx := range jobs {
				lo, hi := blocks[idx][0], blocks[idx][1]
				size := 0
				for s := lo; s < hi; s++ {
					size += n - 1 - s
				}
				buf := make([]byte, 0, cell*size)
				row := make([]byte, cell*maxInt(n-1-lo, 0))
				_ = emitRows(c, L, kind, lo, hi, sc, row, func(b []byte) error {
					buf = append(buf, b...)
					return nil
				})
				results <- streamBlock{idx: idx, buf: buf}
			}
		}()
	}

	for idx := range blocks {
		sem <- struct{}{}
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	close(results)
	return <-done
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
