package apsp

import (
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/graph"
)

func TestBitBFSAgreesOnFigure1(t *testing.T) {
	g := fixture.Figure1()
	for L := 1; L <= 4; L++ {
		ref := FromClassic(ClassicFW(g), L)
		if m := BitBFS(g, L); !Equal(m, ref) {
			t.Errorf("L=%d: BitBFS disagrees with classic FW", L)
		}
	}
}

func TestBitBFSEmptyAndTrivialGraphs(t *testing.T) {
	if m := BitBFS(graph.New(0), 2); m.N() != 0 {
		t.Fatal("empty graph mishandled")
	}
	g := graph.New(5) // no edges: everything Far
	m := BitBFS(g, 3)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if m.Get(i, j) != m.Far() {
				t.Fatalf("edgeless graph: d(%d,%d)=%d, want Far", i, j, m.Get(i, j))
			}
		}
	}
	if m := BitBFS(fixture.Figure1(), 0); CountWithin(m) != 0 {
		t.Fatal("L=0 must report no pairs within range")
	}
}

// BitBFS batches sources in words of 64; graphs larger than one word and
// graphs exactly at the boundary exercise the batch loop.
func TestBitBFSWordBoundarySizes(t *testing.T) {
	for _, n := range []int{63, 64, 65, 130} {
		g := randomGraph(n, 0.05, int64(n))
		for _, L := range []int{1, 2, 3} {
			ref := BoundedAPSP(g, L)
			if m := BitBFS(g, L); !Equal(m, ref) {
				t.Errorf("n=%d L=%d: BitBFS disagrees with BoundedAPSP", n, L)
			}
		}
	}
}

func TestBitBFSQuickAgreesWithBounded(t *testing.T) {
	f := func(seed int64, nRaw, pRaw, lRaw uint8) bool {
		n := 2 + int(nRaw%90)
		p := 0.02 + float64(pRaw%30)/100
		L := 1 + int(lRaw%4)
		g := randomGraph(n, p, seed)
		return Equal(BitBFS(g, L), BoundedAPSP(g, L))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineBitBFS(b *testing.B) {
	g := randomGraph(500, 0.02, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BitBFS(g, 2)
	}
}

func BenchmarkEngineBoundedAPSPBaseline(b *testing.B) {
	g := randomGraph(500, 0.02, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BoundedAPSP(g, 2)
	}
}
