package apsp

import "repro/internal/graph"

// PointerFW is the paper's Algorithm 3: the L-pruned Floyd-Warshall that,
// instead of scanning whole rows and columns for cells shorter than L,
// rides linked lists threading exactly those cells, amending the lists
// whenever a relaxation first drops a cell below L.
//
// Concretely, for every vertex k we maintain the list low[k] of partners
// p with current capped distance d(k, p) < L. Iteration k of the outer
// loop joins low[k] with itself — every pair (i, j) of sub-L partners of
// k is a candidate relaxation i-k-j — which is precisely the set of cells
// Algorithm 3's out/in pointer walk over column and row k visits. Because
// distances only ever decrease and a cell is appended exactly when it
// first crosses below L, the append-only lists never hold duplicates.
func PointerFW(g *graph.Graph, L int) MutableStore { return PointerFWKind(g, L, KindCompact) }

// PointerFWKind runs Algorithm 3 into a store of the given kind.
func PointerFWKind(g *graph.Graph, L int, k Kind) MutableStore {
	n := g.N()
	m := newStoreAuto(n, L, k)
	low := make([][]int, n)
	c := g.Frozen()
	if L >= 1 {
		seedEdges(c, m)
	}
	// Pre-processing step of Algorithm 3: thread the initial sub-L cells
	// (edges, when L > 1) into the lists. The CSR windows are already
	// sorted, so the lists start in the same deterministic order the
	// per-vertex Neighbors sort used to provide — without allocating a
	// sorted copy per vertex.
	if L > 1 {
		for v := 0; v < n; v++ {
			nbrs := c.Neighbors(v)
			lv := make([]int, len(nbrs))
			for i, w := range nbrs {
				lv[i] = int(w)
			}
			low[v] = lv
		}
	}
	for k := 0; k < n; k++ {
		partners := low[k]
		for a := 0; a < len(partners); a++ {
			i := partners[a]
			dik := m.Get(i, k)
			for b := a + 1; b < len(partners); b++ {
				j := partners[b]
				if i == j {
					continue
				}
				dkj := m.Get(k, j)
				s := dik + dkj
				if s > L {
					continue
				}
				old := m.Get(i, j)
				if s < old {
					// Paper lines 13-16: amend list connections when the
					// cell first drops below L, then write the new value.
					if s < L && old >= L {
						low[i] = append(low[i], j)
						low[j] = append(low[j], i)
					}
					m.Set(i, j, s)
				}
			}
		}
	}
	return m
}
