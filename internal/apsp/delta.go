package apsp

import "repro/internal/graph"

// InsertionDelta reports, without mutating anything, every unordered pair
// whose L-capped distance would decrease if the edge {u, v} were inserted
// into the graph that matrix m currently describes. For each such pair it
// calls visit(x, y, oldD, newD) with x < y.
//
// The computation is exact in O(n^2): a new shortest path created by the
// edge {u, v} must cross it, so
//
//	d'(x, y) = min(d(x, y), d(x, u) + 1 + d(v, y), d(x, v) + 1 + d(u, y)),
//
// and legs longer than L-1 (stored as Far or L) cannot contribute a path
// within the cap, so the capped matrix suffices as input.
func InsertionDelta(m Store, u, v int, visit func(x, y, oldD, newD int)) {
	n := m.N()
	L := m.L()
	far := m.Far()
	du := make([]int, n) // capped d(x, u)
	dv := make([]int, n) // capped d(x, v)
	for x := 0; x < n; x++ {
		switch x {
		case u:
			du[x] = 0
			dv[x] = m.Get(x, v)
		case v:
			du[x] = m.Get(x, u)
			dv[x] = 0
		default:
			du[x] = m.Get(x, u)
			dv[x] = m.Get(x, v)
		}
	}
	for x := 0; x < n; x++ {
		// Shortest leg from x to the new edge; +1 crosses the edge. The
		// du/dv arrays carry 0 at the endpoints themselves, so the two
		// candidate formulas are uniform over all pairs, including pairs
		// touching u or v and the pair {u, v} itself.
		viaU := du[x] + 1 // x -> u, cross to v, then v -> y
		viaV := dv[x] + 1 // x -> v, cross to u, then u -> y
		if viaU > L && viaV > L {
			continue // x too far from both endpoints to gain anything
		}
		for y := x + 1; y < n; y++ {
			old := m.Get(x, y)
			if old == 1 {
				continue // cannot improve below 1
			}
			cand := far
			if c := viaU + dv[y]; c < cand {
				cand = c
			}
			if c := viaV + du[y]; c < cand {
				cand = c
			}
			if cand < old && cand <= L {
				visit(x, y, old, cand)
			}
		}
	}
}

// AffectedRemovalSources returns the sorted set of vertices x whose
// distance row may change when the edge {u, v} is removed from the graph
// described by m: any pair (x, y) whose shortest <=L path crossed the
// edge has, on one side, a leg of length <= L-1 to an endpoint, so
// recomputing bounded BFS from every x with min(d(x,u), d(x,v)) <= L-1
// (plus u and v themselves) refreshes every entry that can change.
func AffectedRemovalSources(m Store, u, v int) []int {
	n := m.N()
	L := m.L()
	out := make([]int, 0, n)
	for x := 0; x < n; x++ {
		if x == u || x == v {
			out = append(out, x)
			continue
		}
		if m.Get(x, u) <= L-1 || m.Get(x, v) <= L-1 {
			out = append(out, x)
		}
	}
	return out
}

// RemovalDelta reports, without permanently mutating anything, every
// unordered pair whose L-capped distance changes when the edge {u, v} is
// removed. g must be the graph WITH the edge still present and consistent
// with m; the function temporarily removes the edge, re-runs bounded BFS
// from every affected source, and restores the edge before returning.
// visit is called once per changed pair with x < y (oldD < newD always,
// since removal can only lengthen distances).
//
// scratch may be nil; pass a Scratch to amortize allocations across the
// many candidate evaluations of a greedy sweep.
func RemovalDelta(g *graph.Graph, m Store, u, v int, scratch *Scratch, visit func(x, y, oldD, newD int)) {
	if !g.HasEdge(u, v) {
		panic("apsp: RemovalDelta on absent edge")
	}
	n := m.N()
	L := m.L()
	if scratch == nil {
		scratch = NewScratch(n)
	}
	dist := scratch.dist
	queue := scratch.queue
	seen := scratch.seen
	sources := AffectedRemovalSources(m, u, v)

	g.RemoveEdge(u, v)
	for _, x := range sources {
		g.BoundedBFSInto(x, L, dist, queue)
		for y := 0; y < n; y++ {
			if y == x {
				dist[y] = -1
				continue
			}
			newD := dist[y]
			if newD < 0 {
				newD = L + 1
			}
			dist[y] = -1
			old := m.Get(x, y)
			if newD == old {
				continue
			}
			lo, hi := x, y
			if lo > hi {
				lo, hi = hi, lo
			}
			// A pair may be covered by two affected sources; report once.
			key := lo*n + hi
			if seen[key] {
				continue
			}
			seen[key] = true
			scratch.touched = append(scratch.touched, key)
			visit(lo, hi, old, newD)
		}
	}
	g.AddEdge(u, v)
	for _, key := range scratch.touched {
		seen[key] = false
	}
	scratch.touched = scratch.touched[:0]
}

// ApplyInsertion mutates m to reflect inserting the edge {u, v} into the
// graph it describes (the graph itself is not touched).
func ApplyInsertion(m Store, u, v int) {
	InsertionDelta(m, u, v, func(x, y, _, newD int) {
		m.Set(x, y, newD)
	})
}

// ApplyRemoval mutates m to reflect removing the edge {u, v}. g must
// still contain the edge; it is restored before the function returns.
func ApplyRemoval(g *graph.Graph, m Store, u, v int, scratch *Scratch) {
	type upd struct{ x, y, d int }
	var ups []upd
	RemovalDelta(g, m, u, v, scratch, func(x, y, _, newD int) {
		ups = append(ups, upd{x, y, newD})
	})
	for _, p := range ups {
		m.Set(p.x, p.y, p.d)
	}
}

// Scratch holds reusable buffers for RemovalDelta so that the greedy
// sweeps, which evaluate every candidate edge at every step, do not
// allocate per candidate.
type Scratch struct {
	dist    []int
	queue   []int
	seen    []bool
	touched []int
}

// NewScratch returns buffers sized for an n-vertex graph.
func NewScratch(n int) *Scratch {
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	return &Scratch{
		dist:  dist,
		queue: make([]int, 0, n),
		seen:  make([]bool, n*n),
	}
}
