package apsp

import "repro/internal/graph"

// InsertionDelta reports, without mutating anything, every unordered pair
// whose L-capped distance would decrease if the edge {u, v} were inserted
// into the graph that matrix m currently describes. For each such pair it
// calls visit(x, y, oldD, newD) with x < y.
//
// The computation is exact in O(n^2): a new shortest path created by the
// edge {u, v} must cross it, so
//
//	d'(x, y) = min(d(x, y), d(x, u) + 1 + d(v, y), d(x, v) + 1 + d(u, y)),
//
// and legs longer than L-1 (stored as Far or L) cannot contribute a path
// within the cap, so the capped matrix suffices as input.
func InsertionDelta(m Store, u, v int, visit func(x, y, oldD, newD int)) {
	InsertionDeltaScratch(m, u, v, nil, visit)
}

// InsertionDeltaScratch is InsertionDelta with caller-provided scratch
// buffers, for the greedy sweeps that evaluate every absent edge at
// every step: with a reused Scratch the scan allocates nothing.
func InsertionDeltaScratch(m Store, u, v int, scratch *Scratch, visit func(x, y, oldD, newD int)) {
	n := m.N()
	L := m.L()
	far := m.Far()
	if scratch == nil {
		scratch = NewScratch(n)
	}
	du := scratch.du[:n] // capped d(x, u)
	dv := scratch.dv[:n] // capped d(x, v)
	for x := 0; x < n; x++ {
		switch x {
		case u:
			du[x] = 0
			dv[x] = m.Get(x, v)
		case v:
			du[x] = m.Get(x, u)
			dv[x] = 0
		default:
			du[x] = m.Get(x, u)
			dv[x] = m.Get(x, v)
		}
	}
	for x := 0; x < n; x++ {
		// Shortest leg from x to the new edge; +1 crosses the edge. The
		// du/dv arrays carry 0 at the endpoints themselves, so the two
		// candidate formulas are uniform over all pairs, including pairs
		// touching u or v and the pair {u, v} itself.
		viaU := du[x] + 1 // x -> u, cross to v, then v -> y
		viaV := dv[x] + 1 // x -> v, cross to u, then u -> y
		if viaU > L && viaV > L {
			continue // x too far from both endpoints to gain anything
		}
		for y := x + 1; y < n; y++ {
			old := m.Get(x, y)
			if old == 1 {
				continue // cannot improve below 1
			}
			cand := far
			if c := viaU + dv[y]; c < cand {
				cand = c
			}
			if c := viaV + du[y]; c < cand {
				cand = c
			}
			if cand < old && cand <= L {
				visit(x, y, old, cand)
			}
		}
	}
}

// AffectedRemovalSources returns the sorted set of vertices x whose
// distance row may change when the edge {u, v} is removed from the graph
// described by m: any pair (x, y) whose shortest <=L path crossed the
// edge has, on one side, a leg of length <= L-1 to an endpoint, so
// recomputing bounded BFS from every x with min(d(x,u), d(x,v)) <= L-1
// (plus u and v themselves) refreshes every entry that can change.
func AffectedRemovalSources(m Store, u, v int) []int {
	n := m.N()
	L := m.L()
	out := make([]int, 0, n)
	for x := 0; x < n; x++ {
		if x == u || x == v {
			out = append(out, x)
			continue
		}
		if m.Get(x, u) <= L-1 || m.Get(x, v) <= L-1 {
			out = append(out, x)
		}
	}
	return out
}

// RemovalDelta reports, without mutating anything, every unordered
// pair whose L-capped distance changes when the edge {u, v} is removed.
// g must be the graph WITH the edge still present and consistent with
// m; the edge is not actually removed — the recomputation runs bounded
// BFS from every affected source with the edge masked out
// (BoundedBFSIntoSkip), so g is only ever read. That read-only
// discipline is what lets the anonymization heuristics' parallel
// candidate scans share one graph across workers instead of cloning it
// per worker. visit is called once per changed pair with x < y
// (oldD < newD always, since removal can only lengthen distances).
//
// A changed pair whose endpoints are both affected sources would be
// recomputed twice; it is reported exactly once, by the
// smaller-indexed endpoint's pass.
//
// scratch may be nil; pass a Scratch to amortize allocations across the
// many candidate evaluations of a greedy sweep.
func RemovalDelta(g *graph.Graph, m Store, u, v int, scratch *Scratch, visit func(x, y, oldD, newD int)) {
	if !g.HasEdge(u, v) {
		panic("apsp: RemovalDelta on absent edge")
	}
	n := m.N()
	L := m.L()
	if scratch == nil {
		scratch = NewScratch(n)
	}
	dist := scratch.dist
	queue := scratch.queue
	affected := scratch.affected
	sources := scratch.sources[:0]
	for x := 0; x < n; x++ {
		if x == u || x == v || m.Get(x, u) <= L-1 || m.Get(x, v) <= L-1 {
			sources = append(sources, x)
			affected[x] = true
		}
	}
	scratch.sources = sources

	for _, x := range sources {
		g.BoundedBFSIntoSkip(x, L, dist, queue, u, v)
		for y := 0; y < n; y++ {
			if y == x {
				dist[y] = -1
				continue
			}
			newD := dist[y]
			if newD < 0 {
				newD = L + 1
			}
			dist[y] = -1
			if y < x && affected[y] {
				continue // y's own pass reports the pair
			}
			old := m.Get(x, y)
			if newD == old {
				continue
			}
			lo, hi := x, y
			if lo > hi {
				lo, hi = hi, lo
			}
			visit(lo, hi, old, newD)
		}
	}
	for _, x := range sources {
		affected[x] = false
	}
}

// ApplyInsertion mutates m to reflect inserting the edge {u, v} into the
// graph it describes (the graph itself is not touched).
func ApplyInsertion(m MutableStore, u, v int) {
	InsertionDelta(m, u, v, func(x, y, _, newD int) {
		m.Set(x, y, newD)
	})
}

// ApplyRemoval mutates m to reflect removing the edge {u, v}. g must
// still contain the edge; it is only read, never mutated.
func ApplyRemoval(g *graph.Graph, m MutableStore, u, v int, scratch *Scratch) {
	type upd struct{ x, y, d int }
	var ups []upd
	RemovalDelta(g, m, u, v, scratch, func(x, y, _, newD int) {
		ups = append(ups, upd{x, y, newD})
	})
	for _, p := range ups {
		m.Set(p.x, p.y, p.d)
	}
}

// Scratch holds reusable buffers for RemovalDelta so that the greedy
// sweeps, which evaluate every candidate edge at every step, do not
// allocate per candidate. All buffers are O(n); RemovalDelta only
// reads the graph, so each concurrent evaluator needs its own Scratch
// but can share the graph and store.
type Scratch struct {
	dist     []int
	queue    []int
	affected []bool
	sources  []int
	du, dv   []int
}

// NewScratch returns buffers sized for an n-vertex graph.
func NewScratch(n int) *Scratch {
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	return &Scratch{
		dist:     dist,
		queue:    make([]int, 0, n),
		affected: make([]bool, n),
		sources:  make([]int, 0, n),
		du:       make([]int, n),
		dv:       make([]int, n),
	}
}
