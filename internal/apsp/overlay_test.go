package apsp

import (
	"math/rand"
	"testing"
)

// mutateRandom applies the same pseudo-random write sequence to any
// mutable store; used to drive an overlay and a heap twin identically.
func mutateRandom(m MutableStore, count int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	n := m.N()
	for k := 0; k < count; k++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		m.Set(u, v, 1+rng.Intn(m.Far()))
	}
}

// TestOverlayReadThrough: an unwritten overlay is transparent — every
// Get and the full EachPair stream match the base exactly, and no
// dirty cell exists.
func TestOverlayReadThrough(t *testing.T) {
	g := randomGraph(30, 0.2, 7)
	base := BoundedAPSP(g, 3)
	o := NewOverlay(base)
	if o.N() != base.N() || o.L() != base.L() || o.Far() != base.Far() {
		t.Fatal("overlay dimensions diverge from base")
	}
	if !Equal(o, base) {
		t.Fatal("unwritten overlay differs from base")
	}
	if o.Dirty() != 0 {
		t.Fatalf("unwritten overlay has %d dirty cells", o.Dirty())
	}
	var pairs, basePairs int
	o.EachPair(func(i, j, d int) { pairs++ })
	base.EachPair(func(i, j, d int) { basePairs++ })
	if pairs != basePairs {
		t.Fatalf("overlay EachPair emitted %d pairs, base %d", pairs, basePairs)
	}
}

// TestOverlayMatchesMutatedClone: the same write sequence applied to an
// overlay and to a deep clone of the base produces identical stores —
// and the base itself never moves.
func TestOverlayMatchesMutatedClone(t *testing.T) {
	for _, kind := range []Kind{KindCompact, KindPacked} {
		g := randomGraph(40, 0.15, 11)
		base := Build(g, 3, BuildOptions{Kind: kind})
		pristine := base.Clone()

		o := NewOverlay(base)
		c := base.Clone().(MutableStore)
		mutateRandom(o, 500, 42)
		mutateRandom(c, 500, 42)

		if !Equal(o, c) {
			t.Fatalf("%v: overlay and mutated clone diverge", kind)
		}
		if !Equal(base, pristine) {
			t.Fatalf("%v: writing the overlay mutated its base", kind)
		}
		// EachPair must agree cell-for-cell in row-major order, not just
		// through Get.
		type cell struct{ i, j, d int }
		var want []cell
		c.EachPair(func(i, j, d int) { want = append(want, cell{i, j, d}) })
		k := 0
		o.EachPair(func(i, j, d int) {
			if want[k] != (cell{i, j, d}) {
				t.Fatalf("%v: EachPair[%d] = %v, want %v", kind, k, cell{i, j, d}, want[k])
			}
			k++
		})
		if k != len(want) {
			t.Fatalf("%v: overlay EachPair emitted %d cells, want %d", kind, k, len(want))
		}
	}
}

// TestOverlayCloneIndependence: cloning an overlay copies the dirty set
// — mutations on either side are invisible to the other, while both
// keep sharing the read-only base.
func TestOverlayCloneIndependence(t *testing.T) {
	g := randomGraph(25, 0.2, 3)
	base := BoundedAPSP(g, 3)
	o := NewOverlay(base)
	mutateRandom(o, 100, 1)

	c := o.Clone().(MutableStore)
	if !Equal(o, c) {
		t.Fatal("clone differs from original")
	}
	snapshot := o.Compact()

	mutateRandom(c, 100, 2)
	if !Equal(o, snapshot) {
		t.Fatal("mutating the clone changed the original overlay")
	}
	mutateRandom(o, 100, 3)
	cSnapshot := make(map[[2]int]int)
	c.EachPair(func(i, j, d int) { cSnapshot[[2]int{i, j}] = d })
	o.EachPair(func(i, j, d int) {
		if got := cSnapshot[[2]int{i, j}]; got == 0 {
			t.Fatalf("clone missing pair (%d,%d)", i, j)
		}
	})
}

// TestOverlayReconvergence: writing a cell away from and then back to
// its base value removes the override — rejected annealing moves and
// probe/revert scans leave the overlay as sparse as they found it.
func TestOverlayReconvergence(t *testing.T) {
	g := randomGraph(20, 0.3, 5)
	base := BoundedAPSP(g, 2)
	o := NewOverlay(base)

	i, j := -1, -1
	var orig int
	base.EachPair(func(x, y, d int) {
		if i < 0 && d > 1 {
			i, j, orig = x, y, d
		}
	})
	if i < 0 {
		t.Skip("no mutable pair in fixture")
	}
	o.Set(i, j, 1)
	if o.Dirty() != 1 || o.Get(i, j) != 1 {
		t.Fatalf("after write: dirty=%d get=%d", o.Dirty(), o.Get(i, j))
	}
	o.Set(i, j, orig)
	if o.Dirty() != 0 {
		t.Fatalf("after revert: %d dirty cells remain", o.Dirty())
	}
	if o.Get(i, j) != orig {
		t.Fatalf("after revert: get=%d want %d", o.Get(i, j), orig)
	}
}

// TestOverlayDeltaEquivalence: the incremental delta appliers writing
// through an overlay agree exactly with the same deltas applied to a
// heap clone — the mutation path of every anonymization run.
func TestOverlayDeltaEquivalence(t *testing.T) {
	g := randomGraph(30, 0.2, 9)
	base := BoundedAPSP(g, 3)
	o := NewOverlay(base)
	c := base.Clone().(MutableStore)

	work := g.Clone()
	var edges [][2]int
	work.EachEdge(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	if len(edges) < 4 {
		t.Skip("fixture too sparse")
	}
	scratch := NewScratch(g.N())
	for _, e := range edges[:2] {
		ApplyRemoval(work, o, e[0], e[1], scratch)
		ApplyRemoval(work, c, e[0], e[1], scratch)
		work.RemoveEdge(e[0], e[1])
	}
	u, v := edges[0][0], edges[1][1]
	if u != v && !work.HasEdge(u, v) {
		ApplyInsertion(o, u, v)
		ApplyInsertion(c, u, v)
	}
	if !Equal(o, c) {
		t.Fatal("delta application through overlay diverges from heap clone")
	}
}

// TestOverlaySetValidation: the overlay enforces the same Set contract
// as the heap backings — clamp above Far, panic below 1, panic on a
// diagonal or out-of-range pair.
func TestOverlaySetValidation(t *testing.T) {
	base := NewCompactMatrix(5, 3)
	o := NewOverlay(base)
	o.Set(0, 1, 99)
	if got := o.Get(0, 1); got != o.Far() {
		t.Fatalf("overflow write stored %d, want Far=%d", got, o.Far())
	}
	mustPanicOverlay(t, "d<1", func() { o.Set(0, 1, 0) })
	mustPanicOverlay(t, "diagonal", func() { o.Set(2, 2, 1) })
	mustPanicOverlay(t, "range", func() { o.Get(0, 9) })
}

func mustPanicOverlay(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: no panic", name)
		}
	}()
	f()
}
