package apsp

import (
	"testing"
)

// kinds enumerates every store backing; store behavior tests run over
// all of them so the two implementations stay interchangeable.
var kinds = []Kind{KindCompact, KindPacked}

func forEachKind(t *testing.T, fn func(t *testing.T, k Kind)) {
	t.Helper()
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) { fn(t, k) })
	}
}

func TestStoreInitFar(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		m := NewStore(4, 2, k)
		if m.N() != 4 || m.L() != 2 || m.Far() != 3 {
			t.Fatalf("dims: n=%d L=%d far=%d", m.N(), m.L(), m.Far())
		}
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				if m.Get(i, j) != 3 {
					t.Fatalf("entry (%d,%d) = %d, want Far=3", i, j, m.Get(i, j))
				}
			}
		}
	})
}

func TestStoreSetGetSymmetric(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		m := NewStore(5, 3, k)
		m.Set(3, 1, 2)
		if m.Get(1, 3) != 2 || m.Get(3, 1) != 2 {
			t.Fatal("Set/Get not symmetric")
		}
		m.Set(0, 4, 99) // clamps to Far
		if m.Get(0, 4) != m.Far() {
			t.Fatalf("overlarge distance not clamped: %d", m.Get(0, 4))
		}
	})
}

func TestStoreDiagonalPanics(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		m := NewStore(3, 1, k)
		defer func() {
			if recover() == nil {
				t.Fatal("Get on diagonal did not panic")
			}
		}()
		m.Get(1, 1)
	})
}

func TestStoreSetZeroPanics(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		m := NewStore(3, 1, k)
		defer func() {
			if recover() == nil {
				t.Fatal("Set with d=0 did not panic")
			}
		}()
		m.Set(0, 1, 0)
	})
}

func TestStoreCloneEqualCopy(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		m := NewStore(4, 2, k)
		m.Set(0, 1, 1)
		m.Set(1, 2, 2)
		c := Clone(m).(MutableStore)
		if KindOf(c) != k {
			t.Fatalf("Clone changed backing: %v -> %v", k, KindOf(c))
		}
		if !Equal(m, c) {
			t.Fatal("clone unequal")
		}
		c.Set(2, 3, 1)
		if Equal(m, c) {
			t.Fatal("mutating clone affected Equal")
		}
		Copy(c, m)
		if !Equal(m, c) {
			t.Fatal("Copy did not restore equality")
		}
		if Equal(m, NewStore(4, 3, k)) {
			t.Fatal("different caps reported equal")
		}
		if Equal(m, NewStore(5, 2, k)) {
			t.Fatal("different sizes reported equal")
		}
	})
}

func TestStoreCountWithinAndHistogram(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		m := NewStore(4, 2, k) // 6 pairs
		m.Set(0, 1, 1)
		m.Set(0, 2, 2)
		m.Set(1, 2, 1)
		if got := CountWithin(m); got != 3 {
			t.Fatalf("CountWithin = %d, want 3", got)
		}
		h := Histogram(m)
		if h[1] != 2 || h[2] != 1 || h[3] != 3 {
			t.Fatalf("Histogram = %v", h)
		}
	})
}

func TestStoreEachPairOrder(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		m := NewStore(3, 1, k)
		var pairs [][2]int
		m.EachPair(func(i, j, d int) { pairs = append(pairs, [2]int{i, j}) })
		want := [][2]int{{0, 1}, {0, 2}, {1, 2}}
		if len(pairs) != len(want) {
			t.Fatalf("EachPair visited %v", pairs)
		}
		for i := range want {
			if pairs[i] != want[i] {
				t.Fatalf("EachPair order %v, want %v", pairs, want)
			}
		}
	})
}

func TestStoreWithin(t *testing.T) {
	forEachKind(t, func(t *testing.T, k Kind) {
		m := NewStore(3, 2, k)
		m.Set(0, 1, 2)
		if !Within(m, 0, 1) {
			t.Fatal("distance 2 with L=2 should be within")
		}
		if Within(m, 0, 2) {
			t.Fatal("Far pair reported within")
		}
	})
}
