package apsp

import (
	"testing"
)

func TestMatrixInitFar(t *testing.T) {
	m := NewMatrix(4, 2)
	if m.N() != 4 || m.L() != 2 || m.Far() != 3 {
		t.Fatalf("dims: n=%d L=%d far=%d", m.N(), m.L(), m.Far())
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if m.Get(i, j) != 3 {
				t.Fatalf("entry (%d,%d) = %d, want Far=3", i, j, m.Get(i, j))
			}
		}
	}
}

func TestMatrixSetGetSymmetric(t *testing.T) {
	m := NewMatrix(5, 3)
	m.Set(3, 1, 2)
	if m.Get(1, 3) != 2 || m.Get(3, 1) != 2 {
		t.Fatal("Set/Get not symmetric")
	}
	m.Set(0, 4, 99) // clamps to Far
	if m.Get(0, 4) != m.Far() {
		t.Fatalf("overlarge distance not clamped: %d", m.Get(0, 4))
	}
}

func TestMatrixDiagonalPanics(t *testing.T) {
	m := NewMatrix(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Get on diagonal did not panic")
		}
	}()
	m.Get(1, 1)
}

func TestMatrixSetZeroPanics(t *testing.T) {
	m := NewMatrix(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Set with d=0 did not panic")
		}
	}()
	m.Set(0, 1, 0)
}

func TestMatrixCloneEqualCopyFrom(t *testing.T) {
	m := NewMatrix(4, 2)
	m.Set(0, 1, 1)
	m.Set(1, 2, 2)
	c := m.Clone()
	if !m.Equal(c) {
		t.Fatal("clone unequal")
	}
	c.Set(2, 3, 1)
	if m.Equal(c) {
		t.Fatal("mutating clone affected Equal")
	}
	c.CopyFrom(m)
	if !m.Equal(c) {
		t.Fatal("CopyFrom did not restore equality")
	}
	if m.Equal(NewMatrix(4, 3)) {
		t.Fatal("different caps reported equal")
	}
	if m.Equal(NewMatrix(5, 2)) {
		t.Fatal("different sizes reported equal")
	}
}

func TestMatrixCountWithinAndHistogram(t *testing.T) {
	m := NewMatrix(4, 2) // 6 pairs
	m.Set(0, 1, 1)
	m.Set(0, 2, 2)
	m.Set(1, 2, 1)
	if got := m.CountWithin(); got != 3 {
		t.Fatalf("CountWithin = %d, want 3", got)
	}
	h := m.Histogram()
	if h[1] != 2 || h[2] != 1 || h[3] != 3 {
		t.Fatalf("Histogram = %v", h)
	}
}

func TestMatrixEachPairOrder(t *testing.T) {
	m := NewMatrix(3, 1)
	var pairs [][2]int
	m.EachPair(func(i, j, d int) { pairs = append(pairs, [2]int{i, j}) })
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}}
	if len(pairs) != len(want) {
		t.Fatalf("EachPair visited %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("EachPair order %v, want %v", pairs, want)
		}
	}
}

func TestMatrixWithin(t *testing.T) {
	m := NewMatrix(3, 2)
	m.Set(0, 1, 2)
	if !m.Within(0, 1) {
		t.Fatal("distance 2 with L=2 should be within")
	}
	if m.Within(0, 2) {
		t.Fatal("Far pair reported within")
	}
}
