package apsp

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/graph"
)

// serializeTestGraph returns a deterministic sparse graph with several
// components, so stores hold a mix of real distances and Far cells.
func serializeTestGraph(n int, seed int64) *graph.Graph {
	g := graph.New(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

// TestSerializeRoundTrip: marshal/unmarshal equality for both store
// kinds across every engine — the snapshot a warm restart reloads must
// be indistinguishable from the store it replaces.
func TestSerializeRoundTrip(t *testing.T) {
	g := serializeTestGraph(60, 7)
	for _, L := range []int{1, 3, 6} {
		for _, engine := range []Engine{EngineAuto, EngineBFS, EngineFW, EnginePointer, EngineBit} {
			for _, kind := range []Kind{KindCompact, KindPacked} {
				s := Build(g, L, BuildOptions{Engine: engine, Kind: kind})
				data, err := MarshalStore(s)
				if err != nil {
					t.Fatalf("L=%d %v/%v: marshal: %v", L, engine, kind, err)
				}
				got, err := UnmarshalStore(data)
				if err != nil {
					t.Fatalf("L=%d %v/%v: unmarshal: %v", L, engine, kind, err)
				}
				if KindOf(got) != kind {
					t.Fatalf("L=%d %v/%v: round-trip changed kind to %v", L, engine, kind, KindOf(got))
				}
				if !Equal(s, got) {
					t.Fatalf("L=%d %v/%v: round-trip changed contents", L, engine, kind)
				}
			}
		}
	}
}

// TestSerializeRoundTripEmptyAndTiny: degenerate dimensions must
// survive the trip too.
func TestSerializeRoundTripEmptyAndTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		for _, kind := range []Kind{KindCompact, KindPacked} {
			s := NewStore(n, 2, kind)
			data, err := MarshalStore(s)
			if err != nil {
				t.Fatalf("n=%d %v: marshal: %v", n, kind, err)
			}
			got, err := UnmarshalStore(data)
			if err != nil {
				t.Fatalf("n=%d %v: unmarshal: %v", n, kind, err)
			}
			if !Equal(s, got) {
				t.Fatalf("n=%d %v: round-trip changed contents", n, kind)
			}
		}
	}
}

// TestUnmarshalRejectsCorruptInput: every corruption is an error (with
// a stable prefix), never a panic and never a silently wrong store.
func TestUnmarshalRejectsCorruptInput(t *testing.T) {
	g := serializeTestGraph(20, 3)
	compact, err := MarshalStore(Build(g, 3, BuildOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	packed, err := MarshalStore(Build(g, 3, BuildOptions{Kind: KindPacked}))
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(src []byte, f func(b []byte)) []byte {
		b := append([]byte(nil), src...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", compact[:storeHeaderLen-1]},
		{"truncated payload", compact[:len(compact)-1]},
		{"trailing data", append(append([]byte(nil), compact...), 0x02)},
		{"bad magic", mutate(compact, func(b []byte) { b[0] = 'X' })},
		{"bad version", mutate(compact, func(b []byte) { b[4] = 99 })},
		{"bad kind", mutate(compact, func(b []byte) { b[5] = 7 })},
		{"zero cell", mutate(compact, func(b []byte) { b[storeHeaderLen] = 0 })},
		{"cell above far", mutate(compact, func(b []byte) { b[storeHeaderLen] = 5 })}, // far = 4 at L=3
		{"huge n", mutate(compact, func(b []byte) { b[6], b[7], b[8] = 0xff, 0xff, 0xff })},
		{"packed zero cell", mutate(packed, func(b []byte) {
			b[storeHeaderLen], b[storeHeaderLen+1], b[storeHeaderLen+2], b[storeHeaderLen+3] = 0, 0, 0, 0
		})},
		{"packed truncated", packed[:len(packed)-2]},
	}
	for _, tc := range cases {
		if _, err := UnmarshalStore(tc.data); err == nil {
			t.Errorf("%s: corrupt snapshot accepted", tc.name)
		}
	}
}

// TestUnmarshalKindMismatch: the typed UnmarshalBinary methods refuse
// snapshots of the other backing instead of misreading them.
func TestUnmarshalKindMismatch(t *testing.T) {
	g := serializeTestGraph(10, 5)
	compact, _ := MarshalStore(Build(g, 2, BuildOptions{}))
	packed, _ := MarshalStore(Build(g, 2, BuildOptions{Kind: KindPacked}))
	var m Matrix
	if err := m.UnmarshalBinary(compact); err == nil || !strings.Contains(err.Error(), "not packed") {
		t.Errorf("Matrix accepted a compact snapshot (err=%v)", err)
	}
	var c CompactMatrix
	if err := c.UnmarshalBinary(packed); err == nil || !strings.Contains(err.Error(), "not compact") {
		t.Errorf("CompactMatrix accepted a packed snapshot (err=%v)", err)
	}
}

// TestCloneIndependence: mutating a clone never leaks into the
// original, for either backing. Run under -race in CI with concurrent
// readers of the original, mirroring how the registry shares one
// cached store with many anonymization runs that each clone it.
func TestCloneIndependence(t *testing.T) {
	g := serializeTestGraph(40, 11)
	for _, kind := range []Kind{KindCompact, KindPacked} {
		orig := Build(g, 3, BuildOptions{Kind: kind})
		want := Build(g, 3, BuildOptions{Kind: kind})

		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				clone := orig.Clone().(MutableStore)
				rng := rand.New(rand.NewSource(seed))
				for i := 0; i < 1000; i++ {
					u, v := rng.Intn(orig.N()), rng.Intn(orig.N())
					if u != v {
						clone.Set(u, v, 1+rng.Intn(clone.Far()))
					}
				}
			}(int64(w))
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Concurrent readers of the shared original: any write
				// reaching it would trip the race detector.
				orig.EachPair(func(i, j, d int) {})
			}()
		}
		wg.Wait()
		if !Equal(orig, want) {
			t.Fatalf("%v: mutating clones changed the original", kind)
		}
	}
}
