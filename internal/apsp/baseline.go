package apsp

import "repro/internal/graph"

// BoundedAPSPMapBaseline is the pre-CSR bounded-BFS engine, retained
// verbatim as the measured baseline of the perf trajectory
// (BENCH_*.json): it walks the mutable map adjacency, scans all n
// candidates per source, and resets the full distance row per source —
// the exact costs the CSR sweep removes. It produces bit-for-bit the
// same store as every other engine (the cross-validation tests
// include it) and exists only so the "CSR vs map adjacency" speedup
// stays reproducible instead of being a one-off prose number.
func BoundedAPSPMapBaseline(g *graph.Graph, L int, k Kind) MutableStore {
	n := g.N()
	m := newStoreAuto(n, L, k)
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for i := range dist {
		dist[i] = -1
	}
	for src := 0; src < n; src++ {
		g.BoundedBFSInto(src, L, dist, queue)
		for j := src + 1; j < n; j++ {
			if d := dist[j]; d > 0 {
				m.Set(src, j, d)
			}
		}
		for j := 0; j < n; j++ {
			dist[j] = -1
		}
	}
	return m
}
