package apsp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestInsertionDeltaPath(t *testing.T) {
	// Path 0-1-2-3; inserting 0-3 closes the cycle.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	m := BoundedAPSP(g, 3)
	changed := map[[2]int][2]int{}
	InsertionDelta(m, 0, 3, func(x, y, oldD, newD int) {
		changed[[2]int{x, y}] = [2]int{oldD, newD}
	})
	want := map[[2]int][2]int{
		{0, 3}: {3, 1},
		{0, 2}: {2, 2}, // unchanged, must be absent
	}
	if got, ok := changed[[2]int{0, 3}]; !ok || got != want[[2]int{0, 3}] {
		t.Fatalf("pair (0,3): got %v changed=%v", got, changed)
	}
	if _, ok := changed[[2]int{0, 2}]; ok {
		t.Fatal("pair (0,2) reported changed but distance is unchanged")
	}
	// d(1,3) stays 2 (1-2-3 vs 1-0-3 both length 2): no change.
	if _, ok := changed[[2]int{1, 3}]; ok {
		t.Fatal("pair (1,3) reported changed")
	}
}

func TestApplyInsertionMatchesRecompute(t *testing.T) {
	g := randomGraph(14, 0.15, 9)
	L := 3
	m := BoundedAPSP(g, L)
	// Pick an absent edge deterministically.
	var u, v int
	found := false
	for i := 0; i < 14 && !found; i++ {
		for j := i + 1; j < 14 && !found; j++ {
			if !g.HasEdge(i, j) {
				u, v = i, j
				found = true
			}
		}
	}
	if !found {
		t.Skip("graph is complete")
	}
	ApplyInsertion(m, u, v)
	g.AddEdge(u, v)
	if want := BoundedAPSP(g, L); !Equal(m, want) {
		t.Fatal("ApplyInsertion disagrees with full recomputation")
	}
}

func TestRemovalDeltaRestoresGraph(t *testing.T) {
	g := randomGraph(10, 0.3, 3)
	before := g.Clone()
	m := BoundedAPSP(g, 2)
	e := g.Edges()[0]
	RemovalDelta(g, m, e.U, e.V, nil, func(x, y, oldD, newD int) {})
	if !g.Equal(before) {
		t.Fatal("RemovalDelta left the graph mutated")
	}
}

func TestRemovalDeltaAbsentEdgePanics(t *testing.T) {
	g := graph.New(3)
	m := BoundedAPSP(g, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("RemovalDelta on absent edge did not panic")
		}
	}()
	RemovalDelta(g, m, 0, 1, nil, nil)
}

func TestApplyRemovalMatchesRecompute(t *testing.T) {
	g := randomGraph(14, 0.2, 21)
	L := 3
	m := BoundedAPSP(g, L)
	if g.M() == 0 {
		t.Skip("no edges")
	}
	e := g.Edges()[g.M()/2]
	ApplyRemoval(g, m, e.U, e.V, nil)
	g.RemoveEdge(e.U, e.V)
	if want := BoundedAPSP(g, L); !Equal(m, want) {
		t.Fatal("ApplyRemoval disagrees with full recomputation")
	}
}

func TestPropertyInsertionDeltaExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		L := 1 + rng.Intn(3)
		g := randomGraph(n, 0.2, seed)
		m := BoundedAPSP(g, L)
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			return true
		}
		ApplyInsertion(m, u, v)
		g.AddEdge(u, v)
		return Equal(m, BoundedAPSP(g, L))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRemovalDeltaExact(t *testing.T) {
	scratch := NewScratch(20)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(12)
		L := 1 + rng.Intn(3)
		g := randomGraph(n, 0.25, seed)
		if g.M() == 0 {
			return true
		}
		m := BoundedAPSP(g, L)
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		sc := scratch
		if n > 20 {
			sc = nil
		}
		ApplyRemoval(g, m, e.U, e.V, sc)
		g.RemoveEdge(e.U, e.V)
		return Equal(m, BoundedAPSP(g, L))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRemovalOnlyLengthens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		L := 1 + rng.Intn(3)
		g := randomGraph(n, 0.25, seed)
		if g.M() == 0 {
			return true
		}
		m := BoundedAPSP(g, L)
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		ok := true
		RemovalDelta(g, m, e.U, e.V, nil, func(x, y, oldD, newD int) {
			if newD <= oldD {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyInsertionOnlyShortens(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		L := 1 + rng.Intn(3)
		g := randomGraph(n, 0.2, seed)
		m := BoundedAPSP(g, L)
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			return true
		}
		ok := true
		InsertionDelta(m, u, v, func(x, y, oldD, newD int) {
			if newD >= oldD || newD > L {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAffectedRemovalSourcesCoverChanges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		L := 1 + rng.Intn(3)
		g := randomGraph(n, 0.25, seed)
		if g.M() == 0 {
			return true
		}
		m := BoundedAPSP(g, L)
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		sources := AffectedRemovalSources(m, e.U, e.V)
		inSources := make(map[int]bool)
		for _, s := range sources {
			inSources[s] = true
		}
		g.RemoveEdge(e.U, e.V)
		after := BoundedAPSP(g, L)
		g.AddEdge(e.U, e.V)
		ok := true
		m.EachPair(func(i, j, d int) {
			if after.Get(i, j) != d && !inSources[i] && !inSources[j] {
				ok = false // a changed pair escaped the affected set
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
