package apsp

import "repro/internal/graph"

// The bounded-BFS engines iterate a packed CSR snapshot of the graph
// (graph.CSR, built once per APSP build via Graph.Frozen) instead of
// the mutable map adjacency. The difference is the whole hot path: a
// CSR neighbor window is a contiguous int32 scan, where the map walk
// costs a hash iteration per visited vertex — and the legacy
// Neighbors() helper allocated and sorted a fresh slice per call. On
// top of the iteration form, two structural savings make the sweep
// scale to million-edge graphs:
//
//   - touched-only resets: the BFS returns its visit order, so the
//     distance row is cleaned in O(ball) instead of O(n) per source;
//   - ball-sized pair emission: only visited vertices are written to
//     the store, instead of scanning all n candidates per source.
//
// Together a full build costs O(sum of L-ball volumes), with zero
// allocations in the per-source loop (per-worker scratch is reused
// across sources; testing.AllocsPerRun asserts the bound).

// csrScratch holds one worker's reusable BFS buffers: the distance row
// (kept all -1 between sources) and the frontier queue.
type csrScratch struct {
	dist  []int32
	queue []int32
}

func newCSRScratch(n int) *csrScratch {
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	return &csrScratch{dist: dist, queue: make([]int32, 0, n)}
}

// boundedCSRRange runs one depth-L-truncated BFS per source in
// [lo, hi), recording each reached pair {s, v} with v > s into m.
// Distances are symmetric, so striping disjoint source ranges over
// workers covers the full triangle with exactly one writer per cell.
// The two built-in backings are written through their packed triangles
// directly; foreign Store implementations fall back to Set.
func boundedCSRRange(c *graph.CSR, L int, m MutableStore, lo, hi int, sc *csrScratch) {
	switch t := m.(type) {
	case *CompactMatrix:
		boundedCSRCells(c, L, t.data, lo, hi, sc)
	case *Matrix:
		boundedCSRCells(c, L, t.data, lo, hi, sc)
	default:
		for s := lo; s < hi; s++ {
			visited := c.BoundedBFSInto(s, L, sc.dist, sc.queue)
			for _, v := range visited {
				if int(v) > s {
					m.Set(s, int(v), int(sc.dist[v]))
				}
				sc.dist[v] = -1
			}
			sc.queue = visited[:0]
		}
	}
}

// boundedCSRCells is the allocation-free inner loop shared by both
// packed-triangle backings (uint8 and int32 cells): BFS, emit the
// visited half-row, undo the distance writes — all proportional to the
// ball size, never to n.
func boundedCSRCells[T uint8 | int32](c *graph.CSR, L int, cells []T, lo, hi int, sc *csrScratch) {
	n := c.N()
	for s := lo; s < hi; s++ {
		visited := c.BoundedBFSInto(s, L, sc.dist, sc.queue)
		// Row s of the packed upper triangle: index(s, v) = base + v.
		base := s*(2*n-s-1)/2 - s - 1
		for _, v := range visited {
			if int(v) > s {
				cells[base+int(v)] = T(sc.dist[v])
			}
			sc.dist[v] = -1
		}
		sc.queue = visited[:0]
	}
}
