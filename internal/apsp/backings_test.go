package apsp

import (
	"path/filepath"
	"testing"
)

// eachPairStream flattens a store's EachPair emission into one slice so
// two backings can be compared cell-for-cell — same pairs, same order,
// same distances, which is strictly stronger than Equal (it pins the
// iteration contract the opacity tracker depends on).
func eachPairStream(s Store) []int {
	out := make([]int, 0, 3*s.N())
	s.EachPair(func(i, j, d int) { out = append(out, i, j, d) })
	return out
}

// TestRMATBackingsEquivalenceMatrix extends the engines × kinds matrix
// to the out-of-core views: on RMAT graphs, the mapped and paged views
// of a streamed snapshot, an overlay over each of them, and an overlay
// over each heap kind all produce an EachPair stream identical to the
// compact oracle's.
func TestRMATBackingsEquivalenceMatrix(t *testing.T) {
	dir := t.TempDir()
	for _, L := range []int{2, 3} {
		g := rmatGraph(t, 150, 450, int64(10+L))
		oracle := BoundedAPSPKind(g, L, KindCompact)
		want := eachPairStream(oracle)

		check := func(name string, s Store) {
			t.Helper()
			got := eachPairStream(s)
			if len(got) != len(want) {
				t.Errorf("L=%d %s: %d cells, want %d", L, name, len(got)/3, len(want)/3)
				return
			}
			for k := range got {
				if got[k] != want[k] {
					t.Errorf("L=%d %s: EachPair diverges from compact oracle at flat index %d", L, name, k)
					return
				}
			}
		}

		check("packed", BoundedAPSPKind(g, L, KindPacked))
		check("overlay/compact", NewOverlay(oracle))
		check("overlay/packed", NewOverlay(BoundedAPSPKind(g, L, KindPacked)))

		for _, kind := range []Kind{KindCompact, KindPacked} {
			path := filepath.Join(dir, kind.String()+".store")
			if err := BuildToFile(path, g, L, BuildOptions{Kind: kind}); err != nil {
				t.Fatal(err)
			}
			mapped, err := OpenMappedStore(path)
			if err != nil {
				t.Fatal(err)
			}
			check("mapped/"+kind.String(), mapped)
			check("overlay/mapped/"+kind.String(), NewOverlay(mapped))

			// A deliberately tiny budget: the whole matrix must still be
			// byte-identical when every page is faulted in and evicted on
			// the way through.
			paged, err := OpenPagedStore(path, NewPageCache(pageSize))
			if err != nil {
				t.Fatal(err)
			}
			check("paged/"+kind.String(), paged)
			check("overlay/paged/"+kind.String(), NewOverlay(paged))

			mapped.Close()
			paged.Close()
		}
	}
}

// TestKindPagedPlumbing: parse/fold/NewStore behave like the mapped
// alias — "paged" parses, folds to the payload's heap kind for cache
// keys, and cannot be built from scratch.
func TestKindPagedPlumbing(t *testing.T) {
	k, err := ParseKind("paged")
	if err != nil || k != KindPaged {
		t.Fatalf("ParseKind(paged) = %v, %v", k, err)
	}
	if k.String() != "paged" {
		t.Fatalf("KindPaged.String() = %q", k.String())
	}
	if got := EffectiveKind(KindPaged, 3); got != KindCompact {
		t.Fatalf("EffectiveKind(paged, 3) = %v, want compact", got)
	}
	if got := EffectiveKind(KindPaged, MaxCompactL+1); got != KindPacked {
		t.Fatalf("EffectiveKind(paged, big L) = %v, want packed", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewStore(KindPaged) did not panic")
		}
	}()
	NewStore(4, 2, KindPaged)
}
