package apsp

import (
	"fmt"
	"os"
	"testing"
)

// RMAT build benchmarks: the perf-trajectory suite behind BENCH_*.json
// (cmd/lopbench runs these in-process). The default sizes finish in CI;
// the 100k-vertex / ~1M-edge headline runs only when LOPBENCH_LARGE=1,
// because the full build is a multi-minute, multi-gigabyte job.

const benchL = 3

// benchSizes returns the (n, m) grid to benchmark: the CI scale
// always, the paper-scale point only when LOPBENCH_LARGE=1.
func benchSizes() [][2]int {
	sizes := [][2]int{{5_000, 50_000}}
	if os.Getenv("LOPBENCH_LARGE") == "1" {
		sizes = append(sizes, [2]int{100_000, 1_000_000})
	}
	return sizes
}

func benchName(n, m int) string {
	return fmt.Sprintf("n%d_m%d", n, m)
}

func BenchmarkBuildRMATCSR(b *testing.B) {
	for _, sz := range benchSizes() {
		g := rmatGraph(b, sz[0], sz[1], 42)
		b.Run(benchName(sz[0], g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BoundedAPSPKind(g, benchL, KindCompact)
			}
		})
	}
}

func BenchmarkBuildRMATMapBaseline(b *testing.B) {
	for _, sz := range benchSizes() {
		g := rmatGraph(b, sz[0], sz[1], 42)
		b.Run(benchName(sz[0], g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BoundedAPSPMapBaseline(g, benchL, KindCompact)
			}
		})
	}
}

func BenchmarkBuildRMATBitBFS(b *testing.B) {
	for _, sz := range benchSizes() {
		g := rmatGraph(b, sz[0], sz[1], 42)
		b.Run(benchName(sz[0], g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				BitBFSKind(g, benchL, KindCompact)
			}
		})
	}
}

// BenchmarkCSRFrozen isolates the snapshot cost the CSR engines pay up
// front — it must stay a small fraction of the sweep it accelerates.
func BenchmarkCSRFrozen(b *testing.B) {
	for _, sz := range benchSizes() {
		g := rmatGraph(b, sz[0], sz[1], 42)
		b.Run(benchName(sz[0], g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Frozen()
			}
		})
	}
}

// BenchmarkBFSInnerLoop measures one bounded-BFS source sweep plus its
// touched-only reset on a prebuilt CSR — the engine inner loop. The
// headline claim is the allocs/op column: zero.
func BenchmarkBFSInnerLoop(b *testing.B) {
	for _, sz := range benchSizes() {
		g := rmatGraph(b, sz[0], sz[1], 42)
		c := g.Frozen()
		n := c.N()
		dist := make([]int32, n)
		for i := range dist {
			dist[i] = -1
		}
		queue := make([]int32, 0, n)
		b.Run(benchName(sz[0], g.M()), func(b *testing.B) {
			b.ReportAllocs()
			src := 0
			for i := 0; i < b.N; i++ {
				visited := c.BoundedBFSInto(src, benchL, dist, queue)
				for _, v := range visited {
					dist[v] = -1
				}
				queue = visited[:0]
				src++
				if src == n {
					src = 0
				}
			}
		})
	}
}

var benchStoreSink Store

// BenchmarkBuildAuto is the engine-selection default the server runs.
func BenchmarkBuildAuto(b *testing.B) {
	for _, sz := range benchSizes() {
		g := rmatGraph(b, sz[0], sz[1], 42)
		b.Run(benchName(sz[0], g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				benchStoreSink = Build(g, benchL, BuildOptions{})
			}
		})
	}
}
