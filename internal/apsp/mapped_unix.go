//go:build unix

package apsp

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only and returns the bytes plus the munmap
// release function. Empty files cannot be mapped (and cannot hold a
// snapshot header anyway), so they are rejected before the syscall.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size < storeHeaderLen {
		return nil, nil, fmt.Errorf("file is %d bytes, smaller than the %d-byte snapshot header", size, storeHeaderLen)
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("file size %d overflows the address space", size)
	}
	raw, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("mmap: %w", err)
	}
	return raw, func() error { return syscall.Munmap(raw) }, nil
}
