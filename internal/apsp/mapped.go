package apsp

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
)

// MappedStore is a read-only Store backed directly by the bytes of a
// snapshot file (the "LOPS" format of serialize.go), normally a
// memory-mapped region. Opening one never materializes the distance
// triangle in the Go heap: Get reads straight out of the mapping, the
// kernel pages cells in on demand, and a registry restart over a
// multi-gigabyte store directory costs page-table setup instead of a
// full read-and-decode pass.
//
// The tradeoff against UnmarshalStore is validation depth: the header,
// dimensions, and payload length are checked on open, but the cells
// themselves are NOT range-checked — scanning them would fault in the
// entire file and forfeit the zero-copy win. A corrupt cell therefore
// surfaces as an out-of-range distance at read time rather than an
// open-time error; callers that need full validation should decode
// with UnmarshalStore instead.
//
// A mapped store implements only the read-side Store contract — it has
// no Set, so the type system itself keeps a shared, persistent
// artifact from being written. Mutable consumers wrap it in an Overlay
// (sparse, O(dirty) memory) or take Clone(), which decodes into an
// ordinary heap store of the payload's kind.
type MappedStore struct {
	n, l int
	kind Kind   // payload backing recorded in the header
	raw  []byte // the full snapshot: header + payload
	data []byte // payload view: raw[storeHeaderLen:]

	closeOnce sync.Once
	unmap     func() error // releases the mapping; nil for heap-backed opens
}

// OpenMappedStore maps the snapshot file at path and returns the store
// view over it. On platforms with mmap the file contents are borrowed
// zero-copy; elsewhere the file is read into memory (same semantics,
// no paging win). The mapping is released by Close or, failing that,
// by a finalizer when the store becomes unreachable — never while a
// reachable store could still serve a Get.
func OpenMappedStore(path string) (*MappedStore, error) {
	raw, unmap, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("apsp: mapping store snapshot %s: %w", path, err)
	}
	s, err := NewMappedStore(raw, unmap)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, fmt.Errorf("apsp: %s: %w", path, err)
	}
	return s, nil
}

// NewMappedStore wraps raw snapshot bytes (header + payload) in a
// read-only store without copying them. unmap, when non-nil, is called
// exactly once to release the underlying region — on Close or via
// finalizer. The caller must not mutate raw afterwards.
func NewMappedStore(raw []byte, unmap func() error) (*MappedStore, error) {
	k, n, l, err := decodeStoreHeader(raw)
	if err != nil {
		return nil, err
	}
	payload := raw[storeHeaderLen:]
	cells := cellCount(uint64(n))
	var want uint64
	switch k {
	case KindCompact:
		want = cells
	case KindPacked:
		want = 4 * cells
	}
	if uint64(len(payload)) != want {
		return nil, fmt.Errorf("apsp: mapped snapshot payload is %d bytes, want %d for n=%d %v cells", len(payload), want, n, k)
	}
	s := &MappedStore{n: n, l: l, kind: k, raw: raw, data: payload, unmap: unmap}
	if unmap != nil {
		runtime.SetFinalizer(s, func(m *MappedStore) { m.Close() })
	}
	return s, nil
}

// Close releases the underlying mapping. It is idempotent; reads after
// Close panic (the payload view is gone).
func (m *MappedStore) Close() error {
	var err error
	m.closeOnce.Do(func() {
		m.raw, m.data = nil, nil
		if m.unmap != nil {
			runtime.SetFinalizer(m, nil)
			err = m.unmap()
		}
	})
	return err
}

// N returns the number of vertices.
func (m *MappedStore) N() int { return m.n }

// L returns the distance threshold the store is capped at.
func (m *MappedStore) L() int { return m.l }

// Far returns the sentinel stored for pairs beyond the cap.
func (m *MappedStore) Far() int { return m.l + 1 }

// Kind reports the payload backing recorded in the snapshot header
// (compact or packed) — the kind a Clone decodes into.
func (m *MappedStore) Kind() Kind { return m.kind }

// index returns the packed upper-triangle offset of the unordered pair
// {i, j}; the layout is identical to Matrix and CompactMatrix.
func (m *MappedStore) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	if i == j || i < 0 || j >= m.n {
		panic(fmt.Sprintf("apsp: pair (%d, %d) out of range for n=%d", i, j, m.n))
	}
	return i*(2*m.n-i-1)/2 + (j - i - 1)
}

// Get returns the capped distance for the unordered pair {i, j}.
func (m *MappedStore) Get(i, j int) int {
	idx := m.index(i, j)
	if m.kind == KindCompact {
		return int(m.data[idx])
	}
	return int(int32(binary.LittleEndian.Uint32(m.data[4*idx:])))
}

// EachPair calls fn for every unordered pair i < j in row-major order.
func (m *MappedStore) EachPair(fn func(i, j, d int)) {
	idx := 0
	if m.kind == KindCompact {
		for i := 0; i < m.n; i++ {
			for j := i + 1; j < m.n; j++ {
				fn(i, j, int(m.data[idx]))
				idx++
			}
		}
		return
	}
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			fn(i, j, int(int32(binary.LittleEndian.Uint32(m.data[idx:]))))
			idx += 4
		}
	}
}

// Clone decodes the snapshot into an independent, mutable heap store
// of the payload's kind. This is the path an anonymization run takes
// when seeded from a mapped store: the run mutates its private copy
// while the mapping keeps serving other readers. Unlike Get, the
// decode validates every cell, so a corrupt snapshot cannot leak past
// the first Clone.
func (m *MappedStore) Clone() Store {
	s, err := UnmarshalStore(m.raw)
	if err != nil {
		panic(fmt.Sprintf("apsp: cloning mapped store: %v", err))
	}
	return s
}
