package opacity

import (
	"repro/internal/apsp"
)

// Tracker maintains, for every vertex-pair type, the count of pairs at
// geodesic distance <= L (the paper's L matrix, Figure 5a) and derives
// per-type opacities and the graph maximum (Figure 5c and Algorithm 1).
// It supports O(1) incremental updates as pairs cross the <=L threshold,
// which is what makes the greedy heuristics' candidate scans affordable.
type Tracker struct {
	types  TypeAssigner
	l      int
	counts []int
}

// NewTracker builds a tracker from an L-capped distance store, counting
// every typed pair within L (the loop of Algorithm 1, lines 3-6). Any
// Store backing works; the tracker keeps no reference to the store
// afterward, so trackers built from a compact and a packed store of the
// same graph are identical.
func NewTracker(types TypeAssigner, m apsp.Store) *Tracker {
	t := &Tracker{
		types:  types,
		l:      m.L(),
		counts: make([]int, types.NumTypes()),
	}
	l := m.L()
	m.EachPair(func(i, j, d int) {
		if d <= l {
			if id := types.TypeOf(i, j); id >= 0 {
				t.counts[id]++
			}
		}
	})
	return t
}

// L returns the distance threshold.
func (t *Tracker) L() int { return t.l }

// Types returns the underlying type assigner.
func (t *Tracker) Types() TypeAssigner { return t.types }

// Count returns the current <=L pair count of the given type.
func (t *Tracker) Count(id int) int { return t.counts[id] }

// Counts returns a copy of the per-type <=L counts (the paper's L
// matrix in dense-ID form).
func (t *Tracker) Counts() []int { return append([]int(nil), t.counts...) }

// SetCounts overwrites the counts; used to roll back trial evaluations.
func (t *Tracker) SetCounts(counts []int) { copy(t.counts, counts) }

// OpacityOf returns LO_G(T) for a type ID (Definition 2). Types with an
// empty pair population have opacity 0 by convention (nothing can be
// disclosed about a type with no pairs).
func (t *Tracker) OpacityOf(id int) float64 {
	total := t.types.Total(id)
	if total == 0 {
		return 0
	}
	return float64(t.counts[id]) / float64(total)
}

// Update adjusts the counts for one pair whose capped distance changed
// from oldD to newD. Distances beyond L (or Far) may be passed as any
// value exceeding L.
func (t *Tracker) Update(x, y, oldD, newD int) {
	wasIn := oldD <= t.l
	isIn := newD <= t.l
	if wasIn == isIn {
		return
	}
	id := t.types.TypeOf(x, y)
	if id < 0 {
		return
	}
	if isIn {
		t.counts[id]++
	} else {
		t.counts[id]--
	}
}

// Evaluation is the pair of quantities the greedy heuristics order
// candidate moves by: the graph's maximum opacity (Algorithm 1's output)
// and the paper's N(p), the number of types attaining that maximum.
type Evaluation struct {
	MaxLO      float64
	Population int
}

// Better reports whether e is strictly preferable to o under the paper's
// lexicographic criterion: lower max opacity first, then a smaller
// population of types attaining it.
func (e Evaluation) Better(o Evaluation) bool {
	if e.MaxLO != o.MaxLO {
		return e.MaxLO < o.MaxLO
	}
	return e.Population < o.Population
}

// Ties reports whether e and o are indistinguishable to the greedy
// criterion (equal opacity and population).
func (e Evaluation) Ties(o Evaluation) bool {
	return e.MaxLO == o.MaxLO && e.Population == o.Population
}

// Evaluate computes the current maximum opacity and its population
// (Algorithm 1 lines 7-12 plus the N function of Section 5.2). The scan
// is O(#types); type populations are tiny next to |V|^2 in practice.
func (t *Tracker) Evaluate() Evaluation {
	maxLO := 0.0
	pop := 0
	for id := range t.counts {
		total := t.types.Total(id)
		if total == 0 {
			continue
		}
		lo := float64(t.counts[id]) / float64(total)
		switch {
		case lo > maxLO:
			maxLO = lo
			pop = 1
		case lo == maxLO:
			pop++
		}
	}
	return Evaluation{MaxLO: maxLO, Population: pop}
}

// EvaluateWith computes the evaluation that WOULD result from applying
// the given per-pair distance changes, without mutating the tracker.
// deltas is the scratch count slice to use (len NumTypes, will be
// overwritten); pass nil to allocate.
func (t *Tracker) EvaluateWith(changes []PairChange, deltas []int) Evaluation {
	if deltas == nil {
		deltas = make([]int, len(t.counts))
	} else {
		for i := range deltas {
			deltas[i] = 0
		}
	}
	for _, c := range changes {
		wasIn := c.OldD <= t.l
		isIn := c.NewD <= t.l
		if wasIn == isIn {
			continue
		}
		id := t.types.TypeOf(c.X, c.Y)
		if id < 0 {
			continue
		}
		if isIn {
			deltas[id]++
		} else {
			deltas[id]--
		}
	}
	maxLO := 0.0
	pop := 0
	for id := range t.counts {
		total := t.types.Total(id)
		if total == 0 {
			continue
		}
		lo := float64(t.counts[id]+deltas[id]) / float64(total)
		switch {
		case lo > maxLO:
			maxLO = lo
			pop = 1
		case lo == maxLO:
			pop++
		}
	}
	return Evaluation{MaxLO: maxLO, Population: pop}
}

// PairChange records a capped-distance change for one vertex pair.
type PairChange struct {
	X, Y       int
	OldD, NewD int
}
