package opacity

import (
	"fmt"
	"sort"
)

// LabelTypes assigns every vertex a categorical label (community,
// department, role ...) and types each vertex pair by its unordered
// label pair — the node-labeled setting of Zhou & Pei (ICDE 2008) cast
// into the paper's Definition 1. Compared with a generic classifier
// function, LabelTypes computes type populations in O(n + #labels²)
// from the label counts instead of scanning all n(n-1)/2 pairs.
type LabelTypes struct {
	vertexLabel []int    // interned label per vertex
	names       []string // label id -> name
	numTypes    int
	totals      []int
	typeLabels  []string
}

// NewLabelTypes interns the per-vertex label strings and precomputes
// the pair-type census: for label counts c_i, the type {i, i} has
// c_i*(c_i-1)/2 pairs and the type {i, j}, i < j, has c_i*c_j.
func NewLabelTypes(labels []string) *LabelTypes {
	index := map[string]int{}
	lt := &LabelTypes{vertexLabel: make([]int, len(labels))}
	for v, name := range labels {
		id, ok := index[name]
		if !ok {
			id = len(lt.names)
			index[name] = id
			lt.names = append(lt.names, name)
		}
		lt.vertexLabel[v] = id
	}
	k := len(lt.names)
	counts := make([]int, k)
	for _, id := range lt.vertexLabel {
		counts[id]++
	}
	lt.numTypes = k * (k + 1) / 2
	lt.totals = make([]int, lt.numTypes)
	lt.typeLabels = make([]string, lt.numTypes)
	for i := 0; i < k; i++ {
		for j := i; j < k; j++ {
			id := lt.pairID(i, j)
			if i == j {
				lt.totals[id] = counts[i] * (counts[i] - 1) / 2
			} else {
				lt.totals[id] = counts[i] * counts[j]
			}
			a, b := lt.names[i], lt.names[j]
			if a > b {
				a, b = b, a
			}
			lt.typeLabels[id] = fmt.Sprintf("{%s,%s}", a, b)
		}
	}
	return lt
}

// pairID flattens the unordered label pair (i <= j) exactly like
// DegreeTypes flattens degree pairs.
func (lt *LabelTypes) pairID(i, j int) int {
	if i > j {
		i, j = j, i
	}
	k := len(lt.names)
	return i*k - i*(i-1)/2 + (j - i)
}

// TypeOf returns the type of the pair {u, v}.
func (lt *LabelTypes) TypeOf(u, v int) int {
	return lt.pairID(lt.vertexLabel[u], lt.vertexLabel[v])
}

// NumTypes returns the number of unordered label-pair types.
func (lt *LabelTypes) NumTypes() int { return lt.numTypes }

// Total returns |T| for the type id, counting all pairs of that type.
func (lt *LabelTypes) Total(id int) int { return lt.totals[id] }

// Label renders the type as "{a,b}" with names in lexical order.
func (lt *LabelTypes) Label(id int) string { return lt.typeLabels[id] }

// Labels returns the distinct label names in first-seen order.
func (lt *LabelTypes) Labels() []string {
	out := make([]string, len(lt.names))
	copy(out, lt.names)
	return out
}

// SortedLabels returns the distinct label names sorted.
func (lt *LabelTypes) SortedLabels() []string {
	out := lt.Labels()
	sort.Strings(out)
	return out
}

var _ TypeAssigner = (*LabelTypes)(nil)
