package opacity

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/apsp"
	"repro/internal/graph"
)

func TestLabelTypesCensus(t *testing.T) {
	// 3 "A", 2 "B", 1 "C".
	lt := NewLabelTypes([]string{"A", "A", "B", "C", "B", "A"})
	if lt.NumTypes() != 6 { // 3 labels -> 6 unordered pairs
		t.Fatalf("NumTypes=%d, want 6", lt.NumTypes())
	}
	wantTotals := map[string]int{
		"{A,A}": 3, // C(3,2)
		"{A,B}": 6, // 3*2
		"{A,C}": 3,
		"{B,B}": 1,
		"{B,C}": 2,
		"{C,C}": 0,
	}
	seen := map[string]int{}
	for id := 0; id < lt.NumTypes(); id++ {
		seen[lt.Label(id)] = lt.Total(id)
	}
	for label, want := range wantTotals {
		if seen[label] != want {
			t.Errorf("total[%s]=%d, want %d", label, seen[label], want)
		}
	}
}

func TestLabelTypesTypeOfSymmetric(t *testing.T) {
	lt := NewLabelTypes([]string{"x", "y", "x", "z"})
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if lt.TypeOf(u, v) != lt.TypeOf(v, u) {
				t.Fatalf("TypeOf(%d,%d) != TypeOf(%d,%d)", u, v, v, u)
			}
		}
	}
}

// Property: totals computed from label counts must equal a brute-force
// census over all pairs, and every pair's TypeOf must be in range.
func TestLabelTypesQuickCensusMatchesBruteForce(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 2 + int(nRaw%30)
		k := 1 + int(kRaw%5)
		rng := rand.New(rand.NewSource(seed))
		labels := make([]string, n)
		for i := range labels {
			labels[i] = fmt.Sprintf("L%d", rng.Intn(k))
		}
		lt := NewLabelTypes(labels)
		brute := make([]int, lt.NumTypes())
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				id := lt.TypeOf(u, v)
				if id < 0 || id >= lt.NumTypes() {
					return false
				}
				brute[id]++
			}
		}
		for id := 0; id < lt.NumTypes(); id++ {
			if lt.Total(id) != brute[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// LabelTypes plugged into the tracker must agree with a direct
// per-type count over the distance matrix.
func TestLabelTypesWithTracker(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{
		graph.E(0, 1), graph.E(1, 2), graph.E(2, 3), graph.E(3, 4), graph.E(4, 5),
	})
	labels := []string{"a", "b", "a", "b", "a", "b"}
	lt := NewLabelTypes(labels)
	m := apsp.BoundedAPSP(g, 2)
	tr := NewTracker(lt, m)
	ev := tr.Evaluate()

	// Brute force: count pairs within 2 per label pair.
	brute := make([]int, lt.NumTypes())
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			if apsp.Within(m, u, v) {
				brute[lt.TypeOf(u, v)]++
			}
		}
	}
	maxLO := 0.0
	for id := 0; id < lt.NumTypes(); id++ {
		if lt.Total(id) == 0 {
			continue
		}
		if lo := float64(brute[id]) / float64(lt.Total(id)); lo > maxLO {
			maxLO = lo
		}
	}
	if ev.MaxLO != maxLO {
		t.Fatalf("tracker maxLO=%v, brute force %v", ev.MaxLO, maxLO)
	}
}

func TestLabelTypesLabelsAccessors(t *testing.T) {
	lt := NewLabelTypes([]string{"z", "a", "z"})
	if got := lt.Labels(); len(got) != 2 || got[0] != "z" || got[1] != "a" {
		t.Fatalf("Labels()=%v", got)
	}
	if got := lt.SortedLabels(); got[0] != "a" || got[1] != "z" {
		t.Fatalf("SortedLabels()=%v", got)
	}
}
