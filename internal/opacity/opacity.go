package opacity

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apsp"
	"repro/internal/graph"
)

// MaxLO is the paper's Algorithm 1 as a one-shot convenience: it computes
// the graph's maximum L-opacity over all degree-pair types, using the
// given ORIGINAL degree vector (which may differ from g's current degrees
// after anonymizing mutations). Pass degrees == nil to use g's own
// degrees (i.e., when g is the original graph).
func MaxLO(g *graph.Graph, degrees []int, L int) float64 {
	return MaxLOWith(g, degrees, L, apsp.BuildOptions{})
}

// MaxLOWith is MaxLO with an explicit distance engine/store selection
// (the serving path exposes the choice per request).
func MaxLOWith(g *graph.Graph, degrees []int, L int, build apsp.BuildOptions) float64 {
	if degrees == nil {
		degrees = g.Degrees()
	}
	types := NewDegreeTypes(degrees)
	m := apsp.Build(g, L, build)
	return NewTracker(types, m).Evaluate().MaxLO
}

// Satisfies reports whether g is L-opaque with respect to theta under the
// algorithmic convention of the paper's Algorithms 4 and 5: the loop runs
// while LO(G') > theta, so LO <= theta satisfies.
func Satisfies(g *graph.Graph, degrees []int, L int, theta float64) bool {
	return MaxLO(g, degrees, L) <= theta
}

// TypeReport describes one vertex-pair type in a Report.
type TypeReport struct {
	Label   string
	Total   int // |T|, including unreachable pairs
	Within  int // pairs at distance <= L
	Opacity float64
}

// Report is the full opacity matrix of a graph (the paper's Figure 5c)
// plus the graph-level summary.
type Report struct {
	L      int
	MaxLO  float64
	N      int // population of types attaining MaxLO
	ByType []TypeReport
}

// NewReport computes a full opacity report for g with the given original
// degrees (nil for g's own).
func NewReport(g *graph.Graph, degrees []int, L int) Report {
	return NewReportWith(g, degrees, L, apsp.BuildOptions{})
}

// NewReportWith is NewReport with an explicit distance engine/store
// selection.
func NewReportWith(g *graph.Graph, degrees []int, L int, build apsp.BuildOptions) Report {
	if degrees == nil {
		degrees = g.Degrees()
	}
	return NewReportFromStore(degrees, apsp.Build(g, L, build))
}

// NewReportFromStore computes the report over a prebuilt distance
// store — the serving path caches stores per registered graph and
// reuses them across requests, skipping the APSP build entirely.
// degrees must be the original degree vector the pair types are drawn
// from; the store is only read, so it may be shared concurrently.
func NewReportFromStore(degrees []int, m apsp.Store) Report {
	types := NewDegreeTypes(degrees)
	tr := NewTracker(types, m)
	ev := tr.Evaluate()
	rep := Report{L: m.L(), MaxLO: ev.MaxLO, N: ev.Population}
	for id := 0; id < types.NumTypes(); id++ {
		if types.Total(id) == 0 {
			continue
		}
		rep.ByType = append(rep.ByType, TypeReport{
			Label:   types.Label(id),
			Total:   types.Total(id),
			Within:  tr.Count(id),
			Opacity: tr.OpacityOf(id),
		})
	}
	sort.Slice(rep.ByType, func(i, j int) bool { return rep.ByType[i].Label < rep.ByType[j].Label })
	return rep
}

// String renders the report as an aligned table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "L=%d  maxLO=%.4f  N(maxLO)=%d\n", r.L, r.MaxLO, r.N)
	fmt.Fprintf(&b, "%-12s %8s %8s %9s\n", "type", "within", "total", "opacity")
	for _, t := range r.ByType {
		fmt.Fprintf(&b, "%-12s %8d %8d %9.4f\n", t.Label, t.Within, t.Total, t.Opacity)
	}
	return b.String()
}
