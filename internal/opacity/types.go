// Package opacity implements the paper's privacy model: vertex-pair
// types (Definition 1), the per-type L-opacity ratio (Definition 2), and
// the graph-level maximum opacity (Definition 3, computed by the paper's
// Algorithm 1), together with an incremental tracker that keeps per-type
// counts current across edge mutations without full recomputation.
package opacity

import (
	"fmt"
	"sort"
)

// TypeAssigner classifies unordered vertex pairs into types of interest
// (paper Definition 1). Implementations must be stable: the type of a
// pair never changes across graph mutations, because the paper's
// publication model fixes types from properties of the ORIGINAL graph
// (by default, original degrees).
type TypeAssigner interface {
	// TypeOf returns the type ID of the unordered pair {u, v}, or -1 if
	// the pair belongs to no type (pairs "indifferent to us").
	TypeOf(u, v int) int
	// NumTypes returns the number of type IDs; IDs are dense in
	// [0, NumTypes()).
	NumTypes() int
	// Total returns |T|: the number of distinct vertex pairs of type id,
	// counting unreachable pairs (Definition 2's denominator).
	Total(id int) int
	// Label returns a human-readable name for the type, e.g. "P{3,4}".
	Label(id int) string
}

// DegreeTypes is the paper's default type system: the type of a pair is
// the unordered pair of the two vertices' ORIGINAL degrees. All degree
// combinations occurring in the graph define types.
type DegreeTypes struct {
	degrees   []int // original degree per vertex, frozen
	distinct  []int // sorted distinct degree values
	degIndex  map[int]int
	nv        []int // vertex count per distinct degree
	numTypes  int
	totals    []int
	labels    []string
	typeOfDeg func(di, dj int) int
}

// NewDegreeTypes builds the degree-based type system from the original
// degree vector (paper Section 4: "a pair type T is associated with a
// certain pair of degrees"). The degree vector is copied and frozen.
func NewDegreeTypes(degrees []int) *DegreeTypes {
	d := &DegreeTypes{degrees: append([]int(nil), degrees...)}
	seen := map[int]int{}
	for _, deg := range degrees {
		seen[deg]++
	}
	d.distinct = make([]int, 0, len(seen))
	for deg := range seen {
		d.distinct = append(d.distinct, deg)
	}
	sort.Ints(d.distinct)
	d.degIndex = make(map[int]int, len(d.distinct))
	d.nv = make([]int, len(d.distinct))
	for i, deg := range d.distinct {
		d.degIndex[deg] = i
		d.nv[i] = seen[deg]
	}
	k := len(d.distinct)
	d.numTypes = k * (k + 1) / 2
	d.totals = make([]int, d.numTypes)
	d.labels = make([]string, d.numTypes)
	for gi := 0; gi < k; gi++ {
		for hi := gi; hi < k; hi++ {
			id := d.pairID(gi, hi)
			if gi == hi {
				d.totals[id] = d.nv[gi] * (d.nv[gi] - 1) / 2
			} else {
				d.totals[id] = d.nv[gi] * d.nv[hi]
			}
			d.labels[id] = fmt.Sprintf("P{%d,%d}", d.distinct[gi], d.distinct[hi])
		}
	}
	return d
}

// pairID packs an ordered index pair gi <= hi over k distinct degrees
// into a dense ID.
func (d *DegreeTypes) pairID(gi, hi int) int {
	k := len(d.distinct)
	return gi*k - gi*(gi-1)/2 + (hi - gi)
}

// TypeOf implements TypeAssigner using original degrees.
func (d *DegreeTypes) TypeOf(u, v int) int {
	gi := d.degIndex[d.degrees[u]]
	hi := d.degIndex[d.degrees[v]]
	if gi > hi {
		gi, hi = hi, gi
	}
	return d.pairID(gi, hi)
}

// NumTypes implements TypeAssigner.
func (d *DegreeTypes) NumTypes() int { return d.numTypes }

// Total implements TypeAssigner.
func (d *DegreeTypes) Total(id int) int { return d.totals[id] }

// Label implements TypeAssigner.
func (d *DegreeTypes) Label(id int) string { return d.labels[id] }

// Degrees returns the frozen original degree vector.
func (d *DegreeTypes) Degrees() []int {
	return append([]int(nil), d.degrees...)
}

// DegreePair returns the unordered degree pair a type ID stands for.
func (d *DegreeTypes) DegreePair(id int) (g, h int) {
	k := len(d.distinct)
	gi := 0
	for ; gi < k; gi++ {
		first := d.pairID(gi, gi)
		last := d.pairID(gi, k-1)
		if id >= first && id <= last {
			return d.distinct[gi], d.distinct[gi+(id-first)]
		}
	}
	panic(fmt.Sprintf("opacity: invalid type id %d", id))
}

// FuncTypes adapts an arbitrary classification function into a
// TypeAssigner, supporting the paper's generality claim that "our privacy
// model definition covers any way of classifying nodes into types".
type FuncTypes struct {
	fn     func(u, v int) int
	totals []int
	labels []string
}

// NewFuncTypes wraps fn over numTypes types with the given totals. labels
// may be nil, in which case types are named "T<i>".
func NewFuncTypes(fn func(u, v int) int, totals []int, labels []string) *FuncTypes {
	if labels == nil {
		labels = make([]string, len(totals))
		for i := range labels {
			labels[i] = fmt.Sprintf("T%d", i)
		}
	}
	if len(labels) != len(totals) {
		panic("opacity: labels/totals length mismatch")
	}
	return &FuncTypes{fn: fn, totals: totals, labels: labels}
}

// TypeOf implements TypeAssigner.
func (f *FuncTypes) TypeOf(u, v int) int { return f.fn(u, v) }

// NumTypes implements TypeAssigner.
func (f *FuncTypes) NumTypes() int { return len(f.totals) }

// Total implements TypeAssigner.
func (f *FuncTypes) Total(id int) int { return f.totals[id] }

// Label implements TypeAssigner.
func (f *FuncTypes) Label(id int) string { return f.labels[id] }
