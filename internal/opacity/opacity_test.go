package opacity

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/apsp"
	"repro/internal/fixture"
	"repro/internal/graph"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestDegreeTypesFigure1Census(t *testing.T) {
	types := NewDegreeTypes(fixture.Figure1Degrees())
	// Degrees present: 1, 2, 3, 4 with NV = 1, 2, 1, 3.
	wantTotals := map[string]int{
		"P{1,1}": 0, "P{1,2}": 2, "P{1,3}": 1, "P{1,4}": 3,
		"P{2,2}": 1, "P{2,3}": 2, "P{2,4}": 6,
		"P{3,3}": 0, "P{3,4}": 3,
		"P{4,4}": 3,
	}
	if types.NumTypes() != len(wantTotals) {
		t.Fatalf("NumTypes = %d, want %d", types.NumTypes(), len(wantTotals))
	}
	got := map[string]int{}
	for id := 0; id < types.NumTypes(); id++ {
		got[types.Label(id)] = types.Total(id)
	}
	for label, total := range wantTotals {
		if got[label] != total {
			t.Errorf("total of %s = %d, want %d", label, got[label], total)
		}
	}
}

func TestDegreeTypesTypeOfSymmetric(t *testing.T) {
	types := NewDegreeTypes(fixture.Figure1Degrees())
	for u := 0; u < 7; u++ {
		for v := 0; v < 7; v++ {
			if u != v && types.TypeOf(u, v) != types.TypeOf(v, u) {
				t.Fatalf("TypeOf(%d,%d) != TypeOf(%d,%d)", u, v, v, u)
			}
		}
	}
}

func TestDegreePairRoundTrip(t *testing.T) {
	types := NewDegreeTypes(fixture.Figure1Degrees())
	for id := 0; id < types.NumTypes(); id++ {
		g, h := types.DegreePair(id)
		if want := typeLabel(g, h); types.Label(id) != want {
			t.Errorf("id %d: DegreePair gives (%d,%d) but label is %s", id, g, h, types.Label(id))
		}
	}
}

func typeLabel(g, h int) string {
	return "P{" + itoa(g) + "," + itoa(h) + "}"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}

func TestTrackerFigure1LMatrix(t *testing.T) {
	g := fixture.Figure1()
	types := NewDegreeTypes(fixture.Figure1Degrees())
	tr := NewTracker(types, apsp.BoundedAPSP(g, 1))
	want := fixture.Figure5LMatrix()
	for id := 0; id < types.NumTypes(); id++ {
		dg, dh := types.DegreePair(id)
		if got, wanted := tr.Count(id), want[[2]int{dg, dh}]; got != wanted {
			t.Errorf("L-count of P{%d,%d} = %d, want %d (paper Figure 5a)", dg, dh, got, wanted)
		}
	}
}

func TestTrackerFigure1OpacityMatrix(t *testing.T) {
	g := fixture.Figure1()
	types := NewDegreeTypes(fixture.Figure1Degrees())
	tr := NewTracker(types, apsp.BoundedAPSP(g, 1))
	want := fixture.Figure5Opacity()
	for id := 0; id < types.NumTypes(); id++ {
		dg, dh := types.DegreePair(id)
		wanted, interesting := want[[2]int{dg, dh}]
		got := tr.OpacityOf(id)
		if interesting {
			if math.Abs(got-wanted) > 1e-12 {
				t.Errorf("opacity of P{%d,%d} = %v, want %v (paper Figure 5c)", dg, dh, got, wanted)
			}
		}
	}
	ev := tr.Evaluate()
	if ev.MaxLO != 1.0 {
		t.Errorf("maxLO = %v, want 1 (paper Section 5.1.1)", ev.MaxLO)
	}
	// Types at opacity 1 for L=1: P{1,3} (edge 6-7) and P{4,4} (triangle
	// 2,3,5 fully connected).
	if ev.Population != 2 {
		t.Errorf("N(maxLO) = %d, want 2", ev.Population)
	}
}

func TestMaxLOFigure1AcrossL(t *testing.T) {
	g := fixture.Figure1()
	// With L >= diameter (3), every connected pair counts; all pairs are
	// connected, so every nonempty type reaches opacity 1.
	if got := MaxLO(g, nil, 3); got != 1 {
		t.Fatalf("MaxLO(L=3) = %v, want 1", got)
	}
	if got := MaxLO(g, nil, 1); got != 1 {
		t.Fatalf("MaxLO(L=1) = %v, want 1", got)
	}
}

func TestSatisfies(t *testing.T) {
	g := fixture.Figure1()
	if Satisfies(g, nil, 1, 0.5) {
		t.Fatal("Figure 1 graph should not satisfy theta=0.5 at L=1")
	}
	if !Satisfies(g, nil, 1, 1.0) {
		t.Fatal("any graph satisfies theta=1")
	}
	empty := graph.New(5)
	if !Satisfies(empty, g.Degrees()[:5], 1, 0.0) {
		t.Fatal("edgeless graph must satisfy theta=0")
	}
}

func TestTrackerUpdateCrossings(t *testing.T) {
	g := fixture.Figure1()
	types := NewDegreeTypes(fixture.Figure1Degrees())
	tr := NewTracker(types, apsp.BoundedAPSP(g, 1))
	id := types.TypeOf(5, 6) // degrees 3 and 1: the edge 6-7 in paper terms
	before := tr.Count(id)
	tr.Update(5, 6, 1, 2) // leaves the <=L set
	if tr.Count(id) != before-1 {
		t.Fatal("Update did not decrement on leaving")
	}
	tr.Update(5, 6, 2, 1) // re-enters
	if tr.Count(id) != before {
		t.Fatal("Update did not increment on entering")
	}
	tr.Update(5, 6, 2, 3) // no crossing
	if tr.Count(id) != before {
		t.Fatal("Update changed count without a crossing")
	}
}

func TestEvaluationOrdering(t *testing.T) {
	a := Evaluation{MaxLO: 0.5, Population: 3}
	b := Evaluation{MaxLO: 0.6, Population: 1}
	c := Evaluation{MaxLO: 0.5, Population: 2}
	if !a.Better(b) {
		t.Fatal("lower maxLO must win")
	}
	if !c.Better(a) {
		t.Fatal("equal maxLO, lower population must win")
	}
	if !a.Ties(Evaluation{MaxLO: 0.5, Population: 3}) {
		t.Fatal("identical evaluations must tie")
	}
	if a.Better(a) {
		t.Fatal("evaluation strictly better than itself")
	}
}

func TestEvaluateWithMatchesCommit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		L := 1 + rng.Intn(3)
		g := randomGraph(n, 0.25, seed)
		if g.M() == 0 {
			return true
		}
		types := NewDegreeTypes(g.Degrees())
		m := apsp.BoundedAPSP(g, L)
		tr := NewTracker(types, m)
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		var changes []PairChange
		apsp.RemovalDelta(g, m, e.U, e.V, nil, func(x, y, oldD, newD int) {
			changes = append(changes, PairChange{X: x, Y: y, OldD: oldD, NewD: newD})
		})
		trial := tr.EvaluateWith(changes, nil)
		// Commit for real and compare.
		for _, c := range changes {
			tr.Update(c.X, c.Y, c.OldD, c.NewD)
		}
		return trial == tr.Evaluate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyOpacityBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12)
		L := 1 + rng.Intn(4)
		g := randomGraph(n, 0.3, seed)
		types := NewDegreeTypes(g.Degrees())
		tr := NewTracker(types, apsp.BoundedAPSP(g, L))
		for id := 0; id < types.NumTypes(); id++ {
			lo := tr.OpacityOf(id)
			if lo < 0 || lo > 1 {
				return false
			}
		}
		ev := tr.Evaluate()
		return ev.MaxLO >= 0 && ev.MaxLO <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMaxLOMonotoneInL(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(12, 0.2, seed)
		prev := 0.0
		for L := 1; L <= 4; L++ {
			lo := MaxLO(g, nil, L)
			if lo < prev-1e-12 {
				return false // growing L can only include more pairs per type
			}
			if lo > prev {
				prev = lo
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFuncTypes(t *testing.T) {
	// Two types: pairs (0,x) are type 0; everything else type 1.
	fn := func(u, v int) int {
		if u == 0 || v == 0 {
			return 0
		}
		return 1
	}
	types := NewFuncTypes(fn, []int{3, 3}, nil)
	if types.NumTypes() != 2 || types.Total(0) != 3 || types.Label(1) != "T1" {
		t.Fatal("FuncTypes accessors wrong")
	}
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	tr := NewTracker(types, apsp.BoundedAPSP(g, 1))
	if tr.Count(0) != 1 || tr.Count(1) != 1 {
		t.Fatalf("counts = %d, %d, want 1, 1", tr.Count(0), tr.Count(1))
	}
}

func TestFuncTypesLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched labels did not panic")
		}
	}()
	NewFuncTypes(func(u, v int) int { return 0 }, []int{1}, []string{"a", "b"})
}

func TestReportFigure1(t *testing.T) {
	g := fixture.Figure1()
	rep := NewReport(g, nil, 1)
	if rep.MaxLO != 1 || rep.N != 2 {
		t.Fatalf("report maxLO=%v N=%d, want 1, 2", rep.MaxLO, rep.N)
	}
	s := rep.String()
	for _, want := range []string{"P{3,4}", "P{4,4}", "maxLO=1.0000"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestReportSkipsEmptyTypes(t *testing.T) {
	g := fixture.Figure1()
	rep := NewReport(g, nil, 1)
	for _, tr := range rep.ByType {
		if tr.Total == 0 {
			t.Errorf("empty type %s included in report", tr.Label)
		}
	}
}

func TestTrackerAccessors(t *testing.T) {
	g := fixture.Figure1()
	degrees := fixture.Figure1Degrees()
	types := NewDegreeTypes(degrees)
	m := apsp.BoundedAPSP(g, 1)
	tr := NewTracker(types, m)
	if tr.L() != 1 {
		t.Fatalf("L() = %d", tr.L())
	}
	if tr.Types() != TypeAssigner(types) {
		t.Fatal("Types() did not return the assigner")
	}
	counts := tr.Counts()
	if len(counts) != types.NumTypes() {
		t.Fatalf("Counts() length %d, want %d", len(counts), types.NumTypes())
	}
	// Counts returns a copy: mutating it must not affect the tracker.
	id := types.TypeOf(1, 2) // a {4,4} pair
	before := tr.Count(id)
	counts[id] = 999
	if tr.Count(id) != before {
		t.Fatal("Counts() aliases tracker state")
	}
	// SetCounts restores a snapshot.
	snap := tr.Counts()
	tr.Update(1, 2, 1, 2) // pretend the pair left the <=L set
	if tr.Count(id) == before {
		t.Fatal("Update had no effect")
	}
	tr.SetCounts(snap)
	if tr.Count(id) != before {
		t.Fatal("SetCounts did not restore")
	}
}

func TestDegreeTypesDegreesCopy(t *testing.T) {
	degrees := fixture.Figure1Degrees()
	types := NewDegreeTypes(degrees)
	got := types.Degrees()
	if len(got) != len(degrees) {
		t.Fatalf("Degrees() length %d", len(got))
	}
	got[0] = -5
	if types.Degrees()[0] == -5 {
		t.Fatal("Degrees() aliases internal state")
	}
	for i, d := range types.Degrees() {
		if d != degrees[i] {
			t.Fatalf("Degrees()[%d] = %d, want %d", i, d, degrees[i])
		}
	}
}
