package attack

import (
	"testing"

	"repro/internal/graph"
)

// The paper's Figure 2 illustrates the theta parameter: an adversary
// maps a criminal to candidate vertices {C1, C2} and a target to
// {S1, S2, S3}; the confidence that target and criminal are linked
// within L is the fraction of candidate pairs within distance L —
// 100% when every suspect reaches both criminals, 50% when every
// suspect reaches only C1, 0% when none reaches either. These tests
// build the three panel graphs (degree classes standing in for the
// candidate sets, per the paper's degree-knowledge adversary) and
// check LinkageConfidence reproduces each panel's number exactly.

// figure2a: suspects S0..S2 (degree 2) adjacent to both criminals
// (degree 3) -> theta = 100%.
func figure2a() *graph.Graph {
	// 0,1,2 = suspects; 3,4 = criminals.
	return graph.FromEdges(5, []graph.Edge{
		graph.E(0, 3), graph.E(0, 4),
		graph.E(1, 3), graph.E(1, 4),
		graph.E(2, 3), graph.E(2, 4),
	})
}

// figure2b: suspects adjacent to C1 only; C2's degree is topped up by
// a hub and two pendants, out of reach at L = 1 -> theta = 50%.
func figure2b() *graph.Graph {
	// 0,1,2 = suspects (degree 2: C1 + hub); 3 = C1 (degree 3);
	// 4 = C2 (degree 3: hub + two pendants); 5 = hub (degree 4);
	// 6,7 = pendants (degree 1).
	return graph.FromEdges(8, []graph.Edge{
		graph.E(0, 3), graph.E(1, 3), graph.E(2, 3),
		graph.E(0, 5), graph.E(1, 5), graph.E(2, 5),
		graph.E(4, 5), graph.E(4, 6), graph.E(4, 7),
	})
}

// figure2c: suspects form a triangle (degree 2), criminals live in a
// separate component (degree 3 via an edge plus two pendants each)
// -> theta = 0%.
func figure2c() *graph.Graph {
	// 0,1,2 = suspect triangle; 3,4 = criminals; 5-8 = pendants.
	return graph.FromEdges(9, []graph.Edge{
		graph.E(0, 1), graph.E(1, 2), graph.E(0, 2),
		graph.E(3, 4),
		graph.E(3, 5), graph.E(3, 6),
		graph.E(4, 7), graph.E(4, 8),
	})
}

func TestFigure2Panels(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"panel-a theta=100%", figure2a(), 1.0},
		{"panel-b theta=50%", figure2b(), 0.5},
		{"panel-c theta=0%", figure2c(), 0.0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Sanity: the degree classes must be exactly the candidate
			// sets the figure describes.
			suspects, criminals := 0, 0
			for v := 0; v < c.g.N(); v++ {
				switch c.g.Degree(v) {
				case 2:
					suspects++
				case 3:
					criminals++
				}
			}
			if suspects != 3 || criminals != 2 {
				t.Fatalf("candidate sets wrong: %d suspects (want 3), %d criminals (want 2)", suspects, criminals)
			}
			adv, err := New(c.g, c.g.Degrees())
			if err != nil {
				t.Fatal(err)
			}
			inf := adv.LinkageConfidence(2, 3, 1)
			if inf.Confidence != c.want {
				t.Fatalf("confidence = %v, want %v (within=%d total=%d)",
					inf.Confidence, c.want, inf.Within, inf.Total)
			}
		})
	}
}

// Panel b at L = 2: the hub brings every suspect within two hops of
// C2 as well, so the 50% panel becomes a 100% inference — exactly the
// effect the paper's L parameter exists to control.
func TestFigure2PanelBLTwo(t *testing.T) {
	adv, err := New(figure2b(), figure2b().Degrees())
	if err != nil {
		t.Fatal(err)
	}
	if got := adv.LinkageConfidence(2, 3, 2).Confidence; got != 1.0 {
		t.Fatalf("L=2 confidence = %v, want 1.0", got)
	}
}
