// Package attack implements the paper's adversary model (Sections 1, 3
// and 4): an attacker who knows the ORIGINAL degree of each target
// individual and tries to infer, from the published graph, whether two
// targets are linked by a path of length at most L.
//
// The package answers the operational question behind the privacy
// definition: given background knowledge "Alice has degree d1, Bob has
// degree d2", what is the adversary's confidence that Alice and Bob are
// within distance L? With the paper's uniform-candidate semantics this
// confidence is exactly the L-opacity of the degree-pair type {d1, d2},
// so an L-opaque graph with threshold theta bounds every such inference
// by theta. Tests verify that equivalence against package opacity, and
// the linkage experiments use it to demonstrate attacks before and
// after anonymization.
package attack

import (
	"fmt"
	"sort"

	"repro/internal/apsp"
	"repro/internal/graph"
)

// Adversary holds the published graph together with the background
// knowledge (original degree of every vertex) the paper assumes.
type Adversary struct {
	published *graph.Graph
	degrees   []int
	// byDegree maps an original degree to the candidate vertex set.
	byDegree map[int][]int
	// frozen is the CSR snapshot of the published graph, built lazily on
	// the first BFS query. The published graph never mutates after New,
	// so the snapshot stays valid for the adversary's lifetime.
	frozen *graph.CSR
	// dist caches BFS distance rows from vertices we have queried.
	dist map[int][]int32
	// store, when non-nil, is a prebuilt L-capped distance store of the
	// published graph; queries with L <= store.L() read it instead of
	// running per-source BFS. See UseStore.
	store apsp.Store
}

// New builds an adversary for a published graph and the original degree
// vector (the publication model releases original degrees alongside the
// anonymized graph). The degree slice length must equal the vertex
// count.
func New(published *graph.Graph, originalDegrees []int) (*Adversary, error) {
	if published == nil {
		return nil, fmt.Errorf("attack: nil graph")
	}
	if len(originalDegrees) != published.N() {
		return nil, fmt.Errorf("attack: %d degrees for %d vertices", len(originalDegrees), published.N())
	}
	byDegree := make(map[int][]int)
	for v, d := range originalDegrees {
		byDegree[d] = append(byDegree[d], v)
	}
	return &Adversary{
		published: published,
		degrees:   append([]int(nil), originalDegrees...),
		byDegree:  byDegree,
		dist:      make(map[int][]int32),
	}, nil
}

// UseStore equips the adversary with a prebuilt L-capped distance
// store of the published graph (as cached by the serving layer's
// registry). Queries whose L does not exceed the store's cap then read
// capped distances from the store — zero BFS — while larger L falls
// back to the BFS path; answers are identical either way, because a
// capped entry is exact whenever it is <= L. The store is only read,
// so it may be shared concurrently with other consumers.
func (a *Adversary) UseStore(s apsp.Store) error {
	if s != nil && s.N() != a.published.N() {
		return fmt.Errorf("attack: store covers %d vertices, published graph has %d", s.N(), a.published.N())
	}
	a.store = s
	return nil
}

// Candidates returns the vertices whose original degree matches the
// background knowledge about a target — the adversary's candidate set.
// The slice is shared; callers must not modify it.
func (a *Adversary) Candidates(degree int) []int {
	return a.byDegree[degree]
}

// distances returns (computing and caching on demand) the BFS distance
// row of src in the published graph, with -1 for unreachable. Rows are
// computed on the CSR snapshot — contiguous int32 window scans instead
// of map-bucket walks — which is what makes the exhaustive
// MaxConfidence sweep tolerable on large graphs.
func (a *Adversary) distances(src int) []int32 {
	if row, ok := a.dist[src]; ok {
		return row
	}
	if a.frozen == nil {
		a.frozen = a.published.Frozen()
	}
	row := a.frozen.BFSDistances(src)
	a.dist[src] = row
	return row
}

// Inference is the outcome of a linkage query.
type Inference struct {
	// DegreeA and DegreeB is the background knowledge used.
	DegreeA, DegreeB int
	// L is the path-length bound of the query.
	L int
	// Within counts candidate pairs at distance <= L in the published
	// graph; Total counts all candidate pairs (the vertex-pair type
	// population, including unreachable pairs).
	Within, Total int
	// Confidence = Within / Total: the probability that two uniformly
	// drawn distinct candidates are within L. Zero when no candidate
	// pair exists.
	Confidence float64
}

// String formats the inference for reports.
func (inf Inference) String() string {
	return fmt.Sprintf("targets deg(%d),deg(%d) within %d hops: %d/%d = %.1f%%",
		inf.DegreeA, inf.DegreeB, inf.L, inf.Within, inf.Total, 100*inf.Confidence)
}

// LinkageConfidence computes the adversary's confidence that two
// individuals with original degrees d1 and d2 are connected by a path
// of length at most L in the published graph. This equals the
// L-opacity of the {d1, d2} vertex-pair type, which is what Definition
// 3 bounds by theta.
func (a *Adversary) LinkageConfidence(d1, d2, L int) Inference {
	inf := Inference{DegreeA: d1, DegreeB: d2, L: L}
	ca, cb := a.Candidates(d1), a.Candidates(d2)
	// count tallies candidate partners of u. Candidate sets of distinct
	// degrees are disjoint and the same-degree case excludes u itself,
	// so u never pairs with itself. A capped store answers d <= L
	// exactly whenever L is within its cap; otherwise fall back to the
	// cached BFS rows.
	useStore := a.store != nil && L <= a.store.L()
	count := func(u int, partners []int) {
		if useStore {
			for _, v := range partners {
				inf.Total++
				if a.store.Get(u, v) <= L {
					inf.Within++
				}
			}
			return
		}
		row := a.distances(u)
		for _, v := range partners {
			inf.Total++
			if d := row[v]; d >= 0 && int(d) <= L {
				inf.Within++
			}
		}
	}
	if d1 == d2 {
		// Unordered pairs of distinct candidates within one set.
		for i, u := range ca {
			count(u, ca[i+1:])
		}
	} else {
		for _, u := range ca {
			count(u, cb)
		}
	}
	if inf.Total > 0 {
		inf.Confidence = float64(inf.Within) / float64(inf.Total)
	}
	return inf
}

// MaxConfidence scans every populated degree pair and returns the
// highest linkage confidence — by construction, the graph's maximum
// L-opacity — together with the inference that attains it. Ties go to
// the lexicographically smallest degree pair, keeping reports
// deterministic.
func (a *Adversary) MaxConfidence(L int) Inference {
	degrees := make([]int, 0, len(a.byDegree))
	for d := range a.byDegree {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	best := Inference{L: L}
	for i, d1 := range degrees {
		for _, d2 := range degrees[i:] {
			inf := a.LinkageConfidence(d1, d2, L)
			if inf.Total == 0 {
				continue
			}
			if inf.Confidence > best.Confidence {
				best = inf
			}
		}
	}
	return best
}

// VulnerablePairs returns every degree-pair inference whose confidence
// exceeds theta, sorted by descending confidence (ties by degree pair).
// An empty result certifies the graph L-opaque with respect to theta
// under degree background knowledge.
func (a *Adversary) VulnerablePairs(L int, theta float64) []Inference {
	degrees := make([]int, 0, len(a.byDegree))
	for d := range a.byDegree {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	var out []Inference
	for i, d1 := range degrees {
		for _, d2 := range degrees[i:] {
			inf := a.LinkageConfidence(d1, d2, L)
			if inf.Total > 0 && inf.Confidence > theta {
				out = append(out, inf)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].DegreeA != out[j].DegreeA {
			return out[i].DegreeA < out[j].DegreeA
		}
		return out[i].DegreeB < out[j].DegreeB
	})
	return out
}

// IdentityCandidates reports how well the graph hides identity (the
// k-anonymity style guarantee the paper contrasts with): the number of
// vertices sharing each occupied degree, sorted ascending. The first
// element is the worst case; a value of 1 means some individual is
// uniquely re-identifiable from degree knowledge alone.
func (a *Adversary) IdentityCandidates() []int {
	out := make([]int, 0, len(a.byDegree))
	for _, vs := range a.byDegree {
		out = append(out, len(vs))
	}
	sort.Ints(out)
	return out
}
