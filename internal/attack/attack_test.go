package attack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/anonymize"
	"repro/internal/fixture"
	"repro/internal/graph"
	"repro/internal/opacity"
)

func figure1Adversary(t *testing.T) *Adversary {
	t.Helper()
	g := fixture.Figure1()
	a, err := New(g, fixture.Figure1Degrees())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := graph.New(3)
	if _, err := New(g, []int{1, 2}); err == nil {
		t.Fatal("short degree vector accepted")
	}
}

func TestCandidates(t *testing.T) {
	a := figure1Adversary(t)
	// Figure 1 degrees: {2, 4, 4, 2, 4, 3, 1}.
	if got := a.Candidates(4); len(got) != 3 {
		t.Fatalf("Candidates(4) = %v, want 3 vertices", got)
	}
	if got := a.Candidates(1); len(got) != 1 || got[0] != 6 {
		t.Fatalf("Candidates(1) = %v, want [6]", got)
	}
	if got := a.Candidates(9); got != nil {
		t.Fatalf("Candidates(9) = %v, want nil", got)
	}
}

func TestLinkageConfidenceMatchesPaperIntroduction(t *testing.T) {
	a := figure1Adversary(t)
	// Charles and Agatha (degree 4 and 4): the three candidates form a
	// triangle, so the adjacency inference is certain.
	if inf := a.LinkageConfidence(4, 4, 1); inf.Confidence != 1 || inf.Total != 3 {
		t.Fatalf("deg(4)-deg(4) adjacency: %+v", inf)
	}
	// Timothy (3) and Cynthia (2): connected within 2 hops with
	// certainty (both degree-2 candidates are within 2 of vertex 5).
	if inf := a.LinkageConfidence(3, 2, 2); inf.Confidence != 1 {
		t.Fatalf("deg(3)-deg(2) within 2: %+v", inf)
	}
	// Oliver (1) and Timothy (3): unique candidates, adjacent.
	if inf := a.LinkageConfidence(1, 3, 1); inf.Confidence != 1 || inf.Total != 1 {
		t.Fatalf("deg(1)-deg(3) adjacency: %+v", inf)
	}
	// Empty candidate set: zero confidence, zero total.
	if inf := a.LinkageConfidence(9, 4, 1); inf.Total != 0 || inf.Confidence != 0 {
		t.Fatalf("missing degree: %+v", inf)
	}
}

func TestLinkageConfidenceEqualsTypeOpacity(t *testing.T) {
	// The adversary's confidence for degrees (d1, d2) must equal the
	// L-opacity of type {d1, d2} per Definition 2 — on the published
	// graph with its own degrees as knowledge.
	rng := rand.New(rand.NewSource(3))
	property := func(lRaw uint8) bool {
		n := 8 + rng.Intn(12)
		g := graph.New(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		L := 1 + int(lRaw%4)
		degrees := g.Degrees()
		a, err := New(g, degrees)
		if err != nil {
			return false
		}
		rep := opacity.NewReport(g, degrees, L)
		max := a.MaxConfidence(L)
		return abs(max.Confidence-rep.MaxLO) < 1e-12
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxConfidenceFigure1(t *testing.T) {
	a := figure1Adversary(t)
	max := a.MaxConfidence(1)
	if max.Confidence != 1 {
		t.Fatalf("MaxConfidence = %+v, want 1", max)
	}
	// Deterministic tie-break: the smallest degree pair with full
	// confidence is {1,3} (Oliver-Timothy).
	if max.DegreeA != 1 || max.DegreeB != 3 {
		t.Fatalf("max attained at {%d,%d}, want {1,3}", max.DegreeA, max.DegreeB)
	}
}

func TestVulnerablePairsShrinkAfterAnonymization(t *testing.T) {
	g := fixture.Figure1()
	degrees := fixture.Figure1Degrees()
	before, err := New(g, degrees)
	if err != nil {
		t.Fatal(err)
	}
	vulnBefore := before.VulnerablePairs(1, 0.5)
	if len(vulnBefore) == 0 {
		t.Fatal("Figure 1 should have vulnerable pairs at theta=0.5")
	}
	// Sorted by descending confidence.
	for i := 1; i < len(vulnBefore); i++ {
		if vulnBefore[i].Confidence > vulnBefore[i-1].Confidence {
			t.Fatal("VulnerablePairs not sorted")
		}
	}

	res, err := anonymize.Run(g, anonymize.Options{
		L: 1, Theta: 0.5, Heuristic: anonymize.Removal, LookAhead: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("anonymization failed: %v", res.FinalLO)
	}
	after, err := New(res.Graph, degrees) // degrees stay ORIGINAL
	if err != nil {
		t.Fatal(err)
	}
	if vuln := after.VulnerablePairs(1, 0.5); len(vuln) != 0 {
		t.Fatalf("vulnerable pairs remain after anonymization: %v", vuln)
	}
	if max := after.MaxConfidence(1); max.Confidence > 0.5 {
		t.Fatalf("MaxConfidence after = %v", max.Confidence)
	}
}

func TestIdentityCandidates(t *testing.T) {
	a := figure1Adversary(t)
	got := a.IdentityCandidates()
	// Degrees {2,4,4,2,4,3,1}: candidate-set sizes 1 (deg 1), 1 (deg 3),
	// 2 (deg 2), 3 (deg 4), sorted ascending.
	want := []int{1, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("IdentityCandidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IdentityCandidates = %v, want %v", got, want)
		}
	}
}

func TestInferenceString(t *testing.T) {
	inf := Inference{DegreeA: 2, DegreeB: 4, L: 1, Within: 1, Total: 2, Confidence: 0.5}
	if got := inf.String(); got != "targets deg(2),deg(4) within 1 hops: 1/2 = 50.0%" {
		t.Fatalf("String() = %q", got)
	}
}

func TestDistanceCacheConsistency(t *testing.T) {
	a := figure1Adversary(t)
	// Repeated queries must agree (cache correctness).
	first := a.LinkageConfidence(2, 4, 2)
	second := a.LinkageConfidence(2, 4, 2)
	if first != second {
		t.Fatalf("repeated query differs: %+v vs %+v", first, second)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
