package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// CommunityModel builds an n-vertex graph of roughly m edges organized
// into dense communities: vertices are partitioned into blocks whose
// internal edges appear with probability p (so the average clustering
// coefficient lands near p), and any remaining edge budget is spent on
// uniformly random inter-community edges. Community sizes are drawn with
// a coefficient of variation of about one half, which spreads degrees
// the way the paper's sampled web and collaboration graphs do.
//
// The result has close to — not exactly — m edges; callers needing an
// exact count should follow with AdjustEdgeCount.
func CommunityModel(n, m int, p float64, rng *rand.Rand) *graph.Graph {
	if n <= 0 || p <= 0 || p > 1 {
		panic(fmt.Sprintf("gen: invalid community model n=%d p=%v", n, p))
	}
	g := graph.New(n)
	if m == 0 {
		return g
	}
	avgDeg := 2 * float64(m) / float64(n)
	// Intra-community degree of a member is ~p*(s-1); size communities
	// so that intra edges provide most of the budget.
	sbar := avgDeg/p + 1
	if sbar < 3 {
		sbar = 3
	}
	if sbar > float64(n) {
		sbar = float64(n)
	}
	// Partition vertices into communities with spread sizes.
	var blocks [][]int
	v := 0
	for v < n {
		s := int(sbar * (0.5 + rng.Float64())) // cv ~ 0.29 around sbar
		if s < 2 {
			s = 2
		}
		if v+s > n {
			s = n - v
		}
		block := make([]int, s)
		for i := range block {
			block[i] = v + i
		}
		blocks = append(blocks, block)
		v += s
	}
	// Dense intra-community blocks. All blocks are filled even if the
	// budget overshoots slightly; callers trim with AdjustEdgeCount.
	for _, block := range blocks {
		for i := 0; i < len(block); i++ {
			for j := i + 1; j < len(block); j++ {
				if rng.Float64() < p {
					g.AddEdge(block[i], block[j])
				}
			}
		}
	}
	// Spend any remainder on random inter-community edges.
	for tries := 0; g.M() < m && tries < 50*m; tries++ {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	return g
}
