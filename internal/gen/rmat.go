package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// RMATParams are the recursive quadrant probabilities of the R-MAT
// model (Chakrabarti, Zhan, Faloutsos; SDM 2004). They must be
// non-negative and sum to 1. The classic "web graph" setting is
// a=0.57, b=0.19, c=0.19, d=0.05, which produces the heavy-tailed
// degree distributions of crawl data — the regime where the paper's
// Google and Berkeley-Stanford samples live, and where the simpler
// community generators under-disperse degree (see EXPERIMENTS.md's
// table3 note).
type RMATParams struct {
	A, B, C, D float64
}

// WebRMAT returns the canonical heavy-tail parameterization.
func WebRMAT() RMATParams { return RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05} }

func (p RMATParams) validate() error {
	if p.A < 0 || p.B < 0 || p.C < 0 || p.D < 0 {
		return fmt.Errorf("gen: negative R-MAT parameter %+v", p)
	}
	sum := p.A + p.B + p.C + p.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("gen: R-MAT parameters sum to %v, want 1", sum)
	}
	return nil
}

// RMAT generates a simple undirected graph with n vertices (n rounded
// up to a power of two internally, then truncated back) and m distinct
// edges by recursively dropping each edge into one of four adjacency
// quadrants with probabilities (A, B, C, D). Self-loops and duplicates
// are redrawn, so the result is a simple graph with exactly m edges
// unless the quadrant skew makes that impossible within the attempt
// budget, in which case it returns as many as it found (callers can
// top up with AdjustEdgeCount).
func RMAT(n, m int, p RMATParams, rng *rand.Rand) (*graph.Graph, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("gen: RMAT needs n >= 2, got %d", n)
	}
	max := n * (n - 1) / 2
	if m > max {
		return nil, fmt.Errorf("gen: RMAT m=%d exceeds %d possible edges", m, max)
	}
	// levels = ceil(log2(n)).
	levels := 0
	for 1<<levels < n {
		levels++
	}
	g := graph.New(n)
	// Noise keeps the distribution from collapsing onto a few cells on
	// small graphs (standard "smoothed" R-MAT): each level jitters the
	// quadrant probabilities by up to ±10% and renormalizes.
	attempts := 0
	budget := 100 * m
	for g.M() < m && attempts < budget {
		attempts++
		u, v := 0, 0
		span := 1 << levels
		for span > 1 {
			a, b, c, _ := jitter(p, rng)
			r := rng.Float64()
			span /= 2
			switch {
			case r < a:
				// top-left: both stay
			case r < a+b:
				v += span
			case r < a+b+c:
				u += span
			default:
				u += span
				v += span
			}
		}
		if u == v || u >= n || v >= n {
			continue
		}
		g.AddEdge(u, v)
	}
	return g, nil
}

// jitter perturbs each quadrant probability by ±10% and renormalizes.
func jitter(p RMATParams, rng *rand.Rand) (a, b, c, d float64) {
	a = p.A * (0.9 + 0.2*rng.Float64())
	b = p.B * (0.9 + 0.2*rng.Float64())
	c = p.C * (0.9 + 0.2*rng.Float64())
	d = p.D * (0.9 + 0.2*rng.Float64())
	sum := a + b + c + d
	return a / sum, b / sum, c / sum, d / sum
}
