package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/metrics"
)

func TestGNMExactEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := GNM(50, 200, rng)
	if g.N() != 50 || g.M() != 200 {
		t.Fatalf("got n=%d m=%d", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGNMTooManyEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GNM with impossible m did not panic")
		}
	}()
	GNM(4, 7, rand.New(rand.NewSource(1)))
}

func TestGNMComplete(t *testing.T) {
	g := GNM(5, 10, rand.New(rand.NewSource(2)))
	if g.M() != 10 {
		t.Fatalf("complete graph edges = %d", g.M())
	}
}

func TestGNPExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if g := GNP(20, 0, rng); g.M() != 0 {
		t.Fatal("GNP(p=0) has edges")
	}
	if g := GNP(20, 1, rng); g.M() != 190 {
		t.Fatalf("GNP(p=1) edges = %d, want 190", g.M())
	}
}

func TestGNPDeterministic(t *testing.T) {
	a := GNP(30, 0.2, rand.New(rand.NewSource(7)))
	b := GNP(30, 0.2, rand.New(rand.NewSource(7)))
	if !a.Equal(b) {
		t.Fatal("same seed produced different GNP graphs")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := BarabasiAlbert(200, 4, 3, rng)
	if g.N() != 200 {
		t.Fatalf("n = %d", g.N())
	}
	// m0-clique plus k edges per newcomer.
	wantM := 6 + (200-4)*3
	if g.M() != wantM {
		t.Fatalf("m = %d, want %d", g.M(), wantM)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Preferential attachment yields a heavy tail: max degree well above
	// the mean.
	stats := metrics.Degrees(g)
	if float64(stats.Max) < 2*stats.Average {
		t.Fatalf("BA graph has no hub: max=%d avg=%v", stats.Max, stats.Average)
	}
}

func TestBarabasiAlbertInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid BA parameters did not panic")
		}
	}()
	BarabasiAlbert(10, 2, 3, rand.New(rand.NewSource(1)))
}

func TestWattsStrogatzLattice(t *testing.T) {
	// beta = 0 leaves a perfect ring lattice: every degree is k.
	g := WattsStrogatz(30, 4, 0, rand.New(rand.NewSource(5)))
	for v := 0; v < 30; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("lattice degree of %d = %d, want 4", v, g.Degree(v))
		}
	}
	// Ring lattice with k=4 has clustering 0.5.
	if acc := metrics.AverageClustering(g); math.Abs(acc-0.5) > 1e-9 {
		t.Fatalf("lattice ACC = %v, want 0.5", acc)
	}
}

func TestWattsStrogatzRewiredKeepsEdgeCount(t *testing.T) {
	g := WattsStrogatz(40, 6, 0.3, rand.New(rand.NewSource(6)))
	if g.M() != 40*3 {
		t.Fatalf("WS edge count = %d, want %d", g.M(), 120)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWattsStrogatzInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd k did not panic")
		}
	}()
	WattsStrogatz(10, 3, 0.1, rand.New(rand.NewSource(1)))
}

func TestConfigurationModelRealizesDegrees(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	degrees := []int{3, 3, 2, 2, 2, 2, 1, 1}
	g := ConfigurationModel(degrees, rng)
	if g.N() != 8 {
		t.Fatalf("n = %d", g.N())
	}
	// Erased model can only lose edges: realized degree <= requested.
	for v, want := range degrees {
		if g.Degree(v) > want {
			t.Fatalf("vertex %d degree %d exceeds requested %d", v, g.Degree(v), want)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigurationModelOddSum(t *testing.T) {
	g := ConfigurationModel([]int{1, 1, 1}, rand.New(rand.NewSource(9)))
	if g.M() > 1 {
		t.Fatalf("odd stub sum produced %d edges", g.M())
	}
}

func TestLogNormalDegreesMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n, mean, std := 5000, 8.0, 6.0
	degs := LogNormalDegrees(n, mean, std, rng)
	sum := 0
	for _, d := range degs {
		sum += d
	}
	if sum%2 != 0 {
		t.Fatal("degree sum is odd")
	}
	gotMean := float64(sum) / float64(n)
	if math.Abs(gotMean-mean) > 1.0 {
		t.Fatalf("sampled mean = %v, want ~%v", gotMean, mean)
	}
	varSum := 0.0
	for _, d := range degs {
		diff := float64(d) - gotMean
		varSum += diff * diff
	}
	gotStd := math.Sqrt(varSum / float64(n))
	if math.Abs(gotStd-std) > 1.5 {
		t.Fatalf("sampled std = %v, want ~%v", gotStd, std)
	}
}

func TestLogNormalDegreesInvalidMeanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nonpositive mean did not panic")
		}
	}()
	LogNormalDegrees(10, 0, 1, rand.New(rand.NewSource(1)))
}

func TestAdjustEdgeCountBothDirections(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := GNM(30, 50, rng)
	AdjustEdgeCount(g, 80, rng)
	if g.M() != 80 {
		t.Fatalf("grow: m = %d, want 80", g.M())
	}
	AdjustEdgeCount(g, 20, rng)
	if g.M() != 20 {
		t.Fatalf("shrink: m = %d, want 20", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRaiseClusteringIncreasesACC(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := GNM(120, 500, rng)
	before := metrics.AverageClustering(g)
	m := g.M()
	RaiseClustering(g, 0.5, 0.02, 20000, rng)
	after := metrics.AverageClustering(g)
	if after <= before {
		t.Fatalf("ACC did not increase: %v -> %v", before, after)
	}
	if g.M() != m {
		t.Fatalf("edge count changed: %d -> %d", m, g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRaiseClusteringNoopOnEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := GNM(10, 0, rng)
	RaiseClustering(g, 0.5, 0.02, 100, rng) // must not panic
	if g.M() != 0 {
		t.Fatal("edges appeared from nowhere")
	}
}

func TestPropertyGeneratorsProduceValidSimpleGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		m := rng.Intn(n * (n - 1) / 4)
		g1 := GNM(n, m, rng)
		g2 := BarabasiAlbert(n, 3, 2, rng)
		degs := LogNormalDegrees(n, 3, 2, rng)
		g3 := ConfigurationModel(degs, rng)
		return g1.Validate() == nil && g2.Validate() == nil && g3.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateClusteringLowersACC(t *testing.T) {
	// Start from a graph far above the target: disjoint triangles
	// chained by bridges have very high clustering.
	rng := rand.New(rand.NewSource(5))
	g := GNM(60, 240, rng)
	RaiseClustering(g, 0.6, 0.01, 200_000, rng)
	high := metrics.AverageClustering(g)
	if high < 0.3 {
		t.Skipf("could not raise ACC high enough to test lowering (got %v)", high)
	}
	target := high / 2
	CalibrateClustering(g, target, 0.02, 200_000, rng)
	got := metrics.AverageClustering(g)
	if got > high-0.05 {
		t.Fatalf("CalibrateClustering did not lower ACC: %v -> %v (target %v)", high, got, target)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCalibrateClusteringRaisesACC(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := GNM(80, 200, rng)
	before := metrics.AverageClustering(g)
	target := before + 0.25
	CalibrateClustering(g, target, 0.02, 300_000, rng)
	after := metrics.AverageClustering(g)
	if after <= before {
		t.Fatalf("CalibrateClustering did not raise ACC: %v -> %v", before, after)
	}
	if g.M() != 200 {
		t.Fatalf("edge count drifted: %d", g.M())
	}
}

func TestCalibrateClusteringNoopOnEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.New(0)
	CalibrateClustering(g, 0.5, 0.01, 100, rng) // must not panic
	h := graph.New(5)
	CalibrateClustering(h, 0.5, 0.01, 100, rng) // no edges: no-op
	if h.M() != 0 {
		t.Fatal("edges appeared from nowhere")
	}
}

func TestCommunityModelShape(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := CommunityModel(200, 800, 0.6, rng)
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	// Edge count is approximate by contract; within a factor of two.
	if g.M() < 400 || g.M() > 1600 {
		t.Fatalf("M = %d, want within [400, 1600]", g.M())
	}
	if acc := metrics.AverageClustering(g); acc < 0.2 {
		t.Fatalf("ACC = %v, want clustered (>= 0.2)", acc)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCommunityModelZeroEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := CommunityModel(10, 0, 0.5, rng)
	if g.M() != 0 {
		t.Fatalf("M = %d, want 0", g.M())
	}
}

func TestCommunityModelInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for p = 0")
		}
	}()
	CommunityModel(10, 5, 0, rand.New(rand.NewSource(1)))
}
