package gen

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/metrics"
)

// CalibrateClustering rewires g in place toward the target average
// clustering coefficient while preserving the edge count, moving in
// whichever direction is needed. Every candidate move is evaluated
// exactly on the vertices it affects and is kept only if it moves the
// average clustering toward the target, so the calibration is a
// monotone hill climb that cannot regress. The loop stops when the
// target is reached within tol or the attempt budget is exhausted.
func CalibrateClustering(g *graph.Graph, target, tol float64, budget int, rng *rand.Rand) {
	n := g.N()
	if n == 0 || g.M() == 0 {
		return
	}
	c := &calibrator{g: g, rng: rng}
	c.accSum = 0
	for _, ci := range metrics.LocalClustering(g) {
		c.accSum += ci
	}
	goal := target * float64(n)
	for attempts := 0; attempts < budget; attempts++ {
		diff := c.accSum - goal
		if diff < 0 {
			diff = -diff
		}
		if diff <= tol*float64(n) {
			return
		}
		if c.accSum < goal {
			c.tryRaise()
		} else {
			c.tryLower()
		}
	}
}

// RaiseClustering is CalibrateClustering restricted to upward moves; it
// never lowers clustering even when g starts above the target.
func RaiseClustering(g *graph.Graph, target, tol float64, budget int, rng *rand.Rand) {
	if g.N() == 0 || g.M() == 0 {
		return
	}
	c := &calibrator{g: g, rng: rng}
	for _, ci := range metrics.LocalClustering(g) {
		c.accSum += ci
	}
	goal := (target - tol) * float64(g.N())
	for attempts := 0; attempts < budget && c.accSum < goal; attempts++ {
		c.tryRaise()
	}
}

// calibrator tracks the running sum of local clustering coefficients so
// each accepted move updates the average in O(local work).
type calibrator struct {
	g      *graph.Graph
	rng    *rand.Rand
	accSum float64
}

// tryRaise attempts one triangle-closing move: connect two unlinked
// neighbors of a common vertex and pay by deleting a sampled low-cost
// donor edge. Kept only if the clustering sum increases.
func (c *calibrator) tryRaise() {
	g := c.g
	v := c.rng.Intn(g.N())
	if g.Degree(v) < 2 {
		return
	}
	nbrs := g.Neighbors(v)
	a := nbrs[c.rng.Intn(len(nbrs))]
	b := nbrs[c.rng.Intn(len(nbrs))]
	if a == b || g.HasEdge(a, b) {
		return
	}
	donor, ok := pickDonor(g, c.rng, v, a, b)
	if !ok {
		return
	}
	c.evaluatedMove(
		[]graph.Edge{donor},
		[]graph.Edge{graph.E(a, b)},
		true,
	)
}

// tryLower attempts one degree-preserving double-edge swap, kept only if
// the clustering sum decreases.
func (c *calibrator) tryLower() {
	g := c.g
	e1, ok1 := sampleEdge(g, c.rng)
	e2, ok2 := sampleEdge(g, c.rng)
	if !ok1 || !ok2 {
		return
	}
	if e1 == e2 || e1.Touches(e2.U) || e1.Touches(e2.V) {
		return
	}
	a, b, cc, d := e1.U, e1.V, e2.U, e2.V
	if g.HasEdge(a, cc) || g.HasEdge(b, d) {
		return
	}
	c.evaluatedMove(
		[]graph.Edge{e1, e2},
		[]graph.Edge{graph.E(a, cc), graph.E(b, d)},
		false,
	)
}

// evaluatedMove applies removals then insertions, computes the exact
// local clustering delta over the affected vertices, and keeps the move
// only if the delta has the wanted sign; otherwise it reverts.
func (c *calibrator) evaluatedMove(removals, insertions []graph.Edge, wantIncrease bool) {
	g := c.g
	affected := map[int]struct{}{}
	collect := func(e graph.Edge) {
		affected[e.U] = struct{}{}
		affected[e.V] = struct{}{}
		g.EachNeighbor(e.U, func(w int) {
			if w != e.V && g.HasEdge(w, e.V) {
				affected[w] = struct{}{}
			}
		})
	}
	// A vertex's coefficient changes only if it is an endpoint of a
	// changed edge or adjacent to both endpoints of one. Insertions are
	// not yet present, but their endpoints' neighborhoods are unchanged
	// by the removals (donors never touch them), so collecting common
	// neighbors before the move covers both states.
	for _, e := range removals {
		collect(e)
	}
	for _, e := range insertions {
		collect(e)
	}
	before := c.localSum(affected)
	for _, e := range removals {
		g.RemoveEdge(e.U, e.V)
	}
	for _, e := range insertions {
		g.AddEdge(e.U, e.V)
	}
	after := c.localSum(affected)
	delta := after - before
	if (wantIncrease && delta > 0) || (!wantIncrease && delta < 0) {
		c.accSum += delta
		return
	}
	// Revert.
	for _, e := range insertions {
		g.RemoveEdge(e.U, e.V)
	}
	for _, e := range removals {
		g.AddEdge(e.U, e.V)
	}
}

// localSum computes the sum of local clustering coefficients over a
// vertex set in the current graph state.
func (c *calibrator) localSum(vertices map[int]struct{}) float64 {
	sum := 0.0
	for v := range vertices {
		k := c.g.Degree(v)
		if k < 2 {
			continue
		}
		sum += 2 * float64(c.g.CountTrianglesAt(v)) / float64(k*(k-1))
	}
	return sum
}

// sampleEdge draws a random edge by picking a random endpoint and a
// random incident neighbor. The draw is biased toward high-degree
// vertices, which is harmless for calibration moves.
func sampleEdge(g *graph.Graph, rng *rand.Rand) (graph.Edge, bool) {
	n := g.N()
	for tries := 0; tries < 4*n; tries++ {
		u := rng.Intn(n)
		deg := g.Degree(u)
		if deg == 0 {
			continue
		}
		nbrs := g.Neighbors(u)
		return graph.E(u, nbrs[rng.Intn(len(nbrs))]), true
	}
	return graph.Edge{}, false
}

// pickDonor samples candidate edges and returns the one whose removal
// destroys the fewest triangles, skipping edges touching the protected
// vertices.
func pickDonor(g *graph.Graph, rng *rand.Rand, protect ...int) (graph.Edge, bool) {
	isProtected := func(e graph.Edge) bool {
		for _, p := range protect {
			if e.Touches(p) {
				return true
			}
		}
		return false
	}
	const samples = 8
	var (
		best     graph.Edge
		bestCost = -1
	)
	for i := 0; i < samples; i++ {
		e, ok := sampleEdge(g, rng)
		if !ok {
			break
		}
		if isProtected(e) {
			continue
		}
		cost := commonNeighbors(g, e.U, e.V)
		if bestCost < 0 || cost < bestCost {
			best, bestCost = e, cost
			if cost == 0 {
				break
			}
		}
	}
	return best, bestCost >= 0
}

// commonNeighbors counts vertices adjacent to both u and v, i.e. the
// triangles the edge {u, v} participates in.
func commonNeighbors(g *graph.Graph, u, v int) int {
	count := 0
	g.EachNeighbor(u, func(w int) {
		if w != v && g.HasEdge(w, v) {
			count++
		}
	})
	return count
}
