package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestRMATRejectsBadParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RMAT(10, 5, RMATParams{A: 0.5, B: 0.5, C: 0.5, D: 0.5}, rng); err == nil {
		t.Fatal("sum > 1 accepted")
	}
	if _, err := RMAT(10, 5, RMATParams{A: -0.1, B: 0.5, C: 0.3, D: 0.3}, rng); err == nil {
		t.Fatal("negative parameter accepted")
	}
	if _, err := RMAT(1, 0, WebRMAT(), rng); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := RMAT(4, 100, WebRMAT(), rng); err == nil {
		t.Fatal("m > max accepted")
	}
}

func TestRMATProducesRequestedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := RMAT(256, 1000, WebRMAT(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 256 {
		t.Fatalf("n=%d, want 256", g.N())
	}
	if g.M() != 1000 {
		t.Fatalf("m=%d, want 1000", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRMATDeterministic(t *testing.T) {
	a, err := RMAT(128, 400, WebRMAT(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RMAT(128, 400, WebRMAT(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same seed produced different graphs")
	}
}

// The point of R-MAT here: at equal size it must disperse degree far
// more than a uniform G(n, m) graph — the heavy tail the paper's web
// samples exhibit (Table 3's google rows have STDD ~ avg degree).
func TestRMATHeavyTailVsGNM(t *testing.T) {
	n, m := 512, 2048
	rmat, err := RMAT(n, m, WebRMAT(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	gnm := GNM(n, m, rand.New(rand.NewSource(5)))
	sR := metrics.Degrees(rmat).StdDev
	sU := metrics.Degrees(gnm).StdDev
	if sR < 1.5*sU {
		t.Fatalf("R-MAT STDD %v not heavier than 1.5x GNM STDD %v", sR, sU)
	}
	// Max degree should also dominate clearly.
	if rmat.MaxDegree() < 2*gnm.MaxDegree() {
		t.Fatalf("R-MAT max degree %d vs GNM %d: tail too light", rmat.MaxDegree(), gnm.MaxDegree())
	}
}

// Uniform parameters (a=b=c=d=0.25) degenerate R-MAT to uniform edge
// sampling: STDD should then be close to GNM's.
func TestRMATUniformParamsMatchGNM(t *testing.T) {
	n, m := 512, 2048
	uni := RMATParams{A: 0.25, B: 0.25, C: 0.25, D: 0.25}
	rmat, err := RMAT(n, m, uni, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	gnm := GNM(n, m, rand.New(rand.NewSource(9)))
	sR := metrics.Degrees(rmat).StdDev
	sU := metrics.Degrees(gnm).StdDev
	if math.Abs(sR-sU) > 0.5*sU {
		t.Fatalf("uniform R-MAT STDD %v far from GNM %v", sR, sU)
	}
}

func TestRMATQuickAlwaysSimple(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := 4 + int(nRaw%60)
		maxM := n * (n - 1) / 2
		m := 1 + int(mRaw)%maxM
		g, err := RMAT(n, m, WebRMAT(), rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		return g.Validate() == nil && g.N() == n && g.M() <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
