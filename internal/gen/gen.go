// Package gen provides seeded, deterministic random-graph generators:
// the classic Erdos-Renyi, Barabasi-Albert, and Watts-Strogatz models,
// an erased configuration model over arbitrary degree sequences, and a
// triangle-closure rewiring pass used to calibrate clustering.
//
// These are the substrate for internal/dataset, which emulates the
// paper's SNAP and ACM datasets (offline and at arbitrary scale) by
// matching the published size, degree, and clustering statistics of
// Tables 1-3.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// GNM returns an Erdos-Renyi G(n, m) graph: m distinct edges chosen
// uniformly at random. It panics if m exceeds the number of possible
// edges.
func GNM(n, m int, rng *rand.Rand) *graph.Graph {
	max := n * (n - 1) / 2
	if m > max {
		panic(fmt.Sprintf("gen: m=%d exceeds maximum %d for n=%d", m, max, n))
	}
	g := graph.New(n)
	for g.M() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		g.AddEdge(u, v)
	}
	return g
}

// GNP returns an Erdos-Renyi G(n, p) graph: every possible edge present
// independently with probability p.
func GNP(n int, p float64, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// BarabasiAlbert grows a preferential-attachment graph: it starts from a
// clique on m0 vertices and attaches each new vertex to k existing
// vertices chosen proportionally to their degree. Requires m0 >= k >= 1.
func BarabasiAlbert(n, m0, k int, rng *rand.Rand) *graph.Graph {
	if m0 < k || k < 1 || n < m0 {
		panic(fmt.Sprintf("gen: invalid BA parameters n=%d m0=%d k=%d", n, m0, k))
	}
	g := graph.New(n)
	// Repeated-endpoint list implements preferential attachment.
	var ends []int
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			g.AddEdge(u, v)
			ends = append(ends, u, v)
		}
	}
	for v := m0; v < n; v++ {
		attached := 0
		for attached < k {
			var target int
			if len(ends) == 0 {
				target = rng.Intn(v)
			} else {
				target = ends[rng.Intn(len(ends))]
			}
			if g.AddEdge(v, target) {
				ends = append(ends, v, target)
				attached++
			}
		}
	}
	return g
}

// WattsStrogatz builds a small-world graph: a ring lattice where each
// vertex connects to its k nearest neighbors (k even), with each edge
// rewired to a random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) *graph.Graph {
	if k%2 != 0 || k >= n || k < 2 {
		panic(fmt.Sprintf("gen: invalid WS parameters n=%d k=%d", n, k))
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		for step := 1; step <= k/2; step++ {
			g.AddEdge(v, (v+step)%n)
		}
	}
	for v := 0; v < n; v++ {
		for step := 1; step <= k/2; step++ {
			w := (v + step) % n
			if rng.Float64() < beta && g.HasEdge(v, w) {
				// Rewire v-w to v-random.
				for tries := 0; tries < 2*n; tries++ {
					r := rng.Intn(n)
					if r != v && !g.HasEdge(v, r) {
						g.RemoveEdge(v, w)
						g.AddEdge(v, r)
						break
					}
				}
			}
		}
	}
	return g
}

// ConfigurationModel builds a simple graph over the given degree
// sequence by stub matching, erasing self-loops and duplicate edges
// (the "erased configuration model"); the realized degrees may
// therefore fall slightly short of the requested ones. The degree sum
// need not be even; a trailing stub is dropped.
func ConfigurationModel(degrees []int, rng *rand.Rand) *graph.Graph {
	n := len(degrees)
	var stubs []int
	for v, d := range degrees {
		if d >= n {
			d = n - 1
		}
		for i := 0; i < d; i++ {
			stubs = append(stubs, v)
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	g := graph.New(n)
	for i := 0; i+1 < len(stubs); i += 2 {
		g.AddEdge(stubs[i], stubs[i+1]) // silently drops loops/duplicates
	}
	return g
}

// LogNormalDegrees samples an n-length degree sequence from a lognormal
// distribution with the given target mean and standard deviation,
// clipped to [0, n-1] and adjusted to an even sum. This directly targets
// the Av.Deg and STDD columns of the paper's Table 3.
func LogNormalDegrees(n int, mean, std float64, rng *rand.Rand) []int {
	if mean <= 0 {
		panic(fmt.Sprintf("gen: nonpositive mean degree %v", mean))
	}
	cv2 := (std / mean) * (std / mean)
	sigma2 := math.Log(1 + cv2)
	mu := math.Log(mean) - sigma2/2
	sigma := math.Sqrt(sigma2)
	out := make([]int, n)
	sum := 0
	for i := range out {
		d := int(math.Round(math.Exp(mu + sigma*rng.NormFloat64())))
		if d < 0 {
			d = 0
		}
		if d > n-1 {
			d = n - 1
		}
		out[i] = d
		sum += d
	}
	if sum%2 == 1 {
		// Bump a vertex with headroom to restore even parity.
		for i := range out {
			if out[i] < n-1 {
				out[i]++
				break
			}
		}
	}
	return out
}

// AdjustEdgeCount adds or removes uniformly random edges until g has
// exactly m edges. Used after the erased configuration model, which may
// lose a few edges to erasure.
func AdjustEdgeCount(g *graph.Graph, m int, rng *rand.Rand) {
	n := g.N()
	max := n * (n - 1) / 2
	if m > max {
		panic(fmt.Sprintf("gen: target m=%d exceeds maximum %d", m, max))
	}
	for g.M() < m {
		g.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	for g.M() > m {
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		g.RemoveEdge(e.U, e.V)
	}
}
