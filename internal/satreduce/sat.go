// Package satreduce implements the paper's Theorem 1: the polynomial
// reduction from 3-SAT to the L-opacification problem that establishes
// its NP-hardness. It provides a 3-SAT formula model with an exact
// solver, the gadget-graph construction of Figure 3, and the
// equivalence machinery (assignments <-> edge-removal sets) that the
// tests use to verify the reduction end to end.
package satreduce

import (
	"fmt"
)

// Literal is a 3-SAT literal: +v for variable v, -v for its negation.
// Variables are numbered from 1.
type Literal int

// Var returns the 1-based variable index of the literal.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Negated reports whether the literal is a negation.
func (l Literal) Negated() bool { return l < 0 }

// Clause is a disjunction of exactly three literals.
type Clause [3]Literal

// Formula is a 3-SAT instance over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewFormula builds a Formula from raw clauses, inferring NumVars and
// validating literals.
func NewFormula(raw [][3]int) (Formula, error) {
	f := Formula{}
	for ci, c := range raw {
		var clause Clause
		for i, lit := range c {
			if lit == 0 {
				return Formula{}, fmt.Errorf("satreduce: clause %d has a zero literal", ci)
			}
			clause[i] = Literal(lit)
			if v := clause[i].Var(); v > f.NumVars {
				f.NumVars = v
			}
		}
		f.Clauses = append(f.Clauses, clause)
	}
	return f, nil
}

// Eval reports whether the assignment (1-based; index 0 unused)
// satisfies every clause.
func (f Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if assign[l.Var()] != l.Negated() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Solve searches for a satisfying assignment by DPLL with unit
// propagation. It returns the assignment (1-based) and whether the
// formula is satisfiable.
func (f Formula) Solve() ([]bool, bool) {
	// state: 0 unassigned, 1 true, -1 false
	state := make([]int8, f.NumVars+1)
	if f.dpll(state) {
		assign := make([]bool, f.NumVars+1)
		for v := 1; v <= f.NumVars; v++ {
			assign[v] = state[v] == 1
		}
		return assign, true
	}
	return nil, false
}

func (f Formula) dpll(state []int8) bool {
	// Unit propagation to a fixed point.
	var trail []int
	for {
		unit := 0
		conflict := false
		for _, c := range f.Clauses {
			unassigned := 0
			var free Literal
			satisfied := false
			for _, l := range c {
				switch state[l.Var()] {
				case 0:
					unassigned++
					free = l
				case 1:
					if !l.Negated() {
						satisfied = true
					}
				case -1:
					if l.Negated() {
						satisfied = true
					}
				}
			}
			if satisfied {
				continue
			}
			if unassigned == 0 {
				conflict = true
				break
			}
			if unassigned == 1 {
				unit = int(free)
				break
			}
		}
		if conflict {
			for _, v := range trail {
				state[v] = 0
			}
			return false
		}
		if unit == 0 {
			break
		}
		l := Literal(unit)
		if l.Negated() {
			state[l.Var()] = -1
		} else {
			state[l.Var()] = 1
		}
		trail = append(trail, l.Var())
	}
	// Pick a branching variable.
	branch := 0
	for v := 1; v <= f.NumVars; v++ {
		if state[v] == 0 {
			branch = v
			break
		}
	}
	if branch == 0 {
		ok := f.Eval(boolsOf(state))
		if !ok {
			for _, v := range trail {
				state[v] = 0
			}
		}
		return ok
	}
	for _, val := range []int8{1, -1} {
		state[branch] = val
		if f.dpll(state) {
			return true
		}
	}
	state[branch] = 0
	for _, v := range trail {
		state[v] = 0
	}
	return false
}

func boolsOf(state []int8) []bool {
	out := make([]bool, len(state))
	for i, s := range state {
		out[i] = s == 1
	}
	return out
}
