package satreduce

import (
	"fmt"

	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/opacity"
)

// ReductionL is the path-length threshold of the constructed
// L-opacification instance (Theorem 1 fixes L = 3: clause pairs sit at
// distance 3 through their variable edge).
const ReductionL = 3

// Instance is the L-opacification instance constructed from a 3-SAT
// formula by the paper's Theorem 1 (illustrated in its Figure 3).
type Instance struct {
	Formula Formula
	// G is the gadget graph.
	G *graph.Graph
	// Budget is N, the number of variables: the reduction asks whether
	// the instance is solvable with at most Budget edge removals.
	Budget int
	// PosEdge[v] and NegEdge[v] are the two edges of variable v+1
	// (0-based slice): removing PosEdge encodes assigning true,
	// removing NegEdge encodes false.
	PosEdge, NegEdge []graph.Edge

	types    *opacity.FuncTypes
	pairType map[[2]int]int
}

// Build constructs the Theorem 1 gadget for f.
//
// For each variable v two disjoint edges (vi, vj) and (v'i, v'j) are
// created, both of vertex-pair type T_v. For each occurrence of v in a
// clause Ck, a fresh vertex pair (Ak, Bk) of type T_Ck is appended to
// the positive edge when the literal is positive (Ak adjacent to vi,
// Bk to vj) and to the negated edge otherwise. A clause pair is then at
// geodesic distance 3 exactly while its variable edge survives.
func Build(f Formula) *Instance {
	inst := &Instance{
		Formula:  f,
		Budget:   f.NumVars,
		pairType: make(map[[2]int]int),
	}
	numTypes := f.NumVars + len(f.Clauses)
	totals := make([]int, numTypes)
	labels := make([]string, numTypes)
	// Vertex budget: 4 per variable + 2 per literal occurrence.
	n := 4*f.NumVars + 6*len(f.Clauses)
	g := graph.New(n)
	next := 0
	alloc := func() int { next++; return next - 1 }

	inst.PosEdge = make([]graph.Edge, f.NumVars)
	inst.NegEdge = make([]graph.Edge, f.NumVars)
	posEnds := make([][2]int, f.NumVars)
	negEnds := make([][2]int, f.NumVars)
	for v := 0; v < f.NumVars; v++ {
		vi, vj := alloc(), alloc()
		vpi, vpj := alloc(), alloc()
		g.AddEdge(vi, vj)
		g.AddEdge(vpi, vpj)
		inst.PosEdge[v] = graph.E(vi, vj)
		inst.NegEdge[v] = graph.E(vpi, vpj)
		posEnds[v] = [2]int{vi, vj}
		negEnds[v] = [2]int{vpi, vpj}
		inst.setPairType(vi, vj, v)
		inst.setPairType(vpi, vpj, v)
		totals[v] = 2
		labels[v] = fmt.Sprintf("var%d", v+1)
	}
	for ci, clause := range f.Clauses {
		typeID := f.NumVars + ci
		labels[typeID] = fmt.Sprintf("clause%d", ci+1)
		for _, lit := range clause {
			v := lit.Var() - 1
			ends := posEnds[v]
			if lit.Negated() {
				ends = negEnds[v]
			}
			ak, bk := alloc(), alloc()
			g.AddEdge(ak, ends[0])
			g.AddEdge(ends[1], bk)
			inst.setPairType(ak, bk, typeID)
			totals[typeID]++
		}
	}
	inst.G = g
	inst.types = opacity.NewFuncTypes(inst.typeOf, totals, labels)
	return inst
}

func (inst *Instance) setPairType(u, v, id int) {
	if u > v {
		u, v = v, u
	}
	inst.pairType[[2]int{u, v}] = id
}

func (inst *Instance) typeOf(u, v int) int {
	if u > v {
		u, v = v, u
	}
	if id, ok := inst.pairType[[2]int{u, v}]; ok {
		return id
	}
	return -1
}

// Types exposes the instance's vertex-pair type system.
func (inst *Instance) Types() opacity.TypeAssigner { return inst.types }

// MaxLO computes the maximum opacity of the gadget graph after removing
// the given edges (the graph itself is not modified).
func (inst *Instance) MaxLO(removals []graph.Edge) float64 {
	h := inst.G.Clone()
	for _, e := range removals {
		if !h.RemoveEdge(e.U, e.V) {
			panic(fmt.Sprintf("satreduce: removal of absent edge %v", e))
		}
	}
	tr := opacity.NewTracker(inst.types, apsp.BoundedAPSP(h, ReductionL))
	return tr.Evaluate().MaxLO
}

// Opacified reports whether removing the given edges leaves every type
// below full disclosure (the Theorem 1 goal: max LO < 1 with L = 3).
func (inst *Instance) Opacified(removals []graph.Edge) bool {
	return inst.MaxLO(removals) < 1
}

// RemovalsForAssignment translates a satisfying assignment (1-based)
// into the Theorem's removal set: remove the positive edge of every
// true variable and the negated edge of every false one.
func (inst *Instance) RemovalsForAssignment(assign []bool) []graph.Edge {
	out := make([]graph.Edge, inst.Formula.NumVars)
	for v := 0; v < inst.Formula.NumVars; v++ {
		if assign[v+1] {
			out[v] = inst.PosEdge[v]
		} else {
			out[v] = inst.NegEdge[v]
		}
	}
	return out
}

// AssignmentForRemovals inverts RemovalsForAssignment; it returns false
// when the removal set is not of the one-edge-per-variable form.
func (inst *Instance) AssignmentForRemovals(removals []graph.Edge) ([]bool, bool) {
	if len(removals) != inst.Formula.NumVars {
		return nil, false
	}
	assign := make([]bool, inst.Formula.NumVars+1)
	seen := make([]bool, inst.Formula.NumVars)
	for _, e := range removals {
		matched := false
		for v := 0; v < inst.Formula.NumVars; v++ {
			switch e.Normalize() {
			case inst.PosEdge[v]:
				assign[v+1] = true
				matched = true
			case inst.NegEdge[v]:
				assign[v+1] = false
				matched = true
			default:
				continue
			}
			if seen[v] {
				return nil, false
			}
			seen[v] = true
			break
		}
		if !matched {
			return nil, false
		}
	}
	for _, s := range seen {
		if !s {
			return nil, false
		}
	}
	return assign, true
}

// SolveByReduction decides the instance exactly: it enumerates the 2^N
// canonical removal sets (one edge per variable, the only candidates
// that can work within the budget, as argued in the Theorem 1 proof)
// and returns a witnessing removal set if one opacifies the gadget.
// Exponential by design — the reduction proves hardness; this solver
// exists to validate the construction on small formulas.
func (inst *Instance) SolveByReduction() ([]graph.Edge, bool) {
	nv := inst.Formula.NumVars
	if nv > 20 {
		panic("satreduce: SolveByReduction limited to 20 variables")
	}
	assign := make([]bool, nv+1)
	for mask := 0; mask < 1<<nv; mask++ {
		for v := 0; v < nv; v++ {
			assign[v+1] = mask&(1<<v) != 0
		}
		removals := inst.RemovalsForAssignment(assign)
		if inst.Opacified(removals) {
			return removals, true
		}
	}
	return nil, false
}
