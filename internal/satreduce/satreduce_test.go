package satreduce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/graph"
)

func paperFormula(t *testing.T) Formula {
	t.Helper()
	f, err := NewFormula(fixture.Theorem1Formula())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewFormulaValidation(t *testing.T) {
	if _, err := NewFormula([][3]int{{1, 0, 2}}); err == nil {
		t.Fatal("zero literal accepted")
	}
	f, err := NewFormula([][3]int{{1, -2, 3}})
	if err != nil || f.NumVars != 3 {
		t.Fatalf("NumVars = %d, err = %v", f.NumVars, err)
	}
}

func TestLiteralAccessors(t *testing.T) {
	if Literal(-3).Var() != 3 || !Literal(-3).Negated() {
		t.Fatal("negative literal accessors wrong")
	}
	if Literal(5).Var() != 5 || Literal(5).Negated() {
		t.Fatal("positive literal accessors wrong")
	}
}

func TestEval(t *testing.T) {
	f, _ := NewFormula([][3]int{{1, 2, 3}, {-1, -2, -3}})
	if !f.Eval([]bool{false, true, false, false}) {
		t.Fatal("satisfying assignment rejected")
	}
	if f.Eval([]bool{false, true, true, true}) {
		t.Fatal("violating assignment accepted (second clause false)")
	}
}

func TestSolvePaperExample(t *testing.T) {
	f := paperFormula(t)
	assign, ok := f.Solve()
	if !ok {
		t.Fatal("the paper's Theorem 1 example formula is satisfiable")
	}
	if !f.Eval(assign) {
		t.Fatal("Solve returned a non-satisfying assignment")
	}
}

func TestSolveUnsatisfiable(t *testing.T) {
	// All eight sign patterns over three variables: unsatisfiable.
	var raw [][3]int
	for mask := 0; mask < 8; mask++ {
		c := [3]int{1, 2, 3}
		for i := 0; i < 3; i++ {
			if mask&(1<<i) != 0 {
				c[i] = -c[i]
			}
		}
		raw = append(raw, c)
	}
	f, _ := NewFormula(raw)
	if _, ok := f.Solve(); ok {
		t.Fatal("unsatisfiable formula solved")
	}
}

func TestBuildStructure(t *testing.T) {
	f := paperFormula(t)
	inst := Build(f)
	// 4 vertices per variable + 2 per literal occurrence.
	wantN := 4*f.NumVars + 6*len(f.Clauses)
	if inst.G.N() != wantN {
		t.Fatalf("gadget vertices = %d, want %d", inst.G.N(), wantN)
	}
	// 2 edges per variable + 2 per literal occurrence.
	wantM := 2*f.NumVars + 6*len(f.Clauses)
	if inst.G.M() != wantM {
		t.Fatalf("gadget edges = %d, want %d", inst.G.M(), wantM)
	}
	if inst.Budget != f.NumVars {
		t.Fatalf("budget = %d, want %d", inst.Budget, f.NumVars)
	}
	if err := inst.G.Validate(); err != nil {
		t.Fatal(err)
	}
	// Type census: every variable type has 2 pairs, every clause type 3.
	types := inst.Types()
	for v := 0; v < f.NumVars; v++ {
		if types.Total(v) != 2 {
			t.Errorf("variable type %d total = %d, want 2", v, types.Total(v))
		}
	}
	for c := 0; c < len(f.Clauses); c++ {
		if types.Total(f.NumVars+c) != 3 {
			t.Errorf("clause type %d total = %d, want 3", c, types.Total(f.NumVars+c))
		}
	}
}

func TestUnmodifiedGadgetIsFullyDisclosed(t *testing.T) {
	inst := Build(paperFormula(t))
	if lo := inst.MaxLO(nil); lo != 1 {
		t.Fatalf("intact gadget maxLO = %v, want 1 (all pairs within L)", lo)
	}
}

func TestSatisfyingAssignmentOpacifies(t *testing.T) {
	f := paperFormula(t)
	inst := Build(f)
	assign, ok := f.Solve()
	if !ok {
		t.Fatal("formula satisfiable")
	}
	removals := inst.RemovalsForAssignment(assign)
	if len(removals) != f.NumVars {
		t.Fatalf("removal set size %d, want %d", len(removals), f.NumVars)
	}
	if !inst.Opacified(removals) {
		t.Fatal("satisfying assignment's removal set does not opacify the gadget")
	}
}

func TestNonSatisfyingAssignmentFails(t *testing.T) {
	f := paperFormula(t)
	inst := Build(f)
	// Find an assignment violating the formula.
	assign := make([]bool, f.NumVars+1)
	found := false
	for mask := 0; mask < 1<<f.NumVars && !found; mask++ {
		for v := 1; v <= f.NumVars; v++ {
			assign[v] = mask&(1<<(v-1)) != 0
		}
		if !f.Eval(assign) {
			found = true
		}
	}
	if !found {
		t.Skip("formula is a tautology")
	}
	if inst.Opacified(inst.RemovalsForAssignment(assign)) {
		t.Fatal("non-satisfying assignment's removals opacified the gadget")
	}
}

func TestAssignmentRemovalRoundTrip(t *testing.T) {
	f := paperFormula(t)
	inst := Build(f)
	assign := []bool{false, true, false, true, true}
	removals := inst.RemovalsForAssignment(assign)
	back, ok := inst.AssignmentForRemovals(removals)
	if !ok {
		t.Fatal("round trip rejected canonical removals")
	}
	for v := 1; v <= f.NumVars; v++ {
		if back[v] != assign[v] {
			t.Fatalf("assignment changed at var %d", v)
		}
	}
	// Wrong-sized or duplicated sets must be rejected.
	if _, ok := inst.AssignmentForRemovals(removals[:2]); ok {
		t.Fatal("short removal set accepted")
	}
	dup := append([]graph.Edge(nil), removals...)
	dup[1] = dup[0]
	if _, ok := inst.AssignmentForRemovals(dup); ok {
		t.Fatal("duplicated removal set accepted")
	}
}

func TestReductionEquivalenceRandomFormulas(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(4)
		nc := 1 + rng.Intn(5)
		raw := make([][3]int, nc)
		for i := range raw {
			for j := 0; j < 3; j++ {
				v := 1 + rng.Intn(nv)
				if rng.Intn(2) == 0 {
					v = -v
				}
				raw[i][j] = v
			}
		}
		formula, err := NewFormula(raw)
		if err != nil {
			return false
		}
		formula.NumVars = nv // fix vars not mentioned in clauses
		inst := Build(formula)
		_, satOK := formula.Solve()
		removals, redOK := inst.SolveByReduction()
		if satOK != redOK {
			return false // the reduction must be an exact equivalence
		}
		if redOK {
			// The witness must decode to a satisfying assignment.
			assign, ok := inst.AssignmentForRemovals(removals)
			if !ok || !formula.Eval(assign) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
