// Package fixture provides shared golden fixtures taken directly from the
// paper, used by tests across packages.
package fixture

import "repro/internal/graph"

// Figure1 returns the running-example graph of the paper's Figure 1:
// seven vertices (relabeled 0-based, paper vertex i = our i-1) and ten
// edges. Paper degrees: v1=2, v2=4, v3=4, v4=2, v5=4, v6=3, v7=1.
//
// The paper works this example through its Figures 4 and 5: the distance
// matrix, the L=1 boolean matrix, the per-type counts, and the opacity
// matrix with maxLO = 1 (types {1,3} and {4,4} are fully disclosed).
func Figure1() *graph.Graph {
	g := graph.New(7)
	for _, e := range Figure1Edges() {
		g.AddEdge(e.U, e.V)
	}
	return g
}

// Figure1Edges returns the ten edges of the Figure 1 graph in canonical
// 0-based form.
func Figure1Edges() []graph.Edge {
	paper := [][2]int{
		{1, 2}, {1, 3}, {2, 3}, {2, 4}, {2, 5},
		{3, 5}, {3, 6}, {4, 5}, {5, 6}, {6, 7},
	}
	out := make([]graph.Edge, len(paper))
	for i, p := range paper {
		out[i] = graph.E(p[0]-1, p[1]-1)
	}
	return out
}

// Figure1Degrees returns the original degree vector of the Figure 1
// graph (0-based vertex order).
func Figure1Degrees() []int { return []int{2, 4, 4, 2, 4, 3, 1} }

// Figure4aDistances returns the paper's Figure 4a all-pairs geodesic
// distance matrix for the Figure 1 graph, as a symmetric 7x7 matrix with
// zero diagonal (0-based indices).
func Figure4aDistances() [][]int {
	// Upper triangle from the paper, row i gives d(i, j) for j > i.
	upper := [][]int{
		{1, 1, 2, 2, 2, 3},
		{1, 1, 1, 2, 3},
		{2, 1, 1, 2},
		{1, 2, 3},
		{1, 2},
		{1},
	}
	n := 7
	m := make([][]int, n)
	for i := range m {
		m[i] = make([]int, n)
	}
	for i, row := range upper {
		for k, d := range row {
			j := i + 1 + k
			m[i][j] = d
			m[j][i] = d
		}
	}
	return m
}

// Figure5LMatrix returns the paper's Figure 5a per-type counts of
// geodesic distances <= 1, keyed by unordered degree pair {g,h} with
// g <= h. Types absent from the map have count zero.
func Figure5LMatrix() map[[2]int]int {
	return map[[2]int]int{
		{1, 3}: 1,
		{2, 4}: 4,
		{3, 4}: 2,
		{4, 4}: 3,
	}
}

// Figure5Opacity returns the paper's Figure 5c opacity matrix for L=1,
// keyed by unordered degree pair.
func Figure5Opacity() map[[2]int]float64 {
	return map[[2]int]float64{
		{1, 3}: 1.0,
		{2, 4}: 2.0 / 3.0,
		{3, 4}: 2.0 / 3.0,
		{4, 4}: 1.0,
	}
}

// Theorem1Formula returns the 6-clause, 4-variable 3-SAT instance used as
// the running example in the paper's Theorem 1 (Figure 3):
//
//	(a ∨ ¬b ∨ c) ∧ (¬a ∨ ¬c ∨ d) ∧ (a ∨ b ∨ ¬d) ∧
//	(a ∨ ¬b ∨ ¬c) ∧ (¬b ∨ c ∨ d) ∧ (¬a ∨ b ∨ ¬d)
//
// Variables are numbered 1..4 for a..d; a positive literal is +v and a
// negated literal is -v.
func Theorem1Formula() [][3]int {
	return [][3]int{
		{+1, -2, +3},
		{-1, -3, +4},
		{+1, +2, -4},
		{+1, -2, -3},
		{-2, +3, +4},
		{-1, +2, -4},
	}
}
