package graph

import (
	"testing"
	"testing/quick"

	"math/rand"
)

// pathGraph returns the path 0-1-...-n-1.
func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestBFSDistancesPath(t *testing.T) {
	g := pathGraph(5)
	dist := g.BFSDistances(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	dist := g.BFSDistances(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable vertices got %d, %d, want -1", dist[2], dist[3])
	}
}

func TestBoundedBFSTruncates(t *testing.T) {
	g := pathGraph(6)
	dist := g.BoundedBFS(0, 2)
	want := []int{0, 1, 2, -1, -1, -1}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("BoundedBFS = %v, want %v", dist, want)
		}
	}
}

func TestBoundedBFSZeroDepth(t *testing.T) {
	g := pathGraph(3)
	dist := g.BoundedBFS(1, 0)
	want := []int{-1, 0, -1}
	for v := range want {
		if dist[v] != want[v] {
			t.Fatalf("BoundedBFS depth 0 = %v, want %v", dist, want)
		}
	}
}

func TestBoundedBFSIntoReachedCount(t *testing.T) {
	g := pathGraph(5)
	dist := make([]int, 5)
	for i := range dist {
		dist[i] = -1
	}
	reached := g.BoundedBFSInto(0, 3, dist, nil)
	if reached != 3 {
		t.Fatalf("reached = %d, want 3", reached)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("component {0,1,2} split")
	}
	if labels[3] != labels[4] {
		t.Fatal("component {3,4} split")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Fatal("isolated vertex 5 merged into another component")
	}
}

func TestLargestComponent(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	got := g.LargestComponent()
	want := []int{2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("LargestComponent = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LargestComponent = %v, want %v", got, want)
		}
	}
}

func TestDiameter(t *testing.T) {
	if d := pathGraph(5).Diameter(); d != 4 {
		t.Fatalf("path diameter = %d, want 4", d)
	}
	if d := New(3).Diameter(); d != 0 {
		t.Fatalf("edgeless diameter = %d, want 0", d)
	}
	// Cycle of 6 has diameter 3.
	g := New(6)
	for i := 0; i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
	}
	if d := g.Diameter(); d != 3 {
		t.Fatalf("C6 diameter = %d, want 3", d)
	}
}

func TestGeodesicLength(t *testing.T) {
	g := pathGraph(4)
	if d := g.GeodesicLength(0, 3); d != 3 {
		t.Fatalf("GeodesicLength(0,3) = %d, want 3", d)
	}
	if d := g.GeodesicLength(2, 2); d != 0 {
		t.Fatalf("GeodesicLength(2,2) = %d, want 0", d)
	}
	h := New(3)
	if d := h.GeodesicLength(0, 2); d != -1 {
		t.Fatalf("disconnected GeodesicLength = %d, want -1", d)
	}
}

func TestTriangleCount(t *testing.T) {
	g := New(4) // K4 has 4 triangles
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v)
		}
	}
	if c := g.TriangleCount(); c != 4 {
		t.Fatalf("K4 triangles = %d, want 4", c)
	}
	if c := pathGraph(5).TriangleCount(); c != 0 {
		t.Fatalf("path triangles = %d, want 0", c)
	}
}

func TestCountTrianglesAt(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	if c := g.CountTrianglesAt(0); c != 1 {
		t.Fatalf("CountTrianglesAt(0) = %d, want 1", c)
	}
	if c := g.CountTrianglesAt(3); c != 0 {
		t.Fatalf("CountTrianglesAt(3) = %d, want 0", c)
	}
}

func TestPropertyBoundedBFSAgreesWithBFS(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(18, 0.15, seed)
		rng := rand.New(rand.NewSource(seed))
		src := rng.Intn(18)
		depth := 1 + rng.Intn(4)
		full := g.BFSDistances(src)
		bounded := g.BoundedBFS(src, depth)
		for v := range full {
			switch {
			case full[v] >= 0 && full[v] <= depth:
				if bounded[v] != full[v] {
					return false
				}
			default:
				if bounded[v] != -1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBFSTriangleInequalityOverEdges(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(15, 0.2, seed)
		src := 0
		dist := g.BFSDistances(src)
		ok := true
		g.EachEdge(func(u, v int) {
			du, dv := dist[u], dist[v]
			if du >= 0 && dv >= 0 {
				d := du - dv
				if d < -1 || d > 1 {
					ok = false
				}
			}
			if (du < 0) != (dv < 0) {
				ok = false // adjacent vertices must share reachability
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
