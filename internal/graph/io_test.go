package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := randomGraph(20, 0.2, 11)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, ids, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Isolated vertices are not representable in an edge list, so compare
	// after mapping through ids.
	if back.M() != g.M() {
		t.Fatalf("edge count %d, want %d", back.M(), g.M())
	}
	back.EachEdge(func(u, v int) {
		if !g.HasEdge(ids[u], ids[v]) {
			t.Errorf("read edge %d-%d missing in original as %d-%d", u, v, ids[u], ids[v])
		}
	})
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# header\n% other comment\n\n0 1\n1\t2\n"
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 3, 2", g.N(), g.M())
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestReadEdgeListSparseIDs(t *testing.T) {
	in := "1000 7\n7 42\n"
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 3, 2", g.N(), g.M())
	}
	if ids[0] != 7 || ids[1] != 42 || ids[2] != 1000 {
		t.Fatalf("ids = %v, want ascending [7 42 1000]", ids)
	}
	// Ascending relabel: original 7 -> dense 0, 42 -> 1, 1000 -> 2.
	if !g.HasEdge(0, 2) || !g.HasEdge(0, 1) {
		t.Fatalf("edges not relabeled by ascending ID: %v", g.Edges())
	}
}

func TestReadEdgeListSkipsLoopsAndDuplicates(t *testing.T) {
	in := "0 1\n1 0\n2 2\n0 1\n"
	g, _, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 (duplicates and loops skipped)", g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 b\n"} {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadEdgeListNodesHeaderPreservesIsolated(t *testing.T) {
	in := "# Nodes: 5 Edges: 2\n0 1\n1 2\n"
	g, ids, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 {
		t.Fatalf("N = %d, want 5 (two isolated vertices from the header)", g.N())
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if len(ids) != 5 || ids[3] != -1 || ids[4] != -1 {
		t.Fatalf("ids = %v, want padded -1 entries", ids)
	}
	// Labeled vertices keep ascending order ahead of the padding.
	if ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("ids = %v, want [0 1 2 -1 -1]", ids)
	}
	// A graph with isolated vertices must survive a full round trip.
	h := New(4)
	h.AddEdge(0, 1)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, h); err != nil {
		t.Fatal(err)
	}
	back, _, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 4 || back.M() != 1 {
		t.Fatalf("round trip: n=%d m=%d, want 4, 1", back.N(), back.M())
	}
}

func TestParseNodesHeader(t *testing.T) {
	cases := []struct {
		line string
		n    int
		ok   bool
	}{
		{"# Nodes: 7 Edges: 3", 7, true},
		{"# nodes: 12", 12, true},
		{"# Edges: 3", 0, false},
		{"# Nodes: x", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		n, ok := parseNodesHeader(c.line)
		if n != c.n || ok != c.ok {
			t.Errorf("parseNodesHeader(%q) = %d, %v; want %d, %v", c.line, n, ok, c.n, c.ok)
		}
	}
}
