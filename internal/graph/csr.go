package graph

import (
	"fmt"
	"math"
	"slices"
)

// CSR is an immutable compressed-sparse-row snapshot of a Graph's
// adjacency: neighbor lists packed into one int32 slice, indexed by a
// per-vertex offset table, each vertex's window sorted ascending. It is
// the iteration form of the distance-engine hot paths — walking a
// packed window costs a handful of cache lines where walking the
// mutable map adjacency costs a hash iteration and an allocation per
// call — and the sorted windows make every traversal order
// deterministic without per-call sorting.
//
// A CSR is a point-in-time snapshot: later mutations of the source
// Graph are not reflected. Build one per bulk computation with
// Graph.Frozen, share it freely across goroutines (all methods are
// read-only), and let it go when the computation ends.
type CSR struct {
	offsets   []int32 // len n+1; vertex v's window is neighbors[offsets[v]:offsets[v+1]]
	neighbors []int32 // len 2m, ascending within each window
}

// Frozen returns a CSR snapshot of the graph's current adjacency.
// It panics when the vertex count or the packed neighbor-array length
// 2m exceeds the int32 index space.
func (g *Graph) Frozen() *CSR {
	n := g.N()
	if int64(n) > math.MaxInt32 || int64(2*g.m) > math.MaxInt32 {
		panic(fmt.Sprintf("graph: n=%d m=%d exceeds CSR int32 index space", n, g.m))
	}
	c := &CSR{
		offsets:   make([]int32, n+1),
		neighbors: make([]int32, 2*g.m),
	}
	for v := 0; v < n; v++ {
		c.offsets[v+1] = c.offsets[v] + int32(g.degree[v])
	}
	for v := 0; v < n; v++ {
		w := c.offsets[v]
		for u := range g.adj[v] {
			c.neighbors[w] = int32(u)
			w++
		}
		slices.Sort(c.neighbors[c.offsets[v]:w])
	}
	return c
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.offsets) - 1 }

// M returns the number of (undirected) edges.
func (c *CSR) M() int { return len(c.neighbors) / 2 }

// Degree returns the degree of vertex v.
func (c *CSR) Degree(v int) int { return int(c.offsets[v+1] - c.offsets[v]) }

// Neighbors returns v's neighbor window, ascending. The slice aliases
// the CSR's backing array — zero-copy, zero-alloc — and must be
// treated as read-only.
func (c *CSR) Neighbors(v int) []int32 {
	return c.neighbors[c.offsets[v]:c.offsets[v+1]]
}

// BoundedBFSInto runs a BFS from src truncated at depth maxDepth,
// writing hop distances into dist. dist must have length N() and be
// pre-filled with -1; queue is reused as the work list (grown as
// needed). It returns the visit order — src first, then every vertex
// reached within maxDepth — which is exactly the set of dist entries
// written, so the caller can undo its writes in O(visited):
//
//	visited := c.BoundedBFSInto(src, L, dist, queue)
//	for _, v := range visited {
//	    ... use dist[v] ...
//	    dist[v] = -1
//	}
//	queue = visited[:0]
//
// Touched-only reset is what makes a full APSP sweep O(sum of ball
// sizes) instead of O(n) per source; with a pre-sized queue the loop
// performs zero allocations (asserted by testing.AllocsPerRun).
func (c *CSR) BoundedBFSInto(src, maxDepth int, dist []int32, queue []int32) []int32 {
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, int32(src))
	md := int32(maxDepth)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du >= md {
			continue
		}
		for _, w := range c.neighbors[c.offsets[u]:c.offsets[u+1]] {
			if dist[w] < 0 {
				dist[w] = du + 1
				queue = append(queue, w)
			}
		}
	}
	return queue
}

// BFSDistances runs an unbounded BFS from src and returns the full
// distance row, with -1 for unreachable vertices. It is the CSR
// counterpart of Graph.BFSDistances for callers that issue many
// per-source queries against a frozen snapshot (the attack package's
// adversary): the row is freshly allocated, but the traversal itself
// never touches the map adjacency.
func (c *CSR) BFSDistances(src int) []int32 {
	n := c.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	c.BoundedBFSInto(src, n, dist, make([]int32, 0, n))
	return dist
}
