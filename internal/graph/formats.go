package graph

import (
	"bufio"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file provides the interchange formats beyond the SNAP edge list:
// GraphML (the format graph tools like Gephi and NetworkX consume), DOT
// (Graphviz visualization), and a plain adjacency-list encoding. All
// writers emit vertices in ascending order so output is deterministic.

// WriteGraphML encodes g as a minimal undirected GraphML document. Every
// vertex is written as a node (so isolated vertices survive), each edge
// once in canonical order.
func WriteGraphML(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, xml.Header+`<graphml xmlns="http://graphml.graphdrawing.org/xmlns">`)
	fmt.Fprintln(bw, `  <graph id="G" edgedefault="undirected">`)
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "    <node id=\"n%d\"/>\n", v)
	}
	for i, e := range g.Edges() {
		fmt.Fprintf(bw, "    <edge id=\"e%d\" source=\"n%d\" target=\"n%d\"/>\n", i, e.U, e.V)
	}
	fmt.Fprintln(bw, "  </graph>")
	fmt.Fprintln(bw, "</graphml>")
	return bw.Flush()
}

// graphMLDoc mirrors the subset of GraphML that ReadGraphML accepts.
type graphMLDoc struct {
	Graph struct {
		EdgeDefault string `xml:"edgedefault,attr"`
		Nodes       []struct {
			ID string `xml:"id,attr"`
		} `xml:"node"`
		Edges []struct {
			Source string `xml:"source,attr"`
			Target string `xml:"target,attr"`
		} `xml:"edge"`
	} `xml:"graph"`
}

// ReadGraphML decodes an undirected GraphML document produced by
// WriteGraphML or by compatible tools. Node IDs may be arbitrary
// strings; vertices are densified in ascending order of ID (numeric
// suffixes compare numerically when all IDs share the "n<digits>"
// shape, otherwise lexicographically). Directed documents are rejected.
func ReadGraphML(r io.Reader) (*Graph, error) {
	var doc graphMLDoc
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("graph: parsing GraphML: %w", err)
	}
	if d := doc.Graph.EdgeDefault; d != "" && d != "undirected" {
		return nil, fmt.Errorf("graph: GraphML edgedefault %q not supported (want undirected)", d)
	}
	ids := make([]string, 0, len(doc.Graph.Nodes))
	for _, node := range doc.Graph.Nodes {
		ids = append(ids, node.ID)
	}
	sortGraphMLIDs(ids)
	index := make(map[string]int, len(ids))
	for i, id := range ids {
		if _, dup := index[id]; dup {
			return nil, fmt.Errorf("graph: duplicate GraphML node id %q", id)
		}
		index[id] = i
	}
	g := New(len(ids))
	for _, e := range doc.Graph.Edges {
		u, ok := index[e.Source]
		if !ok {
			return nil, fmt.Errorf("graph: edge references unknown node %q", e.Source)
		}
		v, ok := index[e.Target]
		if !ok {
			return nil, fmt.Errorf("graph: edge references unknown node %q", e.Target)
		}
		g.AddEdge(u, v) // skips self-loops and duplicates
	}
	return g, nil
}

// sortGraphMLIDs orders node IDs numerically when they all look like
// "n<digits>" (WriteGraphML's shape) and lexicographically otherwise.
func sortGraphMLIDs(ids []string) {
	numeric := true
	keys := make([]int, len(ids))
	for i, id := range ids {
		n, err := strconv.Atoi(strings.TrimPrefix(id, "n"))
		if err != nil || !strings.HasPrefix(id, "n") {
			numeric = false
			break
		}
		keys[i] = n
	}
	if numeric {
		// Insertion sort by key; ID lists are small relative to edges.
		for i := 1; i < len(ids); i++ {
			for j := i; j > 0 && keys[j-1] > keys[j]; j-- {
				keys[j-1], keys[j] = keys[j], keys[j-1]
				ids[j-1], ids[j] = ids[j], ids[j-1]
			}
		}
		return
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j-1] > ids[j]; j-- {
			ids[j-1], ids[j] = ids[j], ids[j-1]
		}
	}
}

// WriteDOT encodes g for Graphviz: an undirected graph with numeric
// vertex names, one edge per line in canonical order.
func WriteDOT(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph G {")
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 0 {
			fmt.Fprintf(bw, "  %d;\n", v)
		}
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteAdjacency encodes g one vertex per line: "v: n1 n2 ...", with
// every vertex present (isolated vertices get an empty neighbor list).
func WriteAdjacency(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "%d:", v)
		for _, u := range g.Neighbors(v) {
			fmt.Fprintf(bw, " %d", u)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// ReadAdjacency decodes the WriteAdjacency format. Vertex count is the
// number of lines; neighbor references must be in range.
func ReadAdjacency(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	type row struct {
		v         int
		neighbors []int
	}
	var rows []row
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		head, rest, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("graph: adjacency line %d: missing ':'", lineNo)
		}
		v, err := strconv.Atoi(strings.TrimSpace(head))
		if err != nil {
			return nil, fmt.Errorf("graph: adjacency line %d: bad vertex %q", lineNo, head)
		}
		var ns []int
		for _, f := range strings.Fields(rest) {
			u, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("graph: adjacency line %d: bad neighbor %q", lineNo, f)
			}
			ns = append(ns, u)
		}
		rows = append(rows, row{v: v, neighbors: ns})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	n := 0
	for _, r := range rows {
		if r.v < 0 {
			return nil, fmt.Errorf("graph: negative vertex %d", r.v)
		}
		if r.v+1 > n {
			n = r.v + 1
		}
		for _, u := range r.neighbors {
			if u+1 > n {
				n = u + 1
			}
		}
	}
	g := New(n)
	for _, r := range rows {
		for _, u := range r.neighbors {
			if u < 0 {
				return nil, fmt.Errorf("graph: negative neighbor %d of %d", u, r.v)
			}
			g.AddEdge(r.v, u)
		}
	}
	return g, nil
}
