package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEdgeList checks the edge-list parser never panics and that
// every accepted input round-trips: parse, write, re-parse must
// reproduce the same graph.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("# Nodes: 4 Edges: 2\n0 1\n2 3\n")
	f.Add("# comment\n\n5 5\n5 6\n")
	f.Add("a b\n")
	f.Add("1\n")
	f.Add("9999999999999999999999 1\n")
	f.Add("0 1 extra\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, _, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, _, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if !g.Equal(g2) {
			t.Fatalf("round-trip changed the graph: %d/%d -> %d/%d edges",
				g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

// FuzzReadGraphML checks the GraphML reader never panics and that
// accepted documents round-trip through the writer.
func FuzzReadGraphML(f *testing.F) {
	var seed bytes.Buffer
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if err := WriteGraphML(&seed, g); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("<graphml></graphml>")
	f.Add("<graphml><graph><node id='n0'/><edge source='n0' target='n0'/></graph></graphml>")
	f.Add("not xml at all")
	f.Add("<graphml><graph><edge source='n0' target='n1'/></graph></graphml>")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadGraphML(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteGraphML(&buf, g); err != nil {
			t.Fatalf("write after successful read: %v", err)
		}
		g2, err := ReadGraphML(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of own output: %v", err)
		}
		if g.N() != g2.N() || g.M() != g2.M() {
			t.Fatalf("round-trip changed size: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

// FuzzReadAdjacency covers the adjacency-list format the same way.
func FuzzReadAdjacency(f *testing.F) {
	f.Add("0: 1 2\n1: 0\n2: 0\n")
	f.Add("0:\n")
	f.Add(": 1\n")
	f.Add("0: 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadAdjacency(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}
