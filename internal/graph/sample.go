package graph

import (
	"math/rand"
	"sort"
)

// InducedSubgraph returns the subgraph induced by the given vertices,
// relabeled densely to 0..len(vertices)-1 in the order given, together
// with the mapping from new IDs back to the original IDs. Duplicate
// vertices panic.
func (g *Graph) InducedSubgraph(vertices []int) (*Graph, []int) {
	index := make(map[int]int, len(vertices))
	for i, v := range vertices {
		if _, dup := index[v]; dup {
			panic("graph: duplicate vertex in induced subgraph")
		}
		index[v] = i
	}
	sub := New(len(vertices))
	for i, v := range vertices {
		for w := range g.adj[v] {
			if j, ok := index[w]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	orig := make([]int, len(vertices))
	copy(orig, vertices)
	return sub, orig
}

// RandomVertexSample draws k distinct vertices uniformly at random using
// rng and returns the induced subgraph (the paper's Section 6.1 sampling
// procedure: "the edges in the sampled graph are the adjacent edges of
// the sampled nodes") plus the original vertex IDs. It panics if k
// exceeds the vertex count.
func (g *Graph) RandomVertexSample(k int, rng *rand.Rand) (*Graph, []int) {
	if k > g.N() {
		panic("graph: sample size exceeds vertex count")
	}
	perm := rng.Perm(g.N())[:k]
	sort.Ints(perm)
	sub, orig := g.InducedSubgraph(perm)
	return sub, orig
}

// RelabelByDegree returns an isomorphic copy of g whose vertices are
// renumbered in nonincreasing degree order (stable on vertex ID). This is
// occasionally convenient for golden tests and display.
func (g *Graph) RelabelByDegree() (*Graph, []int) {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.degree[order[a]] > g.degree[order[b]]
	})
	return g.relabel(order)
}

// relabel renumbers vertices so that new vertex i is old vertex order[i].
func (g *Graph) relabel(order []int) (*Graph, []int) {
	index := make([]int, g.N())
	for newID, oldID := range order {
		index[oldID] = newID
	}
	out := New(g.N())
	g.EachEdge(func(u, v int) {
		out.AddEdge(index[u], index[v])
	})
	orig := make([]int, len(order))
	copy(orig, order)
	return out, orig
}
