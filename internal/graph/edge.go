package graph

import (
	"fmt"
	"sort"
)

// Edge is an undirected edge. Canonical form has U < V; Normalize enforces
// it. Edges are value types usable as map keys.
type Edge struct {
	U, V int
}

// E is shorthand for a canonical edge.
func E(u, v int) Edge { return Edge{U: u, V: v}.Normalize() }

// Normalize returns the edge with endpoints ordered so that U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Less orders canonical edges lexicographically.
func (e Edge) Less(o Edge) bool {
	if e.U != o.U {
		return e.U < o.U
	}
	return e.V < o.V
}

// Touches reports whether v is an endpoint of e.
func (e Edge) Touches(v int) bool { return e.U == v || e.V == v }

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: vertex %d not an endpoint of %v", v, e))
}

// String renders the edge as "u-v".
func (e Edge) String() string { return fmt.Sprintf("%d-%d", e.U, e.V) }

// EdgeSet is a set of canonical edges with deterministic snapshot order.
type EdgeSet struct {
	set map[Edge]struct{}
}

// NewEdgeSet returns an empty edge set, optionally pre-populated.
func NewEdgeSet(edges ...Edge) *EdgeSet {
	s := &EdgeSet{set: make(map[Edge]struct{}, len(edges))}
	for _, e := range edges {
		s.Add(e)
	}
	return s
}

// Add inserts e (normalized); it reports whether the edge was new.
func (s *EdgeSet) Add(e Edge) bool {
	e = e.Normalize()
	if _, ok := s.set[e]; ok {
		return false
	}
	s.set[e] = struct{}{}
	return true
}

// Remove deletes e; it reports whether the edge was present.
func (s *EdgeSet) Remove(e Edge) bool {
	e = e.Normalize()
	if _, ok := s.set[e]; !ok {
		return false
	}
	delete(s.set, e)
	return true
}

// Has reports membership of e.
func (s *EdgeSet) Has(e Edge) bool {
	_, ok := s.set[e.Normalize()]
	return ok
}

// Len returns the number of edges in the set.
func (s *EdgeSet) Len() int { return len(s.set) }

// Slice returns the edges in sorted canonical order.
func (s *EdgeSet) Slice() []Edge {
	out := make([]Edge, 0, len(s.set))
	for e := range s.set {
		out = append(out, e)
	}
	sortEdges(out)
	return out
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool { return es[i].Less(es[j]) })
}

// SymmetricDifferenceSize returns |A Δ B| for the edge sets of two graphs
// on the same vertex set. It is the numerator of the paper's distortion
// measure (Equation 1).
func SymmetricDifferenceSize(a, b *Graph) int {
	diff := 0
	a.EachEdge(func(u, v int) {
		if !b.HasEdge(u, v) {
			diff++
		}
	})
	b.EachEdge(func(u, v int) {
		if !a.HasEdge(u, v) {
			diff++
		}
	})
	return diff
}
