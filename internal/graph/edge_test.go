package graph

import (
	"testing"
	"testing/quick"
)

func TestEdgeNormalize(t *testing.T) {
	if e := E(5, 2); e.U != 2 || e.V != 5 {
		t.Fatalf("E(5,2) = %v, want 2-5", e)
	}
	if e := E(1, 1); e.U != 1 || e.V != 1 {
		t.Fatalf("E(1,1) = %v", e)
	}
}

func TestEdgeLess(t *testing.T) {
	cases := []struct {
		a, b Edge
		want bool
	}{
		{Edge{0, 1}, Edge{0, 2}, true},
		{Edge{0, 2}, Edge{0, 1}, false},
		{Edge{0, 5}, Edge{1, 0}, true},
		{Edge{1, 2}, Edge{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEdgeOtherAndTouches(t *testing.T) {
	e := Edge{3, 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other returned wrong endpoint")
	}
	if !e.Touches(3) || !e.Touches(7) || e.Touches(5) {
		t.Fatal("Touches wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other with non-endpoint did not panic")
		}
	}()
	e.Other(1)
}

func TestEdgeString(t *testing.T) {
	if s := (Edge{2, 9}).String(); s != "2-9" {
		t.Fatalf("String = %q", s)
	}
}

func TestEdgeSetBasics(t *testing.T) {
	s := NewEdgeSet(E(1, 0))
	if !s.Has(Edge{0, 1}) || !s.Has(Edge{1, 0}) {
		t.Fatal("normalized membership failed")
	}
	if s.Add(Edge{1, 0}) {
		t.Fatal("duplicate add returned true")
	}
	if !s.Add(Edge{2, 3}) || s.Len() != 2 {
		t.Fatal("add failed")
	}
	if !s.Remove(Edge{3, 2}) || s.Len() != 1 {
		t.Fatal("remove failed")
	}
	if s.Remove(Edge{3, 2}) {
		t.Fatal("double remove returned true")
	}
}

func TestEdgeSetSliceSorted(t *testing.T) {
	s := NewEdgeSet(E(4, 1), E(0, 9), E(0, 2))
	got := s.Slice()
	want := []Edge{{0, 2}, {0, 9}, {1, 4}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Slice = %v, want %v", got, want)
		}
	}
}

func TestSymmetricDifferenceSize(t *testing.T) {
	a := New(4)
	a.AddEdge(0, 1)
	a.AddEdge(1, 2)
	b := New(4)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 3)
	if d := SymmetricDifferenceSize(a, b); d != 3 {
		t.Fatalf("symmetric difference = %d, want 3", d)
	}
	if d := SymmetricDifferenceSize(a, a); d != 0 {
		t.Fatalf("self difference = %d, want 0", d)
	}
}

func TestPropertySymmetricDifferenceIsMetricLike(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := randomGraph(10, 0.3, s1)
		b := randomGraph(10, 0.3, s2)
		dab := SymmetricDifferenceSize(a, b)
		dba := SymmetricDifferenceSize(b, a)
		if dab != dba {
			return false // symmetry
		}
		if SymmetricDifferenceSize(a, a) != 0 {
			return false // identity
		}
		c := randomGraph(10, 0.3, s1^s2)
		// triangle inequality for symmetric difference cardinality
		return SymmetricDifferenceSize(a, c) <= dab+SymmetricDifferenceSize(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
