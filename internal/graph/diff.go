// Diff: the canonical edge-edit form that makes graphs mutable,
// lineage-tracked artifacts. A Diff is validated and order-normalized
// exactly like the registry's Canonicalize — every edge as (min, max),
// each list sorted lexicographically, no duplicates, adds and removes
// disjoint — so the pair (parent, diff) determines the child graph's
// canonical edge set, and therefore its content address, by a pure
// O(m + k) merge: the digest of a child is derivable from (parent
// digest, diff) without re-hashing anything else. That derivability is
// what lets the registry record lineage as (parent id, diff) and
// verify it at boot.
package graph

import (
	"fmt"
	"sort"
)

// Diff is a canonical, order-normalized edge edit on an n-vertex
// simple graph: Adds are edges absent from the parent that the child
// gains, Removes are edges present in the parent that the child loses.
// Both lists hold canonical (U < V) edges in ascending order and are
// disjoint. Construct with NewDiff; a hand-built Diff skips validation
// and may make Apply fail.
type Diff struct {
	// N is the vertex count the diff was validated against; Apply
	// rejects graphs of any other size.
	N int
	// Adds and Removes are the canonical sorted edge lists.
	Adds, Removes []Edge
}

// canonicalizeEdges validates one side of a diff like the registry's
// Canonicalize: range, self-loop, and duplicate rejection, every error
// naming the offending edge and its index in the input. kind labels
// the list ("add" or "remove") in error messages.
func canonicalizeEdges(n int, kind string, edges [][2]int) ([]Edge, error) {
	type idxEdge struct {
		e   Edge
		idx int
	}
	out := make([]idxEdge, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("diff: %s edge [%d, %d] at index %d out of range for n=%d", kind, u, v, i, n)
		}
		if u == v {
			return nil, fmt.Errorf("diff: %s self-loop [%d, %d] at index %d not allowed in a simple graph", kind, u, v, i)
		}
		out[i] = idxEdge{e: Edge{U: u, V: v}.Normalize(), idx: i}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].e != out[j].e {
			return out[i].e.Less(out[j].e)
		}
		return out[i].idx < out[j].idx
	})
	es := make([]Edge, len(out))
	for i, ie := range out {
		if i > 0 && ie.e == out[i-1].e {
			return nil, fmt.Errorf("diff: duplicate %s edge [%d, %d] at index %d", kind, ie.e.U, ie.e.V, ie.idx)
		}
		es[i] = ie.e
	}
	return es, nil
}

// NewDiff validates and canonicalizes an edge edit against an n-vertex
// graph. Out-of-range endpoints, self-loops, duplicates within either
// list (including reversed spellings such as [0,1] and [1,0]), and
// edges appearing in both lists are errors: the diff must be in
// bijection with the edit it denotes, or the (parent, diff) -> child
// digest rule breaks. Whether the adds are actually absent and the
// removes actually present is a property of the graph the diff is
// applied to; Apply checks it.
func NewDiff(n int, adds, removes [][2]int) (Diff, error) {
	if n <= 0 {
		return Diff{}, fmt.Errorf("diff: n must be positive, got %d", n)
	}
	as, err := canonicalizeEdges(n, "add", adds)
	if err != nil {
		return Diff{}, err
	}
	rs, err := canonicalizeEdges(n, "remove", removes)
	if err != nil {
		return Diff{}, err
	}
	// Both lists are sorted: overlap detection is one linear merge pass.
	for i, j := 0, 0; i < len(as) && j < len(rs); {
		switch {
		case as[i] == rs[j]:
			return Diff{}, fmt.Errorf("diff: edge [%d, %d] appears in both adds and removes", as[i].U, as[i].V)
		case as[i].Less(rs[j]):
			i++
		default:
			j++
		}
	}
	return Diff{N: n, Adds: as, Removes: rs}, nil
}

// Empty reports whether the diff edits nothing.
func (d Diff) Empty() bool { return len(d.Adds) == 0 && len(d.Removes) == 0 }

// Size returns the number of edited edges.
func (d Diff) Size() int { return len(d.Adds) + len(d.Removes) }

// Invert returns the inverse edit: applying d then d.Invert() to a
// graph restores it exactly (same edge set, same digest).
func (d Diff) Invert() Diff {
	return Diff{N: d.N, Adds: d.Removes, Removes: d.Adds}
}

// Apply mutates g by the diff. It is atomic: every precondition —
// matching vertex count, every add absent, every remove present — is
// checked before the first mutation, so a failed Apply leaves g
// untouched. Conflicts are errors, never panics, because diffs arrive
// from the network (PATCH bodies, continuous-audit steps).
func (d Diff) Apply(g *Graph) error {
	if g.N() != d.N {
		return fmt.Errorf("diff: graph has %d vertices, diff expects %d", g.N(), d.N)
	}
	for _, e := range d.Adds {
		if g.HasEdge(e.U, e.V) {
			return fmt.Errorf("diff: cannot add edge [%d, %d]: already present", e.U, e.V)
		}
	}
	for _, e := range d.Removes {
		if !g.HasEdge(e.U, e.V) {
			return fmt.Errorf("diff: cannot remove edge [%d, %d]: not present", e.U, e.V)
		}
	}
	for _, e := range d.Adds {
		g.AddEdge(e.U, e.V)
	}
	for _, e := range d.Removes {
		g.RemoveEdge(e.U, e.V)
	}
	return nil
}

// String renders a short summary, e.g. "diff{n=100 +3 -1}".
func (d Diff) String() string {
	return fmt.Sprintf("diff{n=%d +%d -%d}", d.N, len(d.Adds), len(d.Removes))
}
