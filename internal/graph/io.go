package graph

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteEdgeList encodes g in the SNAP-style whitespace-separated edge-list
// format used by the paper's datasets: one "u v" pair per line, canonical
// order, preceded by a comment header with vertex and edge counts.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", e.U, e.V); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList decodes a whitespace-separated edge list. Lines beginning
// with '#' or '%' are comments. Vertex IDs may be sparse and arbitrary;
// they are densified in ascending order of original ID, so a graph whose
// IDs are already dense integers 0..n-1 keeps its labels across a
// write/read round trip no matter how its edges are ordered. Self-loops
// and duplicate edges (including reversed duplicates) are skipped,
// matching the simple-graph model. It returns the graph and the original
// ID of each dense vertex.
//
// A "# Nodes: <n> ..." header comment (the format WriteEdgeList emits)
// declares the vertex count; when it exceeds the number of distinct
// endpoint IDs, the remainder become isolated vertices, so graphs with
// isolated vertices — which count toward the |T| denominators of the
// opacity model — survive a write/read round trip.
func ReadEdgeList(r io.Reader) (*Graph, []int, error) {
	type rawEdge struct{ u, v int }
	var (
		edges  []rawEdge
		ids    []int
		index  = make(map[int]int)
		lookup = func(raw int) int {
			if i, ok := index[raw]; ok {
				return i
			}
			i := len(ids)
			index[raw] = i
			ids = append(ids, raw)
			return i
		}
	)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	declaredNodes := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			if n, ok := parseNodesHeader(line); ok {
				declaredNodes = n
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: need two vertex IDs, got %q", lineNo, line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineNo, fields[1], err)
		}
		edges = append(edges, rawEdge{lookup(u), lookup(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	// Relabel so dense indices follow ascending original IDs; header-
	// declared isolated vertices take the highest indices.
	perm := make([]int, len(ids)) // perm[oldDense] = newDense
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	rank := make(map[int]int, len(sorted))
	for i, id := range sorted {
		rank[id] = i
	}
	for old, id := range ids {
		perm[old] = rank[id]
	}
	n := len(sorted)
	for n < declaredNodes {
		sorted = append(sorted, -1) // isolated vertex with no original ID
		n++
	}
	g := New(n)
	for _, e := range edges {
		g.AddEdge(perm[e.u], perm[e.v]) // silently skips self-loops and duplicates
	}
	return g, sorted, nil
}

// parseNodesHeader extracts n from a "# Nodes: <n> ..." comment line.
func parseNodesHeader(line string) (int, bool) {
	fields := strings.Fields(line)
	for i := 0; i+1 < len(fields); i++ {
		if strings.EqualFold(strings.TrimSuffix(fields[i], ":"), "nodes") ||
			strings.EqualFold(fields[i], "#nodes:") {
			n, err := strconv.Atoi(fields[i+1])
			if err == nil && n >= 0 {
				return n, true
			}
		}
	}
	return 0, false
}
