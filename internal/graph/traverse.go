package graph

// BFSDistances runs a breadth-first search from src and returns dist,
// where dist[v] is the hop distance from src to v, or -1 when v is
// unreachable.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.N())
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for w := range g.adj[u] {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// BoundedBFS runs a BFS from src truncated at depth maxDepth. It returns
// dist with dist[v] = hop distance when it is <= maxDepth, and -1
// otherwise (including for src-unreachable vertices). dist[src] = 0.
//
// This is the workhorse of opacity evaluation: the privacy model only
// asks whether geodesic distances are at most L, so deeper exploration is
// wasted work — the same pruning insight behind the paper's L-pruned
// Floyd-Warshall variants.
func (g *Graph) BoundedBFS(src, maxDepth int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	g.BoundedBFSInto(src, maxDepth, dist, nil)
	return dist
}

// BoundedBFSInto is the allocation-conscious form of BoundedBFS: it writes
// distances into dist (which must have length N() and be pre-filled with
// -1) and uses queue as scratch space when non-nil. It returns the number
// of vertices reached (excluding src).
func (g *Graph) BoundedBFSInto(src, maxDepth int, dist []int, queue []int) int {
	if queue == nil {
		queue = make([]int, 0, g.N())
	}
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	reached := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du >= maxDepth {
			continue
		}
		for w := range g.adj[u] {
			if dist[w] < 0 {
				dist[w] = du + 1
				reached++
				queue = append(queue, w)
			}
		}
	}
	return reached
}

// BoundedBFSIntoSkip is BoundedBFSInto on the graph with the single
// edge {su, sv} treated as absent. It lets removal-delta evaluation ask
// "what would distances be without this edge?" WITHOUT mutating the
// graph, which is what makes concurrent candidate scans share one
// read-only graph instead of cloning it per worker.
func (g *Graph) BoundedBFSIntoSkip(src, maxDepth int, dist []int, queue []int, su, sv int) int {
	if queue == nil {
		queue = make([]int, 0, g.N())
	}
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	reached := 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		if du >= maxDepth {
			continue
		}
		for w := range g.adj[u] {
			if (u == su && w == sv) || (u == sv && w == su) {
				continue
			}
			if dist[w] < 0 {
				dist[w] = du + 1
				reached++
				queue = append(queue, w)
			}
		}
	}
	return reached
}

// ConnectedComponents returns a component label per vertex (labels are
// 0-based, assigned in order of smallest contained vertex) and the number
// of components.
func (g *Graph) ConnectedComponents() (labels []int, count int) {
	labels = make([]int, g.N())
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int, 0, g.N())
	for v := 0; v < g.N(); v++ {
		if labels[v] >= 0 {
			continue
		}
		labels[v] = count
		queue = append(queue[:0], v)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for w := range g.adj[u] {
				if labels[w] < 0 {
					labels[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return labels, count
}

// LargestComponent returns the vertices (ascending) of the largest
// connected component; ties resolve to the component with the smallest
// vertex.
func (g *Graph) LargestComponent() []int {
	labels, count := g.ConnectedComponents()
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for l := 1; l < count; l++ {
		if sizes[l] > sizes[best] {
			best = l
		}
	}
	out := make([]int, 0, sizes[best])
	for v, l := range labels {
		if l == best {
			out = append(out, v)
		}
	}
	return out
}

// Diameter returns the longest shortest path over all reachable vertex
// pairs (the paper's Table 2/3 "Diameter" column, which is computed per
// component on possibly disconnected samples). An edgeless graph has
// diameter 0.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		dist := g.BFSDistances(v)
		for _, d := range dist {
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// GeodesicLength returns the shortest-path length between u and v, or -1
// if v is unreachable from u.
func (g *Graph) GeodesicLength(u, v int) int {
	if u == v {
		return 0
	}
	return g.BFSDistances(u)[v]
}

// CountTrianglesAt returns the number of edges among the neighbors of v,
// i.e. the numerator (unordered) of the local clustering coefficient.
func (g *Graph) CountTrianglesAt(v int) int {
	nbrs := g.adj[v]
	count := 0
	for a := range nbrs {
		for b := range g.adj[a] {
			if b > a {
				if _, ok := nbrs[b]; ok {
					count++
				}
			}
		}
	}
	return count
}

// TriangleCount returns the total number of triangles in the graph.
func (g *Graph) TriangleCount() int {
	total := 0
	for v := 0; v < g.N(); v++ {
		total += g.CountTrianglesAt(v)
	}
	return total / 3
}
