package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func demoGraph() *Graph {
	g := New(5) // vertex 4 isolated
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(0, 3)
	return g
}

func TestGraphMLRoundTrip(t *testing.T) {
	g := demoGraph()
	var buf bytes.Buffer
	if err := WriteGraphML(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraphML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", g, back)
	}
}

func TestGraphMLRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(30)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		var buf bytes.Buffer
		if err := WriteGraphML(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := ReadGraphML(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(g) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestGraphMLNumericIDOrdering(t *testing.T) {
	// n10 must sort after n2 (numeric, not lexicographic).
	doc := `<graphml><graph edgedefault="undirected">
	<node id="n10"/><node id="n2"/><node id="n1"/>
	<edge source="n1" target="n10"/>
	</graph></graphml>`
	g, err := ReadGraphML(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	// Sorted IDs: n1, n2, n10 -> dense 0, 1, 2; the edge is {0, 2}.
	if !g.HasEdge(0, 2) || g.M() != 1 {
		t.Fatalf("edges = %v", g.Edges())
	}
}

func TestGraphMLErrors(t *testing.T) {
	cases := map[string]string{
		"directed":  `<graphml><graph edgedefault="directed"></graph></graphml>`,
		"dup node":  `<graphml><graph edgedefault="undirected"><node id="a"/><node id="a"/></graph></graphml>`,
		"bad edge":  `<graphml><graph edgedefault="undirected"><node id="a"/><edge source="a" target="b"/></graph></graphml>`,
		"malformed": `<graphml><graph>`,
	}
	for name, doc := range cases {
		if _, err := ReadGraphML(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, demoGraph()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"graph G {", "0 -- 1;", "4;"} {
		if !strings.Contains(s, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, s)
		}
	}
	if strings.Contains(s, "1 -- 0") {
		t.Fatal("DOT emitted a reversed duplicate edge")
	}
}

func TestAdjacencyRoundTrip(t *testing.T) {
	g := demoGraph()
	var buf bytes.Buffer
	if err := WriteAdjacency(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAdjacency(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatalf("round trip mismatch:\n%v\nvs\n%v", g, back)
	}
}

func TestReadAdjacencyErrors(t *testing.T) {
	for name, in := range map[string]string{
		"no colon":     "0 1 2\n",
		"bad vertex":   "x: 1\n",
		"bad neighbor": "0: y\n",
		"negative":     "-1: 0\n",
	} {
		if _, err := ReadAdjacency(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Comments and blank lines are fine.
	g, err := ReadAdjacency(strings.NewReader("# c\n\n0: 1\n1: 0\n"))
	if err != nil || g.M() != 1 {
		t.Fatalf("comment handling: %v %v", g, err)
	}
}
