package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("got n=%d m=%d, want 5, 0", g.N(), g.M())
	}
	for v := 0; v < 5; v++ {
		if g.Degree(v) != 0 {
			t.Errorf("vertex %d: degree %d, want 0", v, g.Degree(v))
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdge(t *testing.T) {
	g := New(4)
	if !g.AddEdge(0, 1) {
		t.Fatal("AddEdge(0,1) = false on empty graph")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric after insertion")
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees = %d, %d, want 1, 1", g.Degree(0), g.Degree(1))
	}
}

func TestAddEdgeRejections(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	cases := []struct {
		name string
		u, v int
	}{
		{"duplicate", 0, 1},
		{"reversed duplicate", 1, 0},
		{"self-loop", 2, 2},
		{"negative", -1, 0},
		{"out of range", 0, 3},
	}
	for _, c := range cases {
		if g.AddEdge(c.u, c.v) {
			t.Errorf("%s: AddEdge(%d,%d) = true, want false", c.name, c.u, c.v)
		}
	}
	if g.M() != 1 {
		t.Fatalf("M changed to %d after rejected inserts", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(1, 0) {
		t.Fatal("RemoveEdge(1,0) = false for present edge")
	}
	if g.HasEdge(0, 1) {
		t.Fatal("edge still present after removal")
	}
	if g.M() != 1 || g.Degree(0) != 0 || g.Degree(1) != 1 {
		t.Fatalf("bookkeeping wrong after removal: m=%d d0=%d d1=%d", g.M(), g.Degree(0), g.Degree(1))
	}
	if g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge = true for absent edge")
	}
	if g.RemoveEdge(0, 0) {
		t.Fatal("RemoveEdge = true for self-loop")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	got := g.Neighbors(2)
	want := []int{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", got, want)
		}
	}
}

func TestEdgesCanonicalSorted(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(2, 0)
	g.AddEdge(1, 0)
	es := g.Edges()
	want := []Edge{{0, 1}, {0, 2}, {1, 3}}
	if len(es) != len(want) {
		t.Fatalf("Edges() = %v, want %v", es, want)
	}
	for i := range want {
		if es[i] != want[i] {
			t.Fatalf("Edges() = %v, want %v", es, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.RemoveEdge(0, 1)
	c.AddEdge(2, 3)
	if g.Equal(c) {
		t.Fatal("mutating clone affected Equal")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(2, 3) {
		t.Fatal("mutating clone affected original edges")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEqual(t *testing.T) {
	a := New(3)
	a.AddEdge(0, 1)
	b := New(3)
	b.AddEdge(0, 2)
	if a.Equal(b) {
		t.Fatal("graphs with different edges reported equal")
	}
	b.RemoveEdge(0, 2)
	b.AddEdge(0, 1)
	if !a.Equal(b) {
		t.Fatal("identical graphs reported unequal")
	}
	if a.Equal(New(4)) {
		t.Fatal("different vertex counts reported equal")
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New(4) // path 0-1-2-3: degrees 1,2,2,1
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	h := g.DegreeHistogram()
	want := []int{0, 2, 2}
	if len(h) != len(want) {
		t.Fatalf("histogram %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram %v, want %v", h, want)
		}
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d, want 2", g.MaxDegree())
	}
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1}, {1, 2}})
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatalf("FromEdges built wrong graph: %v", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromEdges with duplicate edge did not panic")
		}
	}()
	FromEdges(3, []Edge{{0, 1}, {1, 0}})
}

func TestString(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	if got := g.String(); got != "graph{n=2 m=1}" {
		t.Fatalf("String() = %q", got)
	}
}

// randomGraph builds a seeded Erdos-Renyi-style graph for property tests.
func randomGraph(n int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestPropertyMutationSequencePreservesInvariants(t *testing.T) {
	f := func(seed int64, opsRaw []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(12, 0.3, seed)
		for _, raw := range opsRaw {
			u := int(raw) % 12
			v := int(raw>>4) % 12
			if rng.Intn(2) == 0 {
				g.AddEdge(u, v)
			} else {
				g.RemoveEdge(u, v)
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHandshakeLemma(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(20, 0.25, seed)
		sum := 0
		for v := 0; v < g.N(); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddRemoveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(15, 0.3, seed)
		before := g.Clone()
		rng := rand.New(rand.NewSource(seed + 1))
		u, v := rng.Intn(15), rng.Intn(15)
		if u == v || g.HasEdge(u, v) {
			return true // nothing to test for this draw
		}
		g.AddEdge(u, v)
		g.RemoveEdge(u, v)
		return g.Equal(before)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
