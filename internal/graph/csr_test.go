package graph

import (
	"math/rand"
	"testing"
)

// TestFrozenMatchesAdjacency: every CSR window equals the sorted
// Neighbors list, and the aggregate counts agree.
func TestFrozenMatchesAdjacency(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := randomGraph(60, 0.1, seed)
		c := g.Frozen()
		if c.N() != g.N() || c.M() != g.M() {
			t.Fatalf("CSR is %d vertices / %d edges, graph is %d / %d", c.N(), c.M(), g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			want := g.Neighbors(v) // sorted copy
			got := c.Neighbors(v)
			if len(got) != len(want) || c.Degree(v) != len(want) {
				t.Fatalf("vertex %d: CSR window %v, Neighbors %v", v, got, want)
			}
			for i := range want {
				if int(got[i]) != want[i] {
					t.Fatalf("vertex %d: CSR window %v, Neighbors %v", v, got, want)
				}
			}
		}
	}
}

// TestFrozenSnapshotImmutable: mutating the graph after Frozen leaves
// the snapshot at its point-in-time contents.
func TestFrozenSnapshotImmutable(t *testing.T) {
	g := pathGraph(4)
	c := g.Frozen()
	g.AddEdge(0, 3)
	g.RemoveEdge(1, 2)
	if c.M() != 3 || c.Degree(0) != 1 || len(c.Neighbors(1)) != 2 {
		t.Fatalf("snapshot changed after graph mutation: m=%d deg0=%d", c.M(), c.Degree(0))
	}
}

// TestCSRBoundedBFSMatchesGraph: CSR BFS agrees with the map-adjacency
// BFS at every depth, and the returned visit order is exactly the set
// of written entries.
func TestCSRBoundedBFSMatchesGraph(t *testing.T) {
	for _, seed := range []int64{7, 8} {
		g := randomGraph(50, 0.08, seed)
		c := g.Frozen()
		n := g.N()
		dist := make([]int32, n)
		for i := range dist {
			dist[i] = -1
		}
		queue := make([]int32, 0, n)
		for depth := 0; depth <= 4; depth++ {
			for src := 0; src < n; src++ {
				want := g.BoundedBFS(src, depth)
				visited := c.BoundedBFSInto(src, depth, dist, queue)
				written := 0
				for v := 0; v < n; v++ {
					if int(dist[v]) != want[v] {
						t.Fatalf("seed %d src %d depth %d: dist[%d] = %d, want %d", seed, src, depth, v, dist[v], want[v])
					}
					if dist[v] >= 0 {
						written++
					}
				}
				if written != len(visited) {
					t.Fatalf("visit order has %d entries, %d dist cells written", len(visited), written)
				}
				for _, v := range visited {
					dist[v] = -1
				}
				queue = visited[:0]
			}
		}
	}
}

// TestCSRBFSDistances: the unbounded row matches Graph.BFSDistances,
// including -1 for unreachable vertices.
func TestCSRBFSDistances(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(4, 5)
	c := g.Frozen()
	for src := 0; src < 6; src++ {
		want := g.BFSDistances(src)
		got := c.BFSDistances(src)
		for v := range want {
			if int(got[v]) != want[v] {
				t.Fatalf("src %d: row %v, want %v", src, got, want)
			}
		}
	}
}

// TestCSRBFSZeroAllocs is the hot-loop allocation guarantee: with a
// pre-filled dist row and a pre-sized queue, a bounded BFS plus its
// touched-only reset allocates nothing.
func TestCSRBFSZeroAllocs(t *testing.T) {
	g := randomGraph(200, 0.05, 3)
	c := g.Frozen()
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, n)
	src := 0
	allocs := testing.AllocsPerRun(100, func() {
		visited := c.BoundedBFSInto(src, 3, dist, queue)
		for _, v := range visited {
			dist[v] = -1
		}
		queue = visited[:0]
		src = (src + 1) % n
	})
	if allocs != 0 {
		t.Fatalf("bounded BFS + reset allocates %.1f objects per run, want 0", allocs)
	}
}

// TestCSRNeighborsZeroAllocs: the window accessor is zero-copy.
func TestCSRNeighborsZeroAllocs(t *testing.T) {
	g := randomGraph(100, 0.1, 4)
	c := g.Frozen()
	var sink int32
	allocs := testing.AllocsPerRun(100, func() {
		for v := 0; v < c.N(); v++ {
			for _, w := range c.Neighbors(v) {
				sink += w
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("CSR neighbor iteration allocates %.1f objects per run, want 0", allocs)
	}
	_ = sink
}

// TestBoundedBFSIntoSkipMasksEdge: the skip-edge traversal equals a
// plain traversal on a copy with the edge actually removed.
func TestBoundedBFSIntoSkipMasksEdge(t *testing.T) {
	for _, seed := range []int64{11, 12, 13} {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(40, 0.1, seed)
		edges := g.Edges()
		if len(edges) == 0 {
			continue
		}
		e := edges[rng.Intn(len(edges))]
		removed := g.Clone()
		removed.RemoveEdge(e.U, e.V)
		n := g.N()
		dist := make([]int, n)
		for i := range dist {
			dist[i] = -1
		}
		queue := make([]int, 0, n)
		for depth := 1; depth <= 3; depth++ {
			for src := 0; src < n; src++ {
				want := removed.BoundedBFS(src, depth)
				g.BoundedBFSIntoSkip(src, depth, dist, queue, e.U, e.V)
				for v := 0; v < n; v++ {
					if dist[v] != want[v] {
						t.Fatalf("seed %d src %d depth %d skip {%d,%d}: dist[%d] = %d, want %d",
							seed, src, depth, e.U, e.V, v, dist[v], want[v])
					}
					dist[v] = -1
				}
			}
		}
		if !g.HasEdge(e.U, e.V) {
			t.Fatal("skip traversal mutated the graph")
		}
	}
}

// TestFrozenEmptyAndSingleton: degenerate shapes freeze cleanly.
func TestFrozenEmptyAndSingleton(t *testing.T) {
	c := New(1).Frozen()
	if c.N() != 1 || c.M() != 0 || len(c.Neighbors(0)) != 0 {
		t.Fatalf("singleton CSR: n=%d m=%d", c.N(), c.M())
	}
}
