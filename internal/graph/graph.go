// Package graph provides the simple-graph substrate used throughout the
// L-opacity reproduction: an undirected, unweighted graph without
// self-loops or multiple edges (the data model of the paper's Section 4),
// together with traversal, sampling, structural statistics, and
// edge-list input/output.
//
// Vertices are dense integers in [0, N()). All mutating operations keep
// degree bookkeeping up to date in O(1). Iteration order over vertices is
// ascending; helpers that surface neighbor or edge collections return them
// in deterministic (sorted) order so that seeded experiments are
// reproducible bit-for-bit.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a mutable simple undirected graph over the vertex set
// {0, ..., n-1}. The zero value is not usable; construct with New or one
// of the decoding helpers.
type Graph struct {
	adj    []map[int]struct{}
	degree []int
	m      int
}

// New returns an empty simple graph on n vertices and no edges.
// It panics if n is negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g := &Graph{
		adj:    make([]map[int]struct{}, n),
		degree: make([]int, n),
	}
	for i := range g.adj {
		g.adj[i] = make(map[int]struct{})
	}
	return g
}

// FromEdges builds a graph on n vertices from the given edge list.
// Duplicate edges and self-loops are rejected with a panic, since they
// indicate a malformed input for a simple graph.
func FromEdges(n int, edges []Edge) *Graph {
	g := New(n)
	for _, e := range edges {
		if !g.AddEdge(e.U, e.V) {
			panic(fmt.Sprintf("graph: duplicate or invalid edge %v", e))
		}
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// Degree returns the current degree of vertex v.
func (g *Graph) Degree(v int) int { return g.degree[v] }

// Degrees returns a copy of the current degree sequence, indexed by vertex.
func (g *Graph) Degrees() []int {
	d := make([]int, len(g.degree))
	copy(d, g.degree)
	return d
}

// HasEdge reports whether the undirected edge {u, v} is present.
// Out-of-range endpoints and self-loops report false.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	_, ok := g.adj[u][v]
	return ok
}

// AddEdge inserts the undirected edge {u, v}. It returns false (and leaves
// the graph unchanged) if the edge already exists, is a self-loop, or has
// an endpoint out of range.
func (g *Graph) AddEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= len(g.adj) || v >= len(g.adj) {
		return false
	}
	if _, ok := g.adj[u][v]; ok {
		return false
	}
	g.adj[u][v] = struct{}{}
	g.adj[v][u] = struct{}{}
	g.degree[u]++
	g.degree[v]++
	g.m++
	return true
}

// RemoveEdge deletes the undirected edge {u, v}. It returns false if the
// edge was not present.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	delete(g.adj[u], v)
	delete(g.adj[v], u)
	g.degree[u]--
	g.degree[v]--
	g.m--
	return true
}

// Neighbors returns the neighbors of v in ascending order. The returned
// slice is freshly allocated and safe to retain.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, 0, len(g.adj[v]))
	for w := range g.adj[v] {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// EachNeighbor calls fn for every neighbor of v in unspecified order.
// It is the allocation-free counterpart of Neighbors for hot loops whose
// result does not depend on iteration order.
func (g *Graph) EachNeighbor(v int, fn func(w int)) {
	for w := range g.adj[v] {
		fn(w)
	}
}

// Edges returns all edges in canonical (U < V) form, sorted
// lexicographically. The slice is freshly allocated.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				out = append(out, Edge{U: u, V: v})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// EachEdge calls fn once per undirected edge with u < v, in unspecified
// order.
func (g *Graph) EachEdge(fn func(u, v int)) {
	for u := range g.adj {
		for v := range g.adj[u] {
			if u < v {
				fn(u, v)
			}
		}
	}
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:    make([]map[int]struct{}, len(g.adj)),
		degree: make([]int, len(g.degree)),
		m:      g.m,
	}
	copy(c.degree, g.degree)
	for v, nbrs := range g.adj {
		m := make(map[int]struct{}, len(nbrs))
		for w := range nbrs {
			m[w] = struct{}{}
		}
		c.adj[v] = m
	}
	return c
}

// Equal reports whether g and h have identical vertex counts and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for u := range g.adj {
		if len(g.adj[u]) != len(h.adj[u]) {
			return false
		}
		for v := range g.adj[u] {
			if _, ok := h.adj[u][v]; !ok {
				return false
			}
		}
	}
	return true
}

// MaxDegree returns the largest degree in the graph, or 0 for an empty
// vertex set.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, d := range g.degree {
		if d > max {
			max = d
		}
	}
	return max
}

// DegreeHistogram returns counts[d] = number of vertices of degree d,
// with the slice sized MaxDegree()+1 (length 1 for an edgeless graph).
func (g *Graph) DegreeHistogram() []int {
	counts := make([]int, g.MaxDegree()+1)
	for _, d := range g.degree {
		counts[d]++
	}
	return counts
}

// Validate checks internal consistency (symmetry of adjacency, degree
// bookkeeping, edge count, absence of self-loops) and returns a
// descriptive error for the first violation found. It is intended for
// tests and for auditing long mutation sequences.
func (g *Graph) Validate() error {
	m2 := 0
	for u := range g.adj {
		if len(g.adj[u]) != g.degree[u] {
			return fmt.Errorf("graph: vertex %d degree book %d != adjacency size %d", u, g.degree[u], len(g.adj[u]))
		}
		for v := range g.adj[u] {
			if v == u {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if v < 0 || v >= len(g.adj) {
				return fmt.Errorf("graph: neighbor %d of %d out of range", v, u)
			}
			if _, ok := g.adj[v][u]; !ok {
				return fmt.Errorf("graph: asymmetric edge %d-%d", u, v)
			}
			m2++
		}
	}
	if m2 != 2*g.m {
		return fmt.Errorf("graph: edge count book %d != adjacency half-sum %d", g.m, m2/2)
	}
	return nil
}

// String returns a short human-readable summary, e.g. "graph{n=7 m=10}".
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}
