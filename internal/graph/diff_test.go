package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// TestNewDiffCanonicalizes: endpoint order, edge order, and the
// sortedness of the output lists are all normalized, so two spellings
// of the same edit produce identical Diff values.
func TestNewDiffCanonicalizes(t *testing.T) {
	a, err := NewDiff(10, [][2]int{{5, 2}, {1, 0}}, [][2]int{{9, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDiff(10, [][2]int{{0, 1}, {2, 5}}, [][2]int{{3, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Adds) != 2 || a.Adds[0] != (Edge{0, 1}) || a.Adds[1] != (Edge{2, 5}) {
		t.Fatalf("adds not canonical: %v", a.Adds)
	}
	if len(a.Removes) != 1 || a.Removes[0] != (Edge{3, 9}) {
		t.Fatalf("removes not canonical: %v", a.Removes)
	}
	if a.String() != b.String() || a.Adds[0] != b.Adds[0] || a.Adds[1] != b.Adds[1] {
		t.Fatalf("spellings disagree: %v vs %v", a, b)
	}
}

// TestNewDiffRejections: every malformed diff is rejected with an
// error that names the offending edge and its input index.
func TestNewDiffRejections(t *testing.T) {
	cases := []struct {
		name    string
		n       int
		adds    [][2]int
		removes [][2]int
		want    string
	}{
		{"zero n", 0, nil, nil, "n must be positive"},
		{"add out of range", 5, [][2]int{{0, 1}, {2, 7}}, nil, "add edge [2, 7] at index 1 out of range for n=5"},
		{"remove out of range", 5, nil, [][2]int{{-1, 2}}, "remove edge [-1, 2] at index 0 out of range for n=5"},
		{"add self-loop", 5, [][2]int{{3, 3}}, nil, "add self-loop [3, 3] at index 0"},
		{"duplicate add", 5, [][2]int{{0, 1}, {1, 0}}, nil, "duplicate add edge [0, 1] at index 1"},
		{"duplicate remove", 5, nil, [][2]int{{2, 3}, {4, 3}, {3, 2}}, "duplicate remove edge [2, 3] at index 2"},
		{"overlap", 5, [][2]int{{0, 1}}, [][2]int{{1, 0}}, "appears in both adds and removes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewDiff(tc.n, tc.adds, tc.removes)
			if err == nil {
				t.Fatalf("NewDiff accepted %v / %v", tc.adds, tc.removes)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestDiffApplyAtomic: a diff whose preconditions fail leaves the
// graph untouched — no partial application.
func TestDiffApplyAtomic(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)

	// The add {3,4} is fine, but {0,1} is already present: nothing may
	// be applied.
	d, err := NewDiff(5, [][2]int{{3, 4}, {0, 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(g); err == nil || !strings.Contains(err.Error(), "already present") {
		t.Fatalf("Apply of conflicting add: err=%v", err)
	}
	if g.M() != 2 || g.HasEdge(3, 4) {
		t.Fatalf("failed Apply mutated the graph: m=%d", g.M())
	}

	// The remove {0,2} is absent: nothing may be applied.
	d, err = NewDiff(5, [][2]int{{3, 4}}, [][2]int{{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(g); err == nil || !strings.Contains(err.Error(), "not present") {
		t.Fatalf("Apply of absent remove: err=%v", err)
	}
	if g.M() != 2 || g.HasEdge(3, 4) {
		t.Fatalf("failed Apply mutated the graph: m=%d", g.M())
	}

	// Wrong vertex count.
	d, err = NewDiff(4, [][2]int{{2, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Apply(g); err == nil || !strings.Contains(err.Error(), "expects 4") {
		t.Fatalf("Apply across sizes: err=%v", err)
	}
}

// TestDiffApplyInvertRoundTrip: Apply(d) then Apply(d.Invert())
// restores the exact edge set, across random graphs and random edits.
func TestDiffApplyInvertRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(30, 0.15, seed)
		orig := g.Clone()
		d := randomDiff(t, rng, g, 5, 3)
		if err := d.Apply(g); err != nil {
			t.Fatalf("seed %d: apply: %v", seed, err)
		}
		if d.Size() > 0 && g.Equal(orig) {
			t.Fatalf("seed %d: non-empty diff %v changed nothing", seed, d)
		}
		if err := d.Invert().Apply(g); err != nil {
			t.Fatalf("seed %d: apply inverse: %v", seed, err)
		}
		if !g.Equal(orig) {
			t.Fatalf("seed %d: round trip did not restore the graph", seed)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// randomDiff builds a valid diff for g: up to maxAdd absent edges and
// up to maxDel present edges.
func randomDiff(t *testing.T, rng *rand.Rand, g *Graph, maxAdd, maxDel int) Diff {
	t.Helper()
	n := g.N()
	var adds, removes [][2]int
	seen := NewEdgeSet()
	for len(adds) < maxAdd {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) || !seen.Add(E(u, v)) {
			continue
		}
		adds = append(adds, [2]int{u, v})
	}
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for i := 0; i < maxDel && i < len(edges); i++ {
		removes = append(removes, [2]int{edges[i].U, edges[i].V})
	}
	d, err := NewDiff(n, adds, removes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// FuzzDiffRoundTrip drives NewDiff/Apply/Invert with arbitrary bytes:
// whatever the fuzzer constructs, a diff either fails validation with
// an error (never a panic) or applies and inverts back to the exact
// parent graph.
func FuzzDiffRoundTrip(f *testing.F) {
	f.Add(int64(1), []byte{1, 2, 3, 4, 5, 6})
	f.Add(int64(7), []byte{0, 0, 9, 9, 200, 1, 3, 3})
	f.Add(int64(42), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		n := 2 + int(seed%29+29)%29 // 2..30
		g := randomGraph(n, 0.2, seed)
		orig := g.Clone()

		// Decode raw bytes into candidate edge lists: pairs of bytes,
		// alternating between the add and remove lists, unvalidated —
		// out-of-range endpoints, self-loops, duplicates, and overlaps
		// all flow into NewDiff, which must reject them gracefully.
		var adds, removes [][2]int
		for i := 0; i+1 < len(raw); i += 2 {
			e := [2]int{int(raw[i]) - 2, int(raw[i+1]) - 2}
			if (i/2)%2 == 0 {
				adds = append(adds, e)
			} else {
				removes = append(removes, e)
			}
		}
		d, err := NewDiff(n, adds, removes)
		if err != nil {
			return // rejected cleanly; nothing more to check
		}
		// A structurally valid diff may still conflict with this
		// particular graph (add present / remove absent): Apply must
		// reject it atomically.
		if err := d.Apply(g); err != nil {
			if !g.Equal(orig) {
				t.Fatal("failed Apply mutated the graph")
			}
			return
		}
		if err := d.Invert().Apply(g); err != nil {
			t.Fatalf("inverse of an applied diff must apply: %v", err)
		}
		if !g.Equal(orig) {
			t.Fatal("apply/invert round trip did not restore the parent")
		}
	})
}
