package graph

import (
	"math/rand"
	"testing"
)

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(0, 4)
	sub, orig := g.InducedSubgraph([]int{1, 2, 4})
	if sub.N() != 3 {
		t.Fatalf("sub.N = %d, want 3", sub.N())
	}
	// Only edge 1-2 survives among {1,2,4}.
	if sub.M() != 1 || !sub.HasEdge(0, 1) {
		t.Fatalf("induced edges wrong: m=%d", sub.M())
	}
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 4 {
		t.Fatalf("orig mapping = %v", orig)
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate vertex did not panic")
		}
	}()
	g.InducedSubgraph([]int{0, 0})
}

func TestRandomVertexSampleDeterministic(t *testing.T) {
	g := randomGraph(30, 0.2, 7)
	a, origA := g.RandomVertexSample(10, rand.New(rand.NewSource(42)))
	b, origB := g.RandomVertexSample(10, rand.New(rand.NewSource(42)))
	if !a.Equal(b) {
		t.Fatal("same seed produced different samples")
	}
	for i := range origA {
		if origA[i] != origB[i] {
			t.Fatal("same seed produced different vertex mappings")
		}
	}
}

func TestRandomVertexSampleSizeAndValidity(t *testing.T) {
	g := randomGraph(25, 0.3, 3)
	sub, orig := g.RandomVertexSample(12, rand.New(rand.NewSource(1)))
	if sub.N() != 12 || len(orig) != 12 {
		t.Fatalf("sample size: n=%d len(orig)=%d", sub.N(), len(orig))
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every sampled edge must exist between the corresponding originals.
	sub.EachEdge(func(u, v int) {
		if !g.HasEdge(orig[u], orig[v]) {
			t.Errorf("sampled edge %d-%d has no original %d-%d", u, v, orig[u], orig[v])
		}
	})
	// And conversely: the sample is induced, so original edges between
	// sampled vertices must be present.
	index := make(map[int]int)
	for i, ov := range orig {
		index[ov] = i
	}
	g.EachEdge(func(u, v int) {
		iu, okU := index[u]
		iv, okV := index[v]
		if okU && okV && !sub.HasEdge(iu, iv) {
			t.Errorf("original edge %d-%d dropped from induced sample", u, v)
		}
	})
}

func TestRandomVertexSampleTooLargePanics(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized sample did not panic")
		}
	}()
	g.RandomVertexSample(4, rand.New(rand.NewSource(1)))
}

func TestRelabelByDegree(t *testing.T) {
	g := New(4) // star centered at 3
	g.AddEdge(3, 0)
	g.AddEdge(3, 1)
	g.AddEdge(3, 2)
	out, orig := g.RelabelByDegree()
	if orig[0] != 3 {
		t.Fatalf("highest-degree vertex should come first, got orig=%v", orig)
	}
	if out.Degree(0) != 3 {
		t.Fatalf("relabeled vertex 0 degree = %d, want 3", out.Degree(0))
	}
	if out.M() != g.M() {
		t.Fatalf("relabel changed edge count: %d != %d", out.M(), g.M())
	}
}
