// Memory-ceiling smoke test: a seeded anonymization run over a
// distance triangle larger than the process is allowed to hold in the
// heap. The triangle is stream-built into a snapshot file (never
// materialized), served back as a paged view under a small page
// budget, and a heap-peak sampler proves the run's resident footprint
// stayed a fraction of the triangle size. CI runs this with GOMEMLIMIT
// set below the triangle, so any code path that silently deep-copies
// the store shows up as GC thrash or an OOM kill, not just a failed
// assertion.
//
// The sweep is minutes of work at paper scale on one core, so the test
// skips unless LOP_MEMCEILING=1.
package anonymize

import (
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/apsp"
	"repro/internal/gen"
)

// sampleHeapPeak polls HeapAlloc until stop is closed and reports the
// highest value seen. A 10ms cadence is coarse, but the failure mode
// it guards against — a full-triangle copy living for an entire scan —
// persists for seconds, not microseconds.
func sampleHeapPeak(stop <-chan struct{}, wg *sync.WaitGroup) *uint64 {
	peak := new(uint64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > *peak {
				*peak = ms.HeapAlloc
			}
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
		}
	}()
	return peak
}

func TestMemoryCeilingPagedRun(t *testing.T) {
	if os.Getenv("LOP_MEMCEILING") != "1" {
		t.Skip("set LOP_MEMCEILING=1 to run the memory-ceiling smoke test")
	}
	const (
		n, m   = 100_000, 1_000_000
		l      = 2
		budget = int64(64 << 20)
	)
	triangle := int64(n) * int64(n-1) / 2 // compact cells = bytes
	g, err := gen.RMAT(n, m, gen.WebRMAT(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "ceiling.store")
	if err := apsp.BuildToFile(path, g, l, apsp.BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	cache := apsp.NewPageCache(budget)
	ps, err := apsp.OpenPagedStore(path, cache)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	peak := sampleHeapPeak(stop, &wg)

	// Theta=1 stops after the initial opacity measurement: one full
	// L-capped sweep of the out-of-core triangle, enough to page every
	// cell through the cache without the multi-hour greedy scan.
	res, err := Run(g, Options{L: l, Theta: 1, Seed: 1, MaxSteps: 1, Distances: ps})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph == nil {
		t.Fatal("run returned no graph")
	}

	if got := cache.Stats().ResidentBytes; got > budget {
		t.Errorf("page cache resident %d bytes exceeds the %d budget", got, budget)
	}
	// The ceiling: the run must never have held the triangle in the
	// heap. Live bytes (graph, CSR, page cache, scratch) are well under
	// 100 MiB here, but the sampler sees GC slack too — under a
	// GOMEMLIMIT near the triangle size the collector legitimately lets
	// HeapAlloc drift toward the limit — so the bound is 3/4 of the
	// triangle: slack-proof, yet any full-triangle copy blows past it.
	if ceiling := uint64(triangle * 3 / 4); *peak > ceiling {
		t.Errorf("heap peaked at %d bytes, want < %d (triangle is %d)", *peak, ceiling, triangle)
	}
	t.Logf("triangle=%d file bytes, heap peak=%d, page cache resident=%d/%d",
		ps.FileBytes(), *peak, cache.Stats().ResidentBytes, budget)
}
