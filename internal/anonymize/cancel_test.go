package anonymize

import (
	"context"
	"testing"
	"time"

	"repro/internal/apsp"
)

// cancelAfterStep returns a context that is cancelled by the returned
// trace hook as soon as the run commits its first step, plus a channel
// closed at that moment — so the test cancels a run that is provably
// mid-computation, not one that never started.
func cancelAfterStep(t *testing.T) (context.Context, func(Step), <-chan struct{}) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	started := make(chan struct{})
	fired := false
	return ctx, func(Step) {
		if !fired {
			fired = true
			cancel()
			close(started)
		}
	}, started
}

// TestRunContextCancelStopsComputation is the regression test for the
// detached-worker bug: cancelling the context must stop the greedy
// loop itself within one iteration, not merely detach whoever was
// waiting, and the result must carry the distinct Cancelled outcome.
func TestRunContextCancelStopsComputation(t *testing.T) {
	// Dense enough that a full run takes many seconds: without the
	// cancellation check the goroutine would keep computing and this
	// test would time out waiting on done.
	g := randomGraph(150, 0.08, 1)
	for _, h := range []Heuristic{Removal, RemovalInsertion} {
		ctx, trace, started := cancelAfterStep(t)
		done := make(chan Result, 1)
		go func() {
			res, err := RunContext(ctx, g, Options{
				L: 3, Theta: 0.01, Heuristic: h, Seed: 1, Trace: trace,
			})
			if err != nil {
				t.Errorf("%v: RunContext error: %v", h, err)
			}
			done <- res
		}()
		select {
		case <-started:
		case <-time.After(30 * time.Second):
			t.Fatalf("%v: run never committed a step", h)
		}
		select {
		case res := <-done:
			if !res.Cancelled {
				t.Errorf("%v: cancelled run did not report Cancelled", h)
			}
			if res.TimedOut {
				t.Errorf("%v: cancellation misreported as TimedOut", h)
			}
			if res.Graph == nil || res.Steps < 1 {
				t.Errorf("%v: cancelled run lost its best-effort state (steps=%d)", h, res.Steps)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%v: computation kept running after cancellation", h)
		}
	}
}

// TestAnnealContextCancel: the annealer polls the same interrupt, so
// cancellation stops it between proposals with the same outcome.
func TestAnnealContextCancel(t *testing.T) {
	g := randomGraph(80, 0.1, 2)
	ctx, trace, started := cancelAfterStep(t)
	done := make(chan Result, 1)
	go func() {
		res, err := AnnealContext(ctx, g, AnnealOptions{L: 3, Theta: 0.01, Seed: 1, Trace: trace})
		if err != nil {
			t.Errorf("AnnealContext error: %v", err)
		}
		done <- res
	}()
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("annealer never accepted a move")
	}
	select {
	case res := <-done:
		if !res.Cancelled {
			t.Error("cancelled anneal did not report Cancelled")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("annealer kept running after cancellation")
	}
}

// TestPrebuiltDistancesSeed: a run seeded from a prebuilt store makes
// exactly the choices a run that builds its own does, and never
// mutates the store it was given.
func TestPrebuiltDistancesSeed(t *testing.T) {
	g := randomGraph(40, 0.1, 3)
	for _, kind := range []apsp.Kind{apsp.KindCompact, apsp.KindPacked} {
		prebuilt := apsp.Build(g, 2, apsp.BuildOptions{Kind: kind})
		pristine := apsp.Clone(prebuilt)
		opts := Options{L: 2, Theta: 0.3, Heuristic: RemovalInsertion, Seed: 7}

		fresh, err := Run(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Distances = prebuilt
		seeded, err := Run(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh.Graph.Equal(seeded.Graph) || fresh.FinalLO != seeded.FinalLO || fresh.Steps != seeded.Steps {
			t.Fatalf("%v: seeded run diverged from fresh build", kind)
		}
		if !apsp.Equal(prebuilt, pristine) {
			t.Fatalf("%v: run mutated the prebuilt store it was handed", kind)
		}
	}
}

// TestPrebuiltDistancesValidated: a store with the wrong dimensions is
// an error, not a corrupt run.
func TestPrebuiltDistancesValidated(t *testing.T) {
	g := randomGraph(20, 0.2, 4)
	wrongL := apsp.Build(g, 3, apsp.BuildOptions{})
	if _, err := Run(g, Options{L: 2, Theta: 0.5, Distances: wrongL}); err == nil {
		t.Error("store capped at the wrong L accepted")
	}
	small := randomGraph(10, 0.2, 4)
	wrongN := apsp.Build(small, 2, apsp.BuildOptions{})
	if _, err := Run(g, Options{L: 2, Theta: 0.5, Distances: wrongN}); err == nil {
		t.Error("store over the wrong vertex count accepted")
	}
}
