package anonymize

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/opacity"
)

// AnnealOptions configures the simulated-annealing opacifier, a
// future-work alternative to the paper's greedy heuristics. Where the
// greedy algorithms commit the locally best edge forever, annealing
// explores the joint space of removals AND insertions with occasional
// uphill moves, and can therefore escape the local optima the paper's
// look-ahead mechanism was designed to work around. The ablation
// experiment compares the two on distortion and runtime.
type AnnealOptions struct {
	// L and Theta define the privacy target, as in Options.
	L     int
	Theta float64
	// Seed drives all stochastic choices; runs are deterministic for a
	// fixed seed.
	Seed int64
	// Steps is the number of proposal iterations. Zero selects a
	// size-scaled default of 40*m + 20*n proposals.
	Steps int
	// InitTemp is the starting temperature T0 (> 0). Zero selects 0.5.
	InitTemp float64
	// FinalTemp is the temperature after the last step (> 0, < T0).
	// Zero selects 1e-4. The geometric cooling rate follows from
	// (FinalTemp/InitTemp)^(1/Steps).
	FinalTemp float64
	// PenaltyWeight scales the infeasibility term of the energy
	// function E = PenaltyWeight*max(0, maxLO-Theta) + |EΔÊ|/|E|.
	// Zero selects 8, which makes any infeasibility more expensive
	// than rewriting the whole edge set.
	PenaltyWeight float64
	// Budget bounds wall-clock time; 0 means unlimited. On exhaustion
	// the best feasible snapshot found so far (or the current state)
	// is returned with TimedOut set.
	Budget time.Duration
	// Trace, when non-nil, receives a record after every ACCEPTED move.
	Trace func(Step)
	// Progress, when non-nil, receives a report after every accepted
	// move, exactly as Options.Progress does for the greedy
	// heuristics: Steps counts accepted moves.
	Progress func(Progress)
	// Types overrides the vertex-pair type system, as in Options.Types.
	Types opacity.TypeAssigner
	// Engine and Store select the initial distance build and backing,
	// as in Options; the defaults (auto engine, compact store) are
	// right for every annealing workload.
	Engine apsp.Engine
	Store  apsp.Kind
	// Distances optionally seeds the run from a prebuilt store, as in
	// Options.Distances: the run mutates a sparse copy-on-write overlay
	// over it, never the store itself.
	Distances apsp.Store
}

func (o *AnnealOptions) setDefaults(n, m int) {
	if o.Steps <= 0 {
		o.Steps = 40*m + 20*n
	}
	if o.InitTemp <= 0 {
		o.InitTemp = 0.5
	}
	if o.FinalTemp <= 0 {
		o.FinalTemp = 1e-4
	}
	if o.PenaltyWeight <= 0 {
		o.PenaltyWeight = 8
	}
}

// Anneal runs simulated annealing toward an L-opaque graph, returning
// the best feasible state encountered (fewest edits with maxLO <= Theta)
// or, when no feasible state was ever visited, the final state. The
// input graph is never modified.
func Anneal(g *graph.Graph, opts AnnealOptions) (Result, error) {
	return AnnealContext(context.Background(), g, opts)
}

// AnnealContext is Anneal under a context: cancellation is observed
// between proposal iterations, exactly like the wall-clock budget, and
// returns the usual best-effort result with Result.Cancelled set.
func AnnealContext(ctx context.Context, g *graph.Graph, opts AnnealOptions) (Result, error) {
	if opts.L < 1 {
		return Result{}, fmt.Errorf("anonymize: L must be >= 1, got %d", opts.L)
	}
	if opts.Theta < 0 || opts.Theta > 1 {
		return Result{}, fmt.Errorf("anonymize: theta must be in [0, 1], got %v", opts.Theta)
	}
	opts.setDefaults(g.N(), g.M())

	s, err := newState(ctx, g, Options{
		L: opts.L, Theta: opts.Theta, Seed: opts.Seed, LookAhead: 1,
		Budget: opts.Budget, Types: opts.Types, Progress: opts.Progress,
		Engine: opts.Engine, Store: opts.Store, Distances: opts.Distances,
	})
	if err != nil {
		return Result{}, err
	}
	a := &annealer{
		state:    s,
		opts:     opts,
		original: g,
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
	return a.run(), nil
}

// annealer layers Metropolis bookkeeping over the incremental state.
type annealer struct {
	*state
	opts     AnnealOptions
	original *graph.Graph
	rng      *rand.Rand

	// Symmetric difference against the original: removedSet holds
	// original edges currently absent; addedSet holds non-original
	// edges currently present. |EΔÊ| = len(removedSet)+len(addedSet).
	removedSet *graph.EdgeSet
	addedSet   *graph.EdgeSet

	bestGraph    *graph.Graph // best feasible snapshot, nil until found
	bestRemoved  []graph.Edge
	bestInserted []graph.Edge
	bestLO       float64

	accepted int
}

// energy maps the current tracker evaluation and edit count to the
// annealing objective.
func (a *annealer) energy(ev opacity.Evaluation) float64 {
	excess := ev.MaxLO - a.opts.Theta
	if excess < 0 {
		excess = 0
	}
	edits := float64(a.removedSet.Len() + a.addedSet.Len())
	m := float64(a.original.M())
	if m == 0 {
		m = 1
	}
	return a.opts.PenaltyWeight*excess + edits/m
}

func (a *annealer) run() Result {
	a.removedSet = graph.NewEdgeSet()
	a.addedSet = graph.NewEdgeSet()
	a.bestLO = math.Inf(1)

	ev := a.tr.Evaluate()
	if ev.MaxLO <= a.opts.Theta {
		// Already opaque: zero edits is globally optimal.
		return a.finish(ev)
	}
	cur := a.energy(ev)
	t0, tEnd := a.opts.InitTemp, a.opts.FinalTemp
	alpha := math.Pow(tEnd/t0, 1/float64(a.opts.Steps))
	temp := t0

	for i := 0; i < a.opts.Steps; i++ {
		if a.interrupted() {
			break
		}
		ev2, undo, ok := a.propose()
		if !ok {
			temp *= alpha
			continue
		}
		a.evals++
		next := a.energy(ev2)
		if next <= cur || a.rng.Float64() < math.Exp((cur-next)/temp) {
			cur = next
			ev = ev2
			a.accepted++
			a.snapshotIfBest(ev)
			if a.opts.Trace != nil {
				a.opts.Trace(Step{Index: a.accepted - 1, Insert: undo.insert, Edges: []graph.Edge{undo.e}, After: ev})
			}
			a.emitProgress(a.accepted, ev.MaxLO)
		} else {
			undo.apply(a)
		}
		temp *= alpha
	}
	return a.finish(ev)
}

// proposal undo record: re-applying the inverse move restores the state.
type undoMove struct {
	e       graph.Edge
	insert  bool // the PROPOSED move was an insertion
	changes []opacity.PairChange
}

func (u undoMove) apply(a *annealer) {
	if u.insert {
		// Undo insertion: revert matrix/tracker entries, drop the edge.
		a.g.RemoveEdge(u.e.U, u.e.V)
		for _, c := range u.changes {
			a.m.Set(c.X, c.Y, c.OldD)
			a.tr.Update(c.X, c.Y, c.NewD, c.OldD)
		}
		a.toggleEditSets(u.e, false)
	} else {
		a.undoRemoval(u.e, u.changes)
		a.toggleEditSets(u.e, true)
	}
}

// toggleEditSets updates the symmetric-difference ledgers after the edge
// e transitions to present (true) or absent (false).
func (a *annealer) toggleEditSets(e graph.Edge, present bool) {
	orig := a.original.HasEdge(e.U, e.V)
	switch {
	case present && orig:
		a.removedSet.Remove(e)
	case present && !orig:
		a.addedSet.Add(e)
	case !present && orig:
		a.removedSet.Add(e)
	default:
		a.addedSet.Remove(e)
	}
}

// propose applies one random edge toggle and returns the resulting
// evaluation plus the undo record. ok is false when no move of the
// chosen kind exists (empty or complete graph).
func (a *annealer) propose() (opacity.Evaluation, undoMove, bool) {
	n := a.g.N()
	tryInsert := a.rng.Intn(2) == 0
	if a.g.M() == 0 {
		tryInsert = true
	}
	if a.g.M() == n*(n-1)/2 {
		tryInsert = false
	}
	if a.g.M() == 0 && tryInsert == false {
		return opacity.Evaluation{}, undoMove{}, false
	}

	if tryInsert {
		e, ok := a.randomAbsentEdge()
		if !ok {
			return opacity.Evaluation{}, undoMove{}, false
		}
		changes := append([]opacity.PairChange(nil), a.insertionChanges(e)...)
		for _, c := range changes {
			a.m.Set(c.X, c.Y, c.NewD)
			a.tr.Update(c.X, c.Y, c.OldD, c.NewD)
		}
		a.g.AddEdge(e.U, e.V)
		a.toggleEditSets(e, true)
		return a.tr.Evaluate(), undoMove{e: e, insert: true, changes: changes}, true
	}

	edges := a.g.Edges()
	e := edges[a.rng.Intn(len(edges))]
	changes := append([]opacity.PairChange(nil), a.commitRemoval(e)...)
	a.toggleEditSets(e, false)
	return a.tr.Evaluate(), undoMove{e: e, insert: false, changes: changes}, true
}

// randomAbsentEdge samples a uniformly random non-edge by rejection,
// falling back to a deterministic scan on very dense graphs.
func (a *annealer) randomAbsentEdge() (graph.Edge, bool) {
	n := a.g.N()
	if n < 2 {
		return graph.Edge{}, false
	}
	for attempt := 0; attempt < 64; attempt++ {
		u := a.rng.Intn(n)
		v := a.rng.Intn(n)
		if u == v || a.g.HasEdge(u, v) {
			continue
		}
		return graph.E(u, v), true
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !a.g.HasEdge(u, v) {
				return graph.Edge{U: u, V: v}, true
			}
		}
	}
	return graph.Edge{}, false
}

// snapshotIfBest records the current state when it is feasible and
// strictly cheaper than the best snapshot so far.
func (a *annealer) snapshotIfBest(ev opacity.Evaluation) {
	if ev.MaxLO > a.opts.Theta {
		return
	}
	edits := a.removedSet.Len() + a.addedSet.Len()
	if a.bestGraph != nil && edits >= len(a.bestRemoved)+len(a.bestInserted) {
		return
	}
	a.bestGraph = a.g.Clone()
	a.bestRemoved = a.removedSet.Slice()
	a.bestInserted = a.addedSet.Slice()
	a.bestLO = ev.MaxLO
}

func (a *annealer) finish(ev opacity.Evaluation) Result {
	if a.bestGraph != nil {
		return Result{
			Graph:          a.bestGraph,
			Satisfied:      true,
			FinalLO:        a.bestLO,
			Removed:        a.bestRemoved,
			Inserted:       a.bestInserted,
			Steps:          a.accepted,
			CandidateEvals: a.evals,
			TimedOut:       a.timedOut,
			Cancelled:      a.cancelled,
		}
	}
	return Result{
		Graph:          a.g,
		Satisfied:      ev.MaxLO <= a.opts.Theta,
		FinalLO:        ev.MaxLO,
		Removed:        a.removedSet.Slice(),
		Inserted:       a.addedSet.Slice(),
		Steps:          a.accepted,
		CandidateEvals: a.evals,
		TimedOut:       a.timedOut,
		Cancelled:      a.cancelled,
	}
}
