package anonymize

import (
	"testing"

	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/opacity"
)

// storeTestGraph is a small graph with enough structure that both
// heuristics commit several moves before satisfying theta.
func storeTestGraph() *graph.Graph {
	g := graph.New(12)
	edges := [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
		{6, 7}, {7, 8}, {8, 9}, {9, 10}, {10, 11}, {11, 0},
		{1, 5}, {3, 7}, {2, 8}, {4, 10},
	}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func sameEdges(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAnonymizerIdenticalAcrossStores is the top-of-stack cross-store
// guarantee: a run on the compact uint8 store commits exactly the same
// edges, in the same order, as a run on the packed int32 store — at
// every worker count, for both heuristics and the annealer.
func TestAnonymizerIdenticalAcrossStores(t *testing.T) {
	for _, h := range []Heuristic{Removal, RemovalInsertion} {
		for _, workers := range []int{1, 8} {
			var results []Result
			for _, kind := range []apsp.Kind{apsp.KindCompact, apsp.KindPacked} {
				res, err := Run(storeTestGraph(), Options{
					L: 2, Theta: 0.4, Heuristic: h, LookAhead: 2,
					Seed: 7, Workers: workers, Store: kind,
				})
				if err != nil {
					t.Fatalf("%v workers=%d store=%v: %v", h, workers, kind, err)
				}
				results = append(results, res)
			}
			a, b := results[0], results[1]
			if !sameEdges(a.Removed, b.Removed) || !sameEdges(a.Inserted, b.Inserted) {
				t.Errorf("%v workers=%d: stores chose different edges:\ncompact: -%v +%v\npacked:  -%v +%v",
					h, workers, a.Removed, a.Inserted, b.Removed, b.Inserted)
			}
			if a.Steps != b.Steps || a.FinalLO != b.FinalLO || a.Satisfied != b.Satisfied {
				t.Errorf("%v workers=%d: run summaries diverge: %+v vs %+v", h, workers, a, b)
			}
			if !a.Graph.Equal(b.Graph) {
				t.Errorf("%v workers=%d: published graphs differ across stores", h, workers)
			}
		}
	}
}

// TestAnnealerIdenticalAcrossStores: the Metropolis path shares the
// same incremental state and must be store-invariant too.
func TestAnnealerIdenticalAcrossStores(t *testing.T) {
	var results []Result
	for _, kind := range []apsp.Kind{apsp.KindCompact, apsp.KindPacked} {
		res, err := Anneal(storeTestGraph(), AnnealOptions{
			L: 2, Theta: 0.4, Seed: 5, Steps: 400, Store: kind,
		})
		if err != nil {
			t.Fatalf("store=%v: %v", kind, err)
		}
		results = append(results, res)
	}
	a, b := results[0], results[1]
	if !a.Graph.Equal(b.Graph) || a.Steps != b.Steps || a.FinalLO != b.FinalLO {
		t.Errorf("annealer diverges across stores: steps %d vs %d, LO %v vs %v",
			a.Steps, b.Steps, a.FinalLO, b.FinalLO)
	}
}

// TestEngineChoiceDoesNotChangeRun: every initial-build engine yields
// the same distance store, so the greedy trajectory is engine-invariant.
func TestEngineChoiceDoesNotChangeRun(t *testing.T) {
	var ref Result
	for i, e := range []apsp.Engine{apsp.EngineAuto, apsp.EngineBFS, apsp.EngineFW, apsp.EnginePointer, apsp.EngineBit} {
		res, err := Run(storeTestGraph(), Options{
			L: 2, Theta: 0.4, Heuristic: RemovalInsertion, LookAhead: 1,
			Seed: 3, Engine: e,
		})
		if err != nil {
			t.Fatalf("engine=%v: %v", e, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !sameEdges(ref.Removed, res.Removed) || !sameEdges(ref.Inserted, res.Inserted) {
			t.Errorf("engine=%v chose different edges than auto", e)
		}
	}
}

// TestTrackerCountsIdenticalAcrossStores pins the middle layer: a
// Tracker built from a compact store reports the same per-type counts
// as one built from a packed store.
func TestTrackerCountsIdenticalAcrossStores(t *testing.T) {
	g := storeTestGraph()
	types := opacity.NewDegreeTypes(g.Degrees())
	for _, L := range []int{1, 2, 3} {
		tc := opacity.NewTracker(types, apsp.BoundedAPSPKind(g, L, apsp.KindCompact))
		tp := opacity.NewTracker(types, apsp.BoundedAPSPKind(g, L, apsp.KindPacked))
		for id := 0; id < types.NumTypes(); id++ {
			if tc.Count(id) != tp.Count(id) {
				t.Errorf("L=%d type %d: compact count %d != packed count %d",
					L, id, tc.Count(id), tp.Count(id))
			}
		}
		if tc.Evaluate() != tp.Evaluate() {
			t.Errorf("L=%d: evaluations diverge: %+v vs %+v", L, tc.Evaluate(), tp.Evaluate())
		}
	}
}
