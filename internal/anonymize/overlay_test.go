package anonymize

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/apsp"
	"repro/internal/graph"
)

// buildSeedStore returns a prebuilt distance store of the fixture graph
// for seeding runs through Options.Distances.
func buildSeedStore(g *graph.Graph, L int) apsp.Store {
	return apsp.Build(g, L, apsp.BuildOptions{})
}

// TestSeededRunMatchesFreshBuild: seeding through Options.Distances
// (now an overlay over the caller's store) commits exactly the same
// edges as building from scratch — for every read-only backing the
// serving layer might hand over: heap, mapped, and paged.
func TestSeededRunMatchesFreshBuild(t *testing.T) {
	g := storeTestGraph()
	opts := Options{
		L: 2, Theta: 0.4, Heuristic: RemovalInsertion, LookAhead: 2, Seed: 7,
	}
	want, err := Run(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	heap := buildSeedStore(g, opts.L)
	path := t.TempDir() + "/seed.store"
	if err := apsp.BuildToFile(path, g, opts.L, apsp.BuildOptions{}); err != nil {
		t.Fatal(err)
	}

	mapped, err := apsp.OpenMappedStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	paged, err := apsp.OpenPagedStore(path, apsp.NewPageCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer paged.Close()

	seeds := map[string]apsp.Store{
		"heap":    heap,
		"mapped":  mapped,
		"paged":   paged,
		"overlay": apsp.NewOverlay(heap),
	}
	for name, seed := range seeds {
		o := opts
		o.Distances = seed
		got, err := Run(g, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !sameEdges(want.Removed, got.Removed) || !sameEdges(want.Inserted, got.Inserted) {
			t.Errorf("%s-seeded run chose different edges:\nfresh: -%v +%v\nseed:  -%v +%v",
				name, want.Removed, want.Inserted, got.Removed, got.Inserted)
		}
		if want.FinalLO != got.FinalLO || want.Steps != got.Steps {
			t.Errorf("%s-seeded run summary diverges: %+v vs %+v", name, want, got)
		}
	}
	// The shared seed store must be untouched by all of those runs.
	if !apsp.Equal(heap, buildSeedStore(g, opts.L)) {
		t.Fatal("a seeded run mutated the shared Distances store")
	}
}

// TestSeedStoreNotClonedUpFront is the satellite fix pinned as a test:
// a run that never commits a move (theta already satisfied, or
// cancelled before the first iteration) must not materialize an
// O(n²/2) copy of the seed store. With n = 2000 the old deep clone
// cost ~2 MB; the overlay path allocates O(1) for the seed and only a
// bounded number of allocations for the run state overall.
func TestSeedStoreNotClonedUpFront(t *testing.T) {
	const n = 2000
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	seed := buildSeedStore(g, 2)
	triangleBytes := int64(n) * int64(n-1) / 2

	cases := map[string]func() error{
		// Theta 1 is satisfied before the first candidate scan: the loop
		// exits at its head without ever writing the store.
		"theta-satisfied": func() error {
			_, err := Run(g, Options{L: 2, Theta: 1, Distances: seed, Seed: 1})
			return err
		},
		// A context cancelled before the run starts stops at the first
		// interrupt poll — again, zero mutations.
		"cancelled": func() error {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := RunContext(ctx, g, Options{L: 2, Theta: 0, Distances: seed, Seed: 1})
			return err
		},
		// An already-exhausted wall-clock budget latches TimedOut between
		// iterations before any move is chosen.
		"budget-exhausted": func() error {
			_, err := Run(g, Options{L: 2, Theta: 0, Distances: seed, Seed: 1, Budget: time.Nanosecond})
			return err
		},
	}
	for name, run := range cases {
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		if err := run(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		runtime.ReadMemStats(&ms1)
		allocated := int64(ms1.TotalAlloc - ms0.TotalAlloc)
		// The run legitimately allocates the cloned graph, tracker, and
		// scratch (all O(n + m)); the triangle is ~2 MB and the O(n)
		// state well under half of it. Anything near triangleBytes means
		// the deep clone is back.
		if allocated > triangleBytes/2 {
			t.Errorf("%s: no-mutation run allocated %d bytes (triangle is %d) — seed store deep-cloned up front?",
				name, allocated, triangleBytes)
		}
	}

	// And per the satellite's letter: the overlay construction itself is
	// allocation-bounded — a handful of descriptors, nothing O(n²).
	allocs := testing.AllocsPerRun(10, func() {
		o := apsp.NewOverlay(seed)
		_ = o.Get(0, 1)
	})
	if allocs > 10 {
		t.Errorf("NewOverlay allocates %v objects per run, want O(1)", allocs)
	}
}

// TestSeededAnnealMatchesFreshBuild: the annealer flows through the
// same newState seeding, so it must be overlay-invariant too.
func TestSeededAnnealMatchesFreshBuild(t *testing.T) {
	g := storeTestGraph()
	opts := AnnealOptions{L: 2, Theta: 0.4, Seed: 5, Steps: 300}
	want, err := Anneal(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Distances = buildSeedStore(g, opts.L)
	got, err := Anneal(g, o)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Graph.Equal(got.Graph) || want.Steps != got.Steps || want.FinalLO != got.FinalLO {
		t.Errorf("seeded anneal diverges: steps %d vs %d, LO %v vs %v",
			want.Steps, got.Steps, want.FinalLO, got.FinalLO)
	}
}
