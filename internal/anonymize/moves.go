package anonymize

import (
	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/opacity"
)

// removalChanges computes, without mutating state, the pair-distance
// changes caused by removing e from the current working graph.
func (s *state) removalChanges(e graph.Edge) []opacity.PairChange {
	s.changes = s.changes[:0]
	apsp.RemovalDelta(s.g, s.m, e.U, e.V, s.scratch, func(x, y, oldD, newD int) {
		s.changes = append(s.changes, opacity.PairChange{X: x, Y: y, OldD: oldD, NewD: newD})
	})
	return s.changes
}

// insertionChanges computes, without mutating state, the pair-distance
// changes caused by inserting e into the current working graph.
func (s *state) insertionChanges(e graph.Edge) []opacity.PairChange {
	s.changes = s.changes[:0]
	apsp.InsertionDeltaScratch(s.m, e.U, e.V, s.scratch, func(x, y, oldD, newD int) {
		s.changes = append(s.changes, opacity.PairChange{X: x, Y: y, OldD: oldD, NewD: newD})
	})
	return s.changes
}

// commitRemoval applies the removal of e to the graph, matrix, and
// tracker, returning the applied changes for possible undo.
func (s *state) commitRemoval(e graph.Edge) []opacity.PairChange {
	changes := append([]opacity.PairChange(nil), s.removalChanges(e)...)
	for _, c := range changes {
		s.m.Set(c.X, c.Y, c.NewD)
		s.tr.Update(c.X, c.Y, c.OldD, c.NewD)
	}
	s.g.RemoveEdge(e.U, e.V)
	return changes
}

// undoRemoval reverses a commitRemoval given its returned change list.
func (s *state) undoRemoval(e graph.Edge, changes []opacity.PairChange) {
	s.g.AddEdge(e.U, e.V)
	for _, c := range changes {
		s.m.Set(c.X, c.Y, c.OldD)
		s.tr.Update(c.X, c.Y, c.NewD, c.OldD)
	}
}

// commitInsertion applies the insertion of e. Unlike removals,
// insertions are never trial-committed: candidates are evaluated
// incrementally via EvaluateWith, so no undo path is needed.
func (s *state) commitInsertion(e graph.Edge) {
	for _, c := range s.insertionChanges(e) {
		s.m.Set(c.X, c.Y, c.NewD)
		s.tr.Update(c.X, c.Y, c.OldD, c.NewD)
	}
	s.g.AddEdge(e.U, e.V)
}

// reservoir implements the paper's tie-breaking policy (Algorithm 4
// lines 8-18): strictly better evaluations are always taken and reset
// the tie counter; exact ties are resolved by reservoir sampling with
// probability 1/t.
type reservoir struct {
	ev    opacity.Evaluation
	found bool
	t     int
}

// offer considers a candidate with evaluation ev; it returns true when
// the caller must record the candidate as the new choice.
func (r *reservoir) offer(ev opacity.Evaluation, rng interface{ Float64() float64 }) bool {
	if !r.found || ev.Better(r.ev) {
		r.ev = ev
		r.found = true
		r.t = 1
		return true
	}
	if ev.Ties(r.ev) {
		r.t++
		if rng.Float64() < 1.0/float64(r.t) {
			return true
		}
	}
	return false
}

// removalCandidates returns the current removal candidates in
// deterministic order: all present edges, minus the exclusion set (EA
// for Rem-Ins).
func (s *state) removalCandidates(exclude *graph.EdgeSet) []graph.Edge {
	all := s.g.Edges()
	if exclude == nil || exclude.Len() == 0 {
		return all
	}
	out := all[:0]
	for _, e := range all {
		if !exclude.Has(e) {
			out = append(out, e)
		}
	}
	return out
}

// normalize strips the population component when the ablation option
// disabling the N(lo) tie-break is set.
func (s *state) normalize(ev opacity.Evaluation) opacity.Evaluation {
	if s.opts.IgnorePopulation {
		ev.Population = 0
	}
	return ev
}

// bestSingleRemoval scans all removal candidates and returns the
// greedy-best edge and its evaluation. Candidate evaluation may run on
// multiple workers (Options.Workers); the reservoir tie-break always
// consumes the evaluations in candidate order, so parallel runs choose
// exactly the same edges as sequential ones.
func (s *state) bestSingleRemoval(candidates []graph.Edge) (graph.Edge, opacity.Evaluation, bool) {
	evs := s.evalBuf(len(candidates))
	s.evalRemovals(candidates, evs)
	var (
		res    reservoir
		chosen graph.Edge
	)
	for i, e := range candidates {
		if res.offer(evs[i], s.rng) {
			chosen = e
		}
	}
	return chosen, res.ev, res.found
}

// chooseInsertion scans all insertable edges (absent, not previously
// removed) and returns the greedy-best one. As with removals, the scan
// may be parallel while the tie-break is sequential and deterministic.
func (s *state) chooseInsertion() (graph.Edge, bool) {
	n := s.g.N()
	s.insertBuf = s.insertBuf[:0]
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if s.g.HasEdge(u, v) {
				continue
			}
			e := graph.Edge{U: u, V: v}
			if s.removed.Has(e) {
				continue
			}
			s.insertBuf = append(s.insertBuf, e)
		}
	}
	evs := s.evalBuf(len(s.insertBuf))
	s.evalInsertions(s.insertBuf, evs)
	var (
		res    reservoir
		chosen graph.Edge
	)
	for i, e := range s.insertBuf {
		if res.offer(evs[i], s.rng) {
			chosen = e
		}
	}
	return chosen, res.found
}

// chooseRemovalCombo implements the look-ahead selection for a removal
// step. It first scans single edges; a strictly improving single move is
// taken immediately. Otherwise the search widens to combinations of
// size 2, 3, ... up to la, returning the first strictly improving
// combination found; if none improves, the overall best candidate (the
// smallest size wins ties) is returned so the greedy always progresses.
// A nil return means there are no candidates at all.
func (s *state) chooseRemovalCombo(cur opacity.Evaluation, exclude *graph.EdgeSet) []graph.Edge {
	cur = s.normalize(cur)
	candidates := s.removalCandidates(exclude)
	if len(candidates) == 0 {
		return nil
	}
	single, ev, ok := s.bestSingleRemoval(candidates)
	if !ok {
		return nil
	}
	if ev.Better(cur) || s.opts.LookAhead <= 1 {
		return []graph.Edge{single}
	}
	bestCombo := []graph.Edge{single}
	bestEv := ev
	for size := 2; size <= s.opts.LookAhead && size <= len(candidates); size++ {
		combo, comboEv, found := s.searchCombos(candidates, size)
		if found && comboEv.Better(bestEv) {
			bestCombo, bestEv = combo, comboEv
		}
		if bestEv.Better(cur) {
			return bestCombo
		}
	}
	return bestCombo
}

// searchCombos exhaustively evaluates all size-c removal combinations
// (generated recursively and evaluated on the fly, per Section 5.2's
// space-saving note), returning the reservoir-selected best.
func (s *state) searchCombos(candidates []graph.Edge, size int) ([]graph.Edge, opacity.Evaluation, bool) {
	var (
		res     reservoir
		best    []graph.Edge
		current = make([]graph.Edge, 0, size)
	)
	var recurse func(start int)
	recurse = func(start int) {
		if len(current) == size {
			ev := s.normalize(s.tr.Evaluate())
			s.evals++
			if res.offer(ev, s.rng) {
				best = append(best[:0], current...)
			}
			return
		}
		// Not enough remaining candidates to fill the combination.
		for i := start; i <= len(candidates)-(size-len(current)); i++ {
			e := candidates[i]
			changes := s.commitRemoval(e)
			current = append(current, e)
			recurse(i + 1)
			current = current[:len(current)-1]
			s.undoRemoval(e, changes)
		}
	}
	recurse(0)
	if !res.found {
		return nil, opacity.Evaluation{}, false
	}
	out := append([]graph.Edge(nil), best...)
	return out, res.ev, true
}
