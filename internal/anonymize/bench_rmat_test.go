package anonymize

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/gen"
)

// BenchmarkAnonymizeRMATGreedy runs a capped greedy removal on an RMAT
// graph — the end-to-end serving workload the CSR engine, non-mutating
// removal deltas, and per-worker scratch reuse accelerate. The default
// size finishes in CI; LOPBENCH_LARGE=1 adds a heavier point.
func BenchmarkAnonymizeRMATGreedy(b *testing.B) {
	sizes := [][2]int{{150, 450}}
	if os.Getenv("LOPBENCH_LARGE") == "1" {
		sizes = append(sizes, [2]int{500, 1_500})
	}
	for _, sz := range sizes {
		g, err := gen.RMAT(sz[0], sz[1], gen.WebRMAT(), rand.New(rand.NewSource(7)))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(benchSizeName(sz[0], g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := Run(g, Options{
					L:        3,
					Theta:    0.0, // unreachable: always run the full step cap
					MaxSteps: 2,
					Seed:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchSizeName(n, m int) string {
	return fmt.Sprintf("n%d_m%d", n, m)
}
