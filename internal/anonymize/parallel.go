package anonymize

import (
	"sync"

	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/opacity"
)

// Candidate scans dominate the heuristics' cost and are embarrassingly
// parallel: evaluating one candidate never depends on another. This
// file provides a parallel scan that preserves the sequential
// semantics bit-for-bit — workers only fill an evaluations array, and
// the reservoir tie-break then consumes it in the original candidate
// order with the original seeded RNG, so a run with Workers = 8 picks
// exactly the edges a run with Workers = 1 picks.
//
// RemovalDelta temporarily toggles the edge under test, so each worker
// operates on a private clone of the working graph; InsertionDelta is
// a pure function of the distance store and needs no clone. The
// distance store itself (s.m, on either backing) is shared read-only
// across workers — deltas only read it, and the compact uint8 backing
// makes those concurrent scans a quarter of the cache traffic of the
// int32 layout.

// workers resolves the configured parallelism: Options.Workers when it
// is greater than 1, else 1 (sequential). Workers = 1 is sequential by
// definition, and the zero value deliberately shares that path — a
// single lane through the parallel machinery would only add goroutine
// and clone overhead, so the two settings are exact equivalents (a
// cross-worker test asserts it). The count is not capped at GOMAXPROCS:
// extra goroutines cost little, and honoring the requested fan-out
// keeps the concurrent code path exercised (and race-checkable) even on
// small machines.
func (s *state) workers() int {
	if w := s.opts.Workers; w > 1 {
		return w
	}
	return 1
}

// evalRemovals fills evs[i] with the evaluation of removing
// candidates[i] from the current graph, in parallel when configured.
func (s *state) evalRemovals(candidates []graph.Edge, evs []opacity.Evaluation) {
	w := s.workers()
	if w == 1 || len(candidates) < 2*w {
		for i, e := range candidates {
			evs[i] = s.normalize(s.tr.EvaluateWith(s.removalChanges(e), s.deltas))
		}
		s.evals += int64(len(candidates))
		return
	}
	var wg sync.WaitGroup
	chunk := (len(candidates) + w - 1) / w
	for start := 0; start < len(candidates); start += chunk {
		end := start + chunk
		if end > len(candidates) {
			end = len(candidates)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			// Private mutable state per worker: RemovalDelta toggles
			// the candidate edge on its own clone.
			g := s.g.Clone()
			scratch := apsp.NewScratch(g.N())
			deltas := make([]int, len(s.deltas))
			var changes []opacity.PairChange
			for i := start; i < end; i++ {
				e := candidates[i]
				changes = changes[:0]
				apsp.RemovalDelta(g, s.m, e.U, e.V, scratch, func(x, y, oldD, newD int) {
					changes = append(changes, opacity.PairChange{X: x, Y: y, OldD: oldD, NewD: newD})
				})
				evs[i] = s.normalize(s.tr.EvaluateWith(changes, deltas))
			}
		}(start, end)
	}
	wg.Wait()
	s.evals += int64(len(candidates))
}

// evalInsertions fills evs[i] with the evaluation of inserting
// candidates[i], in parallel when configured. InsertionDelta reads only
// the shared matrix, so workers need no clones.
func (s *state) evalInsertions(candidates []graph.Edge, evs []opacity.Evaluation) {
	w := s.workers()
	if w == 1 || len(candidates) < 2*w {
		for i, e := range candidates {
			evs[i] = s.normalize(s.tr.EvaluateWith(s.insertionChanges(e), s.deltas))
		}
		s.evals += int64(len(candidates))
		return
	}
	var wg sync.WaitGroup
	chunk := (len(candidates) + w - 1) / w
	for start := 0; start < len(candidates); start += chunk {
		end := start + chunk
		if end > len(candidates) {
			end = len(candidates)
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			deltas := make([]int, len(s.deltas))
			var changes []opacity.PairChange
			for i := start; i < end; i++ {
				e := candidates[i]
				changes = changes[:0]
				apsp.InsertionDelta(s.m, e.U, e.V, func(x, y, oldD, newD int) {
					changes = append(changes, opacity.PairChange{X: x, Y: y, OldD: oldD, NewD: newD})
				})
				evs[i] = s.normalize(s.tr.EvaluateWith(changes, deltas))
			}
		}(start, end)
	}
	wg.Wait()
	s.evals += int64(len(candidates))
}
