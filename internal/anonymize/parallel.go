package anonymize

import (
	"sync"

	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/opacity"
)

// Candidate scans dominate the heuristics' cost and are embarrassingly
// parallel: evaluating one candidate never depends on another. This
// file provides a parallel scan that preserves the sequential
// semantics bit-for-bit — workers only fill an evaluations array, and
// the reservoir tie-break then consumes it in the original candidate
// order with the original seeded RNG, so a run with Workers = 8 picks
// exactly the edges a run with Workers = 1 picks.
//
// Both delta kernels are pure readers: InsertionDelta reads only the
// distance store, and RemovalDelta recomputes with the candidate edge
// masked out of the BFS instead of toggling it, so the working graph
// and the store are shared read-only across every worker — no clones.
// The only per-worker state is a workerState of O(n) scratch buffers,
// allocated once per lane for the lifetime of the run and reused
// across every greedy step, so steady-state candidate scans allocate
// nothing.

// workerState is one evaluation lane's private scratch: reused across
// candidates within a scan and across scans within a run.
type workerState struct {
	scratch *apsp.Scratch
	deltas  []int
	changes []opacity.PairChange
}

// workerStates returns w lanes of per-worker scratch, growing the
// state's pool on first use (and when Workers changes mid-run, which
// the public API does not allow but costs nothing to tolerate).
func (s *state) workerStates(w int) []*workerState {
	for len(s.pool) < w {
		s.pool = append(s.pool, &workerState{
			scratch: apsp.NewScratch(s.g.N()),
			deltas:  make([]int, len(s.deltas)),
		})
	}
	return s.pool[:w]
}

// workers resolves the configured parallelism: Options.Workers when it
// is greater than 1, else 1 (sequential). Workers = 1 is sequential by
// definition, and the zero value deliberately shares that path — a
// single lane through the parallel machinery would only add goroutine
// overhead, so the two settings are exact equivalents (a cross-worker
// test asserts it). The count is not capped at GOMAXPROCS: extra
// goroutines cost little, and honoring the requested fan-out keeps the
// concurrent code path exercised (and race-checkable) even on small
// machines.
func (s *state) workers() int {
	if w := s.opts.Workers; w > 1 {
		return w
	}
	return 1
}

// evalRemovals fills evs[i] with the evaluation of removing
// candidates[i] from the current graph, in parallel when configured.
func (s *state) evalRemovals(candidates []graph.Edge, evs []opacity.Evaluation) {
	w := s.workers()
	if w == 1 || len(candidates) < 2*w {
		for i, e := range candidates {
			evs[i] = s.normalize(s.tr.EvaluateWith(s.removalChanges(e), s.deltas))
		}
		s.evals += int64(len(candidates))
		return
	}
	pool := s.workerStates(w)
	var wg sync.WaitGroup
	chunk := (len(candidates) + w - 1) / w
	lane := 0
	for start := 0; start < len(candidates); start += chunk {
		end := start + chunk
		if end > len(candidates) {
			end = len(candidates)
		}
		ws := pool[lane]
		lane++
		wg.Add(1)
		go func(start, end int, ws *workerState) {
			defer wg.Done()
			for i := start; i < end; i++ {
				e := candidates[i]
				ws.changes = ws.changes[:0]
				apsp.RemovalDelta(s.g, s.m, e.U, e.V, ws.scratch, func(x, y, oldD, newD int) {
					ws.changes = append(ws.changes, opacity.PairChange{X: x, Y: y, OldD: oldD, NewD: newD})
				})
				evs[i] = s.normalize(s.tr.EvaluateWith(ws.changes, ws.deltas))
			}
		}(start, end, ws)
	}
	wg.Wait()
	s.evals += int64(len(candidates))
}

// evalInsertions fills evs[i] with the evaluation of inserting
// candidates[i], in parallel when configured.
func (s *state) evalInsertions(candidates []graph.Edge, evs []opacity.Evaluation) {
	w := s.workers()
	if w == 1 || len(candidates) < 2*w {
		for i, e := range candidates {
			evs[i] = s.normalize(s.tr.EvaluateWith(s.insertionChanges(e), s.deltas))
		}
		s.evals += int64(len(candidates))
		return
	}
	pool := s.workerStates(w)
	var wg sync.WaitGroup
	chunk := (len(candidates) + w - 1) / w
	lane := 0
	for start := 0; start < len(candidates); start += chunk {
		end := start + chunk
		if end > len(candidates) {
			end = len(candidates)
		}
		ws := pool[lane]
		lane++
		wg.Add(1)
		go func(start, end int, ws *workerState) {
			defer wg.Done()
			for i := start; i < end; i++ {
				e := candidates[i]
				ws.changes = ws.changes[:0]
				apsp.InsertionDeltaScratch(s.m, e.U, e.V, ws.scratch, func(x, y, oldD, newD int) {
					ws.changes = append(ws.changes, opacity.PairChange{X: x, Y: y, OldD: oldD, NewD: newD})
				})
				evs[i] = s.normalize(s.tr.EvaluateWith(ws.changes, ws.deltas))
			}
		}(start, end, ws)
	}
	wg.Wait()
	s.evals += int64(len(candidates))
}
