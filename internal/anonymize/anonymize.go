// Package anonymize implements the paper's L-opacification heuristics:
// the Edge Removal algorithm (Algorithm 4), the Edge Removal/Insertion
// algorithm (Algorithm 5), and their look-ahead variants (Section 5).
//
// Both heuristics greedily pick the move yielding the lowest resulting
// maximum opacity LO(G'); ties are broken first by the smallest number
// N(lo) of pair types attaining the maximum, then uniformly at random via
// reservoir sampling with a counter, exactly as in the paper's
// pseudocode. When no single-edge move strictly improves the evaluation,
// the look-ahead mechanism widens the search to combinations of up to la
// edges before falling back to the best (possibly non-improving) move
// found — the paper's "delay this random decision until after checking
// all the possible combinations of size up to the given la threshold".
//
// Candidate moves are evaluated incrementally: a trial insertion's effect
// on the L-capped distance matrix is exact in O(n^2) and a trial
// removal's effect is recomputed only from the BFS sources the edge can
// influence (package apsp), with per-type counts adjusted in O(changes)
// (package opacity). Tests verify the incremental path always agrees
// with full recomputation, so the heuristics make exactly the choices
// the paper's O(|V|^3)-per-candidate implementation would make, only
// faster.
package anonymize

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/apsp"
	"repro/internal/graph"
	"repro/internal/opacity"
)

// Heuristic selects which of the paper's two algorithms to run.
type Heuristic int

const (
	// Removal is the paper's Algorithm 4: greedy edge removal.
	Removal Heuristic = iota
	// RemovalInsertion is the paper's Algorithm 5: alternating greedy
	// removal and insertion, preserving the original edge count.
	RemovalInsertion
)

// String names the heuristic as in the paper's figures.
func (h Heuristic) String() string {
	switch h {
	case Removal:
		return "Rem"
	case RemovalInsertion:
		return "Rem-Ins"
	}
	return fmt.Sprintf("Heuristic(%d)", int(h))
}

// Options configures a run of the L-opacification algorithm.
type Options struct {
	// L is the path-length threshold of the privacy model (>= 1).
	L int
	// Theta is the confidence threshold in [0, 1]; the run stops when
	// max-opacity <= Theta (the loop condition of Algorithms 4 and 5).
	Theta float64
	// Heuristic selects Removal or RemovalInsertion.
	Heuristic Heuristic
	// LookAhead is the paper's la parameter (>= 1): the largest edge
	// combination considered when no single move strictly improves.
	LookAhead int
	// Seed drives the reservoir tie-breaking; runs are deterministic for
	// a fixed seed.
	Seed int64
	// MaxSteps caps greedy iterations as a safety valve; 0 means
	// unlimited (the algorithms terminate on their own regardless,
	// because every edge is removed or inserted at most once).
	MaxSteps int
	// IgnorePopulation disables the paper's N(lo) secondary tie-break
	// criterion (Section 5.2), falling straight to random selection
	// among equal-opacity moves. Exists for the ablation experiments
	// that quantify the criterion's contribution.
	IgnorePopulation bool
	// Workers sets the number of goroutines used for candidate scans;
	// values below 2 (and the zero value) run sequentially. Parallel
	// runs are bit-for-bit identical to sequential ones: workers only
	// evaluate, while selection stays sequential over the candidate
	// order with the seeded RNG.
	Workers int
	// Engine selects the APSP algorithm for the initial distance-store
	// build; the zero value (EngineAuto) is bounded BFS striped over
	// Workers goroutines. Every engine builds the identical store, so
	// the choice never changes which edges the heuristics pick.
	Engine apsp.Engine
	// Store selects the distance-store backing; the zero value is the
	// compact uint8 store, 4x smaller than the packed int32 layout.
	// Runs on either backing choose identical edges — the stores hold
	// identical capped distances.
	Store apsp.Kind
	// Distances, when non-nil, is a prebuilt L-capped distance store of
	// the INPUT graph (same vertex count, same L). The run wraps it in a
	// sparse copy-on-write overlay (apsp.Overlay) instead of rebuilding
	// APSP from scratch — the serving layer's registry hands one cached
	// store to every request — and never mutates the original, so the
	// same store may seed concurrent runs, including read-only mapped
	// and paged views of triangles larger than RAM. No full-triangle
	// copy is ever taken: a run that commits no moves allocates O(1) for
	// the seed, and one that does pays O(mutated cells). Engine and
	// Store are ignored for the initial build when set; every prebuilt
	// store holds the identical capped distances a fresh build would, so
	// the anonymization outcome is unchanged.
	Distances apsp.Store
	// Budget bounds the wall-clock time of the run; 0 means unlimited.
	// When the budget is exhausted the run stops between greedy
	// iterations and returns the best-effort graph with TimedOut set.
	// The paper's ACM experiment ran 16 days; this is the production
	// safety valve for callers that cannot.
	Budget time.Duration
	// Trace, when non-nil, receives a record after every committed step.
	Trace func(Step)
	// Progress, when non-nil, receives a lightweight report after every
	// committed greedy step (or accepted annealing move): steps so far,
	// the current maximum opacity, and the wall-clock budget consumed.
	// It is invoked synchronously on the run's goroutine, so
	// implementations must be fast and must not block; the serving
	// layer uses it to stream job progress to watching clients.
	Progress func(Progress)
	// Types overrides the vertex-pair type system of Definition 1; nil
	// selects the paper's default, unordered pairs of ORIGINAL degrees.
	// Custom assigners must be computed against the original graph —
	// the publication model freezes types before any mutation.
	Types opacity.TypeAssigner
}

// Progress is a point-in-time report of a running opacification,
// delivered through Options.Progress after every committed step.
type Progress struct {
	// Steps counts committed greedy iterations (or accepted annealing
	// moves) so far.
	Steps int
	// MaxLO is the graph-level maximum opacity after the last
	// committed step.
	MaxLO float64
	// Elapsed is the wall-clock time consumed since the run started.
	Elapsed time.Duration
	// Budget echoes Options.Budget (zero for an unbounded run), so a
	// consumer can render "budget consumed" without extra plumbing.
	Budget time.Duration
}

// Step describes one committed greedy move for tracing and audit.
type Step struct {
	// Index is the 0-based step number.
	Index int
	// Insert is false for a removal move, true for an insertion move.
	Insert bool
	// Edges lists the one or more edges of the chosen combination.
	Edges []graph.Edge
	// After is the evaluation following the move.
	After opacity.Evaluation
}

// Result reports the outcome of a run.
type Result struct {
	// Graph is the anonymized graph (a mutated copy; the input graph is
	// never modified).
	Graph *graph.Graph
	// Satisfied reports whether max-opacity <= Theta was reached.
	Satisfied bool
	// FinalLO is the achieved maximum opacity.
	FinalLO float64
	// Removed and Inserted list the committed edge operations in order.
	Removed  []graph.Edge
	Inserted []graph.Edge
	// Steps counts greedy iterations (a Rem-Ins iteration performs one
	// removal and one insertion).
	Steps int
	// CandidateEvals counts how many candidate moves were evaluated, the
	// dominant cost driver (used by the runtime experiments).
	CandidateEvals int64
	// TimedOut reports that the run stopped because Options.Budget was
	// exhausted before the privacy target was reached.
	TimedOut bool
	// Cancelled reports that the run stopped because the context passed
	// to RunContext (or AnnealContext) was cancelled. The returned graph
	// is the best effort at the moment of cancellation.
	Cancelled bool
}

// Distortion returns the paper's Equation 1 for this result relative to
// the original edge count m: |E Δ Ê| / |E|.
func (r Result) Distortion(originalM int) float64 {
	if originalM == 0 {
		return 0
	}
	return float64(len(r.Removed)+len(r.Inserted)) / float64(originalM)
}

// Run executes the configured heuristic on g and returns the anonymized
// graph together with the full operation log. The input graph is cloned,
// and the vertex-pair types are frozen from its ORIGINAL degrees per the
// paper's publication model.
func Run(g *graph.Graph, opts Options) (Result, error) {
	return RunContext(context.Background(), g, opts)
}

// RunContext is Run under a context: cancellation is observed between
// greedy iterations — the same boundary the wall-clock budget is
// checked at — so cancelling the context stops the computation itself
// promptly, not merely whoever was waiting on it. A cancelled run
// returns the best-effort result with Result.Cancelled set.
func RunContext(ctx context.Context, g *graph.Graph, opts Options) (Result, error) {
	if opts.L < 1 {
		return Result{}, fmt.Errorf("anonymize: L must be >= 1, got %d", opts.L)
	}
	if opts.Theta < 0 || opts.Theta > 1 {
		return Result{}, fmt.Errorf("anonymize: theta must be in [0, 1], got %v", opts.Theta)
	}
	if opts.LookAhead < 1 {
		opts.LookAhead = 1
	}
	s, err := newState(ctx, g, opts)
	if err != nil {
		return Result{}, err
	}
	switch opts.Heuristic {
	case Removal:
		return s.runRemoval(), nil
	case RemovalInsertion:
		return s.runRemovalInsertion(), nil
	}
	return Result{}, fmt.Errorf("anonymize: unknown heuristic %d", opts.Heuristic)
}

// state carries the working graph and all incremental bookkeeping.
type state struct {
	ctx     context.Context
	opts    Options
	g       *graph.Graph
	m       apsp.MutableStore
	tr      *opacity.Tracker
	rng     *rand.Rand
	scratch *apsp.Scratch
	deltas  []int                // per-type scratch for EvaluateWith
	changes []opacity.PairChange // reusable per-candidate change buffer
	removed *graph.EdgeSet       // ED: never reinsert these
	added   *graph.EdgeSet       // EA: never re-remove these
	evals   int64

	removedLog  []graph.Edge
	insertedLog []graph.Edge
	steps       int
	started     time.Time // run start, for Progress.Elapsed
	deadline    time.Time // zero when Options.Budget is unset
	timedOut    bool
	cancelled   bool

	evalsBuf  []opacity.Evaluation // reusable candidate-evaluation array
	insertBuf []graph.Edge         // reusable insertion-candidate list
	pool      []*workerState       // per-lane scratch, reused across scans
}

// evalBuf returns a zeroed evaluation slice of length n, reusing the
// state's backing array.
func (s *state) evalBuf(n int) []opacity.Evaluation {
	if cap(s.evalsBuf) < n {
		s.evalsBuf = make([]opacity.Evaluation, n)
	}
	s.evalsBuf = s.evalsBuf[:n]
	return s.evalsBuf
}

func newState(ctx context.Context, g *graph.Graph, opts Options) (*state, error) {
	work := g.Clone()
	types := opts.Types
	if types == nil {
		types = opacity.NewDegreeTypes(g.Degrees())
	}
	var m apsp.MutableStore
	if opts.Distances != nil {
		// Seed from the caller's prebuilt store through a copy-on-write
		// overlay: the run's incremental mutations land in the overlay's
		// sparse dirty set and never leak into the (shared, read-only)
		// original. Unlike the deep Clone this replaces, creating the
		// overlay is O(1) — a run that never mutates (budget already
		// exhausted, theta already satisfied, immediate cancellation)
		// allocates nothing proportional to the triangle, and one that
		// does pays only for the cells it actually changes.
		if opts.Distances.N() != g.N() {
			return nil, fmt.Errorf("anonymize: prebuilt store covers %d vertices, graph has %d", opts.Distances.N(), g.N())
		}
		if opts.Distances.L() != opts.L {
			return nil, fmt.Errorf("anonymize: prebuilt store is capped at L=%d, run wants L=%d", opts.Distances.L(), opts.L)
		}
		m = apsp.NewOverlay(opts.Distances)
	} else {
		m = apsp.Build(work, opts.L, apsp.BuildOptions{
			Engine:  opts.Engine,
			Kind:    opts.Store,
			Workers: opts.Workers,
		})
	}
	var deadline time.Time
	if opts.Budget > 0 {
		deadline = time.Now().Add(opts.Budget)
	}
	return &state{
		ctx:      ctx,
		started:  time.Now(),
		deadline: deadline,
		opts:     opts,
		g:        work,
		m:        m,
		tr:       opacity.NewTracker(types, m),
		rng:      rand.New(rand.NewSource(opts.Seed)),
		scratch:  apsp.NewScratch(g.N()),
		deltas:   make([]int, types.NumTypes()),
		removed:  graph.NewEdgeSet(),
		added:    graph.NewEdgeSet(),
	}, nil
}

func (s *state) result() Result {
	ev := s.tr.Evaluate()
	return Result{
		Graph:          s.g,
		Satisfied:      ev.MaxLO <= s.opts.Theta,
		FinalLO:        ev.MaxLO,
		Removed:        s.removedLog,
		Inserted:       s.insertedLog,
		Steps:          s.steps,
		CandidateEvals: s.evals,
		TimedOut:       s.timedOut,
		Cancelled:      s.cancelled,
	}
}

// overBudget reports whether the wall-clock budget is exhausted,
// latching TimedOut for the result.
func (s *state) overBudget() bool {
	if s.deadline.IsZero() || time.Now().Before(s.deadline) {
		return false
	}
	s.timedOut = true
	return true
}

// interrupted reports whether the run must stop between iterations:
// context cancellation (latching Cancelled) is checked first, then the
// wall-clock budget. Both interrupts share this one poll point, so a
// cancelled job stops within a single greedy iteration instead of
// burning CPU until its budget expires.
func (s *state) interrupted() bool {
	if s.ctx != nil {
		select {
		case <-s.ctx.Done():
			s.cancelled = true
			return true
		default:
		}
	}
	return s.overBudget()
}

// runRemoval is the paper's Algorithm 4 (with look-ahead).
func (s *state) runRemoval() Result {
	cur := s.tr.Evaluate()
	for {
		if cur.MaxLO <= s.opts.Theta || s.g.M() == 0 {
			break
		}
		if s.opts.MaxSteps > 0 && s.steps >= s.opts.MaxSteps {
			break
		}
		if s.interrupted() {
			break
		}
		combo := s.chooseRemovalCombo(cur, nil)
		if combo == nil {
			break
		}
		for _, e := range combo {
			s.commitRemoval(e)
			s.removedLog = append(s.removedLog, e)
		}
		cur = s.traceStep(false, combo)
		s.steps++
	}
	return s.result()
}

// runRemovalInsertion is the paper's Algorithm 5 (with look-ahead).
// Each iteration performs one greedy removal followed by one greedy
// insertion, never reinserting a removed edge nor re-removing an
// inserted one, so the edge count of the original graph is preserved.
func (s *state) runRemovalInsertion() Result {
	cur := s.tr.Evaluate()
	for {
		if cur.MaxLO <= s.opts.Theta || s.g.M() == 0 {
			break
		}
		if s.opts.MaxSteps > 0 && s.steps >= s.opts.MaxSteps {
			break
		}
		if s.interrupted() {
			break
		}
		// Removal phase: candidates are E' minus previously inserted
		// edges (Algorithm 5 line 4).
		combo := s.chooseRemovalCombo(cur, s.added)
		if combo == nil {
			break // no removable edge left: stuck
		}
		for _, e := range combo {
			s.commitRemoval(e)
			s.removedLog = append(s.removedLog, e)
			s.removed.Add(e)
		}
		cur = s.traceStep(false, combo)
		// Insertion phase: candidates are absent edges minus previously
		// removed ones (Algorithm 5 line 12). Inserting can only create
		// new <=L pairs, so a combination of insertions is never
		// strictly better than its best single member; look-ahead
		// escalation is provably useless here and the phase always
		// chooses a single edge.
		if e, ok := s.chooseInsertion(); ok {
			s.commitInsertion(e)
			s.insertedLog = append(s.insertedLog, e)
			s.added.Add(e)
			cur = s.traceStep(true, []graph.Edge{e})
		}
		s.steps++
	}
	return s.result()
}

// traceStep evaluates the tracker once after a committed move, emits
// the trace record when tracing is on plus the progress report when a
// Progress callback is set, and returns the evaluation so the
// caller's loop head can reuse it — one Evaluate per committed step,
// shared between the trace record and the next iteration.
func (s *state) traceStep(insert bool, edges []graph.Edge) opacity.Evaluation {
	ev := s.tr.Evaluate()
	if s.opts.Trace != nil {
		s.opts.Trace(Step{
			Index:  s.steps,
			Insert: insert,
			Edges:  append([]graph.Edge(nil), edges...),
			After:  ev,
		})
	}
	// The step being committed counts: s.steps increments after the
	// iteration completes, so report one past it.
	s.emitProgress(s.steps+1, ev.MaxLO)
	return ev
}

// emitProgress invokes the Progress callback, if any, with the
// current step count and opacity.
func (s *state) emitProgress(steps int, maxLO float64) {
	if s.opts.Progress == nil {
		return
	}
	s.opts.Progress(Progress{
		Steps:   steps,
		MaxLO:   maxLO,
		Elapsed: time.Since(s.started),
		Budget:  s.opts.Budget,
	})
}
