package anonymize

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/opacity"
)

func TestAnnealRejectsBadOptions(t *testing.T) {
	g := gen.GNM(10, 15, rand.New(rand.NewSource(1)))
	if _, err := Anneal(g, AnnealOptions{L: 0, Theta: 0.5}); err == nil {
		t.Fatal("L=0 accepted")
	}
	if _, err := Anneal(g, AnnealOptions{L: 1, Theta: 1.5}); err == nil {
		t.Fatal("theta=1.5 accepted")
	}
	if _, err := Anneal(g, AnnealOptions{L: 1, Theta: -0.1}); err == nil {
		t.Fatal("theta=-0.1 accepted")
	}
}

func TestAnnealAlreadyOpaqueReturnsZeroEdits(t *testing.T) {
	// A path of 3 vertices at theta=1 is trivially opaque.
	g := graph.FromEdges(3, []graph.Edge{graph.E(0, 1), graph.E(1, 2)})
	res, err := Anneal(g, AnnealOptions{L: 1, Theta: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied || len(res.Removed)+len(res.Inserted) != 0 {
		t.Fatalf("want satisfied with zero edits, got satisfied=%v edits=%d",
			res.Satisfied, len(res.Removed)+len(res.Inserted))
	}
}

func TestAnnealReachesTarget(t *testing.T) {
	g := gen.GNM(30, 60, rand.New(rand.NewSource(3)))
	degrees := g.Degrees()
	res, err := Anneal(g, AnnealOptions{L: 1, Theta: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("annealing did not reach theta=0.5 (finalLO=%v)", res.FinalLO)
	}
	// Independent verification: the returned graph really is opaque
	// with respect to the ORIGINAL degrees.
	if got := opacity.MaxLO(res.Graph, degrees, 1); got > 0.5 {
		t.Fatalf("returned graph has maxLO=%v > 0.5", got)
	}
	if got := res.FinalLO; got > 0.5 {
		t.Fatalf("FinalLO=%v > 0.5", got)
	}
}

// The reported edit ledger must reconcile the original with the
// returned graph exactly.
func TestAnnealLedgerReconciles(t *testing.T) {
	g := gen.WattsStrogatz(24, 4, 0.3, rand.New(rand.NewSource(5)))
	res, err := Anneal(g, AnnealOptions{L: 2, Theta: 0.6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := g.Clone()
	for _, e := range res.Removed {
		if !rebuilt.RemoveEdge(e.U, e.V) {
			t.Fatalf("removed edge %v absent from original", e)
		}
	}
	for _, e := range res.Inserted {
		if !rebuilt.AddEdge(e.U, e.V) {
			t.Fatalf("inserted edge %v already present", e)
		}
	}
	if !rebuilt.Equal(res.Graph) {
		t.Fatal("edit ledger does not reproduce the returned graph")
	}
}

func TestAnnealDeterministicForFixedSeed(t *testing.T) {
	g := gen.GNM(20, 40, rand.New(rand.NewSource(9)))
	a, err := Anneal(g, AnnealOptions{L: 1, Theta: 0.4, Seed: 42, Steps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anneal(g, AnnealOptions{L: 1, Theta: 0.4, Seed: 42, Steps: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Equal(b.Graph) || a.Steps != b.Steps {
		t.Fatal("same seed produced different runs")
	}
}

func TestAnnealInputUntouched(t *testing.T) {
	g := gen.GNM(15, 30, rand.New(rand.NewSource(2)))
	before := g.Clone()
	if _, err := Anneal(g, AnnealOptions{L: 1, Theta: 0.5, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if !g.Equal(before) {
		t.Fatal("Anneal mutated its input")
	}
}

func TestAnnealBudgetStopsRun(t *testing.T) {
	g := gen.GNM(60, 240, rand.New(rand.NewSource(4)))
	res, err := Anneal(g, AnnealOptions{
		L: 2, Theta: 0.05, Seed: 1,
		Steps:  1 << 30, // effectively unbounded; the budget must stop it
		Budget: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut && !res.Satisfied {
		t.Fatal("run neither satisfied the target nor timed out")
	}
}

// Property: whatever the seed and target, the returned Satisfied flag
// agrees with an independent opacity computation on the returned graph.
func TestAnnealQuickSatisfiedAgreesWithRecomputation(t *testing.T) {
	f := func(seed int64, thetaRaw uint8) bool {
		theta := 0.3 + float64(thetaRaw%60)/100 // [0.3, 0.9)
		rng := rand.New(rand.NewSource(seed))
		g := gen.GNM(16, 32, rng)
		res, err := Anneal(g, AnnealOptions{L: 1, Theta: theta, Seed: seed, Steps: 4000})
		if err != nil {
			return false
		}
		lo := opacity.MaxLO(res.Graph, g.Degrees(), 1)
		return res.Satisfied == (lo <= theta) && (lo-res.FinalLO) < 1e-9 && (res.FinalLO-lo) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Annealing must never return a feasible result worse than an edit count
// that empties the graph entirely (a trivial feasible solution for any
// theta >= 0 when no pairs remain within L... the useful bound here is
// simply that distortion stays finite and the ledger is duplicate-free).
func TestAnnealLedgerNoDuplicates(t *testing.T) {
	g := gen.BarabasiAlbert(25, 2, 2, rand.New(rand.NewSource(6)))
	res, err := Anneal(g, AnnealOptions{L: 1, Theta: 0.5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := graph.NewEdgeSet()
	for _, e := range res.Removed {
		if !seen.Add(e) {
			t.Fatalf("duplicate removal %v", e)
		}
		if !g.HasEdge(e.U, e.V) {
			t.Fatalf("removed edge %v was not an original edge", e)
		}
	}
	for _, e := range res.Inserted {
		if !seen.Add(e) {
			t.Fatalf("edge %v both removed and inserted", e)
		}
		if g.HasEdge(e.U, e.V) {
			t.Fatalf("inserted edge %v was an original edge", e)
		}
	}
}

func TestAnnealTraceReceivesAcceptedMoves(t *testing.T) {
	g := gen.GNM(20, 50, rand.New(rand.NewSource(10)))
	var steps int
	res, err := Anneal(g, AnnealOptions{
		L: 1, Theta: 0.4, Seed: 2,
		Trace: func(s Step) {
			if len(s.Edges) != 1 {
				t.Errorf("trace step with %d edges", len(s.Edges))
			}
			steps++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != res.Steps {
		t.Fatalf("trace saw %d steps, result reports %d", steps, res.Steps)
	}
}

func BenchmarkAnneal(b *testing.B) {
	g := gen.GNM(40, 100, rand.New(rand.NewSource(1)))
	// theta well below the graph's initial opacity, so every run pays
	// the full proposal schedule rather than returning immediately.
	if lo := opacity.MaxLO(g, g.Degrees(), 1); lo <= 0.2 {
		b.Fatalf("fixture already opaque (%v); benchmark would be vacuous", lo)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Anneal(g, AnnealOptions{L: 1, Theta: 0.2, Seed: int64(i), Steps: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}
