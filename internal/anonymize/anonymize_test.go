package anonymize

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/graph"
	"repro/internal/opacity"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestRunValidatesOptions(t *testing.T) {
	g := fixture.Figure1()
	if _, err := Run(g, Options{L: 0, Theta: 0.5}); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := Run(g, Options{L: 1, Theta: -0.1}); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := Run(g, Options{L: 1, Theta: 1.5}); err == nil {
		t.Error("theta > 1 accepted")
	}
	if _, err := Run(g, Options{L: 1, Theta: 0.5, Heuristic: Heuristic(99)}); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

func TestHeuristicString(t *testing.T) {
	if Removal.String() != "Rem" || RemovalInsertion.String() != "Rem-Ins" {
		t.Fatal("heuristic names wrong")
	}
}

func TestThetaOneIsNoOp(t *testing.T) {
	g := fixture.Figure1()
	res, err := Run(g, Options{L: 1, Theta: 1.0, Heuristic: Removal})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied || res.Steps != 0 || len(res.Removed) != 0 {
		t.Fatalf("theta=1 should satisfy immediately: %+v", res)
	}
	if !res.Graph.Equal(g) {
		t.Fatal("graph modified despite theta=1")
	}
}

func TestInputGraphNeverMutated(t *testing.T) {
	g := fixture.Figure1()
	orig := g.Clone()
	for _, h := range []Heuristic{Removal, RemovalInsertion} {
		if _, err := Run(g, Options{L: 1, Theta: 0.5, Heuristic: h, MaxSteps: 20}); err != nil {
			t.Fatal(err)
		}
		if !g.Equal(orig) {
			t.Fatalf("%v mutated the input graph", h)
		}
	}
}

func TestRemovalFigure1ReachesTheta(t *testing.T) {
	g := fixture.Figure1()
	res, err := Run(g, Options{L: 1, Theta: 2.0 / 3.0, Heuristic: Removal, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("not satisfied: finalLO=%v", res.FinalLO)
	}
	if res.FinalLO > 2.0/3.0 {
		t.Fatalf("finalLO=%v exceeds theta", res.FinalLO)
	}
	// Cross-check against full recomputation with the ORIGINAL degrees.
	if got := opacity.MaxLO(res.Graph, g.Degrees(), 1); got != res.FinalLO {
		t.Fatalf("reported finalLO=%v but full recompute gives %v", res.FinalLO, got)
	}
	if len(res.Inserted) != 0 {
		t.Fatal("pure removal inserted edges")
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRemovalThetaZeroEliminatesAllShortLinks(t *testing.T) {
	g := fixture.Figure1()
	res, err := Run(g, Options{L: 1, Theta: 0, Heuristic: Removal, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied || res.FinalLO != 0 {
		t.Fatalf("theta=0: satisfied=%v finalLO=%v", res.Satisfied, res.FinalLO)
	}
	// At L=1 every remaining edge is a disclosed pair of some type, so
	// opacity 0 forces the empty graph.
	if res.Graph.M() != 0 {
		t.Fatalf("theta=0, L=1 left %d edges", res.Graph.M())
	}
}

func TestRemovalLogMatchesDiff(t *testing.T) {
	g := randomGraph(16, 0.25, 5)
	res, err := Run(g, Options{L: 2, Theta: 0.3, Heuristic: Removal, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != graph.SymmetricDifferenceSize(g, res.Graph) {
		t.Fatalf("removal log length %d != symmetric difference %d",
			len(res.Removed), graph.SymmetricDifferenceSize(g, res.Graph))
	}
	for _, e := range res.Removed {
		if !g.HasEdge(e.U, e.V) {
			t.Errorf("logged removal %v was not an original edge", e)
		}
		if res.Graph.HasEdge(e.U, e.V) {
			t.Errorf("logged removal %v still present", e)
		}
	}
}

func TestRemovalInsertionPreservesEdgeCount(t *testing.T) {
	g := randomGraph(14, 0.3, 11)
	res, err := Run(g, Options{L: 1, Theta: 0.4, Heuristic: RemovalInsertion, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != len(res.Inserted) {
		// Only permissible when the insertion phase ran out of
		// candidates, which cannot happen on this sparse instance.
		t.Fatalf("removals %d != insertions %d", len(res.Removed), len(res.Inserted))
	}
	if res.Graph.M() != g.M() {
		t.Fatalf("edge count changed: %d -> %d", g.M(), res.Graph.M())
	}
}

func TestRemovalInsertionDisjointSets(t *testing.T) {
	g := randomGraph(14, 0.3, 13)
	res, err := Run(g, Options{L: 1, Theta: 0.4, Heuristic: RemovalInsertion, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	removedSet := graph.NewEdgeSet(res.Removed...)
	for _, e := range res.Inserted {
		if removedSet.Has(e) {
			t.Fatalf("edge %v was both removed and inserted", e)
		}
	}
	// No edge may appear twice in either log.
	if removedSet.Len() != len(res.Removed) {
		t.Fatal("duplicate edges in removal log")
	}
	insertedSet := graph.NewEdgeSet(res.Inserted...)
	if insertedSet.Len() != len(res.Inserted) {
		t.Fatal("duplicate edges in insertion log")
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	g := randomGraph(15, 0.3, 17)
	for _, h := range []Heuristic{Removal, RemovalInsertion} {
		a, err := Run(g, Options{L: 1, Theta: 0.3, Heuristic: h, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(g, Options{L: 1, Theta: 0.3, Heuristic: h, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Graph.Equal(b.Graph) || a.Steps != b.Steps {
			t.Fatalf("%v: same seed produced different runs", h)
		}
	}
}

func TestMaxStepsRespected(t *testing.T) {
	g := randomGraph(20, 0.4, 23)
	res, err := Run(g, Options{L: 2, Theta: 0, Heuristic: Removal, MaxSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps > 3 {
		t.Fatalf("steps = %d, want <= 3", res.Steps)
	}
}

func TestTraceCallback(t *testing.T) {
	g := fixture.Figure1()
	var steps []Step
	_, err := Run(g, Options{
		L: 1, Theta: 0.5, Heuristic: Removal, Seed: 1,
		Trace: func(s Step) { steps = append(steps, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no trace steps recorded")
	}
	for i, s := range steps {
		if s.Index != i {
			t.Errorf("step %d has index %d", i, s.Index)
		}
		if len(s.Edges) == 0 {
			t.Errorf("step %d has no edges", i)
		}
		if s.Insert {
			t.Errorf("pure removal traced an insertion at step %d", i)
		}
	}
}

func TestDistortionAccessor(t *testing.T) {
	r := Result{Removed: make([]graph.Edge, 3), Inserted: make([]graph.Edge, 2)}
	if d := r.Distortion(10); d != 0.5 {
		t.Fatalf("Distortion = %v, want 0.5", d)
	}
	if d := r.Distortion(0); d != 0 {
		t.Fatalf("Distortion with m=0 = %v, want 0", d)
	}
}

func TestLookAheadRunsAndSatisfies(t *testing.T) {
	g := randomGraph(12, 0.35, 31)
	for _, h := range []Heuristic{Removal, RemovalInsertion} {
		res, err := Run(g, Options{L: 1, Theta: 0.3, Heuristic: h, LookAhead: 2, Seed: 5, MaxSteps: 200})
		if err != nil {
			t.Fatal(err)
		}
		// Removal can always reach any theta (the empty graph has LO=0);
		// Rem-Ins may legitimately get stuck (paper Figure 6d), so for it
		// we only require bookkeeping consistency.
		if h == Removal && !res.Satisfied {
			t.Fatalf("%v la=2 did not satisfy theta=0.3 (finalLO=%v)", h, res.FinalLO)
		}
		if got := opacity.MaxLO(res.Graph, g.Degrees(), 1); got != res.FinalLO {
			t.Fatalf("%v: incremental finalLO=%v, recompute=%v", h, res.FinalLO, got)
		}
	}
}

func TestLookAheadNeverWorseDistortionOnAverage(t *testing.T) {
	// Not a strict theorem, but across a handful of seeds the la=2
	// removal heuristic must never be dramatically worse than la=1 on
	// the same instance; we assert it finds a solution whenever la=1
	// does.
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(12, 0.3, 40+seed)
		r1, err := Run(g, Options{L: 1, Theta: 0.4, Heuristic: Removal, LookAhead: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(g, Options{L: 1, Theta: 0.4, Heuristic: Removal, LookAhead: 2, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Satisfied && !r2.Satisfied {
			t.Fatalf("seed %d: la=1 satisfied but la=2 did not", seed)
		}
	}
}

func TestPropertyRemovalSatisfiesAndConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		L := 1 + rng.Intn(2)
		g := randomGraph(n, 0.3, seed)
		res, err := Run(g, Options{L: L, Theta: 0.5, Heuristic: Removal, Seed: seed})
		if err != nil || !res.Satisfied {
			return false
		}
		// The incremental bookkeeping must agree with full recompute.
		if got := opacity.MaxLO(res.Graph, g.Degrees(), L); got != res.FinalLO {
			return false
		}
		return res.Graph.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRemInsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(8)
		g := randomGraph(n, 0.3, seed)
		res, err := Run(g, Options{L: 1, Theta: 0.5, Heuristic: RemovalInsertion, Seed: seed, MaxSteps: 300})
		if err != nil {
			return false
		}
		if got := opacity.MaxLO(res.Graph, g.Degrees(), 1); got != res.FinalLO {
			return false
		}
		// The edit logs must reproduce the final graph from the original.
		rebuilt := g.Clone()
		for _, e := range res.Removed {
			if !rebuilt.RemoveEdge(e.U, e.V) {
				return false
			}
		}
		for _, e := range res.Inserted {
			if !rebuilt.AddEdge(e.U, e.V) {
				return false
			}
		}
		return rebuilt.Equal(res.Graph)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRemovalMonotoneNonIncreasingLO(t *testing.T) {
	// The chosen removal at each step yields the minimum achievable
	// next-step LO; since removing edges only deletes <=L pairs from
	// types, the max opacity trace must be non-increasing for Removal.
	g := randomGraph(14, 0.3, 51)
	var prev = 2.0
	_, err := Run(g, Options{
		L: 1, Theta: 0.2, Heuristic: Removal, Seed: 1,
		Trace: func(s Step) {
			if s.After.MaxLO > prev+1e-12 {
				t.Errorf("LO increased at step %d: %v -> %v", s.Index, prev, s.After.MaxLO)
			}
			prev = s.After.MaxLO
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHeuristicStringUnknown(t *testing.T) {
	if got := Heuristic(42).String(); got != "Heuristic(42)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestIgnorePopulationAblation(t *testing.T) {
	g := fixture.Figure1()
	for _, ignore := range []bool{false, true} {
		res, err := Run(g, Options{
			L: 1, Theta: 0.5, Heuristic: Removal, LookAhead: 1,
			Seed: 1, IgnorePopulation: ignore,
		})
		if err != nil {
			t.Fatalf("ignore=%v: %v", ignore, err)
		}
		if !res.Satisfied {
			t.Fatalf("ignore=%v: not satisfied (LO %v)", ignore, res.FinalLO)
		}
		if res.FinalLO > 0.5 {
			t.Fatalf("ignore=%v: LO %v > theta", ignore, res.FinalLO)
		}
	}
}

func TestBudgetStopsEarly(t *testing.T) {
	g := randomGraph(60, 0.2, 8)
	res, err := Run(g, Options{
		L: 2, Theta: 0, Heuristic: Removal, LookAhead: 1, Seed: 1,
		Budget: 1, // one nanosecond: expires before the first iteration
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("TimedOut not set")
	}
	if res.Satisfied {
		t.Fatal("run claims satisfaction after timing out at theta=0")
	}
	if res.Steps != 0 {
		t.Fatalf("steps = %d, want 0 under an expired budget", res.Steps)
	}
	// Unlimited budget (0) must behave exactly as before.
	full, err := Run(g, Options{L: 1, Theta: 0.9, Heuristic: Removal, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.TimedOut {
		t.Fatal("TimedOut set without a budget")
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	// The parallel candidate scan must be bit-for-bit identical to the
	// sequential one: same removals, same insertions, same order.
	for _, h := range []Heuristic{Removal, RemovalInsertion} {
		for _, theta := range []float64{0.7, 0.5} {
			g := randomGraph(40, 0.15, int64(10*theta)+int64(h))
			seq, err := Run(g, Options{L: 2, Theta: theta, Heuristic: h, Seed: 99, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			// Workers = 0 (the zero value) and Workers = 1 are the same
			// sequential path by contract; the run summaries must agree
			// exactly.
			zero, err := Run(g, Options{L: 2, Theta: theta, Heuristic: h, Seed: 99, Workers: 0})
			if err != nil {
				t.Fatal(err)
			}
			if zero.Satisfied != seq.Satisfied || zero.FinalLO != seq.FinalLO ||
				zero.Steps != seq.Steps || zero.CandidateEvals != seq.CandidateEvals ||
				len(zero.Removed) != len(seq.Removed) || len(zero.Inserted) != len(seq.Inserted) {
				t.Fatalf("%v theta=%v: Workers=0 diverges from Workers=1: %+v vs %+v", h, theta, zero, seq)
			}
			for i := range seq.Removed {
				if zero.Removed[i] != seq.Removed[i] {
					t.Fatalf("%v: Workers=0 removal %d differs: %v vs %v", h, i, zero.Removed[i], seq.Removed[i])
				}
			}
			for i := range seq.Inserted {
				if zero.Inserted[i] != seq.Inserted[i] {
					t.Fatalf("%v: Workers=0 insertion %d differs: %v vs %v", h, i, zero.Inserted[i], seq.Inserted[i])
				}
			}
			par, err := Run(g, Options{L: 2, Theta: theta, Heuristic: h, Seed: 99, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Satisfied != par.Satisfied || seq.FinalLO != par.FinalLO {
				t.Fatalf("%v theta=%v: outcome differs: %+v vs %+v", h, theta, seq, par)
			}
			if len(seq.Removed) != len(par.Removed) {
				t.Fatalf("%v: removal counts differ: %d vs %d", h, len(seq.Removed), len(par.Removed))
			}
			for i := range seq.Removed {
				if seq.Removed[i] != par.Removed[i] {
					t.Fatalf("%v: removal %d differs: %v vs %v", h, i, seq.Removed[i], par.Removed[i])
				}
			}
			for i := range seq.Inserted {
				if seq.Inserted[i] != par.Inserted[i] {
					t.Fatalf("%v: insertion %d differs: %v vs %v", h, i, seq.Inserted[i], par.Inserted[i])
				}
			}
			if seq.CandidateEvals != par.CandidateEvals {
				t.Fatalf("%v: eval counts differ: %d vs %d", h, seq.CandidateEvals, par.CandidateEvals)
			}
		}
	}
}

func TestParallelWithLookAhead(t *testing.T) {
	g := randomGraph(30, 0.2, 5)
	seq, err := Run(g, Options{L: 1, Theta: 0.4, Heuristic: Removal, LookAhead: 2, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(g, Options{L: 1, Theta: 0.4, Heuristic: Removal, LookAhead: 2, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Removed) != len(par.Removed) || seq.FinalLO != par.FinalLO {
		t.Fatalf("look-ahead parallel mismatch: %+v vs %+v", seq, par)
	}
}
