package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is the lifecycle phase of a job. Transitions are strictly
// forward: queued -> running -> one of done/failed, and queued or
// running -> cancelled. Finished jobs (done, failed, cancelled) are
// retained for Config.TTL and then evicted.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Finished reports whether the state is terminal.
func (s State) Finished() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Task is the unit of asynchronous work: it computes a serialized
// result under a context that is cancelled when the job is cancelled or
// the manager shuts down. Implementations should return promptly after
// ctx is done; the manager additionally detaches from tasks that cannot
// observe cancellation mid-computation (up to a bound), so a stubborn
// task delays only its own goroutine, not a worker slot.
type Task func(ctx context.Context) (json.RawMessage, error)

// Config sizes a Manager. The zero value selects the defaults noted on
// each field.
type Config struct {
	// Workers is the number of goroutines executing jobs; zero selects 4.
	Workers int
	// QueueDepth bounds the number of jobs waiting to run; Submit
	// returns ErrQueueFull beyond it. Zero selects 64.
	QueueDepth int
	// TTL is how long finished jobs remain queryable before eviction;
	// zero selects 15 minutes.
	TTL time.Duration
	// Clock overrides the time source; nil selects time.Now. Test hook.
	Clock func() time.Time
}

func (c *Config) setDefaults() {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.TTL == 0 {
		c.TTL = 15 * time.Minute
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
}

// Validate rejects negative sizes, which would otherwise panic deep in
// channel construction or silently disable retention.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("jobs: workers must be >= 0, got %d", c.Workers)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("jobs: queue depth must be >= 0, got %d", c.QueueDepth)
	}
	if c.TTL < 0 {
		return fmt.Errorf("jobs: job TTL must be >= 0, got %v", c.TTL)
	}
	return nil
}

// Job is an immutable snapshot of one job's state, safe to retain and
// serialize.
type Job struct {
	ID    string
	Op    string
	State State
	// RequestID is the originating HTTP request's ID (WithRequestID),
	// empty for jobs submitted outside a traced request.
	RequestID string
	// CacheHit marks a job satisfied from the result cache at submit
	// time; such jobs are born in StateDone and never occupy a worker.
	CacheHit bool
	// Result holds the serialized result once State == StateDone.
	Result json.RawMessage
	// Error describes the failure once State == StateFailed.
	Error string
	// Created, Started, and Finished are the lifecycle timestamps;
	// Started and Finished are zero until the job reaches that phase.
	Created, Started, Finished time.Time
}

// Stats is a point-in-time snapshot of the manager.
type Stats struct {
	// Workers is the configured worker count.
	Workers int
	// QueueCapacity is the configured queue bound; QueueDepth is the
	// number of jobs currently waiting to run.
	QueueCapacity, QueueDepth int
	// Running, Done, Failed, and Cancelled count retained jobs by
	// state. Finished jobs leave the counts when their TTL expires or
	// the retention cap evicts them.
	Running, Done, Failed, Cancelled int
	// Detached counts cancelled-but-still-computing task goroutines:
	// work whose job was cancelled (or whose manager closed) but whose
	// computation has not observed the cancellation yet. With
	// cancellation-aware tasks this drains to zero within one poll
	// interval; a persistently non-zero value means some task is
	// ignoring its context.
	Detached int
}

// maxRetainedFinished caps how many finished jobs stay queryable at
// once, independent of TTL: beyond it the oldest-finished job is
// evicted on each new finish. Without the cap, a flood of submissions
// (cache-hit submissions in particular, which bypass the queue bound)
// would grow the retained map by rate x TTL with no backpressure.
const maxRetainedFinished = 1024

// Sentinel errors returned by Submit and Cancel. The server layer maps
// these onto HTTP statuses (429, 404, 409, 503).
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrClosed    = errors.New("jobs: manager closed")
	ErrNotFound  = errors.New("jobs: no such job")
	ErrFinished  = errors.New("jobs: job already finished")
)

type job struct {
	id        string
	op        string
	requestID string
	state     State
	cacheHit  bool
	task      Task
	cancel    context.CancelFunc
	ctx       context.Context
	result    json.RawMessage
	err       error

	created, started, finished time.Time

	// events is the retained lifecycle/progress stream (see events.go);
	// changed is closed and replaced on every append so Events waiters
	// wake without per-subscriber bookkeeping.
	events   []Event
	eventSeq int
	changed  chan struct{}
}

func (j *job) snapshot() Job {
	s := Job{
		ID: j.id, Op: j.op, RequestID: j.requestID,
		State: j.state, CacheHit: j.cacheHit,
		Result:  j.result,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	return s
}

// release drops the references a finished job no longer needs — the
// task closure (which captures the parsed input graph and request) and
// its context — so retention for the TTL pins only the result bytes,
// not every input submitted in the last TTL window. Callers hold the
// manager lock and have already set a terminal state.
func (j *job) release() {
	j.task = nil
	j.ctx = nil
	if j.cancel != nil {
		j.cancel()
		j.cancel = nil
	}
}

// Manager runs submitted tasks on a fixed worker pool over an explicit
// FIFO queue. The queue is a slice, not a channel, so cancelling a
// queued job frees its slot immediately and queue-depth accounting is
// exact. All methods are safe for concurrent use.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond // signalled on enqueue and on close
	pending  []*job     // FIFO of StateQueued jobs
	jobs     map[string]*job
	closed   bool
	done     chan struct{} // closed when every worker has exited
	live     int           // workers still running
	detached int           // abandoned task goroutines still computing
}

// maxDetached bounds how many cancelled-but-still-computing task
// goroutines may exist before workers stop detaching and instead wait
// for the task to return. Without the bound, a submit/cancel loop could
// stack unboundedly many heavy computations despite the worker cap.
func (m *Manager) maxDetached() int { return 2 * m.cfg.Workers }

// NewManager starts cfg.Workers workers and returns the manager. Call
// Close to stop them. It panics on an invalid Config; call
// Config.Validate first to surface the error gracefully.
func NewManager(cfg Config) *Manager {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.setDefaults()
	m := &Manager{
		cfg:  cfg,
		jobs: make(map[string]*job),
		done: make(chan struct{}),
		live: cfg.Workers,
	}
	m.cond = sync.NewCond(&m.mu)
	for i := 0; i < cfg.Workers; i++ {
		go m.worker()
	}
	return m
}

// newID returns a 16-hex-character random job identifier.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("jobs: reading random id: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// SubmitOption customizes a submission (Submit or SubmitDone).
type SubmitOption func(*job)

// WithRequestID records the originating HTTP request's ID on the job;
// it rides on the snapshot and on every event of the job's stream, so
// an async run stays traceable to the request that started it.
func WithRequestID(id string) SubmitOption {
	return func(j *job) { j.requestID = id }
}

// Submit enqueues task under the given operation name and returns the
// new job's snapshot. It fails with ErrQueueFull when QueueDepth jobs
// are already waiting and ErrClosed after Close.
func (m *Manager) Submit(op string, task Task, opts ...SubmitOption) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Job{}, ErrClosed
	}
	m.sweepLocked()
	if len(m.pending) >= m.cfg.QueueDepth {
		return Job{}, ErrQueueFull
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id: newID(), op: op, state: StateQueued, task: task,
		cancel: cancel, created: m.cfg.Clock(),
		changed: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(j)
	}
	// The task's context carries the job's progress hook, so code deep
	// inside the computation can stream progress (jobs.ReportProgress)
	// without knowing about the manager.
	j.ctx = context.WithValue(ctx, progressKey{}, func(p json.RawMessage) { m.publish(j, p) })
	m.pending = append(m.pending, j)
	m.jobs[j.id] = j
	m.eventLocked(j, EventState, nil)
	m.cond.Signal()
	return j.snapshot(), nil
}

// SubmitDone registers a job that is already complete — the submit-time
// cache-hit path. The job is born in StateDone with CacheHit set, never
// enters the queue, and is retained for the usual TTL so clients can
// poll it like any other job.
func (m *Manager) SubmitDone(op string, result json.RawMessage, opts ...SubmitOption) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return Job{}, ErrClosed
	}
	m.sweepLocked()
	now := m.cfg.Clock()
	j := &job{
		id: newID(), op: op, state: StateDone, cacheHit: true,
		result: result, created: now, started: now, finished: now,
		changed: make(chan struct{}),
	}
	for _, opt := range opts {
		opt(j)
	}
	m.jobs[j.id] = j
	m.eventLocked(j, EventState, nil)
	m.evictOverCapLocked()
	return j.snapshot(), nil
}

// Get returns the snapshot of a job, if it is still retained.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.snapshot(), true
}

// Cancel stops a job: a queued job is cancelled immediately and leaves
// the queue (its slot frees for new submissions at once); a running job
// has its context cancelled and is marked cancelled at once (the worker
// discards any result the task still produces). Cancelling a finished
// job returns its snapshot with ErrFinished; an unknown or evicted id
// returns ErrNotFound.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	if j.state.Finished() {
		return j.snapshot(), ErrFinished
	}
	if j.state == StateQueued {
		m.dequeueLocked(j)
	}
	j.state = StateCancelled
	m.finishLocked(j)
	return j.snapshot(), nil
}

// dequeueLocked removes a job from the pending FIFO.
func (m *Manager) dequeueLocked(target *job) {
	for i, j := range m.pending {
		if j == target {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			return
		}
	}
}

// QueueCapacity returns the configured queue bound. The value is
// immutable after construction, so — unlike Stats, which scans every
// retained job under the lock — this is free and safe on hot rejection
// paths.
func (m *Manager) QueueCapacity() int { return m.cfg.QueueDepth }

// Stats snapshots queue occupancy and per-state job counts.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked()
	s := Stats{
		Workers:       m.cfg.Workers,
		QueueCapacity: m.cfg.QueueDepth,
		QueueDepth:    len(m.pending),
		Detached:      m.detached,
	}
	for _, j := range m.jobs {
		switch j.state {
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCancelled:
			s.Cancelled++
		}
	}
	return s
}

// Close shuts the manager down: no further submissions are accepted,
// queued jobs are cancelled, running jobs have their contexts
// cancelled, and Close waits for the workers to exit or ctx to expire,
// whichever comes first. Detached computations may still be winding
// down when Close returns; their results are discarded. Retained
// snapshots remain queryable via Get.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		select {
		case <-m.done:
			return nil
		case <-ctx.Done():
			return fmt.Errorf("jobs: shutdown: %w", ctx.Err())
		}
	}
	m.closed = true
	m.pending = nil
	now := m.cfg.Clock()
	for _, j := range m.jobs {
		if j.state.Finished() {
			continue
		}
		j.state = StateCancelled
		j.finished = now
		j.release()
		m.eventLocked(j, EventState, nil)
	}
	m.evictOverCapLocked()
	m.cond.Broadcast()
	m.mu.Unlock()

	select {
	case <-m.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobs: shutdown: %w", ctx.Err())
	}
}

// sweepLocked evicts finished jobs whose TTL has expired. Eviction is
// lazy — it runs on every public entry point — so retention needs no
// janitor goroutine and is exact under an injected test clock.
func (m *Manager) sweepLocked() {
	cutoff := m.cfg.Clock().Add(-m.cfg.TTL)
	for id, j := range m.jobs {
		if j.state.Finished() && j.finished.Before(cutoff) {
			delete(m.jobs, id)
		}
	}
}

// finishLocked stamps a job's terminal timestamp, drops its inputs,
// emits the terminal state event, and applies the retention cap.
func (m *Manager) finishLocked(j *job) {
	j.finished = m.cfg.Clock()
	j.release()
	m.eventLocked(j, EventState, nil)
	m.evictOverCapLocked()
}

// evictOverCapLocked enforces maxRetainedFinished by evicting the
// oldest-finished jobs first. The linear scan is fine: the cap bounds
// the map at ~1k entries, and the scan runs only when a job finishes.
func (m *Manager) evictOverCapLocked() {
	for {
		count := 0
		var oldestID string
		var oldestAt time.Time
		for id, j := range m.jobs {
			if !j.state.Finished() {
				continue
			}
			count++
			if oldestID == "" || j.finished.Before(oldestAt) {
				oldestID, oldestAt = id, j.finished
			}
		}
		if count <= maxRetainedFinished {
			return
		}
		delete(m.jobs, oldestID)
	}
}

func (m *Manager) worker() {
	defer func() {
		m.mu.Lock()
		m.live--
		if m.live == 0 {
			close(m.done)
		}
		m.mu.Unlock()
	}()
	for {
		m.mu.Lock()
		for len(m.pending) == 0 && !m.closed {
			m.cond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		j.state = StateRunning
		j.started = m.cfg.Clock()
		m.eventLocked(j, EventState, nil)
		ctx, task := j.ctx, j.task
		canDetach := m.detached < m.maxDetached()
		m.mu.Unlock()

		result, err := m.runTask(ctx, task, canDetach)

		m.mu.Lock()
		if j.state == StateRunning { // not cancelled mid-run
			if err != nil {
				j.state = StateFailed
				j.err = err
			} else {
				j.state = StateDone
				j.result = result
			}
			m.finishLocked(j)
		}
		m.mu.Unlock()
	}
}

type taskResult struct {
	value json.RawMessage
	err   error
}

// runTask executes one task, converting panics to errors. When
// canDetach is set and the context is cancelled first, the worker
// returns immediately and the abandoned goroutine's eventual result is
// discarded — this is what keeps DELETE /v1/jobs/{id} effective even
// for computations that cannot observe cancellation mid-run. The
// detach budget (maxDetached) keeps a submit/cancel loop from stacking
// unboundedly many live computations; past it, cancellation still
// flips the job's state instantly but the worker slot stays pinned
// until the task returns.
func (m *Manager) runTask(ctx context.Context, task Task, canDetach bool) (json.RawMessage, error) {
	done := make(chan taskResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- taskResult{err: fmt.Errorf("jobs: task panicked: %v", r)}
			}
		}()
		v, err := task(ctx)
		done <- taskResult{value: v, err: err}
	}()
	if !canDetach {
		r := <-done
		return r.value, r.err
	}
	select {
	case r := <-done:
		return r.value, r.err
	case <-ctx.Done():
		// Detach: count the abandoned computation and leave a reaper to
		// uncount it when it finally returns.
		m.mu.Lock()
		m.detached++
		m.mu.Unlock()
		go func() {
			<-done
			m.mu.Lock()
			m.detached--
			m.mu.Unlock()
		}()
		return nil, ctx.Err()
	}
}
