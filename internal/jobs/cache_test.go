package jobs

import (
	"fmt"
	"testing"
)

func TestCacheHitMissCounters(t *testing.T) {
	c := NewCache(4)
	k, _ := HashJSON("a")
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("v"))
	v, ok := c.Get(k)
	if !ok || string(v) != "v" {
		t.Fatalf("get after put: %q found=%v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Capacity != 4 {
		t.Fatalf("stats %+v", s)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	keys := make([]Key, 3)
	for i := range keys {
		keys[i], _ = HashJSON(i)
	}
	c.Put(keys[0], []byte("0"))
	c.Put(keys[1], []byte("1"))
	// Touch key 0 so key 1 is the LRU entry when 2 arrives.
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("key 0 missing")
	}
	c.Put(keys[2], []byte("2"))
	if _, ok := c.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(keys[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := NewCache(2)
	k, _ := HashJSON("k")
	c.Put(k, []byte("old"))
	c.Put(k, []byte("new"))
	if v, _ := c.Get(k); string(v) != "new" {
		t.Fatalf("value %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d", c.Len())
	}
}

func TestHashJSONDistinguishesInputs(t *testing.T) {
	type keyData struct {
		Op     string
		L      int
		Engine string
	}
	base := keyData{"opacity", 2, "auto"}
	k0, err := HashJSON(base)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Key]keyData{k0: base}
	for _, variant := range []keyData{
		{"anonymize", 2, "auto"},
		{"opacity", 3, "auto"},
		{"opacity", 2, "bfs"},
	} {
		k, err := HashJSON(variant)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("collision between %+v and %+v", prev, variant)
		}
		seen[k] = variant
	}
	// Same content hashes identically.
	again, _ := HashJSON(keyData{"opacity", 2, "auto"})
	if again != k0 {
		t.Fatal("identical content produced different keys")
	}
}

func TestHashJSONError(t *testing.T) {
	if _, err := HashJSON(make(chan int)); err == nil {
		t.Fatal("unencodable value hashed")
	}
}

func TestNewCachePanicsOnBadCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%d) did not panic", capacity)
				}
			}()
			NewCache(capacity)
		}()
	}
}

func TestKeyString(t *testing.T) {
	k, _ := HashJSON("x")
	s := fmt.Sprint(k)
	if len(s) != 64 {
		t.Fatalf("hex key length %d, want 64", len(s))
	}
}
