package jobs

import (
	"context"
	"encoding/json"
	"time"
)

// EventType discriminates the two kinds of job events.
type EventType string

const (
	// EventState marks a lifecycle transition; Event.State carries the
	// state just entered.
	EventState EventType = "state"
	// EventProgress carries a progress payload published by the
	// running task via ReportProgress.
	EventProgress EventType = "progress"
)

// Event is one entry in a job's lifecycle/progress stream. Seq
// increases strictly within a job (0, 1, 2, ...), so a consumer can
// resume a stream from the last sequence number it saw.
type Event struct {
	Seq   int
	Time  time.Time
	Type  EventType
	State State
	// RequestID is the job's originating request ID (WithRequestID),
	// stamped on every event so each line of a streamed run can be
	// joined against the submitting request's log entry.
	RequestID string
	// Error carries the failure message on the terminal EventState of
	// a failed job.
	Error string
	// Progress is the opaque payload of an EventProgress, exactly as
	// the task passed it to ReportProgress.
	Progress json.RawMessage
}

// maxEventsPerJob bounds the retained history per job. State events
// are always kept (there are at most three); beyond the cap the
// OLDEST progress events are pruned, so a late watcher of a very
// chatty job replays a truncated prefix but always sees the latest
// progress and every lifecycle transition.
const maxEventsPerJob = 512

// eventLocked appends an event to the job's history and wakes every
// Events waiter. Callers hold m.mu and have already set the state the
// event should report.
func (m *Manager) eventLocked(j *job, typ EventType, progress json.RawMessage) {
	ev := Event{Seq: j.eventSeq, Time: m.cfg.Clock(), Type: typ, State: j.state, RequestID: j.requestID, Progress: progress}
	if typ == EventState && j.err != nil {
		ev.Error = j.err.Error()
	}
	j.eventSeq++
	j.events = append(j.events, ev)
	if len(j.events) > maxEventsPerJob {
		for i, e := range j.events {
			if e.Type == EventProgress {
				j.events = append(j.events[:i], j.events[i+1:]...)
				break
			}
		}
	}
	close(j.changed)
	j.changed = make(chan struct{})
}

// Events returns the job's retained events with Seq strictly greater
// than after (pass -1 to start from the beginning), blocking until at
// least one such event exists, the job reaches a terminal state, or
// ctx is done. The bool reports whether the job is finished — once
// true, no further events will ever arrive and the caller should stop
// iterating. A consumer streams a job by looping: emit the returned
// batch, advance after to the last Seq seen, repeat until finished.
//
// An unknown or TTL-evicted id returns ErrNotFound; a job evicted
// mid-stream surfaces the same way on the next call.
func (m *Manager) Events(ctx context.Context, id string, after int) ([]Event, bool, error) {
	m.mu.Lock()
	for {
		m.sweepLocked()
		j, ok := m.jobs[id]
		if !ok {
			m.mu.Unlock()
			return nil, false, ErrNotFound
		}
		var out []Event
		for _, ev := range j.events {
			if ev.Seq > after {
				out = append(out, ev)
			}
		}
		finished := j.state.Finished()
		if len(out) > 0 || finished {
			m.mu.Unlock()
			return out, finished, nil
		}
		ch := j.changed
		m.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		m.mu.Lock()
	}
}

// progressKey carries the per-job progress hook through the task's
// context.
type progressKey struct{}

// Reporter extracts the progress-publishing hook from a task context.
// It returns nil under contexts that do not belong to a managed job —
// the synchronous execution path — so callers can skip building
// payloads no one will ever see.
func Reporter(ctx context.Context) func(json.RawMessage) {
	fn, _ := ctx.Value(progressKey{}).(func(json.RawMessage))
	return fn
}

// ReportProgress publishes a progress payload for the job owning ctx.
// It is a no-op under contexts that do not belong to a managed job,
// so task code can call it unconditionally.
func ReportProgress(ctx context.Context, payload json.RawMessage) {
	if fn := Reporter(ctx); fn != nil {
		fn(payload)
	}
}

// publish appends a progress event to a running job. Reports arriving
// after the job left StateRunning — a detached computation still
// winding down after cancellation — are dropped: the stream's
// terminal state event has already been emitted.
func (m *Manager) publish(j *job, payload json.RawMessage) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.state != StateRunning {
		return
	}
	m.eventLocked(j, EventProgress, payload)
}
