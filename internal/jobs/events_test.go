package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// collectEvents drains a job's full event stream via the blocking
// Events API, exactly as the HTTP streaming handler does.
func collectEvents(t *testing.T, m *Manager, id string) []Event {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var out []Event
	after := -1
	for {
		evs, done, err := m.Events(ctx, id, after)
		if err != nil {
			t.Fatalf("Events: %v", err)
		}
		for _, ev := range evs {
			out = append(out, ev)
			after = ev.Seq
		}
		if done {
			return out
		}
	}
}

func TestEventsLifecycleAndProgress(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())

	j, err := m.Submit("op", func(ctx context.Context) (json.RawMessage, error) {
		ReportProgress(ctx, json.RawMessage(`{"steps":1}`))
		ReportProgress(ctx, json.RawMessage(`{"steps":2}`))
		return json.RawMessage(`"done"`), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	events := collectEvents(t, m, j.ID)
	var kinds []string
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		kinds = append(kinds, fmt.Sprintf("%s/%s", ev.Type, ev.State))
	}
	want := []string{"state/queued", "state/running", "progress/running", "progress/running", "state/done"}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("events %v, want %v", kinds, want)
	}
	if string(events[2].Progress) != `{"steps":1}` || string(events[3].Progress) != `{"steps":2}` {
		t.Fatalf("progress payloads %s / %s", events[2].Progress, events[3].Progress)
	}
}

func TestEventsFailedJobCarriesError(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())

	j, err := m.Submit("op", func(ctx context.Context) (json.RawMessage, error) {
		return nil, fmt.Errorf("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	events := collectEvents(t, m, j.ID)
	last := events[len(events)-1]
	if last.Type != EventState || last.State != StateFailed {
		t.Fatalf("last event %+v, want failed state", last)
	}
	if last.Error != "boom" {
		t.Fatalf("terminal event error %q, want boom", last.Error)
	}
}

func TestEventsUnknownJob(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())
	if _, _, err := m.Events(context.Background(), "nope", -1); err != ErrNotFound {
		t.Fatalf("err %v, want ErrNotFound", err)
	}
}

func TestEventsBlocksUntilNewEventOrContext(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())

	release := make(chan struct{})
	j, err := m.Submit("op", func(ctx context.Context) (json.RawMessage, error) {
		<-release
		return json.RawMessage(`null`), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drain the events that exist so far (queued, running), then ask
	// for more with a short context: the call must block and then
	// surface the context error, not spin.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	after := -1
	for {
		evs, _, err := m.Events(ctx, j.ID, after)
		if err != nil {
			if ctx.Err() == nil {
				t.Fatalf("Events failed before context expiry: %v", err)
			}
			break // blocked, then respected the context — correct
		}
		for _, ev := range evs {
			after = ev.Seq
		}
	}
	close(release)

	events := collectEvents(t, m, j.ID)
	last := events[len(events)-1]
	if last.State != StateDone {
		t.Fatalf("final state %v", last.State)
	}
}

func TestEventsHistoryPrunedKeepsStateEvents(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())

	j, err := m.Submit("op", func(ctx context.Context) (json.RawMessage, error) {
		for i := 0; i < maxEventsPerJob+100; i++ {
			ReportProgress(ctx, json.RawMessage(`{}`))
		}
		return json.RawMessage(`null`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	events := collectEvents(t, m, j.ID)
	// The collector saw every event live (it reads faster than the cap
	// prunes only retained history); re-reading from scratch must show
	// a bounded history whose state events all survived.
	replay := collectEvents(t, m, j.ID)
	if len(replay) > maxEventsPerJob {
		t.Fatalf("retained history %d exceeds cap %d", len(replay), maxEventsPerJob)
	}
	states := 0
	for _, ev := range replay {
		if ev.Type == EventState {
			states++
		}
	}
	if states != 3 {
		t.Fatalf("replay retains %d state events, want 3 (queued, running, done)", states)
	}
	if len(events) < len(replay) {
		t.Fatalf("live collection saw %d events, replay %d", len(events), len(replay))
	}
}

func TestEventsCancelledJobTerminates(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close(context.Background())

	release := make(chan struct{})
	defer close(release)
	j, err := m.Submit("op", func(ctx context.Context) (json.RawMessage, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan []Event, 1)
	go func() {
		// Use a fresh collector: it must follow the live job and
		// terminate once cancellation lands.
		var out []Event
		after := -1
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for {
			evs, done, err := m.Events(ctx, j.ID, after)
			if err != nil {
				return
			}
			for _, ev := range evs {
				out = append(out, ev)
				after = ev.Seq
			}
			if done {
				got <- out
				return
			}
		}
	}()

	time.Sleep(20 * time.Millisecond)
	if _, err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case events := <-got:
		last := events[len(events)-1]
		if last.Type != EventState || last.State != StateCancelled {
			t.Fatalf("last event %+v, want cancelled", last)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher did not terminate after Cancel")
	}
}
