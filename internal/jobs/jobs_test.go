package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := NewManager(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m
}

// awaitState polls until the job reaches a terminal/expected state.
func awaitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, ok := m.Get(id)
		if ok && j.State == want {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached %s (last: %+v, found=%v)", id, want, j, ok)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// blockingTask returns a task that signals it has started and then
// waits for release (or context cancellation).
func blockingTask(started chan<- string, release <-chan struct{}) Task {
	return func(ctx context.Context) (json.RawMessage, error) {
		select {
		case started <- "":
		default:
		}
		select {
		case <-release:
			return json.RawMessage(`"released"`), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func TestSubmitPollResult(t *testing.T) {
	m := newTestManager(t, Config{Workers: 2})
	j, err := m.Submit("echo", func(ctx context.Context) (json.RawMessage, error) {
		return json.RawMessage(`{"answer":42}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.State != StateQueued || j.ID == "" || j.Op != "echo" {
		t.Fatalf("submit snapshot: %+v", j)
	}
	done := awaitState(t, m, j.ID, StateDone)
	if string(done.Result) != `{"answer":42}` {
		t.Fatalf("result %q", done.Result)
	}
	if done.Started.IsZero() || done.Finished.IsZero() {
		t.Fatalf("missing lifecycle timestamps: %+v", done)
	}
}

func TestTaskErrorFails(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	j, err := m.Submit("boom", func(ctx context.Context) (json.RawMessage, error) {
		return nil, errors.New("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := awaitState(t, m, j.ID, StateFailed)
	if failed.Error != "kaboom" {
		t.Fatalf("error %q", failed.Error)
	}
}

func TestTaskPanicFails(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	j, err := m.Submit("panic", func(ctx context.Context) (json.RawMessage, error) {
		panic("deliberate")
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := awaitState(t, m, j.ID, StateFailed)
	if failed.Error == "" {
		t.Fatal("panic did not surface as error")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 4})

	blocker, err := m.Submit("block", blockingTask(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is now occupied

	ran := make(chan struct{}, 1)
	queued, err := m.Submit("victim", func(ctx context.Context) (json.RawMessage, error) {
		ran <- struct{}{}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", got.State)
	}

	// Release the blocker; the cancelled job must be skipped, never run.
	release <- struct{}{}
	awaitState(t, m, blocker.ID, StateDone)
	select {
	case <-ran:
		t.Fatal("cancelled queued job was executed")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestCancelRunningJobFreesWorker(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Config{Workers: 1})

	j, err := m.Submit("runner", blockingTask(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	got, err := m.Cancel(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state %s", got.State)
	}
	// The worker must detach from the cancelled task and pick up new
	// work without waiting for the blocked goroutine.
	next, err := m.Submit("after", func(ctx context.Context) (json.RawMessage, error) {
		return json.RawMessage(`1`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, m, next.ID, StateDone)
}

func TestCancelFinishedAndUnknown(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1})
	j, _ := m.Submit("quick", func(ctx context.Context) (json.RawMessage, error) {
		return json.RawMessage(`1`), nil
	})
	awaitState(t, m, j.ID, StateDone)
	if _, err := m.Cancel(j.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("cancel finished: %v, want ErrFinished", err)
	}
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
}

func TestQueueFull(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1})

	if _, err := m.Submit("block", blockingTask(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started

	idle := func(ctx context.Context) (json.RawMessage, error) { return nil, nil }
	if _, err := m.Submit("fills-queue", idle); err != nil {
		t.Fatalf("queued submit: %v", err)
	}
	if _, err := m.Submit("overflow", idle); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
}

// Cancelling a queued job must free its queue slot immediately: the
// queue is an explicit FIFO, not a channel with dead entries.
func TestCancelledQueuedJobFreesSlot(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 1})

	if _, err := m.Submit("block", blockingTask(started, release)); err != nil {
		t.Fatal(err)
	}
	<-started

	idle := func(ctx context.Context) (json.RawMessage, error) { return nil, nil }
	q1, err := m.Submit("q1", idle)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.QueueDepth != 1 {
		t.Fatalf("queue depth %d, want 1", s.QueueDepth)
	}
	if _, err := m.Cancel(q1.ID); err != nil {
		t.Fatal(err)
	}
	if s := m.Stats(); s.QueueDepth != 0 {
		t.Fatalf("queue depth %d after cancel, want 0", s.QueueDepth)
	}
	q2, err := m.Submit("q2", idle)
	if err != nil {
		t.Fatalf("submit into freed slot: %v", err)
	}
	release <- struct{}{}
	awaitState(t, m, q2.ID, StateDone)
}

// The detach budget: after maxDetached (2*Workers) cancelled-but-still-
// computing tasks, cancelling another running job flips its state but
// pins the worker until the task actually returns.
func TestDetachBudgetBoundsAbandonedTasks(t *testing.T) {
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 8})

	// stubborn ignores its context entirely — the worst-case task.
	releases := make([]chan struct{}, 4)
	started := make(chan int, 4)
	stubborn := func(i int) Task {
		return func(ctx context.Context) (json.RawMessage, error) {
			started <- i
			<-releases[i]
			return json.RawMessage(`null`), nil
		}
	}
	for i := range releases {
		releases[i] = make(chan struct{})
	}

	// Burn the detach budget (2 * 1 worker = 2): two stubborn tasks,
	// each cancelled mid-run, each detaching.
	for i := 0; i < 2; i++ {
		j, err := m.Submit("stubborn", stubborn(i))
		if err != nil {
			t.Fatal(err)
		}
		if got := <-started; got != i {
			t.Fatalf("task %d started, want %d", got, i)
		}
		if _, err := m.Cancel(j.ID); err != nil {
			t.Fatal(err)
		}
	}

	// Third stubborn task: its cancel still flips the state instantly…
	j3, err := m.Submit("stubborn", stubborn(2))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if got, err := m.Cancel(j3.ID); err != nil || got.State != StateCancelled {
		t.Fatalf("cancel over budget: %+v, %v", got, err)
	}
	// …but the worker is pinned: a follow-up job stays queued.
	j4, err := m.Submit("queued-behind-pin", stubborn(3))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if got, _ := m.Get(j4.ID); got.State != StateQueued {
		t.Fatalf("job behind pinned worker: %s, want queued", got.State)
	}
	// Releasing the third task unpins the worker; the fourth job runs.
	close(releases[2])
	<-started
	close(releases[3])
	awaitState(t, m, j4.ID, StateDone)
	close(releases[0])
	close(releases[1])
}

func TestTTLEviction(t *testing.T) {
	clock := newFakeClock()
	m := newTestManager(t, Config{Workers: 1, TTL: time.Minute, Clock: clock.Now})

	j, err := m.SubmitDone("cached", json.RawMessage(`"hit"`))
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := m.Get(j.ID); !ok || !got.CacheHit || got.State != StateDone {
		t.Fatalf("fresh job: %+v found=%v", got, ok)
	}
	clock.Advance(59 * time.Second)
	if _, ok := m.Get(j.ID); !ok {
		t.Fatal("evicted before TTL")
	}
	clock.Advance(2 * time.Second)
	if _, ok := m.Get(j.ID); ok {
		t.Fatal("retained past TTL")
	}
}

func TestStatsCounts(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m := newTestManager(t, Config{Workers: 1, QueueDepth: 8})

	run, _ := m.Submit("run", blockingTask(started, release))
	<-started
	m.Submit("wait", func(ctx context.Context) (json.RawMessage, error) { return nil, nil })
	m.SubmitDone("hit", json.RawMessage(`1`))

	s := m.Stats()
	if s.Running != 1 || s.Done != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.QueueDepth != 1 || s.QueueCapacity != 8 || s.Workers != 1 {
		t.Fatalf("queue stats %+v", s)
	}
	_ = run
}

// The retention cap: finished jobs beyond maxRetainedFinished are
// evicted oldest-first, bounding memory even for cache-hit floods that
// never touch the queue.
func TestRetentionCapEvictsOldestFinished(t *testing.T) {
	clock := newFakeClock()
	m := newTestManager(t, Config{Workers: 1, TTL: time.Hour, Clock: clock.Now})

	first, err := m.SubmitDone("flood", json.RawMessage(`0`))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < maxRetainedFinished; i++ {
		clock.Advance(time.Millisecond) // strictly older-to-newer finish times
		if _, err := m.SubmitDone("flood", json.RawMessage(`1`)); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := m.Get(first.ID); ok {
		t.Fatal("oldest finished job survived the retention cap")
	}
	if s := m.Stats(); s.Done != maxRetainedFinished {
		t.Fatalf("retained %d done jobs, want %d", s.Done, maxRetainedFinished)
	}
}

func TestCloseCancelsAndRejects(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	defer close(release)
	m := NewManager(Config{Workers: 1, QueueDepth: 4})

	running, _ := m.Submit("run", blockingTask(started, release))
	<-started
	queued, _ := m.Submit("wait", func(ctx context.Context) (json.RawMessage, error) { return nil, nil })

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		if j, ok := m.Get(id); !ok || j.State != StateCancelled {
			t.Fatalf("job %s after close: %+v found=%v", id, j, ok)
		}
	}
	if _, err := m.Submit("late", func(ctx context.Context) (json.RawMessage, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{{Workers: -1}, {QueueDepth: -2}, {TTL: -time.Second}} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("config %+v validated", bad)
		}
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}
