// Package jobs provides the asynchronous execution layer of the
// lopserve service: a worker-pool job manager with bounded queueing,
// per-job cancellation, and TTL-based retention of finished jobs, plus
// a content-addressed result cache that lets identical requests — the
// common case under replayed traffic — return a previously computed
// result byte-for-byte instead of recomputing it.
//
// The package is deliberately independent of HTTP: a job is just a
// function from a context to serialized result bytes, and a cache key
// is just a SHA-256 digest. The server layer (internal/server) decides
// what goes into a key and how job state maps onto REST responses.
package jobs

import (
	"container/list"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
)

// Key is a content address: the SHA-256 digest of a canonical encoding
// of everything that determines a result (operation, graph, parameters,
// engine/store selection). Two requests with the same Key are, by
// construction, the same computation.
type Key [sha256.Size]byte

// String renders the key as hex, for logs and debugging.
func (k Key) String() string { return fmt.Sprintf("%x", k[:]) }

// HashJSON derives a Key from the canonical JSON encoding of v.
// Callers must pass a value whose JSON form is deterministic and
// complete: structs encode fields in declaration order and maps encode
// keys sorted, so any struct of scalars, slices, and strings qualifies.
// The error is non-nil only for unencodable values (channels, cycles),
// which indicates a programming error at the call site.
func HashJSON(v any) (Key, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return Key{}, fmt.Errorf("jobs: hashing cache key: %w", err)
	}
	return sha256.Sum256(b), nil
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	// Hits and Misses count Get calls since the cache was created.
	Hits, Misses int64
	// Entries is the current number of cached results; Capacity is the
	// eviction bound.
	Entries, Capacity int
}

// Cache is a fixed-capacity, concurrency-safe LRU over content-addressed
// result bytes. Values are treated as immutable: Put stores the slice
// as given and Get returns it without copying, so callers must never
// mutate a slice after storing or receiving it. (The server stores
// fully serialized response bodies, which are write-once by nature.)
type Cache struct {
	mu           sync.Mutex
	capacity     int
	entries      map[Key]*list.Element
	order        *list.List // front = most recently used
	hits, misses int64
}

type cacheEntry struct {
	key   Key
	value []byte
}

// NewCache returns an empty cache that holds at most capacity entries,
// evicting the least recently used entry on overflow. capacity must be
// positive.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		panic(fmt.Sprintf("jobs: cache capacity must be positive, got %d", capacity))
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[Key]*list.Element),
		order:    list.New(),
	}
}

// Get returns the cached result for k and records a hit or miss.
func (c *Cache) Get(k Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Put stores v under k, refreshing recency if k is already present and
// evicting the least recently used entry when the cache is full.
func (c *Cache) Put(k Key, v []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).value = v
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	c.entries[k] = c.order.PushFront(&cacheEntry{key: k, value: v})
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats snapshots the hit/miss counters and occupancy.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.order.Len(), Capacity: c.capacity}
}
