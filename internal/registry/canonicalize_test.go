package registry

import (
	"strings"
	"testing"
)

// TestCanonicalizeErrorShape: every rejection names the offending edge
// and its index in the input list, so a 400 from upload or PATCH is
// actionable — the client knows which element of its edge array to
// fix, not just which rule it broke.
func TestCanonicalizeErrorShape(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
		want  string
	}{
		{"endpoint above range", 5, [][2]int{{0, 1}, {3, 7}}, "edge [3, 7] at index 1 out of range for n=5"},
		{"negative endpoint", 5, [][2]int{{-2, 4}}, "edge [-2, 4] at index 0 out of range for n=5"},
		{"self-loop", 5, [][2]int{{0, 1}, {1, 2}, {3, 3}}, "self-loop [3, 3] at index 2 not allowed in a simple graph"},
		{"exact duplicate", 5, [][2]int{{0, 1}, {2, 3}, {0, 1}}, "duplicate edge [0, 1] at index 2 not allowed in a simple graph"},
		{"reversed duplicate", 5, [][2]int{{1, 0}, {0, 1}}, "duplicate edge [0, 1] at index 1 not allowed in a simple graph"},
		{"duplicate after sort displacement", 6, [][2]int{{4, 5}, {2, 3}, {3, 2}, {0, 1}}, "duplicate edge [2, 3] at index 2 not allowed in a simple graph"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Canonicalize(tc.n, tc.edges)
			if err == nil {
				t.Fatalf("Canonicalize accepted %v", tc.edges)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestCanonicalizeIndexUnaffectedBySort: the reported index is the
// input position even though detection happens on the sorted list.
func TestCanonicalizeIndexUnaffectedBySort(t *testing.T) {
	// Input order: the duplicate pair sorts to the front, but its later
	// occurrence sits at input index 3.
	_, err := Canonicalize(10, [][2]int{{8, 9}, {0, 1}, {6, 7}, {1, 0}})
	if err == nil {
		t.Fatal("duplicate accepted")
	}
	if !strings.Contains(err.Error(), "at index 3") {
		t.Fatalf("error %q should blame input index 3", err)
	}
}
