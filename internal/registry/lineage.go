// Mutation-first registration: deriving child graphs from registered
// parents by diff, with lineage tracked and distance stores repaired
// instead of rebuilt.
//
// Mutate is the dynamic-graph counterpart of Put: instead of shipping
// a full edge list, the caller names a registered parent and a diff
// (edges to add, edges to remove). The child's canonical edge set is
// derived by an O(m + k) sorted merge of the parent's canonical edges
// with the diff, so its content address follows mechanically from
// (parent digest, diff) — the digest rule the lineage integrity check
// and the client's local id prediction both rely on. The child is a
// full first-class registered graph (queryable, persistable, itself
// mutable); the lineage record is what lets store hydration repair the
// parent's cached distance store through apsp.RepairStore rather than
// paying the O(n·m) rebuild.
package registry

import (
	"container/list"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"

	lopacity "repro"
	"repro/internal/apsp"
	"repro/internal/graph"
)

// Lineage records how a graph was derived: the parent's content
// address plus the canonical diff that produced this graph from it.
// Slices are shared and must be treated as read-only.
type Lineage struct {
	Parent  string
	Adds    [][2]int
	Removes [][2]int
}

// Lineage returns the graph's derivation record, or nil for a graph
// registered directly via Put. The record survives deletion of the
// parent — it is provenance, not a dependency.
func (g *Graph) Lineage() *Lineage { return g.lineage }

// Mutate registers the child graph obtained by applying the diff
// (adds, removes) to parent, returning the existing entry when the
// resulting canonical edge set is already registered (created =
// false; the existing entry's lineage, if any, is left untouched).
// The diff is validated against the parent: malformed edges, edges
// added that the parent already has, and edges removed that it lacks
// are all errors, with the offending edge named.
//
// The child is content-addressed exactly as if its full edge list had
// been Put — mutating and re-uploading are two spellings of the same
// registration — but carries a Lineage record that lets its distance
// stores hydrate by repairing the parent's instead of rebuilding.
func (r *Registry) Mutate(parent *Graph, adds, removes [][2]int) (g *Graph, created bool, err error) {
	d, err := graph.NewDiff(parent.raw.N(), adds, removes)
	if err != nil {
		return nil, false, err
	}
	childEdges, err := mergeCanonicalEdges(parent.edges, d)
	if err != nil {
		return nil, false, err
	}
	n := parent.raw.N()
	id := Digest(n, childEdges)
	r.mu.Lock()
	if el, ok := r.entries[id]; ok {
		r.order.MoveToFront(el)
		existing := el.Value.(*Graph)
		r.mu.Unlock()
		return existing, false, nil
	}
	r.mu.Unlock()

	// Build outside the lock, like Put: adjacency construction must not
	// block concurrent lookups.
	raw := graph.New(n)
	for _, e := range childEdges {
		raw.AddEdge(e[0], e[1])
	}
	ent := &Graph{
		id:      id,
		edges:   childEdges,
		raw:     raw,
		pub:     lopacity.FromEdges(n, childEdges),
		degrees: raw.Degrees(),
		reg:     r,
		lineage: &Lineage{
			Parent:  parent.id,
			Adds:    edgePairs(d.Adds),
			Removes: edgePairs(d.Removes),
		},
		stores:     make(map[storeKey]*list.Element),
		storeOrder: list.New(),
		maxStores:  r.cfg.MaxStoresPerGraph,
	}
	r.mu.Lock()
	if el, ok := r.entries[id]; ok {
		r.order.MoveToFront(el)
		existing := el.Value.(*Graph)
		r.mu.Unlock()
		return existing, false, nil
	}
	for r.order.Len() >= r.cfg.MaxGraphs {
		r.dropLocked(r.order.Back(), true)
	}
	r.entries[id] = r.order.PushFront(ent)
	r.mu.Unlock()
	r.mutations.Add(1)
	// Write-through with the same delete-race undo as Put, extended to
	// the lineage file: the pair must land or vanish together, or a
	// restart would recover a child with forged-looking provenance.
	if r.persist != nil {
		r.persist.saveGraph(ent)
		r.persist.saveLineage(ent.id, ent.lineage)
		r.mu.Lock()
		_, still := r.entries[id]
		r.mu.Unlock()
		if !still {
			r.persist.deleteFile(graphFile(id))
			r.persist.deleteFile(lineageFile(id))
		}
	}
	return ent, true, nil
}

// edgePairs converts a canonical []graph.Edge to the [][2]int shape
// the registry stores and serializes.
func edgePairs(es []graph.Edge) [][2]int {
	if len(es) == 0 {
		return nil
	}
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.U, e.V}
	}
	return out
}

func pairLess(a, b [2]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}

// mergeCanonicalEdges applies a canonical diff to a canonical edge set
// in one O(m + k) three-way merge, preserving sortedness — the step
// that makes a child's digest derivable from (parent, diff) without
// re-sorting. It verifies applicability along the way: a remove that
// is not present or an add that already is fails with the edge named.
func mergeCanonicalEdges(parent [][2]int, d graph.Diff) ([][2]int, error) {
	out := make([][2]int, 0, len(parent)+len(d.Adds)-len(d.Removes))
	ai, ri := 0, 0
	emitAddsBefore := func(limit [2]int, bounded bool) error {
		for ai < len(d.Adds) {
			ae := [2]int{d.Adds[ai].U, d.Adds[ai].V}
			if bounded && !pairLess(ae, limit) {
				if ae == limit {
					return fmt.Errorf("registry: cannot add edge [%d, %d]: already present in parent", ae[0], ae[1])
				}
				return nil
			}
			out = append(out, ae)
			ai++
		}
		return nil
	}
	for _, e := range parent {
		if ri < len(d.Removes) {
			re := [2]int{d.Removes[ri].U, d.Removes[ri].V}
			if pairLess(re, e) {
				return nil, fmt.Errorf("registry: cannot remove edge [%d, %d]: not present in parent", re[0], re[1])
			}
			if re == e {
				ri++
				continue
			}
		}
		if err := emitAddsBefore(e, true); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	if ri < len(d.Removes) {
		re := d.Removes[ri]
		return nil, fmt.Errorf("registry: cannot remove edge [%d, %d]: not present in parent", re.U, re.V)
	}
	if err := emitAddsBefore([2]int{}, false); err != nil {
		return nil, err
	}
	return out, nil
}

// peekStore returns the already-built store for k without counting a
// hit or miss — the repair path's parent lookup must not distort the
// cache-effectiveness counters the operator reads. Recency is still
// refreshed: a parent store feeding repairs is in active use.
func (g *Graph) peekStore(k storeKey) (apsp.Store, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	el, ok := g.stores[k]
	if !ok {
		return nil, false
	}
	g.storeOrder.MoveToFront(el)
	slot := el.Value.(*storeEntry).slot
	if !slot.ready.Load() {
		return nil, false
	}
	return slot.store, true
}

// tryRepair attempts to hydrate g's store for k by repairing the
// parent's cached store through the lineage diff. It returns nil when
// repair is not applicable (no lineage, disabled, parent or its store
// gone) or when apsp.RepairStore's cost heuristics bail; the caller
// falls back to a build. Every lineage-bearing hydration that reaches
// here and cannot repair counts as a fallback, so the operator can see
// mutation children going down the cold path.
func (r *Registry) tryRepair(g *Graph, k storeKey) apsp.Store {
	lin := g.lineage
	if lin == nil || r.cfg.DisableRepair {
		return nil
	}
	r.mu.Lock()
	el, ok := r.entries[lin.Parent]
	if ok {
		r.order.MoveToFront(el)
	}
	r.mu.Unlock()
	if !ok {
		r.repairFallbacks.Add(1)
		return nil
	}
	parent := el.Value.(*Graph)
	pst, ok := parent.peekStore(k)
	if !ok {
		r.repairFallbacks.Add(1)
		return nil
	}
	d, err := graph.NewDiff(g.raw.N(), lin.Adds, lin.Removes)
	if err != nil {
		r.repairFallbacks.Add(1)
		return nil
	}
	start := time.Now()
	st, ok := apsp.RepairStore(pst, g.raw, d, apsp.RepairOptions{})
	if !ok {
		r.repairFallbacks.Add(1)
		return nil
	}
	r.repairs.Add(1)
	r.repairMSTotal.Add(time.Since(start).Milliseconds())
	return st
}

const (
	lineageMagic   = "LOPL"
	lineageVersion = 1
	lineageSuffix  = ".lineage"
	// lineageHeaderLen is magic + version + parent digest (hex) +
	// add count + remove count.
	lineageHeaderLen = 4 + 1 + 64 + 8 + 8
)

func lineageFile(id string) string { return id + lineageSuffix }

// encodeLineageSnapshot serializes a lineage record: magic, version,
// the parent's 64-byte hex digest, then the diff's edge counts and
// endpoints as uint64 LE.
func encodeLineageSnapshot(lin *Lineage) []byte {
	buf := make([]byte, 0, lineageHeaderLen+16*(len(lin.Adds)+len(lin.Removes)))
	buf = append(buf, lineageMagic...)
	buf = append(buf, lineageVersion)
	buf = append(buf, lin.Parent...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(lin.Adds)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(lin.Removes)))
	for _, e := range lin.Adds {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e[0]))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e[1]))
	}
	for _, e := range lin.Removes {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e[0]))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e[1]))
	}
	return buf
}

// decodeLineageSnapshot strictly inverts encodeLineageSnapshot: any
// truncation, trailing data, malformed parent digest, or header
// inconsistency is an error.
func decodeLineageSnapshot(data []byte) (*Lineage, error) {
	if len(data) < lineageHeaderLen {
		return nil, fmt.Errorf("registry: lineage snapshot truncated: %d bytes < %d-byte header", len(data), lineageHeaderLen)
	}
	if string(data[:4]) != lineageMagic {
		return nil, fmt.Errorf("registry: lineage snapshot has bad magic %q", data[:4])
	}
	if data[4] != lineageVersion {
		return nil, fmt.Errorf("registry: unsupported lineage snapshot version %d (want %d)", data[4], lineageVersion)
	}
	parent := string(data[5:69])
	if raw, err := hex.DecodeString(parent); err != nil || len(raw) != 32 {
		return nil, fmt.Errorf("registry: lineage snapshot parent %q is not a hex digest", parent)
	}
	na := binary.LittleEndian.Uint64(data[69:77])
	nr := binary.LittleEndian.Uint64(data[77:85])
	payload := data[lineageHeaderLen:]
	total := na + nr
	if na > uint64(len(payload))/16 || nr > uint64(len(payload))/16 || uint64(len(payload)) != 16*total {
		return nil, fmt.Errorf("registry: lineage snapshot payload is %d bytes, want %d for %d edits", len(payload), 16*total, total)
	}
	const maxDim = 1 << 31
	decode := func(count uint64, off int) ([][2]int, error) {
		if count == 0 {
			return nil, nil
		}
		out := make([][2]int, count)
		for i := range out {
			u := binary.LittleEndian.Uint64(payload[off+16*i:])
			v := binary.LittleEndian.Uint64(payload[off+16*i+8:])
			if u > maxDim || v > maxDim {
				return nil, fmt.Errorf("registry: lineage snapshot edge endpoints (%d, %d) out of range", u, v)
			}
			out[i] = [2]int{int(u), int(v)}
		}
		return out, nil
	}
	adds, err := decode(na, 0)
	if err != nil {
		return nil, err
	}
	removes, err := decode(nr, 16*int(na))
	if err != nil {
		return nil, err
	}
	return &Lineage{Parent: parent, Adds: adds, Removes: removes}, nil
}

// saveLineage snapshots one graph's lineage record. Failures are
// counted, not propagated, like every other snapshot write.
func (p *persister) saveLineage(id string, lin *Lineage) {
	if err := p.writeFile(lineageFile(id), encodeLineageSnapshot(lin)); err != nil {
		p.writeErrors.Add(1)
		return
	}
	p.lineageWrites.Add(1)
}

// loadLineages recovers lineage records after graphs are loaded:
// orphans (no child graph on this boot, and none left on disk by the
// capacity bound) are quarantined; records whose parent is loaded are
// integrity-checked — applying the diff to the parent's canonical
// edges must reproduce the child's digest, or the record is lying and
// is quarantined; records whose parent is gone are kept as pure
// provenance (the child still serves from its full edge set, repair
// just has nothing to start from).
func (r *Registry) loadLineages(lineageFiles []string, skipped map[string]bool) {
	p := r.persist
	for _, name := range lineageFiles {
		childID := name[:len(name)-len(lineageSuffix)]
		el, present := r.entries[childID]
		if !present {
			if skipped[childID] {
				continue // child left on disk by the capacity bound
			}
			p.quarantine(name) // orphan: its graph is gone
			continue
		}
		data, err := p.readSnapshot(name)
		if err != nil {
			p.quarantine(name)
			continue
		}
		lin, err := decodeLineageSnapshot(data)
		if err != nil {
			p.quarantine(name)
			continue
		}
		ent := el.Value.(*Graph)
		if pel, ok := r.entries[lin.Parent]; ok {
			parent := pel.Value.(*Graph)
			d, err := graph.NewDiff(parent.raw.N(), lin.Adds, lin.Removes)
			if err != nil {
				p.quarantine(name)
				continue
			}
			childEdges, err := mergeCanonicalEdges(parent.edges, d)
			if err != nil || Digest(parent.raw.N(), childEdges) != childID {
				p.quarantine(name)
				continue
			}
		}
		ent.lineage = lin
		p.lineagesLoaded++
	}
}
