package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apsp"
)

// lineageParentEdges is a 8-vertex parent with enough structure for
// diffs to matter: a cycle plus chords.
func lineageParentEdges() (int, [][2]int) {
	return 8, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {0, 7}, {1, 4}, {2, 6}}
}

// TestMutateDigestRule: the child registered through Mutate has
// exactly the content address a full registration of its edge set
// would get — mutating and re-uploading are two spellings of the same
// registration, which is what makes the digest derivable from
// (parent, diff).
func TestMutateDigestRule(t *testing.T) {
	r := New(Config{})
	n, edges := lineageParentEdges()
	parent, _, err := r.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	child, created, err := r.Mutate(parent, [][2]int{{3, 7}, {0, 2}}, [][2]int{{1, 4}})
	if err != nil || !created {
		t.Fatalf("Mutate: created=%v err=%v", created, err)
	}
	lin := child.Lineage()
	if lin == nil || lin.Parent != parent.ID() {
		t.Fatalf("child lineage = %+v, want parent %s", lin, parent.ID())
	}
	if len(lin.Adds) != 2 || lin.Adds[0] != [2]int{0, 2} || lin.Adds[1] != [2]int{3, 7} {
		t.Fatalf("lineage adds not canonical: %v", lin.Adds)
	}

	// A from-scratch registry registering the child's full edge set
	// must produce the identical id.
	r2 := New(Config{})
	direct, _, err := r2.Put(n, child.Edges())
	if err != nil {
		t.Fatal(err)
	}
	if direct.ID() != child.ID() {
		t.Fatalf("mutated id %s != directly registered id %s", child.ID(), direct.ID())
	}
	if direct.Lineage() != nil {
		t.Fatal("directly registered graph must have no lineage")
	}

	// Mutating again with the same diff resolves to the same entry.
	again, created, err := r.Mutate(parent, [][2]int{{0, 2}, {3, 7}}, [][2]int{{4, 1}})
	if err != nil || created || again != child {
		t.Fatalf("repeat Mutate: created=%v entry-same=%v err=%v", created, again == child, err)
	}
	if got := r.Stats().Mutations; got != 1 {
		t.Fatalf("Mutations = %d, want 1 (dedup must not count)", got)
	}
}

// TestMutateValidation: diffs that do not apply to the parent are
// rejected with the offending edge named, and nothing is registered.
func TestMutateValidation(t *testing.T) {
	r := New(Config{})
	n, edges := lineageParentEdges()
	parent, _, err := r.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		adds    [][2]int
		removes [][2]int
		want    string
	}{
		{"add present", [][2]int{{4, 1}}, nil, "cannot add edge [1, 4]: already present"},
		{"remove absent", nil, [][2]int{{0, 3}}, "cannot remove edge [0, 3]: not present"},
		{"out of range", [][2]int{{0, 99}}, nil, "out of range"},
		{"self-loop", [][2]int{{2, 2}}, nil, "self-loop"},
		{"overlap", [][2]int{{0, 3}}, [][2]int{{0, 3}}, "appears in both"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := r.Mutate(parent, tc.adds, tc.removes)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
	if r.Len() != 1 {
		t.Fatalf("rejected mutations registered graphs: len=%d", r.Len())
	}
}

// TestMutateRepairHydration: with the parent's store warm, the child's
// first Distances call repairs instead of building — zero APSP builds,
// and the repaired store is cell-identical to a from-scratch build of
// the child.
func TestMutateRepairHydration(t *testing.T) {
	r := New(Config{})
	n, edges := lineageParentEdges()
	parent, _, err := r.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	parent.Distances(3, apsp.EngineAuto, apsp.KindCompact) // warm: 1 build
	child, _, err := r.Mutate(parent, [][2]int{{3, 7}}, [][2]int{{2, 6}})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := child.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	stats := r.Stats()
	if stats.Builds != 1 {
		t.Fatalf("Builds = %d after repair hydration, want 1 (parent only)", stats.Builds)
	}
	if stats.Repairs != 1 || stats.RepairFallbacks != 0 {
		t.Fatalf("Repairs=%d Fallbacks=%d, want 1/0", stats.Repairs, stats.RepairFallbacks)
	}
	want := apsp.Build(child.raw, 3, apsp.BuildOptions{})
	if !apsp.Equal(st, want) {
		t.Fatal("repaired store differs from a rebuild of the child")
	}

	// Second call: plain cache hit, no second repair.
	if _, reused := child.Distances(3, apsp.EngineAuto, apsp.KindCompact); !reused {
		t.Fatal("second Distances call did not reuse")
	}
	if got := r.Stats().Repairs; got != 1 {
		t.Fatalf("Repairs = %d after cache hit, want still 1", got)
	}
}

// TestMutateRepairFallbacks: a cold parent store, a deleted parent,
// and DisableRepair all fall back to a full build — correct results,
// counted fallbacks (except when disabled, which is not a fallback).
func TestMutateRepairFallbacks(t *testing.T) {
	n, edges := lineageParentEdges()

	t.Run("cold parent", func(t *testing.T) {
		r := New(Config{})
		parent, _, _ := r.Put(n, edges)
		child, _, err := r.Mutate(parent, [][2]int{{3, 7}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		child.Distances(3, apsp.EngineAuto, apsp.KindCompact)
		s := r.Stats()
		if s.Builds != 1 || s.Repairs != 0 || s.RepairFallbacks != 1 {
			t.Fatalf("builds=%d repairs=%d fallbacks=%d, want 1/0/1", s.Builds, s.Repairs, s.RepairFallbacks)
		}
	})

	t.Run("deleted parent", func(t *testing.T) {
		r := New(Config{})
		parent, _, _ := r.Put(n, edges)
		parent.Distances(3, apsp.EngineAuto, apsp.KindCompact)
		child, _, err := r.Mutate(parent, [][2]int{{3, 7}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Delete(parent.ID()) {
			t.Fatal("Delete(parent) reported absent")
		}
		// The child keeps serving: full edge set, fresh build.
		if _, ok := r.Get(child.ID()); !ok {
			t.Fatal("child vanished with its parent")
		}
		st, _ := child.Distances(3, apsp.EngineAuto, apsp.KindCompact)
		if !apsp.Equal(st, apsp.Build(child.raw, 3, apsp.BuildOptions{})) {
			t.Fatal("post-delete child store wrong")
		}
		s := r.Stats()
		if s.Repairs != 0 || s.RepairFallbacks != 1 {
			t.Fatalf("repairs=%d fallbacks=%d, want 0/1", s.Repairs, s.RepairFallbacks)
		}
		if child.Lineage() == nil {
			t.Fatal("lineage provenance lost on parent delete")
		}
	})

	t.Run("disabled", func(t *testing.T) {
		r := New(Config{DisableRepair: true})
		parent, _, _ := r.Put(n, edges)
		parent.Distances(3, apsp.EngineAuto, apsp.KindCompact)
		child, _, err := r.Mutate(parent, [][2]int{{3, 7}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		child.Distances(3, apsp.EngineAuto, apsp.KindCompact)
		s := r.Stats()
		if s.Builds != 2 || s.Repairs != 0 || s.RepairFallbacks != 0 {
			t.Fatalf("builds=%d repairs=%d fallbacks=%d, want 2/0/0", s.Builds, s.Repairs, s.RepairFallbacks)
		}
	})
}

// TestLineagePersistRoundTrip: a restart recovers the child with its
// lineage record, and the child's store — persisted from the repaired
// overlay — comes back byte-for-byte, serving with zero builds.
func TestLineagePersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n, edges := lineageParentEdges()

	r1 := New(Config{Dir: dir})
	parent, _, _ := r1.Put(n, edges)
	parent.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	child, _, err := r1.Mutate(parent, [][2]int{{3, 7}}, [][2]int{{2, 6}})
	if err != nil {
		t.Fatal(err)
	}
	st1, _ := child.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	if _, err := os.Stat(filepath.Join(dir, lineageFile(child.ID()))); err != nil {
		t.Fatalf("lineage snapshot not written: %v", err)
	}

	r2 := New(Config{Dir: dir})
	got, ok := r2.Get(child.ID())
	if !ok {
		t.Fatal("restart lost the mutated child")
	}
	lin := got.Lineage()
	if lin == nil || lin.Parent != parent.ID() || len(lin.Adds) != 1 || len(lin.Removes) != 1 {
		t.Fatalf("recovered lineage %+v", lin)
	}
	st2, reused := got.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	if !reused || !apsp.Equal(st1, st2) {
		t.Fatalf("child store not recovered warm (reused=%v)", reused)
	}
	p := r2.Stats().Persist
	if p.LineagesLoaded != 1 || p.Quarantined != 0 {
		t.Fatalf("persist stats %+v, want 1 lineage loaded, 0 quarantined", p)
	}

	// DELETE removes the lineage file with the graph.
	r2.Delete(child.ID())
	if _, err := os.Stat(filepath.Join(dir, lineageFile(child.ID()))); !os.IsNotExist(err) {
		t.Fatalf("lineage snapshot survived delete: %v", err)
	}
}

// TestLineageQuarantine: orphaned and tampered lineage records are
// quarantined at boot; the graphs themselves still load (a bad
// provenance note must not take down a valid graph).
func TestLineageQuarantine(t *testing.T) {
	t.Run("orphan", func(t *testing.T) {
		dir := t.TempDir()
		fake := strings.Repeat("ab", 32)
		lin := &Lineage{Parent: strings.Repeat("cd", 32), Adds: [][2]int{{0, 1}}}
		if err := os.WriteFile(filepath.Join(dir, lineageFile(fake)), encodeLineageSnapshot(lin), 0o644); err != nil {
			t.Fatal(err)
		}
		r := New(Config{Dir: dir})
		if p := r.Stats().Persist; p.Quarantined != 1 || p.LineagesLoaded != 0 {
			t.Fatalf("persist stats %+v, want orphan quarantined", p)
		}
	})

	t.Run("tampered diff", func(t *testing.T) {
		dir := t.TempDir()
		n, edges := lineageParentEdges()
		r1 := New(Config{Dir: dir})
		parent, _, _ := r1.Put(n, edges)
		child, _, err := r1.Mutate(parent, [][2]int{{3, 7}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite the lineage with a diff that does not reproduce the
		// child's digest from the parent.
		forged := &Lineage{Parent: parent.ID(), Adds: [][2]int{{0, 3}}}
		if err := os.WriteFile(filepath.Join(dir, lineageFile(child.ID())), encodeLineageSnapshot(forged), 0o644); err != nil {
			t.Fatal(err)
		}
		r2 := New(Config{Dir: dir})
		got, ok := r2.Get(child.ID())
		if !ok {
			t.Fatal("child graph must survive a forged lineage record")
		}
		if got.Lineage() != nil {
			t.Fatal("forged lineage was attached")
		}
		if p := r2.Stats().Persist; p.Quarantined != 1 {
			t.Fatalf("persist stats %+v, want forged record quarantined", p)
		}
	})

	t.Run("truncated", func(t *testing.T) {
		dir := t.TempDir()
		n, edges := lineageParentEdges()
		r1 := New(Config{Dir: dir})
		parent, _, _ := r1.Put(n, edges)
		child, _, err := r1.Mutate(parent, [][2]int{{3, 7}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		full := filepath.Join(dir, lineageFile(child.ID()))
		data, err := os.ReadFile(full)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, data[:len(data)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		r2 := New(Config{Dir: dir})
		if p := r2.Stats().Persist; p.Quarantined != 1 {
			t.Fatalf("persist stats %+v, want truncated record quarantined", p)
		}
	})
}

// TestMutateChainRepairs: each generation repairs off the previous
// one — a chain of diffs never rebuilds as long as stores stay warm.
func TestMutateChainRepairs(t *testing.T) {
	r := New(Config{})
	n, edges := lineageParentEdges()
	g, _, err := r.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	g.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	diffs := []struct{ adds, removes [][2]int }{
		{[][2]int{{3, 7}}, nil},
		{[][2]int{{0, 4}}, [][2]int{{3, 7}}},
		{nil, [][2]int{{1, 2}}},
	}
	for i, d := range diffs {
		g, _, err = r.Mutate(g, d.adds, d.removes)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		st, _ := g.Distances(3, apsp.EngineAuto, apsp.KindCompact)
		if !apsp.Equal(st, apsp.Build(g.raw, 3, apsp.BuildOptions{})) {
			t.Fatalf("step %d: repaired store diverges", i)
		}
	}
	s := r.Stats()
	if s.Builds != 1 || s.Repairs != 3 || s.RepairFallbacks != 0 {
		t.Fatalf("builds=%d repairs=%d fallbacks=%d, want 1/3/0", s.Builds, s.Repairs, s.RepairFallbacks)
	}
}
