package registry

import (
	"errors"
	"testing"

	"repro/internal/apsp"
)

// testGraphWithStore registers a small graph and builds one distance
// store under it, returning the entry.
func testGraphWithStore(t *testing.T, r *Registry) *Graph {
	t.Helper()
	g, _, err := r.Put(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if _, hit := g.Distances(2, apsp.EngineAuto, apsp.KindCompact); hit {
		t.Fatal("first Distances call reported a store hit")
	}
	return g
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := New(Config{})
	g := testGraphWithStore(t, src)
	data, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	dst := New(Config{})
	got, created, installed, skipped, err := dst.InstallSnapshot(g.ID(), data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("install on an empty registry reported created=false")
	}
	if got.ID() != g.ID() {
		t.Fatalf("installed id %s, want %s", got.ID(), g.ID())
	}
	if installed != 1 || skipped != 0 {
		t.Fatalf("installed=%d skipped=%d, want 1/0", installed, skipped)
	}

	// The adopted store must serve as a hit: zero APSP builds paid on
	// the replica.
	if _, hit := got.Distances(2, apsp.EngineAuto, apsp.KindCompact); !hit {
		t.Fatal("adopted store did not serve as a store hit")
	}
	st := dst.Stats()
	if st.Builds != 0 {
		t.Fatalf("replica paid %d APSP builds, want 0", st.Builds)
	}
	if st.Hydrations != 1 || st.HydratedStores != 1 {
		t.Fatalf("hydrations=%d hydrated_stores=%d, want 1/1", st.Hydrations, st.HydratedStores)
	}
}

func TestSnapshotInstallIdempotent(t *testing.T) {
	src := New(Config{})
	g := testGraphWithStore(t, src)
	data, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dst := New(Config{})
	if _, _, _, _, err := dst.InstallSnapshot(g.ID(), data, 0); err != nil {
		t.Fatal(err)
	}
	_, created, installed, skipped, err := dst.InstallSnapshot(g.ID(), data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if created {
		t.Fatal("second install reported created=true")
	}
	// The store slot already exists; the section is skipped, never
	// replaced.
	if installed != 0 || skipped != 1 {
		t.Fatalf("second install installed=%d skipped=%d, want 0/1", installed, skipped)
	}
}

func TestSnapshotDigestMismatch(t *testing.T) {
	src := New(Config{})
	g := testGraphWithStore(t, src)
	data, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dst := New(Config{})
	_, _, _, _, err = dst.InstallSnapshot("not-the-digest", data, 0)
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
	if dst.Len() != 0 {
		t.Fatal("mismatched envelope installed a graph anyway")
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	src := New(Config{})
	g := testGraphWithStore(t, src)
	data, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXXX"), data[4:]...),
		"truncated": data[:len(data)/2],
		"trailing":  append(append([]byte{}, data...), 0xFF),
	}
	for name, body := range cases {
		dst := New(Config{})
		if _, _, _, _, err := dst.InstallSnapshot(g.ID(), body, 0); err == nil {
			t.Errorf("%s: corrupt envelope installed without error", name)
		}
		if dst.Len() != 0 {
			t.Errorf("%s: corrupt envelope left a graph behind", name)
		}
	}
}

func TestSnapshotCorruptStoreSectionSkipped(t *testing.T) {
	src := New(Config{})
	g := testGraphWithStore(t, src)
	data, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the last store section's payload: the envelope
	// framing stays intact, the LOPS body does not.
	data[len(data)-1] ^= 0xFF
	dst := New(Config{})
	_, _, installed, skipped, err := dst.InstallSnapshot(g.ID(), data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if installed != 0 || skipped != 1 {
		t.Fatalf("installed=%d skipped=%d, want 0/1", installed, skipped)
	}
	// The graph itself still installed and can rebuild the store.
	if dst.Len() != 1 {
		t.Fatal("graph was not installed alongside the bad section")
	}
}

func TestSnapshotRespectsVertexBound(t *testing.T) {
	src := New(Config{})
	g := testGraphWithStore(t, src)
	data, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dst := New(Config{})
	if _, _, _, _, err := dst.InstallSnapshot(g.ID(), data, 3); err == nil {
		t.Fatal("snapshot larger than maxN installed without error")
	}
}

func TestSnapshotPersistsWriteThrough(t *testing.T) {
	src := New(Config{})
	g := testGraphWithStore(t, src)
	data, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	dst := New(Config{Dir: dir})
	if _, _, _, _, err := dst.InstallSnapshot(g.ID(), data, 0); err != nil {
		t.Fatal(err)
	}
	// A restart recovers both the graph and the adopted store.
	re := New(Config{Dir: dir})
	got, ok := re.Get(g.ID())
	if !ok {
		t.Fatal("hydrated graph did not survive restart")
	}
	if _, hit := got.Distances(2, apsp.EngineAuto, apsp.KindCompact); !hit {
		t.Fatal("hydrated store did not survive restart")
	}
}
