// Peer snapshot transfer: the binary envelope one registry instance
// streams to another so a cold replica hydrates a graph — canonical
// edge set plus every cached distance store — instead of re-parsing
// and rebuilding APSP.
//
// The envelope (magic "LOPH", version 1) wraps the exact encodings the
// persistence layer already trusts: the LOPG graph snapshot and one
// LOPS store snapshot per cached store, each length-prefixed with its
// cache key (L, engine, kind). Install verifies the graph the same way
// boot recovery does — re-canonicalize, re-digest, compare against the
// id the caller asked for — and validates every store section against
// the installed graph's dimensions; a mismatched envelope installs
// nothing, and a mismatched store section is skipped, never adopted.
// Installed graphs and stores are write-through persisted like any
// other registration, so hydration survives a restart.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/apsp"
)

const (
	snapshotMagic   = "LOPH"
	snapshotVersion = 1
	// snapshotHeaderLen is magic + version.
	snapshotHeaderLen = 4 + 1
	// MaxSnapshotBytes bounds one snapshot envelope on both ends of the
	// transfer; it matches the persistence layer's heap slurp limit.
	MaxSnapshotBytes = maxSnapshotSize
)

// ErrSnapshotMismatch marks an envelope whose canonical edge set does
// not hash to the id the caller asked to install: the body is not the
// graph the request names, so nothing was installed.
var ErrSnapshotMismatch = errors.New("registry: snapshot digest mismatch")

// snapshotSection is one store section of an envelope: the cache key
// and the raw LOPS bytes, not yet validated.
type snapshotSection struct {
	key  storeKey
	data []byte
}

// Snapshot serializes the graph for peer transfer: the canonical edge
// set plus every distance store currently cached and built. The result
// is self-contained — InstallSnapshot on any registry reproduces the
// graph (same content address) and its stores with zero APSP builds.
func (g *Graph) Snapshot() ([]byte, error) {
	// Collect the ready slots under the lock, marshal outside it: store
	// serialization is O(n^2) work that must not block the cache.
	g.mu.Lock()
	type readyStore struct {
		key   storeKey
		store apsp.Store
	}
	ready := make([]readyStore, 0, g.storeOrder.Len())
	for el := g.storeOrder.Front(); el != nil; el = el.Next() {
		e := el.Value.(*storeEntry)
		if e.slot.ready.Load() {
			ready = append(ready, readyStore{key: e.key, store: e.slot.store})
		}
	}
	g.mu.Unlock()

	buf := make([]byte, 0, 1<<16)
	buf = append(buf, snapshotMagic...)
	buf = append(buf, snapshotVersion)
	gb := encodeGraphSnapshot(g.raw.N(), g.edges)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(gb)))
	buf = append(buf, gb...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(ready)))
	for _, rs := range ready {
		sb, err := apsp.MarshalStore(rs.store)
		if err != nil {
			return nil, fmt.Errorf("registry: snapshot store l=%d: %w", rs.key.l, err)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rs.key.l))
		buf = appendSnapshotString(buf, rs.key.engine.String())
		buf = appendSnapshotString(buf, rs.key.kind.String())
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(sb)))
		buf = append(buf, sb...)
	}
	return buf, nil
}

func appendSnapshotString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

// snapshotReader walks an envelope with strict bounds checking: every
// read is validated against the remaining length, so a truncated or
// hostile envelope errors instead of panicking.
type snapshotReader struct {
	data []byte
	off  int
}

func (r *snapshotReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, fmt.Errorf("registry: snapshot truncated at byte %d (want %d more)", r.off, n)
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *snapshotReader) uint64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *snapshotReader) string16() (string, error) {
	lb, err := r.take(2)
	if err != nil {
		return "", err
	}
	b, err := r.take(int(binary.LittleEndian.Uint16(lb)))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// decodeSnapshotEnvelope splits an envelope into the graph snapshot
// bytes and the raw store sections. Section cache keys are parsed (an
// unparseable key is a whole-envelope error — the framing itself is
// broken); the LOPS payloads are not yet validated.
func decodeSnapshotEnvelope(data []byte) (graphData []byte, sections []snapshotSection, err error) {
	r := &snapshotReader{data: data}
	hdr, err := r.take(snapshotHeaderLen)
	if err != nil {
		return nil, nil, err
	}
	if string(hdr[:4]) != snapshotMagic {
		return nil, nil, fmt.Errorf("registry: snapshot envelope has bad magic %q", hdr[:4])
	}
	if hdr[4] != snapshotVersion {
		return nil, nil, fmt.Errorf("registry: unsupported snapshot envelope version %d (want %d)", hdr[4], snapshotVersion)
	}
	glen, err := r.uint64()
	if err != nil {
		return nil, nil, err
	}
	if glen > uint64(len(data)) {
		return nil, nil, fmt.Errorf("registry: snapshot graph section claims %d bytes, envelope is %d", glen, len(data))
	}
	graphData, err = r.take(int(glen))
	if err != nil {
		return nil, nil, err
	}
	count, err := r.uint64()
	if err != nil {
		return nil, nil, err
	}
	if count > uint64(len(data)) { // each section is at least one byte of framing
		return nil, nil, fmt.Errorf("registry: snapshot claims %d store sections in %d bytes", count, len(data))
	}
	sections = make([]snapshotSection, 0, count)
	for i := uint64(0); i < count; i++ {
		l, err := r.uint64()
		if err != nil {
			return nil, nil, err
		}
		engineName, err := r.string16()
		if err != nil {
			return nil, nil, err
		}
		kindName, err := r.string16()
		if err != nil {
			return nil, nil, err
		}
		slen, err := r.uint64()
		if err != nil {
			return nil, nil, err
		}
		if slen > uint64(len(data)) {
			return nil, nil, fmt.Errorf("registry: snapshot store section %d claims %d bytes, envelope is %d", i, slen, len(data))
		}
		sb, err := r.take(int(slen))
		if err != nil {
			return nil, nil, err
		}
		engine, err := apsp.ParseEngine(engineName)
		if err != nil {
			return nil, nil, fmt.Errorf("registry: snapshot store section %d: %w", i, err)
		}
		kind, err := apsp.ParseKind(kindName)
		if err != nil {
			return nil, nil, fmt.Errorf("registry: snapshot store section %d: %w", i, err)
		}
		const maxL = 1 << 31
		if l > maxL {
			return nil, nil, fmt.Errorf("registry: snapshot store section %d has l=%d out of range", i, l)
		}
		sections = append(sections, snapshotSection{
			key:  storeKey{l: int(l), engine: engine, kind: kind},
			data: sb,
		})
	}
	if r.off != len(data) {
		return nil, nil, fmt.Errorf("registry: snapshot has %d trailing bytes after the last section", len(data)-r.off)
	}
	return graphData, sections, nil
}

// InstallSnapshot hydrates a graph from a peer's snapshot envelope:
// decode, verify the canonical edge set hashes to wantID
// (ErrSnapshotMismatch otherwise — nothing is installed), register the
// graph, and adopt every store section that validates against it.
// Adopted stores count as already built, so the replica's first
// request for one is a store hit with zero APSP builds. Sections that
// are already cached, fail validation, or exceed the per-graph store
// capacity are skipped, never trusted. Both the graph and the adopted
// stores are write-through persisted when persistence is on. maxN,
// when positive, rejects graphs larger than the serving bound — the
// installer enforces the same ceiling its own registration path does.
func (r *Registry) InstallSnapshot(wantID string, data []byte, maxN int) (g *Graph, created bool, installed, skipped int, err error) {
	graphData, sections, err := decodeSnapshotEnvelope(data)
	if err != nil {
		return nil, false, 0, 0, err
	}
	n, edges, err := decodeGraphSnapshot(graphData)
	if err != nil {
		return nil, false, 0, 0, err
	}
	if maxN > 0 && n > maxN {
		return nil, false, 0, 0, fmt.Errorf("registry: snapshot graph n=%d exceeds serving limit %d", n, maxN)
	}
	canonical, err := Canonicalize(n, edges)
	if err != nil {
		return nil, false, 0, 0, err
	}
	if id := Digest(n, canonical); id != wantID {
		return nil, false, 0, 0, fmt.Errorf("%w: body hashes to %s, want %s", ErrSnapshotMismatch, id, wantID)
	}
	ent, created, err := r.Put(n, canonical)
	if err != nil {
		return nil, false, 0, 0, err
	}
	for _, sec := range sections {
		st, err := apsp.UnmarshalStore(sec.data)
		if err != nil {
			skipped++
			continue
		}
		// The same trust rules boot recovery applies: dimensions must
		// match the graph, and the key must describe the store it frames.
		if st.N() != n || st.L() != sec.key.l ||
			apsp.KindOf(st) != sec.key.kind || sec.key.kind != apsp.EffectiveKind(sec.key.kind, sec.key.l) {
			skipped++
			continue
		}
		if !ent.adoptStore(sec.key, st) {
			skipped++
			continue
		}
		installed++
		if p := r.persist; p != nil {
			p.saveStore(ent.id, sec.key, st)
		}
	}
	r.hydrations.Add(1)
	r.hydratedStores.Add(int64(installed))
	return ent, created, installed, skipped, nil
}

// adoptStore installs an already-built store into the graph's cache at
// runtime with its build marked spent — the concurrency-safe
// counterpart of the boot-only seedStore. It reports false when the
// key is already present (an existing store, built or in flight, is
// never replaced), the per-graph cache is full, or the graph has been
// deleted.
func (g *Graph) adoptStore(k storeKey, st apsp.Store) bool {
	g.mu.Lock()
	if _, ok := g.stores[k]; ok || g.storeOrder.Len() >= g.maxStores || g.detached {
		g.mu.Unlock()
		return false
	}
	slot := &storeSlot{store: st}
	slot.once.Do(func() {}) // consume the build
	slot.ready.Store(true)
	g.stores[k] = g.storeOrder.PushFront(&storeEntry{key: k, slot: slot})
	g.mu.Unlock()
	g.reg.stores.Add(1)
	return true
}
