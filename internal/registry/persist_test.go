package registry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apsp"
)

// persistGraph is a small fixed test graph (a 6-cycle plus a chord).
func persistGraphEdges() (int, [][2]int) {
	return 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}, {1, 4}}
}

// TestPersistWarmRestart: a second registry over the same directory
// recovers the graph and its built store, and serves the first
// Distances call as a hit — zero APSP builds after a restart.
func TestPersistWarmRestart(t *testing.T) {
	dir := t.TempDir()
	n, edges := persistGraphEdges()

	r1 := New(Config{Dir: dir})
	g1, created, err := r1.Put(n, edges)
	if err != nil || !created {
		t.Fatalf("Put: created=%v err=%v", created, err)
	}
	st1, reused := g1.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	if reused {
		t.Fatal("first Distances call reported reuse")
	}
	if _, err := os.Stat(filepath.Join(dir, graphFile(g1.ID()))); err != nil {
		t.Fatalf("graph snapshot not written: %v", err)
	}

	r2 := New(Config{Dir: dir})
	if r2.Len() != 1 {
		t.Fatalf("restarted registry holds %d graphs, want 1", r2.Len())
	}
	g2, ok := r2.Get(g1.ID())
	if !ok {
		t.Fatalf("restarted registry lost graph %s", g1.ID())
	}
	st2, reused := g2.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	if !reused {
		t.Fatal("first Distances call after restart rebuilt the store")
	}
	if !apsp.Equal(st1, st2) {
		t.Fatal("recovered store differs from the one persisted")
	}
	stats := r2.Stats()
	if stats.StoreMisses != 0 || stats.StoreHits != 1 {
		t.Fatalf("restart stats: hits=%d misses=%d, want 1/0", stats.StoreHits, stats.StoreMisses)
	}
	if p := stats.Persist; !p.Enabled || p.GraphsLoaded != 1 || p.StoresLoaded != 1 || p.Quarantined != 0 {
		t.Fatalf("persist stats %+v, want enabled with 1 graph and 1 store loaded", p)
	}
}

// TestPersistDeleteRemovesFiles: DELETE (and LRU eviction) must not
// leave snapshots behind, or deleted graphs would resurrect on boot.
func TestPersistDeleteRemovesFiles(t *testing.T) {
	dir := t.TempDir()
	n, edges := persistGraphEdges()
	r := New(Config{Dir: dir})
	g, _, err := r.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	if !r.Delete(g.ID()) {
		t.Fatal("Delete reported the graph missing")
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		names := make([]string, 0, len(left))
		for _, e := range left {
			names = append(names, e.Name())
		}
		t.Fatalf("snapshots left after delete: %v", names)
	}
	if New(Config{Dir: dir}).Len() != 0 {
		t.Fatal("deleted graph resurrected on reboot")
	}
}

// TestPersistStoreEvictionRemovesFile: the per-graph store LRU deletes
// the snapshot of whatever it displaces.
func TestPersistStoreEvictionRemovesFile(t *testing.T) {
	dir := t.TempDir()
	n, edges := persistGraphEdges()
	r := New(Config{Dir: dir, MaxStoresPerGraph: 1})
	g, _, err := r.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	evicted := storeFile(g.ID(), storeKey{l: 2, engine: apsp.EngineAuto, kind: apsp.KindCompact})
	if _, err := os.Stat(filepath.Join(dir, evicted)); err != nil {
		t.Fatalf("first store snapshot missing: %v", err)
	}
	g.Distances(3, apsp.EngineAuto, apsp.KindCompact) // displaces L=2
	if _, err := os.Stat(filepath.Join(dir, evicted)); !os.IsNotExist(err) {
		t.Fatalf("evicted store snapshot still on disk (err=%v)", err)
	}
}

// TestPersistQuarantinesCorruptFiles: boot-time load must skip — and
// set aside — every kind of bad file without failing startup, while
// still loading the good ones alongside.
func TestPersistQuarantinesCorruptFiles(t *testing.T) {
	n, edges := persistGraphEdges()

	// Build one valid graph + store snapshot pair to corrupt.
	seedDir := t.TempDir()
	seed := New(Config{Dir: seedDir})
	g, _, err := seed.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	g.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	goodGraph, err := os.ReadFile(filepath.Join(seedDir, graphFile(g.ID())))
	if err != nil {
		t.Fatal(err)
	}
	storeName := storeFile(g.ID(), storeKey{l: 3, engine: apsp.EngineAuto, kind: apsp.KindCompact})
	goodStore, err := os.ReadFile(filepath.Join(seedDir, storeName))
	if err != nil {
		t.Fatal(err)
	}
	otherID := strings.Repeat("ab", 32)

	cases := []struct {
		name string
		file string
		data []byte
	}{
		{"truncated graph", graphFile(otherID), goodGraph[:len(goodGraph)-3]},
		{"bad graph magic", graphFile(otherID), append([]byte("XXXX"), goodGraph[4:]...)},
		{"digest mismatch", graphFile(otherID), goodGraph}, // valid bytes, wrong filename id
		{"unparseable store name", "nonsense.store", goodStore},
		{"orphan store", storeFile(otherID, storeKey{l: 3}), goodStore},
		{"kind mismatch", storeFile(g.ID(), storeKey{l: 3, engine: apsp.EngineBFS, kind: apsp.KindPacked}), goodStore},
		{"corrupt store payload", storeFile(g.ID(), storeKey{l: 2}), goodStore[:10]},
		{"store dimension lie", storeFile(g.ID(), storeKey{l: 5}), goodStore}, // claims L=5, holds L=3
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, graphFile(g.ID())), goodGraph, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, storeName), goodStore, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, tc.file), tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			r := New(Config{Dir: dir})
			stats := r.Stats().Persist
			if stats.GraphsLoaded != 1 || stats.StoresLoaded != 1 {
				t.Fatalf("good snapshots not loaded alongside %s: %+v", tc.name, stats)
			}
			if stats.Quarantined != 1 {
				t.Fatalf("quarantined=%d, want 1 for %s", stats.Quarantined, tc.name)
			}
			if _, err := os.Stat(filepath.Join(dir, tc.file+corruptSuffix)); err != nil {
				t.Fatalf("%s not renamed aside: %v", tc.name, err)
			}
			// The quarantined file must not be re-counted on reboot.
			if again := New(Config{Dir: dir}).Stats().Persist; again.Quarantined != 0 {
				t.Fatalf("reboot after quarantine still sees %d bad files", again.Quarantined)
			}
		})
	}
}

// TestPersistCapacitySkipLeavesStores: graphs (and their stores)
// beyond the capacity bound are left on disk untouched — NOT
// quarantined — so a later boot with a larger -graphs recovers them
// warm.
func TestPersistCapacitySkipLeavesStores(t *testing.T) {
	dir := t.TempDir()
	r := New(Config{Dir: dir})
	n, edges := persistGraphEdges()
	g1, _, err := r.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := r.Put(n, edges[:len(edges)-1])
	if err != nil {
		t.Fatal(err)
	}
	g1.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	g2.Distances(2, apsp.EngineAuto, apsp.KindCompact)

	small := New(Config{Dir: dir, MaxGraphs: 1})
	ps := small.Stats().Persist
	if ps.GraphsLoaded != 1 || ps.StoresLoaded != 1 {
		t.Fatalf("capacity-1 boot loaded %d graphs / %d stores, want 1/1", ps.GraphsLoaded, ps.StoresLoaded)
	}
	if ps.Quarantined != 0 {
		t.Fatalf("capacity-1 boot quarantined %d valid snapshots", ps.Quarantined)
	}
	// The skipped graph's snapshots must still be intact for a roomier
	// boot.
	full := New(Config{Dir: dir})
	ps = full.Stats().Persist
	if ps.GraphsLoaded != 2 || ps.StoresLoaded != 2 || ps.Quarantined != 0 {
		t.Fatalf("roomy reboot stats %+v, want both graphs and stores back", ps)
	}
}

// TestCachedDistancesNeverBuilds: the peeking lookup reports absent on
// a cold cache (no build, no miss counted) and hits once Distances has
// built.
func TestCachedDistancesNeverBuilds(t *testing.T) {
	r := New(Config{})
	n, edges := persistGraphEdges()
	g, _, err := r.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.CachedDistances(2, apsp.EngineAuto, apsp.KindCompact); ok {
		t.Fatal("cold cache reported a store")
	}
	if s := r.Stats(); s.StoreMisses != 0 || s.StoreHits != 0 || s.Stores != 0 {
		t.Fatalf("peek perturbed counters: %+v", s)
	}
	want, _ := g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	got, ok := g.CachedDistances(2, apsp.EngineAuto, apsp.KindCompact)
	if !ok || !apsp.Equal(want, got) {
		t.Fatal("warm cache peek did not return the built store")
	}
	if s := r.Stats(); s.StoreHits != 1 {
		t.Fatalf("warm peek counted %d hits, want 1", s.StoreHits)
	}
}

// TestPersistQuarantinesTempFiles: a temp file left by a crash
// mid-write (or mid-streaming-build) is set aside as *.corrupt at
// boot — never loaded, never silently deleted — and a later boot does
// not quarantine the already-quarantined copy again.
func TestPersistQuarantinesTempFiles(t *testing.T) {
	dir := t.TempDir()
	leftover := filepath.Join(dir, tmpPrefix+"whatever.graph")
	if err := os.WriteFile(leftover, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(Config{Dir: dir})
	if r.Len() != 0 {
		t.Fatal("temp leftover was loaded")
	}
	if q := r.Stats().Persist.Quarantined; q != 1 {
		t.Fatalf("boot quarantined %d files, want 1", q)
	}
	if _, err := os.Stat(leftover); !os.IsNotExist(err) {
		t.Fatalf("temp leftover still present (err=%v)", err)
	}
	if _, err := os.Stat(leftover + corruptSuffix); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	// A second boot must leave the quarantined file exactly where it is.
	r2 := New(Config{Dir: dir})
	if q := r2.Stats().Persist.Quarantined; q != 0 {
		t.Fatalf("re-boot quarantined %d files, want 0", q)
	}
	if _, err := os.Stat(leftover + corruptSuffix); err != nil {
		t.Fatalf("quarantined copy disturbed by re-boot: %v", err)
	}
}

// TestParseStoreFileRoundTrip: the filename codec inverts itself for
// every key shape the cache can produce.
func TestParseStoreFileRoundTrip(t *testing.T) {
	id := strings.Repeat("cd", 32)
	for _, k := range []storeKey{
		{l: 1, engine: apsp.EngineAuto, kind: apsp.KindCompact},
		{l: 300, engine: apsp.EngineFW, kind: apsp.KindPacked},
		{l: 7, engine: apsp.EngineBit, kind: apsp.KindCompact},
	} {
		gotID, gotKey, ok := parseStoreFile(storeFile(id, k))
		if !ok || gotID != id || gotKey != k {
			t.Errorf("round-trip of %v: got (%q, %v, %v)", k, gotID, gotKey, ok)
		}
	}
	for _, bad := range []string{"x.graph", "a.l2.auto.compact", "a.lx.auto.compact.store", "a.l2.dijkstra.compact.store", "a.l2.auto.sparse.store", "a.l2.auto.store"} {
		if _, _, ok := parseStoreFile(bad); ok {
			t.Errorf("parseStoreFile accepted %q", bad)
		}
	}
}
