// Package registry implements the server's content-addressed graph
// registry: graphs are parsed and validated once, stored under the
// SHA-256 digest of their canonical edge set, and reused across
// requests. Beneath each graph the registry caches built distance
// stores keyed by (L, engine, backing), so the dominant cost of the
// serving workload — APSP construction — is paid once per
// (graph, threshold) instead of once per request.
//
// Content addressing gives the registry its semantics for free: two
// registrations of the same effective graph (any edge order, either
// endpoint order per edge) resolve to the same id, and the id doubles
// as an integrity check — a client that knows the digest of the graph
// it means to query can verify the server is holding exactly that
// graph. Both the graph map and the per-graph store cache are bounded
// LRUs, so a long-lived server cannot accumulate unbounded parsed
// graphs or distance matrices.
//
// Registered graphs are immutable and safe for concurrent use: every
// operation in this codebase treats its input graph as read-only
// (the anonymizers clone before mutating), and cached stores are only
// ever read after construction. A graph evicted or deleted while a
// request still holds it keeps working for that request; it simply
// stops being findable.
package registry

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	lopacity "repro"
	"repro/internal/apsp"
	"repro/internal/graph"
)

// Config bounds the registry's two LRU layers and optionally points it
// at a snapshot directory.
type Config struct {
	// MaxGraphs caps registered graphs; the least recently used graph
	// (and its cached stores) is evicted on overflow. Zero selects 64.
	MaxGraphs int
	// MaxStoresPerGraph caps cached distance stores per graph. Zero
	// selects 4.
	MaxStoresPerGraph int
	// Dir, when non-empty, enables persistence: graphs and built
	// distance stores are snapshotted write-through into this
	// directory and recovered at construction, so a restarted process
	// serves its first graph_ref queries with zero APSP builds. See
	// persist.go for the format and the failure policy.
	Dir string
	// MappedStores, when set (and Dir is), hydrates store snapshots at
	// boot as read-only memory-mapped views (apsp.MappedStore) instead
	// of decoding them into the heap: a warm restart over gigabytes of
	// persisted triangles costs page-table setup, not a read-and-copy
	// of every byte, and cells are paged in only as requests touch
	// them. Mapped hydration skips the per-cell validation the heap
	// decode performs (the header, dimensions, and payload length are
	// still checked); mutable consumers transparently Clone, which
	// validates fully. Freshly built stores are streamed straight into
	// their snapshot file and served as mapped views from the first
	// request — the triangle is never materialized in the heap.
	MappedStores bool
	// PagedStores, when set (and Dir is), serves store snapshots as
	// paged views (apsp.PagedStore): cells are windowed through a
	// shared LRU page cache capped at StoreBudgetBytes, so total
	// resident triangle bytes stay bounded no matter how many graphs
	// and thresholds are cached — the out-of-core mode for triangles
	// larger than RAM. Fresh builds stream straight to disk and are
	// served paged from the first request. Mutually exclusive with
	// MappedStores (they are two residency policies over the same
	// snapshot files).
	PagedStores bool
	// StoreBudgetBytes caps the resident bytes of the shared page
	// cache when PagedStores is set. Zero selects 256 MiB; budgets
	// below one page (64 KiB) are raised to one page.
	StoreBudgetBytes int64
	// DisableRepair turns off lineage-based store repair: graphs
	// registered via Mutate hydrate their distance stores with a full
	// build even when the parent's store is warm. The zero value keeps
	// repair on — it is an escape hatch for debugging, not a tuning
	// knob (repair produces cell-identical stores).
	DisableRepair bool
}

// defaultStoreBudgetBytes is the page-cache ceiling when PagedStores is
// enabled without an explicit -store-budget-bytes.
const defaultStoreBudgetBytes = 256 << 20

func (c *Config) setDefaults() {
	if c.MaxGraphs == 0 {
		c.MaxGraphs = 64
	}
	if c.MaxStoresPerGraph == 0 {
		c.MaxStoresPerGraph = 4
	}
	if c.StoreBudgetBytes == 0 {
		c.StoreBudgetBytes = defaultStoreBudgetBytes
	}
}

// Validate rejects negative capacities; zero values select defaults.
// When Dir is set, Validate also creates the snapshot directory and
// probes it for writability, so a server booted with an unusable data
// directory fails at startup with a clear error instead of silently
// persisting nothing.
func (c Config) Validate() error {
	if c.MaxGraphs < 0 {
		return fmt.Errorf("registry: graph capacity must be >= 0, got %d", c.MaxGraphs)
	}
	if c.MaxStoresPerGraph < 0 {
		return fmt.Errorf("registry: stores per graph must be >= 0, got %d", c.MaxStoresPerGraph)
	}
	if c.StoreBudgetBytes < 0 {
		return fmt.Errorf("registry: store budget must be >= 0 bytes, got %d", c.StoreBudgetBytes)
	}
	if c.PagedStores && c.Dir == "" {
		return fmt.Errorf("registry: paged stores require a data dir (the snapshot file is the backing)")
	}
	if c.PagedStores && c.MappedStores {
		return fmt.Errorf("registry: mapped and paged stores are mutually exclusive residency policies")
	}
	if c.Dir != "" {
		if err := os.MkdirAll(c.Dir, 0o755); err != nil {
			return fmt.Errorf("registry: data dir: %w", err)
		}
		probe := filepath.Join(c.Dir, tmpPrefix+"probe")
		if err := os.WriteFile(probe, nil, 0o644); err != nil {
			return fmt.Errorf("registry: data dir not writable: %w", err)
		}
		os.Remove(probe)
	}
	return nil
}

// Canonicalize validates an edge list against the simple-graph model
// and returns its canonical form: every edge as (min, max), the list
// sorted lexicographically. Out-of-range endpoints, self-loops, and
// duplicate edges (including reversed duplicates such as [0,1] and
// [1,0]) are errors: the canonical edge set must be in bijection with
// the graph it denotes, or content addressing breaks — two requests
// for the same effective graph would hash to different ids.
// Every rejection names the offending edge and its index in the input
// list, so a 400 from upload or PATCH tells the client which element
// of its edge array to fix rather than only which rule it broke.
func Canonicalize(n int, edges [][2]int) ([][2]int, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: n must be positive")
	}
	// Track each edge's original input index through the sort: duplicate
	// detection happens on the sorted list, but the error must point at
	// a position in the list the client actually sent.
	idx := make([]int, len(edges))
	out := make([][2]int, len(edges))
	for i, e := range edges {
		u, v := e[0], e[1]
		if u < 0 || v < 0 || u >= n || v >= n {
			return nil, fmt.Errorf("graph: edge [%d, %d] at index %d out of range for n=%d", u, v, i, n)
		}
		if u == v {
			return nil, fmt.Errorf("graph: self-loop [%d, %d] at index %d not allowed in a simple graph", u, v, i)
		}
		if u > v {
			u, v = v, u
		}
		out[i] = [2]int{u, v}
		idx[i] = i
	}
	sort.Sort(&canonSort{edges: out, idx: idx})
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			// Blame the later of the two input positions: the first
			// occurrence is legitimate, the repeat is the defect.
			at := idx[i]
			if idx[i-1] > at {
				at = idx[i-1]
			}
			return nil, fmt.Errorf("graph: duplicate edge [%d, %d] at index %d not allowed in a simple graph", out[i][0], out[i][1], at)
		}
	}
	return out, nil
}

// canonSort sorts a canonical edge list lexicographically while
// carrying each edge's original input index along, with the index as a
// final tiebreak so equal edges land in input order (the duplicate
// error then blames a deterministic position).
type canonSort struct {
	edges [][2]int
	idx   []int
}

func (s *canonSort) Len() int { return len(s.edges) }

func (s *canonSort) Less(i, j int) bool {
	a, b := s.edges[i], s.edges[j]
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return s.idx[i] < s.idx[j]
}

func (s *canonSort) Swap(i, j int) {
	s.edges[i], s.edges[j] = s.edges[j], s.edges[i]
	s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
}

// Digest returns the hex SHA-256 content address of a canonical edge
// set (as produced by Canonicalize) on n vertices. The encoding is a
// fixed-width binary stream — vertex count, then each endpoint — so
// the digest is stable across processes and releases.
func Digest(n int, canonical [][2]int) string {
	h := sha256.New()
	var buf [8]byte
	put := func(x int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	put(n)
	for _, e := range canonical {
		put(e[0])
		put(e[1])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// storeKey identifies one cached distance store: the threshold and the
// canonical engine/backing that built it.
type storeKey struct {
	l      int
	engine apsp.Engine
	kind   apsp.Kind
}

// storeSlot is the build-once cell for a cached store. The sync.Once
// makes concurrent first requests for the same (L, engine, kind) share
// a single APSP build instead of racing duplicate ones; ready flips
// (after store is assigned) for lock-free peeking by CachedDistances.
type storeSlot struct {
	once  sync.Once
	store apsp.Store
	ready atomic.Bool
}

type storeEntry struct {
	key  storeKey
	slot *storeSlot
}

// Graph is one registered graph: parsed once, content-addressed, with
// an LRU cache of built distance stores beneath it. Everything except
// the store cache is immutable after construction, so a Graph may be
// shared freely across concurrent requests.
type Graph struct {
	id      string
	edges   [][2]int
	raw     *graph.Graph
	pub     *lopacity.Graph
	degrees []int
	reg     *Registry
	lineage *Lineage // non-nil iff registered via Mutate (or recovered)

	mu         sync.Mutex
	stores     map[storeKey]*list.Element
	storeOrder *list.List // front = most recently used
	maxStores  int
	detached   bool // no longer in the registry; stop aggregate accounting
}

// ID returns the graph's content address (hex SHA-256 of the canonical
// edge set).
func (g *Graph) ID() string { return g.id }

// N returns the vertex count.
func (g *Graph) N() int { return g.raw.N() }

// M returns the edge count.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the canonical sorted edge set. The slice is shared:
// callers must treat it as read-only.
func (g *Graph) Edges() [][2]int { return g.edges }

// Degrees returns the degree sequence. The slice is shared: callers
// must treat it as read-only.
func (g *Graph) Degrees() []int { return g.degrees }

// Public returns the graph as the public-API type. The graph is shared
// across requests; callers must not mutate it (every operation in this
// codebase already treats its input graph as read-only).
func (g *Graph) Public() *lopacity.Graph { return g.pub }

// StoreCount returns the number of currently cached distance stores.
func (g *Graph) StoreCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.storeOrder.Len()
}

// seedStore installs a store recovered from a snapshot into the
// graph's cache with its build already "spent", so the first request
// for it counts as a hit with zero APSP builds. It reports false when
// the per-graph cache is full or the key is already present. Called
// only during boot-time load, before the registry is shared.
func (g *Graph) seedStore(k storeKey, st apsp.Store) bool {
	if _, ok := g.stores[k]; ok || g.storeOrder.Len() >= g.maxStores {
		return false
	}
	slot := &storeSlot{store: st}
	slot.once.Do(func() {}) // consume the build
	slot.ready.Store(true)
	g.stores[k] = g.storeOrder.PushFront(&storeEntry{key: k, slot: slot})
	g.reg.stores.Add(1)
	return true
}

// CachedDistances returns the store for (L, engine, kind) only when it
// is already built, refreshing its recency and counting a hit — it
// never triggers (or waits for) an APSP build. Callers with a cheaper
// fallback than a full build (the audit path's lazy per-source BFS)
// use this instead of Distances so a cold registry never forces the
// O(n·m) build into their request. A slot whose build is still in
// flight reports absent.
func (g *Graph) CachedDistances(L int, engine apsp.Engine, kind apsp.Kind) (apsp.Store, bool) {
	k := storeKey{l: L, engine: engine, kind: apsp.EffectiveKind(kind, L)}
	g.mu.Lock()
	el, ok := g.stores[k]
	var slot *storeSlot
	if ok {
		g.storeOrder.MoveToFront(el)
		slot = el.Value.(*storeEntry).slot
	}
	g.mu.Unlock()
	if !ok || !slot.ready.Load() {
		return nil, false
	}
	g.reg.storeHits.Add(1)
	return slot.store, true
}

// Distances returns the graph's L-capped distance store for the given
// engine and backing, building it on first use and serving the cached
// store afterwards. The bool reports reuse: true means no APSP build
// happened on this call (either the store was cached, or a concurrent
// caller's in-flight build was joined). Returned stores are shared and
// must be treated as read-only.
func (g *Graph) Distances(L int, engine apsp.Engine, kind apsp.Kind) (apsp.Store, bool) {
	// Key on the backing actually built: compact degrades to packed for
	// L > MaxCompactL inside apsp.Build, so the two spellings must share
	// one slot rather than caching byte-equivalent twins.
	k := storeKey{l: L, engine: engine, kind: apsp.EffectiveKind(kind, L)}
	g.mu.Lock()
	var slot *storeSlot
	if el, ok := g.stores[k]; ok {
		g.storeOrder.MoveToFront(el)
		slot = el.Value.(*storeEntry).slot
	} else {
		if g.storeOrder.Len() >= g.maxStores {
			oldest := g.storeOrder.Back()
			g.storeOrder.Remove(oldest)
			evicted := oldest.Value.(*storeEntry)
			delete(g.stores, evicted.key)
			g.reg.storeEvictions.Add(1)
			if !g.detached {
				g.reg.stores.Add(-1)
				if ps := pagedStoreOf(evicted.slot); ps != nil {
					// A paged store's snapshot file IS its backing:
					// deleting it would break the evicted view for
					// requests still holding it and forfeit the warm
					// boot. Eviction reclaims the cache pages; the
					// bytes stay on disk.
					ps.DropPages()
				} else if p := g.reg.persist; p != nil {
					p.deleteFile(storeFile(g.id, evicted.key))
				}
			}
		}
		slot = &storeSlot{}
		g.stores[k] = g.storeOrder.PushFront(&storeEntry{key: k, slot: slot})
		if !g.detached {
			g.reg.stores.Add(1)
		}
	}
	g.mu.Unlock()

	built := false
	fileBacked := false
	slot.once.Do(func() {
		// Lineage-first hydration: a graph registered via Mutate tries
		// to repair its parent's warm store through the recorded diff —
		// O(balls touched around the edited edges) instead of the full
		// O(n·m) rebuild, and no build is counted because none happened.
		// Repair serves from an overlay over the parent's store; the
		// write-through below snapshots it, so the next boot hydrates
		// this store directly with no parent needed.
		if st := g.reg.tryRepair(g, k); st != nil {
			slot.store = st
			slot.ready.Store(true)
			built = true
			return
		}
		start := time.Now()
		// Build-through-to-file: with a file-backed residency policy the
		// snapshot is not a copy of the store, it IS the store. The
		// triangle streams straight into a temp file during the sweep
		// (never materialized in heap), is renamed into place, and the
		// served view opens over the final file. Any failure falls back
		// to the classic heap build + write-through.
		if g.reg.persist != nil && (g.reg.cfg.MappedStores || g.reg.cfg.PagedStores) {
			slot.store = g.reg.buildThroughFile(g.raw, g.id, k, L, engine)
			fileBacked = slot.store != nil
		}
		if slot.store == nil {
			slot.store = apsp.Build(g.raw, L, apsp.BuildOptions{Engine: engine, Kind: kind})
		}
		g.reg.recordBuild(time.Since(start))
		slot.ready.Store(true)
		built = true
	})
	if built {
		g.reg.storeMisses.Add(1)
		// Write-through: snapshot the freshly built store so a restart
		// starts warm — unless the graph was deleted mid-build, whose
		// file cleanup already ran. A file-backed build already wrote its
		// snapshot, so it only needs the mid-build-delete undo (the open
		// view keeps serving this request off the unlinked file). If
		// this slot was concurrently evicted above, the file may briefly
		// outlive the cache entry; the next boot just reloads it as a
		// valid cached store.
		if p := g.reg.persist; p != nil {
			g.mu.Lock()
			detached := g.detached
			g.mu.Unlock()
			switch {
			case detached && fileBacked:
				p.deleteFile(storeFile(g.id, k))
			case !detached && !fileBacked:
				p.saveStore(g.id, k, slot.store)
			}
		}
	} else {
		g.reg.storeHits.Add(1)
	}
	return slot.store, !built
}

// pagedStoreOf returns the slot's store as a paged view, or nil when
// the slot is unbuilt or backed some other way.
func pagedStoreOf(slot *storeSlot) *apsp.PagedStore {
	if !slot.ready.Load() {
		return nil
	}
	ps, _ := slot.store.(*apsp.PagedStore)
	return ps
}

// buildThroughFile streams a fresh APSP build straight into its
// snapshot file — temp name first, then an atomic rename, so a crash
// mid-sweep leaves only a quarantinable .tmp- partial — and hydrates
// the result as the configured file-backed view (mapped or paged). It
// returns nil when any step fails; the caller falls back to a heap
// build and the registry keeps serving.
func (r *Registry) buildThroughFile(raw *graph.Graph, id string, k storeKey, L int, engine apsp.Engine) apsp.Store {
	p := r.persist
	name := storeFile(id, k)
	tmp := filepath.Join(p.dir, tmpPrefix+name)
	if err := apsp.BuildToFile(tmp, raw, L, apsp.BuildOptions{Engine: engine, Kind: k.kind}); err != nil {
		os.Remove(tmp)
		p.writeErrors.Add(1)
		return nil
	}
	final := filepath.Join(p.dir, name)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		p.writeErrors.Add(1)
		return nil
	}
	p.storeWrites.Add(1)
	st, err := r.openStoreFile(final)
	if err != nil {
		// The snapshot itself is durable (BuildToFile synced before the
		// rename); only this process's view failed. Serve from the heap
		// for now — the file still warms the next boot.
		return nil
	}
	return st
}

// openStoreFile opens a snapshot file as the configured file-backed
// view: paged when a page budget governs residency, mapped otherwise.
func (r *Registry) openStoreFile(path string) (apsp.Store, error) {
	if r.cfg.PagedStores {
		return apsp.OpenPagedStore(path, r.pages)
	}
	return apsp.OpenMappedStore(path)
}

// Stats is a point-in-time snapshot of registry effectiveness.
type Stats struct {
	// Graphs is the current number of registered graphs; Capacity the
	// LRU bound.
	Graphs, Capacity int
	// Hits and Misses count Get lookups; Evictions counts graphs
	// displaced by the LRU bound (explicit deletes are not evictions).
	Hits, Misses, Evictions int64
	// Stores is the current number of cached distance stores across all
	// registered graphs.
	Stores int
	// StoreHits counts Distances calls served without an APSP build;
	// StoreMisses counts calls that built; StoreEvictions counts stores
	// displaced by either LRU layer.
	StoreHits, StoreMisses, StoreEvictions int64
	// Builds counts completed APSP builds; BuildMSTotal and BuildMSMax
	// aggregate their wall-clock cost in milliseconds. Together with
	// StoreHits they answer the capacity-planning question directly
	// from /v1/stats: how much build time the cache is absorbing, and
	// how bad the worst cold build has been.
	Builds, BuildMSTotal, BuildMSMax int64
	// Mutations counts child graphs registered via Mutate. Repairs
	// counts store hydrations served by repairing a parent's store
	// (no APSP build); RepairFallbacks counts lineage-bearing
	// hydrations that had to build anyway (parent or its store gone,
	// or the diff too large for repair to win); RepairMSTotal
	// aggregates repair wall-clock in milliseconds. Repairs vs
	// RepairFallbacks is the dynamic-graph effectiveness ratio, the
	// same way StoreHits vs Builds is the cache's.
	Mutations, Repairs, RepairFallbacks, RepairMSTotal int64
	// Hydrations counts graphs installed from a peer snapshot via
	// InstallSnapshot; HydratedStores counts the distance stores
	// adopted alongside them — builds this replica never paid.
	Hydrations, HydratedStores int64
	// StoreBytes and StoreFileBytes aggregate the cached stores'
	// footprints by backing name ("compact", "packed", "mapped",
	// "paged", "overlay"): heap-resident bytes and file-backed bytes
	// respectively. Together they answer "where do my triangles live" —
	// a heap deployment shows bytes only in StoreBytes, a mapped one
	// only in StoreFileBytes, and a paged one shows file bytes per
	// store plus a heap residency bounded by the page budget.
	StoreBytes, StoreFileBytes map[string]int64
	// PageCache reports the shared paged-store cache (zero value when
	// paged hydration is disabled).
	PageCache apsp.PageCacheStats
	// Persist reports the snapshot layer (zero value when disabled).
	Persist PersistStats
}

// Registry is a concurrency-safe, LRU-bounded map from content address
// to registered graph.
type Registry struct {
	cfg     Config
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List      // front = most recently used
	persist *persister      // nil when persistence is disabled
	pages   *apsp.PageCache // shared page budget; nil unless PagedStores

	hits, misses, evictions                atomic.Int64
	stores                                 atomic.Int64
	storeHits, storeMisses, storeEvictions atomic.Int64
	builds, buildMSTotal, buildMSMax       atomic.Int64
	mutations                              atomic.Int64
	repairs, repairFallbacks               atomic.Int64
	repairMSTotal                          atomic.Int64
	hydrations, hydratedStores             atomic.Int64
}

// recordBuild folds one completed APSP build into the timing
// aggregates. The max is maintained with a CAS loop — builds race.
func (r *Registry) recordBuild(d time.Duration) {
	ms := d.Milliseconds()
	r.builds.Add(1)
	r.buildMSTotal.Add(ms)
	for {
		cur := r.buildMSMax.Load()
		if ms <= cur || r.buildMSMax.CompareAndSwap(cur, ms) {
			return
		}
	}
}

// New returns a registry, recovering any snapshots when Config.Dir is
// set. It panics on a Config that fails Validate — a misconfiguration
// that must surface at startup.
func New(cfg Config) *Registry {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.setDefaults()
	r := &Registry{
		cfg:     cfg,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
	if cfg.PagedStores {
		r.pages = apsp.NewPageCache(cfg.StoreBudgetBytes)
	}
	if cfg.Dir != "" {
		r.persist = &persister{dir: cfg.Dir}
		r.loadFromDisk()
	}
	return r
}

// insertLoadedGraph registers a graph recovered from a snapshot. It
// mirrors the construction in Put but skips canonicalization (the
// loader already validated it) and does not write back to disk. Called
// only during loadFromDisk, before the registry is shared.
func (r *Registry) insertLoadedGraph(id string, n int, canonical [][2]int) *Graph {
	raw := graph.New(n)
	for _, e := range canonical {
		raw.AddEdge(e[0], e[1])
	}
	ent := &Graph{
		id:         id,
		edges:      canonical,
		raw:        raw,
		pub:        lopacity.FromEdges(n, canonical),
		degrees:    raw.Degrees(),
		reg:        r,
		stores:     make(map[storeKey]*list.Element),
		storeOrder: list.New(),
		maxStores:  r.cfg.MaxStoresPerGraph,
	}
	r.entries[id] = r.order.PushFront(ent)
	return ent
}

// Put registers the graph described by (n, edges), returning the
// already-registered entry when the canonical edge set is present
// (created = false). The edge list is validated and canonicalized; the
// same errors a request-level graph validation would raise (range,
// self-loop, duplicate) are returned here.
func (r *Registry) Put(n int, edges [][2]int) (g *Graph, created bool, err error) {
	canonical, err := Canonicalize(n, edges)
	if err != nil {
		return nil, false, err
	}
	id := Digest(n, canonical)
	r.mu.Lock()
	if el, ok := r.entries[id]; ok {
		r.order.MoveToFront(el)
		ent := el.Value.(*Graph)
		r.mu.Unlock()
		return ent, false, nil
	}
	r.mu.Unlock()

	// Build outside the lock: adjacency construction is O(n + m) and
	// must not block concurrent lookups. A lost registration race is
	// resolved below in favor of the first writer.
	raw := graph.New(n)
	for _, e := range canonical {
		raw.AddEdge(e[0], e[1])
	}
	ent := &Graph{
		id:         id,
		edges:      canonical,
		raw:        raw,
		pub:        lopacity.FromEdges(n, canonical),
		degrees:    raw.Degrees(),
		reg:        r,
		stores:     make(map[storeKey]*list.Element),
		storeOrder: list.New(),
		maxStores:  r.cfg.MaxStoresPerGraph,
	}
	r.mu.Lock()
	if el, ok := r.entries[id]; ok {
		r.order.MoveToFront(el)
		existing := el.Value.(*Graph)
		r.mu.Unlock()
		return existing, false, nil
	}
	for r.order.Len() >= r.cfg.MaxGraphs {
		r.dropLocked(r.order.Back(), true)
	}
	r.entries[id] = r.order.PushFront(ent)
	r.mu.Unlock()
	// Write-through outside the lock: snapshot IO must not stall
	// concurrent lookups. A Delete racing this write may run its file
	// removal before the snapshot lands, so re-check membership after
	// writing and undo the snapshot if the graph is already gone —
	// otherwise the deleted graph would resurrect on the next boot.
	if r.persist != nil {
		r.persist.saveGraph(ent)
		r.mu.Lock()
		_, still := r.entries[id]
		r.mu.Unlock()
		if !still {
			r.persist.deleteFile(graphFile(id))
		}
	}
	return ent, true, nil
}

// Get returns the registered graph for id, refreshing its recency and
// recording a hit or miss.
func (r *Registry) Get(id string) (*Graph, bool) {
	r.mu.Lock()
	el, ok := r.entries[id]
	if !ok {
		r.mu.Unlock()
		r.misses.Add(1)
		return nil, false
	}
	r.order.MoveToFront(el)
	ent := el.Value.(*Graph)
	r.mu.Unlock()
	r.hits.Add(1)
	return ent, true
}

// Delete removes the graph with the given id, reporting whether it was
// present. Requests still holding the graph keep working; its stores
// just stop counting toward the registry.
//
// Deleting a graph that has Mutate-derived children is allowed and
// does not cascade: each child carries its full canonical edge set, so
// it keeps serving (and stays mutable) with its lineage record intact
// as provenance. Only the repair fast path degrades — a child whose
// stores are not yet hydrated falls back to a full build, counted in
// Stats.RepairFallbacks.
func (r *Registry) Delete(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.entries[id]
	if !ok {
		return false
	}
	r.dropLocked(el, false)
	return true
}

// dropLocked unlinks an entry, detaches it from aggregate store
// accounting, and removes its snapshot files. Callers hold r.mu.
func (r *Registry) dropLocked(el *list.Element, evicted bool) {
	ent := el.Value.(*Graph)
	r.order.Remove(el)
	delete(r.entries, ent.id)
	ent.mu.Lock()
	n := int64(ent.storeOrder.Len())
	ent.detached = true
	for el := ent.storeOrder.Front(); el != nil; el = el.Next() {
		e := el.Value.(*storeEntry)
		if ps := pagedStoreOf(e.slot); ps != nil {
			// Reclaim the shared page budget now; the view itself stays
			// usable for requests still holding it (the open fd keeps
			// the unlinked file readable) and closes via finalizer.
			ps.DropPages()
		}
		if r.persist != nil {
			r.persist.deleteFile(storeFile(ent.id, e.key))
		}
	}
	if r.persist != nil {
		r.persist.deleteFile(graphFile(ent.id))
		if ent.lineage != nil {
			r.persist.deleteFile(lineageFile(ent.id))
		}
	}
	ent.mu.Unlock()
	r.stores.Add(-n)
	if evicted {
		r.evictions.Add(1)
		r.storeEvictions.Add(n)
	}
}

// List returns the registered graphs, most recently used first.
func (r *Registry) List() []*Graph {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Graph, 0, r.order.Len())
	for el := r.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*Graph))
	}
	return out
}

// Len returns the current number of registered graphs.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	graphs := r.order.Len()
	storeBytes := make(map[string]int64)
	storeFileBytes := make(map[string]int64)
	for el := r.order.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*Graph)
		ent.mu.Lock()
		for se := ent.storeOrder.Front(); se != nil; se = se.Next() {
			slot := se.Value.(*storeEntry).slot
			if !slot.ready.Load() {
				continue // build in flight: nothing resident yet
			}
			heap, file := apsp.Footprint(slot.store)
			name := apsp.BackingName(slot.store)
			storeBytes[name] += heap
			storeFileBytes[name] += file
		}
		ent.mu.Unlock()
	}
	r.mu.Unlock()
	var pc apsp.PageCacheStats
	if r.pages != nil {
		pc = r.pages.Stats()
	}
	return Stats{
		StoreBytes:      storeBytes,
		StoreFileBytes:  storeFileBytes,
		PageCache:       pc,
		Graphs:          graphs,
		Capacity:        r.cfg.MaxGraphs,
		Hits:            r.hits.Load(),
		Misses:          r.misses.Load(),
		Evictions:       r.evictions.Load(),
		Stores:          int(r.stores.Load()),
		StoreHits:       r.storeHits.Load(),
		StoreMisses:     r.storeMisses.Load(),
		StoreEvictions:  r.storeEvictions.Load(),
		Builds:          r.builds.Load(),
		BuildMSTotal:    r.buildMSTotal.Load(),
		BuildMSMax:      r.buildMSMax.Load(),
		Mutations:       r.mutations.Load(),
		Repairs:         r.repairs.Load(),
		RepairFallbacks: r.repairFallbacks.Load(),
		RepairMSTotal:   r.repairMSTotal.Load(),
		Hydrations:      r.hydrations.Load(),
		HydratedStores:  r.hydratedStores.Load(),
		Persist:         r.persist.stats(),
	}
}
