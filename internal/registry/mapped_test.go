package registry

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apsp"
)

// TestMappedWarmRestart is the acceptance path for zero-copy
// hydration: a registry rebooted with MappedStores serves its first
// Distances call from the memory-mapped snapshot — store_misses stays
// zero, no APSP build, answers identical to the cold build.
func TestMappedWarmRestart(t *testing.T) {
	dir := t.TempDir()
	n, edges := persistGraphEdges()

	r1 := New(Config{Dir: dir})
	g1, _, err := r1.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	st1, _ := g1.Distances(3, apsp.EngineAuto, apsp.KindCompact)

	r2 := New(Config{Dir: dir, MappedStores: true})
	g2, ok := r2.Get(g1.ID())
	if !ok {
		t.Fatalf("mapped restart lost graph %s", g1.ID())
	}
	st2, reused := g2.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	if !reused {
		t.Fatal("mapped restart rebuilt the store")
	}
	if _, isMapped := st2.(*apsp.MappedStore); !isMapped {
		t.Fatalf("hydrated store is %T, want *apsp.MappedStore", st2)
	}
	if !apsp.Equal(st1, st2) {
		t.Fatal("mapped store differs from the one persisted")
	}
	stats := r2.Stats()
	if stats.StoreMisses != 0 || stats.StoreHits != 1 || stats.Builds != 0 {
		t.Fatalf("mapped restart stats: hits=%d misses=%d builds=%d, want 1/0/0",
			stats.StoreHits, stats.StoreMisses, stats.Builds)
	}
	if stats.Persist.StoresLoaded != 1 || stats.Persist.Quarantined != 0 {
		t.Fatalf("persist stats %+v, want 1 store loaded, none quarantined", stats.Persist)
	}
	// The request-level "mapped" spelling folds onto the same slot.
	if _, ok := g2.CachedDistances(3, apsp.EngineAuto, apsp.KindMapped); !ok {
		t.Fatal("kind=mapped request missed the hydrated compact slot")
	}
}

// TestMappedRestartQuarantinesCorrupt: a damaged snapshot must not
// hydrate; it is set aside exactly as in the heap-decode path.
func TestMappedRestartQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	n, edges := persistGraphEdges()
	r1 := New(Config{Dir: dir})
	g1, _, err := r1.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	g1.Distances(2, apsp.EngineAuto, apsp.KindCompact)

	var storePath string
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		if filepath.Ext(f.Name()) == storeSuffix {
			storePath = filepath.Join(dir, f.Name())
		}
	}
	if storePath == "" {
		t.Fatal("no store snapshot written")
	}
	if err := os.Truncate(storePath, 10); err != nil {
		t.Fatal(err)
	}

	r2 := New(Config{Dir: dir, MappedStores: true})
	stats := r2.Stats()
	if stats.Persist.StoresLoaded != 0 || stats.Persist.Quarantined != 1 {
		t.Fatalf("corrupt mapped boot: %+v, want 0 loaded / 1 quarantined", stats.Persist)
	}
}

// TestBuildTimingStats: every cold build increments Builds and feeds
// the millisecond aggregates; cache hits do not.
func TestBuildTimingStats(t *testing.T) {
	n, edges := persistGraphEdges()
	r := New(Config{})
	g, _, err := r.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	g.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	g.Distances(2, apsp.EngineAuto, apsp.KindCompact) // hit
	stats := r.Stats()
	if stats.Builds != 2 {
		t.Fatalf("Builds = %d, want 2", stats.Builds)
	}
	if stats.BuildMSTotal < 0 || stats.BuildMSMax < 0 || stats.BuildMSMax > stats.BuildMSTotal {
		t.Fatalf("timing aggregates inconsistent: total=%d max=%d", stats.BuildMSTotal, stats.BuildMSMax)
	}
}
