package registry

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apsp"
)

// TestPagedConfigValidation: the paged mode's preconditions surface at
// startup, not as silent misbehavior later.
func TestPagedConfigValidation(t *testing.T) {
	if err := (Config{PagedStores: true}).Validate(); err == nil {
		t.Error("PagedStores without Dir validated")
	}
	if err := (Config{Dir: t.TempDir(), PagedStores: true, MappedStores: true}).Validate(); err == nil {
		t.Error("PagedStores together with MappedStores validated")
	}
	if err := (Config{StoreBudgetBytes: -1}).Validate(); err == nil {
		t.Error("negative store budget validated")
	}
	if err := (Config{Dir: t.TempDir(), PagedStores: true, StoreBudgetBytes: 1 << 20}).Validate(); err != nil {
		t.Errorf("valid paged config rejected: %v", err)
	}
}

// TestBuildThroughToFile: with a file-backed residency policy a COLD
// build streams straight into its snapshot file and is served as the
// configured view from the first request — the write-through copy is
// not a separate post-build marshal.
func TestBuildThroughToFile(t *testing.T) {
	n, edges := persistGraphEdges()
	oracle := func() apsp.Store {
		r := New(Config{})
		g, _, err := r.Put(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		st, _ := g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
		return st
	}()

	cases := map[string]Config{
		"mapped": {MappedStores: true},
		"paged":  {PagedStores: true, StoreBudgetBytes: 1 << 20},
	}
	for name, cfg := range cases {
		cfg.Dir = t.TempDir()
		r := New(cfg)
		g, _, err := r.Put(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		st, reused := g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
		if reused {
			t.Fatalf("%s: cold build reported reuse", name)
		}
		switch name {
		case "mapped":
			if _, ok := st.(*apsp.MappedStore); !ok {
				t.Fatalf("mapped: cold build served %T, want *apsp.MappedStore", st)
			}
		case "paged":
			if _, ok := st.(*apsp.PagedStore); !ok {
				t.Fatalf("paged: cold build served %T, want *apsp.PagedStore", st)
			}
		}
		if !apsp.Equal(oracle, st) {
			t.Fatalf("%s: build-through store differs from heap oracle", name)
		}
		k := storeKey{l: 2, engine: apsp.EngineAuto, kind: apsp.KindCompact}
		if _, err := os.Stat(filepath.Join(cfg.Dir, storeFile(g.ID(), k))); err != nil {
			t.Fatalf("%s: snapshot file missing after build-through: %v", name, err)
		}
		stats := r.Stats()
		if stats.Persist.StoreWrites != 1 || stats.Persist.WriteErrors != 0 {
			t.Fatalf("%s: persist counters %+v, want exactly one clean store write", name, stats.Persist)
		}
		if stats.Builds != 1 || stats.StoreMisses != 1 {
			t.Fatalf("%s: builds=%d misses=%d, want 1/1", name, stats.Builds, stats.StoreMisses)
		}
	}
}

// TestPagedWarmRestart is the acceptance path for budgeted hydration:
// a registry rebooted with PagedStores serves its first Distances call
// through the page cache — builds and store_misses stay zero, answers
// identical to the cold build.
func TestPagedWarmRestart(t *testing.T) {
	dir := t.TempDir()
	n, edges := persistGraphEdges()

	r1 := New(Config{Dir: dir})
	g1, _, err := r1.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	st1, _ := g1.Distances(3, apsp.EngineAuto, apsp.KindCompact)

	r2 := New(Config{Dir: dir, PagedStores: true, StoreBudgetBytes: 1 << 20})
	g2, ok := r2.Get(g1.ID())
	if !ok {
		t.Fatalf("paged restart lost graph %s", g1.ID())
	}
	st2, reused := g2.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	if !reused {
		t.Fatal("paged restart rebuilt the store")
	}
	if _, isPaged := st2.(*apsp.PagedStore); !isPaged {
		t.Fatalf("hydrated store is %T, want *apsp.PagedStore", st2)
	}
	if !apsp.Equal(st1, st2) {
		t.Fatal("paged store differs from the one persisted")
	}
	stats := r2.Stats()
	if stats.StoreMisses != 0 || stats.StoreHits != 1 || stats.Builds != 0 {
		t.Fatalf("paged restart stats: hits=%d misses=%d builds=%d, want 1/0/0",
			stats.StoreHits, stats.StoreMisses, stats.Builds)
	}
	if stats.PageCache.BudgetBytes != 1<<20 {
		t.Fatalf("page cache budget = %d, want %d", stats.PageCache.BudgetBytes, 1<<20)
	}
	// Equal above walked every cell, so pages must be resident and
	// within budget.
	if stats.PageCache.ResidentBytes <= 0 || stats.PageCache.ResidentBytes > stats.PageCache.BudgetBytes {
		t.Fatalf("resident %d bytes outside (0, budget=%d]",
			stats.PageCache.ResidentBytes, stats.PageCache.BudgetBytes)
	}
	// The request-level "paged" spelling folds onto the same slot.
	if _, ok := g2.CachedDistances(3, apsp.EngineAuto, apsp.KindPaged); !ok {
		t.Fatal("kind=paged request missed the hydrated compact slot")
	}
}

// TestPagedEvictionKeepsFile: LRU eviction of a paged store reclaims
// its cache pages but must NOT delete the snapshot file — the file is
// the store's backing (a request may still hold the view) and the warm
// source for the next boot. Heap and mapped evictions keep deleting.
func TestPagedEvictionKeepsFile(t *testing.T) {
	dir := t.TempDir()
	n, edges := persistGraphEdges()
	r := New(Config{Dir: dir, PagedStores: true, MaxStoresPerGraph: 1, StoreBudgetBytes: 1 << 20})
	g, _, err := r.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	ps, ok := first.(*apsp.PagedStore)
	if !ok {
		t.Fatalf("cold paged build served %T", first)
	}
	ps.Get(0, 1) // fault at least one page in
	g.Distances(3, apsp.EngineAuto, apsp.KindCompact)

	k2 := storeKey{l: 2, engine: apsp.EngineAuto, kind: apsp.KindCompact}
	if _, err := os.Stat(filepath.Join(dir, storeFile(g.ID(), k2))); err != nil {
		t.Fatalf("eviction deleted the paged store's snapshot: %v", err)
	}
	if rb := ps.ResidentBytes(); rb != 0 {
		t.Fatalf("evicted paged store still pins %d cache bytes", rb)
	}
	// The evicted view keeps answering off the surviving file.
	if d := ps.Get(0, 1); d < 1 {
		t.Fatalf("evicted paged store returned %d", d)
	}
	if ev := r.Stats().StoreEvictions; ev != 1 {
		t.Fatalf("StoreEvictions = %d, want 1", ev)
	}
}

// TestCrashMidStreamingBuildQuarantine: a partial .tmp- snapshot left
// by a crash mid-streaming-build is quarantined at the next boot —
// never hydrated, never silently discarded — and the store rebuilds
// cleanly through a fresh file afterwards.
func TestCrashMidStreamingBuildQuarantine(t *testing.T) {
	dir := t.TempDir()
	n, edges := persistGraphEdges()
	r1 := New(Config{Dir: dir})
	g1, _, err := r1.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}

	// Fabricate the crash artifact: a truncated store payload under the
	// temp name a streaming build would have used.
	k := storeKey{l: 2, engine: apsp.EngineAuto, kind: apsp.KindCompact}
	partial := filepath.Join(dir, tmpPrefix+storeFile(g1.ID(), k))
	if err := os.WriteFile(partial, []byte("LOPS-partial-sweep"), 0o644); err != nil {
		t.Fatal(err)
	}

	r2 := New(Config{Dir: dir, PagedStores: true, StoreBudgetBytes: 1 << 20})
	stats := r2.Stats()
	if stats.Persist.Quarantined != 1 {
		t.Fatalf("boot quarantined %d files, want 1 (the partial build)", stats.Persist.Quarantined)
	}
	if _, err := os.Stat(partial + corruptSuffix); err != nil {
		t.Fatalf("partial build not set aside as corrupt: %v", err)
	}
	if stats.Persist.StoresLoaded != 0 {
		t.Fatalf("boot loaded %d stores from a partial-only dir, want 0", stats.Persist.StoresLoaded)
	}

	// The graph survived; the next request rebuilds through a fresh file.
	g2, ok := r2.Get(g1.ID())
	if !ok {
		t.Fatal("graph lost alongside the partial store")
	}
	st, reused := g2.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	if reused {
		t.Fatal("rebuild after quarantine reported reuse")
	}
	if _, ok := st.(*apsp.PagedStore); !ok {
		t.Fatalf("rebuild served %T, want *apsp.PagedStore", st)
	}
	if _, err := os.Stat(filepath.Join(dir, storeFile(g1.ID(), k))); err != nil {
		t.Fatalf("rebuild did not land a fresh snapshot: %v", err)
	}
}

// TestStatsStoreBytes: the per-backing byte gauges tell heap, mapped,
// and paged deployments apart — heap triangles live in StoreBytes,
// file-backed ones in StoreFileBytes with paged heap residency bounded
// by the page budget.
func TestStatsStoreBytes(t *testing.T) {
	n, edges := persistGraphEdges()
	triangle := int64(n) * int64(n-1) / 2

	heap := New(Config{})
	gh, _, err := heap.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	gh.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	hs := heap.Stats()
	if hs.StoreBytes["compact"] != triangle {
		t.Fatalf("heap StoreBytes[compact] = %d, want %d", hs.StoreBytes["compact"], triangle)
	}
	if total := sumBytes(hs.StoreFileBytes); total != 0 {
		t.Fatalf("heap deployment reports %d file bytes", total)
	}

	paged := New(Config{Dir: t.TempDir(), PagedStores: true, StoreBudgetBytes: 1 << 20})
	gp, _, err := paged.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	st, _ := gp.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	st.Get(0, 1) // make at least one page resident
	ps := paged.Stats()
	wantFile := int64(22) + triangle // storeHeaderLen + compact payload
	if ps.StoreFileBytes["paged"] != wantFile {
		t.Fatalf("paged StoreFileBytes = %d, want %d", ps.StoreFileBytes["paged"], wantFile)
	}
	if hb := ps.StoreBytes["paged"]; hb <= 0 || hb > ps.PageCache.BudgetBytes {
		t.Fatalf("paged StoreBytes = %d, want resident pages within budget %d", hb, ps.PageCache.BudgetBytes)
	}
	if len(ps.StoreBytes) != 1 || ps.StoreBytes["compact"] != 0 {
		t.Fatalf("paged deployment leaks heap backings into StoreBytes: %v", ps.StoreBytes)
	}
}

func sumBytes(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

// TestMappedStatsFileBytes: a mapped warm boot reports its triangles
// as file bytes under the "mapped" label with zero heap residency —
// the gauge pair that distinguishes it from a heap boot on dashboards.
func TestMappedStatsFileBytes(t *testing.T) {
	dir := t.TempDir()
	n, edges := persistGraphEdges()
	r1 := New(Config{Dir: dir})
	g1, _, err := r1.Put(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	g1.Distances(2, apsp.EngineAuto, apsp.KindCompact)

	r2 := New(Config{Dir: dir, MappedStores: true})
	ms := r2.Stats()
	wantFile := int64(22) + int64(n)*int64(n-1)/2
	if ms.StoreFileBytes["mapped"] != wantFile {
		t.Fatalf("mapped StoreFileBytes = %d, want %d", ms.StoreFileBytes["mapped"], wantFile)
	}
	if hb := ms.StoreBytes["mapped"]; hb != 0 {
		t.Fatalf("mapped view reports %d heap bytes, want 0", hb)
	}
}
