// Persistence: write-through snapshots of the registry's contents.
//
// When Config.Dir is set, every registered graph's canonical edge set
// and every built distance store is snapshotted to disk, so a
// restarted server comes back holding exactly the graphs and stores it
// had — the first graph_ref opacity or anonymize query after a warm
// restart performs zero APSP builds. The layout is flat:
//
//	<dir>/<id>.graph                      canonical edge set
//	<dir>/<id>.l<L>.<engine>.<kind>.store one built distance store
//
// where <id> is the graph's content address. Writes are atomic
// (temp file in the same directory, then rename), misses and write
// failures are counted but never fail the request — persistence is an
// accelerator, not a dependency — and boot-time loading quarantines
// anything it cannot trust (bad magic, truncated payload, digest
// mismatch, orphaned store) by renaming it aside with a ".corrupt"
// suffix rather than failing startup.
package registry

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/apsp"
)

const (
	graphMagic   = "LOPG"
	graphVersion = 1
	// graphHeaderLen is magic + version + n + m.
	graphHeaderLen = 4 + 1 + 8 + 8

	graphSuffix     = ".graph"
	storeSuffix     = ".store"
	corruptSuffix   = ".corrupt"
	tmpPrefix       = ".tmp-"
	maxSnapshotSize = 1 << 30 // refuse to slurp absurd files
)

// PersistStats reports the persistence layer's effectiveness: what the
// last boot recovered, and the write/delete traffic since.
type PersistStats struct {
	// Enabled reports whether a snapshot directory is configured; Dir
	// is its path.
	Enabled bool
	Dir     string
	// GraphsLoaded, StoresLoaded, and LineagesLoaded count snapshots
	// recovered at boot; Quarantined counts files set aside (renamed
	// *.corrupt) because they were corrupt, orphaned, or otherwise
	// untrustworthy — including lineage records whose diff does not
	// reproduce the child's digest from the parent.
	GraphsLoaded, StoresLoaded, LineagesLoaded, Quarantined int
	// GraphWrites, StoreWrites, and LineageWrites count successful
	// snapshot writes; WriteErrors counts failed ones (the registry
	// keeps serving); Deletes counts snapshot files removed on
	// evict/DELETE.
	GraphWrites, StoreWrites, LineageWrites, WriteErrors, Deletes int64
}

// persister owns the snapshot directory. All methods are safe for
// concurrent use; the boot-time counters are written only during load,
// before the registry is shared.
type persister struct {
	dir string

	graphsLoaded, storesLoaded, quarantined int
	lineagesLoaded                          int
	graphWrites, storeWrites, lineageWrites atomic.Int64
	writeErrors, deletes                    atomic.Int64
}

// graphFile and storeFile name the snapshot files for one graph / one
// cached store.
func graphFile(id string) string { return id + graphSuffix }

func storeFile(id string, k storeKey) string {
	return fmt.Sprintf("%s.l%d.%s.%s%s", id, k.l, k.engine, k.kind, storeSuffix)
}

// parseStoreFile inverts storeFile, returning ok=false for any name
// that does not parse cleanly.
func parseStoreFile(name string) (id string, k storeKey, ok bool) {
	base, found := strings.CutSuffix(name, storeSuffix)
	if !found {
		return "", storeKey{}, false
	}
	parts := strings.Split(base, ".")
	if len(parts) != 4 || !strings.HasPrefix(parts[1], "l") {
		return "", storeKey{}, false
	}
	l, err := strconv.Atoi(parts[1][1:])
	if err != nil || l < 0 {
		return "", storeKey{}, false
	}
	engine, err := apsp.ParseEngine(parts[2])
	if err != nil {
		return "", storeKey{}, false
	}
	kind, err := apsp.ParseKind(parts[3])
	if err != nil {
		return "", storeKey{}, false
	}
	return parts[0], storeKey{l: l, engine: engine, kind: kind}, true
}

// encodeGraphSnapshot serializes a canonical edge set:
// magic, version, then n, m, and each endpoint as uint64 LE.
func encodeGraphSnapshot(n int, edges [][2]int) []byte {
	buf := make([]byte, 0, graphHeaderLen+16*len(edges))
	buf = append(buf, graphMagic...)
	buf = append(buf, graphVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(n))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(edges)))
	for _, e := range edges {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e[0]))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e[1]))
	}
	return buf
}

// decodeGraphSnapshot strictly inverts encodeGraphSnapshot: any
// truncation, trailing data, or header inconsistency is an error.
func decodeGraphSnapshot(data []byte) (n int, edges [][2]int, err error) {
	if len(data) < graphHeaderLen {
		return 0, nil, fmt.Errorf("registry: graph snapshot truncated: %d bytes < %d-byte header", len(data), graphHeaderLen)
	}
	if string(data[:4]) != graphMagic {
		return 0, nil, fmt.Errorf("registry: graph snapshot has bad magic %q", data[:4])
	}
	if data[4] != graphVersion {
		return 0, nil, fmt.Errorf("registry: unsupported graph snapshot version %d (want %d)", data[4], graphVersion)
	}
	un := binary.LittleEndian.Uint64(data[5:13])
	um := binary.LittleEndian.Uint64(data[13:21])
	payload := data[graphHeaderLen:]
	if um > uint64(len(payload))/16 || uint64(len(payload)) != 16*um {
		return 0, nil, fmt.Errorf("registry: graph snapshot payload is %d bytes, want %d for m=%d", len(payload), 16*um, um)
	}
	const maxDim = 1 << 31
	if un > maxDim {
		return 0, nil, fmt.Errorf("registry: graph snapshot n=%d out of range", un)
	}
	edges = make([][2]int, um)
	for i := range edges {
		u := binary.LittleEndian.Uint64(payload[16*i:])
		v := binary.LittleEndian.Uint64(payload[16*i+8:])
		if u > maxDim || v > maxDim {
			return 0, nil, fmt.Errorf("registry: graph snapshot edge %d endpoints (%d, %d) out of range", i, u, v)
		}
		edges[i] = [2]int{int(u), int(v)}
	}
	return int(un), edges, nil
}

// writeFile atomically materializes name in the snapshot directory:
// write a temp file alongside, then rename over the final name.
func (p *persister) writeFile(name string, data []byte) error {
	tmp := filepath.Join(p.dir, tmpPrefix+name)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(p.dir, name))
}

// saveGraph snapshots one registered graph's canonical edge set.
// Failures are counted, not propagated: the registry keeps serving
// from memory.
func (p *persister) saveGraph(g *Graph) {
	if err := p.writeFile(graphFile(g.id), encodeGraphSnapshot(g.raw.N(), g.edges)); err != nil {
		p.writeErrors.Add(1)
		return
	}
	p.graphWrites.Add(1)
}

// saveStore snapshots one built distance store.
func (p *persister) saveStore(id string, k storeKey, s apsp.Store) {
	data, err := apsp.MarshalStore(s)
	if err != nil {
		p.writeErrors.Add(1)
		return
	}
	if err := p.writeFile(storeFile(id, k), data); err != nil {
		p.writeErrors.Add(1)
		return
	}
	p.storeWrites.Add(1)
}

// deleteFile removes one snapshot file, counting only files actually
// removed.
func (p *persister) deleteFile(name string) {
	if err := os.Remove(filepath.Join(p.dir, name)); err == nil {
		p.deletes.Add(1)
	}
}

// quarantine renames a file it cannot trust aside so the next boot
// does not trip over it again, and the operator can inspect it.
func (p *persister) quarantine(name string) {
	full := filepath.Join(p.dir, name)
	if err := os.Rename(full, full+corruptSuffix); err != nil {
		// Renaming failed (e.g. read-only dir): best effort only; the
		// file was already rejected, so just count it.
		_ = err
	}
	p.quarantined++
}

// errSnapshotTooLarge marks a snapshot that exceeds the heap slurp
// limit. Unlike corruption, an oversized file may be perfectly valid —
// just not safe to read wholesale — so the loader skips it (leaving it
// on disk for a mapped-hydration boot) instead of quarantining it.
var errSnapshotTooLarge = fmt.Errorf("registry: snapshot exceeds the %d-byte heap load limit", maxSnapshotSize)

// readSnapshot slurps one snapshot file with a size guard.
func (p *persister) readSnapshot(name string) ([]byte, error) {
	full := filepath.Join(p.dir, name)
	fi, err := os.Stat(full)
	if err != nil {
		return nil, err
	}
	if fi.Size() > maxSnapshotSize {
		return nil, fmt.Errorf("%w: %s is %d bytes", errSnapshotTooLarge, name, fi.Size())
	}
	return os.ReadFile(full)
}

// loadFromDisk recovers graphs and stores from the snapshot directory
// into the (still-private, unlocked) registry. Leftover temp files
// from an interrupted write or streaming build are quarantined (set
// aside as *.corrupt, never loaded); corrupt, mismatched, or orphaned
// snapshots are quarantined too; capacity bounds are respected
// (excess snapshots are left on disk untouched).
func (r *Registry) loadFromDisk() {
	p := r.persist
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		return
	}
	var graphFiles, storeFiles, lineageFiles []string
	for _, ent := range entries {
		name := ent.Name()
		switch {
		case ent.IsDir():
		case strings.HasSuffix(name, corruptSuffix):
			// Already set aside by a previous boot; leave it for the
			// operator.
		case strings.HasPrefix(name, tmpPrefix):
			// A crash mid-write or mid-streaming-build: the rename never
			// happened, so the data was never considered durable. With
			// build-through-to-file the partial can be arbitrarily large
			// and worth inspecting, so quarantine it rather than
			// silently deleting.
			p.quarantine(name)
		case strings.HasSuffix(name, graphSuffix):
			graphFiles = append(graphFiles, name)
		case strings.HasSuffix(name, storeSuffix):
			storeFiles = append(storeFiles, name)
		case strings.HasSuffix(name, lineageSuffix):
			lineageFiles = append(lineageFiles, name)
		}
	}

	// skipped records graphs left on disk because of the capacity
	// bound; their store snapshots must be left alone too (they are
	// valid, just not loadable right now — a later boot with a larger
	// -graphs must still find them).
	skipped := make(map[string]bool)
	for _, name := range graphFiles {
		id := strings.TrimSuffix(name, graphSuffix)
		if r.order.Len() >= r.cfg.MaxGraphs {
			skipped[id] = true
			continue
		}
		data, err := p.readSnapshot(name)
		if err != nil {
			p.quarantine(name)
			continue
		}
		n, edges, err := decodeGraphSnapshot(data)
		if err != nil {
			p.quarantine(name)
			continue
		}
		// The canonical form and the digest double as integrity checks:
		// a snapshot that re-canonicalizes differently or hashes to a
		// different id than its filename was tampered with or damaged.
		canonical, err := Canonicalize(n, edges)
		if err != nil {
			p.quarantine(name)
			continue
		}
		if Digest(n, canonical) != id {
			p.quarantine(name)
			continue
		}
		if _, ok := r.entries[id]; ok {
			continue
		}
		r.insertLoadedGraph(id, n, canonical)
		p.graphsLoaded++
	}

	// Lineage records attach after graphs and before stores: a record
	// is only trustworthy relative to the graphs actually recovered,
	// and store seeding does not depend on it (repair happens lazily at
	// hydration time, against whatever parent store is then warm).
	r.loadLineages(lineageFiles, skipped)

	for _, name := range storeFiles {
		id, key, ok := parseStoreFile(name)
		if !ok {
			p.quarantine(name)
			continue
		}
		el, present := r.entries[id]
		if !present {
			if skipped[id] {
				continue // graph over capacity: leave the store on disk
			}
			p.quarantine(name) // orphan: its graph is gone
			continue
		}
		ent := el.Value.(*Graph)
		var st apsp.Store
		switch {
		case r.cfg.PagedStores:
			// Budgeted hydration: the snapshot is served through the
			// registry's shared page cache, so boot cost is one header
			// read per store and resident bytes stay under the budget
			// no matter how many snapshots come back.
			ps, err := apsp.OpenPagedStore(filepath.Join(p.dir, name), r.pages)
			if err != nil {
				p.quarantine(name)
				continue
			}
			st = ps
		case r.cfg.MappedStores:
			// Zero-copy hydration: the snapshot becomes a read-only
			// mapped view, so boot cost is independent of store size and
			// no slurp limit applies. Open-time validation covers the
			// header, dimensions, and payload length; cell values are
			// checked lazily by the first Clone.
			ms, err := apsp.OpenMappedStore(filepath.Join(p.dir, name))
			if err != nil {
				p.quarantine(name)
				continue
			}
			st = ms
		default:
			data, err := p.readSnapshot(name)
			if err != nil {
				if errors.Is(err, errSnapshotTooLarge) {
					continue // valid but unslurpable: a mapped boot can still use it
				}
				p.quarantine(name)
				continue
			}
			st, err = apsp.UnmarshalStore(data)
			if err != nil {
				p.quarantine(name)
				continue
			}
		}
		if st.N() != ent.raw.N() || st.L() != key.l ||
			apsp.KindOf(st) != key.kind || key.kind != apsp.EffectiveKind(key.kind, key.l) {
			p.quarantine(name)
			continue
		}
		if !ent.seedStore(key, st) {
			continue // per-graph cache full: leave the snapshot on disk
		}
		p.storesLoaded++
	}
}

// Stats converts the persister's counters to the public snapshot form.
func (p *persister) stats() PersistStats {
	if p == nil {
		return PersistStats{}
	}
	return PersistStats{
		Enabled:        true,
		Dir:            p.dir,
		GraphsLoaded:   p.graphsLoaded,
		StoresLoaded:   p.storesLoaded,
		LineagesLoaded: p.lineagesLoaded,
		Quarantined:    p.quarantined,
		GraphWrites:    p.graphWrites.Load(),
		StoreWrites:    p.storeWrites.Load(),
		LineageWrites:  p.lineageWrites.Load(),
		WriteErrors:    p.writeErrors.Load(),
		Deletes:        p.deletes.Load(),
	}
}
