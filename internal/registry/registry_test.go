package registry

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/apsp"
)

func TestCanonicalizeValidates(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		edges [][2]int
	}{
		{"zero n", 0, nil},
		{"negative n", -1, nil},
		{"out of range", 3, [][2]int{{0, 5}}},
		{"negative endpoint", 3, [][2]int{{-1, 1}}},
		{"self-loop", 3, [][2]int{{1, 1}}},
		{"duplicate", 3, [][2]int{{0, 1}, {0, 1}}},
		{"reversed duplicate", 3, [][2]int{{0, 1}, {1, 0}}},
	}
	for _, c := range cases {
		if _, err := Canonicalize(c.n, c.edges); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestCanonicalizeNormalizes(t *testing.T) {
	got, err := Canonicalize(4, [][2]int{{3, 2}, {1, 0}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 1}, {0, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDigestStableAcrossSpellings(t *testing.T) {
	a, err := Canonicalize(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Canonicalize(4, [][2]int{{3, 2}, {2, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if Digest(4, a) != Digest(4, b) {
		t.Fatal("permuted/reversed edge lists digest differently")
	}
	c, _ := Canonicalize(4, [][2]int{{0, 1}, {1, 2}})
	if Digest(4, a) == Digest(4, c) {
		t.Fatal("different graphs share a digest")
	}
	if Digest(4, a) == Digest(5, a) {
		t.Fatal("same edges on different vertex counts share a digest")
	}
}

func TestPutDeduplicates(t *testing.T) {
	r := New(Config{})
	g1, created, err := r.Put(4, [][2]int{{0, 1}, {1, 2}})
	if err != nil || !created {
		t.Fatalf("first Put: created=%v err=%v", created, err)
	}
	g2, created, err := r.Put(4, [][2]int{{2, 1}, {1, 0}}) // same graph, different spelling
	if err != nil || created {
		t.Fatalf("second Put: created=%v err=%v", created, err)
	}
	if g1 != g2 || g1.ID() != g2.ID() {
		t.Fatal("same graph registered twice")
	}
	if r.Len() != 1 {
		t.Fatalf("len=%d, want 1", r.Len())
	}
	if g1.N() != 4 || g1.M() != 2 {
		t.Fatalf("n=%d m=%d", g1.N(), g1.M())
	}
}

func TestGetHitMissAndDelete(t *testing.T) {
	r := New(Config{})
	g, _, err := r.Put(3, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(g.ID()); !ok {
		t.Fatal("registered graph not found")
	}
	if _, ok := r.Get("nope"); ok {
		t.Fatal("found a graph that was never registered")
	}
	st := r.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", st.Hits, st.Misses)
	}
	if !r.Delete(g.ID()) {
		t.Fatal("delete of present graph reported absent")
	}
	if r.Delete(g.ID()) {
		t.Fatal("second delete reported present")
	}
	if st := r.Stats(); st.Graphs != 0 {
		t.Fatalf("graphs=%d after delete", st.Graphs)
	}
}

func TestLRUEviction(t *testing.T) {
	r := New(Config{MaxGraphs: 2})
	ids := make([]string, 3)
	for i := range ids {
		g, _, err := r.Put(4, [][2]int{{0, 1}, {1, 2}, {0, i%2 + 2}, {i%2 + 1, 3}}[:i+2])
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = g.ID()
	}
	if r.Len() != 2 {
		t.Fatalf("len=%d, want 2", r.Len())
	}
	if _, ok := r.Get(ids[0]); ok {
		t.Fatal("least recently used graph survived eviction")
	}
	for _, id := range ids[1:] {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("recently used graph %s evicted", id)
		}
	}
	if st := r.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions=%d, want 1", st.Evictions)
	}

	// A Get refreshes recency: after touching ids[1], registering a
	// fourth graph must evict ids[2] instead.
	if _, ok := r.Get(ids[1]); !ok {
		t.Fatal("ids[1] missing")
	}
	if _, _, err := r.Put(2, [][2]int{{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(ids[1]); !ok {
		t.Fatal("recently touched graph evicted")
	}
	if _, ok := r.Get(ids[2]); ok {
		t.Fatal("stale graph survived")
	}
}

func TestDistancesBuildsOnceAndReuses(t *testing.T) {
	r := New(Config{})
	g, _, err := r.Put(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	s1, reused := g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	if reused {
		t.Fatal("first Distances call reported reuse")
	}
	s2, reused := g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	if !reused {
		t.Fatal("second Distances call rebuilt")
	}
	if s1 != s2 {
		t.Fatal("second call returned a different store")
	}
	if s1.Get(0, 2) != 2 || s1.Get(0, 4) != s1.Far() {
		t.Fatalf("store contents wrong: d(0,2)=%d d(0,4)=%d", s1.Get(0, 2), s1.Get(0, 4))
	}
	// A different key is a different store.
	s3, reused := g.Distances(3, apsp.EngineAuto, apsp.KindCompact)
	if reused || s3 == s1 {
		t.Fatal("distinct L shared a store")
	}
	st := r.Stats()
	if st.StoreMisses != 2 || st.StoreHits != 1 || st.Stores != 2 {
		t.Fatalf("store counters: %+v", st)
	}
}

// Beyond the compact cells' ceiling (L > MaxCompactL) apsp.Build
// silently degrades compact to packed, so the two spellings must share
// one cached store instead of holding byte-equivalent twins in two LRU
// slots.
func TestDistancesSharesSlotAcrossDegradedKinds(t *testing.T) {
	r := New(Config{})
	g, _, err := r.Put(3, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	L := apsp.MaxCompactL + 1
	s1, _ := g.Distances(L, apsp.EngineBFS, apsp.KindCompact)
	s2, reused := g.Distances(L, apsp.EngineBFS, apsp.KindPacked)
	if !reused || s1 != s2 {
		t.Fatal("compact and packed spellings cached separate stores at L > MaxCompactL")
	}
	if g.StoreCount() != 1 {
		t.Fatalf("stores=%d, want 1", g.StoreCount())
	}
}

func TestStoreLRUPerGraph(t *testing.T) {
	r := New(Config{MaxStoresPerGraph: 2})
	g, _, err := r.Put(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	g.Distances(1, apsp.EngineAuto, apsp.KindCompact)
	g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
	g.Distances(3, apsp.EngineAuto, apsp.KindCompact) // evicts L=1
	if got := g.StoreCount(); got != 2 {
		t.Fatalf("stores=%d, want 2", got)
	}
	if _, reused := g.Distances(2, apsp.EngineAuto, apsp.KindCompact); !reused {
		t.Fatal("L=2 store evicted though more recent than L=1")
	}
	if _, reused := g.Distances(1, apsp.EngineAuto, apsp.KindCompact); reused {
		t.Fatal("evicted L=1 store served as a hit")
	}
	st := r.Stats()
	if st.StoreEvictions < 1 {
		t.Fatalf("store evictions=%d, want >= 1", st.StoreEvictions)
	}
}

// TestConcurrentAccess hammers every registry operation from many
// goroutines; the race detector is the assertion. It also checks the
// single-build guarantee: all goroutines asking for one (graph, key)
// must get the same store instance.
func TestConcurrentAccess(t *testing.T) {
	r := New(Config{MaxGraphs: 8, MaxStoresPerGraph: 2})
	g, _, err := r.Put(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 16
	storesSeen := make([]apsp.Store, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Everyone asks for the same store...
			st, _ := g.Distances(2, apsp.EngineAuto, apsp.KindCompact)
			storesSeen[w] = st
			// ...while also churning registrations, lookups, and other
			// store keys.
			gg, _, err := r.Put(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}[:w%2+2])
			if err != nil {
				t.Error(err)
				return
			}
			gg.Distances(1+w%3, apsp.EngineBFS, apsp.KindPacked)
			r.Get(gg.ID())
			r.Get(fmt.Sprintf("missing-%d", w))
			if w%5 == 0 {
				r.Delete(gg.ID())
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if storesSeen[w] != storesSeen[0] {
			t.Fatal("concurrent callers received different stores for one key")
		}
	}
	st := r.Stats()
	if st.StoreMisses < 1 || st.StoreHits < workers-1 {
		t.Fatalf("store counters inconsistent with single-build: %+v", st)
	}
}
