package kiso

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func mustRun(t *testing.T, g *graph.Graph, k int, seed int64) Result {
	t.Helper()
	res, err := Run(g, Options{K: k, Seed: seed})
	if err != nil {
		t.Fatalf("Run(K=%d): %v", k, err)
	}
	return res
}

func TestRunRejectsBadInputs(t *testing.T) {
	g := gen.GNM(10, 15, rand.New(rand.NewSource(1)))
	if _, err := Run(g, Options{K: 1}); err == nil {
		t.Fatal("K=1 accepted, want error")
	}
	if _, err := Run(g, Options{K: 0}); err == nil {
		t.Fatal("K=0 accepted, want error")
	}
	small := graph.New(3)
	if _, err := Run(small, Options{K: 4}); err == nil {
		t.Fatal("K > n accepted, want error")
	}
}

func TestResultIsKIsomorphic(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		g := gen.BarabasiAlbert(61, 3, 2, rand.New(rand.NewSource(7)))
		res := mustRun(t, g, k, 42)
		if err := Verify(res); err != nil {
			t.Errorf("K=%d: Verify: %v", k, err)
		}
		if got := len(res.Blocks); got != k {
			t.Errorf("K=%d: got %d blocks", k, got)
		}
		want := k * ((g.N() + k - 1) / k)
		if res.Graph.N() != want {
			t.Errorf("K=%d: padded N=%d, want %d", k, res.Graph.N(), want)
		}
	}
}

func TestVertexPaddingOnlyWhenNeeded(t *testing.T) {
	g := gen.GNM(20, 40, rand.New(rand.NewSource(3)))
	res := mustRun(t, g, 4, 1) // 20 % 4 == 0: no padding
	if res.Graph.N() != 20 {
		t.Fatalf("padded N=%d, want 20", res.Graph.N())
	}
	res = mustRun(t, g, 3, 1) // 20 % 3 != 0: pad to 21
	if res.Graph.N() != 21 {
		t.Fatalf("padded N=%d, want 21", res.Graph.N())
	}
	if res.OriginalN != 20 {
		t.Fatalf("OriginalN=%d, want 20", res.OriginalN)
	}
}

// The edit ledger must exactly reconcile the original graph with the
// published one: Ê = (E − Removed) ∪ Inserted with no overlap.
func TestEditLedgerReconciles(t *testing.T) {
	g := gen.WattsStrogatz(40, 4, 0.2, rand.New(rand.NewSource(11)))
	res := mustRun(t, g, 4, 5)

	rebuilt := graph.New(res.Graph.N())
	g.EachEdge(func(u, v int) { rebuilt.AddEdge(u, v) })
	for _, e := range res.Removed {
		if !rebuilt.RemoveEdge(e.U, e.V) {
			t.Fatalf("removed edge %v not present", e)
		}
	}
	for _, e := range res.Inserted {
		if !rebuilt.AddEdge(e.U, e.V) {
			t.Fatalf("inserted edge %v already present", e)
		}
	}
	if !rebuilt.Equal(res.Graph) {
		t.Fatal("replaying the edit ledger does not reproduce the published graph")
	}
}

// Every component of a k-isomorphic graph lies inside one block, so the
// published graph has at least k connected components (counting each
// block's internals separately).
func TestSeversIntoAtLeastKComponents(t *testing.T) {
	g := gen.BarabasiAlbert(50, 2, 2, rand.New(rand.NewSource(2))) // connected
	if _, count := g.ConnectedComponents(); count != 1 {
		t.Skip("generator produced a disconnected graph; pick another seed")
	}
	res := mustRun(t, g, 5, 9)
	if _, count := res.Graph.ConnectedComponents(); count < 5 {
		t.Fatalf("published graph has %d components, want >= 5", count)
	}
}

func TestDeterministicForFixedSeed(t *testing.T) {
	g := gen.GNM(30, 70, rand.New(rand.NewSource(8)))
	a := mustRun(t, g, 3, 123)
	b := mustRun(t, g, 3, 123)
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("same seed produced different graphs")
	}
	c := mustRun(t, g, 3, 124)
	_ = c // different seeds may legitimately coincide; only assert no panic
}

func TestInputGraphUntouched(t *testing.T) {
	g := gen.GNM(25, 50, rand.New(rand.NewSource(4)))
	before := g.Clone()
	mustRun(t, g, 3, 6)
	if !g.Equal(before) {
		t.Fatal("Run mutated its input graph")
	}
}

func TestCrossRemovedCountsCrossBlockEdges(t *testing.T) {
	g := gen.GNM(24, 60, rand.New(rand.NewSource(14)))
	res := mustRun(t, g, 3, 2)
	blockOf := make(map[int]int)
	for b, verts := range res.Blocks {
		for _, v := range verts {
			blockOf[v] = b
		}
	}
	cross := 0
	g.EachEdge(func(u, v int) {
		if blockOf[u] != blockOf[v] {
			cross++
		}
	})
	if res.CrossRemoved != cross {
		t.Fatalf("CrossRemoved=%d, want %d", res.CrossRemoved, cross)
	}
	if res.CrossRemoved > len(res.Removed) {
		t.Fatal("CrossRemoved exceeds total removals")
	}
}

// Property: for random sparse graphs and small k, the result always
// verifies and the distortion ledger has no duplicate or contradictory
// entries.
func TestQuickAlwaysVerifies(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := 10 + int(nRaw%40)
		k := 2 + int(kRaw%4)
		if n < k {
			n = k
		}
		rng := rand.New(rand.NewSource(seed))
		m := n + rng.Intn(2*n)
		g := gen.GNM(n, m, rng)
		res, err := Run(g, Options{K: k, Seed: seed})
		if err != nil {
			return false
		}
		if Verify(res) != nil {
			return false
		}
		seen := graph.NewEdgeSet()
		for _, e := range res.Removed {
			if seen.Has(e) {
				return false
			}
			seen.Add(e)
		}
		for _, e := range res.Inserted {
			if seen.Has(e) { // an edge cannot be both removed and inserted
				return false
			}
			seen.Add(e)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyDetectsViolations(t *testing.T) {
	g := gen.GNM(20, 40, rand.New(rand.NewSource(5)))
	res := mustRun(t, g, 2, 1)

	// Tamper: add a cross-block edge.
	tampered := res
	tampered.Graph = res.Graph.Clone()
	u, v := res.Blocks[0][0], res.Blocks[1][0]
	tampered.Graph.AddEdge(u, v)
	if err := Verify(tampered); err == nil {
		t.Fatal("Verify accepted a cross-block edge")
	}

	// Tamper: break isomorphism by dropping one block's edge.
	tampered2 := res
	tampered2.Graph = res.Graph.Clone()
	done := false
	res.Graph.EachEdge(func(a, b int) {
		if done {
			return
		}
		tampered2.Graph.RemoveEdge(a, b)
		done = true
	})
	if done {
		if err := Verify(tampered2); err == nil {
			t.Fatal("Verify accepted non-isomorphic blocks")
		}
	}
}

func TestDistortion(t *testing.T) {
	res := Result{Removed: make([]graph.Edge, 3), Inserted: make([]graph.Edge, 2)}
	if got := res.Distortion(10); got != 0.5 {
		t.Fatalf("Distortion=%v, want 0.5", got)
	}
	if got := res.Distortion(0); got != 0 {
		t.Fatalf("Distortion(0)=%v, want 0", got)
	}
}

func BenchmarkRunK3(b *testing.B) {
	g := gen.BarabasiAlbert(120, 3, 2, rand.New(rand.NewSource(1)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(g, Options{K: 3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
