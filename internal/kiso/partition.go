package kiso

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// partition divides the padded vertex set {0..k*blockSize-1} into k
// blocks of exactly blockSize vertices each. Blocks are grown by BFS from
// high-degree seeds so that community neighbourhoods tend to land in the
// same block, which minimizes the cross-block edges that k-isomorphism
// must sever. Vertices beyond g.N() are isolated padding and are dealt
// out round-robin to fill short blocks.
func partition(g *graph.Graph, k, blockSize int, rng *rand.Rand) ([][]int, error) {
	padded := k * blockSize
	assigned := make([]int, padded)
	for i := range assigned {
		assigned[i] = -1
	}
	blocks := make([][]int, k)

	// Vertices in descending degree order; ties broken by a seeded
	// shuffle so distinct seeds explore distinct partitions.
	order := rng.Perm(g.N())
	sort.SliceStable(order, func(i, j int) bool {
		return g.Degree(order[i]) > g.Degree(order[j])
	})

	next := 0 // cursor into order for the next unassigned seed
	for b := 0; b < k; b++ {
		// Seed the block with the highest-degree vertex not yet placed.
		for next < len(order) && assigned[order[next]] != -1 {
			next++
		}
		if next >= len(order) {
			break // only padding vertices remain
		}
		seed := order[next]
		queue := []int{seed}
		assigned[seed] = b
		blocks[b] = append(blocks[b], seed)
		for len(queue) > 0 && len(blocks[b]) < blockSize {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(v) {
				if assigned[w] != -1 || len(blocks[b]) >= blockSize {
					continue
				}
				assigned[w] = b
				blocks[b] = append(blocks[b], w)
				queue = append(queue, w)
			}
		}
	}

	// Fill remaining capacity: leftover real vertices first (components
	// the BFS never reached), then padding vertices.
	leftovers := make([]int, 0)
	for _, v := range order {
		if assigned[v] == -1 {
			leftovers = append(leftovers, v)
		}
	}
	for v := g.N(); v < padded; v++ {
		leftovers = append(leftovers, v)
	}
	li := 0
	for b := 0; b < k; b++ {
		for len(blocks[b]) < blockSize {
			if li >= len(leftovers) {
				return nil, fmt.Errorf("kiso: internal partition accounting error (block %d short)", b)
			}
			v := leftovers[li]
			li++
			assigned[v] = b
			blocks[b] = append(blocks[b], v)
		}
	}
	if li != len(leftovers) {
		return nil, fmt.Errorf("kiso: %d vertices left unassigned", len(leftovers)-li)
	}
	return blocks, nil
}

// assignSlots orders each block's vertices by descending intra-block
// degree (ties by vertex id) so that structurally similar vertices across
// blocks occupy the same slot. Better slot alignment means more template
// votes agree and fewer alignment edits.
func assignSlots(g *graph.Graph, blocks [][]int) {
	blockOf := make(map[int]int)
	for b, verts := range blocks {
		for _, v := range verts {
			blockOf[v] = b
		}
	}
	intraDeg := func(v int) int {
		if v >= g.N() {
			return 0
		}
		d := 0
		for _, w := range g.Neighbors(v) {
			if blockOf[w] == blockOf[v] {
				d++
			}
		}
		return d
	}
	for _, verts := range blocks {
		sort.SliceStable(verts, func(i, j int) bool {
			di, dj := intraDeg(verts[i]), intraDeg(verts[j])
			if di != dj {
				return di > dj
			}
			return verts[i] < verts[j]
		})
	}
}
