// Package kiso implements a clean-room version of the k-isomorphism
// anonymization method of Cheng, Fu and Liu (SIGMOD 2010), the "other
// extreme" comparator discussed throughout the L-opacity paper's
// introduction and related-work sections.
//
// k-isomorphism divides the graph into k pairwise-disjoint subgraphs and
// edits each until all k are isomorphic to one another. The published
// graph then gives every vertex at least k structurally indistinguishable
// counterparts in separate components, which thwarts linkage inference of
// *any* path length — at the cost of severing every connection between
// blocks and publishing what is, in effect, k copies of one graph of size
// n/k. The L-opacity paper argues this privacy target is unnecessarily
// strong; this package makes the cost of the stronger target measurable,
// so the experiments can quantify the trade-off instead of asserting it.
//
// The construction here follows the method's structure without the
// original's frequent-subgraph mining machinery (which targets much
// larger inputs): a seeded BFS partition groups vertices into k balanced
// blocks favouring community locality, cross-block edges are deleted, a
// majority-vote template is chosen over slot-aligned blocks, and each
// block is edited to match the template exactly. The result is verified
// k-isomorphic by construction and by tests.
package kiso

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Options configures a k-isomorphism run.
type Options struct {
	// K is the number of pairwise isomorphic blocks (>= 2).
	K int
	// Seed drives the partition's tie-breaking. Runs are deterministic
	// for a fixed seed.
	Seed int64
}

// Result reports the anonymized graph and the edits that produced it.
type Result struct {
	// Graph is the k-isomorphic published graph. Its vertex count is
	// padded up to the next multiple of K; padding vertices are
	// isolated in the original and may acquire template edges.
	Graph *graph.Graph
	// OriginalN is the vertex count of the input graph; vertices with
	// identifiers >= OriginalN are padding.
	OriginalN int
	// Blocks lists the vertices of each of the K blocks in slot order:
	// Blocks[b][s] is the vertex occupying slot s of block b. The
	// isomorphism maps Blocks[a][s] to Blocks[b][s] for every a, b, s.
	Blocks [][]int
	// Removed and Inserted are the edge edits relative to the input
	// (padding vertices start with no edges, so every template edge
	// incident to padding is an insertion).
	Removed  []graph.Edge
	Inserted []graph.Edge
	// CrossRemoved counts how many of the removals were cross-block
	// edges (severed connectivity), as opposed to intra-block edits
	// made while aligning blocks to the template.
	CrossRemoved int
}

// Distortion returns the graph edit distance ratio |E∆Ê|/|E| against the
// original edge count m, the measure used by the paper's Equation 1.
func (r Result) Distortion(m int) float64 {
	if m == 0 {
		return 0
	}
	return float64(len(r.Removed)+len(r.Inserted)) / float64(m)
}

// Run renders g k-isomorphic and returns the edits. It fails on k < 2 and
// on graphs with fewer than k vertices.
func Run(g *graph.Graph, opts Options) (Result, error) {
	k := opts.K
	if k < 2 {
		return Result{}, fmt.Errorf("kiso: K must be >= 2, got %d", k)
	}
	if g.N() < k {
		return Result{}, fmt.Errorf("kiso: graph has %d vertices, need at least K=%d", g.N(), k)
	}
	rng := rand.New(rand.NewSource(opts.Seed))

	blockSize := (g.N() + k - 1) / k
	padded := blockSize * k

	blocks, err := partition(g, k, blockSize, rng)
	if err != nil {
		return Result{}, err
	}
	assignSlots(g, blocks)

	out := graph.New(padded)
	var removed, inserted []graph.Edge
	cross := 0

	// Vertex -> (block, slot) lookup for classifying original edges.
	blockOf := make([]int, padded)
	slotOf := make([]int, padded)
	for b, verts := range blocks {
		for s, v := range verts {
			blockOf[v] = b
			slotOf[v] = s
		}
	}

	// Majority-vote template over slot pairs: a template edge (s1, s2)
	// exists when at least half the blocks contain the corresponding
	// intra-block edge. This choice minimizes total intra-block edits
	// for the fixed slot assignment.
	votes := make(map[graph.Edge]int)
	g.EachEdge(func(u, v int) {
		if blockOf[u] != blockOf[v] {
			return
		}
		votes[graph.E(slotOf[u], slotOf[v])]++
	})
	template := make([]graph.Edge, 0, len(votes))
	for e, n := range votes {
		if 2*n >= k {
			template = append(template, e)
		}
	}
	sort.Slice(template, func(i, j int) bool { return template[i].Less(template[j]) })

	inTemplate := graph.NewEdgeSet(template...)

	// Classify original edges: cross-block edges are removed outright;
	// intra-block edges survive only if their slot pair is in the
	// template.
	g.EachEdge(func(u, v int) {
		if blockOf[u] != blockOf[v] {
			removed = append(removed, graph.E(u, v))
			cross++
			return
		}
		if !inTemplate.Has(graph.E(slotOf[u], slotOf[v])) {
			removed = append(removed, graph.E(u, v))
		}
	})

	// Materialize the template in every block; edges absent from the
	// original are insertions.
	for _, verts := range blocks {
		for _, te := range template {
			u, v := verts[te.U], verts[te.V]
			out.AddEdge(u, v)
			if !hasOriginal(g, u, v) {
				inserted = append(inserted, graph.E(u, v))
			}
		}
	}

	sortEdges(removed)
	sortEdges(inserted)
	res := Result{
		Graph:        out,
		OriginalN:    g.N(),
		Blocks:       blocks,
		Removed:      removed,
		Inserted:     inserted,
		CrossRemoved: cross,
	}
	return res, nil
}

func hasOriginal(g *graph.Graph, u, v int) bool {
	if u >= g.N() || v >= g.N() {
		return false
	}
	return g.HasEdge(u, v)
}

func sortEdges(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool { return es[i].Less(es[j]) })
}

// Verify checks that the result is genuinely k-isomorphic: every block
// has the same size, the slot mapping is a graph isomorphism between
// every pair of blocks, and no edge crosses blocks. It returns nil when
// the guarantee holds; anonymization pipelines use it as a release gate.
func Verify(r Result) error {
	if len(r.Blocks) < 2 {
		return errors.New("kiso: fewer than 2 blocks")
	}
	size := len(r.Blocks[0])
	blockOf := make(map[int]int, size*len(r.Blocks))
	for b, verts := range r.Blocks {
		if len(verts) != size {
			return fmt.Errorf("kiso: block %d has %d slots, want %d", b, len(verts), size)
		}
		for _, v := range verts {
			if _, dup := blockOf[v]; dup {
				return fmt.Errorf("kiso: vertex %d appears in two blocks", v)
			}
			blockOf[v] = b
		}
	}
	if len(blockOf) != r.Graph.N() {
		return fmt.Errorf("kiso: blocks cover %d vertices, graph has %d", len(blockOf), r.Graph.N())
	}

	// Per-block slot edge sets must be identical across blocks.
	ref := blockEdges(r.Graph, r.Blocks[0])
	for b := 1; b < len(r.Blocks); b++ {
		es := blockEdges(r.Graph, r.Blocks[b])
		if len(es) != len(ref) {
			return fmt.Errorf("kiso: block %d has %d edges, block 0 has %d", b, len(es), len(ref))
		}
		for i := range ref {
			if es[i] != ref[i] {
				return fmt.Errorf("kiso: block %d differs from block 0 at slot edge %v vs %v", b, es[i], ref[i])
			}
		}
	}

	// No cross-block edges.
	var crossErr error
	r.Graph.EachEdge(func(u, v int) {
		if crossErr == nil && blockOf[u] != blockOf[v] {
			crossErr = fmt.Errorf("kiso: cross-block edge %d-%d survived", u, v)
		}
	})
	return crossErr
}

// blockEdges returns the sorted slot-space edge list of one block.
func blockEdges(g *graph.Graph, verts []int) []graph.Edge {
	slot := make(map[int]int, len(verts))
	for s, v := range verts {
		slot[v] = s
	}
	var es []graph.Edge
	for s, v := range verts {
		for _, w := range g.Neighbors(v) {
			t, ok := slot[w]
			if !ok || t <= s {
				continue
			}
			es = append(es, graph.E(s, t))
		}
	}
	sortEdges(es)
	return es
}
