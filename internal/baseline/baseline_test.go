package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/graph"
	"repro/internal/opacity"
)

func randomGraph(n int, p float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestAlgorithmString(t *testing.T) {
	if GADEDRand.String() != "GADED-Rand" || GADEDMax.String() != "GADED-Max" || GADES.String() != "GADES" {
		t.Fatal("algorithm names wrong")
	}
}

func TestRunValidatesOptions(t *testing.T) {
	g := fixture.Figure1()
	if _, err := Run(g, GADEDRand, Options{Theta: -0.5}); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := Run(g, Algorithm(42), Options{Theta: 0.5}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestGADEDRandSatisfies(t *testing.T) {
	g := fixture.Figure1()
	res, err := Run(g, GADEDRand, Options{Theta: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("not satisfied: finalLO=%v", res.FinalLO)
	}
	// The reported final disclosure must match our L=1 opacity model.
	if got := opacity.MaxLO(res.Graph, g.Degrees(), 1); got != res.FinalLO {
		t.Fatalf("finalLO=%v but recompute gives %v", res.FinalLO, got)
	}
	if len(res.Swaps) != 0 {
		t.Fatal("GADED-Rand produced swaps")
	}
}

func TestGADEDMaxSatisfiesAndBeatsNothing(t *testing.T) {
	g := fixture.Figure1()
	res, err := Run(g, GADEDMax, Options{Theta: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Fatalf("not satisfied: finalLO=%v", res.FinalLO)
	}
	if got := opacity.MaxLO(res.Graph, g.Degrees(), 1); got != res.FinalLO {
		t.Fatalf("finalLO=%v but recompute gives %v", res.FinalLO, got)
	}
	if res.Graph.M()+len(res.Removed) != g.M() {
		t.Fatalf("edge bookkeeping: %d + %d removed != original %d",
			res.Graph.M(), len(res.Removed), g.M())
	}
}

func TestGADESPreservesDegrees(t *testing.T) {
	g := randomGraph(16, 0.3, 7)
	res, err := Run(g, GADES, Options{Theta: 0.6, Seed: 3, MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	origDeg := g.Degrees()
	gotDeg := res.Graph.Degrees()
	for v := range origDeg {
		if origDeg[v] != gotDeg[v] {
			t.Fatalf("vertex %d degree changed %d -> %d (swap must preserve degrees)",
				v, origDeg[v], gotDeg[v])
		}
	}
	if res.Graph.M() != g.M() {
		t.Fatal("edge count changed by swaps")
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGADESReportsStuck(t *testing.T) {
	// On the triangle plus pendant, every swap is degenerate (shared
	// endpoints or existing edges), so GADES must report failure for a
	// theta it cannot reach.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	res, err := Run(g, GADES, Options{Theta: 0.1, Seed: 1, MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied {
		t.Fatalf("GADES claims success on an unswappable instance (finalLO=%v)", res.FinalLO)
	}
}

func TestGADEDRandDeterministicPerSeed(t *testing.T) {
	g := randomGraph(15, 0.3, 9)
	a, _ := Run(g, GADEDRand, Options{Theta: 0.4, Seed: 5})
	b, _ := Run(g, GADEDRand, Options{Theta: 0.4, Seed: 5})
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("same seed produced different results")
	}
}

func TestMaxStepsCap(t *testing.T) {
	g := randomGraph(20, 0.4, 11)
	res, err := Run(g, GADEDMax, Options{Theta: 0, MaxSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps > 4 {
		t.Fatalf("steps = %d, want <= 4", res.Steps)
	}
}

func TestDistortionMeasure(t *testing.T) {
	g := fixture.Figure1()
	res, err := Run(g, GADEDMax, Options{Theta: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(graph.SymmetricDifferenceSize(g, res.Graph)) / float64(g.M())
	if got := res.Distortion(g); got != want {
		t.Fatalf("Distortion = %v, want %v", got, want)
	}
}

func TestPropertyGADEDConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(10)
		g := randomGraph(n, 0.3, seed)
		for _, alg := range []Algorithm{GADEDRand, GADEDMax} {
			res, err := Run(g, alg, Options{Theta: 0.5, Seed: seed})
			if err != nil {
				return false
			}
			if !res.Satisfied && res.Graph.M() > 0 {
				// GADED removals can always reach theta<=1 by emptying.
				return false
			}
			if got := opacity.MaxLO(res.Graph, g.Degrees(), 1); got != res.FinalLO {
				return false
			}
			if res.Graph.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGADESNeverIncreasesMax(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(8)
		g := randomGraph(n, 0.25, seed)
		before := opacity.MaxLO(g, nil, 1)
		res, err := Run(g, GADES, Options{Theta: 0.2, Seed: seed, MaxSteps: 30})
		if err != nil {
			return false
		}
		return res.FinalLO <= before+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetStopsGADES(t *testing.T) {
	g := randomGraph(80, 0.1, 7)
	res, err := Run(g, GADES, Options{Theta: 0, Seed: 1, Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("TimedOut not set under a 1ns budget")
	}
	if res.Satisfied {
		t.Fatal("satisfied at theta=0 under an expired budget")
	}
	// No budget: TimedOut never set.
	full, err := Run(g, GADEDRand, Options{Theta: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.TimedOut {
		t.Fatal("TimedOut set without a budget")
	}
}
