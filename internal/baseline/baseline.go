// Package baseline reimplements the competing heuristics of Zhang and
// Zhang, "Edge anonymity in social network graphs" (CSE 2009), which the
// paper compares against in Section 6: GADED-Rand, GADED-Max, and GADES.
//
// Zhang and Zhang's model limits an adversary's confidence that a SINGLE
// edge exists between two individuals — exactly the L-opacity model
// restricted to L = 1 — so, as in the paper, the comparison is only
// defined at L = 1 and all three heuristics are evaluated against the
// same degree-pair type system frozen from the original graph.
//
// Because L = 1 makes "pairs within L" precisely the edge set, the
// per-type disclosure counts are maintained directly from adjacency with
// no distance matrix at all.
package baseline

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/graph"
	"repro/internal/opacity"
)

// Algorithm selects one of the three Zhang-Zhang heuristics.
type Algorithm int

const (
	// GADEDRand removes, at each step, an edge chosen uniformly at
	// random among the edges participating in a disclosure above theta.
	GADEDRand Algorithm = iota
	// GADEDMax removes, at each step, the edge giving the maximum
	// reduction of the maximum link disclosure, tie-broken by the
	// minimum total link disclosure.
	GADEDMax
	// GADES swaps, at each step, a pair of edges so as to reduce the
	// maximum link disclosure, preserving every vertex degree; it fails
	// when no swap reduces the maximum.
	GADES
)

// String names the algorithm as in the paper's figures.
func (a Algorithm) String() string {
	switch a {
	case GADEDRand:
		return "GADED-Rand"
	case GADEDMax:
		return "GADED-Max"
	case GADES:
		return "GADES"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configures a baseline run.
type Options struct {
	// Theta is the confidence threshold; the run stops when the maximum
	// single-edge disclosure is <= Theta.
	Theta float64
	// Seed drives random edge selection (GADED-Rand) and tie-breaking.
	Seed int64
	// MaxSteps caps iterations; 0 means unlimited.
	MaxSteps int
	// Budget bounds the run's wall-clock time; 0 means unlimited. When
	// exhausted, the run stops and returns the best-effort graph with
	// TimedOut set. GADES in particular scans O(|E|^2) edge pairs per
	// iteration, which is impractical unbudgeted on dense samples.
	Budget time.Duration
}

// Swap records one GADES edge swap: the two removed edges and the two
// inserted ones.
type Swap struct {
	Removed  [2]graph.Edge
	Inserted [2]graph.Edge
}

// Result reports a baseline run's outcome.
type Result struct {
	Graph     *graph.Graph
	Satisfied bool
	FinalLO   float64
	Removed   []graph.Edge
	Swaps     []Swap
	Steps     int
	// TimedOut reports that Options.Budget expired before the target
	// was reached.
	TimedOut bool
}

// Distortion returns the paper's Equation 1 relative to the original
// graph.
func (r Result) Distortion(original *graph.Graph) float64 {
	if original.M() == 0 {
		return 0
	}
	return float64(graph.SymmetricDifferenceSize(original, r.Graph)) / float64(original.M())
}

// Run executes the selected Zhang-Zhang heuristic on a clone of g.
func Run(g *graph.Graph, alg Algorithm, opts Options) (Result, error) {
	if opts.Theta < 0 || opts.Theta > 1 {
		return Result{}, fmt.Errorf("baseline: theta must be in [0, 1], got %v", opts.Theta)
	}
	s := &l1state{
		g:     g.Clone(),
		types: opacity.NewDegreeTypes(g.Degrees()),
		rng:   rand.New(rand.NewSource(opts.Seed)),
		opts:  opts,
	}
	if opts.Budget > 0 {
		s.deadline = time.Now().Add(opts.Budget)
	}
	s.counts = make([]int, s.types.NumTypes())
	s.g.EachEdge(func(u, v int) { s.counts[s.types.TypeOf(u, v)]++ })
	switch alg {
	case GADEDRand:
		return s.runRand(), nil
	case GADEDMax:
		return s.runMax(), nil
	case GADES:
		return s.runSwap(), nil
	}
	return Result{}, fmt.Errorf("baseline: unknown algorithm %d", alg)
}

// l1state tracks per-type single-edge disclosure counts: at L=1 the
// pairs within distance L are exactly the current edges.
type l1state struct {
	g      *graph.Graph
	types  *opacity.DegreeTypes
	counts []int
	rng    *rand.Rand
	opts   Options

	removed []graph.Edge
	swaps   []Swap
	steps   int

	deadline time.Time // zero when Options.Budget is unset
	timedOut bool
}

// eval returns the current maximum disclosure and the total disclosure
// (the sum of all per-type ratios, Zhang-Zhang's secondary criterion).
func (s *l1state) eval() (maxLO, total float64) {
	for id, c := range s.counts {
		t := s.types.Total(id)
		if t == 0 {
			continue
		}
		lo := float64(c) / float64(t)
		total += lo
		if lo > maxLO {
			maxLO = lo
		}
	}
	return maxLO, total
}

// evalAfter computes (maxLO, total) as if the counts were adjusted by
// delta on the given type IDs, without mutating them.
func (s *l1state) evalAfter(adjust map[int]int) (maxLO, total float64) {
	for id, c := range s.counts {
		t := s.types.Total(id)
		if t == 0 {
			continue
		}
		lo := float64(c+adjust[id]) / float64(t)
		total += lo
		if lo > maxLO {
			maxLO = lo
		}
	}
	return maxLO, total
}

func (s *l1state) removeEdge(e graph.Edge) {
	s.g.RemoveEdge(e.U, e.V)
	s.counts[s.types.TypeOf(e.U, e.V)]--
	s.removed = append(s.removed, e)
}

func (s *l1state) result(satisfied bool) Result {
	maxLO, _ := s.eval()
	return Result{
		Graph:     s.g,
		Satisfied: satisfied && maxLO <= s.opts.Theta,
		FinalLO:   maxLO,
		Removed:   s.removed,
		Swaps:     s.swaps,
		Steps:     s.steps,
		TimedOut:  s.timedOut,
	}
}

// overBudget reports whether the wall-clock budget is exhausted,
// latching TimedOut for the result.
func (s *l1state) overBudget() bool {
	if s.deadline.IsZero() || time.Now().Before(s.deadline) {
		return false
	}
	s.timedOut = true
	return true
}

func (s *l1state) capped() bool {
	if s.opts.MaxSteps > 0 && s.steps >= s.opts.MaxSteps {
		return true
	}
	return s.overBudget()
}

// runRand implements GADED-Rand: random removals among disclosing edges.
func (s *l1state) runRand() Result {
	for {
		maxLO, _ := s.eval()
		if maxLO <= s.opts.Theta || s.g.M() == 0 || s.capped() {
			break
		}
		// Edges participating in a disclosure above theta: edges whose
		// type's disclosure exceeds theta.
		var pool []graph.Edge
		s.g.EachEdge(func(u, v int) {
			id := s.types.TypeOf(u, v)
			if t := s.types.Total(id); t > 0 && float64(s.counts[id])/float64(t) > s.opts.Theta {
				pool = append(pool, graph.E(u, v))
			}
		})
		if len(pool) == 0 {
			break
		}
		s.removeEdge(pool[s.rng.Intn(len(pool))])
		s.steps++
	}
	return s.result(true)
}

// runMax implements GADED-Max: remove the edge with the maximum
// reduction of the maximum disclosure, tie-broken by the minimum total
// disclosure after removal.
func (s *l1state) runMax() Result {
	adjust := map[int]int{}
	for {
		maxLO, _ := s.eval()
		if maxLO <= s.opts.Theta || s.g.M() == 0 || s.capped() {
			break
		}
		var (
			best      graph.Edge
			bestMax   = 2.0
			bestTotal = 0.0
			found     bool
			ties      int
		)
		for _, e := range s.g.Edges() {
			id := s.types.TypeOf(e.U, e.V)
			for k := range adjust {
				delete(adjust, k)
			}
			adjust[id] = -1
			m, tot := s.evalAfter(adjust)
			switch {
			case !found || m < bestMax || (m == bestMax && tot < bestTotal):
				best, bestMax, bestTotal, found = e, m, tot, true
				ties = 1
			case m == bestMax && tot == bestTotal:
				ties++
				if s.rng.Float64() < 1.0/float64(ties) {
					best = e
				}
			}
		}
		if !found {
			break
		}
		s.removeEdge(best)
		s.steps++
	}
	return s.result(true)
}

// runSwap implements GADES: each iteration searches for the edge swap
// most reducing the maximum disclosure; degrees are preserved by
// construction. The run fails (Satisfied=false) as soon as no swap
// strictly reduces the maximum — the behavior the paper observes when
// reporting that GADES "cannot find any L-opaque graph unless returning
// an empty graph".
func (s *l1state) runSwap() Result {
	adjust := map[int]int{}
	for {
		maxLO, _ := s.eval()
		if maxLO <= s.opts.Theta || s.capped() {
			break
		}
		edges := s.g.Edges()
		var (
			bestSwap  Swap
			bestMax   = maxLO
			bestTotal = 0.0
			found     bool
			ties      int
		)
		for i := 0; i < len(edges); i++ {
			if i%64 == 0 && s.overBudget() {
				return s.result(false) // budget expired mid-scan
			}
			for j := i + 1; j < len(edges); j++ {
				e1, e2 := edges[i], edges[j]
				if e1.Touches(e2.U) || e1.Touches(e2.V) {
					continue // swap needs four distinct endpoints
				}
				for _, cand := range swapRewirings(e1, e2) {
					if s.g.HasEdge(cand[0].U, cand[0].V) || s.g.HasEdge(cand[1].U, cand[1].V) {
						continue
					}
					for k := range adjust {
						delete(adjust, k)
					}
					adjust[s.types.TypeOf(e1.U, e1.V)]--
					adjust[s.types.TypeOf(e2.U, e2.V)]--
					adjust[s.types.TypeOf(cand[0].U, cand[0].V)]++
					adjust[s.types.TypeOf(cand[1].U, cand[1].V)]++
					m, tot := s.evalAfter(adjust)
					if m >= maxLO {
						continue // must strictly reduce the maximum
					}
					sw := Swap{Removed: [2]graph.Edge{e1, e2}, Inserted: cand}
					switch {
					case !found || m < bestMax || (m == bestMax && tot < bestTotal):
						bestSwap, bestMax, bestTotal, found = sw, m, tot, true
						ties = 1
					case m == bestMax && tot == bestTotal:
						ties++
						if s.rng.Float64() < 1.0/float64(ties) {
							bestSwap = sw
						}
					}
				}
			}
		}
		if !found {
			return s.result(false) // stuck: no reducing swap exists
		}
		s.applySwap(bestSwap)
		s.steps++
	}
	return s.result(true)
}

// swapRewirings returns the two possible rewirings of an edge pair
// {a,b}, {c,d}: {a,c}+{b,d} and {a,d}+{b,c}.
func swapRewirings(e1, e2 graph.Edge) [][2]graph.Edge {
	return [][2]graph.Edge{
		{graph.E(e1.U, e2.U), graph.E(e1.V, e2.V)},
		{graph.E(e1.U, e2.V), graph.E(e1.V, e2.U)},
	}
}

func (s *l1state) applySwap(sw Swap) {
	for _, e := range sw.Removed {
		s.g.RemoveEdge(e.U, e.V)
		s.counts[s.types.TypeOf(e.U, e.V)]--
	}
	for _, e := range sw.Inserted {
		s.g.AddEdge(e.U, e.V)
		s.counts[s.types.TypeOf(e.U, e.V)]++
	}
	s.swaps = append(s.swaps, sw)
}
