package experiments

import (
	"fmt"
	"time"

	"repro/internal/anonymize"
	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// method is one plotted series: a named heuristic configuration that
// takes an input graph and a privacy target and returns an anonymized
// graph (or reports infeasibility).
type method struct {
	// Name matches the paper's legend, e.g. "Rem la=2" or "GADED-Max".
	Name string
	// L1Only marks the Zhang & Zhang baselines, defined only at L = 1.
	L1Only bool
	run    func(g *graph.Graph, L int, theta float64, seed int64, budget time.Duration) runOutcome
}

// runOutcome is one heuristic execution.
type runOutcome struct {
	Graph     *graph.Graph
	Satisfied bool
	FinalLO   float64
	Elapsed   time.Duration
	Evals     int64
	TimedOut  bool
}

// ours builds a method for one of the paper's two heuristics. The
// budget (0 = unlimited) bounds each run's wall clock; the quick regime
// uses it to keep look-ahead plateaus from dominating a sweep.
func ours(h anonymize.Heuristic, la int) method {
	return method{
		Name: fmt.Sprintf("%s la=%d", h, la),
		run: func(g *graph.Graph, L int, theta float64, seed int64, budget time.Duration) runOutcome {
			return runOurs(g, anonymize.Options{
				L: L, Theta: theta, Heuristic: h, LookAhead: la, Seed: seed,
				Budget: budget,
			})
		},
	}
}

// runOurs executes one configured anonymize run and adapts the result.
func runOurs(g *graph.Graph, opts anonymize.Options) runOutcome {
	start := time.Now()
	res, err := anonymize.Run(g, opts)
	if err != nil {
		return runOutcome{}
	}
	return runOutcome{
		Graph:     res.Graph,
		Satisfied: res.Satisfied,
		FinalLO:   res.FinalLO,
		Elapsed:   time.Since(start),
		Evals:     res.CandidateEvals,
		TimedOut:  res.TimedOut,
	}
}

// theirs builds a method for one of the Zhang & Zhang baselines.
func theirs(alg baseline.Algorithm) method {
	return method{
		Name:   alg.String(),
		L1Only: true,
		run: func(g *graph.Graph, L int, theta float64, seed int64, budget time.Duration) runOutcome {
			if L != 1 {
				return runOutcome{}
			}
			start := time.Now()
			res, err := baseline.Run(g, alg, baseline.Options{Theta: theta, Seed: seed, Budget: budget})
			if err != nil {
				return runOutcome{}
			}
			return runOutcome{
				Graph:     res.Graph,
				Satisfied: res.Satisfied,
				FinalLO:   res.FinalLO,
				Elapsed:   time.Since(start),
				TimedOut:  res.TimedOut,
			}
		},
	}
}

// fig6Methods is the legend of Figures 6a-d (L = 1): both of our
// heuristics at look-ahead 1 and 2 plus the three baselines.
func fig6Methods() []method {
	return []method{
		ours(anonymize.Removal, 1),
		ours(anonymize.RemovalInsertion, 1),
		ours(anonymize.Removal, 2),
		ours(anonymize.RemovalInsertion, 2),
		theirs(baseline.GADEDRand),
		theirs(baseline.GADEDMax),
		theirs(baseline.GADES),
	}
}

// oursOnlyMethods is the legend of Figures 6e-f (L >= 2, where the
// baselines are undefined).
func oursOnlyMethods() []method {
	return []method{
		ours(anonymize.Removal, 1),
		ours(anonymize.RemovalInsertion, 1),
		ours(anonymize.Removal, 2),
		ours(anonymize.RemovalInsertion, 2),
	}
}

// varyLMethods is the legend of Figures 6g-h and 8c: la = 1, L from 1
// to 4 for both heuristics. The L threshold is baked into the name and
// overrides the sweep's L argument.
type lMethod struct {
	method
	L int
}

func varyLMethods() []lMethod {
	var out []lMethod
	for L := 1; L <= 4; L++ {
		for _, h := range []anonymize.Heuristic{anonymize.Removal, anonymize.RemovalInsertion} {
			m := ours(h, 1)
			m.Name = fmt.Sprintf("%s L=%d", h, L)
			out = append(out, lMethod{method: m, L: L})
		}
	}
	return out
}

// bestOf runs a method cfg.reps() times with distinct seeds and keeps
// the run of minimum distortion among those that satisfied the privacy
// constraint, mirroring the paper's "repeat each experiment 10 times
// ... and select the graph of minimum distortion". ok is false when no
// repetition satisfied the constraint.
// constraint; timedOut reports that at least one repetition hit the
// quick-regime wall-clock budget (so a "-" cell may be a timeout rather
// than a proof of infeasibility).
func bestOf(cfg Config, m method, g *graph.Graph, L int, theta float64) (best runOutcome, ok, timedOut bool) {
	bestD := -1.0
	for rep := 0; rep < cfg.reps(); rep++ {
		out := m.run(g, L, theta, cfg.Seed+int64(rep), cfg.cellBudget())
		if out.TimedOut {
			timedOut = true
		}
		if out.Graph == nil || !out.Satisfied {
			continue
		}
		d := metrics.Distortion(g, out.Graph)
		if bestD < 0 || d < bestD {
			bestD, best, ok = d, out, true
		}
	}
	return best, ok, timedOut
}

// cell renders a sweep cell: the measured value for a satisfied run,
// "t/o" when the budget expired first, "-" for infeasible.
func cell(ok, timedOut bool, value string) string {
	switch {
	case ok:
		return value
	case timedOut:
		return "t/o"
	default:
		return "-"
	}
}

// distortionSweep builds the generic Figure 6 table: one row per theta,
// one column per method, cells holding the edit-distance ratio of the
// best run ("-" where the method found no L-opaque graph).
func distortionSweep(cfg Config, key string, L int, methods []method) (Table, error) {
	g, err := dataset.GenerateByKey(key, cfg.Seed)
	if err != nil {
		return Table{}, err
	}
	cols := []string{"theta"}
	for _, m := range methods {
		cols = append(cols, m.Name)
	}
	t := Table{Columns: cols}
	for _, theta := range cfg.thetas() {
		row := []string{fmtPct(theta)}
		for _, m := range methods {
			if m.L1Only && L != 1 {
				row = append(row, "n/a")
				continue
			}
			out, ok, timedOut := bestOf(cfg, m, g, L, theta)
			v := ""
			if ok {
				v = fmtPct(metrics.Distortion(g, out.Graph))
			}
			row = append(row, cell(ok, timedOut, v))
		}
		t.Rows = append(t.Rows, row)
		cfg.progress("  theta=%.0f%% done", 100*theta)
	}
	t.Note = fmt.Sprintf("dataset %s (n=%d, m=%d); '-' = no %d-opaque graph found, 't/o' = budget expired", key, g.N(), g.M(), L)
	return t, nil
}

// varyLSweep builds the Figure 6g/h style table: la = 1, columns are
// heuristic x L pairs.
func varyLSweep(cfg Config, key string, maxL int) (Table, error) {
	g, err := dataset.GenerateByKey(key, cfg.Seed)
	if err != nil {
		return Table{}, err
	}
	methods := varyLMethods()
	if cfg.quickMaxL() < maxL {
		maxL = cfg.quickMaxL()
	}
	cols := []string{"theta"}
	kept := methods[:0]
	for _, m := range methods {
		if m.L <= maxL {
			kept = append(kept, m)
			cols = append(cols, m.Name)
		}
	}
	t := Table{Columns: cols}
	for _, theta := range cfg.thetas() {
		row := []string{fmtPct(theta)}
		for _, m := range kept {
			out, ok, timedOut := bestOf(cfg, m.method, g, m.L, theta)
			v := ""
			if ok {
				v = fmtPct(metrics.Distortion(g, out.Graph))
			}
			row = append(row, cell(ok, timedOut, v))
		}
		t.Rows = append(t.Rows, row)
		cfg.progress("  theta=%.0f%% done", 100*theta)
	}
	t.Note = fmt.Sprintf("dataset %s (n=%d, m=%d), la=1; '-' = infeasible, 't/o' = budget expired", key, g.N(), g.M())
	return t, nil
}

// utilitySweep builds the Figure 7/8 style table: one row per theta,
// one column per method, cells holding a utility delta between the
// original and the best anonymized graph.
func utilitySweep(cfg Config, key string, L int, methods []method, measure func(orig, anon *graph.Graph) float64) (Table, error) {
	g, err := dataset.GenerateByKey(key, cfg.Seed)
	if err != nil {
		return Table{}, err
	}
	cols := []string{"theta"}
	for _, m := range methods {
		cols = append(cols, m.Name)
	}
	t := Table{Columns: cols}
	for _, theta := range cfg.thetas() {
		row := []string{fmtPct(theta)}
		for _, m := range methods {
			if m.L1Only && L != 1 {
				row = append(row, "n/a")
				continue
			}
			out, ok, timedOut := bestOf(cfg, m, g, L, theta)
			v := ""
			if ok {
				v = fmtF(measure(g, out.Graph))
			}
			row = append(row, cell(ok, timedOut, v))
		}
		t.Rows = append(t.Rows, row)
		cfg.progress("  theta=%.0f%% done", 100*theta)
	}
	t.Note = fmt.Sprintf("dataset %s (n=%d, m=%d); '-' = no L-opaque graph found, 't/o' = budget expired", key, g.N(), g.M())
	return t, nil
}

// quickMaxL caps the L sweep of Figures 6g/h and 8c in the quick
// regime, where the deepest thresholds dominate runtime.
func (c Config) quickMaxL() int {
	if c.Full {
		return 4
	}
	return 3
}

// fig6Key maps a dataset family to the sample used by a Figure 6 panel:
// the 100-vertex sample in the quick regime, the 500-vertex one in Full
// mode (where the family has one).
func (c Config) fig6Key(quick, full string) string {
	if c.Full {
		return full
	}
	return quick
}
