package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/anonymize"
	"repro/internal/apsp"
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/kiso"
	"repro/internal/metrics"
)

func init() {
	register("ext-kiso", extKIso)
	register("ext-anneal", extAnneal)
	register("ext-bitbfs", extBitBFS)
	register("ext-centrality", extCentrality)
	register("ext-rmat", extRMAT)
}

// extKIso quantifies the paper's central positioning argument (Sections
// 1-2): total linkage protection via k-isomorphism (Cheng et al., SIGMOD
// 2010) versus short-linkage protection via L-opacity. For matched
// privacy (theta = 1/k against the degree adversary), it reports the
// distortion each method pays and what happens to connectivity.
func extKIso(cfg Config) (Table, error) {
	t := Table{
		Title: "Extension: L-opacity vs k-isomorphism (total linkage protection)",
		Columns: []string{"dataset", "k", "theta=1/k",
			"kiso distortion", "kiso components", "Rem distortion", "Rem components", "Rem maxConf"},
	}
	for _, key := range []string{"gnutella100", "enron100", "wikipedia100"} {
		g, err := dataset.GenerateByKey(key, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		for _, k := range []int{2, 4} {
			theta := 1 / float64(k)

			kres, err := kiso.Run(g, kiso.Options{K: k, Seed: cfg.Seed})
			if err != nil {
				return Table{}, err
			}
			if err := kiso.Verify(kres); err != nil {
				return Table{}, fmt.Errorf("ext-kiso: %s k=%d: %w", key, k, err)
			}
			_, kcomp := kres.Graph.ConnectedComponents()

			lres, err := anonymize.Run(g, anonymize.Options{
				L: 1, Theta: theta, Heuristic: anonymize.Removal,
				LookAhead: 1, Seed: cfg.Seed, Budget: cfg.cellBudget(),
			})
			if err != nil {
				return Table{}, err
			}
			_, lcomp := lres.Graph.ConnectedComponents()
			adv, err := attack.New(lres.Graph, g.Degrees())
			if err != nil {
				return Table{}, err
			}
			maxConf := adv.MaxConfidence(1).Confidence

			t.Rows = append(t.Rows, []string{
				key, fmt.Sprintf("%d", k), fmtPct(theta),
				fmtPct(kres.Distortion(g.M())), fmt.Sprintf("%d", kcomp),
				fmtPct(metrics.Distortion(g, lres.Graph)), fmt.Sprintf("%d", lcomp),
				fmtF(maxConf),
			})
		}
		cfg.progress("  %s done", key)
	}
	t.Note = "k-isomorphism buys stronger privacy by shattering the graph into k components; L-opacity reaches matched linkage confidence at a fraction of the edits while keeping the graph connected"
	return t, nil
}

// extAnneal compares the paper's greedy heuristics against this
// reproduction's simulated-annealing opacifier on distortion and
// runtime: the future-work question of whether global search beats
// greedy + look-ahead.
func extAnneal(cfg Config) (Table, error) {
	t := Table{
		Title: "Extension: greedy heuristics vs simulated annealing",
		Columns: []string{"dataset", "theta",
			"Rem dist", "Rem-Ins dist", "Anneal dist",
			"Rem time", "Rem-Ins time", "Anneal time"},
	}
	for _, key := range []string{"gnutella100", "enron100"} {
		g, err := dataset.GenerateByKey(key, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		for _, theta := range cfg.acmThetas() {
			type cell struct {
				dist string
				dur  time.Duration
			}
			run := func(f func() (anonymize.Result, error)) (cell, error) {
				best := cell{dist: "t/o"}
				for rep := 0; rep < cfg.reps(); rep++ {
					start := time.Now()
					res, err := f()
					if err != nil {
						return cell{}, err
					}
					d := time.Since(start)
					if rep == 0 || d < best.dur {
						best.dur = d
					}
					if res.Satisfied {
						dist := fmtPct(metrics.Distortion(g, res.Graph))
						if best.dist == "t/o" || dist < best.dist {
							best.dist = dist
						}
					}
				}
				return best, nil
			}
			rem, err := run(func() (anonymize.Result, error) {
				return anonymize.Run(g, anonymize.Options{
					L: 1, Theta: theta, Heuristic: anonymize.Removal,
					Seed: cfg.Seed, Budget: cfg.cellBudget(),
				})
			})
			if err != nil {
				return Table{}, err
			}
			remins, err := run(func() (anonymize.Result, error) {
				return anonymize.Run(g, anonymize.Options{
					L: 1, Theta: theta, Heuristic: anonymize.RemovalInsertion,
					Seed: cfg.Seed, Budget: cfg.cellBudget(),
				})
			})
			if err != nil {
				return Table{}, err
			}
			ann, err := run(func() (anonymize.Result, error) {
				return anonymize.Anneal(g, anonymize.AnnealOptions{
					L: 1, Theta: theta, Seed: cfg.Seed, Budget: cfg.cellBudget(),
				})
			})
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				key, fmtPct(theta),
				rem.dist, remins.dist, ann.dist,
				rem.dur.Round(time.Millisecond).String(),
				remins.dur.Round(time.Millisecond).String(),
				ann.dur.Round(time.Millisecond).String(),
			})
		}
		cfg.progress("  %s done", key)
	}
	t.Note = "annealing explores removals+insertions jointly; measured: the greedy heuristics dominate clearly at evaluation scale — the default schedule accepts many uphill edits it never pays back, so SA distortion is an order of magnitude worse"
	return t, nil
}

// extBitBFS extends the engine ablation with the bit-parallel BFS
// engine: 64 BFS trees per machine word versus one per pass.
func extBitBFS(cfg Config) (Table, error) {
	t := Table{
		Title:   "Extension: bit-parallel BFS engine vs paper engines",
		Columns: []string{"dataset", "L", "BitBFS", "BoundedBFS", "L-pruned FW", "Pointer FW", "agree"},
	}
	keys := []string{"gnutella100", "enron100", "google500", "gnutella1000"}
	if cfg.Full {
		keys = append(keys, "acm2000")
	}
	for _, key := range keys {
		g, err := dataset.GenerateByKey(key, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		for _, L := range []int{1, 2, 4} {
			build := func(f func() apsp.Store) (time.Duration, apsp.Store) {
				start := time.Now()
				m := f()
				return time.Since(start), m
			}
			dBit, mBit := build(func() apsp.Store { return apsp.BitBFS(g, L) })
			dBFS, mBFS := build(func() apsp.Store { return apsp.BoundedAPSP(g, L) })
			dFW, mFW := build(func() apsp.Store { return apsp.LPrunedFW(g, L) })
			dPtr, mPtr := build(func() apsp.Store { return apsp.PointerFW(g, L) })
			agree := apsp.Equal(mBit, mBFS) && apsp.Equal(mBFS, mFW) && apsp.Equal(mFW, mPtr)
			t.Rows = append(t.Rows, []string{
				key, fmt.Sprintf("%d", L),
				dBit.String(), dBFS.String(), dFW.String(), dPtr.String(),
				fmt.Sprintf("%v", agree),
			})
		}
		cfg.progress("  %s done", key)
	}
	t.Note = "BitBFS packs 64 sources per word; the advantage grows with n and L"
	return t, nil
}

// extCentrality tracks how the two heuristics preserve vertex-importance
// structure (betweenness/closeness rank order) across the theta sweep —
// the abstract's "structural graph properties" beyond degree and
// clustering statistics.
func extCentrality(cfg Config) (Table, error) {
	t := Table{
		Title: "Extension: centrality preservation vs theta",
		Columns: []string{"dataset", "theta",
			"Rem btw-rho", "Rem-Ins btw-rho", "Rem close-rho", "Rem-Ins close-rho", "Rem top10", "Rem-Ins top10"},
	}
	for _, key := range []string{"enron100", "wikipedia100"} {
		g, err := dataset.GenerateByKey(key, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		for _, theta := range cfg.acmThetas() {
			var cp [2]metrics.CentralityPreservation
			for i, h := range []anonymize.Heuristic{anonymize.Removal, anonymize.RemovalInsertion} {
				res, err := anonymize.Run(g, anonymize.Options{
					L: 1, Theta: theta, Heuristic: h, Seed: cfg.Seed, Budget: cfg.cellBudget(),
				})
				if err != nil {
					return Table{}, err
				}
				cp[i] = metrics.Centralities(g, res.Graph)
			}
			t.Rows = append(t.Rows, []string{
				key, fmtPct(theta),
				fmtF(cp[0].BetweennessSpearman), fmtF(cp[1].BetweennessSpearman),
				fmtF(cp[0].ClosenessSpearman), fmtF(cp[1].ClosenessSpearman),
				fmtF(cp[0].TopTenOverlap), fmtF(cp[1].TopTenOverlap),
			})
		}
		cfg.progress("  %s done", key)
	}
	t.Note = "rank correlations against the original graph; preservation degrades as theta shrinks, and Rem preserves rank order better than Rem-Ins — inserted edges create new shortcuts that scramble betweenness more than removals do"
	return t, nil
}

// extRMAT probes the one documented calibration residual of the
// Table 3 stand-ins: the community generator under-disperses degree on
// the heavy-tailed web samples. For each such sample it reports the
// published degree STDD, the stand-in's, and a smoothed R-MAT graph's
// at the same (n, m) — showing the recursive-quadrant model recovers
// the crawl-like tail the default stand-in misses.
func extRMAT(cfg Config) (Table, error) {
	t := Table{
		Title:   "Extension: heavy-tail degree calibration (R-MAT vs community stand-in)",
		Columns: []string{"sample", "published STDD", "stand-in STDD", "R-MAT STDD", "stand-in maxdeg", "R-MAT maxdeg"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, key := range []string{"google100", "google500", "bs500", "wikipedia100"} {
		spec, ok := dataset.ByKey(key)
		if !ok {
			return Table{}, fmt.Errorf("ext-rmat: unknown sample %q", key)
		}
		standIn, err := dataset.GenerateByKey(key, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		rm, err := gen.RMAT(spec.N, spec.M, gen.WebRMAT(), rng)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			key,
			fmtF(spec.DegreeStdD),
			fmtF(metrics.Degrees(standIn).StdDev),
			fmtF(metrics.Degrees(rm).StdDev),
			fmt.Sprintf("%d", standIn.MaxDegree()),
			fmt.Sprintf("%d", rm.MaxDegree()),
		})
		cfg.progress("  %s done", key)
	}
	t.Note = "R-MAT closes the degree-dispersion gap on web-crawl samples; the default stand-ins keep the community structure (clustering) the anonymization trends depend on"
	return t, nil
}
