package experiments

import (
	"fmt"
	"time"

	"repro/internal/anonymize"
	"repro/internal/apsp"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func init() {
	register("ablation-tiebreak", ablationTiebreak)
	register("ablation-engines", ablationEngines)
	register("ablation-lookahead", ablationLookahead)
}

// ablationTiebreak quantifies the contribution of the paper's secondary
// tie-break criterion (prefer the move minimizing N(lo), the number of
// types attaining the maximum opacity) by running Edge Removal with and
// without it.
func ablationTiebreak(cfg Config) (Table, error) {
	t := Table{
		Title:   "Ablation: N(lo) tie-break criterion (paper Section 5.2)",
		Columns: []string{"dataset", "theta", "distortion with N(lo)", "distortion without", "steps with", "steps without"},
	}
	for _, key := range []string{"enron100", "gnutella100", "wikipedia100"} {
		g, err := dataset.GenerateByKey(key, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		for _, theta := range cfg.acmThetas() {
			var cells [2]anonymize.Result
			for i, ignore := range []bool{false, true} {
				res, err := anonymize.Run(g, anonymize.Options{
					L: 1, Theta: theta, Heuristic: anonymize.Removal,
					LookAhead: 1, Seed: cfg.Seed, IgnorePopulation: ignore,
				})
				if err != nil {
					return Table{}, err
				}
				cells[i] = res
			}
			t.Rows = append(t.Rows, []string{
				key, fmtPct(theta),
				fmtPct(metrics.Distortion(g, cells[0].Graph)),
				fmtPct(metrics.Distortion(g, cells[1].Graph)),
				fmt.Sprintf("%d", cells[0].Steps),
				fmt.Sprintf("%d", cells[1].Steps),
			})
		}
		cfg.progress("  %s done", key)
	}
	t.Note = "Edge Removal, L=1, la=1; the paper argues fewer max-opacity types is the better greedy signal"
	return t, nil
}

// ablationEngines compares the three distance-matrix engines (paper
// Algorithms 2 and 3 vs. the bounded-BFS default) on identical inputs.
func ablationEngines(cfg Config) (Table, error) {
	t := Table{
		Title:   "Ablation: distance-engine build time (paper Algorithms 2 & 3)",
		Columns: []string{"dataset", "L", "BoundedBFS", "L-pruned FW (Alg.2)", "Pointer FW (Alg.3)", "agree"},
	}
	keys := []string{"gnutella100", "enron100", "google100", "gnutella500"}
	if cfg.Full {
		keys = append(keys, "google500", "gnutella1000")
	}
	for _, key := range keys {
		g, err := dataset.GenerateByKey(key, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		for _, L := range []int{1, 2, 4} {
			build := func(f func() apsp.Store) (time.Duration, apsp.Store) {
				start := time.Now()
				m := f()
				return time.Since(start), m
			}
			dBFS, mBFS := build(func() apsp.Store { return apsp.BoundedAPSP(g, L) })
			dFW, mFW := build(func() apsp.Store { return apsp.LPrunedFW(g, L) })
			dPtr, mPtr := build(func() apsp.Store { return apsp.PointerFW(g, L) })
			agree := apsp.Equal(mBFS, mFW) && apsp.Equal(mFW, mPtr)
			t.Rows = append(t.Rows, []string{
				key, fmt.Sprintf("%d", L),
				dBFS.String(), dFW.String(), dPtr.String(),
				fmt.Sprintf("%v", agree),
			})
		}
		cfg.progress("  %s done", key)
	}
	t.Note = "one full matrix build per engine; greedy loops additionally use incremental deltas"
	return t, nil
}

// ablationLookahead measures what the look-ahead mechanism buys:
// feasibility and distortion at la = 1, 2, 3 on a dense sample where
// single-edge moves stall (the paper's Berkeley-Stanford argument).
func ablationLookahead(cfg Config) (Table, error) {
	t := Table{
		Title:   "Ablation: look-ahead depth (paper Section 5)",
		Columns: []string{"dataset", "heuristic", "theta", "la=1", "la=2", "la=3"},
	}
	maxLA := 3
	key := "wikipedia100"
	g, err := dataset.GenerateByKey(key, cfg.Seed)
	if err != nil {
		return Table{}, err
	}
	for _, h := range []anonymize.Heuristic{anonymize.Removal, anonymize.RemovalInsertion} {
		for _, theta := range cfg.acmThetas() {
			row := []string{key, h.String(), fmtPct(theta)}
			for la := 1; la <= maxLA; la++ {
				res, err := anonymize.Run(g, anonymize.Options{
					L: 1, Theta: theta, Heuristic: h, LookAhead: la, Seed: cfg.Seed,
				})
				if err != nil {
					return Table{}, err
				}
				if !res.Satisfied {
					row = append(row, "-")
					continue
				}
				row = append(row, fmtPct(metrics.Distortion(g, res.Graph)))
			}
			t.Rows = append(t.Rows, row)
		}
		cfg.progress("  %s done", h)
	}
	t.Note = "cells are distortion of the la-variant; '-' = infeasible at that look-ahead"
	return t, nil
}
