// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment is a named runner producing a
// Table of rows matching the paper's plotted series; DESIGN.md maps the
// experiment IDs to the paper artifacts and EXPERIMENTS.md records the
// paper-versus-measured comparison.
//
// Experiments run on the calibrated synthetic dataset stand-ins of
// internal/dataset. By default they run in a scaled "quick" regime
// (smaller samples, fewer theta points, fewer repetitions) sized for a
// laptop; Full mode reproduces the paper's sweep parameters.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Seed drives dataset generation and heuristic tie-breaking.
	Seed int64
	// Repetitions per (dataset, theta) cell; the paper repeats each
	// experiment 10 times and keeps the minimum-distortion run.
	Repetitions int
	// Full switches from the scaled quick regime to the paper's full
	// sweep (larger samples, 10%-step theta sweep, no per-run wall-clock
	// budget); expect long runs.
	Full bool
	// CellBudget bounds each individual heuristic run's wall clock in
	// the quick regime; 0 selects the 15-second default. Full mode
	// ignores it. Runs over budget are reported as "t/o" cells.
	CellBudget time.Duration
	// Out, when non-nil, receives progress lines.
	Out io.Writer
}

// DefaultConfig returns the quick-regime configuration used by tests,
// benchmarks, and the CLI default.
func DefaultConfig() Config {
	return Config{Seed: 1, Repetitions: 3}
}

func (c Config) progress(format string, args ...interface{}) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

// thetas returns the confidence sweep: the paper's 90%..10% in 10% steps
// in Full mode, a four-point subset in quick mode.
func (c Config) thetas() []float64 {
	if c.Full {
		return []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}
	}
	return []float64{0.9, 0.7, 0.5, 0.3}
}

// cellBudget returns the per-run wall-clock bound: unlimited in Full
// mode, CellBudget (default 15s) in the quick regime.
func (c Config) cellBudget() time.Duration {
	if c.Full {
		return 0
	}
	if c.CellBudget > 0 {
		return c.CellBudget
	}
	return 15 * time.Second
}

// reps returns the repetition count (>=1).
func (c Config) reps() int {
	if c.Repetitions < 1 {
		return 1
	}
	return c.Repetitions
}

// Table is a printable experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	// Note records caveats (scaled sizes, substitutions, failures).
	Note string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas are quoted).
func (t Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Runner produces one experiment's table.
type Runner func(Config) (Table, error)

// registry maps experiment IDs to runners; populated by init functions
// in the per-figure files.
var registry = map[string]Runner{}

func register(id string, r Runner) {
	if _, dup := registry[id]; dup {
		panic("experiments: duplicate id " + id)
	}
	registry[id] = r
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by ID.
func Run(id string, cfg Config) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, IDs())
	}
	start := time.Now()
	cfg.progress("running %s ...", id)
	t, err := r(cfg)
	if err != nil {
		return Table{}, fmt.Errorf("experiments: %s: %w", id, err)
	}
	cfg.progress("done %s in %v", id, time.Since(start).Round(time.Millisecond))
	t.ID = id
	return t, nil
}

// RunAll executes every registered experiment in ID order.
func RunAll(cfg Config) ([]Table, error) {
	var out []Table
	for _, id := range IDs() {
		t, err := Run(id, cfg)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}

// fmtF renders a float with sensible precision for tables.
func fmtF(v float64) string { return fmt.Sprintf("%.4f", v) }

// fmtPct renders a ratio as a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
