package experiments

import (
	"fmt"
	"math/rand"
	"strconv"

	"repro/internal/fixture"
	"repro/internal/satreduce"
)

func init() {
	register("thm1", thm1)
}

// thm1 exercises the Theorem 1 reduction (the paper's NP-hardness
// proof, illustrated in Figure 3): the paper's 6-clause running example
// plus seeded random 3-SAT formulas are reduced to L-opacification
// instances, solved via the reduction, and the equivalence verified in
// both directions.
func thm1(cfg Config) (Table, error) {
	t := Table{
		Title: "Theorem 1: 3-SAT -> L-opacification reduction (paper Fig. 3)",
		Columns: []string{
			"formula", "vars", "clauses", "gadget |V|", "gadget |E|",
			"budget N", "SAT", "removals", "opacified",
		},
	}
	formulas := []struct {
		name string
		raw  [][3]int
	}{
		{"paper example", fixture.Theorem1Formula()},
		{"unsatisfiable core", [][3]int{
			{1, 2, 3}, {1, 2, -3}, {1, -2, 3}, {1, -2, -3},
			{-1, 2, 3}, {-1, 2, -3}, {-1, -2, 3}, {-1, -2, -3},
		}},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < 2; i++ {
		formulas = append(formulas, struct {
			name string
			raw  [][3]int
		}{fmt.Sprintf("random-%d", i+1), randomFormula(rng, 5, 12)})
	}
	for _, f := range formulas {
		formula, err := satreduce.NewFormula(f.raw)
		if err != nil {
			return Table{}, err
		}
		inst := satreduce.Build(formula)
		removals, sat := inst.SolveByReduction()
		opacified := "n/a"
		removed := "-"
		if sat {
			removed = strconv.Itoa(len(removals))
			opacified = strconv.FormatBool(inst.Opacified(removals))
		}
		t.Rows = append(t.Rows, []string{
			f.name,
			strconv.Itoa(formula.NumVars),
			strconv.Itoa(len(formula.Clauses)),
			strconv.Itoa(inst.G.N()),
			strconv.Itoa(inst.G.M()),
			strconv.Itoa(inst.Budget),
			strconv.FormatBool(sat),
			removed,
			opacified,
		})
		cfg.progress("  %s done", f.name)
	}
	t.Note = "L=3, theta=1; 'opacified' verifies the removal set renders every clause/variable type opaque"
	return t, nil
}

// randomFormula draws a uniform 3-SAT formula with nv variables and nc
// clauses (distinct variables within each clause).
func randomFormula(rng *rand.Rand, nv, nc int) [][3]int {
	raw := make([][3]int, nc)
	for i := range raw {
		vars := rng.Perm(nv)[:3]
		for j, v := range vars {
			lit := v + 1
			if rng.Intn(2) == 0 {
				lit = -lit
			}
			raw[i][j] = lit
		}
	}
	return raw
}
