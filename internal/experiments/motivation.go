package experiments

import (
	"fmt"

	"repro/internal/anonymize"
	"repro/internal/attack"
	"repro/internal/dataset"
	"repro/internal/kdegree"
	"repro/internal/metrics"
)

func init() {
	register("motivation", motivation)
}

// motivation reproduces the paper's Section 1 argument quantitatively:
// protecting identity (k-degree anonymity, Liu & Terzi) does not
// protect against linkage disclosure, while L-opacification does. For
// each dataset it reports the adversary's maximum linkage confidence on
// (a) the raw graph, (b) a k-degree anonymized graph, and (c) an
// L-opacified graph, together with the identity protection level
// (minimum degree-candidate-set size) of each.
func motivation(cfg Config) (Table, error) {
	const (
		k     = 5
		theta = 0.5
	)
	t := Table{
		Title: "Extension: identity protection vs linkage protection (paper Section 1)",
		Columns: []string{
			"dataset", "graph",
			"min candidates", "max linkage conf (L=1)", "max linkage conf (L=2)",
			"distortion",
		},
	}
	for _, key := range []string{"enron100", "gnutella100"} {
		g, err := dataset.GenerateByKey(key, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		degrees := g.Degrees()

		emit := func(label string, adv *attack.Adversary, dist float64) {
			ids := adv.IdentityCandidates()
			minC := 0
			if len(ids) > 0 {
				minC = ids[0]
			}
			t.Rows = append(t.Rows, []string{
				key, label,
				fmt.Sprintf("%d", minC),
				fmtPct(adv.MaxConfidence(1).Confidence),
				fmtPct(adv.MaxConfidence(2).Confidence),
				fmtPct(dist),
			})
		}

		// (a) Raw graph.
		raw, err := attack.New(g, degrees)
		if err != nil {
			return Table{}, err
		}
		emit("raw", raw, 0)

		// (b) k-degree anonymous graph: the adversary's knowledge is the
		// PUBLISHED degrees (identity protection changes them), so
		// candidates are computed from the anonymized graph's degrees.
		kres, err := kdegree.Anonymize(g, k)
		if err != nil {
			return Table{}, err
		}
		kadv, err := attack.New(kres.Graph, kres.Graph.Degrees())
		if err != nil {
			return Table{}, err
		}
		emit(fmt.Sprintf("%d-degree anon", k), kadv, metrics.Distortion(g, kres.Graph))

		// (c) L-opacified graph at L = 2 (covers L = 1 pairs as well,
		// since d <= 1 implies d <= 2 bounds both queries by theta only
		// for L <= 2 pairs; the L=1 confidence can only be lower).
		ores, err := anonymize.Run(g, anonymize.Options{
			L: 2, Theta: theta, Heuristic: anonymize.Removal, LookAhead: 1,
			Seed: cfg.Seed, Budget: cfg.cellBudget(),
		})
		if err != nil {
			return Table{}, err
		}
		oadv, err := attack.New(ores.Graph, degrees) // original degrees
		if err != nil {
			return Table{}, err
		}
		emit(fmt.Sprintf("2-opaque theta=%.0f%%", 100*theta), oadv, metrics.Distortion(g, ores.Graph))
		cfg.progress("  %s done", key)
	}
	t.Note = "k-degree anonymity raises the candidate floor but leaves linkage confidence high; L-opacification bounds it by theta"
	return t, nil
}
