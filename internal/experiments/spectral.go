package experiments

import (
	"fmt"

	"repro/internal/anonymize"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func init() {
	register("spectral", spectral)
}

// spectral measures the spectral utility metrics the paper's abstract
// references ("utility metrics quantifying spectral and structural
// graph properties") but whose plots the evaluation section omits: the
// largest adjacency eigenvalue (graph "strength") and the Laplacian
// algebraic connectivity (cohesion), before and after anonymization.
// This is an extension experiment; it has no paper figure to match.
func spectral(cfg Config) (Table, error) {
	t := Table{
		Title: "Extension: spectral utility before/after anonymization (abstract's spectral properties)",
		Columns: []string{
			"dataset", "theta", "heuristic",
			"lambda1 before", "lambda1 after",
			"mu2 before", "mu2 after",
		},
	}
	for _, key := range []string{"enron100", "gnutella100"} {
		g, err := dataset.GenerateByKey(key, cfg.Seed)
		if err != nil {
			return Table{}, err
		}
		l1Before := metrics.LargestAdjacencyEigenvalue(g)
		mu2Before := metrics.AlgebraicConnectivity(g)
		for _, h := range []anonymize.Heuristic{anonymize.Removal, anonymize.RemovalInsertion} {
			for _, theta := range cfg.acmThetas() {
				res, err := anonymize.Run(g, anonymize.Options{
					L: 1, Theta: theta, Heuristic: h, LookAhead: 1, Seed: cfg.Seed,
				})
				if err != nil {
					return Table{}, err
				}
				t.Rows = append(t.Rows, []string{
					key, fmtPct(theta), h.String(),
					fmt.Sprintf("%.4f", l1Before),
					fmt.Sprintf("%.4f", metrics.LargestAdjacencyEigenvalue(res.Graph)),
					fmt.Sprintf("%.4f", mu2Before),
					fmt.Sprintf("%.4f", metrics.AlgebraicConnectivity(res.Graph)),
				})
			}
			cfg.progress("  %s %s done", key, h)
		}
	}
	t.Note = "lambda1 = largest adjacency eigenvalue; mu2 = Laplacian algebraic connectivity; L=1, la=1"
	return t, nil
}
