package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

func init() {
	register("table1", table1)
	register("table2", table2)
	register("table3", table3)
}

// table1 reproduces Table 1: the catalog of original datasets (sizes
// and what nodes/links describe). These are the published figures; the
// table exists so every paper artifact has a runner.
func table1(cfg Config) (Table, error) {
	t := Table{
		Title:   "Description of the original datasets (paper Table 1)",
		Columns: []string{"Data Set", "Nodes", "Links", "Node kind", "Link kind"},
	}
	for _, d := range dataset.Originals() {
		t.Rows = append(t.Rows, []string{
			d.Name,
			strconv.Itoa(d.Nodes),
			strconv.Itoa(d.Links),
			d.NodeKind,
			d.LinkKind,
		})
	}
	t.Note = "published catalog values; originals are not regenerated (see DESIGN.md substitutions)"
	return t, nil
}

// table2 reproduces Table 2: properties of the original datasets. The
// published values are listed beside the properties of a scaled
// synthetic emulator so the calibration quality is visible.
func table2(cfg Config) (Table, error) {
	t := Table{
		Title:   "Original dataset properties (paper Table 2; published values)",
		Columns: []string{"Data Set", "Diameter", "Av. Deg.", "STDD", "ACC"},
	}
	for _, d := range dataset.Originals() {
		t.Rows = append(t.Rows, []string{
			d.Name,
			strconv.Itoa(d.Diameter),
			fmt.Sprintf("%.2f", d.AvgDegree),
			fmt.Sprintf("%.2f", d.DegreeStdD),
			fmt.Sprintf("%.4f", d.AvgClusterC),
		})
	}
	t.Note = "published values; the sampled stand-ins of Table 3 are what the experiments consume"
	return t, nil
}

// table3 reproduces Table 3: the sampled graphs the experiments run
// on. Each row shows the paper's published sample statistics and the
// measured statistics of our calibrated synthetic stand-in.
func table3(cfg Config) (Table, error) {
	t := Table{
		Title: "Sampled graph properties: paper vs. generated stand-in (paper Table 3)",
		Columns: []string{
			"Sample", "Nodes", "Links(paper)", "Links(ours)",
			"Diam(paper)", "Diam(ours)",
			"AvgDeg(paper)", "AvgDeg(ours)",
			"STDD(paper)", "STDD(ours)",
			"ACC(paper)", "ACC(ours)",
		},
	}
	for _, s := range dataset.Samples() {
		g := dataset.Generate(s, cfg.Seed)
		p := metrics.Properties(g)
		t.Rows = append(t.Rows, []string{
			s.Key,
			strconv.Itoa(s.N),
			strconv.Itoa(s.M), strconv.Itoa(p.Links),
			strconv.Itoa(s.Diameter), strconv.Itoa(p.Diameter),
			fmt.Sprintf("%.2f", s.AvgDegree), fmt.Sprintf("%.2f", p.Degree.Average),
			fmt.Sprintf("%.2f", s.DegreeStdD), fmt.Sprintf("%.2f", p.Degree.StdDev),
			fmt.Sprintf("%.2f", s.AvgClusterC), fmt.Sprintf("%.2f", p.ACC),
		})
		cfg.progress("  %s done", s.Key)
	}
	t.Note = "stand-ins are seeded generators calibrated to the published statistics"
	return t, nil
}
