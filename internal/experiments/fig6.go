package experiments

func init() {
	register("fig6a", fig6a)
	register("fig6b", fig6b)
	register("fig6c", fig6c)
	register("fig6d", fig6d)
	register("fig6e", fig6e)
	register("fig6f", fig6f)
	register("fig6g", fig6g)
	register("fig6h", fig6h)
}

// fig6a: distortion vs theta on the Google sample at L = 1, all seven
// heuristic configurations.
func fig6a(cfg Config) (Table, error) {
	t, err := distortionSweep(cfg, cfg.fig6Key("google100", "google500"), 1, fig6Methods())
	t.Title = "Distortion vs theta, Google, L=1 (paper Fig. 6a)"
	return t, err
}

// fig6b: distortion vs theta on the Wikipedia sample at L = 1.
func fig6b(cfg Config) (Table, error) {
	t, err := distortionSweep(cfg, cfg.fig6Key("wikipedia100", "wikipedia500"), 1, fig6Methods())
	t.Title = "Distortion vs theta, Wikipedia, L=1 (paper Fig. 6b)"
	return t, err
}

// fig6c: distortion vs theta on the Enron sample at L = 1.
func fig6c(cfg Config) (Table, error) {
	t, err := distortionSweep(cfg, cfg.fig6Key("enron100", "enron500"), 1, fig6Methods())
	t.Title = "Distortion vs theta, Enron, L=1 (paper Fig. 6c)"
	return t, err
}

// fig6d: distortion vs theta on the Berkeley-Stanford sample at L = 1.
// The paper highlights this dense sample as the one where Rem-Ins at
// la = 1 cannot find a solution while la = 2 can.
func fig6d(cfg Config) (Table, error) {
	t, err := distortionSweep(cfg, "bs500", 1, fig6Methods())
	t.Title = "Distortion vs theta, Berkeley-Stanford, L=1 (paper Fig. 6d)"
	return t, err
}

// fig6e: distortion vs theta on the Epinions(Trust) sample at L = 2;
// baselines are undefined beyond L = 1.
func fig6e(cfg Config) (Table, error) {
	t, err := distortionSweep(cfg, "epinions-trust100", 2, oursOnlyMethods())
	t.Title = "Distortion vs theta, Epinions(Trust), L=2 (paper Fig. 6e)"
	return t, err
}

// fig6f: distortion vs theta on the Gnutella sample at L = 2.
func fig6f(cfg Config) (Table, error) {
	t, err := distortionSweep(cfg, "gnutella100", 2, oursOnlyMethods())
	t.Title = "Distortion vs theta, Gnutella, L=2 (paper Fig. 6f)"
	return t, err
}

// fig6g: distortion vs theta on Epinions(Trust) at la = 1 for L = 1..4.
func fig6g(cfg Config) (Table, error) {
	t, err := varyLSweep(cfg, "epinions-trust100", 4)
	t.Title = "Distortion vs theta, Epinions(Trust), la=1, L=1..4 (paper Fig. 6g)"
	return t, err
}

// fig6h: distortion vs theta on Gnutella at la = 1 for L = 1..4.
func fig6h(cfg Config) (Table, error) {
	t, err := varyLSweep(cfg, "gnutella-s100", 4)
	t.Title = "Distortion vs theta, Gnutella, la=1, L=1..4 (paper Fig. 6h)"
	return t, err
}
