package experiments

import (
	"strings"
	"testing"
)

// fastCfg is a minimal configuration used to exercise every runner in
// tests without paying the full quick-regime sweep.
func fastCfg() Config {
	return Config{Seed: 1, Repetitions: 1}
}

func TestIDsStableAndComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"ablation-engines", "ablation-lookahead", "ablation-tiebreak",
		"ext-anneal", "ext-bitbfs", "ext-centrality", "ext-kiso", "ext-rmat",
		"fig10", "fig11", "fig12",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig6g", "fig6h",
		"fig7a", "fig7b",
		"fig8a", "fig8b", "fig8c",
		"fig9",
		"motivation",
		"spectral",
		"table1", "table2", "table3",
		"thm1",
	}
	if len(ids) != len(want) {
		t.Fatalf("IDs() = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs()[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("nope", fastCfg()); err == nil {
		t.Fatal("Run(nope) succeeded, want error")
	}
}

func TestTables(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		tab, err := Run(id, fastCfg())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		if tab.ID != id {
			t.Fatalf("%s: table.ID = %q", id, tab.ID)
		}
	}
}

func TestTable1HasSevenDatasets(t *testing.T) {
	tab, err := Run("table1", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("table1 has %d rows, want 7", len(tab.Rows))
	}
}

func TestThm1(t *testing.T) {
	tab, err := Run("thm1", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("thm1 rows = %d, want >= 4", len(tab.Rows))
	}
	// The paper's running example is satisfiable; its removal set must
	// opacify the gadget.
	row := tab.Rows[0]
	if row[0] != "paper example" || row[6] != "true" || row[8] != "true" {
		t.Fatalf("paper example row = %v", row)
	}
	// The 8-clause enumeration over 3 variables is unsatisfiable.
	if tab.Rows[1][6] != "false" {
		t.Fatalf("unsatisfiable core row = %v", tab.Rows[1])
	}
}

func TestDistortionSweepShape(t *testing.T) {
	cfg := fastCfg()
	tab, err := Run("fig6e", cfg) // epinions-trust100, L=2, ours only: small and fast
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(tab.Columns), 1+4; got != want {
		t.Fatalf("columns = %d, want %d", got, want)
	}
	if got, want := len(tab.Rows), len(cfg.thetas()); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			if cell != "-" && !strings.HasSuffix(cell, "%") {
				t.Fatalf("cell %q is neither '-' nor a percentage", cell)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "two,three"}},
		Note:    "n",
	}
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "note: n") {
		t.Fatalf("String() = %q", s)
	}
	csv := tab.CSV()
	if !strings.Contains(csv, `"two,three"`) {
		t.Fatalf("CSV() = %q: comma cell not quoted", csv)
	}
	if !strings.HasPrefix(csv, "a,bb\n") {
		t.Fatalf("CSV() header = %q", csv)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Repetitions != 3 || cfg.Seed != 1 {
		t.Fatalf("DefaultConfig() = %+v", cfg)
	}
	if n := len(cfg.thetas()); n != 4 {
		t.Fatalf("quick thetas = %d, want 4", n)
	}
	cfg.Full = true
	if n := len(cfg.thetas()); n != 9 {
		t.Fatalf("full thetas = %d, want 9", n)
	}
	zero := Config{}
	if zero.reps() != 1 {
		t.Fatalf("zero reps() = %d, want 1", zero.reps())
	}
}

func TestAblationEnginesAgree(t *testing.T) {
	tab, err := Run("ablation-engines", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("engines disagree on %v", row)
		}
	}
}

func TestMotivationShape(t *testing.T) {
	tab, err := Run("motivation", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 { // 2 datasets x 3 graphs
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		label := row[1]
		confL2 := row[4]
		switch {
		case label == "raw":
			if confL2 != "100.0%" {
				t.Fatalf("raw graph linkage confidence = %s, want 100%%", confL2)
			}
		case strings.HasPrefix(label, "2-opaque"):
			// Bounded by theta = 50% (allowing exact attainment).
			if confL2 != "50.0%" && !strings.HasPrefix(confL2, "4") &&
				!strings.HasPrefix(confL2, "3") && !strings.HasPrefix(confL2, "2") &&
				!strings.HasPrefix(confL2, "1") && confL2 != "0.0%" {
				t.Fatalf("opacified linkage confidence = %s, want <= 50%%", confL2)
			}
		}
	}
}

func TestSpectralShape(t *testing.T) {
	tab, err := Run("spectral", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("empty spectral table")
	}
	for _, row := range tab.Rows {
		if len(row) != 7 {
			t.Fatalf("row width %d, want 7: %v", len(row), row)
		}
	}
}
