package experiments

import (
	"fmt"

	"repro/internal/anonymize"
	"repro/internal/dataset"
	"repro/internal/metrics"
)

func init() {
	register("fig9", fig9)
	register("fig10", fig10)
	register("fig11", fig11)
	register("fig12", fig12)
}

// fig9: runtime vs theta on Google samples of increasing size. The
// paper shows three panels (|V| = 100, 500, 1000); one table per size
// would be redundant here, so sizes become column groups.
func fig9(cfg Config) (Table, error) {
	sizes := []string{"google100", "google500"}
	if cfg.Full {
		sizes = append(sizes, "google1000")
	}
	methods := fig9Methods(cfg)
	cols := []string{"theta"}
	for _, key := range sizes {
		for _, m := range methods {
			cols = append(cols, fmt.Sprintf("%s %s", key, m.Name))
		}
	}
	t := Table{
		Title:   "Runtime (seconds) vs theta, Google samples (paper Fig. 9a-c)",
		Columns: cols,
	}
	for _, theta := range cfg.thetas() {
		row := []string{fmtPct(theta)}
		for _, key := range sizes {
			g, err := dataset.GenerateByKey(key, cfg.Seed)
			if err != nil {
				return Table{}, err
			}
			for _, m := range methods {
				out := m.run(g, 1, theta, cfg.Seed, cfg.cellBudget())
				if out.Graph == nil {
					row = append(row, "-")
					continue
				}
				mark := ""
				if !out.Satisfied {
					mark = "*"
				}
				row = append(row, fmt.Sprintf("%.3f%s", out.Elapsed.Seconds(), mark))
			}
		}
		t.Rows = append(t.Rows, row)
		cfg.progress("  theta=%.0f%% done", 100*theta)
	}
	t.Note = "L=1; '*' marks runs that terminated without reaching theta (their cost is still charged, as in the paper's GADES rows)"
	return t, nil
}

// fig9Methods trims the Figure 9 legend in the quick regime: the
// GADED/GADES baselines and la=2 configurations dominate runtime
// without changing the growth shape.
func fig9Methods(cfg Config) []method {
	if cfg.Full {
		return fig6Methods()
	}
	return []method{
		ours(anonymize.Removal, 1),
		ours(anonymize.RemovalInsertion, 1),
		theirs2(),
	}
}

// theirs2 returns the strongest baseline (GADED-Max), the one the
// paper singles out for runtime comparison.
func theirs2() method {
	ms := fig6Methods()
	return ms[5] // GADED-Max
}

// fig10: runtime of Rem and Rem-Ins for L in {1,2} across Gnutella
// samples of 100/500/1000 vertices (log-scale bars in the paper; rows
// here).
func fig10(cfg Config) (Table, error) {
	sizes := []string{"gnutella100", "gnutella500"}
	if cfg.Full {
		sizes = append(sizes, "gnutella1000")
	}
	theta := 0.5
	type config struct {
		name string
		h    anonymize.Heuristic
		L    int
	}
	configs := []config{
		{"Rem L=1", anonymize.Removal, 1},
		{"Rem L=2", anonymize.Removal, 2},
		{"Rem-Ins L=1", anonymize.RemovalInsertion, 1},
		{"Rem-Ins L=2", anonymize.RemovalInsertion, 2},
	}
	cols := []string{"Algorithm"}
	for _, key := range sizes {
		cols = append(cols, key)
	}
	t := Table{
		Title:   "Runtime (seconds) by graph size, Gnutella, theta=50% (paper Fig. 10)",
		Columns: cols,
	}
	for _, c := range configs {
		row := []string{c.name}
		for _, key := range sizes {
			// The paper's Fig. 10 bars for Rem-Ins at n=1000 reflect
			// hours of work; in the quick regime the largest Rem-Ins
			// cell is skipped.
			if !cfg.Full && c.h == anonymize.RemovalInsertion && key != "gnutella100" {
				row = append(row, "skipped")
				continue
			}
			g, err := dataset.GenerateByKey(key, cfg.Seed)
			if err != nil {
				return Table{}, err
			}
			out := ours(c.h, 1).run(g, c.L, theta, cfg.Seed, cfg.cellBudget())
			if out.Graph == nil {
				row = append(row, "-")
				continue
			}
			mark := ""
			if !out.Satisfied {
				mark = "*"
			}
			row = append(row, fmt.Sprintf("%.3f%s", out.Elapsed.Seconds(), mark))
			cfg.progress("  %s %s done", c.name, key)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Note = "la=1; '*' = terminated without reaching theta; quick regime skips the costliest Rem-Ins cells"
	return t, nil
}

// acmSizes returns the ACM coauthorship scale sweep: the paper runs
// 1000..10000 vertices; the quick regime scales down per DESIGN.md.
func (c Config) acmSizes() []int {
	if c.Full {
		return []int{1000, 2000, 3000, 4000}
	}
	return []int{200, 400, 600, 800}
}

// acmThetas returns the Figure 11/12 theta sweep (50%..90%).
func (c Config) acmThetas() []float64 {
	if c.Full {
		return []float64{0.9, 0.8, 0.7, 0.6, 0.5}
	}
	return []float64{0.9, 0.7, 0.5}
}

// fig11: runtime of Edge Removal vs graph size on ACM-style
// coauthorship graphs for several theta.
func fig11(cfg Config) (Table, error) {
	t, err := acmSweep(cfg, func(out runOutcome, _ float64) string {
		return fmt.Sprintf("%.3f", out.Elapsed.Seconds())
	})
	t.Title = "Runtime (seconds) vs size, ACM coauthorship, Rem, L=1 (paper Fig. 11)"
	return t, err
}

// fig12: distortion of Edge Removal vs graph size, same sweep. The
// paper's headline: larger graphs reach the same privacy level with
// proportionally less distortion.
func fig12(cfg Config) (Table, error) {
	t, err := acmSweep(cfg, func(out runOutcome, d float64) string {
		return fmtPct(d)
	})
	t.Title = "Distortion vs size, ACM coauthorship, Rem, L=1 (paper Fig. 12)"
	return t, err
}

// acmSweep runs Edge Removal across the ACM size x theta grid and
// renders one cell per (size, theta) via render(out, distortion).
func acmSweep(cfg Config, render func(runOutcome, float64) string) (Table, error) {
	sizes := cfg.acmSizes()
	thetas := cfg.acmThetas()
	cols := []string{"vertices"}
	for _, theta := range thetas {
		cols = append(cols, "theta="+fmtPct(theta))
	}
	t := Table{Columns: cols}
	rem := ours(anonymize.Removal, 1)
	for _, n := range sizes {
		g := dataset.Generate(dataset.ACM(n), cfg.Seed)
		row := []string{fmt.Sprintf("%d", n)}
		for _, theta := range thetas {
			out := rem.run(g, 1, theta, cfg.Seed, cfg.cellBudget())
			if out.Graph == nil || !out.Satisfied {
				row = append(row, "-")
				continue
			}
			row = append(row, render(out, metrics.Distortion(g, out.Graph)))
		}
		t.Rows = append(t.Rows, row)
		cfg.progress("  n=%d done", n)
	}
	t.Note = "ACM stand-in generated at each size (paper crawls 10k authors; see DESIGN.md scale substitution)"
	return t, nil
}
