package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestExtBitBFSEnginesAgree(t *testing.T) {
	tab, err := Run("ext-bitbfs", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Fatalf("engines disagree on %v", row)
		}
	}
}

// The trade-off the experiment exists to demonstrate: on every dataset
// row, k-isomorphism pays strictly more distortion than Edge Removal at
// the matched confidence target, and shatters the graph into at least k
// components.
func TestExtKIsoTradeoffShape(t *testing.T) {
	tab, err := Run("ext-kiso", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	pct := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad percent cell %q: %v", s, err)
		}
		return v
	}
	for _, row := range tab.Rows {
		k, _ := strconv.Atoi(row[1])
		kisoDist, remDist := pct(row[3]), pct(row[5])
		if kisoDist <= remDist {
			t.Errorf("%s k=%d: kiso distortion %v%% <= Rem %v%%; expected the opposite", row[0], k, kisoDist, remDist)
		}
		comps, _ := strconv.Atoi(row[4])
		if comps < k {
			t.Errorf("%s k=%d: only %d components after k-iso", row[0], k, comps)
		}
		conf, err := strconv.ParseFloat(row[7], 64)
		if err != nil {
			t.Fatalf("bad confidence cell %q", row[7])
		}
		theta := pct(row[2]) / 100
		if conf > theta+1e-9 {
			t.Errorf("%s k=%d: Rem left maxConf %v > theta %v", row[0], k, conf, theta)
		}
	}
}

func TestExtAnnealRuns(t *testing.T) {
	cfg := fastCfg()
	tab, err := Run("ext-anneal", cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * len(cfg.acmThetas()) // two datasets
	if len(tab.Rows) != wantRows {
		t.Fatalf("rows=%d, want %d", len(tab.Rows), wantRows)
	}
	for _, row := range tab.Rows {
		for i, cell := range row {
			if cell == "" {
				t.Fatalf("empty cell %d in %v", i, row)
			}
		}
	}
}

func TestExtCentralityShape(t *testing.T) {
	cfg := fastCfg()
	tab, err := Run("ext-centrality", cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * len(cfg.acmThetas())
	if len(tab.Rows) != wantRows {
		t.Fatalf("rows=%d, want %d", len(tab.Rows), wantRows)
	}
	for _, row := range tab.Rows {
		for i, cell := range row {
			if cell == "" {
				t.Fatalf("empty cell %d in %v", i, row)
			}
		}
	}
}

// ext-rmat exists to demonstrate one claim: the R-MAT stand-in spreads
// degree more than the community stand-in on every heavy-tail sample,
// closing the documented Table 3 residual.
func TestExtRMATClosesDispersionGap(t *testing.T) {
	tab, err := Run("ext-rmat", fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows=%d, want 4", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		published, _ := strconv.ParseFloat(row[1], 64)
		standIn, _ := strconv.ParseFloat(row[2], 64)
		rmat, _ := strconv.ParseFloat(row[3], 64)
		if !(rmat > standIn) {
			t.Errorf("%s: R-MAT STDD %v not above stand-in %v", row[0], rmat, standIn)
		}
		if !(standIn < published) {
			t.Errorf("%s: stand-in STDD %v not below published %v — residual gone?", row[0], standIn, published)
		}
	}
}
