package experiments

import (
	"repro/internal/dataset"
	"repro/internal/graph"
	"repro/internal/metrics"
)

func init() {
	register("fig7a", fig7a)
	register("fig7b", fig7b)
	register("fig8a", fig8a)
	register("fig8b", fig8b)
	register("fig8c", fig8c)
}

// fig7a: Earth Mover's Distance between the degree distributions of the
// original and anonymized Enron sample vs theta, L = 1.
func fig7a(cfg Config) (Table, error) {
	t, err := utilitySweep(cfg, cfg.fig6Key("enron100", "enron500"), 1, fig6Methods(), metrics.DegreeEMD)
	t.Title = "EMD of degree distributions vs theta, Enron, L=1 (paper Fig. 7a)"
	return t, err
}

// fig7b: EMD between the geodesic-distance distributions, same setup.
func fig7b(cfg Config) (Table, error) {
	t, err := utilitySweep(cfg, cfg.fig6Key("enron100", "enron500"), 1, fig6Methods(), metrics.GeodesicEMD)
	t.Title = "EMD of geodesic distributions vs theta, Enron, L=1 (paper Fig. 7b)"
	return t, err
}

// fig8a: mean absolute difference of local clustering coefficients vs
// theta on the Wikipedia sample, L = 1, all heuristics.
func fig8a(cfg Config) (Table, error) {
	t, err := utilitySweep(cfg, cfg.fig6Key("wikipedia100", "wikipedia500"), 1, fig6Methods(), metrics.MeanClusteringDelta)
	t.Title = "Mean |dCC| vs theta, Wikipedia, L=1 (paper Fig. 8a)"
	return t, err
}

// fig8b: mean |dCC| vs theta on Epinions(Trust), L = 2; our heuristics
// only.
func fig8b(cfg Config) (Table, error) {
	t, err := utilitySweep(cfg, "epinions-trust100", 2, oursOnlyMethods(), metrics.MeanClusteringDelta)
	t.Title = "Mean |dCC| vs theta, Epinions(Trust), L=2 (paper Fig. 8b)"
	return t, err
}

// fig8c: mean |dCC| vs theta on Epinions(Distrust) at la = 1 for
// L = 1..4.
func fig8c(cfg Config) (Table, error) {
	key := "epinions-distrust100"
	g, err := graphFor(cfg, key)
	if err != nil {
		return Table{}, err
	}
	methods := varyLMethods()
	maxL := cfg.quickMaxL()
	cols := []string{"theta"}
	kept := methods[:0]
	for _, m := range methods {
		if m.L <= maxL {
			kept = append(kept, m)
			cols = append(cols, m.Name)
		}
	}
	t := Table{
		Title:   "Mean |dCC| vs theta, Epinions(Distrust), la=1, L=1..4 (paper Fig. 8c)",
		Columns: cols,
	}
	for _, theta := range cfg.thetas() {
		row := []string{fmtPct(theta)}
		for _, m := range kept {
			out, ok, timedOut := bestOf(cfg, m.method, g, m.L, theta)
			v := ""
			if ok {
				v = fmtF(metrics.MeanClusteringDelta(g, out.Graph))
			}
			row = append(row, cell(ok, timedOut, v))
		}
		t.Rows = append(t.Rows, row)
		cfg.progress("  theta=%.0f%% done", 100*theta)
	}
	t.Note = "dataset " + key + ", la=1; '-' = no L-opaque graph found"
	return t, nil
}

// graphFor generates the named dataset stand-in under the experiment
// seed.
func graphFor(cfg Config, key string) (*graph.Graph, error) {
	return dataset.GenerateByKey(key, cfg.Seed)
}
