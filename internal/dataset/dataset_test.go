package dataset

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

func TestCatalogsComplete(t *testing.T) {
	if got := len(Originals()); got != 7 {
		t.Fatalf("Originals has %d entries, want 7 (paper Table 1)", got)
	}
	if got := len(Samples()); got < 12 {
		t.Fatalf("Samples has %d entries, want >= 12 (paper Table 3)", got)
	}
}

func TestSampleSpecsConsistent(t *testing.T) {
	for _, s := range Samples() {
		if s.N <= 0 || s.M < 0 {
			t.Errorf("%s: bad size n=%d m=%d", s.Key, s.N, s.M)
		}
		// Average degree must equal 2m/n (as in Table 3).
		want := 2 * float64(s.M) / float64(s.N)
		if math.Abs(want-s.AvgDegree) > 0.05 {
			t.Errorf("%s: avg degree %v inconsistent with 2m/n = %v", s.Key, s.AvgDegree, want)
		}
	}
}

func TestByKeyAndKeys(t *testing.T) {
	spec, ok := ByKey("google100")
	if !ok || spec.N != 100 || spec.M != 746 {
		t.Fatalf("google100 lookup: %+v ok=%v", spec, ok)
	}
	if _, ok := ByKey("nonexistent"); ok {
		t.Fatal("bogus key found")
	}
	keys := Keys()
	if len(keys) != len(Samples()) {
		t.Fatal("Keys length mismatch")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatal("Keys not sorted")
		}
	}
}

func TestACMScaling(t *testing.T) {
	a := ACM(1000)
	if a.M < 3800 || a.M > 4100 {
		t.Fatalf("ACM(1000) edges = %d, want ~3979 (paper: 3874)", a.M)
	}
	b := ACM(10000)
	if b.M < 39000 || b.M > 40500 {
		t.Fatalf("ACM(10000) edges = %d, want ~39788", b.M)
	}
	if a.Key != "acm1000" {
		t.Fatalf("key = %q", a.Key)
	}
}

func TestGenerateMatchesSpecSizes(t *testing.T) {
	for _, key := range []string{"google100", "epinions100", "gnutella100", "wikipedia100"} {
		spec, _ := ByKey(key)
		g := Generate(spec, 42)
		if g.N() != spec.N {
			t.Errorf("%s: n = %d, want %d", key, g.N(), spec.N)
		}
		if g.M() != spec.M {
			t.Errorf("%s: m = %d, want %d", key, g.M(), spec.M)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", key, err)
		}
	}
}

func TestGenerateCalibratesStatistics(t *testing.T) {
	// The emulator must land in the right statistical regime: degree
	// moments within a loose band, clustering near the target for
	// clustered datasets.
	for _, key := range []string{"google100", "enron100", "gnutella100"} {
		spec, _ := ByKey(key)
		g := Generate(spec, 7)
		stats := metrics.Degrees(g)
		if math.Abs(stats.Average-spec.AvgDegree) > 0.2 {
			t.Errorf("%s: avg degree %v, spec %v", key, stats.Average, spec.AvgDegree)
		}
		acc := metrics.AverageClustering(g)
		if spec.AvgClusterC >= 0.3 && acc < spec.AvgClusterC-0.15 {
			t.Errorf("%s: ACC %v too far below spec %v", key, acc, spec.AvgClusterC)
		}
		if spec.AvgClusterC < 0.1 && acc > 0.25 {
			t.Errorf("%s: ACC %v too high for a low-clustering dataset (spec %v)", key, acc, spec.AvgClusterC)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := ByKey("gnutella100")
	a := Generate(spec, 99)
	b := Generate(spec, 99)
	if !a.Equal(b) {
		t.Fatal("same seed produced different graphs")
	}
	c := Generate(spec, 100)
	if a.Equal(c) {
		t.Fatal("different seeds produced identical graphs (suspicious)")
	}
}

func TestGenerateByKey(t *testing.T) {
	if _, err := GenerateByKey("nope", 1); err == nil {
		t.Fatal("unknown key accepted")
	}
	g, err := GenerateByKey("epinions100", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("n = %d", g.N())
	}
}

func TestGenerateACMSample(t *testing.T) {
	spec := ACM(500)
	g := Generate(spec, 3)
	if g.N() != 500 || g.M() != spec.M {
		t.Fatalf("ACM(500) generated n=%d m=%d, want %d, %d", g.N(), g.M(), spec.N, spec.M)
	}
	// Coauthorship networks are strongly clustered.
	if acc := metrics.AverageClustering(g); acc < 0.2 {
		t.Fatalf("ACM ACC = %v, want clustered (>= 0.2)", acc)
	}
}

func TestGenerateByKeyDynamicACM(t *testing.T) {
	g, err := GenerateByKey("acm150", 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 150 {
		t.Fatalf("N = %d, want 150", g.N())
	}
	for _, bad := range []string{"acm", "acm5", "acmx", "xacm100"} {
		if _, err := GenerateByKey(bad, 1); err == nil {
			t.Errorf("key %q accepted, want error", bad)
		}
	}
}

func TestParseACMKey(t *testing.T) {
	cases := []struct {
		key string
		n   int
		ok  bool
	}{
		{"acm1000", 1000, true},
		{"acm10", 10, true},
		{"acm9", 0, false},
		{"acm", 0, false},
		{"acm-3", 0, false},
		{"enron100", 0, false},
	}
	for _, c := range cases {
		n, ok := parseACMKey(c.key)
		if n != c.n || ok != c.ok {
			t.Errorf("parseACMKey(%q) = %d, %v; want %d, %v", c.key, n, ok, c.n, c.ok)
		}
	}
}
