// Package dataset catalogs the seven datasets of the paper's evaluation
// (Tables 1-3) and generates calibrated synthetic stand-ins for them.
//
// The paper samples SNAP network files and an ACM Digital Library crawl;
// neither is available offline, so — per DESIGN.md's substitution rule —
// each sampled graph is emulated by a seeded generator that matches the
// published statistics of Table 3: vertex count, edge count, mean degree,
// degree standard deviation, and average clustering coefficient. The
// anonymization algorithms consume only graph structure, so matching
// these statistics reproduces the regimes (sparse vs. dense, clustered
// vs. tree-like, homogeneous vs. heavy-tailed degrees) that drive the
// paper's experimental trends.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
)

// OriginalSpec is a Table 1 + Table 2 row: the full dataset the paper
// sampled from.
type OriginalSpec struct {
	Name        string
	Nodes       int
	Links       int
	NodeKind    string
	LinkKind    string
	Diameter    int
	AvgDegree   float64
	DegreeStdD  float64
	AvgClusterC float64
}

// SampleSpec is a Table 3 row: a sampled graph used in the experiments,
// together with its published statistics.
type SampleSpec struct {
	// Key is the registry identifier, e.g. "google100".
	Key string
	// Dataset is the source dataset name, e.g. "Google".
	Dataset string
	// N and M are the sampled vertex and edge counts.
	N, M int
	// Diameter, AvgDegree, DegreeStdD, AvgClusterC are the published
	// sample statistics the emulator calibrates toward.
	Diameter    int
	AvgDegree   float64
	DegreeStdD  float64
	AvgClusterC float64
}

// Originals returns the Table 1/2 catalog.
func Originals() []OriginalSpec {
	return []OriginalSpec{
		{"Google", 875713, 5105039, "Web pages", "Hyperlinks", 22, 11.6, 16.4, 0.6047},
		{"Berkeley-Stanford", 685230, 7600595, "Web pages", "Hyperlinks", 669, 22.1, 10.99, 0.6149},
		{"Epinions", 132000, 841372, "Users", "Trust statements", 9, 12.7, 32.68, 0.1062},
		{"Enron", 36692, 367662, "Email addresses", "Transferred emails", 12, 20, 18.58, 0.4970},
		{"Gnutella", 10876, 39994, "Hosts", "Connections", 9, 7.4, 3.01, 0.0080},
		{"ACM Digital Library", 10000, 19894, "Authors", "Co-Authors", 400, 3.97, 6.23, 0.5279},
		{"Wikipedia", 7115, 103689, "Users and candidates", "Votes", 7, 29.1, 60.39, 0.2089},
	}
}

// Samples returns the Table 3 catalog of sampled graphs.
func Samples() []SampleSpec {
	return []SampleSpec{
		{"google100", "Google", 100, 746, 7, 14.92, 11.13, 0.76},
		{"google500", "Google", 500, 3104, 15, 12.42, 10.54, 0.70},
		{"google1000", "Google", 1000, 6445, 25, 12.89, 12.62, 0.70},
		{"bs500", "Berkeley-Stanford", 500, 4454, 6, 17.82, 21.50, 0.62},
		{"epinions100", "Epinions", 100, 65, 4, 1.3, 0.72, 0.04},
		{"enron100", "Enron", 100, 346, 4, 6.92, 9.28, 0.31},
		{"enron500", "Enron", 500, 5686, 4, 22.74, 25.81, 0.37},
		{"gnutella100", "Gnutella", 100, 116, 6, 2.32, 3.00, 0.05},
		{"gnutella500", "Gnutella", 500, 721, 8, 2.88, 3.19, 0.09},
		{"gnutella1000", "Gnutella", 1000, 1852, 8, 3.71, 3.51, 0.02},
		{"wikipedia100", "Wikipedia", 100, 919, 3, 18.38, 15.19, 0.54},
		{"wikipedia500", "Wikipedia", 500, 7244, 4, 28.98, 33.02, 0.39},
		// Section 6.3 additionally reports tiny Epinions(Trust) and
		// Gnutella samples with 130 and 232 edges for the L=2 and
		// varying-L experiments; Figure 8c uses an Epinions(Distrust)
		// sample with statistics akin to the Trust one.
		{"epinions-trust100", "Epinions", 100, 130, 5, 2.6, 1.4, 0.06},
		{"epinions-distrust100", "Epinions", 100, 124, 5, 2.48, 1.3, 0.05},
		{"gnutella-s100", "Gnutella", 100, 232, 6, 4.64, 3.4, 0.05},
	}
}

// ByKey returns the sample spec registered under the given key.
func ByKey(key string) (SampleSpec, bool) {
	for _, s := range Samples() {
		if s.Key == key {
			return s, true
		}
	}
	return SampleSpec{}, false
}

// Keys returns all registered sample keys, sorted.
func Keys() []string {
	specs := Samples()
	keys := make([]string, len(specs))
	for i, s := range specs {
		keys[i] = s.Key
	}
	sort.Strings(keys)
	return keys
}

// ACM returns the spec for an ACM Digital Library coauthorship sample of
// n vertices, the growing-size dataset of the paper's Figures 11 and 12
// (1000 to 10000 nodes, 3874 to 39788 edges: edge count grows linearly
// at just under 4 edges per author).
func ACM(n int) SampleSpec {
	m := int(math.Round(3.9788 * float64(n)))
	return SampleSpec{
		Key:         fmt.Sprintf("acm%d", n),
		Dataset:     "ACM Digital Library",
		N:           n,
		M:           m,
		Diameter:    40,
		AvgDegree:   2 * float64(m) / float64(n),
		DegreeStdD:  6.23,
		AvgClusterC: 0.5279,
	}
}

// Generate builds the calibrated synthetic stand-in for a sample spec.
// Clustered datasets (web and collaboration graphs) start from a
// community-block model whose internal density lands near the target
// clustering; tree-like datasets (peer-to-peer, trust) start from an
// erased configuration model over a lognormal degree sequence matching
// (AvgDegree, DegreeStdD). Both are adjusted to exactly M edges and then
// rewired toward AvgClusterC. Deterministic for a fixed seed.
func Generate(spec SampleSpec, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var g *graph.Graph
	if spec.AvgClusterC >= 0.25 {
		p := spec.AvgClusterC + 0.1
		if p > 0.95 {
			p = 0.95
		}
		g = gen.CommunityModel(spec.N, spec.M, p, rng)
	} else {
		degrees := gen.LogNormalDegrees(spec.N, spec.AvgDegree, spec.DegreeStdD, rng)
		g = gen.ConfigurationModel(degrees, rng)
	}
	gen.AdjustEdgeCount(g, spec.M, rng)
	if spec.AvgClusterC > 0.02 {
		budget := 60 * spec.N
		gen.CalibrateClustering(g, spec.AvgClusterC, 0.02, budget, rng)
	}
	return g
}

// GenerateByKey is Generate for a registered key.
func GenerateByKey(key string, seed int64) (*graph.Graph, error) {
	spec, ok := ByKey(key)
	if !ok {
		if n, isACM := parseACMKey(key); isACM {
			return Generate(ACM(n), seed), nil
		}
		return nil, fmt.Errorf("dataset: unknown sample key %q (known: %v, plus acm<N>)", key, Keys())
	}
	return Generate(spec, seed), nil
}

// parseACMKey recognizes the dynamic "acm<N>" keys of the Figure 11/12
// scale sweep, e.g. "acm2000".
func parseACMKey(key string) (n int, ok bool) {
	const prefix = "acm"
	if !strings.HasPrefix(key, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(key[len(prefix):])
	if err != nil || n < 10 {
		return 0, false
	}
	return n, true
}
