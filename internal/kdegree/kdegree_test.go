package kdegree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fixture"
	"repro/internal/graph"
	"repro/internal/opacity"
)

func TestAnonymizeSequenceValidation(t *testing.T) {
	if _, err := AnonymizeSequence([]int{1, 2}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := AnonymizeSequence([]int{1, 2}, 3); err == nil {
		t.Fatal("k>n accepted")
	}
	out, err := AnonymizeSequence(nil, 1)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v %v", out, err)
	}
}

func TestAnonymizeSequenceK1IsIdentity(t *testing.T) {
	in := []int{5, 1, 3, 3}
	out, err := AnonymizeSequence(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("k=1 changed the sequence: %v -> %v", in, out)
		}
	}
}

func TestAnonymizeSequenceSmallExact(t *testing.T) {
	// Sorted desc: [5 3 3 1]; k=2 optimal grouping is {5,3},{3,1} with
	// cost (5-3)+(3-1) = 4, better than one group of four (cost
	// (5-3)+(5-3)+(5-1) = 8).
	out, err := AnonymizeSequence([]int{5, 3, 3, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{5, 5, 3, 3} // aligned with input order [5 3 3 1]
	cost := 0
	for i := range out {
		cost += out[i] - []int{5, 3, 3, 1}[i]
	}
	if cost != 4 {
		t.Fatalf("cost = %d (out %v), want 4 (e.g. %v)", cost, out, want)
	}
	if !IsKAnonymous(out, 2) {
		t.Fatalf("result not 2-anonymous: %v", out)
	}
}

func TestAnonymizeSequenceProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	property := func(kRaw uint8) bool {
		n := 4 + rng.Intn(40)
		k := 1 + int(kRaw)%n
		if k > n {
			k = n
		}
		in := make([]int, n)
		for i := range in {
			in[i] = rng.Intn(10)
		}
		out, err := AnonymizeSequence(in, k)
		if err != nil {
			return false
		}
		// k-anonymous, element-wise >= input, and order-preserving on
		// the sorted view (a bigger input degree never gets a smaller
		// target).
		if !IsKAnonymous(out, k) {
			return false
		}
		for i := range in {
			if out[i] < in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAnonymizeSequenceMonotoneOnSorted(t *testing.T) {
	in := []int{9, 7, 7, 4, 4, 4, 2, 1}
	out, err := AnonymizeSequence(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Input is sorted descending, so targets must be too.
	for i := 1; i < len(out); i++ {
		if out[i] > out[i-1] {
			t.Fatalf("targets not monotone on sorted input: %v", out)
		}
	}
	if !IsKAnonymous(out, 3) {
		t.Fatalf("not 3-anonymous: %v", out)
	}
}

func TestIsKAnonymous(t *testing.T) {
	if !IsKAnonymous([]int{2, 2, 3, 3}, 2) {
		t.Fatal("2-anonymous sequence rejected")
	}
	if IsKAnonymous([]int{2, 2, 3}, 2) {
		t.Fatal("non-anonymous sequence accepted")
	}
	if !IsKAnonymous(nil, 5) {
		t.Fatal("empty sequence should be vacuously anonymous")
	}
}

func TestAnonymizeGraph(t *testing.T) {
	g := fixture.Figure1()
	res, err := Anonymize(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Supergraph: every original edge survives.
	for _, e := range g.Edges() {
		if !res.Graph.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost", e)
		}
	}
	// Input untouched.
	if g.M() != 10 {
		t.Fatal("input mutated")
	}
	if res.Realized {
		if !IsKAnonymous(res.Graph.Degrees(), 2) {
			t.Fatalf("realized but not 2-anonymous: %v", res.Graph.Degrees())
		}
	}
	if err := res.Graph.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(res.Inserted) != res.Graph.M()-g.M() {
		t.Fatalf("inserted %d but M grew by %d", len(res.Inserted), res.Graph.M()-g.M())
	}
}

func TestAnonymizeGraphValidation(t *testing.T) {
	if _, err := Anonymize(nil, 2); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := graph.New(3)
	if _, err := Anonymize(g, 5); err == nil {
		t.Fatal("k > n accepted")
	}
}

func TestAnonymizeRandomGraphsRealizeOrDegrade(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(30)
		g := graph.New(n)
		for i := 0; i < 2*n; i++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for _, k := range []int{2, 3} {
			res, err := Anonymize(g, k)
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Graph.Validate(); err != nil {
				t.Fatal(err)
			}
			// Target degrees always dominate originals.
			for v := 0; v < n; v++ {
				if res.TargetDegrees[v] < g.Degree(v) {
					t.Fatalf("target %d < original %d at %d", res.TargetDegrees[v], g.Degree(v), v)
				}
				if res.Graph.Degree(v) > res.TargetDegrees[v] {
					t.Fatalf("vertex %d overshot its target", v)
				}
			}
			if res.Realized && !IsKAnonymous(res.Graph.Degrees(), k) {
				t.Fatal("realized result is not k-anonymous")
			}
		}
	}
}

// TestIdentityProtectionDoesNotImplyLinkageProtection reproduces the
// paper's motivating claim (Section 1): a k-degree anonymous graph can
// still have maximum L-opacity 1, i.e. leak a linkage with certainty.
func TestIdentityProtectionDoesNotImplyLinkageProtection(t *testing.T) {
	// Two disjoint triangles plus a 4-cycle: every vertex has degree 2,
	// so the graph is 10-degree anonymous (n = 10) — perfect identity
	// protection. Yet the type {2,2} has pairs at distance 1, so the
	// 1-opacity is positive, and on the triangle-only subgraph it is
	// driven by certain adjacency among candidates.
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		g.AddEdge(e[0], e[1])
	}
	if !IsKAnonymous(g.Degrees(), 6) {
		t.Fatal("uniform-degree graph should be n-anonymous")
	}
	// All 6 vertices have degree 2; 6 of the 15 pairs are adjacent.
	lo := opacity.MaxLO(g, g.Degrees(), 1)
	if lo <= 0.3 {
		t.Fatalf("MaxLO = %v, expected substantial linkage disclosure", lo)
	}

	// And at L = 2 the linkage within each triangle is certain for
	// every pair that shares a triangle: 2-opacity still 6/15 + the
	// distance-2 pairs — here every pair within a triangle is at
	// distance <= 2, so 6 within-triangle pairs out of 15.
	lo2 := opacity.MaxLO(g, g.Degrees(), 2)
	if lo2 < lo {
		t.Fatalf("2-opacity %v below 1-opacity %v", lo2, lo)
	}
}
