// Package kdegree implements k-degree anonymity (Liu & Terzi, SIGMOD
// 2008), the identity-protection technique the paper's introduction
// contrasts with: a graph is k-degree anonymous when every degree value
// is shared by at least k vertices, so degree background knowledge
// never narrows a target to fewer than k candidates.
//
// The paper's motivating claim (Section 1, Figure 1) is that such
// protection does NOT prevent linkage disclosure: a k-degree anonymous
// graph can still let the adversary infer a short path between two
// targets with certainty. This package exists to demonstrate that claim
// quantitatively — the "motivation" experiment anonymizes graphs to
// k-degree anonymity and then measures their L-opacity, which remains
// high.
//
// The implementation follows Liu & Terzi's two phases:
//
//  1. Degree-sequence anonymization: dynamic programming transforms the
//     sorted degree sequence into a k-anonymous sequence of minimum
//     total increment (degrees may only grow, matching the edge-
//     insertion repair phase).
//  2. Graph construction: greedy edge insertion realizes the target
//     sequence on the original graph (the paper's "supergraph"
//     relaxation), connecting highest-deficit vertices first, a
//     ConstructGraph/Probing-style heuristic.
package kdegree

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// AnonymizeSequence transforms a degree sequence into a k-anonymous one
// of minimum total increment using Liu & Terzi's dynamic program. The
// input order is arbitrary; the result is aligned with the input (the
// vertex at index i receives target degree out[i] >= degrees[i]).
//
// The DP runs on the descending-sorted sequence: dp[i] is the minimal
// cost of anonymizing the first i degrees, where each group of
// consecutive sorted degrees is raised to the group's maximum. Groups
// have size in [k, 2k-1]; larger groups are never needed because any
// group of >= 2k splits into two valid groups of no greater cost.
func AnonymizeSequence(degrees []int, k int) ([]int, error) {
	n := len(degrees)
	if k < 1 {
		return nil, fmt.Errorf("kdegree: k must be >= 1, got %d", k)
	}
	if k > n && n > 0 {
		return nil, fmt.Errorf("kdegree: k=%d exceeds %d vertices", k, n)
	}
	if n == 0 || k == 1 {
		return append([]int(nil), degrees...), nil
	}

	// Sort descending, remembering original positions.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return degrees[idx[a]] > degrees[idx[b]] })
	d := make([]int, n)
	for i, j := range idx {
		d[i] = degrees[j]
	}

	// prefix[i] = sum of d[0:i]; groupCost(i, j) raises d[i:j] to d[i].
	prefix := make([]int, n+1)
	for i, v := range d {
		prefix[i+1] = prefix[i] + v
	}
	groupCost := func(i, j int) int { // half-open [i, j)
		return d[i]*(j-i) - (prefix[j] - prefix[i])
	}

	const inf = int(^uint(0) >> 1)
	dp := make([]int, n+1)  // dp[i]: min cost for first i entries
	cut := make([]int, n+1) // cut[i]: start of the last group
	for i := 1; i <= n; i++ {
		dp[i] = inf
		if i < k {
			continue
		}
		// The last group is d[t:i) with i-t in [k, 2k-1] (or the whole
		// prefix when i < 2k).
		lo := i - (2*k - 1)
		if lo < 0 {
			lo = 0
		}
		for t := lo; t+k <= i; t++ {
			if t != 0 && t < k {
				continue // a non-empty prefix shorter than k is invalid
			}
			if t != 0 && dp[t] == inf {
				continue
			}
			c := groupCost(t, i)
			if t != 0 {
				c += dp[t]
			}
			if c < dp[i] {
				dp[i] = c
				cut[i] = t
			}
		}
	}
	if dp[n] == inf {
		return nil, fmt.Errorf("kdegree: no k-anonymous grouping for n=%d, k=%d", n, k)
	}

	// Walk the cuts backward, assigning each group its maximum degree.
	target := make([]int, n)
	for end := n; end > 0; {
		start := cut[end]
		for i := start; i < end; i++ {
			target[i] = d[start]
		}
		end = start
	}

	// Un-sort back to input order.
	out := make([]int, n)
	for i, j := range idx {
		out[j] = target[i]
	}
	return out, nil
}

// IsKAnonymous reports whether every occupied degree value in the
// sequence is shared by at least k entries.
func IsKAnonymous(degrees []int, k int) bool {
	count := make(map[int]int)
	for _, d := range degrees {
		count[d]++
	}
	for _, c := range count {
		if c < k {
			return false
		}
	}
	return true
}

// Result reports a k-degree anonymization run.
type Result struct {
	// Graph is the anonymized supergraph of the input.
	Graph *graph.Graph
	// TargetDegrees is the k-anonymous degree sequence the construction
	// aimed for, aligned with vertex IDs.
	TargetDegrees []int
	// Inserted lists the added edges.
	Inserted []graph.Edge
	// Realized reports whether every vertex reached its target degree.
	// Greedy edge insertion cannot always realize a sequence exactly
	// (deficits may strand on a single vertex); the paper's authors use
	// relaxations in the same spirit.
	Realized bool
}

// Anonymize renders g k-degree anonymous by edge insertion: it computes
// the minimum-increment k-anonymous degree sequence and greedily
// connects the vertices with the largest remaining deficits, never
// duplicating an edge. The input graph is not modified.
func Anonymize(g *graph.Graph, k int) (Result, error) {
	if g == nil {
		return Result{}, fmt.Errorf("kdegree: nil graph")
	}
	target, err := AnonymizeSequence(g.Degrees(), k)
	if err != nil {
		return Result{}, err
	}
	work := g.Clone()
	var inserted []graph.Edge

	deficit := func(v int) int { return target[v] - work.Degree(v) }
	for {
		// Order vertices by descending deficit; connect the largest to
		// the next-largest non-adjacent vertices (Liu & Terzi's greedy
		// realization step).
		order := make([]int, work.N())
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := deficit(order[a]), deficit(order[b])
			if da != db {
				return da > db
			}
			return order[a] < order[b]
		})
		u := order[0]
		if deficit(u) <= 0 {
			break // all deficits settled
		}
		progressed := false
		for _, v := range order[1:] {
			if deficit(u) <= 0 {
				break
			}
			if deficit(v) <= 0 {
				break // order is sorted: no positive deficits remain
			}
			if v == u || work.HasEdge(u, v) {
				continue
			}
			work.AddEdge(u, v)
			inserted = append(inserted, graph.E(u, v))
			progressed = true
		}
		if !progressed {
			break // stranded deficit: cannot realize exactly
		}
	}

	realized := true
	for v := 0; v < work.N(); v++ {
		if work.Degree(v) != target[v] {
			realized = false
			break
		}
	}
	return Result{
		Graph:         work,
		TargetDegrees: target,
		Inserted:      inserted,
		Realized:      realized,
	}, nil
}
