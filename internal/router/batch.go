// Batch fan-out: one heterogeneous POST /v1/batch is partitioned by
// ring owner, the per-owner sub-batches run concurrently, and the
// per-item results merge back in request order. Item isolation
// survives the split — a sub-batch whose peer is unreachable yields
// synthesized 502 unavailable results for exactly its items, never an
// envelope-level failure for the rest.
package router

import (
	"encoding/json"
	"net/http"
	"sync"

	"repro/api"
)

// batchGroup is the slice of a batch owned by one routing key: the
// item indices in original order and the sub-batch to send.
type batchGroup struct {
	key     string
	indices []int
	req     api.BatchRequest
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req api.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		// Not a parseable batch: let one backend produce the canonical
		// validation error.
		p, perr := rt.proxy(r.Context(), proxyOpts{
			method: http.MethodPost, uri: requestURI(r), header: r.Header, body: body,
		})
		if p == nil {
			writeUnavailable(w, "", perr)
			return
		}
		relay(w, p)
		return
	}
	groups := partitionBatch(&req)
	if len(groups) <= 1 {
		// One owner (or an empty/invalid batch): forward whole, with
		// hydration healing a cold owner.
		key := ""
		if len(groups) == 1 {
			key = groups[0].key
		}
		p, err := rt.proxy(r.Context(), proxyOpts{
			method: http.MethodPost, uri: requestURI(r), header: r.Header, body: body,
			key: key, hydrateRef: key != "",
		})
		if p == nil {
			writeUnavailable(w, key, err)
			return
		}
		relay(w, p)
		return
	}

	results := make([]api.BatchItemResult, len(req.Items))
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g batchGroup) {
			defer wg.Done()
			rt.runBatchGroup(r, g, results)
		}(g)
	}
	wg.Wait()

	out := api.BatchResponse{Results: results}
	for i := range results {
		// Re-anchor indices to the original request and recount.
		results[i].Index = i
		if results[i].Error == nil && results[i].Status/100 == 2 {
			out.Succeeded++
		} else {
			out.Failed++
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// partitionBatch splits a batch by routing key. Items that name no
// graph of their own inherit the top-level GraphRef; items with no key
// at all group under "" and go to any healthy peer. The shared
// GraphRef is preserved on every sub-batch so the backend's injection
// semantics are unchanged.
func partitionBatch(req *api.BatchRequest) []batchGroup {
	order := []string{}
	byKey := map[string]*batchGroup{}
	for i, item := range req.Items {
		refs, inline := routingInfo(item.Request)
		key := ""
		switch {
		case len(refs) > 0:
			key = refs[0]
		case inline != nil:
			key = digestOf(inline)
		default:
			key = req.GraphRef
		}
		g, ok := byKey[key]
		if !ok {
			g = &batchGroup{key: key, req: api.BatchRequest{GraphRef: req.GraphRef}}
			byKey[key] = g
			order = append(order, key)
		}
		g.indices = append(g.indices, i)
		g.req.Items = append(g.req.Items, item)
	}
	out := make([]batchGroup, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// runBatchGroup executes one sub-batch and scatters its per-item
// results into the original index positions. An unreachable peer (or
// an envelope-level error) becomes a synthesized per-item error, so
// the merged response stays index-aligned and item-isolated.
func (rt *Router) runBatchGroup(r *http.Request, g batchGroup, results []api.BatchItemResult) {
	body, err := json.Marshal(g.req)
	if err != nil {
		rt.failBatchGroup(g, results, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}
	hdr := http.Header{"Content-Type": []string{"application/json"}}
	if auth := r.Header.Get("Authorization"); auth != "" {
		hdr.Set("Authorization", auth)
	}
	p, err := rt.proxy(r.Context(), proxyOpts{
		method: http.MethodPost, uri: "/v1/batch", header: hdr, body: body,
		key: g.key, hydrateRef: g.key != "",
	})
	if p == nil {
		rt.failBatchGroup(g, results, http.StatusBadGateway, api.CodeUnavailable,
			"no backend available for this batch slice: "+errString(err))
		return
	}
	var resp api.BatchResponse
	if p.resp.StatusCode != http.StatusOK || json.Unmarshal(p.body, &resp) != nil || len(resp.Results) != len(g.indices) {
		status := p.resp.StatusCode
		code := api.CodeInternal
		msg := "backend batch answer was not item-aligned"
		var er api.ErrorResponse
		if json.Unmarshal(p.body, &er) == nil && er.Err != nil {
			code, msg = er.Err.Code, er.Err.Message
		}
		rt.failBatchGroup(g, results, status, code, msg)
		return
	}
	for j, idx := range g.indices {
		results[idx] = resp.Results[j]
	}
}

// failBatchGroup synthesizes one error result per item of the group.
func (rt *Router) failBatchGroup(g batchGroup, results []api.BatchItemResult, status int, code, msg string) {
	for _, idx := range g.indices {
		results[idx] = api.BatchItemResult{
			Index:  idx,
			Op:     g.req.Items[0].Op, // overwritten below per item
			Status: status,
			Error:  &api.Error{Code: code, Message: msg},
		}
	}
	for j, idx := range g.indices {
		results[idx].Op = g.req.Items[j].Op
	}
}
