// Peer health: each backend gets a peerState tracking request
// outcomes and a health verdict. Marking is both passive — every
// forwarded request that dies on transport errors counts against the
// peer — and active: a prober goroutine GETs each peer's /healthz on
// an interval. A peer is ejected after FailAfter consecutive failures
// and re-admitted on the first success, so a restarted backend rejoins
// within one probe interval without operator action.
//
// Ejection only reorders, never strands: an ejected peer is skipped
// during candidate selection, but when every candidate is ejected the
// router still tries them all before answering 502 — a wrong health
// verdict must cost latency, not availability.
package router

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// peerState is the router's view of one backend.
type peerState struct {
	addr string

	requests  atomic.Int64 // responses received, any status
	errors    atomic.Int64 // transport errors (no HTTP response)
	failovers atomic.Int64 // requests that moved on to another peer

	mu       sync.Mutex
	healthy  bool
	fails    int // consecutive failures since the last success
	lastErr  string
	lastSeen time.Time
}

func newPeerState(addr string) *peerState {
	// Peers start healthy: the tier must serve immediately after boot,
	// before the first probe round completes.
	return &peerState{addr: addr, healthy: true}
}

// markSuccess records a working exchange with the peer and re-admits
// it if it was ejected.
func (p *peerState) markSuccess() {
	p.mu.Lock()
	p.fails = 0
	p.healthy = true
	p.lastErr = ""
	p.lastSeen = time.Now()
	p.mu.Unlock()
}

// markFailure records a transport-level failure and ejects the peer
// once failAfter consecutive failures accumulate. It reports whether
// the peer is still considered healthy.
func (p *peerState) markFailure(err error, failAfter int) bool {
	p.mu.Lock()
	p.fails++
	if err != nil {
		p.lastErr = err.Error()
	}
	if p.fails >= failAfter {
		p.healthy = false
	}
	h := p.healthy
	p.mu.Unlock()
	return h
}

func (p *peerState) isHealthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy
}

func (p *peerState) snapshot() (healthy bool, lastErr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.healthy, p.lastErr
}

// probeLoop actively checks every peer's /healthz until the router is
// closed. A 2xx answer is a success; anything else — transport error
// or status — is a failure.
func (rt *Router) probeLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.done:
			return
		case <-t.C:
			rt.probeAll()
		}
	}
}

func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, p := range rt.peers {
		wg.Add(1)
		go func(p *peerState) {
			defer wg.Done()
			rt.probe(p)
		}(p)
	}
	wg.Wait()
	rt.refreshHealthGauges()
}

func (rt *Router) probe(p *peerState) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.addr+"/healthz", nil)
	if err != nil {
		p.markFailure(err, rt.cfg.FailAfter)
		return
	}
	resp, err := rt.httpc.Do(req)
	if err != nil {
		p.markFailure(err, rt.cfg.FailAfter)
		return
	}
	drainClose(resp)
	if resp.StatusCode/100 != 2 {
		p.markFailure(errHTTPStatus(resp.StatusCode), rt.cfg.FailAfter)
		return
	}
	p.markSuccess()
}

// healthyPeers returns the addresses currently considered healthy, in
// sorted ring-membership order.
func (rt *Router) healthyPeers() []string {
	out := make([]string, 0, len(rt.order))
	for _, addr := range rt.order {
		if rt.peers[addr].isHealthy() {
			out = append(out, addr)
		}
	}
	return out
}
