// Consistent-hash ring: the placement function of the sharded serving
// tier. Graph digests hash onto the same 64-bit circle as the peers'
// virtual nodes; a graph is owned by the first peer point clockwise
// from its hash. Virtual nodes smooth the load split, and consistent
// hashing bounds churn: adding or removing one of n peers remaps only
// ~1/n of the keyspace, so a scale event invalidates a slice of the
// tier's warm APSP stores instead of all of them.
//
// Everything is deterministic — FNV-1a over "peer#vnode" for points
// and over the key for lookups — so every router instance, across
// restarts and processes, agrees on placement with no coordination.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring over a fixed peer set.
// Membership changes build a new Ring; lookups are lock-free.
type Ring struct {
	members []string // sorted, unique
	vnodes  int
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	peer string
}

// NewRing builds a ring with vnodes virtual nodes per peer. Peers are
// deduplicated; order does not matter (placement depends only on the
// set). It returns an error when no peers remain or vnodes is not
// positive, because an empty ring has no owner for anything.
func NewRing(peers []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		return nil, fmt.Errorf("router: vnodes must be positive, got %d", vnodes)
	}
	seen := make(map[string]struct{}, len(peers))
	members := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" {
			continue
		}
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		members = append(members, p)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one peer")
	}
	sort.Strings(members)
	points := make([]ringPoint, 0, len(members)*vnodes)
	for _, m := range members {
		for i := 0; i < vnodes; i++ {
			points = append(points, ringPoint{
				hash: hashKey(fmt.Sprintf("%s#%d", m, i)),
				peer: m,
			})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].peer < points[j].peer
	})
	return &Ring{members: members, vnodes: vnodes, points: points}, nil
}

// hashKey is FNV-1a 64 with a splitmix64 finalizer. FNV because it is
// stable across processes and Go versions — unlike maphash, which is
// the whole point: every router must agree. The finalizer because raw
// FNV leaves the high bits (which sort.Search keys on) poorly mixed
// for short inputs, skewing vnode placement.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the peer that owns key: the first ring point at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) string {
	return r.points[r.search(key)].peer
}

// Candidates returns every distinct peer in ring order starting at the
// key's owner. Index 0 is the owner; the rest is the deterministic
// failover order the router walks when the owner is down.
func (r *Ring) Candidates(key string) []string {
	out := make([]string, 0, len(r.members))
	seen := make(map[string]struct{}, len(r.members))
	for i, start := 0, r.search(key); len(out) < len(r.members) && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		out = append(out, p)
	}
	return out
}

// search returns the index of the first point at or after key's hash,
// wrapping to 0 past the last point.
func (r *Ring) search(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Members returns the sorted peer set.
func (r *Ring) Members() []string {
	out := make([]string, len(r.members))
	copy(out, r.members)
	return out
}

// VNodes returns the virtual-node count per peer.
func (r *Ring) VNodes() int { return r.vnodes }
