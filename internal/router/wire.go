// Wire helpers: the router emits the same api.ErrorResponse envelope
// lopserve does, so a client cannot tell which tier rejected it —
// except by the codes only the router produces (502 unavailable when
// every candidate peer is down).
package router

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/api"
)

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErrorCode emits the standard error envelope.
func writeErrorCode(w http.ResponseWriter, status int, code, msg string, details map[string]any) {
	writeJSON(w, status, api.ErrorResponse{
		Message: msg,
		Err:     &api.Error{Code: code, Message: msg, Details: details},
	})
}

// writeUnavailable is the router's terminal failure: every peer that
// could own the request is unreachable. 502 (not 503) because the
// proxy itself is fine — its upstreams are not — and the code is
// unavailable so clients branch the same way they do on a draining
// backend.
func writeUnavailable(w http.ResponseWriter, key string, lastErr error) {
	details := map[string]any{}
	if key != "" {
		details["graph_ref"] = key
	}
	if lastErr != nil {
		details["last_error"] = lastErr.Error()
	}
	writeErrorCode(w, http.StatusBadGateway, api.CodeUnavailable,
		"no backend available for this request", details)
}

func methodNotAllowed(w http.ResponseWriter, allowed ...string) {
	w.Header().Set("Allow", strings.Join(allowed, ", "))
	writeErrorCode(w, http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
		fmt.Sprintf("use %s", strings.Join(allowed, " or ")), nil)
}

// hopByHop are the headers a proxy must not blindly relay (RFC 9110
// §7.6.1).
var hopByHop = map[string]bool{
	"Connection":          true,
	"Keep-Alive":          true,
	"Proxy-Authenticate":  true,
	"Proxy-Authorization": true,
	"Te":                  true,
	"Trailer":             true,
	"Transfer-Encoding":   true,
	"Upgrade":             true,
}

// copyHeaders relays end-to-end response headers. Content-Length is
// dropped when the body was re-buffered (the write path recomputes it).
func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		if hopByHop[k] || k == "Content-Length" {
			continue
		}
		dst[k] = append([]string(nil), vs...)
	}
}
