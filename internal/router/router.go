// Package router is the sharded serving tier's front door: a thin
// HTTP proxy that consistent-hashes graph digests onto a ring of
// lopserve backends and forwards each request to the peer that owns
// its graph. One backend's registry and APSP store cache thus serve
// every request for a given graph, so the tier's aggregate store
// memory scales with the number of peers instead of every peer
// rebuilding every graph.
//
// The router speaks the same v1 wire contract as a single lopserve:
// clients point at the router and do not change. Routing is by content
// address — graph_ref (or published_ref / original_ref) when present,
// else the digest of the inline graph, computed locally with the same
// canonicalization the registry uses. Batch requests fan out per
// owner and merge in order; job endpoints follow the peer that
// accepted the submission; everything else picks a healthy peer.
//
// When the owner is down, requests fail over along the ring's
// deterministic candidate order. When the owner is up but cold — a
// restarted or newly added peer that misses a graph another peer still
// holds — the router hydrates it: fetch the graph's snapshot envelope
// from a donor peer, install it on the owner, retry the request. That
// single mechanism heals restarts and migrates graphs to their ring
// owner after membership changes, with zero APSP rebuilds.
package router

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Config configures a Router. Peers is required; everything else has
// a serviceable default.
type Config struct {
	// Peers are the lopserve base URLs forming the ring, e.g.
	// "http://127.0.0.1:8080". Order does not matter; placement depends
	// only on the set.
	Peers []string
	// VNodes is the number of virtual nodes per peer (default 64).
	VNodes int
	// HealthInterval is the active probe period (default 2s); it also
	// bounds each probe's timeout.
	HealthInterval time.Duration
	// FailAfter is the number of consecutive failures (probe or
	// forwarded-request transport errors) that ejects a peer (default 2).
	FailAfter int
	// MaxBodyBytes caps buffered request bodies (default 32 MiB —
	// large enough for any JSON document lopserve itself accepts).
	MaxBodyBytes int64
	// MaxJobRoutes caps the job-id -> peer routing table (default 4096).
	MaxJobRoutes int
	// RequestLog, when non-nil, receives one JSON line per request.
	RequestLog io.Writer
	// Client overrides the outbound HTTP client (tests). The default
	// client has no overall timeout: job event streams are long-lived.
	Client *http.Client
}

func (c *Config) setDefaults() {
	if c.VNodes == 0 {
		c.VNodes = 64
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.FailAfter == 0 {
		c.FailAfter = 2
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxJobRoutes == 0 {
		c.MaxJobRoutes = 4096
	}
}

// Validate rejects configurations the router cannot serve with.
func (c *Config) Validate() error {
	if len(c.Peers) == 0 {
		return fmt.Errorf("router: at least one -peer is required")
	}
	for _, p := range c.Peers {
		u, err := url.Parse(p)
		if err != nil {
			return fmt.Errorf("router: peer %q: %w", p, err)
		}
		if u.Scheme != "http" && u.Scheme != "https" {
			return fmt.Errorf("router: peer %q: scheme must be http or https", p)
		}
		if u.Host == "" {
			return fmt.Errorf("router: peer %q: missing host", p)
		}
		if u.Path != "" && u.Path != "/" {
			return fmt.Errorf("router: peer %q: must not carry a path", p)
		}
	}
	if c.VNodes < 0 || c.FailAfter < 0 || c.MaxBodyBytes < 0 || c.MaxJobRoutes < 0 {
		return fmt.Errorf("router: negative limits make no sense")
	}
	if c.HealthInterval < 0 {
		return fmt.Errorf("router: negative health interval")
	}
	return nil
}

// NormalizePeer makes a -peer flag value a base URL: a bare host:port
// gets the http scheme, and any trailing slash is dropped.
func NormalizePeer(p string) string {
	p = strings.TrimRight(strings.TrimSpace(p), "/")
	if p == "" {
		return p
	}
	if !strings.Contains(p, "://") {
		p = "http://" + p
	}
	return p
}

// Router is the proxy. It implements http.Handler.
type Router struct {
	cfg     Config
	ring    *Ring
	order   []string // ring members, sorted — iteration order everywhere
	peers   map[string]*peerState
	httpc   *http.Client
	mux     *http.ServeMux
	handler http.Handler

	metrics *obs.HTTPMetrics
	gauges  *routerGauges

	jobs *jobRoutes

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a Router and starts its health prober. Call Close on
// shutdown.
func New(cfg Config) (*Router, error) {
	cfg.setDefaults()
	for i, p := range cfg.Peers {
		cfg.Peers[i] = NormalizePeer(p)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ring, err := NewRing(cfg.Peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	httpc := cfg.Client
	if httpc == nil {
		httpc = &http.Client{}
	}
	rt := &Router{
		cfg:   cfg,
		ring:  ring,
		order: ring.Members(),
		peers: make(map[string]*peerState, len(cfg.Peers)),
		httpc: httpc,
		mux:   http.NewServeMux(),
		jobs:  newJobRoutes(cfg.MaxJobRoutes),
		done:  make(chan struct{}),
	}
	for _, addr := range rt.order {
		rt.peers[addr] = newPeerState(addr)
	}
	rt.metrics = obs.NewHTTPMetrics(obs.NewRegistry())
	rt.gauges = newRouterGauges(rt.metrics.Registry())
	rt.initRingGauges()

	rt.routes()
	mw := []obs.Middleware{obs.RequestID()}
	if cfg.RequestLog != nil {
		mw = append(mw, obs.Logger(cfg.RequestLog))
	}
	mw = append(mw, rt.metrics.Middleware(rt.routeOf))
	rt.handler = obs.Chain(mw...)(rt.mux)

	rt.wg.Add(1)
	go rt.probeLoop()
	return rt, nil
}

// routes installs the route table. Single-graph operations share one
// body-sniffing forwarder; the rest have dedicated strategies.
func (rt *Router) routes() {
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/v1/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/metrics", rt.handleMetrics)
	rt.mux.HandleFunc("/v1/stats", rt.handleStats)

	for _, op := range []string{
		"/v1/properties", "/v1/opacity", "/v1/anonymize",
		"/v1/kiso", "/v1/audit", "/v1/continuous_audit", "/v1/replay",
	} {
		rt.mux.HandleFunc(op, rt.handleGraphOp)
	}
	rt.mux.HandleFunc("/v1/dataset", rt.handleAnyPeer)
	rt.mux.HandleFunc("/v1/datasets", rt.handleAnyPeer)

	rt.mux.HandleFunc("/v1/graphs", rt.handleGraphs)
	rt.mux.HandleFunc("/v1/graphs/{id}", rt.handleGraphByID)
	rt.mux.HandleFunc("/v1/graphs/{id}/snapshot", rt.handleGraphByID)

	rt.mux.HandleFunc("/v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("/v1/jobs", rt.handleJobSubmit)
	rt.mux.HandleFunc("/v1/jobs/{id}", rt.handleJobByID)
	rt.mux.HandleFunc("/v1/jobs/{id}/events", rt.handleJobEvents)
}

// ServeHTTP dispatches through the middleware chain.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.handler.ServeHTTP(w, r)
}

// Close stops the health prober. In-flight proxied requests are not
// interrupted; the owning http.Server's shutdown handles those.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.done) })
	rt.wg.Wait()
}

// Ring exposes the placement function (tests, stats).
func (rt *Router) Ring() *Ring { return rt.ring }

// routeOf bounds metric label cardinality by the route table.
func (rt *Router) routeOf(r *http.Request) string {
	_, pattern := rt.mux.Handler(r)
	if pattern == "" {
		return "unmatched"
	}
	return pattern
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"status":        "ok",
			"peers":         len(rt.order),
			"healthy_peers": len(rt.healthyPeers()),
		})
	case http.MethodHead:
		w.WriteHeader(http.StatusOK)
	default:
		methodNotAllowed(w, http.MethodGet, http.MethodHead)
	}
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	rt.refreshHealthGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.Registry().WritePrometheus(w)
}

func errHTTPStatus(code int) error {
	return fmt.Errorf("http status %d", code)
}

// drainClose releases a response's connection for reuse.
func drainClose(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}
