// In-process end-to-end tests: real lopserve handlers on real TCP
// listeners behind a real router, so failover, hydration, and restart
// re-admission are exercised exactly as deployed — only the process
// boundaries are missing.
package router

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/api"
	"repro/internal/server"
)

// backend is one lopserve instance on a stable address, stoppable and
// restartable (fresh empty state, same address) mid-test.
type backend struct {
	t    *testing.T
	addr string
	base string
	srv  *http.Server
}

func startBackendOn(t *testing.T, addr string) *backend {
	t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond) // the old listener's port may still be releasing
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	b := &backend{
		t:    t,
		addr: ln.Addr().String(),
		srv:  &http.Server{Handler: server.New(server.Config{})},
	}
	b.base = "http://" + b.addr
	go b.srv.Serve(ln)
	t.Cleanup(b.stop)
	return b
}

func startBackend(t *testing.T) *backend { return startBackendOn(t, "127.0.0.1:0") }

func (b *backend) stop() { b.srv.Close() }

// restart replaces the backend with a fresh empty instance on the
// same address — a crashed-and-replaced peer.
func (b *backend) restart() *backend {
	b.t.Helper()
	b.stop()
	return startBackendOn(b.t, b.addr)
}

// tier is N backends behind one router.
type tier struct {
	t        *testing.T
	rt       *Router
	proxy    *httptest.Server
	backends []*backend
}

func startTier(t *testing.T, n int) *tier {
	t.Helper()
	tr := &tier{t: t}
	peers := make([]string, n)
	for i := 0; i < n; i++ {
		b := startBackend(t)
		tr.backends = append(tr.backends, b)
		peers[i] = b.base
	}
	rt, err := New(Config{
		Peers:          peers,
		VNodes:         64,
		HealthInterval: 50 * time.Millisecond,
		FailAfter:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	tr.rt = rt
	tr.proxy = httptest.NewServer(rt)
	t.Cleanup(tr.proxy.Close)
	return tr
}

// backendFor returns the backend owning key, and one that does not.
func (tr *tier) backendFor(key string) (owner, other *backend) {
	addr := tr.rt.Ring().Owner(key)
	for _, b := range tr.backends {
		if b.base == addr {
			owner = b
		} else {
			other = b
		}
	}
	return owner, other
}

// postJSON posts v and returns the status and raw body.
func postJSON(t *testing.T, url string, v any) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func getJSON[T any](t *testing.T, url string) T {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out T
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return out
}

var testEdges = [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 0}, {0, 4}}

func testGraph() *api.Graph { return &api.Graph{N: 8, Edges: testEdges} }

func registerViaRouter(t *testing.T, tr *tier) string {
	t.Helper()
	status, body := postJSON(t, tr.proxy.URL+"/v1/graphs", api.GraphRegisterRequest{Graph: testGraph()})
	if status != http.StatusCreated && status != http.StatusOK {
		t.Fatalf("register via router: status %d: %s", status, body)
	}
	var reg api.GraphRegisterResponse
	if err := json.Unmarshal(body, &reg); err != nil {
		t.Fatal(err)
	}
	return reg.ID
}

func TestRouterPlacesRegistrationOnOwner(t *testing.T) {
	tr := startTier(t, 3)
	id := registerViaRouter(t, tr)
	if id != digestOf(testGraph()) {
		t.Fatalf("router registration returned id %s, local digest %s", id, digestOf(testGraph()))
	}
	owner, other := tr.backendFor(id)
	resp, err := http.Get(owner.base + "/v1/graphs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("graph not on ring owner %s: status %d", owner.base, resp.StatusCode)
	}
	resp, err = http.Get(other.base + "/v1/graphs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("graph unexpectedly on non-owner %s: status %d", other.base, resp.StatusCode)
	}
}

func TestRouterOpacityViaOwnerAndStats(t *testing.T) {
	tr := startTier(t, 2)
	id := registerViaRouter(t, tr)
	status, body := postJSON(t, tr.proxy.URL+"/v1/opacity", api.OpacityRequest{GraphRef: id, L: 2})
	if status != http.StatusOK {
		t.Fatalf("opacity via router: status %d: %s", status, body)
	}
	stats := getJSON[api.StatsResponse](t, tr.proxy.URL+"/v1/stats")
	if stats.Router == nil {
		t.Fatal("router stats section missing")
	}
	if got := len(stats.Router.Ring.Members); got != 2 {
		t.Fatalf("ring members = %d, want 2", got)
	}
	if got := len(stats.Router.Ring.Healthy); got != 2 {
		t.Fatalf("healthy peers = %d, want 2", got)
	}
	if stats.Registry.Graphs != 1 {
		t.Fatalf("aggregate graphs = %d, want 1", stats.Registry.Graphs)
	}
	if len(stats.Router.PerPeer) != 2 {
		t.Fatalf("per_peer entries = %d, want 2", len(stats.Router.PerPeer))
	}
	// The owner's per-peer section holds the graph; the other is empty.
	owner, other := tr.backendFor(id)
	if stats.Router.PerPeer[owner.base].Registry.Graphs != 1 {
		t.Fatalf("owner %s per-peer graphs != 1", owner.base)
	}
	if stats.Router.PerPeer[other.base].Registry.Graphs != 0 {
		t.Fatalf("non-owner %s per-peer graphs != 0", other.base)
	}
}

// TestRouterColdOwnerHydration is the acceptance path: the graph lives
// on a donor peer, the ring owner is cold, and one request through the
// router must (a) succeed, (b) leave the owner hydrated with zero APSP
// builds, (c) answer byte-identically to the donor.
func TestRouterColdOwnerHydration(t *testing.T) {
	tr := startTier(t, 2)
	id := digestOf(testGraph())
	owner, donor := tr.backendFor(id)

	// Seed the graph and a warm store on the NON-owner, bypassing the
	// router — the migration-pending state after a membership change.
	status, body := postJSON(t, donor.base+"/v1/graphs", api.GraphRegisterRequest{Graph: testGraph()})
	if status != http.StatusCreated {
		t.Fatalf("seed donor: status %d: %s", status, body)
	}
	opReq := api.OpacityRequest{GraphRef: id, L: 2, Cache: "off"}
	status, donorBody := postJSON(t, donor.base+"/v1/opacity", opReq)
	if status != http.StatusOK {
		t.Fatalf("donor opacity: status %d: %s", status, donorBody)
	}

	// Through the router: routed to the cold owner, healed by snapshot
	// hydration from the donor.
	status, viaRouter := postJSON(t, tr.proxy.URL+"/v1/opacity", opReq)
	if status != http.StatusOK {
		t.Fatalf("opacity via router against cold owner: status %d: %s", status, viaRouter)
	}
	if !bytes.Equal(viaRouter, donorBody) {
		t.Fatalf("hydrated owner answered differently:\nowner: %s\ndonor: %s", viaRouter, donorBody)
	}

	ownerStats := getJSON[api.StatsResponse](t, owner.base+"/v1/stats")
	if ownerStats.Registry.Hydrations != 1 {
		t.Fatalf("owner hydrations = %d, want 1", ownerStats.Registry.Hydrations)
	}
	if ownerStats.Registry.HydratedStores != 1 {
		t.Fatalf("owner hydrated stores = %d, want 1", ownerStats.Registry.HydratedStores)
	}
	if ownerStats.Registry.Builds != 0 {
		t.Fatalf("owner paid %d APSP builds, want 0 (stores must arrive pre-built)", ownerStats.Registry.Builds)
	}
}

func TestRouterBatchFanoutEquivalence(t *testing.T) {
	tr := startTier(t, 2)
	solo := startBackend(t)

	// Two distinct graphs, likely on different owners; registered on
	// the tier (via router) and on the standalone backend.
	gA := testGraph()
	gB := &api.Graph{N: 6, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}}
	var ids []string
	for _, g := range []*api.Graph{gA, gB} {
		req := api.GraphRegisterRequest{Graph: g}
		if status, body := postJSON(t, tr.proxy.URL+"/v1/graphs", req); status/100 != 2 {
			t.Fatalf("tier register: %d %s", status, body)
		}
		if status, body := postJSON(t, solo.base+"/v1/graphs", req); status/100 != 2 {
			t.Fatalf("solo register: %d %s", status, body)
		}
		ids = append(ids, digestOf(g))
	}

	mk := func(op string, v any) api.BatchItem {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return api.BatchItem{Op: op, Request: b}
	}
	batch := api.BatchRequest{Items: []api.BatchItem{
		mk("opacity", api.OpacityRequest{GraphRef: ids[0], L: 2}),
		mk("opacity", api.OpacityRequest{GraphRef: ids[1], L: 2}),
		mk("properties", api.PropertiesRequest{GraphRef: ids[0]}),
		mk("opacity", api.OpacityRequest{GraphRef: "no-such-graph", L: 2}),
		mk("properties", api.PropertiesRequest{GraphRef: ids[1]}),
	}}

	status, soloBody := postJSON(t, solo.base+"/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("solo batch: %d %s", status, soloBody)
	}
	status, tierBody := postJSON(t, tr.proxy.URL+"/v1/batch", batch)
	if status != http.StatusOK {
		t.Fatalf("tier batch: %d %s", status, tierBody)
	}
	var soloResp, tierResp api.BatchResponse
	if err := json.Unmarshal(soloBody, &soloResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(tierBody, &tierResp); err != nil {
		t.Fatal(err)
	}
	if soloResp.Succeeded != tierResp.Succeeded || soloResp.Failed != tierResp.Failed {
		t.Fatalf("counts differ: solo %d/%d, tier %d/%d",
			soloResp.Succeeded, soloResp.Failed, tierResp.Succeeded, tierResp.Failed)
	}
	if len(tierResp.Results) != len(batch.Items) {
		t.Fatalf("tier returned %d results for %d items", len(tierResp.Results), len(batch.Items))
	}
	for i := range soloResp.Results {
		s, f := soloResp.Results[i], tierResp.Results[i]
		if f.Index != i || s.Index != i {
			t.Fatalf("item %d: index misaligned (solo %d, tier %d)", i, s.Index, f.Index)
		}
		if s.Op != f.Op || s.Status != f.Status {
			t.Fatalf("item %d: op/status differ: solo %s/%d, tier %s/%d", i, s.Op, s.Status, f.Op, f.Status)
		}
		// Equivalence is modulo cache_hit: the tier's placement decides
		// which backend's cache answers.
		if !bytes.Equal(s.Result, f.Result) {
			t.Fatalf("item %d: results differ:\nsolo: %s\ntier: %s", i, s.Result, f.Result)
		}
		if (s.Error == nil) != (f.Error == nil) {
			t.Fatalf("item %d: error presence differs", i)
		}
		if s.Error != nil && s.Error.Code != f.Error.Code {
			t.Fatalf("item %d: error codes differ: %s vs %s", i, s.Error.Code, f.Error.Code)
		}
	}
}

func TestRouterForwardsRequestID(t *testing.T) {
	tr := startTier(t, 2)
	id := registerViaRouter(t, tr)

	const rid = "e2e-test-request-id-42"
	body, err := json.Marshal(api.JobSubmitRequest{Op: "opacity", Request: mustJSON(t, api.OpacityRequest{GraphRef: id, L: 2})})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, tr.proxy.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("job submit via router: status %d: %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Request-ID"); got != rid {
		t.Fatalf("router response X-Request-ID = %q, want %q", got, rid)
	}
	var job api.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	// The backend stamped the SAME id on the job it accepted: the id
	// crossed the router->backend hop intact.
	if job.RequestID != rid {
		t.Fatalf("backend job RequestID = %q, want %q (id lost across the hop)", job.RequestID, rid)
	}

	// The job lifecycle follows the placement through the router too.
	deadline := time.Now().Add(10 * time.Second)
	for {
		j := getJSON[api.JobResponse](t, tr.proxy.URL+"/v1/jobs/"+job.ID)
		if j.State == "done" {
			break
		}
		if j.State == "failed" || time.Now().After(deadline) {
			t.Fatalf("job did not finish: state %s", j.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRouterFailoverAndReadmission is the kill/restart drill: ops on a
// dead owner fail over to the survivor; after the owner returns empty,
// the next request migrates the graph home via snapshot hydration.
func TestRouterFailoverAndReadmission(t *testing.T) {
	tr := startTier(t, 2)
	id := registerViaRouter(t, tr)
	opReq := api.OpacityRequest{GraphRef: id, L: 2, Cache: "off"}
	status, want := postJSON(t, tr.proxy.URL+"/v1/opacity", opReq)
	if status != http.StatusOK {
		t.Fatalf("warm opacity: %d %s", status, want)
	}
	owner, survivor := tr.backendFor(id)

	// Copy the graph to the survivor (replication), then kill the owner.
	snap, err := http.Get(owner.base + "/v1/graphs/" + id + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snapBody, err := io.ReadAll(snap.Body)
	snap.Body.Close()
	if err != nil || snap.StatusCode != http.StatusOK {
		t.Fatalf("snapshot from owner: status %d err %v", snap.StatusCode, err)
	}
	putReq, err := http.NewRequest(http.MethodPut, survivor.base+"/v1/graphs/"+id+"/snapshot", bytes.NewReader(snapBody))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := http.DefaultClient.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode/100 != 2 {
		t.Fatalf("install on survivor: status %d", putResp.StatusCode)
	}

	owner.stop()

	// The op fails over to the survivor and still answers, identically.
	status, got := postJSON(t, tr.proxy.URL+"/v1/opacity", opReq)
	if status != http.StatusOK {
		t.Fatalf("opacity after owner death: %d %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failover answer differs:\ngot:  %s\nwant: %s", got, want)
	}

	// Restart the owner empty and wait for re-admission.
	restarted := owner.restart()
	waitHealthy(t, tr.rt, restarted.base)

	// Next request routes home, finds the owner cold, and re-hydrates
	// it from the survivor — builds stay zero on the restarted owner.
	status, got = postJSON(t, tr.proxy.URL+"/v1/opacity", opReq)
	if status != http.StatusOK {
		t.Fatalf("opacity after re-admission: %d %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("re-hydrated answer differs:\ngot:  %s\nwant: %s", got, want)
	}
	stats := getJSON[api.StatsResponse](t, restarted.base+"/v1/stats")
	if stats.Registry.Hydrations != 1 || stats.Registry.Builds != 0 {
		t.Fatalf("restarted owner: hydrations=%d builds=%d, want 1/0",
			stats.Registry.Hydrations, stats.Registry.Builds)
	}
}

func waitHealthy(t *testing.T, rt *Router, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, p := range rt.healthyPeers() {
			if p == addr {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("peer %s was not re-admitted", addr)
}

func TestRouterAllPeersDown(t *testing.T) {
	tr := startTier(t, 2)
	id := registerViaRouter(t, tr)
	for _, b := range tr.backends {
		b.stop()
	}
	status, body := postJSON(t, tr.proxy.URL+"/v1/opacity", api.OpacityRequest{GraphRef: id, L: 2})
	if status != http.StatusBadGateway {
		t.Fatalf("status %d with every peer down, want 502: %s", status, body)
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("502 body is not the error envelope: %s", body)
	}
	if er.Err == nil || er.Err.Code != api.CodeUnavailable {
		t.Fatalf("502 code = %v, want unavailable", er.Err)
	}
}

func TestRouterMergesGraphLists(t *testing.T) {
	tr := startTier(t, 2)
	idA := registerViaRouter(t, tr)
	gB := &api.Graph{N: 5, Edges: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}}
	if status, body := postJSON(t, tr.proxy.URL+"/v1/graphs", api.GraphRegisterRequest{Graph: gB}); status/100 != 2 {
		t.Fatalf("register B: %d %s", status, body)
	}
	list := getJSON[api.GraphListResponse](t, tr.proxy.URL+"/v1/graphs")
	if len(list.Graphs) != 2 {
		t.Fatalf("merged list has %d graphs, want 2", len(list.Graphs))
	}
	found := map[string]bool{}
	for _, g := range list.Graphs {
		found[g.ID] = true
	}
	if !found[idA] || !found[digestOf(gB)] {
		t.Fatalf("merged list %v missing a registered graph", found)
	}
}

func TestRouterHealthz(t *testing.T) {
	tr := startTier(t, 2)
	resp, err := http.Get(tr.proxy.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}

func TestRouterMetricsExposition(t *testing.T) {
	tr := startTier(t, 2)
	id := registerViaRouter(t, tr)
	if status, body := postJSON(t, tr.proxy.URL+"/v1/opacity", api.OpacityRequest{GraphRef: id, L: 2}); status != http.StatusOK {
		t.Fatalf("opacity: %d %s", status, body)
	}
	resp, err := http.Get(tr.proxy.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"loprouter_ring_members 2",
		"loprouter_ring_vnodes 64",
		"loprouter_peer_healthy",
		"loprouter_peer_requests_total",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}
