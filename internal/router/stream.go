// Streaming relay for long-lived upstream responses (job event
// feeds): chunks are written and flushed as they arrive, and the
// router's write deadline is lifted the same way lopserve lifts its
// own on the originating handler.
package router

import (
	"io"
	"net/http"
	"time"
)

// readAllCapped buffers a response body under the router's response
// cap and closes it.
func readAllCapped(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
}

// streamRelay copies an upstream response to the client incrementally
// with a flush per chunk.
func streamRelay(w http.ResponseWriter, resp *http.Response) {
	copyHeaders(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	rc := http.NewResponseController(w)
	rc.SetWriteDeadline(time.Time{})
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			rc.Flush()
		}
		if err != nil {
			return
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
