// The forwarding core: buffer the request, pick the candidate order,
// walk it with failover on transport errors, and — for graph-addressed
// requests — heal a cold owner by hydrating the graph from a donor
// peer before giving up on a graph_not_found.
package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"

	"repro/api"
	"repro/internal/obs"
	"repro/internal/registry"
)

// maxResponseBytes caps a buffered upstream response. Snapshot
// envelopes are the largest legitimate payload, so the cap is theirs.
const maxResponseBytes = registry.MaxSnapshotBytes

// proxied is one completed upstream exchange: the response (body
// already read and closed) and the peer that produced it.
type proxied struct {
	resp *http.Response
	body []byte
	peer string
}

// requestURI returns the path+query to replay against a peer.
func requestURI(r *http.Request) string {
	uri := r.URL.Path
	if r.URL.RawQuery != "" {
		uri += "?" + r.URL.RawQuery
	}
	return uri
}

// readBody buffers the request body under the configured cap. On
// failure it has already written the error response.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeErrorCode(w, http.StatusRequestEntityTooLarge, api.CodeBodyTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", rt.cfg.MaxBodyBytes), nil)
		} else {
			writeErrorCode(w, http.StatusBadRequest, api.CodeInvalidRequest,
				"reading request body: "+err.Error(), nil)
		}
		return nil, false
	}
	return body, true
}

// send performs one exchange with one peer, relaying the caller's
// identity headers and the request ID minted (or accepted) by the
// router's own middleware, so one X-Request-ID names the request in
// both processes' logs. The response body is NOT read.
func (rt *Router) send(ctx context.Context, peer, method, uri string, hdr http.Header, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, peer+uri, rd)
	if err != nil {
		return nil, err
	}
	if ct := hdr.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if auth := hdr.Get("Authorization"); auth != "" {
		req.Header.Set("Authorization", auth)
	}
	if rid := obs.RequestIDFrom(ctx); rid != "" {
		req.Header.Set(obs.RequestIDHeader, rid)
	}
	st := rt.peers[peer]
	resp, err := rt.httpc.Do(req)
	if err != nil {
		st.errors.Add(1)
		rt.gauges.peerErrors.With(peer).Inc()
		healthy := st.markFailure(err, rt.cfg.FailAfter)
		if !healthy {
			rt.gauges.peerHealthy.With(peer).Set(0)
		}
		return nil, err
	}
	st.requests.Add(1)
	st.markSuccess()
	rt.gauges.peerHealthy.With(peer).Set(1)
	rt.countResponse(peer, resp.StatusCode)
	return resp, nil
}

// exchange is send plus a bounded body read.
func (rt *Router) exchange(ctx context.Context, peer, method, uri string, hdr http.Header, body []byte) (*proxied, error) {
	resp, err := rt.send(ctx, peer, method, uri, hdr, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes+1))
	if err != nil {
		return nil, err
	}
	if len(respBody) > maxResponseBytes {
		return nil, fmt.Errorf("router: response from %s exceeds %d bytes", peer, int64(maxResponseBytes))
	}
	return &proxied{resp: resp, body: respBody, peer: peer}, nil
}

// candidateOrder returns the peers to try for key: the ring's
// deterministic candidate sequence, healthy peers first. Ejected peers
// stay in the list (last) — a stale health verdict must not turn into
// a 502 while a peer is actually serving.
func (rt *Router) candidateOrder(key string) []string {
	seq := rt.ring.Candidates(key)
	out := make([]string, 0, len(seq))
	var down []string
	for _, p := range seq {
		if rt.peers[p].isHealthy() {
			out = append(out, p)
		} else {
			down = append(down, p)
		}
	}
	return append(out, down...)
}

var rrCounter atomic.Uint64

// anyPeerOrder returns all peers, healthy first, rotated so unkeyed
// traffic spreads across the tier instead of hammering the first
// member.
func (rt *Router) anyPeerOrder() []string {
	healthy := rt.healthyPeers()
	if n := len(healthy); n > 1 {
		off := int(rrCounter.Add(1)) % n
		rot := make([]string, 0, n)
		rot = append(rot, healthy[off:]...)
		rot = append(rot, healthy[:off]...)
		healthy = rot
	}
	for _, p := range rt.order {
		if !rt.peers[p].isHealthy() {
			healthy = append(healthy, p)
		}
	}
	return healthy
}

// proxyOpts shapes one forwarded request.
type proxyOpts struct {
	method string
	uri    string
	header http.Header
	body   []byte // nil for bodyless methods

	key        string     // routing key ("" = any peer)
	inline     *api.Graph // inline graph to pre-register on the target
	hydrateRef bool       // heal graph_not_found by peer hydration
}

// proxy walks the candidate order for opts.key until some peer
// answers, failing over on transport errors and counting each hop
// against the abandoned peer. With hydrateRef set, a 404
// graph_not_found answer triggers snapshot hydration from a donor
// peer and one retry per missing reference (two rounds covers an
// audit pair). Returns nil when every candidate is unreachable.
func (rt *Router) proxy(ctx context.Context, opts proxyOpts) (*proxied, error) {
	var candidates []string
	if opts.key != "" {
		candidates = rt.candidateOrder(opts.key)
	} else {
		candidates = rt.anyPeerOrder()
	}
	var lastErr error
	for i, peer := range candidates {
		if i > 0 {
			prev := candidates[i-1]
			rt.peers[prev].failovers.Add(1)
			rt.gauges.peerFailover.With(prev).Inc()
		}
		if opts.inline != nil && opts.key != "" {
			rt.registerInline(ctx, peer, opts.header, opts.inline)
		}
		p, err := rt.exchange(ctx, peer, opts.method, opts.uri, opts.header, opts.body)
		if err != nil {
			lastErr = err
			continue
		}
		if opts.hydrateRef {
			p = rt.healMissingGraph(ctx, p, opts)
		}
		return p, nil
	}
	return nil, lastErr
}

// healMissingGraph retries a graph_not_found answer after hydrating
// the missing graph onto the answering peer from a donor that still
// holds it. Up to two rounds, because an audit names two graphs. Any
// failure returns the best answer we have — the original 404.
func (rt *Router) healMissingGraph(ctx context.Context, p *proxied, opts proxyOpts) *proxied {
	for round := 0; round < 2; round++ {
		ref := missingGraphRef(p.resp.StatusCode, p.body)
		if ref == "" {
			return p
		}
		if !rt.hydrate(ctx, p.peer, ref, opts.header) {
			return p
		}
		retry, err := rt.exchange(ctx, p.peer, opts.method, opts.uri, opts.header, opts.body)
		if err != nil {
			return p
		}
		p = retry
	}
	return p
}

// missingGraphRef extracts the graph reference a 404 graph_not_found
// envelope names, from either the graph_ref or the id detail.
func missingGraphRef(status int, body []byte) string {
	if status != http.StatusNotFound {
		return ""
	}
	var er api.ErrorResponse
	if json.Unmarshal(body, &er) != nil || er.Err == nil || er.Err.Code != api.CodeGraphNotFound {
		return ""
	}
	for _, k := range []string{"graph_ref", "id"} {
		if v, ok := er.Err.Details[k].(string); ok && v != "" {
			return v
		}
	}
	return ""
}

// hydrate copies graph id onto target from the first healthy peer
// that still holds it: GET the donor's snapshot envelope, PUT it on
// the target. Digest verification happens on the target — a corrupt
// donor cannot poison the tier.
func (rt *Router) hydrate(ctx context.Context, target, id string, hdr http.Header) bool {
	uri := "/v1/graphs/" + id + "/snapshot"
	var sawDonor bool
	for _, donor := range rt.healthyPeers() {
		if donor == target {
			continue
		}
		snap, err := rt.exchange(ctx, donor, http.MethodGet, uri, hdr, nil)
		if err != nil || snap.resp.StatusCode != http.StatusOK {
			continue
		}
		sawDonor = true
		put, err := rt.exchange(ctx, target, http.MethodPut, uri, hdr, snap.body)
		if err != nil || put.resp.StatusCode/100 != 2 {
			continue
		}
		rt.countHydration("ok")
		return true
	}
	if sawDonor {
		rt.countHydration("error")
	} else {
		rt.countHydration("no_donor")
	}
	return false
}

// registerInline best-effort registers an inline graph on the peer
// about to serve it, so the operation's graph becomes addressable by
// content address for every later graph_ref request.
func (rt *Router) registerInline(ctx context.Context, peer string, hdr http.Header, g *api.Graph) {
	body, err := json.Marshal(api.GraphRegisterRequest{Graph: g})
	if err != nil {
		return
	}
	regHdr := http.Header{"Content-Type": []string{"application/json"}}
	if auth := hdr.Get("Authorization"); auth != "" {
		regHdr.Set("Authorization", auth)
	}
	resp, err := rt.send(ctx, peer, http.MethodPost, "/v1/graphs", regHdr, body)
	if err != nil {
		return
	}
	drainClose(resp)
}

// relay writes a buffered upstream response to the client unchanged.
func relay(w http.ResponseWriter, p *proxied) {
	copyHeaders(w.Header(), p.resp.Header)
	w.WriteHeader(p.resp.StatusCode)
	w.Write(p.body)
}

// routingProbe is the loose view of a request body the router needs
// for placement: any reference fields, and any inline graphs.
type routingProbe struct {
	GraphRef     string     `json:"graph_ref"`
	PublishedRef string     `json:"published_ref"`
	OriginalRef  string     `json:"original_ref"`
	Graph        *api.Graph `json:"graph"`
	Published    *api.Graph `json:"published"`
	Original     *api.Graph `json:"original"`
}

// routingInfo extracts the routing key material from a request body:
// reference fields in priority order, and the first inline graph. A
// body the router cannot parse routes as unkeyed — the backend owns
// rejecting it.
func routingInfo(body []byte) (refs []string, inline *api.Graph) {
	var p routingProbe
	if json.Unmarshal(body, &p) != nil {
		return nil, nil
	}
	seen := map[string]bool{}
	for _, r := range []string{p.GraphRef, p.PublishedRef, p.OriginalRef} {
		if r != "" && !seen[r] {
			seen[r] = true
			refs = append(refs, r)
		}
	}
	// The wire types serialize Graph as a value, so a reference-only
	// request still carries {"n":0}: only a graph with vertices is an
	// inline graph.
	for _, g := range []*api.Graph{p.Graph, p.Published, p.Original} {
		if g != nil && g.N > 0 {
			inline = g
			break
		}
	}
	return refs, inline
}

// digestOf computes the content address of an inline wire graph with
// the registry's own canonicalization. Invalid graphs yield "" and
// route unkeyed; the backend produces the real validation error.
func digestOf(g *api.Graph) string {
	canonical, err := registry.Canonicalize(g.N, g.Edges)
	if err != nil {
		return ""
	}
	return registry.Digest(g.N, canonical)
}
