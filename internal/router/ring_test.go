package router

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Hex-ish strings shaped like graph digests.
		keys[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return keys
}

func TestRingValidates(t *testing.T) {
	if _, err := NewRing(nil, 64); err == nil {
		t.Fatal("empty peer set built a ring")
	}
	if _, err := NewRing([]string{"a"}, 0); err == nil {
		t.Fatal("zero vnodes built a ring")
	}
}

func TestRingBalance(t *testing.T) {
	peers := []string{
		"http://10.0.0.1:8080", "http://10.0.0.2:8080",
		"http://10.0.0.3:8080", "http://10.0.0.4:8080",
	}
	r, err := NewRing(peers, 128)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	keys := testKeys(8000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	want := len(keys) / len(peers)
	for _, p := range peers {
		got := counts[p]
		// With 128 vnodes the split should be within 35% of even — wide
		// enough to be robust, tight enough to catch a broken hash.
		if got < want*65/100 || got > want*135/100 {
			t.Errorf("peer %s owns %d of %d keys (even share %d)", p, got, len(keys), want)
		}
	}
}

func TestRingRemapFractionOnMembershipChange(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	before, err := NewRing(peers, 128)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing(append(append([]string{}, peers...), "http://e:1"), 128)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := NewRing(peers[:3], 128)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(8000)
	var movedJoin, movedLeave int
	for _, k := range keys {
		if before.Owner(k) != grown.Owner(k) {
			movedJoin++
		}
		if before.Owner(k) != shrunk.Owner(k) {
			movedLeave++
		}
	}
	// Joining a 5th peer should remap ~1/5 of keys; leaving one of 4
	// should remap ~1/4. Allow a factor-2 band around the ideal — a
	// modulo hash would remap ~80% and fail loudly.
	assertFraction(t, "join", movedJoin, len(keys), 1.0/5)
	assertFraction(t, "leave", movedLeave, len(keys), 1.0/4)
}

func assertFraction(t *testing.T, what string, moved, total int, ideal float64) {
	t.Helper()
	frac := float64(moved) / float64(total)
	if frac < ideal/2 || frac > ideal*2 {
		t.Errorf("%s remapped %.1f%% of keys, want about %.1f%%", what, frac*100, ideal*100)
	}
}

func TestRingDeterministicAcrossRebuilds(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, err := NewRing(peers, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Same set, different order and a duplicate: placement must agree.
	r2, err := NewRing([]string{"http://c:1", "http://a:1", "http://b:1", "http://a:1"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range testKeys(500) {
		if r1.Owner(k) != r2.Owner(k) {
			t.Fatalf("key %s: owner %s vs %s across rebuilds", k, r1.Owner(k), r2.Owner(k))
		}
		c1, c2 := r1.Candidates(k), r2.Candidates(k)
		if len(c1) != len(peers) || len(c2) != len(peers) {
			t.Fatalf("candidates incomplete: %v / %v", c1, c2)
		}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("key %s: candidate order differs: %v vs %v", k, c1, c2)
			}
		}
		if c1[0] != r1.Owner(k) {
			t.Fatalf("candidates[0] %s is not the owner %s", c1[0], r1.Owner(k))
		}
	}
}
