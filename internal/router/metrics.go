// Router metrics: per-peer request/error/failover counters, health
// gauges, ring shape, and hydration outcomes — the numbers an operator
// needs to see which backend is hot, which is flapping, and how often
// the tier is moving graphs around.
package router

import (
	"strconv"
	"sync/atomic"

	"repro/internal/obs"
)

type routerGauges struct {
	// Scrape-time per-peer gauges, refreshed from peerState.
	peerHealthy  *obs.Vec // loprouter_peer_healthy{peer}
	peerRequests *obs.Vec // loprouter_peer_requests_total{peer,code}
	peerErrors   *obs.Vec // loprouter_peer_errors_total{peer}
	peerFailover *obs.Vec // loprouter_peer_failovers_total{peer}

	ringMembers *obs.Series
	ringVNodes  *obs.Series

	hydrations *obs.Vec // loprouter_hydrations_total{result}

	// Stats-layer mirrors of the hydration counters.
	hydrationsOK, hydrationsFailed atomic.Int64
}

func newRouterGauges(reg *obs.Registry) *routerGauges {
	return &routerGauges{
		peerHealthy: reg.Gauge("loprouter_peer_healthy",
			"1 when the peer is admitted to routing, 0 while ejected.", "peer"),
		peerRequests: reg.Counter("loprouter_peer_requests_total",
			"Responses received from the peer, by HTTP status code.", "peer", "code"),
		peerErrors: reg.Counter("loprouter_peer_errors_total",
			"Transport-level failures talking to the peer (no HTTP response).", "peer"),
		peerFailover: reg.Counter("loprouter_peer_failovers_total",
			"Requests that abandoned this peer for the next ring candidate.", "peer"),
		ringMembers: reg.Gauge("loprouter_ring_members",
			"Peers configured on the hash ring.").With(),
		ringVNodes: reg.Gauge("loprouter_ring_vnodes",
			"Virtual nodes per peer on the hash ring.").With(),
		hydrations: reg.Counter("loprouter_hydrations_total",
			"Peer snapshot hydrations attempted by the router, by result (ok, no_donor, error).", "result"),
	}
}

func (rt *Router) initRingGauges() {
	rt.gauges.ringMembers.Set(float64(len(rt.order)))
	rt.gauges.ringVNodes.Set(float64(rt.ring.VNodes()))
	for _, addr := range rt.order {
		rt.gauges.peerHealthy.With(addr).Set(1)
	}
}

func (rt *Router) refreshHealthGauges() {
	for _, addr := range rt.order {
		v := 0.0
		if rt.peers[addr].isHealthy() {
			v = 1
		}
		rt.gauges.peerHealthy.With(addr).Set(v)
	}
}

// countResponse records one HTTP exchange with a peer.
func (rt *Router) countResponse(peer string, status int) {
	rt.gauges.peerRequests.With(peer, strconv.Itoa(status)).Inc()
}

// countHydration records one hydration attempt outcome.
func (rt *Router) countHydration(result string) {
	rt.gauges.hydrations.With(result).Inc()
	if result == "ok" {
		rt.gauges.hydrationsOK.Add(1)
	} else {
		rt.gauges.hydrationsFailed.Add(1)
	}
}
