// Job placement memory. Job ids are minted by the backend that
// accepted the submission, so unlike graphs they have no content
// address to hash: the router remembers which peer holds each job in
// a bounded LRU map. A forgotten (evicted or post-restart) job id
// falls back to probing every healthy peer — slower, still correct.
package router

import (
	"container/list"
	"sync"
)

type jobRoutes struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *jobRoute
	byID  map[string]*list.Element
}

type jobRoute struct {
	id   string
	peer string
}

func newJobRoutes(max int) *jobRoutes {
	return &jobRoutes{max: max, order: list.New(), byID: make(map[string]*list.Element)}
}

func (j *jobRoutes) put(id, peer string) {
	if id == "" || peer == "" {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if el, ok := j.byID[id]; ok {
		el.Value.(*jobRoute).peer = peer
		j.order.MoveToFront(el)
		return
	}
	j.byID[id] = j.order.PushFront(&jobRoute{id: id, peer: peer})
	for j.order.Len() > j.max {
		el := j.order.Back()
		delete(j.byID, el.Value.(*jobRoute).id)
		j.order.Remove(el)
	}
}

func (j *jobRoutes) get(id string) (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	el, ok := j.byID[id]
	if !ok {
		return "", false
	}
	j.order.MoveToFront(el)
	return el.Value.(*jobRoute).peer, true
}

func (j *jobRoutes) len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.order.Len()
}
