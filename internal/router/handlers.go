// Per-endpoint routing strategies. Single-graph operations route by
// the body's content address; graph CRUD routes by the path id (DELETE
// broadcasts — a delete must not resurrect via a stale replica); jobs
// follow the peer that accepted the submission; list endpoints merge
// across the tier.
package router

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"

	lopacity "repro"
	"repro/api"
)

// handleGraphOp proxies the single-graph POST operations
// (/v1/properties, /v1/opacity, /v1/anonymize, /v1/kiso, /v1/audit,
// /v1/continuous_audit, /v1/replay) to the peer owning the request's
// graph.
func (rt *Router) handleGraphOp(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	refs, inline := routingInfo(body)
	key := ""
	if len(refs) > 0 {
		key = refs[0]
	} else if inline != nil {
		key = digestOf(inline)
	}
	p, err := rt.proxy(r.Context(), proxyOpts{
		method: http.MethodPost, uri: requestURI(r), header: r.Header, body: body,
		key: key, inline: inline, hydrateRef: len(refs) > 0,
	})
	if p == nil {
		writeUnavailable(w, key, err)
		return
	}
	relay(w, p)
}

// handleAnyPeer proxies endpoints with no graph affinity
// (/v1/dataset, /v1/datasets) to any healthy peer, round-robin.
func (rt *Router) handleAnyPeer(w http.ResponseWriter, r *http.Request) {
	var body []byte
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		var ok bool
		if body, ok = rt.readBody(w, r); !ok {
			return
		}
	}
	p, err := rt.proxy(r.Context(), proxyOpts{
		method: r.Method, uri: requestURI(r), header: r.Header, body: body,
	})
	if p == nil {
		writeUnavailable(w, "", err)
		return
	}
	relay(w, p)
}

// handleGraphs is GET /v1/graphs (merged across the tier) and POST
// /v1/graphs (routed to the ring owner of the graph's content
// address, computed locally for both inline and dataset bodies).
func (rt *Router) handleGraphs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		rt.mergeGraphLists(w, r)
	case http.MethodPost:
		body, ok := rt.readBody(w, r)
		if !ok {
			return
		}
		p, err := rt.proxy(r.Context(), proxyOpts{
			method: http.MethodPost, uri: requestURI(r), header: r.Header, body: body,
			key: registerKey(body),
		})
		if p == nil {
			writeUnavailable(w, "", err)
			return
		}
		relay(w, p)
	default:
		methodNotAllowed(w, http.MethodGet, http.MethodPost)
	}
}

// registerKey computes the routing key of a registration body: the
// digest of the inline graph, or of the deterministically generated
// dataset. An unparseable body routes unkeyed and fails on the
// backend with the real validation error.
func registerKey(body []byte) string {
	var req api.GraphRegisterRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	if req.Graph != nil {
		return digestOf(req.Graph)
	}
	if req.Dataset != "" {
		g, err := lopacity.Dataset(req.Dataset, req.Seed)
		if err != nil {
			return ""
		}
		return digestOf(&api.Graph{N: g.N(), Edges: g.Edges()})
	}
	return ""
}

// mergeGraphLists fans GET /v1/graphs out to every healthy peer and
// merges: graphs deduplicated by content address (during a migration
// two peers may briefly hold the same graph), sorted by id, capacity
// summed — the tier's total.
func (rt *Router) mergeGraphLists(w http.ResponseWriter, r *http.Request) {
	peers := rt.healthyPeers()
	type listResult struct {
		list api.GraphListResponse
		ok   bool
	}
	results := make([]listResult, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			p, err := rt.exchange(r.Context(), peer, http.MethodGet, requestURI(r), r.Header, nil)
			if err != nil || p.resp.StatusCode != http.StatusOK {
				return
			}
			if json.Unmarshal(p.body, &results[i].list) == nil {
				results[i].ok = true
			}
		}(i, peer)
	}
	wg.Wait()
	merged := api.GraphListResponse{Graphs: []api.GraphInfo{}}
	seen := map[string]bool{}
	any := false
	for _, res := range results {
		if !res.ok {
			continue
		}
		any = true
		merged.Capacity += res.list.Capacity
		for _, g := range res.list.Graphs {
			if !seen[g.ID] {
				seen[g.ID] = true
				merged.Graphs = append(merged.Graphs, g)
			}
		}
	}
	if !any {
		writeUnavailable(w, "", nil)
		return
	}
	sort.Slice(merged.Graphs, func(i, j int) bool { return merged.Graphs[i].ID < merged.Graphs[j].ID })
	writeJSON(w, http.StatusOK, merged)
}

// handleGraphByID proxies /v1/graphs/{id} and /v1/graphs/{id}/snapshot
// by the path id. Reads, PATCH, and snapshot transfer go to the owner
// (with hydration healing a cold one); DELETE broadcasts to every
// peer so no replica can resurrect the graph later.
func (rt *Router) handleGraphByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if r.Method == http.MethodDelete {
		rt.broadcastDelete(w, r, id)
		return
	}
	var body []byte
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		var ok bool
		if body, ok = rt.readBody(w, r); !ok {
			return
		}
	}
	p, err := rt.proxy(r.Context(), proxyOpts{
		method: r.Method, uri: requestURI(r), header: r.Header, body: body,
		key: id, hydrateRef: true,
	})
	if p == nil {
		writeUnavailable(w, id, err)
		return
	}
	relay(w, p)
}

// broadcastDelete deletes id on every reachable peer. The answer is
// deleted=true if any peer held the graph; 404 only when every peer
// answered 404; 502 when nobody answered at all.
func (rt *Router) broadcastDelete(w http.ResponseWriter, r *http.Request, id string) {
	var (
		deleted  *proxied
		notFound *proxied
	)
	for _, peer := range rt.anyPeerOrder() {
		p, err := rt.exchange(r.Context(), peer, http.MethodDelete, requestURI(r), r.Header, nil)
		if err != nil {
			continue
		}
		if p.resp.StatusCode/100 == 2 && deleted == nil {
			deleted = p
		} else if notFound == nil {
			notFound = p
		}
	}
	switch {
	case deleted != nil:
		relay(w, deleted)
	case notFound != nil:
		relay(w, notFound)
	default:
		writeUnavailable(w, id, nil)
	}
}

// handleJobSubmit routes POST /v1/jobs by the inner request's graph
// and remembers which peer minted the job id, so the lifecycle
// endpoints can find it without a content address.
func (rt *Router) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var submit struct {
		Request json.RawMessage `json:"request"`
	}
	var key string
	var inline *api.Graph
	var refs []string
	if json.Unmarshal(body, &submit) == nil && len(submit.Request) > 0 {
		refs, inline = routingInfo(submit.Request)
		if len(refs) > 0 {
			key = refs[0]
		} else if inline != nil {
			key = digestOf(inline)
		}
	}
	p, err := rt.proxy(r.Context(), proxyOpts{
		method: http.MethodPost, uri: requestURI(r), header: r.Header, body: body,
		key: key, inline: inline, hydrateRef: len(refs) > 0,
	})
	if p == nil {
		writeUnavailable(w, key, err)
		return
	}
	if p.resp.StatusCode/100 == 2 {
		var job api.JobResponse
		if json.Unmarshal(p.body, &job) == nil {
			rt.jobs.put(job.ID, p.peer)
		}
	}
	relay(w, p)
}

// jobPeerOrder returns the peers to try for a job id: the remembered
// owner first, then everything else — a forgotten id degrades to a
// probe, not an error.
func (rt *Router) jobPeerOrder(id string) []string {
	order := rt.anyPeerOrder()
	peer, ok := rt.jobs.get(id)
	if !ok {
		return order
	}
	out := []string{peer}
	for _, p := range order {
		if p != peer {
			out = append(out, p)
		}
	}
	return out
}

// handleJobByID proxies GET/DELETE /v1/jobs/{id} to the job's peer,
// probing the tier when the placement is unknown: the first peer that
// does not answer job_not_found wins.
func (rt *Router) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodDelete {
		methodNotAllowed(w, http.MethodGet, http.MethodDelete)
		return
	}
	id := r.PathValue("id")
	var last *proxied
	var lastErr error
	for _, peer := range rt.jobPeerOrder(id) {
		p, err := rt.exchange(r.Context(), peer, r.Method, requestURI(r), r.Header, nil)
		if err != nil {
			lastErr = err
			continue
		}
		if !isJobNotFound(p) {
			rt.jobs.put(id, peer)
			relay(w, p)
			return
		}
		last = p
	}
	if last != nil {
		relay(w, last)
		return
	}
	writeUnavailable(w, "", lastErr)
}

func isJobNotFound(p *proxied) bool {
	if p.resp.StatusCode != http.StatusNotFound {
		return false
	}
	var er api.ErrorResponse
	return json.Unmarshal(p.body, &er) == nil && er.Err != nil && er.Err.Code == api.CodeJobNotFound
}

// handleJobEvents streams GET /v1/jobs/{id}/events from the job's
// peer: NDJSON relayed chunk by chunk with an explicit flush, so the
// client sees each event when the backend emits it, not when a buffer
// fills.
func (rt *Router) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	id := r.PathValue("id")
	var lastErr error
	for _, peer := range rt.jobPeerOrder(id) {
		resp, err := rt.send(r.Context(), peer, http.MethodGet, requestURI(r), r.Header, nil)
		if err != nil {
			lastErr = err
			continue
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			// Probe the next peer only for an unknown job; relay any
			// other failure as the job peer's answer.
			p := &proxied{resp: resp, peer: peer}
			p.body, _ = readAllCapped(resp)
			if isJobNotFound(p) {
				continue
			}
			relay(w, p)
			return
		}
		rt.jobs.put(id, peer)
		streamRelay(w, resp)
		return
	}
	writeErrorCode(w, http.StatusNotFound, api.CodeJobNotFound,
		"unknown job id on every peer", map[string]any{"id": id, "last_error": errString(lastErr)})
}
