// Router-aware GET /v1/stats: one call shows the whole tier. The
// top-level sections keep the exact single-backend shape — summed
// across peers, so dashboards built against lopserve keep working —
// and the router section adds what only the proxy knows: ring
// membership, per-peer health and traffic, and the per-peer stats
// bodies verbatim.
package router

import (
	"encoding/json"
	"net/http"
	"sync"

	"repro/api"
)

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	type peerStats struct {
		stats api.StatsResponse
		ok    bool
	}
	results := make([]peerStats, len(rt.order))
	var wg sync.WaitGroup
	for i, peer := range rt.order {
		if !rt.peers[peer].isHealthy() {
			continue
		}
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			p, err := rt.exchange(r.Context(), peer, http.MethodGet, "/v1/stats", r.Header, nil)
			if err != nil || p.resp.StatusCode != http.StatusOK {
				return
			}
			if json.Unmarshal(p.body, &results[i].stats) == nil {
				results[i].ok = true
			}
		}(i, peer)
	}
	wg.Wait()

	out := api.StatsResponse{
		Router: &api.RouterStats{
			Ring: api.RingInfo{
				Members: rt.ring.Members(),
				VNodes:  rt.ring.VNodes(),
				Healthy: rt.healthyPeers(),
			},
			PerPeer:           map[string]api.StatsResponse{},
			Hydrations:        rt.gauges.hydrationsOK.Load(),
			HydrationFailures: rt.gauges.hydrationsFailed.Load(),
		},
	}
	anyPeer := false
	for i, peer := range rt.order {
		st := rt.peers[peer]
		healthy, lastErr := st.snapshot()
		out.Router.Peers = append(out.Router.Peers, api.PeerStats{
			Addr:      peer,
			Healthy:   healthy,
			Requests:  st.requests.Load(),
			Errors:    st.errors.Load(),
			Failovers: st.failovers.Load(),
			LastError: lastErr,
		})
		if !results[i].ok {
			continue
		}
		anyPeer = true
		out.Router.PerPeer[peer] = results[i].stats
		addStats(&out, results[i].stats)
	}
	if !anyPeer {
		writeUnavailable(w, "", nil)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// addStats accumulates one backend's sections into the aggregate.
// Counters and occupancy sum; the build-latency maximum takes the max;
// persistence is enabled if any peer persists.
func addStats(out *api.StatsResponse, s api.StatsResponse) {
	out.Cache.Hits += s.Cache.Hits
	out.Cache.Misses += s.Cache.Misses
	out.Cache.Entries += s.Cache.Entries
	out.Cache.Capacity += s.Cache.Capacity

	a, b := &out.Registry, &s.Registry
	a.Graphs += b.Graphs
	a.Capacity += b.Capacity
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Evictions += b.Evictions
	a.Stores += b.Stores
	a.StoreHits += b.StoreHits
	a.StoreMisses += b.StoreMisses
	a.StoreEvictions += b.StoreEvictions
	a.Builds += b.Builds
	a.BuildMSTotal += b.BuildMSTotal
	if b.BuildMSMax > a.BuildMSMax {
		a.BuildMSMax = b.BuildMSMax
	}
	a.Mutations += b.Mutations
	a.Repairs += b.Repairs
	a.RepairFallbacks += b.RepairFallbacks
	a.RepairMSTotal += b.RepairMSTotal
	a.Hydrations += b.Hydrations
	a.HydratedStores += b.HydratedStores
	for k, v := range b.StoreBytes {
		if a.StoreBytes == nil {
			a.StoreBytes = map[string]int64{}
		}
		a.StoreBytes[k] += v
	}
	for k, v := range b.StoreFileBytes {
		if a.StoreFileBytes == nil {
			a.StoreFileBytes = map[string]int64{}
		}
		a.StoreFileBytes[k] += v
	}
	a.PageCache.BudgetBytes += b.PageCache.BudgetBytes
	a.PageCache.ResidentBytes += b.PageCache.ResidentBytes
	a.PageCache.Pages += b.PageCache.Pages
	a.PageCache.Hits += b.PageCache.Hits
	a.PageCache.Misses += b.PageCache.Misses
	a.PageCache.Evictions += b.PageCache.Evictions

	p, q := &out.Persistence, &s.Persistence
	p.Enabled = p.Enabled || q.Enabled
	p.GraphsLoaded += q.GraphsLoaded
	p.StoresLoaded += q.StoresLoaded
	p.LineagesLoaded += q.LineagesLoaded
	p.Quarantined += q.Quarantined
	p.GraphWrites += q.GraphWrites
	p.StoreWrites += q.StoreWrites
	p.LineageWrites += q.LineageWrites
	p.WriteErrors += q.WriteErrors
	p.Deletes += q.Deletes

	j, k := &out.Jobs, &s.Jobs
	j.Workers += k.Workers
	j.QueueDepth += k.QueueDepth
	j.QueueCapacity += k.QueueCapacity
	j.Running += k.Running
	j.Done += k.Done
	j.Failed += k.Failed
	j.Cancelled += k.Cancelled
	j.Detached += k.Detached
}
