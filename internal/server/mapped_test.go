// Tests for the mmap-backed warm restart (-mmap-stores) and the
// registry build-timing fields of GET /v1/stats.
package server

import (
	"fmt"
	"testing"
)

// TestMappedWarmRestartZeroBuilds: with MappedStores on, a restarted
// server answers a graph_ref opacity query from the memory-mapped
// snapshot — store_misses stays 0 and the answer is byte-identical to
// the cold server's. The request explicitly asks for store=mapped to
// pin the request-level alias.
func TestMappedWarmRestartZeroBuilds(t *testing.T) {
	dir := t.TempDir()

	cold := New(Config{DataDir: dir})
	id, err := cold.RegisterDataset("gnutella100", 1)
	if err != nil {
		t.Fatal(err)
	}
	req := []byte(fmt.Sprintf(`{"graph_ref":%q,"l":3,"store":"mapped","cache":"off"}`, id))
	coldAnswer := postRaw(t, cold, "/v1/opacity", req)
	if s := getStatsAPI(t, cold).Registry; s.Builds != 1 || s.BuildMSTotal < 0 || s.BuildMSMax > s.BuildMSTotal {
		t.Fatalf("cold build timing stats inconsistent: %+v", s)
	}
	closeServer(t, cold)

	warm := New(Config{DataDir: dir, MappedStores: true})
	defer closeServer(t, warm)
	warmAnswer := postRaw(t, warm, "/v1/opacity", req)
	if warmAnswer != coldAnswer {
		t.Error("opacity answer changed across a mapped restart")
	}
	s := getStatsAPI(t, warm).Registry
	if s.StoreMisses != 0 || s.Builds != 0 || s.BuildMSTotal != 0 {
		t.Errorf("mapped warm server built: misses=%d builds=%d build_ms_total=%d, want all 0",
			s.StoreMisses, s.Builds, s.BuildMSTotal)
	}
	if s.StoreHits < 1 {
		t.Errorf("mapped warm server reports %d store hits, want >= 1", s.StoreHits)
	}
}

// TestStoreMappedOnColdServer: store=mapped with nothing on disk must
// degrade gracefully — it builds the compact store it aliases.
func TestStoreMappedOnColdServer(t *testing.T) {
	api, _ := newTestAPI(t, Config{})
	id, err := api.RegisterDataset("gnutella100", 1)
	if err != nil {
		t.Fatal(err)
	}
	mapped := postRaw(t, api, "/v1/opacity", []byte(fmt.Sprintf(`{"graph_ref":%q,"l":2,"store":"mapped","cache":"off"}`, id)))
	compact := postRaw(t, api, "/v1/opacity", []byte(fmt.Sprintf(`{"graph_ref":%q,"l":2,"store":"compact","cache":"off"}`, id)))
	if mapped != compact {
		t.Fatal("store=mapped and store=compact answers differ")
	}
	if s := getStatsAPI(t, api).Registry; s.StoreMisses != 1 {
		t.Fatalf("the two spellings did not share one cache slot: %+v", s)
	}
}
