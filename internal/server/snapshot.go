// Peer snapshot transfer endpoints — the hydration path of the
// sharded serving tier:
//
//	GET /v1/graphs/{id}/snapshot  stream the graph's snapshot envelope
//	PUT /v1/graphs/{id}/snapshot  install an envelope fetched from a peer
//
// The body is the registry's binary envelope (magic "LOPH"): the
// canonical edge set plus every distance store currently cached under
// the graph. A replica that installs one answers its first opacity
// query for the graph as a store hit with zero APSP builds — the
// router uses this pair to move graphs between backends when the ring
// owner is cold (newly added, restarted empty, or re-admitted after an
// outage) while another peer still holds the warm state.
//
// Install trusts nothing: the envelope's edge set is re-canonicalized
// and re-digested and must hash to {id} (400 snapshot_mismatch
// otherwise — nothing installed), and each store section must validate
// against the installed graph's dimensions or it is skipped, counted
// in the response's stores_skipped.
package server

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/api"
	"repro/internal/registry"
)

// handleGraphSnapshot serves GET (export) and PUT (install) on
// /v1/graphs/{id}/snapshot.
func (s *Server) handleGraphSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch r.Method {
	case http.MethodGet:
		g, ok := s.reg.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, graphNotFound(id))
			return
		}
		data, err := g.Snapshot()
		if err != nil {
			writeError(w, http.StatusInternalServerError,
				codedError(http.StatusInternalServerError, api.CodeInternal, err))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		w.Write(data)
	case http.MethodPut:
		s.handleSnapshotInstall(w, r, id)
	default:
		methodNotAllowed(w, http.MethodGet, http.MethodPut)
	}
}

// handleSnapshotInstall reads a snapshot envelope and installs it as
// graph {id}. The body cap is the registry's snapshot limit, not the
// JSON body cap: a store-bearing envelope is legitimately much larger
// than any request document.
func (s *Server) handleSnapshotInstall(w http.ResponseWriter, r *http.Request, id string) {
	body := http.MaxBytesReader(w, r.Body, registry.MaxSnapshotBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading snapshot body: %w", err))
		return
	}
	g, created, installed, skipped, err := s.reg.InstallSnapshot(id, data, s.cfg.MaxVertices)
	if err != nil {
		if errors.Is(err, registry.ErrSnapshotMismatch) {
			writeError(w, http.StatusBadRequest,
				detailedError(http.StatusBadRequest, api.CodeSnapshotMismatch,
					map[string]any{"id": id}, err))
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/graphs/"+g.ID())
	w.WriteHeader(status)
	writeJSON(w, api.SnapshotInstallResponse{
		GraphInfo:       graphInfo(g),
		Created:         created,
		StoresInstalled: installed,
		StoresSkipped:   skipped,
	})
}
