// POST /v1/replay: server-side verification of an anonymization audit
// trail.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	lopacity "repro"
	"repro/api"
)

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	var req api.ReplayRequest
	if !s.decode(w, r, &req) {
		return
	}
	p, err := s.prepareReplay(&req)
	if err != nil {
		writeError(w, errStatus(err, http.StatusBadRequest), err)
		return
	}
	s.serveSync(w, r, p)
}

func (s *Server) prepareReplay(req *api.ReplayRequest) (prepared, error) {
	g, _, err := s.resolveGraph(req.Original, req.OriginalRef)
	if err != nil {
		return prepared{}, fmt.Errorf("original: %w", err)
	}
	opts := lopacity.ReplayOptions{L: req.L, Theta: req.Theta, SkipOpacityCheck: req.Fast}
	if req.Published != nil || req.PublishedRef != "" {
		var gj api.Graph
		if req.Published != nil {
			gj = *req.Published
		}
		pub, _, err := s.resolveGraph(gj, req.PublishedRef)
		if err != nil {
			return prepared{}, fmt.Errorf("published: %w", err)
		}
		opts.Published = pub
	}
	if req.L < 1 {
		return prepared{}, fmt.Errorf("l must be >= 1, got %d", req.L)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, step := range req.Trace {
		if err := enc.Encode(step); err != nil {
			return prepared{}, err
		}
	}
	run := func(ctx context.Context) (any, bool, error) {
		rep, err := lopacity.ReplayTrace(g, &buf, opts)
		resp := api.ReplayResponse{
			Verified:     err == nil,
			Steps:        rep.Steps,
			Removals:     rep.Removals,
			Insertions:   rep.Insertions,
			FinalOpacity: rep.FinalOpacity,
		}
		if err != nil {
			// A failed verification is a successful HTTP request: the
			// violation is the answer, not a transport error.
			resp.Error = err.Error()
		}
		return resp, false, nil
	}
	return prepared{op: "replay", run: run}, nil
}
