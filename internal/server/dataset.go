// GET /v1/datasets and POST /v1/dataset: the built-in calibrated
// dataset emulators (the paper's Table 3 samples).
package server

import (
	"context"
	"net/http"

	lopacity "repro"
	"repro/api"
)

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	writeJSON(w, api.DatasetsResponse{Datasets: lopacity.Datasets()})
}

func (s *Server) handleDataset(w http.ResponseWriter, r *http.Request) {
	var req api.DatasetRequest
	if !s.decode(w, r, &req) {
		return
	}
	p, err := s.prepareDataset(&req)
	if err != nil {
		writeError(w, errStatus(err, http.StatusBadRequest), err)
		return
	}
	s.serveSync(w, r, p)
}

func (s *Server) prepareDataset(req *api.DatasetRequest) (prepared, error) {
	run := func(ctx context.Context) (any, bool, error) {
		g, err := lopacity.Dataset(req.Key, req.Seed)
		if err != nil {
			// An unknown dataset key is a 404: the resource named by
			// the request does not exist.
			return nil, false, detailedError(http.StatusNotFound, api.CodeDatasetNotFound,
				map[string]any{"key": req.Key}, err)
		}
		return api.DatasetResponse{
			Key:        req.Key,
			Graph:      graphJSON(g),
			Properties: propertiesResponse(g.Properties()),
		}, false, nil
	}
	return prepared{op: "dataset", run: run}, nil
}
